(* lumpd: the long-running lumping service.

   Boots a daemon on a Unix-domain (or TCP) socket speaking the framed
   newline-JSON protocol of docs/PROTOCOL.md, keeps every submitted
   model's sweep engine and persistent key-cache store warm across
   requests and connections, and optionally serves Prometheus metrics
   on a second port.

   Examples:
     dune exec bin/lumpd.exe -- --socket /tmp/lumpd.sock --metrics-port 9464
     dune exec bin/lumpd.exe -- --tcp 127.0.0.1:7464 --timeout 30000
     printf '%s\n%s\n' 21 '{"verb":"stats","id":"1"}' | nc -U /tmp/lumpd.sock *)

module Server = Mdl_serve.Server
module Trace = Mdl_obs.Trace

let run socket tcp metrics_port max_inflight queue_capacity timeout_ms trace_file
    stream_trace access_log verbose =
  Mdl_obs.Logging.setup ~verbose ();
  let listen =
    match (tcp, socket) with
    | Some spec, _ -> (
        match String.rindex_opt spec ':' with
        | Some i ->
            let host = String.sub spec 0 i in
            let port = int_of_string (String.sub spec (i + 1) (String.length spec - i - 1)) in
            Server.Tcp ((if host = "" then "127.0.0.1" else host), port)
        | None -> Server.Tcp ("127.0.0.1", int_of_string spec))
    | None, path -> Server.Unix_socket path
  in
  let tracing = trace_file <> None || stream_trace <> None in
  (match (stream_trace, trace_file) with
  | Some path, _ ->
      Trace.stream_to_file path;
      Printf.printf "streaming Chrome trace to %s\n%!" path
  | None, Some _ -> Trace.start ()
  | None, None -> ());
  let max_inflight =
    if tracing && max_inflight > 1 then begin
      (* The trace buffer is single-domain and spans must nest LIFO;
         concurrent requests would interleave them. *)
      Printf.printf "tracing forces --max-inflight 1\n%!";
      1
    end
    else max_inflight
  in
  let config =
    {
      (Server.default_config ~listen) with
      Server.metrics_port;
      max_inflight;
      queue_capacity;
      default_deadline_ms = timeout_ms;
      access_log;
    }
  in
  let server = Server.start config in
  (match Server.address server with
  | Server.Unix_socket path -> Printf.printf "lumpd listening on unix:%s\n%!" path
  | Server.Tcp (host, port) -> Printf.printf "lumpd listening on %s:%d\n%!" host port);
  Option.iter
    (fun p -> Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!" p)
    (Server.metrics_port server);
  let drain _ = Server.request_drain server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  Server.wait server;
  (match trace_file with
  | Some path ->
      Trace.stop ();
      Trace.write_file path;
      Printf.printf "Chrome trace (%d spans) written to %s\n%!" (Trace.span_count ())
        path
  | None -> if stream_trace <> None then Trace.stop ());
  Printf.printf "lumpd drained; bye\n%!"

open Cmdliner

let socket_arg =
  Arg.(value & opt string "/tmp/lumpd.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on this Unix-domain socket (removed on exit).")

let tcp_arg =
  Arg.(value & opt (some string) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Listen on TCP instead of the Unix socket; port $(b,0) picks an \
                 ephemeral port (printed at boot).")

let metrics_arg =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus text-format metrics on \
                 http://127.0.0.1:$(docv)/metrics; $(b,0) picks an ephemeral port.")

let inflight_arg =
  Arg.(value & opt int 1
       & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Execution slots: requests running concurrently (default 1; lumping \
                 requests serialise per model anyway).")

let queue_arg =
  Arg.(value & opt int 32
       & info [ "queue-capacity" ] ~docv:"N"
           ~doc:"Waiting requests beyond the slots before new ones are rejected \
                 with $(b,queue_full).")

let timeout_arg =
  Arg.(value & opt (some int) None
       & info [ "timeout" ] ~docv:"MS"
           ~doc:"Default per-request deadline in milliseconds for requests that \
                 carry no $(b,deadline_ms); unlimited when omitted.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Buffer request spans and write them as Chrome trace-event JSON to \
                 $(docv) at shutdown (forces $(b,--max-inflight 1)).")

let stream_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "stream-trace" ] ~docv:"FILE"
           ~doc:"Stream spans to $(docv) as they close — bounded memory however long \
                 the daemon runs (forces $(b,--max-inflight 1)); takes precedence \
                 over $(b,--trace).")

let access_log_arg =
  Arg.(value & opt (some string) None
       & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one structured JSON line per request to $(docv): timestamp, \
                 server request id, client id, verb, model, queue and execution \
                 nanoseconds, status, response bytes.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Enable debug logging.")

let cmd =
  Cmd.v
    (Cmd.info "lumpd" ~version:"%%VERSION%%"
       ~doc:"Long-running lumping service over a framed JSON protocol."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Boots a daemon that lumps matrix-diagram Markov models on demand, \
              keeping each model's sweep engine and persistent key-cache store \
              warm across requests and connections.  The wire protocol is \
              documented in docs/PROTOCOL.md.";
         ])
    Term.(
      const run $ socket_arg $ tcp_arg $ metrics_arg $ inflight_arg $ queue_arg
      $ timeout_arg $ trace_arg $ stream_trace_arg $ access_log_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)

(* fuzz: the differential lumping oracle's driver.

   Generates random models (flat chains, Kronecker compositions, free
   matrix diagrams), lumps each one compositionally AND at the state
   level, and cross-checks everything the paper's theorems promise
   (see Mdl_oracle.Oracle).  Deterministic: one master --seed drives
   the whole run, and every case prints a spec that reproduces it.

   Examples:
     dune exec bin/fuzz.exe -- --count 200 --seed 42
     dune exec bin/fuzz.exe -- --count 20 --sanity     # oracle self-test

   Failures print the model spec and the (seed, case index) pair that
   regenerates it. *)

module Prng = Mdl_util.Prng
module Spec = Mdl_oracle.Spec
module Oracle = Mdl_oracle.Oracle

let run_fuzz count seed max_levels modes sanity domains verbose =
  (* [--verbose] keeps its per-case outcome printing; the shared logging
     setup additionally raises the Logs level so library debug output
     (oracle summaries, refinement internals) interleaves with it. *)
  Mdl_obs.Logging.setup ~verbose ();
  let master = Prng.of_seed seed in
  (* Domain pools are created once per size and reused across cases
     (domains are joined only at exit).  Under [--domains], every
     sharding threshold is forced to 1 so even the small fuzz models
     exercise the parallel paths; set MDL_CHAOS=1 to additionally
     perturb task interleavings inside the pool. *)
  let pools = Hashtbl.create 4 in
  let pool_of n =
    if n <= 1 then None
    else
      Some
        (match Hashtbl.find_opt pools n with
        | Some p -> p
        | None ->
            let p = Mdl_util.Domain_pool.create ~domains:n in
            Hashtbl.add pools n p;
            p)
  in
  let pool_for prng =
    match domains with
    | `Off -> None
    | `Fixed n -> pool_of n
    | `Random -> pool_of (2 + Prng.int prng 3)
  in
  let inject = if sanity then Some 0.5 else None in
  let failures = ref 0 and missed = ref 0 and skipped_inject = ref 0 in
  let checked = ref 0 in
  let family_counts = Hashtbl.create 4 in
  for i = 0 to count - 1 do
    let prng = Prng.fork master i in
    let spec = Spec.random prng ~max_levels in
    let family =
      match spec with Spec.Chain _ -> "chain" | Spec.Kron _ -> "kron" | Spec.Direct _ -> "direct"
    in
    Hashtbl.replace family_counts family
      (1 + Option.value ~default:0 (Hashtbl.find_opt family_counts family));
    let pool = pool_for prng in
    let par_threshold = if pool = None then None else Some 1 in
    List.iter
      (fun mode ->
        let outcome = Oracle.run ?inject ?pool ?par_threshold mode spec in
        incr checked;
        if verbose then Format.printf "#%d %a@." i Oracle.pp_outcome outcome;
        if sanity then begin
          if List.mem_assoc "inject" outcome.Oracle.skipped then incr skipped_inject
          else if Oracle.ok outcome then begin
            incr missed;
            Format.printf "#%d SANITY MISS: injected perturbation not caught: %a@." i
              Oracle.pp_outcome outcome
          end
        end
        else if not (Oracle.ok outcome) then begin
          incr failures;
          Format.printf "#%d %a@.reproduce: --seed %d (case %d), spec %s@." i
            Oracle.pp_outcome outcome seed i
            (Spec.to_string spec)
        end)
      modes
  done;
  Hashtbl.iter (fun _ p -> Mdl_util.Domain_pool.shutdown p) pools;
  let families =
    Hashtbl.fold (fun f c acc -> Printf.sprintf "%s=%d" f c :: acc) family_counts []
    |> List.sort compare |> String.concat " "
  in
  let domains_note =
    match domains with
    | `Off -> ""
    | `Fixed n -> Printf.sprintf " [%d domains%s]" n (if Hashtbl.length pools > 0 && Hashtbl.fold (fun _ p _ -> Mdl_util.Domain_pool.chaos p) pools false then ", chaos" else "")
    | `Random -> Printf.sprintf " [random domains%s]" (if Hashtbl.fold (fun _ p _ -> Mdl_util.Domain_pool.chaos p) pools false then ", chaos" else "")
  in
  if sanity then begin
    Printf.printf
      "sanity: %d oracle runs with an injected rate perturbation: %d caught, %d missed, %d not injectable\n"
      !checked (!checked - !missed - !skipped_inject) !missed !skipped_inject;
    if !missed > 0 then begin
      print_endline "FAIL: the oracle is blind to injected faults";
      exit 1
    end;
    print_endline "ok: every injected fault was caught"
  end
  else begin
    Printf.printf "fuzz: %d models (%s), %d oracle runs, %d violations%s\n" count
      families !checked !failures domains_note;
    if !failures > 0 then exit 1;
    print_endline "ok: zero oracle violations"
  end

open Cmdliner

let count_arg =
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~doc:"Number of random models to check.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed"; "s" ] ~doc:"Master PRNG seed; a run is fully determined by (seed, count, max-levels).")

let levels_arg =
  Arg.(value & opt int 3 & info [ "max-levels" ] ~doc:"Maximum number of MD levels to generate.")

let mode_arg =
  let mode_conv =
    Arg.enum
      [
        ("ordinary", [ Oracle.Ordinary ]);
        ("exact", [ Oracle.Exact ]);
        ("both", [ Oracle.Ordinary; Oracle.Exact ]);
      ]
  in
  Arg.(value & opt mode_conv [ Oracle.Ordinary; Oracle.Exact ]
       & info [ "mode" ] ~doc:"Lumping mode(s) to cross-check: $(b,ordinary), $(b,exact) or $(b,both).")

let sanity_arg =
  Arg.(value & flag
       & info [ "sanity" ]
           ~doc:"Oracle self-test: inject a rate perturbation into every lumped matrix and require the oracle to catch it.")

let domains_arg =
  let domains_conv =
    let parse s =
      if s = "random" then Ok `Random
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok (if n = 1 then `Off else `Fixed n)
        | _ -> Error (`Msg "expected a positive integer or \"random\"")
    in
    let print ppf = function
      | `Off -> Format.pp_print_string ppf "1"
      | `Fixed n -> Format.pp_print_int ppf n
      | `Random -> Format.pp_print_string ppf "random"
    in
    Arg.conv (parse, print)
  in
  Arg.(value & opt domains_conv `Off
       & info [ "domains" ] ~docv:"N"
           ~doc:"Lump on $(docv) OCaml domains (or $(b,random): 2-4 domains drawn per case), with every sharding threshold forced to 1 so small models still take the parallel paths. Results are checked by the same oracle either way. Set MDL_CHAOS=1 to also perturb pool interleavings (concurrency chaos mode).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every outcome, not just failures.")

let cmd =
  Cmd.v
    (Cmd.info "fuzz" ~version:"1.0.0"
       ~doc:"Differential fuzzing of compositional vs state-level lumping.")
    Term.(const run_fuzz $ count_arg $ seed_arg $ levels_arg $ mode_arg $ sanity_arg
          $ domains_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)

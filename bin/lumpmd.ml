(* lumpmd: build a model, represent its CTMC as a matrix diagram, lump
   it compositionally, and optionally solve and report measures.

   Examples:
     dune exec bin/lumpmd.exe -- tandem --jobs 1 --solve
     dune exec bin/lumpmd.exe -- workstations --stations 5 --mode exact
     dune exec bin/lumpmd.exe -- polling --customers 4 --check-optimal
     dune exec bin/lumpmd.exe -- tandem --dot /tmp/tandem.dot *)

module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module State_lumping = Mdl_lumping.State_lumping
module Local_key = Mdl_core.Local_key
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics

type instance = {
  name : string;
  md : Mdl_md.Md.t;
  statespace : Statespace.t;
  rewards : (string * Decomposed.t) list;
  initial : Decomposed.t;
}

let build_tandem jobs hyper_dim msmq_servers msmq_queues =
  let p =
    { (Mdl_models.Tandem.default ~jobs) with hyper_dim; msmq_servers; msmq_queues }
  in
  let b = Mdl_models.Tandem.build p in
  {
    name = Printf.sprintf "tandem (J=%d, 2^%d hypercube, %d/%d MSMQ)" jobs hyper_dim
        msmq_servers msmq_queues;
    md = b.Mdl_models.Tandem.md;
    statespace = b.Mdl_models.Tandem.exploration.Model.statespace;
    rewards =
      [
        ("availability", b.Mdl_models.Tandem.rewards_availability);
        ("msmq jobs", b.Mdl_models.Tandem.rewards_msmq_jobs);
      ];
    initial = b.Mdl_models.Tandem.initial;
  }

let build_polling customers =
  let b = Mdl_models.Polling.build (Mdl_models.Polling.default ~customers) in
  {
    name = Printf.sprintf "polling (%d customers)" customers;
    md = b.Mdl_models.Polling.md;
    statespace = b.Mdl_models.Polling.exploration.Model.statespace;
    rewards =
      [
        ("busy servers", b.Mdl_models.Polling.rewards_busy_servers);
        ("queued jobs", b.Mdl_models.Polling.rewards_queued_jobs);
      ];
    initial = b.Mdl_models.Polling.initial;
  }

let build_multitier clients =
  let b = Mdl_models.Multitier.build (Mdl_models.Multitier.default ~clients) in
  {
    name = Printf.sprintf "multitier (%d clients)" clients;
    md = b.Mdl_models.Multitier.md;
    statespace = b.Mdl_models.Multitier.exploration.Model.statespace;
    rewards =
      [
        ("thinking clients", b.Mdl_models.Multitier.rewards_thinking);
        ("db fast", b.Mdl_models.Multitier.rewards_db_fast);
      ];
    initial = b.Mdl_models.Multitier.initial;
  }

let build_kanban cards =
  let b = Mdl_models.Kanban.build (Mdl_models.Kanban.default ~cards) in
  {
    name = Printf.sprintf "kanban (%d cards per cell)" cards;
    md = b.Mdl_models.Kanban.md;
    statespace = b.Mdl_models.Kanban.exploration.Model.statespace;
    rewards = [ ("parts in system", b.Mdl_models.Kanban.rewards_in_system) ];
    initial = b.Mdl_models.Kanban.initial;
  }

let build_workstations stations =
  let b = Mdl_models.Workstations.build (Mdl_models.Workstations.default ~stations) in
  {
    name = Printf.sprintf "workstations (%d stations)" stations;
    md = b.Mdl_models.Workstations.md;
    statespace = b.Mdl_models.Workstations.exploration.Model.statespace;
    rewards = [ ("operational", b.Mdl_models.Workstations.rewards_operational) ];
    initial = b.Mdl_models.Workstations.initial;
  }

(* Per-phase rollup of the trace buffer: inclusive seconds and Gc
   allocation per span name, in first-seen order.  Nested spans each
   count their full extent, so [lump] is not the sum of its children. *)
let print_phase_breakdown () =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Trace.iter_events (fun ~name ~cat:_ ~start_ns:_ ~dur_ns ~depth:_ ~args ->
      let arg k =
        match List.assoc_opt k args with
        | Some (Trace.Float f) -> f
        | Some (Trace.Int i) -> float_of_int i
        | _ -> 0.0
      in
      let c, s, mi, ma =
        match Hashtbl.find_opt tbl name with
        | Some x -> x
        | None ->
            order := name :: !order;
            (0, 0.0, 0.0, 0.0)
      in
      Hashtbl.replace tbl name
        ( c + 1,
          s +. (Int64.to_float dur_ns /. 1e9),
          mi +. arg "gc.minor_words",
          ma +. arg "gc.major_words" ));
  if !order <> [] then begin
    Printf.printf "per-phase breakdown (inclusive):\n";
    Printf.printf "  %-24s %8s %12s %14s %14s\n" "span" "count" "seconds"
      "minor words" "major words";
    List.iter
      (fun name ->
        let c, s, mi, ma = Hashtbl.find tbl name in
        Printf.printf "  %-24s %8d %12.6f %14.0f %14.0f\n" name c s mi ma)
      (List.rev !order)
  end

let setup_tracing trace_file stream_trace show_metrics =
  (* --stream-trace emits events as spans close (bounded memory);
     --trace and --metrics buffer — the latter so the Gc words per
     phase can be aggregated from the span arguments afterwards. *)
  match stream_trace with
  | Some path -> Trace.stream_to_file path
  | None -> if Option.is_some trace_file || show_metrics then Trace.start ()

let finish_tracing trace_file stream_trace show_metrics print_phases =
  if Option.is_some trace_file || Option.is_some stream_trace || show_metrics then begin
    let streamed = Trace.streamed_count () in
    Trace.stop ();
    (match stream_trace with
    | Some path -> Printf.printf "Chrome trace (%d spans) streamed to %s\n" streamed path
    | None ->
        Option.iter
          (fun path ->
            Trace.write_file path;
            Printf.printf "Chrome trace (%d spans) written to %s\n" (Trace.span_count ())
              path)
          trace_file);
    if show_metrics then begin
      Format.printf "%a@?" Metrics.pp ();
      print_phases ()
    end
  end

let run inst mode key solve solver check_optimal dot_file export_file merge_level show_stats
    generic_refiner no_key_cache trace_file stream_trace show_metrics domains =
  setup_tracing trace_file stream_trace show_metrics;
  if show_metrics then Metrics.set_enabled true;
  Printf.printf "model: %s\n" inst.name;
  (* Optional level merging before lumping (exposes cross-level
     symmetries at the price of a bigger level; reward measures are not
     carried across the merge, so lumping then protects none). *)
  let inst =
    match merge_level with
    | None -> inst
    | Some l ->
        let md = Mdl_md.Restructure.merge_adjacent inst.md l in
        let statespace =
          Mdl_md.Statespace.map inst.statespace (Mdl_md.Restructure.merge_tuple inst.md l)
        in
        Printf.printf "merged levels %d and %d (measures not carried across the merge)\n"
          l (l + 1);
        {
          name = inst.name ^ Printf.sprintf " [levels %d+%d merged]" l (l + 1);
          md;
          statespace;
          rewards = [];
          initial = Decomposed.constant ~sizes:(Mdl_md.Md.sizes md) 1.0;
        }
  in
  let ss = inst.statespace in
  let counts, entries = Md.stats inst.md in
  Printf.printf "reachable states: %d\n" (Statespace.size ss);
  Printf.printf "MD: levels %s; nodes %s; entries %s; %.1f KB\n"
    (String.concat "/" (Array.to_list (Array.map string_of_int (Md.sizes inst.md))))
    (String.concat "/" (Array.to_list (Array.map string_of_int counts)))
    (String.concat "/" (Array.to_list (Array.map string_of_int entries)))
    (float_of_int (Md.memory_bytes inst.md) /. 1024.0);
  let pool =
    if domains > 1 then Some (Mdl_util.Domain_pool.create ~domains) else None
  in
  if domains > 1 then Printf.printf "domains: %d\n" domains;
  let refine_stats = Mdl_partition.Refiner.create_stats () in
  let result, lump_time =
    Mdl_util.Timer.time (fun () ->
        let rewards =
          match inst.rewards with
          | [] -> [ Decomposed.constant ~sizes:(Mdl_md.Md.sizes inst.md) 1.0 ]
          | l -> List.map snd l
        in
        Compositional.lump ~key ~stats:refine_stats
          ~specialised:(not generic_refiner) ~memoise:(not no_key_cache) ?pool mode
          inst.md ~rewards ~initial:inst.initial)
  in
  Array.iteri
    (fun i p ->
      Printf.printf "level %d: %d -> %d\n" (i + 1) (Partition.size p)
        (Partition.num_classes p))
    result.Compositional.partitions;
  let lumped_ss = Compositional.lump_statespace result ss in
  Printf.printf "lumped states: %d (%.1fx) in %.3f s; lumped MD %.1f KB\n"
    (Statespace.size lumped_ss)
    (float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss))
    lump_time
    (float_of_int (Md.memory_bytes result.Compositional.lumped) /. 1024.0);
  if show_stats then begin
    let s = refine_stats in
    Printf.printf
      "refiner stats: %d splitter passes, %d key evaluations, %d splits, %d blocks \
       created, %d largest-block skips, %.4f s refinement\n"
      s.Mdl_partition.Refiner.splitter_passes s.Mdl_partition.Refiner.key_evals
      s.Mdl_partition.Refiner.splits s.Mdl_partition.Refiner.blocks_created
      s.Mdl_partition.Refiner.largest_skips s.Mdl_partition.Refiner.wall_s;
    Printf.printf
      "refiner pipelines: %d float-path passes, %d interned-key passes (%d counting \
       sorted), %d generic fallback passes, %d max interned alphabet\n"
      s.Mdl_partition.Refiner.float_passes s.Mdl_partition.Refiner.interned_passes
      s.Mdl_partition.Refiner.counting_sort_passes
      s.Mdl_partition.Refiner.fallback_passes s.Mdl_partition.Refiner.intern_keys;
    let lookups = s.Mdl_partition.Refiner.cache_hits + s.Mdl_partition.Refiner.cache_misses in
    Printf.printf
      "key cache: %d hits, %d misses%s; rebuild: %d nodes rebuilt, %d reused verbatim\n"
      s.Mdl_partition.Refiner.cache_hits s.Mdl_partition.Refiner.cache_misses
      (if lookups = 0 then " (cache off)"
       else
         Printf.sprintf " (%.1f%% hit rate)"
           (100.0 *. float_of_int s.Mdl_partition.Refiner.cache_hits /. float_of_int lookups))
      s.Mdl_partition.Refiner.nodes_rebuilt s.Mdl_partition.Refiner.nodes_reused
  end;
  let closed = Compositional.is_closed result ss in
  if not closed then print_endline "WARNING: reachable set not class-closed";
  Option.iter
    (fun path ->
      Mdl_md.Dot.write_file result.Compositional.lumped path;
      Printf.printf "lumped MD written to %s\n" path)
    dot_file;
  Option.iter
    (fun path ->
      let flat = Mdl_md.Md_vector.to_csr result.Compositional.lumped lumped_ss in
      Mdl_sparse.Matrix_market.write_file flat path;
      Printf.printf "lumped rate matrix (%dx%d, %d nnz) written to %s\n"
        (Mdl_sparse.Csr.rows flat) (Mdl_sparse.Csr.cols flat) (Mdl_sparse.Csr.nnz flat)
        path)
    export_file;
  if solve && closed then begin
    match mode with
    | State_lumping.Ordinary ->
        let (pi, stats), solve_time =
          Mdl_util.Timer.time (fun () ->
              match solver with
              | Solver.Power ->
                  Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000
                    result.Compositional.lumped lumped_ss
              | Solver.Krylov ->
                  Md_solve.steady_state_krylov ~tol:1e-12
                    result.Compositional.lumped lumped_ss
              | Solver.Gauss_seidel ->
                  (* Gauss–Seidel needs explicit matrix rows: flatten the
                     lumped diagram, reorder with reverse Cuthill–McKee,
                     sweep with mild under-relaxation (pure sweeps
                     oscillate on some lumped chains).  The distribution
                     comes back in the original state numbering. *)
                  let ctmc = Md_solve.ctmc_of result.Compositional.lumped lumped_ss in
                  Solver.steady_state_gauss_seidel ~tol:1e-12 ~max_iter:100_000
                    ~ordering:Solver.Rcm ~relax:0.9 ctmc)
        in
        Printf.printf "steady state (%s): %d iterations, %.2f s%s\n"
          (Solver.method_name solver) stats.Solver.iterations solve_time
          (if stats.Solver.converged then "" else " (NOT converged)");
        if show_stats then
          Printf.printf "solver stats: %d iterations, residual %.3e, converged %b\n"
            stats.Solver.iterations stats.Solver.residual stats.Solver.converged;
        List.iter
          (fun (name, r) ->
            let v =
              Solver.expected_reward pi
                (Decomposed.to_vector (Compositional.lumped_rewards result r) lumped_ss)
            in
            Printf.printf "measure %-16s = %.9f\n" name v)
          inst.rewards
    | State_lumping.Exact ->
        print_endline "(--solve reports steady-state measures for ordinary mode only)"
  end;
  if check_optimal then begin
    let n = Statespace.size lumped_ss in
    if n > 60_000 then Printf.printf "optimality check skipped (%d states)\n" n
    else begin
      let flat = Mdl_md.Md_vector.to_csr result.Compositional.lumped lumped_ss in
      let reward_vectors =
        List.map
          (fun (_, r) ->
            Decomposed.to_vector (Compositional.lumped_rewards result r) lumped_ss)
          inst.rewards
      in
      let initial_p =
        Partition.group_by n
          (fun s -> List.map (fun v -> Mdl_util.Floatx.quantize v.(s)) reward_vectors)
          (List.compare Float.compare)
      in
      let further =
        match mode with
        | State_lumping.Ordinary ->
            State_lumping.coarsest ~generic:generic_refiner Ordinary flat
              ~initial:initial_p
        | State_lumping.Exact ->
            let exit_p =
              Partition.group_by n
                (fun s -> Mdl_util.Floatx.quantize (Mdl_sparse.Csr.row_sum flat s))
                Float.compare
            in
            ignore initial_p;
            State_lumping.coarsest ~generic:generic_refiner Exact flat ~initial:exit_p
      in
      Printf.printf "state-level lumping of the lumped chain: %d -> %d classes%s\n" n
        (Partition.num_classes further)
        (if Partition.num_classes further = n then " (compositional result is optimal)"
         else "")
    end
  end;
  finish_tracing trace_file stream_trace show_metrics print_phase_breakdown;
  Option.iter Mdl_util.Domain_pool.shutdown pool

(* ---- batched reward sweeps ---- *)

(* The sweep's reward family: the model's base rewards plus threshold
   indicators on the largest level at varying cut points, cycled until
   [points] specs exist — the shape of a sensitivity study around a
   design parameter.  Matches the family bench/refine races, so the
   amortisation printed here is the one BENCH_refine.json gates. *)
let sweep_variants inst =
  let sizes = Md.sizes inst.md in
  let level =
    let li = ref 0 in
    Array.iteri (fun i n -> if n > sizes.(!li) then li := i) sizes;
    !li + 1
  in
  let size = sizes.(level - 1) in
  let indicator k up =
    Decomposed.of_level ~sizes ~level (fun s ->
        if (if up then s >= k else s < k) then 1.0 else 0.0)
  in
  let k1 = max 1 (size / 3) in
  let k2 = max 1 (2 * size / 3) in
  let base = List.map snd inst.rewards in
  [
    ("base rewards", base);
    (Printf.sprintf "+ [s%d >= %d]" level k1, indicator k1 true :: base);
    (Printf.sprintf "+ [s%d < %d]" level k1, indicator k1 false :: base);
    (Printf.sprintf "+ [s%d >= %d]" level k2, indicator k2 true :: base);
    ( Printf.sprintf "+ [s%d >= %d] [s%d >= %d]" level k1 level k2,
      indicator k1 true :: indicator k2 true :: base );
  ]

let run_sweep inst points solve solver show_stats trace_file stream_trace show_metrics
    domains =
  setup_tracing trace_file stream_trace show_metrics;
  if show_metrics then Metrics.set_enabled true;
  Printf.printf "model: %s\n" inst.name;
  let ss = inst.statespace in
  Printf.printf "reachable states: %d; sweep of %d points\n" (Statespace.size ss) points;
  let pool =
    if domains > 1 then Some (Mdl_util.Domain_pool.create ~domains) else None
  in
  if domains > 1 then Printf.printf "domains: %d\n" domains;
  let variants = sweep_variants inst in
  let nv = List.length variants in
  let refine_stats = Mdl_partition.Refiner.create_stats () in
  let sw = Compositional.sweep_create ?pool State_lumping.Ordinary inst.md in
  let times = Array.make (max points 1) 0.0 in
  for i = 0 to points - 1 do
    let label, rewards = List.nth variants (i mod nv) in
    let before = Compositional.sweep_stats sw in
    let r, s =
      Mdl_util.Timer.time (fun () ->
          Compositional.sweep_point ~stats:refine_stats sw ~rewards
            ~initial:inst.initial)
    in
    times.(i) <- s;
    let after = Compositional.sweep_stats sw in
    let lumped_ss = Compositional.lump_statespace r ss in
    Printf.printf
      "point %2d  %-28s %8.4fs  %6d lumped  levels %d run / %d reused  rebuild %s  \
       cross-bind +%d\n"
      i label s
      (Statespace.size lumped_ss)
      (after.Compositional.level_fixpoints - before.Compositional.level_fixpoints)
      (after.Compositional.level_reused - before.Compositional.level_reused)
      (if after.Compositional.rebuilds_reused > before.Compositional.rebuilds_reused
       then "reused" else "built")
      (after.Compositional.cross_bind_hits - before.Compositional.cross_bind_hits);
    if solve then
      if not (Compositional.is_closed r ss) then
        print_endline "  WARNING: reachable set not class-closed; measures skipped"
      else begin
        let pi, _ =
          match solver with
          | Solver.Power ->
              Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000
                r.Compositional.lumped lumped_ss
          | Solver.Krylov ->
              Md_solve.steady_state_krylov ~tol:1e-12 r.Compositional.lumped lumped_ss
          | Solver.Gauss_seidel ->
              Solver.steady_state_gauss_seidel ~tol:1e-12 ~max_iter:100_000
                ~ordering:Solver.Rcm ~relax:0.9
                (Md_solve.ctmc_of r.Compositional.lumped lumped_ss)
        in
        List.iter
          (fun (name, d) ->
            let v =
              Solver.expected_reward pi
                (Decomposed.to_vector (Compositional.lumped_rewards r d) lumped_ss)
            in
            Printf.printf "  measure %-16s = %.9f\n" name v)
          inst.rewards
      end
  done;
  let st = Compositional.sweep_stats sw in
  if points > 1 then begin
    let warm = Array.sub times 1 (points - 1) in
    let amortised = Array.fold_left ( +. ) 0.0 warm /. float_of_int (points - 1) in
    Printf.printf
      "cold first point %.4fs; amortised %.4fs per warm point (%.2fx); %d cross-bind \
       hits, %d/%d level fixpoints reused, %d/%d rebuilds reused, %d rows stored\n"
      times.(0) amortised
      (times.(0) /. amortised)
      st.Compositional.cross_bind_hits st.Compositional.level_reused
      (st.Compositional.level_reused + st.Compositional.level_fixpoints)
      st.Compositional.rebuilds_reused
      (st.Compositional.rebuilds_reused + st.Compositional.rebuilds)
      (Mdl_core.Key_cache.store_size (Compositional.sweep_cache sw))
  end;
  if show_stats then begin
    let s = refine_stats in
    Printf.printf
      "refiner stats (levels actually run): %d splitter passes, %d key evaluations, \
       %d splits, %.4f s refinement\n"
      s.Mdl_partition.Refiner.splitter_passes s.Mdl_partition.Refiner.key_evals
      s.Mdl_partition.Refiner.splits s.Mdl_partition.Refiner.wall_s;
    Printf.printf "key cache: %d hits, %d misses; rebuild: %d nodes rebuilt, %d reused\n"
      s.Mdl_partition.Refiner.cache_hits s.Mdl_partition.Refiner.cache_misses
      s.Mdl_partition.Refiner.nodes_rebuilt s.Mdl_partition.Refiner.nodes_reused
  end;
  finish_tracing trace_file stream_trace show_metrics print_phase_breakdown;
  Option.iter Mdl_util.Domain_pool.shutdown pool

(* ---- command line ---- *)

open Cmdliner

let mode_arg =
  let mode_conv =
    Arg.enum [ ("ordinary", State_lumping.Ordinary); ("exact", State_lumping.Exact) ]
  in
  Arg.(value & opt mode_conv State_lumping.Ordinary & info [ "mode" ] ~doc:"Lumping mode: $(b,ordinary) or $(b,exact).")

let key_arg =
  let key_conv =
    Arg.enum
      [ ("formal", Local_key.Formal_sums); ("expanded", Local_key.Expanded_matrices) ]
  in
  Arg.(value & opt key_conv Local_key.Formal_sums
       & info [ "key" ] ~doc:"Local key function: $(b,formal) sums (fast, sufficient) or $(b,expanded) matrices (slow, exact per level).")

let solve_arg = Arg.(value & flag & info [ "solve" ] ~doc:"Solve the lumped chain and print measures.")

let solver_arg =
  let solver_conv =
    Arg.enum
      [
        ("power", Solver.Power);
        ("gauss-seidel", Solver.Gauss_seidel);
        ("krylov", Solver.Krylov);
      ]
  in
  Arg.(value & opt solver_conv Solver.Power
       & info [ "solver" ]
           ~doc:"Steady-state solver for $(b,--solve): $(b,power) iteration on the uniformised operator (matrix-free, robust), $(b,gauss-seidel) sweeps on the flattened generator in reverse Cuthill-McKee order (fast on stiff chains), or $(b,krylov) (matrix-free Jacobi-preconditioned BiCGStab; typically the fewest iterations).")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print aggregated partition-refinement counters (splitter passes, key evaluations, splits, blocks created, largest-block skips, refinement wall time) and the per-pipeline breakdown (float-path / interned-key / counting-sort / generic-fallback passes, max interned alphabet).")

let generic_refiner_arg =
  Arg.(value & flag
       & info [ "generic-refiner" ]
           ~doc:"Refine through the generic closure-based key pipeline instead of the specialised (interned-key / float) pipelines. Same partitions, slower; for comparison and debugging.")

let no_key_cache_arg =
  Arg.(value & flag
       & info [ "no-key-cache" ]
           ~doc:"Disable the splitter-key cache and incremental lumped rebuild (the memoised path is on by default). Same partitions, same lumped diagram, same splitter-pass count; more key-evaluation work. For comparison and debugging.")

let check_arg =
  Arg.(value & flag & info [ "check-optimal" ] ~doc:"Run flat state-level lumping on the lumped chain (Section 5's optimality check).")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the lumped MD in Graphviz format to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Enable debug logging (exploration and lumping internals).")

let merge_arg =
  Arg.(value & opt (some int) None
       & info [ "merge" ] ~docv:"LEVEL"
           ~doc:"Merge levels $(docv) and $(docv)+1 before lumping (exposes cross-level symmetry; reward measures are dropped).")

let export_arg =
  Arg.(value & opt (some string) None
       & info [ "export-matrix" ] ~docv:"FILE"
           ~doc:"Flatten the lumped chain over its reachable states and write the rate matrix in Matrix Market format to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record hierarchical spans over the whole pipeline (per level, per refinement fixed point, per splitter pass, rebuild, solver) and write them as Chrome trace-event JSON to $(docv) — loads directly in chrome://tracing, Perfetto or speedscope.")

let stream_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "stream-trace" ] ~docv:"FILE"
           ~doc:"Like $(b,--trace), but stream each span to $(docv) as it closes \
                 instead of buffering the run — memory stays bounded however many \
                 spans the run produces. Takes precedence over $(b,--trace); the \
                 $(b,--metrics) per-phase breakdown needs the buffer and is empty \
                 when streaming.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the process-wide metrics registry and dump it after the run: key-cache hits/misses, per-pipeline pass counts, split/key-evaluation counters, latency histograms, and the per-phase Gc allocation breakdown.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Run the lumping pipeline data-parallel on $(docv) OCaml domains (levels refine concurrently; large splitter passes and the rebuild shard internally). Results are bit-identical to $(b,--domains 1). With $(b,--trace) or $(b,--metrics), per-level tracing forces levels back to sequential; intra-level sharding stays on.")

let tandem_cmd =
  let jobs = Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc:"Population J.") in
  let hdim = Arg.(value & opt int 3 & info [ "hyper-dim" ] ~doc:"Hypercube dimension (2^d servers).") in
  let ms = Arg.(value & opt int 3 & info [ "msmq-servers" ] ~doc:"MSMQ servers.") in
  let mq = Arg.(value & opt int 4 & info [ "msmq-queues" ] ~doc:"MSMQ queues.") in
  let f jobs hdim ms mq mode key solve solver check dot export merge stats generic no_cache trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    run (build_tandem jobs hdim ms mq) mode key solve solver check dot export merge stats generic
      no_cache trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "tandem" ~doc:"The paper's tandem multi-processor system (Section 5).")
    Term.(
      const f $ jobs $ hdim $ ms $ mq $ mode_arg $ key_arg $ solve_arg $ solver_arg $ check_arg
      $ dot_arg $ export_arg $ merge_arg $ stats_arg $ generic_refiner_arg $ no_key_cache_arg $ trace_arg $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let polling_cmd =
  let customers =
    Arg.(value & opt int 4 & info [ "customers"; "c" ] ~doc:"Closed population.")
  in
  let f customers mode key solve solver check dot export merge stats generic no_cache trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    run (build_polling customers) mode key solve solver check dot export merge stats generic no_cache
      trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "polling" ~doc:"The MSMQ polling station in isolation.")
    Term.(
      const f $ customers $ mode_arg $ key_arg $ solve_arg $ solver_arg $ check_arg $ dot_arg
      $ export_arg $ merge_arg $ stats_arg $ generic_refiner_arg $ no_key_cache_arg $ trace_arg $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let workstations_cmd =
  let stations =
    Arg.(value & opt int 4 & info [ "stations"; "n" ] ~doc:"Number of workstations.")
  in
  let f stations mode key solve solver check dot export merge stats generic no_cache trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    run (build_workstations stations) mode key solve solver check dot export merge stats generic no_cache
      trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "workstations" ~doc:"Replicated workstation cluster with a spare store.")
    Term.(
      const f $ stations $ mode_arg $ key_arg $ solve_arg $ solver_arg $ check_arg $ dot_arg
      $ export_arg $ merge_arg $ stats_arg $ generic_refiner_arg $ no_key_cache_arg $ trace_arg $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let multitier_cmd =
  let clients =
    Arg.(value & opt int 3 & info [ "clients"; "c" ] ~doc:"Closed population.")
  in
  let f clients mode key solve solver check dot export merge stats generic no_cache trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    run (build_multitier clients) mode key solve solver check dot export merge stats generic no_cache
      trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "multitier" ~doc:"Closed multi-tier service system (4-level MD).")
    Term.(
      const f $ clients $ mode_arg $ key_arg $ solve_arg $ solver_arg $ check_arg $ dot_arg
      $ export_arg $ merge_arg $ stats_arg $ generic_refiner_arg $ no_key_cache_arg $ trace_arg $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let kanban_cmd =
  let cards =
    Arg.(value & opt int 2 & info [ "cards"; "n" ] ~doc:"Kanban cards per cell.")
  in
  let f cards mode key solve solver check dot export merge stats generic no_cache trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    run (build_kanban cards) mode key solve solver check dot export merge stats generic no_cache
      trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "kanban" ~doc:"The Kanban manufacturing system (4-level MD benchmark).")
    Term.(
      const f $ cards $ mode_arg $ key_arg $ solve_arg $ solver_arg $ check_arg $ dot_arg
      $ export_arg $ merge_arg $ stats_arg $ generic_refiner_arg $ no_key_cache_arg $ trace_arg $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let sweep_cmd =
  let model =
    let model_conv =
      Arg.enum
        [
          ("tandem", `Tandem);
          ("polling", `Polling);
          ("workstations", `Workstations);
          ("multitier", `Multitier);
          ("kanban", `Kanban);
        ]
    in
    Arg.(value & opt model_conv `Tandem
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"Model to sweep: $(b,tandem), $(b,polling), $(b,workstations), \
                   $(b,multitier) or $(b,kanban) (default parameters each).")
  in
  let size =
    Arg.(value & opt (some int) None
         & info [ "size" ] ~docv:"N"
             ~doc:"The model's main size knob (tandem jobs, polling customers, \
                   workstation count, multitier clients, kanban cards); the model's \
                   default when omitted.")
  in
  let points =
    Arg.(value & opt int 10
         & info [ "points" ] ~docv:"N" ~doc:"Number of sweep points (default 10).")
  in
  let f model size points solve solver stats trace stream metrics domains verbose =
    Mdl_obs.Logging.setup ~verbose ();
    let inst =
      match model with
      | `Tandem -> build_tandem (Option.value size ~default:1) 3 3 4
      | `Polling -> build_polling (Option.value size ~default:4)
      | `Workstations -> build_workstations (Option.value size ~default:4)
      | `Multitier -> build_multitier (Option.value size ~default:3)
      | `Kanban -> build_kanban (Option.value size ~default:2)
    in
    run_sweep inst points solve solver stats trace stream metrics domains
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Lump one model repeatedly under a family of reward specifications \
             through the batched sweep engine (warm key-cache row store, level \
             fixed-point and rebuild memos), printing per-point reuse and the \
             cold-vs-amortised timing.  Reward sweeps are an ordinary-mode notion, \
             so the mode is fixed to ordinary.")
    Term.(
      const f $ model $ size $ points $ solve_arg $ solver_arg $ stats_arg $ trace_arg
      $ stream_trace_arg $ metrics_arg $ domains_arg $ verbose_arg)

let main =
  Cmd.group
    (Cmd.info "lumpmd" ~version:"1.0.0"
       ~doc:"Compositional lumping of matrix-diagram-represented Markov models.")
    [ tandem_cmd; polling_cmd; workstations_cmd; multitier_cmd; kanban_cmd; sweep_cmd ]

let () = exit (Cmd.eval main)

(* Regenerates Table 1 of the paper: specifications of the MD
   representation of the tandem system's CTMC, before and after
   compositional lumping, for a list of J values.

   Usage: dune exec bin/table1.exe [-- J1 J2 ...]        (default: 1 2)
          --trace FILE      record the lump pipeline's spans and write
                            Chrome trace-event JSON to FILE
          --check-optimal   also run the Section-5 optimality check
                            (flat state-level lumping of the lumped
                            chain; only when small enough to flatten)
          --validate        solve both the full and the lumped chain and
                            confirm the availability measure and the
                            aggregated stationary distribution agree
                            (Theorems 2/3 as a runnable artifact) *)

module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module State_lumping = Mdl_lumping.State_lumping
module Tandem = Mdl_models.Tandem

type row = {
  jobs : int;
  overall : int;
  level_sizes : int array;
  node_counts : int array;
  lumped_overall : int;
  lumped_level_sizes : int array;
  gen_time : float;
  lump_time : float;
  md_bytes : int;
  lumped_md_bytes : int;
  closed : bool;
}

let run_one jobs =
  let b, gen_time = Mdl_util.Timer.time (fun () -> Tandem.build (Tandem.default ~jobs)) in
  let ss = b.Tandem.exploration.Model.statespace in
  let node_counts, _ = Md.stats b.Tandem.md in
  let result, lump_time =
    Mdl_util.Timer.time (fun () ->
        Compositional.lump Ordinary b.Tandem.md
          ~rewards:[ b.Tandem.rewards_availability ]
          ~initial:b.Tandem.initial)
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  ( {
      jobs;
      overall = Statespace.size ss;
      level_sizes = Md.sizes b.Tandem.md;
      node_counts;
      lumped_overall = Statespace.size lumped_ss;
      lumped_level_sizes = Array.map Partition.num_classes result.Compositional.partitions;
      gen_time;
      lump_time;
      md_bytes = Md.memory_bytes b.Tandem.md;
      lumped_md_bytes = Md.memory_bytes result.Compositional.lumped;
      closed = Compositional.is_closed result ss;
    },
    b,
    result )

let check_optimal b result =
  (* Feed the compositionally lumped chain through the flat state-level
     algorithm [9]; report how much further reduction is possible. *)
  let ss = b.Tandem.exploration.Model.statespace in
  let lumped_ss = Compositional.lump_statespace result ss in
  let n = Statespace.size lumped_ss in
  if n > 60_000 then Printf.printf "  (optimality check skipped: %d states)\n" n
  else begin
    let flat = Mdl_md.Md_vector.to_csr result.Compositional.lumped lumped_ss in
    let rewards_vec =
      Decomposed.to_vector
        (Compositional.lumped_rewards result b.Tandem.rewards_availability)
        lumped_ss
    in
    let initial_p =
      Partition.group_by n
        (fun s -> Mdl_util.Floatx.quantize rewards_vec.(s))
        Float.compare
    in
    let further = State_lumping.coarsest Ordinary flat ~initial:initial_p in
    Printf.printf "  state-level lumping of the lumped chain: %d -> %d classes%s\n" n
      (Partition.num_classes further)
      (if Partition.num_classes further = n then " (compositional result is optimal)"
       else "")
  end

let validate b result =
  let ss = b.Tandem.exploration.Model.statespace in
  let lumped_ss = Compositional.lump_statespace result ss in
  if Statespace.size ss > 100_000 then
    Printf.printf "  (validation skipped: %d states)\n" (Statespace.size ss)
  else begin
    let pi, st1 =
      Mdl_core.Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 b.Tandem.md ss
    in
    let pi_l, st2 =
      Mdl_core.Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000
        result.Compositional.lumped lumped_ss
    in
    let agg = Compositional.aggregate_vector result ss lumped_ss pi in
    let diff = Mdl_sparse.Vec.diff_inf agg pi_l in
    let measure pi ss reward =
      Mdl_ctmc.Solver.expected_reward pi (Decomposed.to_vector reward ss)
    in
    let a_full = measure pi ss b.Tandem.rewards_availability in
    let a_lumped =
      measure pi_l lumped_ss (Compositional.lumped_rewards result b.Tandem.rewards_availability)
    in
    Printf.printf
      "  validation: availability full %.9f vs lumped %.9f; max |agg(pi) - pi~| = %.2e \
       (converged %b/%b)\n"
      a_full a_lumped diff st1.Mdl_ctmc.Solver.converged st2.Mdl_ctmc.Solver.converged
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let check = List.mem "--check-optimal" args in
  let do_validate = List.mem "--validate" args in
  (* Manual parsing, like the rest of this driver: --trace FILE consumes
     the next argument; everything else that parses as an int is a J. *)
  let trace_file = ref None in
  let rec strip_trace = function
    | "--trace" :: path :: rest ->
        trace_file := Some path;
        strip_trace rest
    | a :: rest -> a :: strip_trace rest
    | [] -> []
  in
  let args = strip_trace args in
  Mdl_obs.Logging.setup ();
  if Option.is_some !trace_file then Mdl_obs.Trace.start ();
  let jobs_list =
    match List.filter_map int_of_string_opt args with [] -> [ 1; 2 ] | l -> l
  in
  let rows = List.map run_one jobs_list in
  Option.iter
    (fun path ->
      Mdl_obs.Trace.stop ();
      Mdl_obs.Trace.write_file path;
      Printf.printf "Chrome trace (%d spans) written to %s\n\n"
        (Mdl_obs.Trace.span_count ()) path)
    !trace_file;

  print_endline "Table 1: MD representation of the tandem system's CTMC";
  print_endline "";
  print_endline "  unlumped state-space sizes                # of MD nodes";
  print_endline "  J  overall      S1     S2     S3          N1  N2  N3";
  List.iter
    (fun (r, _, _) ->
      Printf.printf "  %d  %-10d %-6d %-6d %-6d      %3d %3d %3d\n" r.jobs r.overall
        r.level_sizes.(0) r.level_sizes.(1) r.level_sizes.(2) r.node_counts.(0)
        r.node_counts.(1) r.node_counts.(2))
    rows;
  print_endline "";
  print_endline "  lumped state-space sizes                  reduction in SS";
  print_endline "  J  overall     S1     S2     S3           overall   l1    l2    l3";
  List.iter
    (fun (r, _, _) ->
      let red a b = float_of_int a /. float_of_int b in
      Printf.printf "  %d  %-10d %-6d %-6d %-6d       %6.1f  %5.1f %5.1f %5.1f\n" r.jobs
        r.lumped_overall r.lumped_level_sizes.(0) r.lumped_level_sizes.(1)
        r.lumped_level_sizes.(2)
        (red r.overall r.lumped_overall)
        (red r.level_sizes.(0) r.lumped_level_sizes.(0))
        (red r.level_sizes.(1) r.lumped_level_sizes.(1))
        (red r.level_sizes.(2) r.lumped_level_sizes.(2)))
    rows;
  print_endline "";
  print_endline "  unlumped SS                 lumped SS";
  print_endline "  J  gen time   MD space      lump time  MD space";
  List.iter
    (fun (r, _, _) ->
      Printf.printf "  %d  %7.2f s  %8.1f KB   %7.3f s  %7.1f KB\n" r.jobs r.gen_time
        (float_of_int r.md_bytes /. 1024.0)
        r.lump_time
        (float_of_int r.lumped_md_bytes /. 1024.0))
    rows;
  print_endline "";
  List.iter
    (fun (r, b, result) ->
      if not r.closed then
        Printf.printf "  WARNING: J=%d reachable set not class-closed\n" r.jobs;
      if check || do_validate then Printf.printf "  J=%d:\n" r.jobs;
      if check then check_optimal b result;
      if do_validate then validate b result)
    rows

#!/usr/bin/env python3
"""Validate the schema of BENCH_refine.json.

Fails (exit 1) when a scenario is missing the per-pipeline refiner
stats, when flat scenarios lack the three-engine timings, or when no
multi-level end-to-end scenario was recorded.  CI runs this after the
bench smoke so a refactor cannot silently drop the instrumentation the
performance claims rest on.

Usage: scripts/check_bench_schema.py [BENCH_refine.json]
"""

import json
import sys

STATS_FIELDS = [
    "splitter_passes",
    "key_evals",
    "splits",
    "blocks_created",
    "largest_skips",
    "float_passes",
    "interned_passes",
    "counting_sort_passes",
    "fallback_passes",
    "intern_keys",
    "wall_s",
]

FLAT_FIELDS = [
    "name",
    "states",
    "nnz",
    "classes",
    "ref_s",
    "generic_s",
    "float_s",
    "speedup_vs_ref",
    "speedup_vs_generic",
    "stats",
]

MULTILEVEL_FIELDS = [
    "name",
    "states",
    "levels",
    "lumped_states",
    "generic_s",
    "specialised_s",
    "speedup_vs_generic",
    "stats",
]


def fail(msg):
    print(f"BENCH_refine.json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for f in fields:
        if f not in obj:
            fail(f"{where}: missing field '{f}'")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_refine.json"
    with open(path) as fh:
        doc = json.load(fh)

    for f in ("bench", "repeats", "scenarios"):
        if f not in doc:
            fail(f"top level: missing field '{f}'")
    scenarios = doc["scenarios"]
    if not scenarios:
        fail("no scenarios recorded")

    kinds = {"flat": 0, "multilevel": 0}
    for sc in scenarios:
        kind = sc.get("kind")
        if kind not in kinds:
            fail(f"scenario {sc.get('name', '?')}: unknown kind {kind!r}")
        kinds[kind] += 1
        where = f"scenario {sc.get('name', '?')} ({kind})"
        check_fields(sc, FLAT_FIELDS if kind == "flat" else MULTILEVEL_FIELDS, where)
        check_fields(sc["stats"], STATS_FIELDS, f"{where}: stats")
        s = sc["stats"]
        pipeline = s["float_passes"] + s["interned_passes"] + s["fallback_passes"]
        if pipeline != s["splitter_passes"]:
            fail(
                f"{where}: pipeline passes {pipeline} != splitter passes "
                f"{s['splitter_passes']} (per-path stats incomplete)"
            )
        if s["counting_sort_passes"] > s["interned_passes"]:
            fail(f"{where}: counting_sort_passes exceeds interned_passes")

    if kinds["flat"] == 0:
        fail("no flat scenario recorded")
    if kinds["multilevel"] == 0:
        fail("no multi-level end-to-end scenario recorded")

    print(
        f"{path}: OK ({kinds['flat']} flat, {kinds['multilevel']} multi-level scenarios, "
        f"per-pipeline stats present)"
    )


if __name__ == "__main__":
    main()

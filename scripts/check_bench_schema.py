#!/usr/bin/env python3
"""Validate the schema of BENCH_refine.json.

Fails (exit 1) when a scenario is missing the per-pipeline refiner
stats (including the splitter-key cache and incremental-rebuild
counters), when flat scenarios lack the three-engine timings, when no
multi-level end-to-end scenario was recorded, when a multi-level
scenario lacks the per-phase span rollup (total/level/initial/fixpoint/
pass/rebuild seconds from the tracing layer), or when a multi-level
scenario's memoised pipeline does not at least match the uncached
interned pipeline (speedup_cached_vs_interned < 1.0; the timed races
run with tracing disabled, so this gate also pins the disabled-tracing
overhead at zero).  CI runs this after the bench smoke so a refactor
cannot silently drop the instrumentation or the cache advantage the
performance claims rest on.

Multi-level scenarios additionally carry a "domains" object — the
sequential-vs-parallel race on a reusable domain pool.  Its shape is
always validated (host_cores, par2_s/par4_s and the matching
speedup_par* fields, identical=true — the bench aborts before writing
JSON when a parallel diagram differs, so a recorded scenario implies
bit-identity).  The speedup gates are conditional on the recording
host: on a single-core host a "parallel" run only adds scheduling
overhead, so speedups are gated only when host_cores >= 2 — then every
scenario must reach speedup_par2 >= 1.0, and Kanban (the largest
model, where sharding has real work to amortise against) must reach
>= 1.15.

Multi-level scenarios also carry a "solvers" object — the steady-state
solver race on the lumped chain (power iteration, Gauss-Seidel in
reverse Cuthill-McKee order, Jacobi-preconditioned BiCGStab).  Each
solver must record positive time, a positive iteration count and
converged=true; the measures must agree (max_measure_delta <= 1e-9,
agree=true — the bench aborts before writing JSON otherwise); and the
Krylov solver must need no more iterations than power iteration, which
is the advantage the solver scale-up claims rest on.

Multi-level scenarios also carry a "sweeps" object — the batched
reward-sweep race (Compositional.lump_sweep over one diagram vs an
independent Compositional.lump per point).  The sweep must be
bit-identical to the one-shot path (identical=true, max_measure_delta
<= 1e-9 — the bench aborts otherwise), must actually reuse warm state
(cross_bind_hits > 0, some level fixpoint or rebuild served from the
memos, a non-empty persistent row store), and must amortise: the mean
warm-point time may never exceed the mean one-shot time
(amortised_speedup >= 1.0), and on Kanban it must reach >= 2.0.  These
gates are unconditional — cache reuse, unlike the domain race, owes
nothing to host parallelism.

Multi-level scenarios also carry a "serve" object — the same sweep sent
twice through an in-process lumpd daemon over its framed JSON socket
protocol, by two successive client connections.  Both responses must
agree point-by-point (identical=true — the bench aborts otherwise),
the second (warm) request must not be slower than the first (cold)
one, and the warm response must report cross-bind store hits and a
non-empty persistent row store: the daemon's value proposition is that
a later client never re-pays an earlier client's lumping work.

The document must also carry a top-level "load" object, recorded by
bench/loadgen.exe: N concurrent client threads driving a real daemon
with a mixed-verb workload over the framed JSON socket.  Shape and
gates: requests == clients * requests_per_client, every sample
accounted for across the per-verb entries, positive wall time and
throughput, zero protocol/verb errors overall and per verb, and every
verb's client-side latency quantiles ordered (p50 <= p95 <= p99 — the
nearest-rank estimator is monotone by construction, so a violation
means the recorder broke, not the daemon).

Usage: scripts/check_bench_schema.py [BENCH_refine.json]
"""

import json
import sys

STATS_FIELDS = [
    "splitter_passes",
    "key_evals",
    "splits",
    "blocks_created",
    "largest_skips",
    "float_passes",
    "interned_passes",
    "counting_sort_passes",
    "fallback_passes",
    "intern_keys",
    "cache_hits",
    "cache_misses",
    "nodes_rebuilt",
    "nodes_reused",
    "wall_s",
]

FLAT_FIELDS = [
    "name",
    "states",
    "nnz",
    "classes",
    "ref_s",
    "generic_s",
    "float_s",
    "speedup_vs_ref",
    "speedup_vs_generic",
    "stats",
]

MULTILEVEL_FIELDS = [
    "name",
    "states",
    "levels",
    "lumped_states",
    "generic_s",
    "specialised_s",
    "cached_s",
    "speedup_vs_generic",
    "speedup_cached_vs_interned",
    "solvers",
    "sweeps",
    "serve",
    "domains",
    "stats",
    "phases",
]

SERVE_FIELDS = [
    "points",
    "submit_s",
    "cold_request_s",
    "warm_request_s",
    "warm_speedup",
    "cross_bind_hits",
    "level_fixpoints_reused",
    "store_rows",
    "identical",
]

SWEEPS_FIELDS = [
    "points",
    "distinct_points",
    "cold_first_point_s",
    "amortised_point_s",
    "oneshot_point_s",
    "amortised_speedup",
    "cross_bind_hits",
    "level_fixpoints",
    "level_fixpoints_reused",
    "rebuilds",
    "rebuilds_reused",
    "store_rows",
    "max_measure_delta",
    "identical",
]

# Minimum oneshot_point_s/amortised_point_s per scenario.  The sweep
# engine must never lose to independent per-point lumping, and on the
# largest model (Kanban — the most splitter rows to reuse) it must
# amortise at least 2x.  Unlike the domain race this gate is NOT
# conditional on host_cores: the sweep's saving is cache reuse, not
# parallelism, so it holds on any host.
SWEEP_FLOOR_DEFAULT = 1.0
SWEEP_FLOOR_KANBAN = 2.0

SOLVER_NAMES = ["power", "gauss_seidel", "krylov"]

SOLVER_FIELDS = ["s", "iterations", "residual", "converged"]

# Measures reproduced by all three solvers must match to this tolerance
# (the bench exits 1 before writing JSON when they do not; the recorded
# value is re-checked here so a hand-edited file cannot sneak through).
MEASURE_DELTA_CEIL = 1e-9

DOMAINS_FIELDS = ["host_cores", "identical"]

# Minimum cached_s/parN_s per scenario when the recording host has at
# least 2 cores.  Kanban is the largest model (most rebuild rows and
# splitter members per pass), so it must show a real speedup; the
# smaller tandem instance only has to not regress.
PAR2_FLOOR_DEFAULT = 1.0
PAR2_FLOOR_KANBAN = 1.15

PHASE_FIELDS = [
    "total_s",
    "level_s",
    "initial_s",
    "fixpoint_s",
    "pass_s",
    "rebuild_s",
]

LOAD_FIELDS = [
    "clients",
    "requests_per_client",
    "requests",
    "wall_s",
    "throughput_rps",
    "errors",
    "verbs",
]

LOAD_VERB_FIELDS = ["count", "errors", "p50_s", "p95_s", "p99_s"]


def check_load(doc):
    if "load" not in doc:
        fail("top level: missing 'load' object (run bench/loadgen.exe)")
    load = doc["load"]
    check_fields(load, LOAD_FIELDS, "load")
    for f in ("clients", "requests_per_client", "requests"):
        if not isinstance(load[f], int) or load[f] < 1:
            fail(f"load.{f} is not a positive integer")
    if load["requests"] != load["clients"] * load["requests_per_client"]:
        fail(
            f"load.requests {load['requests']} != clients x requests_per_client "
            f"({load['clients']} x {load['requests_per_client']})"
        )
    if load["clients"] < 2:
        fail("load.clients < 2: the bench never exercised concurrent clients")
    if not isinstance(load["wall_s"], (int, float)) or load["wall_s"] <= 0:
        fail("load.wall_s is not a positive number")
    if not isinstance(load["throughput_rps"], (int, float)) or load["throughput_rps"] <= 0:
        fail("load.throughput_rps is not a positive number")
    if load["errors"] != 0:
        fail(f"load recorded {load['errors']} request errors")
    verbs = load["verbs"]
    if not isinstance(verbs, dict) or not verbs:
        fail("load.verbs is not a non-empty object")
    total = 0
    for verb, entry in verbs.items():
        where = f"load.verbs.{verb}"
        check_fields(entry, LOAD_VERB_FIELDS, where)
        if not isinstance(entry["count"], int) or entry["count"] < 1:
            fail(f"{where}: count is not a positive integer (verb never served)")
        if entry["errors"] != 0:
            fail(f"{where}: recorded {entry['errors']} errors")
        for f in ("p50_s", "p95_s", "p99_s"):
            if not isinstance(entry[f], (int, float)) or entry[f] < 0:
                fail(f"{where}: {f} is not a non-negative number")
        if not entry["p50_s"] <= entry["p95_s"] <= entry["p99_s"]:
            fail(
                f"{where}: latency quantiles not ordered "
                f"(p50 {entry['p50_s']}, p95 {entry['p95_s']}, p99 {entry['p99_s']})"
            )
        total += entry["count"]
    if total != load["requests"]:
        fail(
            f"load per-verb counts sum to {total}, not load.requests "
            f"{load['requests']} (samples lost)"
        )


def fail(msg):
    print(f"BENCH_refine.json schema error: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for f in fields:
        if f not in obj:
            fail(f"{where}: missing field '{f}'")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_refine.json"
    with open(path) as fh:
        doc = json.load(fh)

    for f in ("bench", "repeats", "scenarios"):
        if f not in doc:
            fail(f"top level: missing field '{f}'")
    scenarios = doc["scenarios"]
    if not scenarios:
        fail("no scenarios recorded")

    kinds = {"flat": 0, "multilevel": 0}
    for sc in scenarios:
        kind = sc.get("kind")
        if kind not in kinds:
            fail(f"scenario {sc.get('name', '?')}: unknown kind {kind!r}")
        kinds[kind] += 1
        where = f"scenario {sc.get('name', '?')} ({kind})"
        check_fields(sc, FLAT_FIELDS if kind == "flat" else MULTILEVEL_FIELDS, where)
        check_fields(sc["stats"], STATS_FIELDS, f"{where}: stats")
        s = sc["stats"]
        pipeline = s["float_passes"] + s["interned_passes"] + s["fallback_passes"]
        if pipeline != s["splitter_passes"]:
            fail(
                f"{where}: pipeline passes {pipeline} != splitter passes "
                f"{s['splitter_passes']} (per-path stats incomplete)"
            )
        if s["counting_sort_passes"] > s["interned_passes"]:
            fail(f"{where}: counting_sort_passes exceeds interned_passes")
        lookups = s["cache_hits"] + s["cache_misses"]
        if lookups > s["splitter_passes"]:
            fail(
                f"{where}: cache lookups {lookups} exceed splitter passes "
                f"{s['splitter_passes']} (at most one lookup per pass)"
            )
        if kind == "multilevel":
            if lookups == 0:
                fail(f"{where}: memoised run recorded no cache lookups")
            if s["nodes_rebuilt"] + s["nodes_reused"] == 0:
                fail(f"{where}: rebuild recorded neither rebuilt nor reused nodes")
            check_fields(sc["phases"], PHASE_FIELDS, f"{where}: phases")
            ph = sc["phases"]
            for f in PHASE_FIELDS:
                if not isinstance(ph[f], (int, float)) or ph[f] < 0:
                    fail(f"{where}: phases.{f} is not a non-negative number")
            if ph["total_s"] <= 0:
                fail(f"{where}: phases.total_s is zero (instrumented run not traced)")
            # Spans nest: passes inside fixpoints inside per-level spans
            # inside the whole lump, so the inclusive rollups are ordered.
            # 1e-6 slack absorbs the %.6f serialisation rounding.
            eps = 1e-6
            for inner, outer in [
                ("pass_s", "fixpoint_s"),
                ("fixpoint_s", "level_s"),
                ("initial_s", "level_s"),
                ("level_s", "total_s"),
                ("rebuild_s", "total_s"),
            ]:
                if ph[inner] > ph[outer] + eps:
                    fail(
                        f"{where}: phases.{inner} ({ph[inner]}) exceeds enclosing "
                        f"phases.{outer} ({ph[outer]})"
                    )
            ratio = sc["speedup_cached_vs_interned"]
            if ratio < 1.0:
                fail(
                    f"{where}: memoised pipeline slower than uncached interned "
                    f"pipeline ({ratio:.3f}x)"
                )
            check_fields(sc["solvers"], ["max_measure_delta", "agree"] + SOLVER_NAMES,
                         f"{where}: solvers")
            sol = sc["solvers"]
            if sol["agree"] is not True:
                fail(f"{where}: solvers.agree is not true")
            delta = sol["max_measure_delta"]
            if not isinstance(delta, (int, float)) or delta < 0:
                fail(f"{where}: solvers.max_measure_delta is not a non-negative number")
            if delta > MEASURE_DELTA_CEIL:
                fail(
                    f"{where}: solvers disagree on measures "
                    f"(max_measure_delta {delta:.3e} > {MEASURE_DELTA_CEIL:.0e})"
                )
            for name in SOLVER_NAMES:
                swhere = f"{where}: solvers.{name}"
                check_fields(sol[name], SOLVER_FIELDS, swhere)
                entry = sol[name]
                if not isinstance(entry["s"], (int, float)) or entry["s"] <= 0:
                    fail(f"{swhere}: s is not a positive number")
                if not isinstance(entry["iterations"], int) or entry["iterations"] <= 0:
                    fail(f"{swhere}: iterations is not a positive integer")
                if not isinstance(entry["residual"], (int, float)) or entry["residual"] < 0:
                    fail(f"{swhere}: residual is not a non-negative number")
                if entry["converged"] is not True:
                    fail(f"{swhere}: converged is not true")
            # The point of the Krylov solver: convergence in (far) fewer
            # iterations than power iteration on the same lumped chain.
            if sol["krylov"]["iterations"] > sol["power"]["iterations"]:
                fail(
                    f"{where}: krylov took more iterations than power "
                    f"({sol['krylov']['iterations']} > {sol['power']['iterations']})"
                )
            check_fields(sc["sweeps"], SWEEPS_FIELDS, f"{where}: sweeps")
            sw = sc["sweeps"]
            if sw["identical"] is not True:
                fail(f"{where}: sweeps.identical is not true")
            if not isinstance(sw["points"], int) or sw["points"] < 2:
                fail(f"{where}: sweeps.points is not an integer >= 2 (no amortisation "
                     f"to measure)")
            if not isinstance(sw["distinct_points"], int) or not (
                2 <= sw["distinct_points"] <= sw["points"]
            ):
                fail(f"{where}: sweeps.distinct_points out of range")
            for f in ("cold_first_point_s", "amortised_point_s", "oneshot_point_s"):
                if not isinstance(sw[f], (int, float)) or sw[f] <= 0:
                    fail(f"{where}: sweeps.{f} is not a positive number")
            delta = sw["max_measure_delta"]
            if not isinstance(delta, (int, float)) or delta < 0:
                fail(f"{where}: sweeps.max_measure_delta is not a non-negative number")
            if delta > MEASURE_DELTA_CEIL:
                fail(
                    f"{where}: sweep measures disagree with the one-shot path "
                    f"(max_measure_delta {delta:.3e} > {MEASURE_DELTA_CEIL:.0e})"
                )
            for f in ("level_fixpoints", "level_fixpoints_reused", "rebuilds",
                      "rebuilds_reused", "store_rows", "cross_bind_hits"):
                if not isinstance(sw[f], int) or sw[f] < 0:
                    fail(f"{where}: sweeps.{f} is not a non-negative integer")
            # Every multi-point sweep must actually exercise the cross-bind
            # tier — zero hits means row persistence silently stopped
            # working (the bench family includes a complement-indicator
            # point designed to guarantee store reuse).
            if sw["cross_bind_hits"] == 0:
                fail(f"{where}: multi-point sweep recorded no cross-bind cache hits")
            if sw["level_fixpoints_reused"] + sw["rebuilds_reused"] == 0:
                fail(f"{where}: sweep reused neither level fixpoints nor rebuilds")
            if sw["store_rows"] == 0:
                fail(f"{where}: persistent row store is empty after the sweep")
            floor = (
                SWEEP_FLOOR_KANBAN
                if "kanban" in sc["name"].lower()
                else SWEEP_FLOOR_DEFAULT
            )
            if sw["amortised_speedup"] < floor:
                fail(
                    f"{where}: amortised sweep speedup {sw['amortised_speedup']:.3f}x "
                    f"below the {floor:.2f}x floor"
                )
            check_fields(sc["serve"], SERVE_FIELDS, f"{where}: serve")
            srv = sc["serve"]
            if srv["identical"] is not True:
                fail(f"{where}: serve.identical is not true")
            if not isinstance(srv["points"], int) or srv["points"] < 2:
                fail(f"{where}: serve.points is not an integer >= 2")
            for f in ("submit_s", "cold_request_s", "warm_request_s", "warm_speedup"):
                if not isinstance(srv[f], (int, float)) or srv[f] <= 0:
                    fail(f"{where}: serve.{f} is not a positive number")
            for f in ("cross_bind_hits", "level_fixpoints_reused", "store_rows"):
                if not isinstance(srv[f], int) or srv[f] < 0:
                    fail(f"{where}: serve.{f} is not a non-negative integer")
            # The daemon's whole value proposition: a second client's
            # identical sweep must ride the warm engine and persistent
            # store, never re-paying the cold request.
            if srv["warm_request_s"] > srv["cold_request_s"]:
                fail(
                    f"{where}: warm serve request slower than the cold one "
                    f"({srv['warm_request_s']:.4f}s > {srv['cold_request_s']:.4f}s)"
                )
            if srv["cross_bind_hits"] == 0:
                fail(f"{where}: warm serve sweep recorded no cross-bind cache hits")
            if srv["store_rows"] == 0:
                fail(f"{where}: serve persistent row store is empty after the sweeps")
            check_fields(sc["domains"], DOMAINS_FIELDS, f"{where}: domains")
            dom = sc["domains"]
            if dom["identical"] is not True:
                fail(f"{where}: domains.identical is not true")
            if not isinstance(dom["host_cores"], int) or dom["host_cores"] < 1:
                fail(f"{where}: domains.host_cores is not a positive integer")
            raced = sorted(
                int(k[len("par"):-len("_s")])
                for k in dom
                if k.startswith("par") and k.endswith("_s")
            )
            for d in raced:
                for f in (f"par{d}_s", f"speedup_par{d}"):
                    if not isinstance(dom.get(f), (int, float)) or dom[f] <= 0:
                        fail(f"{where}: domains.{f} is not a positive number")
            if 2 not in raced:
                fail(f"{where}: domains race does not include 2 domains")
            if dom["host_cores"] >= 2:
                floor = (
                    PAR2_FLOOR_KANBAN
                    if "kanban" in sc["name"].lower()
                    else PAR2_FLOOR_DEFAULT
                )
                if dom["speedup_par2"] < floor:
                    fail(
                        f"{where}: 2-domain speedup {dom['speedup_par2']:.3f}x below "
                        f"the {floor:.2f}x floor on a {dom['host_cores']}-core host"
                    )

    if kinds["flat"] == 0:
        fail("no flat scenario recorded")
    if kinds["multilevel"] == 0:
        fail("no multi-level end-to-end scenario recorded")

    check_load(doc)

    load = doc["load"]
    print(
        f"{path}: OK ({kinds['flat']} flat, {kinds['multilevel']} multi-level scenarios, "
        f"per-pipeline stats, solver races, domain races, batched sweeps and serve "
        f"races present; load: {load['clients']} clients, "
        f"{load['throughput_rps']:.1f} req/s, 0 errors)"
    )


if __name__ == "__main__":
    main()

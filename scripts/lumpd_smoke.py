#!/usr/bin/env python3
"""End-to-end smoke test of the lumpd daemon, as CI runs it.

Boots the built daemon on a private Unix socket with an ephemeral
Prometheus port, then exercises one request per protocol verb through
the framed newline-JSON wire path (docs/PROTOCOL.md):

  submit-model  polling model, then an idempotent re-submit (fresh=false)
  lump          ordinary mode on the submitted model
  sweep         twice with identical points: the second (warm) response
                must report cross_bind_hits > 0 — a later client rides
                the earlier client's lumping work
  solve         power iteration; measures must be finite probabilities
  stats         must list the model with the points run so far, and
                carry the per-verb counters/quantiles array
  ping          round trip, then once more with "trace": true — the
                response must carry a span rollup naming serve.request
                and serve.ping under a server-side request id
  shutdown      graceful drain; the process must exit 0 by itself

A deliberately malformed frame must come back as a typed parse_error
(not a hangup).  A 4-client mini-load (each client on its own
connection, a mixed ping/stats/lump cycle) must complete with zero
errors.  The Prometheus scrape is validated with scripts/check_prom.py,
requiring the serve_*, lump_* and key_cache_* families plus the
per-verb family set for every protocol verb (--verbs).  The daemon
boots with --access-log; after the clean drain the log must hold one
JSON line per handled request, with distinct server request ids and
every smoke client id present.

Usage: scripts/lumpd_smoke.py [path/to/lumpd.exe]
       (default: _build/default/bin/lumpd.exe)
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
DEFAULT_EXE = os.path.join(SCRIPTS, "..", "_build", "default", "bin", "lumpd.exe")


def fail(msg):
    print(f"lumpd smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def send_frame(sock, payload: bytes):
    sock.sendall(b"%d\n%s\n" % (len(payload), payload))


def recv_frame(sock, deadline):
    buf = b""
    while b"\n" not in buf:
        chunk = _recv(sock, 1, deadline)
        buf += chunk
    length = int(buf.split(b"\n", 1)[0])
    body = buf.split(b"\n", 1)[1]
    while len(body) < length + 1:  # payload + trailing newline
        body += _recv(sock, length + 1 - len(body), deadline)
    return body[:length]


def _recv(sock, n, deadline):
    sock.settimeout(max(0.1, deadline - time.monotonic()))
    chunk = sock.recv(n)
    if not chunk:
        fail("daemon closed the connection mid-frame")
    return chunk


def request(sock, obj, timeout=60.0):
    deadline = time.monotonic() + timeout
    send_frame(sock, json.dumps(obj).encode())
    return json.loads(recv_frame(sock, deadline))


def expect_ok(resp, verb):
    if resp.get("ok") is not True:
        fail(f"{verb}: expected ok response, got {resp}")
    if resp.get("verb") != verb:
        fail(f"{verb}: response names verb {resp.get('verb')!r}")
    return resp["result"]


def expect_error(resp, code, where):
    if resp.get("ok") is not False:
        fail(f"{where}: expected error response, got {resp}")
    got = resp.get("error", {}).get("code")
    if got != code:
        fail(f"{where}: expected error code {code!r}, got {got!r}")


def main():
    exe = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_EXE
    if not os.path.exists(exe):
        fail(f"daemon binary not found at {exe} (run dune build first)")
    tmpdir = tempfile.mkdtemp(prefix="lumpd-smoke-")
    sock_path = os.path.join(tmpdir, "lumpd.sock")
    access_path = os.path.join(tmpdir, "access.log")
    proc = subprocess.Popen(
        [
            exe,
            "--socket", sock_path,
            "--metrics-port", "0",
            "--timeout", "60000",
            "--access-log", access_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    metrics_url = None
    try:
        # The daemon prints its bound addresses at boot.
        boot_deadline = time.monotonic() + 30
        while time.monotonic() < boot_deadline:
            line = proc.stdout.readline()
            if not line:
                fail(f"daemon exited at boot (rc={proc.poll()})")
            print(f"  boot: {line.rstrip()}")
            if line.startswith("metrics on "):
                metrics_url = line.split("metrics on ", 1)[1].strip()
                break
        if metrics_url is None:
            fail("daemon never announced its metrics port")

        c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        c.connect(sock_path)

        # submit-model, then the idempotent re-submit.
        submit = {
            "v": 1,
            "id": "smoke-1",
            "verb": "submit-model",
            "model": "m",
            "family": "polling",
            "size": 3,
        }
        info = expect_ok(request(c, submit), "submit-model")
        if not info.get("fresh"):
            fail("first submit-model not fresh")
        if info.get("states", 0) <= 0:
            fail("submit-model reported no states")
        print(f"  submit-model: {info['states']} states, {info['levels']} levels")
        info2 = expect_ok(request(c, submit), "submit-model")
        if info2.get("fresh"):
            fail("identical re-submit claimed to be fresh")

        # lump
        lump = expect_ok(
            request(c, {"id": "smoke-2", "verb": "lump", "model": "m"}), "lump"
        )
        if lump.get("lumped_states", 0) <= 0:
            fail("lump reported no lumped states")
        print(f"  lump: {lump['lumped_states']} lumped states")

        # sweep, cold then warm (same points, fresh connection for warm)
        points = [
            {},
            {"extra_rewards": [{"level": 1, "op": ">=", "k": 1}]},
            {"extra_rewards": [{"level": 1, "op": "<", "k": 1}]},
        ]
        sweep = {"id": "smoke-3", "verb": "sweep", "model": "m", "points": points}
        cold = expect_ok(request(c, sweep), "sweep")
        c.close()
        c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        c.connect(sock_path)
        warm = expect_ok(request(c, sweep), "sweep")
        if warm.get("cross_bind_hits", 0) <= 0:
            fail("warm sweep reported no cross-bind hits — the store went cold")
        if [p["lumped_states"] for p in cold["points"]] != [
            p["lumped_states"] for p in warm["points"]
        ]:
            fail("warm sweep disagrees with the cold one")
        if warm["wall_s"] > cold["wall_s"]:
            print(
                f"  sweep: WARNING warm {warm['wall_s']:.4f}s > cold "
                f"{cold['wall_s']:.4f}s (noisy host?)"
            )
        print(
            f"  sweep: cold {cold['wall_s']:.4f}s warm {warm['wall_s']:.4f}s "
            f"cross-bind {warm['cross_bind_hits']}"
        )

        # solve
        solve = expect_ok(
            request(
                c,
                {"id": "smoke-4", "verb": "solve", "model": "m", "solver": "power"},
            ),
            "solve",
        )
        if not solve.get("converged"):
            fail("solve did not converge")
        for name, value in solve.get("measures", {}).items():
            if not (isinstance(value, (int, float)) and value == value):
                fail(f"solve measure {name} is not a finite number")
        print(f"  solve: {solve['iterations']} iterations, measures {solve['measures']}")

        # stats
        stats = expect_ok(request(c, {"id": "smoke-5", "verb": "stats"}), "stats")
        models = {m["model"]: m for m in stats.get("models", [])}
        if "m" not in models:
            fail("stats does not list the submitted model")
        if models["m"].get("points", 0) < 2 * len(points):
            fail("stats under-counts the sweep points run")
        by_verb = {v["verb"]: v for v in stats.get("verbs", [])}
        if "ping" not in by_verb or "lump" not in by_verb:
            fail(f"stats.verbs is missing served verbs: {sorted(by_verb)}")
        if by_verb["lump"].get("requests", 0) < 1:
            fail("stats.verbs under-counts lump requests")
        for v in by_verb.values():
            if not (0 <= v["p50_s"] <= v["p95_s"] <= v["p99_s"]):
                fail(f"stats.verbs quantiles not monotone: {v}")
        print(f"  stats: {models['m']}")
        print(f"  stats: {len(by_verb)} per-verb entries, quantiles monotone")

        # ping
        expect_ok(request(c, {"id": "smoke-6", "verb": "ping"}), "ping")
        print("  ping: pong")

        # traced ping: the opt-in span rollup rides the response under a
        # server-side request id.
        traced = request(c, {"id": "smoke-trace", "verb": "ping", "trace": True})
        expect_ok(traced, "ping")
        rollup = traced.get("trace")
        if not isinstance(rollup, dict):
            fail(f"traced ping carried no trace rollup: {traced}")
        if not str(rollup.get("request", "")).startswith("r-"):
            fail(f"trace rollup has no server request id: {rollup}")
        span_names = {sp["name"] for sp in rollup.get("spans", [])}
        if not {"serve.request", "serve.ping"} <= span_names:
            fail(f"trace rollup is missing the serve spans: {sorted(span_names)}")
        print(f"  trace: rollup {rollup['request']} with spans {sorted(span_names)}")

        # malformed payload in a well-formed frame: typed error, socket
        # stays usable.
        send_frame(c, b"{not json")
        resp = json.loads(recv_frame(c, time.monotonic() + 10))
        expect_error(resp, "parse_error", "malformed payload")
        expect_ok(request(c, {"id": "smoke-7", "verb": "ping"}), "ping")
        print("  malformed payload: typed parse_error, connection survived")

        # 4-client mini-load: each client on its own connection, a mixed
        # control/work cycle, zero errors tolerated.
        load_clients, load_requests = 4, 6
        load_mix = [
            {"verb": "ping"},
            {"verb": "stats"},
            {"verb": "lump", "model": "m"},
            {"verb": "ping"},
            {"verb": "sweep", "model": "m", "points": [{}]},
            {"verb": "stats"},
        ]
        load_failures = []

        def load_client(n):
            try:
                lc = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                lc.connect(sock_path)
                for i in range(load_requests):
                    rq = dict(load_mix[i % len(load_mix)])
                    rq["id"] = f"load-{n}-{i}"
                    resp = request(lc, rq)
                    if resp.get("ok") is not True:
                        load_failures.append(f"client {n} request {i}: {resp}")
                lc.close()
            except Exception as exc:  # noqa: BLE001 — reported, not swallowed
                load_failures.append(f"client {n}: {exc!r}")

        threads = [
            threading.Thread(target=load_client, args=(n,))
            for n in range(load_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if load_failures:
            fail("mini-load errors: " + "; ".join(load_failures[:4]))
        print(
            f"  mini-load: {load_clients} clients x {load_requests} requests, 0 errors"
        )

        # Prometheus scrape, validated by check_prom.py with the
        # families the dashboards rely on.
        body = urllib.request.urlopen(metrics_url, timeout=10).read()
        with tempfile.NamedTemporaryFile(
            mode="wb", suffix=".prom", delete=False
        ) as fh:
            fh.write(body)
            prom_path = fh.name
        subprocess.run(
            [
                sys.executable,
                os.path.join(SCRIPTS, "check_prom.py"),
                prom_path,
                "serve_requests",
                "serve_connections",
                "serve_inflight",
                "serve_request_seconds",
                "serve_control_seconds",
                "serve_uptime_seconds",
                "lump_runs",
                "key_cache_hits",
                "key_cache_misses",
                "--verbs",
                "submit-model,lump,sweep,solve,stats,ping,shutdown",
            ],
            check=True,
        )
        os.unlink(prom_path)

        # shutdown: ack, then the process drains and exits by itself.
        ack = expect_ok(request(c, {"id": "smoke-8", "verb": "shutdown"}), "shutdown")
        if ack.get("draining") is not True:
            fail("shutdown did not acknowledge draining")
        c.close()
        rc = proc.wait(timeout=30)
        if rc != 0:
            fail(f"daemon exited {rc} after shutdown")

        # Access log: one structured JSON line per handled request.  The
        # malformed frame never reached the dispatcher, so it must NOT
        # appear; every client id that did must.
        with open(access_path) as fh:
            lines = [ln for ln in fh.read().split("\n") if ln]
        if not lines:
            fail("access log is empty after the smoke run")
        entries = []
        for ln in lines:
            try:
                entries.append(json.loads(ln))
            except json.JSONDecodeError as exc:
                fail(f"access log line is not JSON ({exc}): {ln!r}")
        server_ids = [e.get("request") for e in entries]
        if len(set(server_ids)) != len(server_ids):
            fail("access log server request ids are not distinct")
        for e in entries:
            for field in ("ts", "request", "verb", "queue_ns", "exec_ns",
                          "status", "bytes"):
                if field not in e:
                    fail(f"access log entry missing {field!r}: {e}")
            if not str(e["request"]).startswith("r-"):
                fail(f"access log entry has malformed server id: {e}")
            if e["queue_ns"] < 0 or e["exec_ns"] < 0 or e["bytes"] <= 0:
                fail(f"access log entry has implausible timings/bytes: {e}")
        client_ids = {e.get("id") for e in entries}
        expected_ids = {f"smoke-{n}" for n in range(1, 9)} | {"smoke-trace"} | {
            f"load-{n}-{i}"
            for n in range(load_clients)
            for i in range(load_requests)
        }
        missing_ids = expected_ids - client_ids
        if missing_ids:
            fail(f"access log is missing client ids: {sorted(missing_ids)[:6]}")
        logged_verbs = {e["verb"] for e in entries}
        for verb in ("submit-model", "lump", "sweep", "solve", "stats", "ping",
                     "shutdown"):
            if verb not in logged_verbs:
                fail(f"access log never recorded verb {verb!r}")
        statuses = {e.get("id"): e["status"] for e in entries}
        if statuses.get("smoke-6") != "ok":
            fail(f"access log status for smoke-6 is {statuses.get('smoke-6')!r}")
        print(f"  access log: {len(entries)} entries, ids distinct, all verbs seen")

        print(
            "lumpd smoke: OK (all verbs, traced ping, error path, mini-load, "
            "metrics scrape, access log, clean drain)"
        )
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()

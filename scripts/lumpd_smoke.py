#!/usr/bin/env python3
"""End-to-end smoke test of the lumpd daemon, as CI runs it.

Boots the built daemon on a private Unix socket with an ephemeral
Prometheus port, then exercises one request per protocol verb through
the framed newline-JSON wire path (docs/PROTOCOL.md):

  submit-model  polling model, then an idempotent re-submit (fresh=false)
  lump          ordinary mode on the submitted model
  sweep         twice with identical points: the second (warm) response
                must report cross_bind_hits > 0 — a later client rides
                the earlier client's lumping work
  solve         power iteration; measures must be finite probabilities
  stats         must list the model with the points run so far
  ping          round trip
  shutdown      graceful drain; the process must exit 0 by itself

A deliberately malformed frame must come back as a typed parse_error
(not a hangup), and the Prometheus scrape is validated with
scripts/check_prom.py, requiring the serve_*, lump_* and key_cache_*
families.

Usage: scripts/lumpd_smoke.py [path/to/lumpd.exe]
       (default: _build/default/bin/lumpd.exe)
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
DEFAULT_EXE = os.path.join(SCRIPTS, "..", "_build", "default", "bin", "lumpd.exe")


def fail(msg):
    print(f"lumpd smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def send_frame(sock, payload: bytes):
    sock.sendall(b"%d\n%s\n" % (len(payload), payload))


def recv_frame(sock, deadline):
    buf = b""
    while b"\n" not in buf:
        chunk = _recv(sock, 1, deadline)
        buf += chunk
    length = int(buf.split(b"\n", 1)[0])
    body = buf.split(b"\n", 1)[1]
    while len(body) < length + 1:  # payload + trailing newline
        body += _recv(sock, length + 1 - len(body), deadline)
    return body[:length]


def _recv(sock, n, deadline):
    sock.settimeout(max(0.1, deadline - time.monotonic()))
    chunk = sock.recv(n)
    if not chunk:
        fail("daemon closed the connection mid-frame")
    return chunk


def request(sock, obj, timeout=60.0):
    deadline = time.monotonic() + timeout
    send_frame(sock, json.dumps(obj).encode())
    return json.loads(recv_frame(sock, deadline))


def expect_ok(resp, verb):
    if resp.get("ok") is not True:
        fail(f"{verb}: expected ok response, got {resp}")
    if resp.get("verb") != verb:
        fail(f"{verb}: response names verb {resp.get('verb')!r}")
    return resp["result"]


def expect_error(resp, code, where):
    if resp.get("ok") is not False:
        fail(f"{where}: expected error response, got {resp}")
    got = resp.get("error", {}).get("code")
    if got != code:
        fail(f"{where}: expected error code {code!r}, got {got!r}")


def main():
    exe = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_EXE
    if not os.path.exists(exe):
        fail(f"daemon binary not found at {exe} (run dune build first)")
    sock_path = os.path.join(
        tempfile.mkdtemp(prefix="lumpd-smoke-"), "lumpd.sock"
    )
    proc = subprocess.Popen(
        [exe, "--socket", sock_path, "--metrics-port", "0", "--timeout", "60000"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    metrics_url = None
    try:
        # The daemon prints its bound addresses at boot.
        boot_deadline = time.monotonic() + 30
        while time.monotonic() < boot_deadline:
            line = proc.stdout.readline()
            if not line:
                fail(f"daemon exited at boot (rc={proc.poll()})")
            print(f"  boot: {line.rstrip()}")
            if line.startswith("metrics on "):
                metrics_url = line.split("metrics on ", 1)[1].strip()
                break
        if metrics_url is None:
            fail("daemon never announced its metrics port")

        c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        c.connect(sock_path)

        # submit-model, then the idempotent re-submit.
        submit = {
            "v": 1,
            "id": "smoke-1",
            "verb": "submit-model",
            "model": "m",
            "family": "polling",
            "size": 3,
        }
        info = expect_ok(request(c, submit), "submit-model")
        if not info.get("fresh"):
            fail("first submit-model not fresh")
        if info.get("states", 0) <= 0:
            fail("submit-model reported no states")
        print(f"  submit-model: {info['states']} states, {info['levels']} levels")
        info2 = expect_ok(request(c, submit), "submit-model")
        if info2.get("fresh"):
            fail("identical re-submit claimed to be fresh")

        # lump
        lump = expect_ok(
            request(c, {"id": "smoke-2", "verb": "lump", "model": "m"}), "lump"
        )
        if lump.get("lumped_states", 0) <= 0:
            fail("lump reported no lumped states")
        print(f"  lump: {lump['lumped_states']} lumped states")

        # sweep, cold then warm (same points, fresh connection for warm)
        points = [
            {},
            {"extra_rewards": [{"level": 1, "op": ">=", "k": 1}]},
            {"extra_rewards": [{"level": 1, "op": "<", "k": 1}]},
        ]
        sweep = {"id": "smoke-3", "verb": "sweep", "model": "m", "points": points}
        cold = expect_ok(request(c, sweep), "sweep")
        c.close()
        c = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        c.connect(sock_path)
        warm = expect_ok(request(c, sweep), "sweep")
        if warm.get("cross_bind_hits", 0) <= 0:
            fail("warm sweep reported no cross-bind hits — the store went cold")
        if [p["lumped_states"] for p in cold["points"]] != [
            p["lumped_states"] for p in warm["points"]
        ]:
            fail("warm sweep disagrees with the cold one")
        if warm["wall_s"] > cold["wall_s"]:
            print(
                f"  sweep: WARNING warm {warm['wall_s']:.4f}s > cold "
                f"{cold['wall_s']:.4f}s (noisy host?)"
            )
        print(
            f"  sweep: cold {cold['wall_s']:.4f}s warm {warm['wall_s']:.4f}s "
            f"cross-bind {warm['cross_bind_hits']}"
        )

        # solve
        solve = expect_ok(
            request(
                c,
                {"id": "smoke-4", "verb": "solve", "model": "m", "solver": "power"},
            ),
            "solve",
        )
        if not solve.get("converged"):
            fail("solve did not converge")
        for name, value in solve.get("measures", {}).items():
            if not (isinstance(value, (int, float)) and value == value):
                fail(f"solve measure {name} is not a finite number")
        print(f"  solve: {solve['iterations']} iterations, measures {solve['measures']}")

        # stats
        stats = expect_ok(request(c, {"id": "smoke-5", "verb": "stats"}), "stats")
        models = {m["model"]: m for m in stats.get("models", [])}
        if "m" not in models:
            fail("stats does not list the submitted model")
        if models["m"].get("points", 0) < 2 * len(points):
            fail("stats under-counts the sweep points run")
        print(f"  stats: {models['m']}")

        # ping
        expect_ok(request(c, {"id": "smoke-6", "verb": "ping"}), "ping")
        print("  ping: pong")

        # malformed payload in a well-formed frame: typed error, socket
        # stays usable.
        send_frame(c, b"{not json")
        resp = json.loads(recv_frame(c, time.monotonic() + 10))
        expect_error(resp, "parse_error", "malformed payload")
        expect_ok(request(c, {"id": "smoke-7", "verb": "ping"}), "ping")
        print("  malformed payload: typed parse_error, connection survived")

        # Prometheus scrape, validated by check_prom.py with the
        # families the dashboards rely on.
        body = urllib.request.urlopen(metrics_url, timeout=10).read()
        with tempfile.NamedTemporaryFile(
            mode="wb", suffix=".prom", delete=False
        ) as fh:
            fh.write(body)
            prom_path = fh.name
        subprocess.run(
            [
                sys.executable,
                os.path.join(SCRIPTS, "check_prom.py"),
                prom_path,
                "serve_requests",
                "serve_connections",
                "serve_inflight",
                "serve_request_seconds",
                "lump_runs",
                "key_cache_hits",
                "key_cache_misses",
            ],
            check=True,
        )
        os.unlink(prom_path)

        # shutdown: ack, then the process drains and exits by itself.
        ack = expect_ok(request(c, {"id": "smoke-8", "verb": "shutdown"}), "shutdown")
        if ack.get("draining") is not True:
            fail("shutdown did not acknowledge draining")
        c.close()
        rc = proc.wait(timeout=30)
        if rc != 0:
            fail(f"daemon exited {rc} after shutdown")
        print("lumpd smoke: OK (all verbs, error path, metrics scrape, clean drain)")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) scrape.

Reads the scrape body from FILE (or stdin when FILE is "-") and fails
(exit 1) unless it is well-formed:

  - every line is a comment, a "# HELP <name> <text>" / "# TYPE <name>
    <type>" annotation, a sample, or blank;
  - TYPE annotations name a known type (counter, gauge, histogram,
    summary, untyped) and appear at most once per family, before the
    family's samples;
  - sample names and label names are legal, label values are quoted,
    and sample values parse as floats ("NaN"/"+Inf"/"-Inf" included);
  - counter and gauge samples carry no unexplained suffix;
  - every histogram family has _bucket/_sum/_count samples, its bucket
    counts are cumulative (non-decreasing in ascending "le" order), it
    ends with an le="+Inf" bucket, and that bucket equals _count.

Any further arguments are metric families that must be present with at
least one sample — CI passes the serve_*, lump_* and key_cache_*
families so a metrics refactor cannot silently drop the series the
dashboards are built on.

--verbs VERB[,VERB...] additionally requires the full per-verb family
set the server registers for each listed protocol verb —
serve.verb.<verb>.{requests,errors} as counters and
serve.verb.<verb>.{queue_seconds,exec_seconds} as histograms — after
applying the exporter's name mangling (every character outside
[a-zA-Z0-9_:] becomes '_', so verb "submit-model" is checked as
serve_verb_submit_model_requests and friends).  This pins both the
family layout and the mangling rule: a rename on either side breaks
the scrape check, not just the dashboards.

Usage: scripts/check_prom.py FILE [required_family ...] [--verbs V1,V2]
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(msg):
    print(f"prometheus exposition error: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return float(text.replace("Inf", "inf"))
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparsable sample value {text!r}")


def split_labels(raw, where):
    """'a="x",b="y"' -> dict, honouring escaped quotes."""
    labels = {}
    if raw is None or raw == "":
        return labels
    parts, cur, in_str, esc = [], "", False, False
    for ch in raw:
        if esc:
            cur += ch
            esc = False
        elif ch == "\\":
            cur += ch
            esc = True
        elif ch == '"':
            cur += ch
            in_str = not in_str
        elif ch == "," and not in_str:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    if cur:
        parts.append(cur)
    for part in parts:
        m = LABEL_RE.match(part)
        if not m:
            fail(f"{where}: malformed label {part!r}")
        labels[m.group("name")] = m.group("value")
    return labels


def family_of(sample_name):
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def mangle(name):
    """The exporter's metric-name mangling: anything outside the legal
    Prometheus name alphabet becomes '_' (dots and dashes included)."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


# The per-verb family set lib/serve/server.ml registers for every verb,
# with the type each must be declared as.
VERB_FAMILY_SUFFIXES = [
    ("requests", "counter"),
    ("errors", "counter"),
    ("queue_seconds", "histogram"),
    ("exec_seconds", "histogram"),
]


def main():
    argv = sys.argv[1:]
    verbs = []
    if "--verbs" in argv:
        i = argv.index("--verbs")
        if i + 1 >= len(argv):
            fail("--verbs needs a comma-separated verb list")
        verbs = [v for v in argv[i + 1].split(",") if v]
        argv = argv[:i] + argv[i + 2:]
    if not argv:
        fail("usage: check_prom.py FILE [required_family ...] [--verbs V1,V2]")
    path = argv[0]
    required = argv[1:]
    body = sys.stdin.read() if path == "-" else open(path).read()

    types = {}  # family -> declared type
    helped = set()
    samples = {}  # family -> list of (suffix, labels, value)
    seen_sample_for = set()

    for lineno, line in enumerate(body.split("\n"), start=1):
        where = f"line {lineno}"
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    fail(f"{where}: malformed {parts[1]} annotation: {line!r}")
                name = parts[2]
                if parts[1] == "HELP":
                    if name in helped:
                        fail(f"{where}: duplicate HELP for {name}")
                    helped.add(name)
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in TYPES:
                        fail(f"{where}: unknown TYPE {kind!r} for {name}")
                    if name in types:
                        fail(f"{where}: duplicate TYPE for {name}")
                    if name in seen_sample_for:
                        fail(f"{where}: TYPE for {name} after its samples")
                    types[name] = kind
            # other comments are legal and ignored
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: unparsable sample line: {line!r}")
        name = m.group("name")
        labels = split_labels(m.group("labels"), where)
        value = parse_value(m.group("value"), where)
        fam = family_of(name)
        if fam not in types:
            fam = name  # _bucket/_sum/_count on an undeclared family
        seen_sample_for.add(fam)
        suffix = name[len(fam):] if name.startswith(fam) else ""
        samples.setdefault(fam, []).append((suffix, labels, value))
        kind = types.get(fam)
        if kind in ("counter", "gauge") and suffix:
            fail(f"{where}: {kind} family {fam} has suffixed sample {name}")
        if kind == "counter" and value < 0:
            fail(f"{where}: counter {name} is negative ({value})")

    for fam, kind in types.items():
        if fam not in samples:
            fail(f"family {fam} declares TYPE {kind} but exposes no samples")
        if kind != "histogram":
            continue
        buckets, total_sum, total_count = [], None, None
        for suffix, labels, value in samples[fam]:
            if suffix == "_bucket":
                if "le" not in labels:
                    fail(f"histogram {fam}: bucket without an le label")
                le = labels["le"]
                buckets.append((float("inf") if le == "+Inf" else float(le), value))
            elif suffix == "_sum":
                total_sum = value
            elif suffix == "_count":
                total_count = value
            else:
                fail(f"histogram {fam}: unexpected sample suffix {suffix!r}")
        if not buckets:
            fail(f"histogram {fam}: no _bucket samples")
        if total_sum is None or total_count is None:
            fail(f"histogram {fam}: missing _sum or _count")
        in_order = sorted(buckets, key=lambda b: b[0])
        if in_order != buckets:
            fail(f"histogram {fam}: buckets not in ascending le order")
        prev = 0.0
        for le, count in buckets:
            if count < prev:
                fail(
                    f"histogram {fam}: bucket le={le} count {count} below "
                    f"previous bucket's {prev} (not cumulative)"
                )
            prev = count
        if buckets[-1][0] != float("inf"):
            fail(f"histogram {fam}: no le=\"+Inf\" bucket")
        if buckets[-1][1] != total_count:
            fail(
                f"histogram {fam}: +Inf bucket {buckets[-1][1]} != _count "
                f"{total_count}"
            )

    missing = [fam for fam in required if fam not in samples]
    if missing:
        fail(f"required metric families absent: {', '.join(missing)}")

    for verb in verbs:
        for suffix, kind in VERB_FAMILY_SUFFIXES:
            fam = mangle(f"serve.verb.{verb}.{suffix}")
            if fam not in samples:
                fail(f"verb {verb!r}: family {fam} absent from the scrape")
            if types.get(fam) != kind:
                fail(
                    f"verb {verb!r}: family {fam} declared TYPE "
                    f"{types.get(fam)!r}, expected {kind!r}"
                )

    nsamples = sum(len(v) for v in samples.values())
    print(
        f"{path}: OK ({len(samples)} families, {nsamples} samples, "
        f"{sum(1 for k in types.values() if k == 'histogram')} histograms"
        + (f", {len(required)} required families present" if required else "")
        + (f", {len(verbs)} per-verb family sets present" if verbs else "")
        + ")"
    )


if __name__ == "__main__":
    main()

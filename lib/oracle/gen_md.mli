(** Seeded random generators for multi-level structures: Kronecker /
    SAN-style compositions and free-form matrix diagrams with shared
    nodes and multi-term formal sums.

    Two construction styles, because they stress different code paths:
    {!kronecker} goes through {!Mdl_kron.Kronecker.to_md} (one node
    chain per event, maximal suffix sharing — the shape real models
    compile to), while {!direct} builds nodes bottom-up with randomly
    shared children and 1–2-term formal sums (shapes, including zero
    rows and unreachable corners, that no compilation emits). *)

val local_matrix :
  Mdl_util.Prng.t -> n:int -> symmetric:bool -> Mdl_sparse.Csr.t
(** A random nonnegative [n x n] local transition matrix; when
    [symmetric], invariant under swapping the last two states. *)

val kronecker : Mdl_util.Prng.t -> Spec.kron -> Mdl_kron.Kronecker.t
(** Random events over [spec.sizes]; when [spec.ring], one extra event
    per level whose local matrix is the level ring (identity elsewhere),
    making the flat chain irreducible over the full product space. *)

val kron_md : Mdl_util.Prng.t -> Spec.kron -> Mdl_md.Md.t
(** {!kronecker} compiled through {!Mdl_kron.Kronecker.to_md}, then
    {!Mdl_md.Compact.merge_terms} when [spec.merged]. *)

val direct : Mdl_util.Prng.t -> Spec.direct -> Mdl_md.Md.t
(** Bottom-up random MD: per level a pool of [spec.width] nodes whose
    entries are formal sums of 1–2 children drawn from the next level's
    pool; hash-consing shares equal nodes.  When [spec.symmetric] each
    node is symmetrised under swapping the level's last two states. *)

val of_spec : Spec.model -> Mdl_md.Md.t
(** Derive the matrix diagram a spec denotes (chains become 1-level
    MDs via {!Gen_chain.md_of_csr}).  Deterministic in the spec. *)

module Prng = Mdl_util.Prng

type chain = { states : int; extra : int; planted : bool; seed : int }

type kron = {
  sizes : int array;
  events : int;
  symmetric : bool;
  ring : bool;
  merged : bool;
  seed : int;
}

type direct = { sizes : int array; width : int; symmetric : bool; seed : int }

type model = Chain of chain | Kron of kron | Direct of direct

let levels = function
  | Chain _ -> 1
  | Kron k -> Array.length k.sizes
  | Direct d -> Array.length d.sizes

let sizes_string sizes =
  String.concat "," (Array.to_list (Array.map string_of_int sizes))

let to_string = function
  | Chain c ->
      Printf.sprintf "chain{states=%d;extra=%d;planted=%b;seed=%d}" c.states c.extra
        c.planted c.seed
  | Kron k ->
      Printf.sprintf "kron{sizes=%s;events=%d;symmetric=%b;ring=%b;merged=%b;seed=%d}"
        (sizes_string k.sizes) k.events k.symmetric k.ring k.merged k.seed
  | Direct d ->
      Printf.sprintf "direct{sizes=%s;width=%d;symmetric=%b;seed=%d}"
        (sizes_string d.sizes) d.width d.symmetric d.seed

let pp ppf m = Format.pp_print_string ppf (to_string m)

let random prng ~max_levels =
  let max_levels = max 1 max_levels in
  let seed = Prng.int prng 1_000_000 in
  let random_sizes () =
    let n = 1 + Prng.int prng max_levels in
    Array.init n (fun _ -> 2 + Prng.int prng 3)
  in
  match Prng.int prng 3 with
  | 0 ->
      Chain
        {
          states = 2 + Prng.int prng 12;
          extra = Prng.int prng 30;
          planted = Prng.bool prng;
          seed;
        }
  | 1 ->
      Kron
        {
          sizes = random_sizes ();
          events = 1 + Prng.int prng 3;
          symmetric = Prng.bool prng;
          ring = true;
          merged = Prng.bool prng;
          seed;
        }
  | _ ->
      Direct
        {
          sizes = random_sizes ();
          width = 1 + Prng.int prng 3;
          symmetric = Prng.bool prng;
          seed;
        }

(** Structural well-formedness checks for matrix diagrams.

    The [Md] constructors enforce most of these by construction; the
    point of re-checking them from the {e outside} is (a) to guard the
    oracle against silent store corruption while fuzzing, and (b) to be
    callable as a debug assertion after any diagram-rewriting pass
    (lumping rebuild, {!Mdl_md.Compact}, {!Mdl_md.Restructure}). *)

type violation = { check : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val md : ?eps:float -> Mdl_md.Md.t -> violation list
(** All violations found, empty when the diagram is well-formed:
    - [root]: a root exists and sits at level 1;
    - [edges]: every formal-sum child of a level-[l] node lives at level
      [l+1] (the terminal for [l = L]) — level-respecting edges;
    - [coeff]: every coefficient is finite and nonnegative (entries are
      rates);
    - [quasi-reduced]: no two live nodes of a level are structurally
      equal (the hash-consing invariant the local lumping keys rely on);
    - [row-sum]: row sums of the flattened matrix agree with sums
      accumulated independently over root-to-terminal paths — the
      encoded [R] is consistent across the two enumeration orders
      (skipped when the potential space exceeds [2^16] states). *)

val assert_valid : ?eps:float -> Mdl_md.Md.t -> unit
(** @raise Invalid_argument listing the violations, if any — the
    debug-assertion form. *)

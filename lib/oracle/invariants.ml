module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Csr = Mdl_sparse.Csr
module Floatx = Mdl_util.Floatx

type violation = { check : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.check v.detail

let flat_index sizes tuple =
  let acc = ref 0 in
  for l = 0 to Array.length sizes - 1 do
    acc := (!acc * sizes.(l)) + tuple.(l)
  done;
  !acc

(* Canonical content of a node: the full entry list in iteration order
   (rows ascending, columns ascending within a row).  Two live nodes
   with equal content violate quasi-reduction. *)
let node_entries md id =
  let acc = ref [] in
  Md.iter_node_entries md id (fun r c s -> acc := (r, c, s) :: !acc);
  List.rev !acc

let same_content a b =
  List.length a = List.length b
  && List.for_all2
       (fun (r1, c1, s1) (r2, c2, s2) -> r1 = r2 && c1 = c2 && Formal_sum.equal s1 s2)
       a b

let md ?(eps = Floatx.default_eps) m =
  let violations = ref [] in
  let add check fmt = Printf.ksprintf (fun detail -> violations := { check; detail } :: !violations) fmt in
  (match try Some (Md.root m) with Invalid_argument _ -> None with
  | None -> add "root" "no root set"
  | Some r ->
      if Md.node_level m r <> 1 then
        add "root" "root node is at level %d, not 1" (Md.node_level m r);
      let levels = Md.levels m in
      let live = Md.live_nodes m in
      (* Level-respecting edges and coefficient sanity. *)
      Array.iteri
        (fun li ids ->
          let l = li + 1 in
          List.iter
            (fun id ->
              if Md.node_level m id <> l then
                add "edges" "node %d listed live at level %d but stored at level %d" id l
                  (Md.node_level m id);
              Md.iter_node_entries m id (fun row col s ->
                  List.iter
                    (fun (child, w) ->
                      let cl = Md.node_level m child in
                      if cl <> l + 1 then
                        add "edges"
                          "node %d entry (%d,%d): child %d at level %d, expected %d" id
                          row col child cl (l + 1);
                      if l = levels && child <> Md.terminal m then
                        add "edges" "node %d entry (%d,%d): bottom-level child %d is not the terminal"
                          id row col child;
                      if not (Float.is_finite w) then
                        add "coeff" "node %d entry (%d,%d): non-finite coefficient %h" id
                          row col w;
                      if w < 0.0 then
                        add "coeff" "node %d entry (%d,%d): negative rate %g" id row col w)
                    (Formal_sum.terms s)))
            ids)
        live;
      (* Quasi-reduction: pairwise structural distinctness per level. *)
      Array.iteri
        (fun li ids ->
          let arr = Array.of_list ids in
          let contents = Array.map (node_entries m) arr in
          for i = 0 to Array.length arr - 1 do
            for j = i + 1 to Array.length arr - 1 do
              if same_content contents.(i) contents.(j) then
                add "quasi-reduced" "level %d: live nodes %d and %d are structurally equal"
                  (li + 1) arr.(i) arr.(j)
            done
          done)
        live;
      (* Row-sum consistency: the encoded matrix must agree between the
         flattening path (Md.to_csr, COO folding) and an independent
         accumulation over root-to-terminal paths. *)
      if Md.potential_space_size m <= 1 lsl 16 then begin
        let sizes = Md.sizes m in
        let flat = Md.to_csr m in
        let n = Csr.rows flat in
        let sums = Array.make n 0.0 in
        Md.iter_entries m (fun ~row ~col:_ v ->
            let i = flat_index sizes row in
            sums.(i) <- sums.(i) +. v);
        for i = 0 to n - 1 do
          let direct = Csr.row_sum flat i in
          if not (Floatx.approx_eq ~eps sums.(i) direct) then
            add "row-sum" "flat row %d: path sum %.17g <> CSR row sum %.17g" i sums.(i)
              direct
        done
      end);
  List.rev !violations

let assert_valid ?eps m =
  match md ?eps m with
  | [] -> ()
  | vs ->
      invalid_arg
        (Printf.sprintf "Invariants.assert_valid: %s"
           (String.concat "; "
              (List.map (fun v -> Printf.sprintf "[%s] %s" v.check v.detail) vs)))

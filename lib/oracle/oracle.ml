module Floatx = Mdl_util.Floatx
module Vec = Mdl_sparse.Vec
module Coo = Mdl_sparse.Coo
module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Ctmc = Mdl_ctmc.Ctmc
module Mrp = Mdl_ctmc.Mrp
module Solver = Mdl_ctmc.Solver
module Measures = Mdl_ctmc.Measures
module Check = Mdl_lumping.Check
module State_lumping = Mdl_lumping.State_lumping
module Quotient = Mdl_lumping.Quotient
module Md = Mdl_md.Md
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional

let log_src = Logs.Src.create "mdl.oracle" ~doc:"differential lumping oracle"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = State_lumping.mode = Ordinary | Exact

type outcome = {
  model : string;
  mode : mode;
  violations : Invariants.violation list;
  checks : string list;
  skipped : (string * string) list;
  states : int;
  lumped_states : int;
  flat_classes : int;
}

let ok o = o.violations = []

let mode_string = function Ordinary -> "ordinary" | Exact -> "exact"

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%s (%s): %d states -> %d lumped (flat coarsest: %d)"
    o.model (mode_string o.mode) o.states o.lumped_states o.flat_classes;
  List.iter
    (fun (c, r) -> Format.fprintf ppf "@,  skipped %s: %s" c r)
    (List.rev o.skipped);
  List.iter
    (fun v -> Format.fprintf ppf "@,  VIOLATION %a" Invariants.pp_violation v)
    o.violations;
  Format.fprintf ppf "@]"

(* Absolute tolerance for solved-measure comparisons; the solvers run at
   1e-12, so anything past 1e-6 is a genuine disagreement, not noise. *)
let measure_tol = 1e-6

let tuple_of sizes idx =
  let l = Array.length sizes in
  let t = Array.make l 0 in
  let rem = ref idx in
  for i = l - 1 downto 0 do
    t.(i) <- !rem mod sizes.(i);
    rem := !rem / sizes.(i)
  done;
  t

(* Multiply the middle stored entry of [m] by [1 + factor] — the
   deliberate fault for sanity mode.  None if [m] has no entries. *)
let perturb factor m =
  let nnz = Csr.nnz m in
  if nnz = 0 then None
  else begin
    let target = nnz / 2 in
    let coo = Coo.create ~rows:(Csr.rows m) ~cols:(Csr.cols m) in
    let k = ref 0 in
    Csr.iter
      (fun i j v ->
        Coo.add coo i j (if !k = target then v *. (1.0 +. factor) else v);
        incr k)
      m;
    Some (Csr.of_coo coo)
  end

let check_md ?(eps = Floatx.default_eps) ?inject ?pool ?par_threshold mode md0 =
  let violations = ref [] in
  let checks = ref [] in
  let skipped = ref [] in
  let violate check fmt =
    Printf.ksprintf
      (fun detail -> violations := { Invariants.check; detail } :: !violations)
      fmt
  in
  let ran name = checks := name :: !checks in
  let skip name reason = skipped := (name, reason) :: !skipped in
  let import prefix vs =
    List.iter
      (fun (v : Invariants.violation) ->
        violations := { v with check = prefix ^ v.check } :: !violations)
      vs
  in
  ran "invariants(input)";
  import "input " (Invariants.md ~eps md0);

  let sizes = Md.sizes md0 in
  let levels = Array.length sizes in
  let n = Md.potential_space_size md0 in
  let flat = Md.to_csr md0 in

  (* Protected measure: "substate of the last level is 0" — a decomposed
     reward the ordinary lumping must keep computable. *)
  let reward_d =
    Decomposed.of_level ~sizes ~level:levels (fun s -> if s = 0 then 1.0 else 0.0)
  in
  let rvec = Array.init n (fun s -> Decomposed.eval reward_d (tuple_of sizes s)) in
  let rewards =
    match mode with
    | Ordinary -> [ reward_d ]
    | Exact -> [ Decomposed.constant ~sizes 0.0 ]
  in
  let result =
    Compositional.lump ~eps ?pool ?par_threshold mode md0 ~rewards
      ~initial:(Decomposed.constant ~sizes 1.0)
  in
  ran "invariants(lumped)";
  import "lumped " (Invariants.md ~eps result.Compositional.lumped);

  let partitions = result.Compositional.partitions in
  let csizes = Array.map Partition.num_classes partitions in
  let nc = Array.fold_left ( * ) 1 csizes in
  (* class tuple index (mixed radix — the lumped MD's flat indexing) *)
  let ci =
    let cache = Array.make n (-1) in
    fun s ->
      if cache.(s) >= 0 then cache.(s)
      else begin
        let t = tuple_of sizes s in
        let acc = ref 0 in
        for l = 0 to levels - 1 do
          acc := (!acc * csizes.(l)) + Partition.class_of partitions.(l) t.(l)
        done;
        cache.(s) <- !acc;
        !acc
      end
  in
  let gp = Partition.of_class_assignment (Array.init n ci) in

  (* Theorems 3/4: the induced global partition is lumpable on the flat
     chain, literally per Theorem 1. *)
  ran "theorem-lumpable";
  let thm_ok =
    match mode with
    | Ordinary -> Check.ordinary ~eps ~rewards:rvec flat gp
    | Exact -> Check.exact ~eps flat gp
  in
  if not thm_ok then
    violate "theorem-lumpable"
      "per-level partitions do not induce a globally %s-lumpable partition"
      (mode_string mode);

  (* Quotient agreement: flattened lumped MD = Theorem-2 quotient of the
     flat matrix, through the class correspondence. *)
  let lumped_flat0 = Md.to_csr result.Compositional.lumped in
  let lumped_flat =
    match inject with
    | None -> lumped_flat0
    | Some factor -> (
        match perturb factor lumped_flat0 with
        | Some m -> m
        | None ->
            skip "inject" "lumped matrix has no entries to perturb";
            lumped_flat0)
  in
  ran "quotient-agreement";
  let quotient = Quotient.rates mode flat gp in
  (try
     for s = 0 to n - 1 do
       for s' = 0 to n - 1 do
         let a = Csr.get lumped_flat (ci s) (ci s') in
         let b = Csr.get quotient (Partition.class_of gp s) (Partition.class_of gp s') in
         if not (Floatx.approx_eq ~eps a b) then begin
           violate "quotient-agreement"
             "lumped MD entry (%d,%d) = %.12g but flat quotient has %.12g" (ci s)
             (ci s') a b;
           raise Exit
         end
       done
     done
   with Exit -> ());

  (* The flat optimum: the compositional partition may be finer (the
     local keys are only sufficient) but must refine it — and the flat
     algorithm's own output must satisfy Theorem 1. *)
  ran "flat-coarsest";
  let initial_p =
    (* Quantized keys: group_by needs a total order, which the
       non-transitive compare_approx is not. *)
    match mode with
    | Ordinary -> Partition.group_by n (fun s -> Floatx.quantize rvec.(s)) Float.compare
    | Exact ->
        Partition.group_by n
          (fun s -> Floatx.quantize (Csr.row_sum flat s))
          Float.compare
  in
  let p_star = State_lumping.coarsest ~eps mode flat ~initial:initial_p in
  let star_ok =
    match mode with
    | Ordinary -> Check.ordinary ~eps ~rewards:rvec flat p_star
    | Exact -> Check.exact ~eps flat p_star
  in
  if not star_ok then
    violate "flat-coarsest" "State_lumping.coarsest output fails the Theorem-1 check";
  ran "refinement";
  if not (Partition.is_refinement_of gp p_star) then
    violate "refinement"
      "compositional global partition (%d classes) does not refine the flat coarsest (%d classes)"
      (Partition.num_classes gp) (Partition.num_classes p_star);
  if levels = 1 then begin
    ran "single-level-equality";
    if not (Partition.equal partitions.(0) p_star) then
      violate "single-level-equality"
        "1-level compositional partition (%d classes) <> flat coarsest (%d classes)"
        (Partition.num_classes partitions.(0))
        (Partition.num_classes p_star)
  end;

  (* Numerical measures: original vs compositionally lumped chain. *)
  let ctmc = Ctmc.of_rates flat in
  if not (Ctmc.is_irreducible ctmc) then
    skip "measures" "flat chain not irreducible"
  else if Ctmc.max_exit_rate ctmc <= 0.0 then skip "measures" "flat chain has no transitions"
  else begin
    let lumped_ctmc = Ctmc.of_rates lumped_flat in
    let pi, st = Solver.steady_state ~tol:1e-12 ~max_iter:500_000 ctmc in
    let pi_l, st_l = Solver.steady_state ~tol:1e-12 ~max_iter:500_000 lumped_ctmc in
    if not (st.Solver.converged && st_l.Solver.converged) then
      skip "stationary-agreement" "power iteration did not converge"
    else begin
      ran "stationary-agreement";
      let agg = Array.make nc 0.0 in
      for s = 0 to n - 1 do
        agg.(ci s) <- agg.(ci s) +. pi.(s)
      done;
      let d = Vec.diff_inf agg pi_l in
      if d > measure_tol then
        violate "stationary-agreement"
          "aggregated stationary vs lumped stationary differ by %.3g" d;
      (match mode with
      | Ordinary ->
          ran "reward-agreement";
          let r_flat = Solver.expected_reward pi rvec in
          let lumped_reward = Compositional.lumped_rewards result reward_d in
          let rvec_l =
            Array.init nc (fun ct -> Decomposed.eval lumped_reward (tuple_of csizes ct))
          in
          let r_lumped = Solver.expected_reward pi_l rvec_l in
          if Float.abs (r_flat -. r_lumped) > measure_tol then
            violate "reward-agreement"
              "protected reward %.12g on the original vs %.12g on the lumped chain"
              r_flat r_lumped
      | Exact ->
          ran "equiprobable-lift";
          let volume =
            let v = Array.make nc 0 in
            for s = 0 to n - 1 do
              v.(ci s) <- v.(ci s) + 1
            done;
            v
          in
          (try
             for s = 0 to n - 1 do
               let lifted = pi_l.(ci s) /. float_of_int volume.(ci s) in
               if Float.abs (pi.(s) -. lifted) > measure_tol then begin
                 violate "equiprobable-lift"
                   "state %d: stationary %.12g but class-uniform lift gives %.12g" s
                   pi.(s) lifted;
                 raise Exit
               end
             done
           with Exit -> ()))
    end;
    (* Transient distributions through uniformisation. *)
    ran "transient-agreement";
    let pi0 = Array.make n (1.0 /. float_of_int n) in
    let ft = Solver.transient ~t:0.8 ctmc pi0 in
    let pi0_l = Array.make nc 0.0 in
    for s = 0 to n - 1 do
      pi0_l.(ci s) <- pi0_l.(ci s) +. pi0.(s)
    done;
    let lt = Solver.transient ~t:0.8 lumped_ctmc pi0_l in
    let agg_t = Array.make nc 0.0 in
    for s = 0 to n - 1 do
      agg_t.(ci s) <- agg_t.(ci s) +. ft.(s)
    done;
    let d = Vec.diff_inf agg_t lt in
    if d > measure_tol then
      violate "transient-agreement" "aggregated transient vs lumped transient differ by %.3g" d;
    (* Measures on MRPs through the flat Theorem-2 quotient. *)
    ran "mrp-measures";
    let mrp = Mrp.make ~ctmc ~rewards:rvec ~initial:(Mrp.uniform_initial n) in
    let mrp_star = Quotient.mrp mode mrp p_star in
    let ss_flat = Measures.steady_state_reward ~tol:1e-12 ~max_iter:500_000 mrp in
    let ss_star = Measures.steady_state_reward ~tol:1e-12 ~max_iter:500_000 mrp_star in
    if Float.abs (ss_flat -. ss_star) > measure_tol then
      violate "mrp-measures" "steady-state reward %.12g vs flat-quotient %.12g" ss_flat
        ss_star;
    let tr_flat = Measures.transient_reward ~t:0.6 mrp in
    let tr_star = Measures.transient_reward ~t:0.6 mrp_star in
    if Float.abs (tr_flat -. tr_star) > measure_tol then
      violate "mrp-measures" "transient reward %.12g vs flat-quotient %.12g" tr_flat
        tr_star
  end;
  {
    model = Printf.sprintf "md(levels=%d, states=%d)" levels n;
    mode;
    violations = List.rev !violations;
    checks = List.rev !checks;
    skipped = !skipped;
    states = n;
    lumped_states = nc;
    flat_classes = Partition.num_classes p_star;
  }

let check_chain ?eps ?inject ?pool ?par_threshold mode r =
  check_md ?eps ?inject ?pool ?par_threshold mode (Gen_chain.md_of_csr r)

let run ?eps ?inject ?pool ?par_threshold mode spec =
  let md = Gen_md.of_spec spec in
  let o =
    { (check_md ?eps ?inject ?pool ?par_threshold mode md) with model = Spec.to_string spec }
  in
  Log.debug (fun m ->
      m "%s (%s): %d checks, %d violations" o.model (mode_string o.mode)
        (List.length o.checks) (List.length o.violations));
  o

(** The differential lumping oracle.

    The paper's central claim (Theorems 3–4, Propositions 1–2) is that
    lumping a matrix diagram {e per level} yields the same chain-level
    guarantees as lumping the flat CTMC with the optimal state-level
    algorithm.  This module turns that claim into an executable
    invariant: given any model, it runs {!Mdl_core.Compositional.lump}
    on the diagram and {!Mdl_lumping.State_lumping} on the expanded flat
    matrix, then cross-checks everything the theory promises:

    - {b theorem-lumpable}: the per-level partitions induce a globally
      ordinarily/exactly lumpable partition of the flat chain
      (Theorems 3/4, checked literally via {!Mdl_lumping.Check});
    - {b quotient-agreement}: the flattened lumped MD equals the
      Theorem-2 quotient {!Mdl_lumping.Quotient.rates} of the flat
      matrix, entry by entry through the class correspondence;
    - {b refinement}: the induced global partition refines the coarsest
      flat partition of {!Mdl_lumping.State_lumping.coarsest} — the
      state-level optimum is never beaten, only approached;
    - {b single-level-equality}: for 1-level diagrams the two
      algorithms agree {e exactly} (partition equality);
    - {b stationary / transient / reward agreement}: solving the lumped
      chain and aggregating/averaging reproduces the measures of the
      original chain through {!Mdl_ctmc.Solver} (skipped when the flat
      chain is not irreducible);
    - {b equiprobable-lift} (exact mode): the stationary distribution is
      uniform within classes, [pi(s) = pi~(C_s) / |C_s|];
    - {b mrp-measures}: {!Mdl_ctmc.Measures} steady-state and transient
      rewards survive the flat {!Mdl_lumping.Quotient.mrp} quotient;
    - MD well-formedness ({!Invariants}) of both the input and the
      lumped diagram.

    [inject] is the oracle's own sanity check: multiply one entry of the
    {e lumped} matrix by [1 + factor] before comparing.  A healthy
    oracle must then report a violation — if it does not, the oracle
    itself is broken (fuzzers rot silently; this guards against that). *)

val log_src : Logs.src
(** The oracle's [Logs] source, [mdl.oracle]: one debug line per
    differential run summarising checks and violations. *)

type mode = Mdl_lumping.State_lumping.mode = Ordinary | Exact

type outcome = {
  model : string;  (** description / reproduction recipe *)
  mode : mode;
  violations : Invariants.violation list;
  checks : string list;  (** names of the checks that ran, in order *)
  skipped : (string * string) list;  (** (check, reason) not applicable *)
  states : int;  (** potential flat states *)
  lumped_states : int;
  flat_classes : int;  (** classes of the coarsest flat lumping *)
}

val ok : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val check_md :
  ?eps:float ->
  ?inject:float ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  mode ->
  Mdl_md.Md.t ->
  outcome
(** Cross-check one diagram (over its full potential space). *)

val check_chain :
  ?eps:float ->
  ?inject:float ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  mode ->
  Mdl_sparse.Csr.t ->
  outcome
(** Cross-check a flat square rate matrix, wrapped as a 1-level MD —
    on 1-level diagrams the compositional algorithm must coincide with
    the state-level one exactly. *)

val run :
  ?eps:float ->
  ?inject:float ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  mode ->
  Spec.model ->
  outcome
(** Derive the model a spec denotes and cross-check it; [outcome.model]
    is the spec's reproduction recipe. *)

open QCheck

let seed_gen = Gen.int_range 0 1_000_000

let chain_gen =
  Gen.(
    let* states = int_range 2 14 in
    let* extra = int_range 0 (3 * states) in
    let* planted = bool in
    let* seed = seed_gen in
    return { Spec.states; extra; planted; seed })

let shrink_chain (c : Spec.chain) yield =
  Shrink.int c.states (fun states -> if states >= 2 then yield { c with states });
  Shrink.int c.extra (fun extra -> yield { c with extra });
  Shrink.int c.seed (fun seed -> yield { c with seed })

let chain =
  make ~print:(fun c -> Spec.to_string (Chain c)) ~shrink:shrink_chain chain_gen

let sizes_gen max_levels =
  Gen.(array_size (int_range 1 (max 1 max_levels)) (int_range 2 4))

(* Shrink a sizes array: drop a level (keeping >= 1), or shrink one
   level's size toward 2. *)
let shrink_sizes sizes yield =
  let n = Array.length sizes in
  if n > 1 then
    for i = 0 to n - 1 do
      yield (Array.init (n - 1) (fun j -> if j < i then sizes.(j) else sizes.(j + 1)))
    done;
  Array.iteri
    (fun i s ->
      if s > 2 then
        yield
          (Array.mapi (fun j s' -> if i = j then s - 1 else s') sizes))
    sizes

let kron_gen max_levels =
  Gen.(
    let* sizes = sizes_gen max_levels in
    let* events = int_range 1 3 in
    let* symmetric = bool in
    let* merged = bool in
    let* seed = seed_gen in
    return { Spec.sizes; events; symmetric; ring = true; merged; seed })

let shrink_kron (k : Spec.kron) yield =
  shrink_sizes k.sizes (fun sizes -> yield { k with sizes });
  Shrink.int k.events (fun events -> if events >= 1 then yield { k with events });
  if k.merged then yield { k with merged = false };
  Shrink.int k.seed (fun seed -> yield { k with seed })

let kron ?(max_levels = 3) () =
  make ~print:(fun k -> Spec.to_string (Kron k)) ~shrink:shrink_kron (kron_gen max_levels)

let direct_gen max_levels =
  Gen.(
    let* sizes = sizes_gen max_levels in
    let* width = int_range 1 3 in
    let* symmetric = bool in
    let* seed = seed_gen in
    return { Spec.sizes; width; symmetric; seed })

let shrink_direct (d : Spec.direct) yield =
  shrink_sizes d.sizes (fun sizes -> yield { d with sizes });
  Shrink.int d.width (fun width -> if width >= 1 then yield { d with width });
  Shrink.int d.seed (fun seed -> yield { d with seed })

let direct ?(max_levels = 3) () =
  make
    ~print:(fun d -> Spec.to_string (Direct d))
    ~shrink:shrink_direct (direct_gen max_levels)

let model_gen ?(families = [ `Chain; `Kron; `Direct ]) max_levels =
  Gen.(
    let* family = oneofl families in
    match family with
    | `Chain -> map (fun c -> Spec.Chain c) chain_gen
    | `Kron -> map (fun k -> Spec.Kron k) (kron_gen max_levels)
    | `Direct -> map (fun d -> Spec.Direct d) (direct_gen max_levels))

let shrink_model (m : Spec.model) yield =
  match m with
  | Spec.Chain c -> shrink_chain c (fun c -> yield (Spec.Chain c))
  | Spec.Kron k -> shrink_kron k (fun k -> yield (Spec.Kron k))
  | Spec.Direct d -> shrink_direct d (fun d -> yield (Spec.Direct d))

let model ?(max_levels = 3) () =
  make ~print:Spec.to_string ~shrink:shrink_model (model_gen max_levels)

let md_model ?(max_levels = 3) () =
  make ~print:Spec.to_string ~shrink:shrink_model
    (model_gen ~families:[ `Kron; `Direct ] max_levels)

(** Compact, printable descriptions of randomly generated models.

    The differential oracle never shrinks or replays a concrete matrix
    diagram; it shrinks and replays a {e spec} — a handful of integers
    from which the model is derived deterministically through
    {!Mdl_util.Prng}.  A printed spec is therefore a complete
    reproduction recipe: paste it back (or rerun the fuzzer with the
    same master seed) and the identical model is rebuilt. *)

type chain = {
  states : int;  (** [>= 2] *)
  extra : int;  (** random off-ring transitions on top of the ring *)
  planted : bool;
      (** symmetrise under the transposition of the last two states, so
          the flat lumping algorithm has something to find *)
  seed : int;
}
(** A flat irreducible CTMC: a ring [0 -> 1 -> .. -> 0] guaranteeing
    irreducibility plus [extra] random transitions. *)

type kron = {
  sizes : int array;  (** per-level index-set sizes, each [>= 2] *)
  events : int;  (** number of random synchronising events *)
  symmetric : bool;
      (** symmetrise every local matrix under the transposition of the
          level's last two states (plants per-level lumps) *)
  ring : bool;  (** add one local-ring event per level (irreducibility) *)
  merged : bool;  (** apply {!Mdl_md.Compact.merge_terms} to the MD *)
  seed : int;
}
(** A Kronecker descriptor compiled to a multi-level MD. *)

type direct = {
  sizes : int array;  (** per-level index-set sizes, each [>= 2] *)
  width : int;  (** node-pool width per level ([>= 1]; drives sharing) *)
  symmetric : bool;
      (** symmetrise every node under the transposition of the level's
          last two states *)
  seed : int;
}
(** A multi-level MD built node-by-node, bottom-up: shared children,
    multi-term formal sums — structure a Kronecker compilation never
    produces. *)

type model = Chain of chain | Kron of kron | Direct of direct

val levels : model -> int

val to_string : model -> string
(** One-line reproduction recipe, e.g.
    [kron{sizes=2,3;events=2;symmetric=true;ring=true;merged=false;seed=7741}]. *)

val pp : Format.formatter -> model -> unit

val random : Mdl_util.Prng.t -> max_levels:int -> model
(** Draw a spec uniformly-ish over the three families, with level count
    bounded by [max_levels] — the fuzz driver's sampler. *)

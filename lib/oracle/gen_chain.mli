(** Seeded random generators for flat objects: COO/CSR sparse matrices
    and irreducible CTMC rate matrices.

    All generation is driven by an explicit {!Mdl_util.Prng.t}, so a
    spec's [seed] field reproduces the object bit-for-bit.  Rates are
    drawn from a small alphabet of halves ([0.5, 1.0, 1.5, ..]) so that
    the tolerant float comparisons inside the lumping algorithms behave
    exactly, and so that distinct states actually collide into lumpable
    classes now and then. *)

val coo :
  Mdl_util.Prng.t -> rows:int -> cols:int -> nnz:int -> Mdl_sparse.Coo.t
(** [nnz] random triplets (duplicates possible, folded by
    {!Mdl_sparse.Csr.of_coo}); values are nonzero signed halves. *)

val csr : Mdl_util.Prng.t -> rows:int -> cols:int -> nnz:int -> Mdl_sparse.Csr.t

val symmetrise : (int -> int) -> Mdl_sparse.Csr.t -> Mdl_sparse.Csr.t
(** [symmetrise swap m] is [(m + swap(m)) / 2] where [swap] is an
    involution on indices applied to both rows and columns — the matrix
    becomes invariant under the state permutation, planting a lump. *)

val swap_last_two : int -> int -> int
(** [swap_last_two n] is the transposition of states [n-2] and [n-1]
    (identity for [n < 2]). *)

val rate_matrix : Mdl_util.Prng.t -> Spec.chain -> Mdl_sparse.Csr.t
(** Irreducible by construction: the ring [0 -> 1 -> .. -> n-1 -> 0]
    with rate 1 plus [extra] random nonnegative transitions; when
    [planted], symmetrised under {!swap_last_two} (which keeps the ring
    edges, hence irreducibility). *)

val ctmc : Mdl_util.Prng.t -> Spec.chain -> Mdl_ctmc.Ctmc.t

val md_of_csr : Mdl_sparse.Csr.t -> Mdl_md.Md.t
(** Wrap a flat square rate matrix as a 1-level matrix diagram — the
    bridge that lets the MD-level oracle exercise flat chains (and the
    compositional algorithm collapse to the state-level one). *)

(** QCheck arbitraries over model {!Spec}s.

    Properties quantify over {e specs}, not over concrete models: the
    generated value is a handful of integers, the printer emits a
    one-line reproduction recipe, and the shrinker walks the integers
    toward minimal values — so a failing property shrinks to the
    smallest spec (fewest levels, smallest index sets, fewest events)
    that still fails, and the printed counterexample can be replayed
    byte-for-byte through {!Gen_md.of_spec}. *)

val chain : Spec.chain QCheck.arbitrary

val kron : ?max_levels:int -> unit -> Spec.kron QCheck.arbitrary

val direct : ?max_levels:int -> unit -> Spec.direct QCheck.arbitrary

val model : ?max_levels:int -> unit -> Spec.model QCheck.arbitrary
(** Any of the three families. *)

val md_model : ?max_levels:int -> unit -> Spec.model QCheck.arbitrary
(** Only the genuinely multi-level families (Kron / Direct) — for
    properties about diagram transformations. *)

module Prng = Mdl_util.Prng
module Coo = Mdl_sparse.Coo
module Csr = Mdl_sparse.Csr
module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Kronecker = Mdl_kron.Kronecker

let rate prng = float_of_int (1 + Prng.int prng 4) /. 2.0

let local_matrix prng ~n ~symmetric =
  let c = Coo.create ~rows:n ~cols:n in
  let nnz = Prng.int prng (2 * n) in
  for _ = 1 to nnz do
    Coo.add c (Prng.int prng n) (Prng.int prng n) (rate prng)
  done;
  let m = Csr.of_coo c in
  if symmetric then Gen_chain.symmetrise (Gen_chain.swap_last_two n) m else m

let ring_matrix n =
  Csr.of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, (i + 1) mod n, 1.0)))

let kronecker prng (spec : Spec.kron) =
  let sizes = spec.sizes in
  let events =
    List.init spec.events (fun i ->
        {
          Kronecker.label = Printf.sprintf "e%d" i;
          rate = rate prng;
          locals = Array.map (fun n -> local_matrix prng ~n ~symmetric:spec.symmetric) sizes;
        })
  in
  let rings =
    if not spec.ring then []
    else
      List.init (Array.length sizes) (fun l ->
          let locals =
            Array.mapi
              (fun l' n ->
                if l' <> l then Kronecker.identity_local n
                else
                  let r = ring_matrix n in
                  if spec.symmetric then
                    Gen_chain.symmetrise (Gen_chain.swap_last_two n) r
                  else r)
              sizes
          in
          { Kronecker.label = Printf.sprintf "ring%d" (l + 1); rate = 1.0; locals })
  in
  Kronecker.make ~sizes (events @ rings)

let kron_md prng spec =
  let md = Kronecker.to_md (kronecker prng spec) in
  if spec.Spec.merged then Mdl_md.Compact.merge_terms md else md

(* Symmetrise a node's entry list under an involution of its index set:
   each entry (r, c, s) contributes s/2 at (r, c) and s/2 at
   (swap r, swap c); Md.add_node folds coinciding positions. *)
let symmetrise_entries swap entries =
  List.concat_map
    (fun (r, c, s) ->
      let h = Formal_sum.scale 0.5 s in
      [ (r, c, h); (swap r, swap c, h) ])
    entries

let direct prng (spec : Spec.direct) =
  let sizes = spec.sizes in
  let levels = Array.length sizes in
  let md = Md.create ~sizes in
  let pool = ref [| Md.terminal md |] in
  for l = levels downto 1 do
    let n = sizes.(l - 1) in
    let width = if l = 1 then 1 else max 1 spec.width in
    let children = !pool in
    let nodes =
      List.init width (fun _ ->
          let nnz = 1 + Prng.int prng (2 * n) in
          let entries = ref [] in
          for _ = 1 to nnz do
            let r = Prng.int prng n and c = Prng.int prng n in
            let nterms = 1 + Prng.int prng 2 in
            let sum =
              Formal_sum.of_list
                (List.init nterms (fun _ ->
                     (children.(Prng.int prng (Array.length children)), rate prng)))
            in
            entries := (r, c, sum) :: !entries
          done;
          let entries =
            if spec.symmetric && n >= 2 then
              symmetrise_entries (Gen_chain.swap_last_two n) !entries
            else !entries
          in
          Md.add_node md ~level:l entries)
    in
    pool := Array.of_list (List.sort_uniq compare nodes)
  done;
  Md.set_root md !pool.(0);
  md

let of_spec = function
  | Spec.Chain c -> Gen_chain.md_of_csr (Gen_chain.rate_matrix (Prng.of_seed c.seed) c)
  | Spec.Kron k -> kron_md (Prng.of_seed k.seed) k
  | Spec.Direct d -> direct (Prng.of_seed d.seed) d

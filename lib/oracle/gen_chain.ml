module Prng = Mdl_util.Prng
module Coo = Mdl_sparse.Coo
module Csr = Mdl_sparse.Csr
module Md = Mdl_md.Md

(* Nonzero signed half-integers in [-2, 2]. *)
let signed_half prng =
  let v = float_of_int (1 + Prng.int prng 4) /. 2.0 in
  if Prng.bool prng then v else -.v

(* Positive half-integers in (0, 2]. *)
let rate prng = float_of_int (1 + Prng.int prng 4) /. 2.0

let coo prng ~rows ~cols ~nnz =
  let c = Coo.create ~rows ~cols in
  for _ = 1 to nnz do
    Coo.add c (Prng.int prng rows) (Prng.int prng cols) (signed_half prng)
  done;
  c

let csr prng ~rows ~cols ~nnz = Csr.of_coo (coo prng ~rows ~cols ~nnz)

let symmetrise swap m =
  let c = Coo.create ~rows:(Csr.rows m) ~cols:(Csr.cols m) in
  Csr.iter
    (fun i j v ->
      Coo.add c i j (v /. 2.0);
      Coo.add c (swap i) (swap j) (v /. 2.0))
    m;
  Csr.of_coo c

let swap_last_two n s =
  if n < 2 then s else if s = n - 1 then n - 2 else if s = n - 2 then n - 1 else s

let rate_matrix prng (spec : Spec.chain) =
  let n = max 2 spec.states in
  let c = Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Coo.add c i ((i + 1) mod n) 1.0
  done;
  for _ = 1 to spec.extra do
    Coo.add c (Prng.int prng n) (Prng.int prng n) (rate prng)
  done;
  let m = Csr.of_coo c in
  if spec.planted then symmetrise (swap_last_two n) m else m

let ctmc prng spec = Mdl_ctmc.Ctmc.of_rates (rate_matrix prng spec)

let md_of_csr r =
  if Csr.rows r <> Csr.cols r then invalid_arg "Gen_chain.md_of_csr: not square";
  let n = Csr.rows r in
  let md = Md.create ~sizes:[| n |] in
  let entries = ref [] in
  Csr.iter (fun i j v -> entries := (i, j, Md.scalar_sum md v) :: !entries) r;
  let root = Md.add_node md ~level:1 !entries in
  Md.set_root md root;
  md

(** State-level (flat) optimal lumping — the algorithm of Derisavi,
    Hermanns and Sanders [9], in the generalised form of Figure 1:
    partition refinement with key [K(R, s, C) = R(s, C)] for ordinary
    lumping and [K(R, s, C) = R(C, s)] for exact lumping.

    This is both the baseline the paper compares against conceptually
    and the optimality checker of Section 5 (the compositionally lumped
    chain is fed back through this algorithm to confirm no further
    reduction is possible). *)

type mode = Ordinary | Exact

val refiner_spec :
  ?eps:float -> mode -> Mdl_sparse.Csr.t -> float Mdl_partition.Refiner.spec
(** The generic flat-matrix refinement spec: row-sum keys [R(s, C)]
    (ordinary) or column-sum keys [R(C, s)] (exact), with float keys
    grouped by their {!Mdl_util.Floatx.quantize} representative.
    Exposed for the differential refiner tests and the refinement
    benchmark; {!coarsest} normally runs the equivalent {!float_spec}
    through the monomorphic pipeline instead.
    @raise Invalid_argument if [r] is not square. *)

val float_spec :
  ?eps:float -> mode -> Mdl_sparse.Csr.t -> Mdl_partition.Refiner.float_spec
(** The same keys as {!refiner_spec}, emitted into the refiner's unboxed
    scratch buffers for the monomorphic float pipeline
    ({!Mdl_partition.Refiner.comp_lumping_float}): splitter sums are
    accumulated in dense per-state scratch (reset in O(touched) per
    pass) with no list or hashtable on the hot path.  Computes the
    identical fixed point (pinned by the differential tests).
    @raise Invalid_argument if [r] is not square. *)

val coarsest :
  ?eps:float ->
  ?stats:Mdl_partition.Refiner.stats ->
  ?generic:bool ->
  mode ->
  Mdl_sparse.Csr.t ->
  initial:Mdl_partition.Partition.t ->
  Mdl_partition.Partition.t
(** [coarsest mode r ~initial] is the coarsest [mode]-lumpable partition
    of the chain with rate matrix [r] refining [initial].  For exact
    lumping the caller must ensure [initial] already separates states
    with different total exit rates [R(s, S)] (use {!initial_partition}
    or {!coarsest_mrp}).  [stats] accumulates the refinement engine's
    counters ({!Mdl_partition.Refiner.stats}).  Runs the monomorphic
    float pipeline by default; [~generic:true] forces the generic
    closure-based pipeline (for differential testing and benchmarks).
    @raise Invalid_argument if [r] is not square or sizes mismatch. *)

val initial_partition : ?eps:float -> mode -> Mdl_ctmc.Mrp.t -> Mdl_partition.Partition.t
(** The paper's [P_ini]: for ordinary lumping, group states by reward
    value; for exact lumping, by initial probability and total exit rate
    [R(s, S)]. *)

val coarsest_mrp : ?eps:float -> mode -> Mdl_ctmc.Mrp.t -> Mdl_partition.Partition.t
(** [coarsest_mrp mode m] = [coarsest mode R ~initial:(initial_partition
    mode m)] — the full pipeline of Figure 1's [Lump] minus quotient
    construction. *)

module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition

let rates mode r p =
  if Csr.rows r <> Partition.size p then invalid_arg "Quotient.rates: size mismatch";
  let k = Partition.num_classes p in
  (* CSR-native build: entries stream straight into the two-pass
     count-then-fill constructor, with no triplet intermediate — this is
     the hot path of every lump-then-solve cycle. *)
  Csr.of_entry_iter ~rows:k ~cols:k (fun f ->
      match mode with
      | State_lumping.Ordinary ->
          (* Row i~ of R~ from one representative row of R, class-summing
             the columns. *)
          for ci = 0 to k - 1 do
            let s = Partition.representative p ci in
            Csr.iter_row r s (fun j v -> f ci (Partition.class_of p j) v)
          done
      | State_lumping.Exact ->
          (* Aggregated form: R~(i~, j~) = R(C_i, C_j) / |C_i|; one pass
             over all entries of R. *)
          Csr.iter
            (fun i j v ->
              let ci = Partition.class_of p i in
              f ci (Partition.class_of p j)
                (v /. float_of_int (Partition.class_size p ci)))
            r)

let rewards r p =
  if Array.length r <> Partition.size p then invalid_arg "Quotient.rewards: size mismatch";
  Array.init (Partition.num_classes p) (fun c ->
      let members = Partition.elements p c in
      let total = Array.fold_left (fun acc s -> acc +. r.(s)) 0.0 members in
      total /. float_of_int (Array.length members))

let initial pi p =
  if Array.length pi <> Partition.size p then invalid_arg "Quotient.initial: size mismatch";
  Array.init (Partition.num_classes p) (fun c ->
      Array.fold_left (fun acc s -> acc +. pi.(s)) 0.0 (Partition.elements p c))

let mrp mode m p =
  let ctmc = Mdl_ctmc.Ctmc.of_rates (rates mode (Mdl_ctmc.Ctmc.rates (Mdl_ctmc.Mrp.ctmc m)) p) in
  Mdl_ctmc.Mrp.make ~ctmc
    ~rewards:(rewards (Mdl_ctmc.Mrp.rewards m) p)
    ~initial:(initial (Mdl_ctmc.Mrp.initial m) p)

let lift v p =
  if Array.length v <> Partition.num_classes p then
    invalid_arg "Quotient.lift: class count mismatch";
  Array.init (Partition.size p) (fun s ->
      let c = Partition.class_of p s in
      v.(c) /. float_of_int (Partition.class_size p c))

let aggregate v p =
  if Array.length v <> Partition.size p then invalid_arg "Quotient.aggregate: size mismatch";
  let out = Array.make (Partition.num_classes p) 0.0 in
  Array.iteri (fun s x -> out.(Partition.class_of p s) <- out.(Partition.class_of p s) +. x) v;
  out

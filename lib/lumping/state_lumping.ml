module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Floatx = Mdl_util.Floatx

type mode = Ordinary | Exact

(* Accumulate, for splitter class [c], the nonzero sums
   sum_{j in c} m(s, j) per state s, where [m] is R for exact keys over
   the transpose, or R^T for ordinary keys (columns of R).  [m] must be
   the matrix whose row [j] lists the states touched by member [j]. *)
let class_sums m c =
  let acc = Hashtbl.create 64 in
  Array.iter
    (fun j ->
      Csr.iter_row m j (fun s v ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc s) in
          Hashtbl.replace acc s (prev +. v)))
    c;
  Hashtbl.fold (fun s v l -> if v <> 0.0 then (s, v) :: l else l) acc []

let refiner_spec ?eps mode r =
  if Csr.rows r <> Csr.cols r then invalid_arg "State_lumping.refiner_spec: not square";
  (* Ordinary: K(R, s, C) = R(s, C) = sum over j in C of R(s, j); the
     touched states of splitter C are the predecessors of C, found by
     walking columns of R, i.e. rows of R^T.  Exact: K(R, s, C) =
     R(C, s); touched states are successors, rows of R itself.  Keys are
     grouped through the quantized representative — compare_approx is
     not transitive and must not order a sort (see {!Mdl_util.Floatx}). *)
  let walk = match mode with Ordinary -> Csr.transpose r | Exact -> r in
  {
    Refiner.size = Csr.rows r;
    key_compare =
      (fun a b -> Float.compare (Floatx.quantize ?eps a) (Floatx.quantize ?eps b));
    splitter_keys = (fun c -> class_sums walk c);
  }

let coarsest ?eps ?stats mode r ~initial =
  if Csr.rows r <> Csr.cols r then invalid_arg "State_lumping.coarsest: not square";
  Refiner.comp_lumping ?stats (refiner_spec ?eps mode r) ~initial

let initial_partition ?eps mode mrp =
  let n = Mdl_ctmc.Mrp.size mrp in
  let q = Floatx.quantize ?eps in
  match mode with
  | Ordinary ->
      let rewards = Mdl_ctmc.Mrp.rewards mrp in
      Partition.group_by n (fun s -> q rewards.(s)) Float.compare
  | Exact ->
      let pi = Mdl_ctmc.Mrp.initial mrp in
      let exit s = Mdl_ctmc.Ctmc.exit_rate (Mdl_ctmc.Mrp.ctmc mrp) s in
      let pair_cmp (a1, a2) (b1, b2) =
        let c = Float.compare a1 b1 in
        if c <> 0 then c else Float.compare a2 b2
      in
      Partition.group_by n (fun s -> (q pi.(s), q (exit s))) pair_cmp

let coarsest_mrp ?eps mode mrp =
  let r = Mdl_ctmc.Ctmc.rates (Mdl_ctmc.Mrp.ctmc mrp) in
  coarsest ?eps mode r ~initial:(initial_partition ?eps mode mrp)

module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Floatx = Mdl_util.Floatx

type mode = Ordinary | Exact

(* Accumulate, for splitter class [c], the nonzero sums
   sum_{j in c} m(s, j) per state s, where [m] is R for exact keys over
   the transpose, or R^T for ordinary keys (columns of R).  [m] must be
   the matrix whose row [j] lists the states touched by member [j]. *)
let class_sums m (perm, first, len) =
  let acc = Hashtbl.create 64 in
  for i = first to first + len - 1 do
    Csr.iter_row m perm.(i) (fun s v ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc s) in
        Hashtbl.replace acc s (prev +. v))
  done;
  Hashtbl.fold (fun s v l -> if v <> 0.0 then (s, v) :: l else l) acc []

let walk_matrix mode r = match mode with Ordinary -> Csr.transpose r | Exact -> r

let refiner_spec ?eps mode r =
  if Csr.rows r <> Csr.cols r then invalid_arg "State_lumping.refiner_spec: not square";
  (* Ordinary: K(R, s, C) = R(s, C) = sum over j in C of R(s, j); the
     touched states of splitter C are the predecessors of C, found by
     walking columns of R, i.e. rows of R^T.  Exact: K(R, s, C) =
     R(C, s); touched states are successors, rows of R itself.  Keys are
     grouped through the quantized representative — compare_approx is
     not transitive and must not order a sort (see {!Mdl_util.Floatx}). *)
  let walk = walk_matrix mode r in
  {
    Refiner.size = Csr.rows r;
    key_compare =
      (fun a b -> Float.compare (Floatx.quantize ?eps a) (Floatx.quantize ?eps b));
    splitter_keys = (fun c -> class_sums walk c);
  }

let float_spec ?eps mode r =
  if Csr.rows r <> Csr.cols r then invalid_arg "State_lumping.float_spec: not square";
  let n = Csr.rows r in
  let walk = walk_matrix mode r in
  (* Accumulate splitter sums into dense per-state scratch instead of a
     hashtable: [acc] holds running sums, [touched] the states hit this
     pass.  Both are reset state-by-state after emission, so a pass
     costs O(touched), not O(n).  The same drop rule as [class_sums]
     applies (exact 0.0 sums are not emitted; the engine quantizes the
     emitted keys inline). *)
  let acc = Array.make n 0.0 in
  let seen = Array.make n false in
  let touched = Array.make n 0 in
  let fsplitter_keys (perm, first, len) buf =
    let nt = ref 0 in
    for i = first to first + len - 1 do
      Csr.iter_row walk perm.(i) (fun s v ->
          if not seen.(s) then begin
            seen.(s) <- true;
            touched.(!nt) <- s;
            incr nt
          end;
          acc.(s) <- acc.(s) +. v)
    done;
    for t = 0 to !nt - 1 do
      let s = touched.(t) in
      let v = acc.(s) in
      if v <> 0.0 then Refiner.emit buf s v;
      acc.(s) <- 0.0;
      seen.(s) <- false
    done
  in
  { Refiner.fsize = n; feps = eps; fsplitter_keys }

let coarsest ?eps ?stats ?(generic = false) mode r ~initial =
  if Csr.rows r <> Csr.cols r then invalid_arg "State_lumping.coarsest: not square";
  if generic then Refiner.comp_lumping ?stats (refiner_spec ?eps mode r) ~initial
  else Refiner.comp_lumping_float ?stats (float_spec ?eps mode r) ~initial

let initial_partition ?eps mode mrp =
  let n = Mdl_ctmc.Mrp.size mrp in
  let q = Floatx.quantize ?eps in
  match mode with
  | Ordinary ->
      let rewards = Mdl_ctmc.Mrp.rewards mrp in
      Partition.group_by n (fun s -> q rewards.(s)) Float.compare
  | Exact ->
      let pi = Mdl_ctmc.Mrp.initial mrp in
      let exit s = Mdl_ctmc.Ctmc.exit_rate (Mdl_ctmc.Mrp.ctmc mrp) s in
      let pair_cmp (a1, a2) (b1, b2) =
        let c = Float.compare a1 b1 in
        if c <> 0 then c else Float.compare a2 b2
      in
      Partition.group_by n (fun s -> (q pi.(s), q (exit s))) pair_cmp

let coarsest_mrp ?eps mode mrp =
  let r = Mdl_ctmc.Ctmc.rates (Mdl_ctmc.Mrp.ctmc mrp) in
  coarsest ?eps mode r ~initial:(initial_partition ?eps mode mrp)

module Csr = Mdl_sparse.Csr

type t = {
  r : Csr.t;
  row_sums : float array; (* exit rates, including self loops *)
  mutable q : Csr.t option; (* cached generator *)
}

let of_rates r =
  if Csr.rows r <> Csr.cols r then invalid_arg "Ctmc.of_rates: matrix is not square";
  Csr.iter
    (fun i j v ->
      if v < 0.0 then
        invalid_arg (Printf.sprintf "Ctmc.of_rates: negative rate %g at (%d,%d)" v i j))
    r;
  { r; row_sums = Csr.row_sums r; q = None }

let of_triplets n triplets = of_rates (Csr.of_triplets ~rows:n ~cols:n triplets)

let size t = Csr.rows t.r

let rates t = t.r

let generator t =
  match t.q with
  | Some q -> q
  | None ->
      let n = size t in
      let q =
        Csr.of_entry_iter ~rows:n ~cols:n (fun f ->
            Csr.iter f t.r;
            for i = 0 to n - 1 do
              f i i (-.t.row_sums.(i))
            done)
      in
      t.q <- Some q;
      q

let exit_rate t i = t.row_sums.(i)

let max_exit_rate t = Array.fold_left Float.max 0.0 t.row_sums

let uniformized ?lambda t =
  let n = size t in
  if n = 0 then invalid_arg "Ctmc.uniformized: empty chain";
  let max_rate = max_exit_rate t in
  let lambda =
    match lambda with
    | None -> if max_rate = 0.0 then 1.0 else 1.02 *. max_rate
    | Some l ->
        if l < max_rate then invalid_arg "Ctmc.uniformized: lambda below max exit rate";
        l
  in
  let q = generator t in
  let p =
    Csr.of_entry_iter ~rows:n ~cols:n (fun f ->
        Csr.iter (fun i j v -> f i j (v /. lambda)) q;
        for i = 0 to n - 1 do
          f i i 1.0
        done)
  in
  (p, lambda)

let permute t ~perm = of_rates (Csr.permute t.r ~perm)

let reachable_from m start =
  (* BFS over positive off-diagonal entries of [m]. *)
  let n = Csr.rows m in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Csr.iter_row m i (fun j v ->
        if v > 0.0 && i <> j && not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j queue
        end)
  done;
  seen

let is_irreducible t =
  let n = size t in
  n > 0
  && Array.for_all Fun.id (reachable_from t.r 0)
  && Array.for_all Fun.id (reachable_from (Csr.transpose t.r) 0)

let pp ppf t = Format.fprintf ppf "CTMC on %d states:@ %a" (size t) Csr.pp t.r

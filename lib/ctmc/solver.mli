(** Numerical solution of CTMCs: stationary and transient distributions.

    The iterative kernels are written against an abstract row-vector /
    matrix product so that both flat sparse matrices and matrix-diagram
    representations (whose whole point is to avoid materialising the
    matrix) can drive the same solvers. *)

val log_src : Logs.src
(** The solvers' [Logs] source, [mdl.solve]: per-run convergence
    summaries at debug level and a warning on non-convergence, so a
    diverging solve is never silent.  Every iterative kernel also runs
    inside a [solver.*] span ([Mdl_obs.Trace]) and publishes
    [solver.iterations] / [solver.residual] / [solver.non_converged]
    into the metrics registry. *)

type stats = {
  iterations : int;
  residual : float;  (** last convergence-test value *)
  converged : bool;
}

type operator = {
  dim : int;
  apply : Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t;
      (** [apply x] is the row-vector product [x * P] for a DTMC matrix
          [P]. *)
}

val operator_of_csr : Mdl_sparse.Csr.t -> operator
(** @raise Invalid_argument if the matrix is not square. *)

val power :
  ?tol:float ->
  ?max_iter:int ->
  ?initial:Mdl_sparse.Vec.t ->
  operator ->
  Mdl_sparse.Vec.t * stats
(** Power iteration [pi := pi * P] with 1-normalisation each step;
    converges to the stationary distribution of an aperiodic DTMC.
    Convergence test: successive-iterate infinity-norm difference below
    [tol] (default [1e-12]; [max_iter] default [100_000]). *)

val steady_state :
  ?tol:float -> ?max_iter:int -> Ctmc.t -> Mdl_sparse.Vec.t * stats
(** Stationary distribution of a CTMC via power iteration on its
    uniformised DTMC. *)

val steady_state_gauss_seidel :
  ?tol:float -> ?max_iter:int -> Ctmc.t -> Mdl_sparse.Vec.t * stats
(** Gauss–Seidel sweeps on [pi Q = 0] (using the transposed generator),
    renormalised each sweep.  Typically converges in far fewer
    iterations than power iteration on stiff chains. *)

val transient :
  ?epsilon:float -> t:float -> Ctmc.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [transient ~t ctmc pi0] is the distribution at time [t] from [pi0],
    by uniformisation (Poisson-weighted powers of the uniformised DTMC);
    [epsilon] (default [1e-12]) bounds the truncation error.
    @raise Invalid_argument if [t < 0]. *)

val transient_operator :
  ?epsilon:float ->
  t:float ->
  lambda:float ->
  operator ->
  Mdl_sparse.Vec.t ->
  Mdl_sparse.Vec.t
(** Uniformisation against an abstract DTMC operator [x -> x P] with
    uniformisation rate [lambda] — the kernel behind {!transient},
    exposed so matrix-diagram-driven analyses can reuse it without
    materialising [P].
    @raise Invalid_argument if [t < 0] or the vector dimension does not
    match the operator. *)

val expected_reward : Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t -> float
(** [expected_reward pi r] is [sum_i pi(i) * r(i)]. *)

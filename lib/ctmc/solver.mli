(** Numerical solution of CTMCs: stationary and transient distributions.

    The iterative kernels are written against an abstract row-vector /
    matrix product so that both flat sparse matrices and matrix-diagram
    representations (whose whole point is to avoid materialising the
    matrix) can drive the same solvers. *)

val log_src : Logs.src
(** The solvers' [Logs] source, [mdl.solve]: per-run convergence
    summaries at debug level and a warning on non-convergence, so a
    diverging solve is never silent.  Every iterative kernel also runs
    inside a [solver.*] span ([Mdl_obs.Trace]) and publishes
    [solver.iterations] / [solver.residual] / [solver.non_converged]
    into the metrics registry. *)

type stats = {
  iterations : int;
  residual : float;  (** last convergence-test value *)
  converged : bool;
}

type operator = {
  dim : int;
  apply : Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t;
      (** [apply x] is the row-vector product [x * P] for a DTMC matrix
          [P]. *)
}

val operator_of_csr : Mdl_sparse.Csr.t -> operator
(** @raise Invalid_argument if the matrix is not square. *)

type ordering =
  | Natural  (** Solve in the chain's own state numbering. *)
  | Rcm
      (** Relabel with {!Mdl_sparse.Ordering.rcm} before solving, so the
          sweeps walk nearly-contiguous memory; the returned distribution
          is mapped back to the original numbering, so results are
          ordering-independent up to floating-point summation order. *)

val power :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?initial:Mdl_sparse.Vec.t ->
  operator ->
  Mdl_sparse.Vec.t * stats
(** Power iteration [pi := pi * P] with 1-normalisation each step;
    converges to the stationary distribution of an aperiodic DTMC.
    Convergence test: successive-iterate infinity-norm difference below
    [tol] (default [1e-12]; [max_iter] default [100_000]).  [tctx]
    records the run's spans into that explicit {!Mdl_obs.Trace.Ctx.t}
    instead of the caller's current context — the other instrumented
    solvers below take the same argument. *)

val krylov :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?initial:Mdl_sparse.Vec.t ->
  ?diag:Mdl_sparse.Vec.t ->
  operator ->
  Mdl_sparse.Vec.t * stats
(** BiCGStab on the stationarity equations.  [pi (P - I) = 0] with
    [sum pi = 1] is made nonsingular by replacing the last column of
    [P - I] with ones ([x A = e_{n-1}]), then solved with the
    stabilised biconjugate gradient method; [diag], the main diagonal
    of [P] when the caller can compute it, switches on Jacobi right
    preconditioning.  The convergence test is the infinity norm of the
    linear-system residual (default [tol] [1e-12], [max_iter]
    [10_000], one iteration = two operator applications); the result
    is clamped to nonnegative entries and 1-normalised.  Typically
    converges in orders of magnitude fewer iterations than {!power} on
    stiff chains.
    @raise Invalid_argument if the operator is empty or [initial] /
    [diag] sizes mismatch. *)

val steady_state :
  ?tol:float -> ?max_iter:int -> Ctmc.t -> Mdl_sparse.Vec.t * stats
(** Stationary distribution of a CTMC via power iteration on its
    uniformised DTMC. *)

val steady_state_gauss_seidel :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?ordering:ordering ->
  ?relax:float ->
  Ctmc.t ->
  Mdl_sparse.Vec.t * stats
(** Gauss–Seidel sweeps on [pi Q = 0] (using the transposed generator),
    renormalised each sweep.  Typically converges in far fewer
    iterations than power iteration on stiff chains.  [ordering]
    (default {!Natural}) selects the sweep order; [relax] in [(0, 1]]
    (default [1.], plain Gauss–Seidel) under-relaxes the update (SOR),
    which restores convergence on chains where pure sweeps oscillate.
    @raise Invalid_argument if [relax] is outside [(0, 1]], or if some
    state has a zero generator diagonal (an absorbing state, or one
    with only a self loop): the sweep update divides by the diagonal,
    and such chains have no positive stationary distribution for it to
    find. *)

val steady_state_krylov :
  ?tol:float ->
  ?max_iter:int ->
  ?ordering:ordering ->
  Ctmc.t ->
  Mdl_sparse.Vec.t * stats
(** Stationary distribution via {!krylov} on the uniformised DTMC,
    Jacobi-preconditioned with its diagonal; [ordering] (default
    {!Natural}) optionally relabels the chain with reverse
    Cuthill–McKee first. *)

type method_ = Power | Gauss_seidel | Krylov

val method_name : method_ -> string
(** ["power"], ["gauss-seidel"], ["krylov"] — the spellings the
    [lumpmd --solver] flag accepts. *)

val steady_state_with :
  ?tol:float ->
  ?max_iter:int ->
  ?ordering:ordering ->
  ?relax:float ->
  method_ ->
  Ctmc.t ->
  Mdl_sparse.Vec.t * stats
(** Dispatch to {!steady_state} / {!steady_state_gauss_seidel} /
    {!steady_state_krylov}.  [ordering] is ignored by {!Power} (a dense
    vector recurrence gains nothing from relabelling); [relax] only
    applies to {!Gauss_seidel}. *)

val poisson_weights : epsilon:float -> qt:float -> Mdl_sparse.Vec.t
(** [poisson_weights ~epsilon ~qt] are the Poisson([qt]) probabilities
    [w(0) .. w(r)] used by uniformisation, with the right truncation
    point [r] chosen so the discarded tail mass is below [epsilon]
    (a simplified Fox–Glynn scheme, scaled from the mode).  The
    retained weights are renormalised to sum to exactly [1].  Exposed
    for testing. *)

val transient :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?epsilon:float ->
  t:float ->
  Ctmc.t ->
  Mdl_sparse.Vec.t ->
  Mdl_sparse.Vec.t
(** [transient ~t ctmc pi0] is the distribution at time [t] from [pi0],
    by uniformisation (Poisson-weighted powers of the uniformised DTMC);
    [epsilon] (default [1e-12]) bounds the truncation error.
    @raise Invalid_argument if [t < 0]. *)

val transient_operator :
  ?epsilon:float ->
  t:float ->
  lambda:float ->
  operator ->
  Mdl_sparse.Vec.t ->
  Mdl_sparse.Vec.t
(** Uniformisation against an abstract DTMC operator [x -> x P] with
    uniformisation rate [lambda] — the kernel behind {!transient},
    exposed so matrix-diagram-driven analyses can reuse it without
    materialising [P].  Observed like the stationary kernels: a
    [solver.transient] span, the run/iteration counters (one iteration
    per operator application) and the truncation deficit as the
    residual gauge.
    @raise Invalid_argument if [t < 0] or the vector dimension does not
    match the operator. *)

val expected_reward : Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t -> float
(** [expected_reward pi r] is [sum_i pi(i) * r(i)]. *)

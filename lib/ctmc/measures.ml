let steady_state_reward ?tol ?max_iter ?(method_ = Solver.Power) ?ordering mrp =
  let pi, _stats =
    Solver.steady_state_with ?tol ?max_iter ?ordering method_ (Mrp.ctmc mrp)
  in
  Solver.expected_reward pi (Mrp.rewards mrp)

let transient_reward ?epsilon ~t mrp =
  let pi = Solver.transient ?epsilon ~t (Mrp.ctmc mrp) (Mrp.initial mrp) in
  Solver.expected_reward pi (Mrp.rewards mrp)

let accumulated_reward ?epsilon ~t ?(steps = 64) mrp =
  if steps <= 0 then invalid_arg "Measures.accumulated_reward: steps must be positive";
  if t < 0.0 then invalid_arg "Measures.accumulated_reward: negative horizon";
  if t = 0.0 then 0.0
  else begin
    let h = t /. float_of_int steps in
    let value_at tk = transient_reward ?epsilon ~t:tk mrp in
    let acc = ref ((value_at 0.0 +. value_at t) /. 2.0) in
    for k = 1 to steps - 1 do
      acc := !acc +. value_at (h *. float_of_int k)
    done;
    !acc *. h
  end

let probability_in pi pred =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> if pred i then acc := !acc +. p) pi;
  !acc

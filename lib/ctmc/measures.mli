(** High-level reward measures on MRPs (the quantities an analyst
    actually asks for — Section 2 of the paper motivates lumping by the
    preservation of exactly these). *)

val steady_state_reward :
  ?tol:float ->
  ?max_iter:int ->
  ?method_:Solver.method_ ->
  ?ordering:Solver.ordering ->
  Mrp.t ->
  float
(** Expected rate reward under the stationary distribution, solved with
    [method_] (default {!Solver.Power}); [ordering] is forwarded to
    {!Solver.steady_state_with}. *)

val transient_reward : ?epsilon:float -> t:float -> Mrp.t -> float
(** Expected rate reward at time [t], starting from the MRP's initial
    distribution. *)

val accumulated_reward : ?epsilon:float -> t:float -> ?steps:int -> Mrp.t -> float
(** Approximate expected reward accumulated over [\[0, t\]] (trapezoidal
    integration of the transient reward at [steps] points, default 64). *)

val probability_in : Mdl_sparse.Vec.t -> (int -> bool) -> float
(** [probability_in pi pred] is the probability mass of states satisfying
    [pred] — e.g. availability given an "is the system up" predicate. *)

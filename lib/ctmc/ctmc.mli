(** Continuous-time Markov chains.

    Following the paper, a CTMC over state space [S = {0, .., n-1}] is
    specified by its state-transition rate matrix [R], where [R(i,j)] is
    the rate of the transition from [i] to [j]; the generator is
    [Q = R - rs(R)] with [rs] the diagonal matrix of row sums.  [R] may
    carry self-loop rates on its diagonal — they cancel in [Q] but are
    distinguishable for lumping purposes (Theorem 1's converse remark),
    which is why [R], not [Q], is the primary representation here. *)

type t

val of_rates : Mdl_sparse.Csr.t -> t
(** [of_rates r] wraps rate matrix [r].
    @raise Invalid_argument if [r] is not square or has a negative
    entry. *)

val of_triplets : int -> (int * int * float) list -> t
(** [of_triplets n l] builds the chain on [n] states from rate triplets. *)

val size : t -> int

val rates : t -> Mdl_sparse.Csr.t
(** The [R] matrix. *)

val generator : t -> Mdl_sparse.Csr.t
(** [Q = R - rs(R)] (computed once, cached). *)

val exit_rate : t -> int -> float
(** [exit_rate t i = R(i, S)], the row sum including any self loop. *)

val max_exit_rate : t -> float

val uniformized : ?lambda:float -> t -> Mdl_sparse.Csr.t * float
(** [uniformized t] is the DTMC transition-probability matrix
    [P = I + Q / lambda] together with the uniformisation rate [lambda]
    (default: 1.02 * max exit rate, so [P] is strictly substochastic in
    no row). @raise Invalid_argument if [lambda] is not >= max exit
    rate or the chain is empty. *)

val permute : t -> perm:int array -> t
(** [permute t ~perm] relabels the states: state [perm.(k)] of [t]
    becomes state [k] (the {!Mdl_sparse.Csr.permute} convention, as
    produced by {!Mdl_sparse.Ordering.rcm}).  Distributions move back to
    the original labelling with {!Mdl_sparse.Vec.scatter}.
    @raise Invalid_argument if [perm] is not a permutation of the state
    space. *)

val is_irreducible : t -> bool
(** True when the directed graph of positive off-diagonal rates is
    strongly connected (checked with two BFS passes on [R] and its
    transpose from state 0). *)

val pp : Format.formatter -> t -> unit

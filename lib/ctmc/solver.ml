module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Ordering = Mdl_sparse.Ordering
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics

let log_src = Logs.Src.create "mdl.solve" ~doc:"CTMC numerical solvers"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_iterations = Metrics.counter "solver.iterations"

let c_runs = Metrics.counter "solver.runs"

let c_non_converged = Metrics.counter "solver.non_converged"

let g_residual = Metrics.gauge "solver.residual"

type stats = { iterations : int; residual : float; converged : bool }

(* Shared epilogue of the iterative kernels: span + registry + debug
   log, so no solver run — converged or not — is silent. *)
let observe_run name (result, st) =
  Metrics.incr c_runs;
  Metrics.add c_iterations st.iterations;
  Metrics.set g_residual st.residual;
  if not st.converged then Metrics.incr c_non_converged;
  Trace.add_args
    [
      ("iterations", Trace.Int st.iterations);
      ("residual", Trace.Float st.residual);
      ("converged", Trace.Bool st.converged);
    ];
  Log.debug (fun m ->
      m "%s: %d iterations, residual %.3e%s" name st.iterations st.residual
        (if st.converged then "" else " (NOT converged)"));
  if not st.converged then
    Log.warn (fun m ->
        m "%s did not converge: %d iterations, residual %.3e" name st.iterations
          st.residual);
  (result, st)

type operator = { dim : int; apply : Vec.t -> Vec.t }

let operator_of_csr m =
  if Csr.rows m <> Csr.cols m then invalid_arg "Solver.operator_of_csr: not square";
  { dim = Csr.rows m; apply = (fun x -> Csr.vec_mul x m) }

type ordering = Natural | Rcm

(* Solve a relabelled copy of the chain and push the distribution back
   to the original state numbering, so callers never see the permuted
   indices. *)
let with_ordering ordering ctmc solve =
  match ordering with
  | Natural -> solve ctmc
  | Rcm ->
      let perm = Ordering.rcm (Ctmc.rates ctmc) in
      let pi, st = solve (Ctmc.permute ctmc ~perm) in
      (Vec.scatter pi perm, st)

let power ?tctx ?(tol = 1e-12) ?(max_iter = 100_000) ?initial op =
  Trace.with_ctx_opt tctx @@ fun () ->
  let pi =
    match initial with
    | None -> Array.make op.dim (1.0 /. float_of_int op.dim)
    | Some v ->
        if Array.length v <> op.dim then invalid_arg "Solver.power: initial size mismatch";
        Vec.copy v
  in
  let rec loop pi k =
    let next = op.apply pi in
    Vec.normalize1 next;
    let diff = Vec.diff_inf next pi in
    if diff <= tol then (next, { iterations = k; residual = diff; converged = true })
    else if k >= max_iter then
      (next, { iterations = k; residual = diff; converged = false })
    else loop next (k + 1)
  in
  Trace.with_span ~cat:"solve" "solver.power" (fun () ->
      observe_run "solver.power" (loop pi 1))

let steady_state ?tol ?max_iter ctmc =
  let p, _lambda = Ctmc.uniformized ctmc in
  power ?tol ?max_iter (operator_of_csr p)

let steady_state_gauss_seidel ?tctx ?(tol = 1e-12) ?(max_iter = 10_000)
    ?(ordering = Natural) ?(relax = 1.0) ctmc =
  Trace.with_ctx_opt tctx @@ fun () ->
  if not (relax > 0.0 && relax <= 1.0) then
    invalid_arg "Solver.steady_state_gauss_seidel: relax must be in (0, 1]";
  (* The sweep divides by the generator diagonal, so every state must
     have at least one outgoing transition besides a self loop.  Check
     up front (on the original numbering) instead of skipping silently:
     a skipped state would keep its stale 1/n initial mass and the
     "converged" distribution would be quietly wrong. *)
  Array.iteri
    (fun j d ->
      if d >= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Solver.steady_state_gauss_seidel: absorbing state %d (zero generator \
              diagonal)"
             j))
    (Csr.diagonal (Ctmc.generator ctmc));
  with_ordering ordering ctmc (fun ctmc ->
      (* Solve pi Q = 0 by in-place sweeps over the transposed generator:
         pi(j) = (sum_{i<>j} pi(i) Q(i,j)) / -Q(j,j).  Rows of Q^T hold the
         incoming rates of state j; the diagonal is extracted on the fly. *)
      let n = Ctmc.size ctmc in
      let qt = Csr.transpose (Ctmc.generator ctmc) in
      let pi = Array.make n (1.0 /. float_of_int n) in
      (* With [relax] = 1 this is a plain Gauss–Seidel update; < 1 is
         SOR under-relaxation, which damps the oscillation pure sweeps
         exhibit on some chains (e.g. the lumped Kanban model). *)
      let sweep () =
        for j = 0 to n - 1 do
          let incoming = ref 0.0 and diag = ref 0.0 in
          Csr.iter_row qt j (fun i v ->
              if i = j then diag := v else incoming := !incoming +. (pi.(i) *. v));
          let gs = !incoming /. -. !diag in
          pi.(j) <- (if relax = 1.0 then gs else ((1.0 -. relax) *. pi.(j)) +. (relax *. gs))
        done;
        Vec.normalize1 pi
      in
      let rec loop k prev =
        sweep ();
        let diff = Vec.diff_inf pi prev in
        if diff <= tol then { iterations = k; residual = diff; converged = true }
        else if k >= max_iter then { iterations = k; residual = diff; converged = false }
        else loop (k + 1) (Vec.copy pi)
      in
      Trace.with_span ~cat:"solve" "solver.gauss_seidel" (fun () ->
          observe_run "solver.gauss_seidel" (pi, loop 1 (Vec.copy pi))))

let tiny = 1e-300

let krylov ?tctx ?(tol = 1e-12) ?(max_iter = 10_000) ?initial ?diag op =
  Trace.with_ctx_opt tctx @@ fun () ->
  (* The stationary distribution of the DTMC operator as the solution of
     a nonsingular linear system: pi (P - I) = 0 together with
     sum(pi) = 1 is encoded by replacing the last column of P - I with
     ones — x A = e_c with c = dim - 1 — and solved with BiCGStab,
     Jacobi-preconditioned on the right when [diag] (the diagonal of P)
     is supplied.  Works against the abstract operator, so both flat CSR
     matrices and matrix-diagram products drive the same kernel. *)
  let n = op.dim in
  if n = 0 then invalid_arg "Solver.krylov: empty operator";
  let c = n - 1 in
  let apply_a x =
    let y = op.apply x in
    for j = 0 to n - 1 do
      y.(j) <- y.(j) -. x.(j)
    done;
    y.(c) <- Vec.sum x;
    y
  in
  let inv_d =
    match diag with
    | None -> Array.make n 1.0
    | Some d ->
        if Array.length d <> n then invalid_arg "Solver.krylov: diag size mismatch";
        Array.init n (fun j ->
            if j = c then 1.0
            else
              let a = d.(j) -. 1.0 in
              if Float.abs a < tiny then 1.0 else 1.0 /. a)
  in
  let precond x = Array.mapi (fun j v -> v *. inv_d.(j)) x in
  let x =
    match initial with
    | None -> Array.make n (1.0 /. float_of_int n)
    | Some v ->
        if Array.length v <> n then invalid_arg "Solver.krylov: initial size mismatch";
        Vec.copy v
  in
  let r = apply_a x in
  for j = 0 to n - 1 do
    r.(j) <- -.r.(j)
  done;
  r.(c) <- 1.0 +. r.(c);
  (* r = b - x A with b = e_c *)
  let rhat = ref (Vec.copy r) in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Array.make n 0.0 and p = Array.make n 0.0 in
  let finish k res converged =
    (* Best-effort clean-up into a probability vector: tiny negative
       components are numerical noise of the linear solve. *)
    Array.iteri (fun j xv -> if xv < 0.0 then x.(j) <- 0.0) x;
    if Vec.sum x > 0.0 then Vec.normalize1 x
    else Array.fill x 0 n (1.0 /. float_of_int n);
    (x, { iterations = k; residual = res; converged })
  in
  let rec loop k r =
    let res = Vec.norm_inf r in
    if res <= tol then finish k res true
    else if k >= max_iter then finish k res false
    else begin
      let rho' = Vec.dot !rhat r in
      let rho' =
        if Float.abs rho' >= tiny then rho'
        else begin
          (* Serious breakdown (shadow residual orthogonal to the
             residual): restart with a fresh shadow direction. *)
          rhat := Vec.copy r;
          rho := 1.0;
          alpha := 1.0;
          omega := 1.0;
          Array.fill p 0 n 0.0;
          Array.fill v 0 n 0.0;
          Vec.dot !rhat r
        end
      in
      if Float.abs rho' < tiny then finish k res false
      else begin
        let beta = rho' /. !rho *. (!alpha /. !omega) in
        for j = 0 to n - 1 do
          p.(j) <- r.(j) +. (beta *. (p.(j) -. (!omega *. v.(j))))
        done;
        let phat = precond p in
        Array.blit (apply_a phat) 0 v 0 n;
        let denom = Vec.dot !rhat v in
        if Float.abs denom < tiny then finish k res false
        else begin
          alpha := rho' /. denom;
          let s = Array.init n (fun j -> r.(j) -. (!alpha *. v.(j))) in
          let s_res = Vec.norm_inf s in
          if s_res <= tol then begin
            (* Half-step early exit. *)
            Vec.axpy ~alpha:!alpha phat x;
            finish (k + 1) s_res true
          end
          else begin
            let shat = precond s in
            let t = apply_a shat in
            let tt = Vec.dot t t in
            if tt < tiny then begin
              Vec.axpy ~alpha:!alpha phat x;
              finish (k + 1) s_res false
            end
            else begin
              omega := Vec.dot t s /. tt;
              if Float.abs !omega < tiny then begin
                Vec.axpy ~alpha:!alpha phat x;
                finish (k + 1) s_res false
              end
              else begin
                Vec.axpy ~alpha:!alpha phat x;
                Vec.axpy ~alpha:!omega shat x;
                let r' = Array.init n (fun j -> s.(j) -. (!omega *. t.(j))) in
                rho := rho';
                loop (k + 1) r'
              end
            end
          end
        end
      end
    end
  in
  Trace.with_span ~cat:"solve" "solver.krylov" (fun () ->
      observe_run "solver.krylov" (loop 0 r))

let steady_state_krylov ?tol ?max_iter ?(ordering = Natural) ctmc =
  with_ordering ordering ctmc (fun ctmc ->
      let p, _lambda = Ctmc.uniformized ctmc in
      krylov ?tol ?max_iter ~diag:(Csr.diagonal p) (operator_of_csr p))

type method_ = Power | Gauss_seidel | Krylov

let method_name = function
  | Power -> "power"
  | Gauss_seidel -> "gauss-seidel"
  | Krylov -> "krylov"

let steady_state_with ?tol ?max_iter ?(ordering = Natural) ?relax method_ ctmc =
  match method_ with
  | Power -> steady_state ?tol ?max_iter ctmc
  | Gauss_seidel -> steady_state_gauss_seidel ?tol ?max_iter ~ordering ?relax ctmc
  | Krylov -> steady_state_krylov ?tol ?max_iter ~ordering ctmc

let poisson_weights_deficit ~epsilon ~qt =
  (* Weights w(k) = e^{-qt} (qt)^k / k! for k = 0..r, with r chosen so the
     truncated tail mass is below epsilon.  Computed in a numerically
     safe way by scaling from the mode (a simplified Fox–Glynn).  The
     retained weights are renormalised to sum to exactly 1 — summing the
     transient distribution to 1 — and the relative mass dropped by the
     truncation is reported alongside as the method's residual. *)
  if qt = 0.0 then ([| 1.0 |], 0.0)
  else begin
    let mode = int_of_float qt in
    (* Generous upper bound on the right truncation point. *)
    let r_max = mode + 10 + int_of_float ((8.0 *. sqrt (qt +. 1.0)) +. qt) in
    let w = Array.make (r_max + 1) 0.0 in
    w.(mode) <- 1.0;
    (* Unnormalised: w(k+1) = w(k) * qt/(k+1); w(k-1) = w(k) * k/qt. *)
    for k = mode + 1 to r_max do
      w.(k) <- w.(k - 1) *. qt /. float_of_int k
    done;
    for k = mode - 1 downto 0 do
      w.(k) <- w.(k + 1) *. float_of_int (k + 1) /. qt
    done;
    let total = Mdl_util.Floatx.sum_kahan w in
    (* Find the right truncation point covering mass 1 - epsilon. *)
    let target = (1.0 -. epsilon) *. total in
    let acc = ref 0.0 and r = ref r_max in
    (try
       for k = 0 to r_max do
         acc := !acc +. w.(k);
         if !acc >= target then begin
           r := k;
           raise Exit
         end
       done
     with Exit -> ());
    let w = Array.sub w 0 (!r + 1) in
    let retained = Mdl_util.Floatx.sum_kahan w in
    (Array.map (fun x -> x /. retained) w, (total -. retained) /. total)
  end

let poisson_weights ~epsilon ~qt = fst (poisson_weights_deficit ~epsilon ~qt)

let transient_operator ?(epsilon = 1e-12) ~t ~lambda op pi0 =
  if t < 0.0 then invalid_arg "Solver.transient_operator: negative time";
  if Array.length pi0 <> op.dim then
    invalid_arg "Solver.transient_operator: initial size mismatch";
  if t = 0.0 then Vec.copy pi0
  else
    Trace.with_span ~cat:"solve" "solver.transient" (fun () ->
        let weights, deficit = poisson_weights_deficit ~epsilon ~qt:(lambda *. t) in
        let result = Array.make (Array.length pi0) 0.0 in
        let current = ref (Vec.copy pi0) in
        Array.iteri
          (fun k w ->
            if k > 0 then current := op.apply !current;
            Vec.axpy ~alpha:w !current result)
          weights;
        Trace.add_args [ ("terms", Trace.Int (Array.length weights)) ];
        fst
          (observe_run "solver.transient"
             ( result,
               {
                 iterations = Array.length weights - 1;
                 residual = deficit;
                 converged = deficit <= epsilon;
               } )))

let transient ?tctx ?epsilon ~t ctmc pi0 =
  Trace.with_ctx_opt tctx @@ fun () ->
  if t < 0.0 then invalid_arg "Solver.transient: negative time";
  if Array.length pi0 <> Ctmc.size ctmc then
    invalid_arg "Solver.transient: initial size mismatch";
  let p, lambda = Ctmc.uniformized ctmc in
  transient_operator ?epsilon ~t ~lambda (operator_of_csr p) pi0

let expected_reward pi r = Vec.dot pi r

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics

let log_src = Logs.Src.create "mdl.solve" ~doc:"CTMC numerical solvers"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_iterations = Metrics.counter "solver.iterations"

let c_runs = Metrics.counter "solver.runs"

let c_non_converged = Metrics.counter "solver.non_converged"

let g_residual = Metrics.gauge "solver.residual"

type stats = { iterations : int; residual : float; converged : bool }

(* Shared epilogue of the iterative kernels: span + registry + debug
   log, so no solver run — converged or not — is silent. *)
let observe_run name (result, st) =
  Metrics.incr c_runs;
  Metrics.add c_iterations st.iterations;
  Metrics.set g_residual st.residual;
  if not st.converged then Metrics.incr c_non_converged;
  Trace.add_args
    [
      ("iterations", Trace.Int st.iterations);
      ("residual", Trace.Float st.residual);
      ("converged", Trace.Bool st.converged);
    ];
  Log.debug (fun m ->
      m "%s: %d iterations, residual %.3e%s" name st.iterations st.residual
        (if st.converged then "" else " (NOT converged)"));
  if not st.converged then
    Log.warn (fun m ->
        m "%s did not converge: %d iterations, residual %.3e" name st.iterations
          st.residual);
  (result, st)

type operator = { dim : int; apply : Vec.t -> Vec.t }

let operator_of_csr m =
  if Csr.rows m <> Csr.cols m then invalid_arg "Solver.operator_of_csr: not square";
  { dim = Csr.rows m; apply = (fun x -> Csr.vec_mul x m) }

let power ?(tol = 1e-12) ?(max_iter = 100_000) ?initial op =
  let pi =
    match initial with
    | None -> Array.make op.dim (1.0 /. float_of_int op.dim)
    | Some v ->
        if Array.length v <> op.dim then invalid_arg "Solver.power: initial size mismatch";
        Vec.copy v
  in
  let rec loop pi k =
    let next = op.apply pi in
    Vec.normalize1 next;
    let diff = Vec.diff_inf next pi in
    if diff <= tol then (next, { iterations = k; residual = diff; converged = true })
    else if k >= max_iter then
      (next, { iterations = k; residual = diff; converged = false })
    else loop next (k + 1)
  in
  Trace.with_span ~cat:"solve" "solver.power" (fun () ->
      observe_run "solver.power" (loop pi 1))

let steady_state ?tol ?max_iter ctmc =
  let p, _lambda = Ctmc.uniformized ctmc in
  power ?tol ?max_iter (operator_of_csr p)

let steady_state_gauss_seidel ?(tol = 1e-12) ?(max_iter = 10_000) ctmc =
  (* Solve pi Q = 0 by in-place sweeps over the transposed generator:
     pi(j) = (sum_{i<>j} pi(i) Q(i,j)) / -Q(j,j).  Rows of Q^T hold the
     incoming rates of state j; the diagonal is extracted on the fly. *)
  let n = Ctmc.size ctmc in
  let qt = Csr.transpose (Ctmc.generator ctmc) in
  let pi = Array.make n (1.0 /. float_of_int n) in
  let sweep () =
    for j = 0 to n - 1 do
      let incoming = ref 0.0 and diag = ref 0.0 in
      Csr.iter_row qt j (fun i v -> if i = j then diag := v else incoming := !incoming +. (pi.(i) *. v));
      if !diag < 0.0 then pi.(j) <- !incoming /. -. !diag
    done;
    Vec.normalize1 pi
  in
  let rec loop k prev =
    sweep ();
    let diff = Vec.diff_inf pi prev in
    if diff <= tol then { iterations = k; residual = diff; converged = true }
    else if k >= max_iter then { iterations = k; residual = diff; converged = false }
    else loop (k + 1) (Vec.copy pi)
  in
  Trace.with_span ~cat:"solve" "solver.gauss_seidel" (fun () ->
      observe_run "solver.gauss_seidel" (pi, loop 1 (Vec.copy pi)))

let poisson_weights ~epsilon ~qt =
  (* Weights w(k) = e^{-qt} (qt)^k / k! for k = 0..r, with r chosen so the
     truncated tail mass is below epsilon.  Computed in a numerically
     safe way by scaling from the mode (a simplified Fox–Glynn). *)
  if qt = 0.0 then [| 1.0 |]
  else begin
    let mode = int_of_float qt in
    (* Generous upper bound on the right truncation point. *)
    let r_max = mode + 10 + int_of_float (8.0 *. sqrt (qt +. 1.0) +. qt) in
    let w = Array.make (r_max + 1) 0.0 in
    w.(mode) <- 1.0;
    (* Unnormalised: w(k+1) = w(k) * qt/(k+1); w(k-1) = w(k) * k/qt. *)
    for k = mode + 1 to r_max do
      w.(k) <- w.(k - 1) *. qt /. float_of_int k
    done;
    for k = mode - 1 downto 0 do
      w.(k) <- w.(k + 1) *. float_of_int (k + 1) /. qt
    done;
    let total = Mdl_util.Floatx.sum_kahan w in
    (* Find the right truncation point covering mass 1 - epsilon. *)
    let target = (1.0 -. epsilon) *. total in
    let acc = ref 0.0 and r = ref r_max in
    (try
       for k = 0 to r_max do
         acc := !acc +. w.(k);
         if !acc >= target then begin
           r := k;
           raise Exit
         end
       done
     with Exit -> ());
    let w = Array.sub w 0 (!r + 1) in
    Array.map (fun x -> x /. total) w
  end

let transient_operator ?(epsilon = 1e-12) ~t ~lambda op pi0 =
  if t < 0.0 then invalid_arg "Solver.transient_operator: negative time";
  if Array.length pi0 <> op.dim then
    invalid_arg "Solver.transient_operator: initial size mismatch";
  if t = 0.0 then Vec.copy pi0
  else
    Trace.with_span ~cat:"solve" "solver.transient" (fun () ->
        let weights = poisson_weights ~epsilon ~qt:(lambda *. t) in
        let result = Array.make (Array.length pi0) 0.0 in
        let current = ref (Vec.copy pi0) in
        Array.iteri
          (fun k w ->
            if k > 0 then current := op.apply !current;
            Vec.axpy ~alpha:w !current result)
          weights;
        Metrics.incr c_runs;
        Metrics.add c_iterations (Array.length weights - 1);
        Trace.add_args [ ("terms", Trace.Int (Array.length weights)) ];
        result)

let transient ?epsilon ~t ctmc pi0 =
  if t < 0.0 then invalid_arg "Solver.transient: negative time";
  if Array.length pi0 <> Ctmc.size ctmc then
    invalid_arg "Solver.transient: initial size mismatch";
  let p, lambda = Ctmc.uniformized ctmc in
  transient_operator ?epsilon ~t ~lambda (operator_of_csr p) pi0

let expected_reward pi r = Vec.dot pi r

(** Compressed-sparse-row matrices over the reals.

    This is the workhorse flat-matrix representation: the state-level
    lumping baseline, the iterative solvers and the lumpability checkers
    all consume it.  Matrices are immutable after construction. *)

type t

val of_coo : Coo.t -> t
(** Sort triplets, fold duplicates (values of equal [(i,j)] are summed)
    and drop entries that cancel to exactly [0.]. *)

val of_dense : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

val of_entry_iter :
  rows:int -> cols:int -> ((int -> int -> float -> unit) -> unit) -> t
(** [of_entry_iter ~rows ~cols iter] builds the matrix CSR-natively from
    an entry producer: [iter f] must call [f i j v] once per entry, in
    any order, duplicates allowed (values of equal [(i,j)] are summed in
    emission order; entries that cancel to exactly [0.] are dropped,
    like {!of_coo}).  A two-pass count-then-fill construction — [iter]
    runs twice and must produce the same entries both times — with
    row-pointer prefix sums and an in-row column sort/merge: no triplet
    intermediate and no global sort, which is what the hot lump→solve
    quotient path wants.
    @raise Invalid_argument on out-of-bounds entries or when the two
    passes disagree. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val get : t -> int -> int -> float
(** [get t i j] is entry [(i,j)] ([0.] when absent); binary search within
    the row, [O(log nnz_row)]. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row t i f] calls [f j v] for every stored entry of row [i] in
    increasing column order. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** Iterate all stored entries in row-major order. *)

val row_sum : t -> int -> float

val row_sums : t -> Vec.t

val col_sums : t -> Vec.t

val transpose : t -> t

val permute : t -> perm:int array -> t
(** [permute t ~perm] is the symmetric permutation [B] of a square [t]
    with [B(i,j) = t(perm.(i), perm.(j))]: state [perm.(k)] of [t]
    becomes state [k] of [B].  [perm] is in the convention of
    {!Ordering.rcm}; vectors move between the two orderings with
    {!Vec.gather} / {!Vec.scatter}.
    @raise Invalid_argument if [t] is not square or [perm] is not a
    permutation of its indices. *)

val diagonal : t -> Vec.t
(** The main diagonal of a square matrix ([0.] where absent).
    @raise Invalid_argument if the matrix is not square. *)

val scale : float -> t -> t

val add : t -> t -> t
(** Entrywise sum. @raise Invalid_argument on dimension mismatch. *)

val map : (float -> float) -> t -> t
(** Apply [f] to every {e stored} entry (structural zeros are untouched);
    entries mapped to exactly [0.] are dropped. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. @raise Invalid_argument on mismatch. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x a] is [x A] (row vector times matrix). *)

val to_dense : t -> float array array

val approx_equal : ?eps:float -> t -> t -> bool
(** Entrywise approximate equality (structure-independent). *)

val equal : t -> t -> bool
(** Exact structural equality: same dimensions, same stored structure,
    bit-level equal values.  Since construction drops exact zeros,
    matrices with bit-equal entries always have equal structure — this
    is the hash-consing equality for key interning (pair it with
    {!hash}); quantize values first when tolerant key equality is
    wanted. *)

val hash : t -> int
(** Consistent with {!equal}. *)

val identity : int -> t

val pp : Format.formatter -> t -> unit

(** Compressed-sparse-row matrices over the reals.

    This is the workhorse flat-matrix representation: the state-level
    lumping baseline, the iterative solvers and the lumpability checkers
    all consume it.  Matrices are immutable after construction. *)

type t

val of_coo : Coo.t -> t
(** Sort triplets, fold duplicates (values of equal [(i,j)] are summed)
    and drop entries that cancel to exactly [0.]. *)

val of_dense : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val get : t -> int -> int -> float
(** [get t i j] is entry [(i,j)] ([0.] when absent); binary search within
    the row, [O(log nnz_row)]. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row t i f] calls [f j v] for every stored entry of row [i] in
    increasing column order. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** Iterate all stored entries in row-major order. *)

val row_sum : t -> int -> float

val row_sums : t -> Vec.t

val col_sums : t -> Vec.t

val transpose : t -> t

val scale : float -> t -> t

val add : t -> t -> t
(** Entrywise sum. @raise Invalid_argument on dimension mismatch. *)

val map : (float -> float) -> t -> t
(** Apply [f] to every {e stored} entry (structural zeros are untouched);
    entries mapped to exactly [0.] are dropped. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. @raise Invalid_argument on mismatch. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x a] is [x A] (row vector times matrix). *)

val to_dense : t -> float array array

val approx_equal : ?eps:float -> t -> t -> bool
(** Entrywise approximate equality (structure-independent). *)

val equal : t -> t -> bool
(** Exact structural equality: same dimensions, same stored structure,
    bit-level equal values.  Since construction drops exact zeros,
    matrices with bit-equal entries always have equal structure — this
    is the hash-consing equality for key interning (pair it with
    {!hash}); quantize values first when tolerant key equality is
    wanted. *)

val hash : t -> int
(** Consistent with {!equal}. *)

val identity : int -> t

val pp : Format.formatter -> t -> unit

type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let rows t = t.rows

let cols t = t.cols

let nnz t = Array.length t.values

let of_coo coo =
  let rows = Coo.rows coo and cols = Coo.cols coo in
  let n = Coo.nnz coo in
  (* Collect triplets, sort lexicographically by (row, col), then fold
     duplicates in a single pass. *)
  let tr = Array.make n (0, 0, 0.0) in
  let k = ref 0 in
  Coo.iter
    (fun i j v ->
      tr.(!k) <- (i, j, v);
      incr k)
    coo;
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
    tr;
  let out_i = Mdl_util.Dynarray.create () in
  let out_j = Mdl_util.Dynarray.create () in
  let out_v = Mdl_util.Dynarray.create () in
  let flush i j v =
    if v <> 0.0 then begin
      Mdl_util.Dynarray.push out_i i;
      Mdl_util.Dynarray.push out_j j;
      Mdl_util.Dynarray.push out_v v
    end
  in
  let rec fold k cur_i cur_j acc =
    if k >= n then flush cur_i cur_j acc
    else
      let i, j, v = tr.(k) in
      if i = cur_i && j = cur_j then fold (k + 1) cur_i cur_j (acc +. v)
      else begin
        flush cur_i cur_j acc;
        fold (k + 1) i j v
      end
  in
  if n > 0 then begin
    let i0, j0, v0 = tr.(0) in
    fold 1 i0 j0 v0
  end;
  let m = Mdl_util.Dynarray.length out_v in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  let row_ptr = Array.make (rows + 1) 0 in
  for k = 0 to m - 1 do
    col_idx.(k) <- Mdl_util.Dynarray.get out_j k;
    values.(k) <- Mdl_util.Dynarray.get out_v k;
    let i = Mdl_util.Dynarray.get out_i k in
    row_ptr.(i + 1) <- row_ptr.(i + 1) + 1
  done;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_triplets ~rows ~cols triplets = of_coo (Coo.of_triplets ~rows ~cols triplets)

(* Stable in-place sort of the parallel (cols, vals) segment
   [lo, lo + len) by column.  Ties keep their arrival order, so
   duplicate folding sums values deterministically in emission order.
   Short rows use a dual-array insertion sort; longer ones go through a
   stable index merge sort. *)
let sort_row_segment cols vals lo len =
  if len > 1 then
    if len <= 24 then
      for k = lo + 1 to lo + len - 1 do
        let c = cols.(k) and v = vals.(k) in
        let i = ref (k - 1) in
        while !i >= lo && cols.(!i) > c do
          cols.(!i + 1) <- cols.(!i);
          vals.(!i + 1) <- vals.(!i);
          decr i
        done;
        cols.(!i + 1) <- c;
        vals.(!i + 1) <- v
      done
    else begin
      let idx = Array.init len (fun t -> lo + t) in
      Mdl_util.Sortx.sort_by (fun a b -> compare cols.(a) cols.(b)) idx;
      let sc = Array.map (fun k -> cols.(k)) idx in
      let sv = Array.map (fun k -> vals.(k)) idx in
      Array.blit sc 0 cols lo len;
      Array.blit sv 0 vals lo len
    end

let of_entry_iter ~rows ~cols iter =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_entry_iter: negative dimension";
  (* Pass 1: count the (possibly duplicate) nonzero entries per row and
     turn the counts into row offsets of the padded layout. *)
  let base = Array.make (rows + 1) 0 in
  iter (fun i j v ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_entry_iter: (%d,%d) out of bounds for %dx%d" i j rows
             cols);
      if v <> 0.0 then base.(i + 1) <- base.(i + 1) + 1);
  for i = 0 to rows - 1 do
    base.(i + 1) <- base.(i + 1) + base.(i)
  done;
  let padded = base.(rows) in
  let col_idx = Array.make padded 0 in
  let values = Array.make padded 0.0 in
  (* Pass 2: fill each row's slots in emission order. *)
  let next = Array.sub base 0 rows in
  iter (fun i j v ->
      if v <> 0.0 then begin
        let k = next.(i) in
        if k >= base.(i + 1) then
          invalid_arg "Csr.of_entry_iter: iteration is not repeatable";
        col_idx.(k) <- j;
        values.(k) <- v;
        next.(i) <- k + 1
      end);
  for i = 0 to rows - 1 do
    if next.(i) <> base.(i + 1) then
      invalid_arg "Csr.of_entry_iter: iteration is not repeatable"
  done;
  (* Order each row's columns, fold duplicates, drop entries that cancel
     to exactly 0., compacting in place: the write cursor never
     overtakes the read cursor because earlier rows only shrink. *)
  let row_ptr = Array.make (rows + 1) 0 in
  let w = ref 0 in
  for i = 0 to rows - 1 do
    let lo = base.(i) and hi = base.(i + 1) in
    sort_row_segment col_idx values lo (hi - lo);
    let r = ref lo in
    while !r < hi do
      let c = col_idx.(!r) in
      let acc = ref values.(!r) in
      incr r;
      while !r < hi && col_idx.(!r) = c do
        acc := !acc +. values.(!r);
        incr r
      done;
      if !acc <> 0.0 then begin
        col_idx.(!w) <- c;
        values.(!w) <- !acc;
        incr w
      end
    done;
    row_ptr.(i + 1) <- !w
  done;
  let m = !w in
  {
    rows;
    cols;
    row_ptr;
    col_idx = (if m = padded then col_idx else Array.sub col_idx 0 m);
    values = (if m = padded then values else Array.sub values 0 m);
  }

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let coo = Coo.create ~rows ~cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then invalid_arg "Csr.of_dense: ragged input";
      Array.iteri (fun j v -> if v <> 0.0 then Coo.add coo i j v) row)
    d;
  of_coo coo

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let iter f t =
  for i = 0 to t.rows - 1 do
    iter_row t i (fun j v -> f i j v)
  done

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Csr.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let row_sum t i =
  let acc = ref 0.0 in
  iter_row t i (fun _ v -> acc := !acc +. v);
  !acc

let row_sums t = Array.init t.rows (row_sum t)

let col_sums t =
  let sums = Array.make t.cols 0.0 in
  iter (fun _ j v -> sums.(j) <- sums.(j) +. v) t;
  sums

let to_coo t =
  let coo = Coo.create ~rows:t.rows ~cols:t.cols in
  iter (fun i j v -> Coo.add coo i j v) t;
  coo

let transpose t =
  (* Count-then-fill: walking the rows in order drops each entry into
     its column bucket with source rows already increasing, so the
     transposed rows come out sorted with no extra sort. *)
  let row_ptr = Array.make (t.cols + 1) 0 in
  Array.iter (fun j -> row_ptr.(j + 1) <- row_ptr.(j + 1) + 1) t.col_idx;
  for j = 0 to t.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j + 1) + row_ptr.(j)
  done;
  let m = nnz t in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  let next = Array.sub row_ptr 0 t.cols in
  iter
    (fun i j v ->
      let k = next.(j) in
      col_idx.(k) <- i;
      values.(k) <- v;
      next.(j) <- k + 1)
    t;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

let permute t ~perm =
  if t.rows <> t.cols then invalid_arg "Csr.permute: matrix is not square";
  let n = t.rows in
  if Array.length perm <> n then invalid_arg "Csr.permute: permutation length mismatch";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun k o ->
      if o < 0 || o >= n || inv.(o) >= 0 then
        invalid_arg "Csr.permute: not a permutation";
      inv.(o) <- k)
    perm;
  let row_ptr = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    let o = perm.(k) in
    row_ptr.(k + 1) <- row_ptr.(k) + (t.row_ptr.(o + 1) - t.row_ptr.(o))
  done;
  let m = nnz t in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  for k = 0 to n - 1 do
    let w = ref row_ptr.(k) in
    iter_row t perm.(k) (fun j v ->
        col_idx.(!w) <- inv.(j);
        values.(!w) <- v;
        incr w);
    sort_row_segment col_idx values row_ptr.(k) (row_ptr.(k + 1) - row_ptr.(k))
  done;
  { rows = n; cols = n; row_ptr; col_idx; values }

let diagonal t =
  if t.rows <> t.cols then invalid_arg "Csr.diagonal: matrix is not square";
  Array.init t.rows (fun i ->
      let d = ref 0.0 in
      iter_row t i (fun j v -> if j = i then d := v);
      !d)

let scale alpha t =
  if alpha = 0.0 then of_coo (Coo.create ~rows:t.rows ~cols:t.cols)
  else { t with values = Array.map (fun v -> alpha *. v) t.values }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Csr.add: dimension mismatch";
  let coo = to_coo a in
  iter (fun i j v -> Coo.add coo i j v) b;
  of_coo coo

let map f t =
  let coo = Coo.create ~rows:t.rows ~cols:t.cols in
  iter (fun i j v -> Coo.add coo i j (f v)) t;
  of_coo coo

let mul_vec t x =
  if Array.length x <> t.cols then invalid_arg "Csr.mul_vec: dimension mismatch";
  let y = Array.make t.rows 0.0 in
  for i = 0 to t.rows - 1 do
    let acc = ref 0.0 in
    iter_row t i (fun j v -> acc := !acc +. (v *. x.(j)));
    y.(i) <- !acc
  done;
  y

let vec_mul x t =
  if Array.length x <> t.rows then invalid_arg "Csr.vec_mul: dimension mismatch";
  let y = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then iter_row t i (fun j v -> y.(j) <- y.(j) +. (xi *. v))
  done;
  y

let to_dense t =
  let d = Array.make_matrix t.rows t.cols 0.0 in
  iter (fun i j v -> d.(i).(j) <- v) t;
  d

let approx_equal ?eps a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  iter (fun i j v -> if not (Mdl_util.Floatx.approx_eq ?eps v (get b i j)) then ok := false) a;
  iter (fun i j v -> if not (Mdl_util.Floatx.approx_eq ?eps v (get a i j)) then ok := false) b;
  !ok

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && a.row_ptr = b.row_ptr && a.col_idx = b.col_idx
  &&
  let n = Array.length a.values in
  let rec loop k =
    k >= n
    || Int64.bits_of_float a.values.(k) = Int64.bits_of_float b.values.(k) && loop (k + 1)
  in
  loop 0

let hash t =
  let h = ref (Mdl_util.Hashx.combine t.rows t.cols) in
  iter
    (fun i j v ->
      h := Mdl_util.Hashx.combine (Mdl_util.Hashx.combine (Mdl_util.Hashx.combine !h i) j) (Mdl_util.Hashx.float v))
    t;
  !h

let identity n = of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0)))

let pp ppf t =
  Format.fprintf ppf "@[<v>%dx%d, %d nnz" t.rows t.cols (nnz t);
  iter (fun i j v -> Format.fprintf ppf "@,(%d,%d) = %g" i j v) t;
  Format.fprintf ppf "@]"

type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let rows t = t.rows

let cols t = t.cols

let nnz t = Array.length t.values

let of_coo coo =
  let rows = Coo.rows coo and cols = Coo.cols coo in
  let n = Coo.nnz coo in
  (* Collect triplets, sort lexicographically by (row, col), then fold
     duplicates in a single pass. *)
  let tr = Array.make n (0, 0, 0.0) in
  let k = ref 0 in
  Coo.iter
    (fun i j v ->
      tr.(!k) <- (i, j, v);
      incr k)
    coo;
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
    tr;
  let out_i = Mdl_util.Dynarray.create () in
  let out_j = Mdl_util.Dynarray.create () in
  let out_v = Mdl_util.Dynarray.create () in
  let flush i j v =
    if v <> 0.0 then begin
      Mdl_util.Dynarray.push out_i i;
      Mdl_util.Dynarray.push out_j j;
      Mdl_util.Dynarray.push out_v v
    end
  in
  let rec fold k cur_i cur_j acc =
    if k >= n then flush cur_i cur_j acc
    else
      let i, j, v = tr.(k) in
      if i = cur_i && j = cur_j then fold (k + 1) cur_i cur_j (acc +. v)
      else begin
        flush cur_i cur_j acc;
        fold (k + 1) i j v
      end
  in
  if n > 0 then begin
    let i0, j0, v0 = tr.(0) in
    fold 1 i0 j0 v0
  end;
  let m = Mdl_util.Dynarray.length out_v in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  let row_ptr = Array.make (rows + 1) 0 in
  for k = 0 to m - 1 do
    col_idx.(k) <- Mdl_util.Dynarray.get out_j k;
    values.(k) <- Mdl_util.Dynarray.get out_v k;
    let i = Mdl_util.Dynarray.get out_i k in
    row_ptr.(i + 1) <- row_ptr.(i + 1) + 1
  done;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_triplets ~rows ~cols triplets = of_coo (Coo.of_triplets ~rows ~cols triplets)

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let coo = Coo.create ~rows ~cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then invalid_arg "Csr.of_dense: ragged input";
      Array.iteri (fun j v -> if v <> 0.0 then Coo.add coo i j v) row)
    d;
  of_coo coo

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let iter f t =
  for i = 0 to t.rows - 1 do
    iter_row t i (fun j v -> f i j v)
  done

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Csr.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let row_sum t i =
  let acc = ref 0.0 in
  iter_row t i (fun _ v -> acc := !acc +. v);
  !acc

let row_sums t = Array.init t.rows (row_sum t)

let col_sums t =
  let sums = Array.make t.cols 0.0 in
  iter (fun _ j v -> sums.(j) <- sums.(j) +. v) t;
  sums

let to_coo t =
  let coo = Coo.create ~rows:t.rows ~cols:t.cols in
  iter (fun i j v -> Coo.add coo i j v) t;
  coo

let transpose t =
  let coo = Coo.create ~rows:t.cols ~cols:t.rows in
  iter (fun i j v -> Coo.add coo j i v) t;
  of_coo coo

let scale alpha t =
  if alpha = 0.0 then of_coo (Coo.create ~rows:t.rows ~cols:t.cols)
  else { t with values = Array.map (fun v -> alpha *. v) t.values }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Csr.add: dimension mismatch";
  let coo = to_coo a in
  iter (fun i j v -> Coo.add coo i j v) b;
  of_coo coo

let map f t =
  let coo = Coo.create ~rows:t.rows ~cols:t.cols in
  iter (fun i j v -> Coo.add coo i j (f v)) t;
  of_coo coo

let mul_vec t x =
  if Array.length x <> t.cols then invalid_arg "Csr.mul_vec: dimension mismatch";
  let y = Array.make t.rows 0.0 in
  for i = 0 to t.rows - 1 do
    let acc = ref 0.0 in
    iter_row t i (fun j v -> acc := !acc +. (v *. x.(j)));
    y.(i) <- !acc
  done;
  y

let vec_mul x t =
  if Array.length x <> t.rows then invalid_arg "Csr.vec_mul: dimension mismatch";
  let y = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then iter_row t i (fun j v -> y.(j) <- y.(j) +. (xi *. v))
  done;
  y

let to_dense t =
  let d = Array.make_matrix t.rows t.cols 0.0 in
  iter (fun i j v -> d.(i).(j) <- v) t;
  d

let approx_equal ?eps a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  iter (fun i j v -> if not (Mdl_util.Floatx.approx_eq ?eps v (get b i j)) then ok := false) a;
  iter (fun i j v -> if not (Mdl_util.Floatx.approx_eq ?eps v (get a i j)) then ok := false) b;
  !ok

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && a.row_ptr = b.row_ptr && a.col_idx = b.col_idx
  &&
  let n = Array.length a.values in
  let rec loop k =
    k >= n
    || Int64.bits_of_float a.values.(k) = Int64.bits_of_float b.values.(k) && loop (k + 1)
  in
  loop 0

let hash t =
  let h = ref (Mdl_util.Hashx.combine t.rows t.cols) in
  iter
    (fun i j v ->
      h := Mdl_util.Hashx.combine (Mdl_util.Hashx.combine (Mdl_util.Hashx.combine !h i) j) (Mdl_util.Hashx.float v))
    t;
  !h

let identity n = of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0)))

let pp ppf t =
  Format.fprintf ppf "@[<v>%dx%d, %d nnz" t.rows t.cols (nnz t);
  iter (fun i j v -> Format.fprintf ppf "@,(%d,%d) = %g" i j v) t;
  Format.fprintf ppf "@]"

(* Fill-reducing orderings of sparse matrices.  Only the structure of
   the matrix matters here; values are ignored. *)

(* Symmetrised adjacency of a square matrix as a compact CSR pattern:
   neighbours of [i] are [adj.(off.(i)) .. adj.(off.(i+1) - 1)], sorted,
   deduplicated, self-loops dropped. *)
let adjacency m =
  let n = Csr.rows m in
  let cnt = Array.make (n + 1) 0 in
  Csr.iter
    (fun i j _ ->
      if i <> j then begin
        cnt.(i + 1) <- cnt.(i + 1) + 1;
        cnt.(j + 1) <- cnt.(j + 1) + 1
      end)
    m;
  for i = 0 to n - 1 do
    cnt.(i + 1) <- cnt.(i + 1) + cnt.(i)
  done;
  let adj = Array.make cnt.(n) 0 in
  let next = Array.sub cnt 0 n in
  let push i j =
    adj.(next.(i)) <- j;
    next.(i) <- next.(i) + 1
  in
  Csr.iter
    (fun i j _ ->
      if i <> j then begin
        push i j;
        push j i
      end)
    m;
  (* Sort each neighbour list and squeeze out duplicates in place; the
     per-vertex offsets are rebuilt over the compacted array. *)
  let off = Array.make (n + 1) 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let lo = cnt.(i) and hi = cnt.(i + 1) in
    let seg = Array.sub adj lo (hi - lo) in
    Array.sort compare seg;
    Array.iteri
      (fun k j ->
        if k = 0 || j <> seg.(k - 1) then begin
          adj.(!w) <- j;
          incr w
        end)
      seg;
    off.(i + 1) <- !w
  done;
  (off, Array.sub adj 0 !w)

let rcm m =
  if Csr.rows m <> Csr.cols m then invalid_arg "Ordering.rcm: matrix is not square";
  let n = Csr.rows m in
  let off, adj = adjacency m in
  let deg i = off.(i + 1) - off.(i) in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let enqueued = Array.make n false in
  let queue = Queue.create () in
  (* Neighbours of a visited vertex join the queue lowest-degree first
     (George & Liu); scratch holds one vertex's unvisited neighbours. *)
  let visit u =
    order.(!pos) <- u;
    incr pos;
    let nbrs = ref [] in
    for k = off.(u) to off.(u + 1) - 1 do
      let v = adj.(k) in
      if not enqueued.(v) then begin
        enqueued.(v) <- true;
        nbrs := v :: !nbrs
      end
    done;
    List.iter
      (fun v -> Queue.add v queue)
      (List.sort (fun a b -> if deg a <> deg b then compare (deg a) (deg b) else compare a b)
         !nbrs)
  in
  (* One BFS per connected component, rooted at the unvisited vertex of
     minimum degree (a cheap stand-in for a pseudo-peripheral root). *)
  for start = 0 to n - 1 do
    ignore start;
    if !pos < n && Queue.is_empty queue then begin
      let root = ref (-1) in
      for v = n - 1 downto 0 do
        if not enqueued.(v) && (!root < 0 || deg v <= deg !root) then root := v
      done;
      enqueued.(!root) <- true;
      Queue.add !root queue
    end;
    if not (Queue.is_empty queue) then visit (Queue.pop queue)
  done;
  (* Reverse Cuthill–McKee: flip the BFS order. *)
  Array.init n (fun k -> order.(n - 1 - k))

let inverse perm =
  let n = Array.length perm in
  let inv = Array.make n (-1) in
  Array.iteri
    (fun k o ->
      if o < 0 || o >= n || inv.(o) >= 0 then
        invalid_arg "Ordering.inverse: not a permutation";
      inv.(o) <- k)
    perm;
  inv

let bandwidth m =
  let b = ref 0 in
  Csr.iter (fun i j _ -> b := max !b (abs (i - j))) m;
  !b

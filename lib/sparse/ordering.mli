(** Fill-reducing / bandwidth-reducing orderings of sparse matrices.

    The iterative solvers sweep the lumped chain's generator row by row;
    a reverse Cuthill–McKee relabelling clusters each state's neighbours
    around it, shrinking the matrix bandwidth so Gauss–Seidel sweeps and
    Krylov matrix products walk nearly-contiguous memory.  Only the
    sparsity {e structure} is consulted; values are ignored. *)

val rcm : Csr.t -> int array
(** [rcm m] is the reverse Cuthill–McKee ordering of the square matrix
    [m], computed on the symmetrised pattern of [m] (self-loops
    ignored): a breadth-first traversal per connected component, rooted
    at a minimum-degree vertex, neighbours enqueued lowest-degree first,
    then reversed.  Returns a permutation [perm] with [perm.(k)] the
    original index of the state placed at position [k]; feed it to
    {!Csr.permute} and map vectors with {!Vec.gather} / {!Vec.scatter}.
    @raise Invalid_argument if [m] is not square. *)

val inverse : int array -> int array
(** [inverse perm] is the inverse permutation ([inverse perm].(perm.(k))
    [= k]).  @raise Invalid_argument if [perm] is not a permutation. *)

val bandwidth : Csr.t -> int
(** [bandwidth m] is [max |i - j|] over the stored entries of [m]
    ([0] for an empty or diagonal matrix) — the quantity {!rcm} tries to
    reduce. *)

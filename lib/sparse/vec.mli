(** Dense real vectors ([float array]) and the handful of BLAS-1 style
    operations the iterative solvers need. *)

type t = float array

val make : int -> float -> t

val copy : t -> t

val fill : t -> float -> unit

val dot : t -> t -> float
(** @raise Invalid_argument on dimension mismatch. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] performs [y := alpha * x + y] in place. *)

val scale : float -> t -> unit
(** [scale alpha x] performs [x := alpha * x] in place. *)

val sum : t -> float
(** Compensated sum of all entries. *)

val normalize1 : t -> unit
(** Scale so entries sum to 1. @raise Invalid_argument if the sum is not
    positive. *)

val norm_inf : t -> float

val diff_inf : t -> t -> float
(** Max absolute componentwise difference.
    @raise Invalid_argument on dimension mismatch. *)

val gather : t -> int array -> t
(** [gather x perm] is the reordered vector [y] with
    [y.(k) = x.(perm.(k))] — pull [x] into the ordering described by
    [perm] (where [perm.(k)] is the original index of the element now at
    position [k], as returned by {!Ordering.rcm}).  Inverse of
    {!scatter} for a permutation.
    @raise Invalid_argument on length mismatch. *)

val scatter : t -> int array -> t
(** [scatter y perm] is the vector [x] with [x.(perm.(k)) = y.(k)] —
    push a vector computed in [perm]-order back to the original
    indexing.  [scatter (gather x perm) perm = x] when [perm] is a
    permutation.
    @raise Invalid_argument on length mismatch. *)

val approx_equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

type t = float array

let make n x = Array.make n x

let copy = Array.copy

let fill t x = Array.fill t 0 (Array.length t) x

let check_dims a b fn =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" fn (Array.length a)
         (Array.length b))

let dot a b =
  check_dims a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let axpy ~alpha x y =
  check_dims x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let scale alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let sum t = Mdl_util.Floatx.sum_kahan t

let normalize1 t =
  let s = sum t in
  if s <= 0.0 then invalid_arg "Vec.normalize1: sum is not positive";
  scale (1.0 /. s) t

let norm_inf t = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 t

let diff_inf a b =
  check_dims a b "diff_inf";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(i) -. b.(i)))
  done;
  !acc

let check_perm x perm fn =
  if Array.length perm <> Array.length x then
    invalid_arg
      (Printf.sprintf "Vec.%s: permutation length mismatch (%d vs %d)" fn
         (Array.length perm) (Array.length x))

let gather x perm =
  check_perm x perm "gather";
  Array.map (fun i -> x.(i)) perm

let scatter y perm =
  check_perm y perm "scatter";
  let out = Array.make (Array.length y) 0.0 in
  Array.iteri (fun k i -> out.(i) <- y.(k)) perm;
  out

let approx_equal ?eps a b =
  Array.length a = Array.length b
  &&
  let rec loop i =
    i >= Array.length a || (Mdl_util.Floatx.approx_eq ?eps a.(i) b.(i) && loop (i + 1))
  in
  loop 0

let pp ppf t =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    t

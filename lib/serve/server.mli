(** The [lumpd] daemon engine: a process-long lumping service over the
    {!Protocol} wire format.

    One {!t} owns the process-wide model registry.  Every submitted
    model keeps its state space, reward structures and — decisively —
    its {!Mdl_core.Compositional.sweep} engine warm across requests and
    connections: the engine's persistent {!Mdl_core.Key_cache} store
    and interned-key table survive between clients, so a second
    client's sweep over a model the daemon has already seen replays
    splitter rows from the content-keyed store ([cross_bind_hits > 0])
    instead of re-interning anything.

    {b Concurrency.}  One listener thread accepts connections; each
    connection gets a thread that reads frames strictly in order.
    Execution slots are bounded by [max_inflight]; requests beyond that
    wait in a bounded queue of [queue_capacity] waiters and are
    rejected with [Queue_full] past it.  Deadlines ([deadline_ms] per
    request, [default_deadline_ms] otherwise) are measured from frame
    receipt on the monotonic clock and enforced while queued and at
    execution start — an expired request frees its slot and answers
    [Deadline_exceeded].

    {b Shutdown.}  {!request_drain} (wired to SIGTERM by [lumpd], and
    to the [shutdown] verb) stops accepting connections, lets in-flight
    requests finish, answers late frames with [Shutting_down], and then
    closes.  {!wait} joins everything.

    {b Observability.}  When {!Mdl_obs.Metrics} is enabled the server
    maintains [serve.*] counters, gauges and latency histograms next to
    the engine's [lump.*]/[key_cache.*] families, and serves them all
    in Prometheus text format from [GET /metrics] on [metrics_port].
    When {!Mdl_obs.Trace} is recording, each request body runs under a
    [serve.<verb>] span; tracing is single-domain, so [lumpd] forces
    [max_inflight = 1] in that configuration. *)

type address =
  | Unix_socket of string  (** filesystem path; unlinked on close *)
  | Tcp of string * int  (** bind host and port; port [0] = ephemeral *)

type config = {
  listen : address;
  metrics_port : int option;
      (** serve [GET /metrics] (Prometheus text format) on this
          loopback TCP port; [Some 0] picks an ephemeral port
          (see {!metrics_port}) *)
  max_inflight : int;  (** execution slots (>= 1) *)
  queue_capacity : int;  (** waiters beyond the slots before [Queue_full] *)
  default_deadline_ms : int option;
      (** deadline for requests that carry none; [None] = unlimited *)
  max_frame : int;  (** per-connection frame-size ceiling, bytes *)
  access_log : string option;
      (** append one structured JSON line per request to this file:
          timestamp, server request id, client id, verb, model,
          queue/execution nanoseconds, status, response bytes *)
}

val default_config : listen:address -> config
(** [max_inflight = 1], [queue_capacity = 32], no default deadline, no
    metrics port, no access log, [max_frame = Protocol.max_frame_default]. *)

type t

val start : config -> t
(** Bind the sockets, spawn the listener threads, and return.  Enables
    {!Mdl_obs.Metrics}.
    @raise Invalid_argument on a nonsensical config ([max_inflight < 1],
    negative queue).
    @raise Unix.Unix_error when binding fails (path in use, ...). *)

val address : t -> address
(** The bound address — with the real port when the config said [0]. *)

val metrics_port : t -> int option
(** The bound metrics port, when configured. *)

val request_drain : t -> unit
(** Begin graceful shutdown (idempotent): stop accepting, finish
    in-flight work, close.  Returns immediately; {!wait} blocks. *)

val draining : t -> bool

val wait : t -> unit
(** Block until the server has fully drained and every thread has
    exited.  Without {!request_drain} (or a client [shutdown]) this
    blocks for the daemon's lifetime. *)

val stop : t -> unit
(** {!request_drain} then {!wait}. *)

(** {2 In-process execution}

    The request handler, exposed directly so tests and the bench can
    drive the engine without sockets — the socket path pins its
    responses bit-identical to this one. *)

val handle : t -> Protocol.request -> Protocol.response
(** Execute one request against the registry, honouring slots, queue
    bounds and deadlines exactly as a socket request would.  A
    [Shutdown] request acknowledges and triggers {!request_drain}. *)

(** A minimal JSON tree, parser and printer for the [lumpd] wire
    protocol.

    The repository deliberately has no JSON dependency — every producer
    so far ({!Mdl_obs.Trace.export_json}, {!Mdl_obs.Metrics.to_json},
    the bench writer) hand-rolls its output.  The service protocol also
    needs to {e read} JSON, so this module adds the smallest complete
    codec: a strict recursive-descent parser over RFC 8259 documents
    and a printer whose float rendering ([%.17g]) round-trips every
    finite [float] bit-exactly — which is what lets the end-to-end
    tests pin wire results {e equal}, not approximately equal, to
    in-process ones.

    Numbers parse as {!constructor-Int} when they are integral, fit in
    an OCaml [int] and were written without ['.'/'e'] notation, and as
    {!constructor-Float} otherwise; [1] and [1.0] therefore compare
    unequal as trees, matching the protocol's separation of count and
    time fields.  Object member order is preserved (the printer emits
    in construction order); duplicate keys are accepted by the parser
    with last-one-wins lookup through {!member}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
      (** Members in document order; {!member} looks up by key. *)

exception Parse_error of string
(** Raised by {!parse} on malformed input, with a position-annotated
    message (["offset 12: expected ':'"]). *)

val parse : string -> t
(** Parse one complete JSON document.  Leading and trailing JSON
    whitespace is allowed; any other trailing bytes raise.
    @raise Parse_error on malformed input, unterminated strings or
    documents nested deeper than 512 levels. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error message as a [result] — the shape the
    protocol decoder wants. *)

val to_buffer : Buffer.t -> t -> unit
(** Append the document, compactly (no insignificant whitespace). *)

val to_string : t -> string
(** {!to_buffer} into a fresh string. *)

val member : string -> t -> t option
(** [member k (Obj ms)] is the value of the {e last} member named [k],
    or [None]; [None] on non-objects. *)

val equal : t -> t -> bool
(** Structural equality ([Float] compared by [Float.equal], so [nan]
    equals itself and [0.] differs from [-0.] — exactly the equality
    the codec round-trip property needs). *)

(** A minimal synchronous [lumpd] client: one connection, one
    outstanding request at a time — what the end-to-end tests, the
    bench's warm-vs-cold race and scripting against the daemon need.
    Anything fancier should speak {!Protocol} directly. *)

type t

val connect : Server.address -> t
(** Connect to a daemon.
    @raise Unix.Unix_error when the socket cannot be reached. *)

val request :
  ?timeout_s:float -> t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response.  [timeout_s] (default
    30 s) bounds the wait for the response frame; on timeout, transport
    error or undecodable response the connection is no longer usable —
    {!close} it.  Protocol-level errors arrive as [Ok] responses with
    [resp_body = Error _]. *)

val close : t -> unit
(** Close the connection (idempotent). *)

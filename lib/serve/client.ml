module P = Protocol

type t = {
  fd : Unix.file_descr;
  reader : P.reader;
  mutable closed : bool;
}

let connect (addr : Server.address) =
  let fd =
    match addr with
    | Server.Unix_socket path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Server.Tcp (host, port) ->
        let a =
          try Unix.inet_addr_of_string host
          with Failure _ -> Unix.inet_addr_loopback
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (a, port));
        fd
  in
  { fd; reader = P.reader fd; closed = false }

let request ?(timeout_s = 30.0) c rq =
  if c.closed then Error "connection is closed"
  else
    match
      P.write_frame c.fd (Json.to_string (P.request_to_json rq))
    with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
    | () -> (
        let deadline = Unix.gettimeofday () +. timeout_s in
        let stop () = Unix.gettimeofday () > deadline in
        match P.read_frame ~stop c.reader with
        | Ok payload -> P.response_of_string payload
        | Error P.Stopped -> Error "timed out waiting for the response"
        | Error P.Eof -> Error "server closed the connection"
        | Error P.Truncated -> Error "server closed the connection mid-frame"
        | Error (P.Oversized n) -> Error (Printf.sprintf "oversized response (%d bytes)" n)
        | Error (P.Malformed msg) -> Error (Printf.sprintf "malformed frame: %s" msg))

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

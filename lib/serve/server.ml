module Metrics = Mdl_obs.Metrics
module Trace = Mdl_obs.Trace
module Timer = Mdl_util.Timer
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Key_cache = Mdl_core.Key_cache
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module State_lumping = Mdl_lumping.State_lumping
module Model = Mdl_san.Model
module P = Protocol

let log = Logs.Src.create "lumpd" ~doc:"lumping service"

module Log = (val Logs.src_log log)

(* ---- metrics ---- *)

let m_requests = Metrics.counter "serve.requests"
let m_connections = Metrics.counter "serve.connections"
let m_protocol_errors = Metrics.counter "serve.protocol_errors"
let m_rejected_queue_full = Metrics.counter "serve.rejected_queue_full"
let m_rejected_deadline = Metrics.counter "serve.rejected_deadline"
let m_scrapes = Metrics.counter "serve.metrics_scrapes"
let m_inflight = Metrics.gauge "serve.inflight"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_models = Metrics.gauge "serve.models"
let m_store_rows = Metrics.gauge "serve.store_rows"
let m_uptime = Metrics.gauge "serve.uptime_seconds"

(* [serve.request_seconds] covers the slotted verbs only: stats and
   shutdown bypass the execution slots, so folding their near-zero
   latencies into the same histogram would drag the quantiles of the
   actual work down.  They get their own family instead. *)
let m_latency = Metrics.histogram "serve.request_seconds"
let m_control_latency = Metrics.histogram "serve.control_seconds"

(* Per-verb telemetry, pre-registered for every verb so the families
   exist (at zero) in the first scrape rather than popping into being
   when a verb is first used.  [queue_seconds] is time spent acquiring
   an execution slot; [exec_seconds] is time actually executing. *)
type verb_metrics = {
  vm_requests : Metrics.counter;
  vm_errors : Metrics.counter;
  vm_queue : Metrics.histogram;
  vm_exec : Metrics.histogram;
}

let verb_names =
  [ "submit-model"; "lump"; "sweep"; "solve"; "stats"; "ping"; "shutdown" ]

let verb_families =
  List.map
    (fun v ->
      ( v,
        {
          vm_requests = Metrics.counter (Printf.sprintf "serve.verb.%s.requests" v);
          vm_errors = Metrics.counter (Printf.sprintf "serve.verb.%s.errors" v);
          vm_queue = Metrics.histogram (Printf.sprintf "serve.verb.%s.queue_seconds" v);
          vm_exec = Metrics.histogram (Printf.sprintf "serve.verb.%s.exec_seconds" v);
        } ))
    verb_names

let verb_metrics v = List.assoc v verb_families

(* ---- configuration ---- *)

type address = Unix_socket of string | Tcp of string * int

type config = {
  listen : address;
  metrics_port : int option;
  max_inflight : int;
  queue_capacity : int;
  default_deadline_ms : int option;
  max_frame : int;
  access_log : string option;
}

let default_config ~listen =
  {
    listen;
    metrics_port = None;
    max_inflight = 1;
    queue_capacity = 32;
    default_deadline_ms = None;
    max_frame = P.max_frame_default;
    access_log = None;
  }

(* ---- model registry ---- *)

type instance = {
  md : Md.t;
  statespace : Statespace.t;
  rewards : (string * Decomposed.t) list;
  initial : Decomposed.t;
}

type model = {
  mo_name : string;
  mo_family : P.family;
  mo_params : (string * int) list;  (* fully resolved, sorted: the identity *)
  mo_inst : instance;
  mo_lock : Mutex.t;
  mutable mo_sweep : Compositional.sweep option;
  mutable mo_points : int;
  (* Lumped reachable-state counts keyed by the concatenated canonical
     class assignment — the same key the sweep engine's rebuild memo
     uses.  The count is a pure function of (statespace, partitions),
     but computing it lumps the full statespace: without this memo
     every repeated point re-pays an O(states) walk just to report its
     size, drowning the warm-engine saving on large models. *)
  mo_sizes : (int array, int) Hashtbl.t;
}

(* Resolve the wire-level (family, size, params) to a full parameter
   valuation; the canonical sorted list is the model's identity for
   duplicate detection.  Unknown parameter names are rejected — a
   client typo must not silently build the default model. *)
let resolve_params family size params =
  let main, extras =
    match family with
    | P.Tandem ->
        (("jobs", 1), [ ("hyper_dim", 3); ("msmq_servers", 3); ("msmq_queues", 4) ])
    | P.Polling -> (("customers", 4), [])
    | P.Workstations -> (("stations", 4), [])
    | P.Multitier -> (("clients", 3), [])
    | P.Kanban -> (("cards", 2), [])
  in
  let known = main :: extras in
  match
    List.find_opt (fun (k, _) -> not (List.mem_assoc k known)) params
  with
  | Some (k, _) ->
      Error
        (Printf.sprintf "unknown parameter %S for family %s (known: %s)" k
           (P.family_string family)
           (String.concat ", " (List.map fst known)))
  | None ->
      if size <> None && List.mem_assoc (fst main) params then
        Error
          (Printf.sprintf "parameter %S conflicts with \"size\"" (fst main))
      else
        let value (k, default) =
          match List.assoc_opt k params with
          | Some v -> (k, v)
          | None ->
              if k = fst main then (k, Option.value size ~default)
              else (k, default)
        in
        let resolved = List.map value known in
        if List.exists (fun (_, v) -> v < 1) resolved then
          Error "all model parameters must be >= 1"
        else
          Ok (List.sort (fun (a, _) (b, _) -> compare a b) resolved)

let build_instance family resolved =
  let p k = List.assoc k resolved in
  match family with
  | P.Tandem ->
      let jobs = p "jobs" in
      let prm =
        {
          (Mdl_models.Tandem.default ~jobs) with
          hyper_dim = p "hyper_dim";
          msmq_servers = p "msmq_servers";
          msmq_queues = p "msmq_queues";
        }
      in
      let b = Mdl_models.Tandem.build prm in
      {
        md = b.Mdl_models.Tandem.md;
        statespace = b.Mdl_models.Tandem.exploration.Model.statespace;
        rewards =
          [
            ("availability", b.Mdl_models.Tandem.rewards_availability);
            ("msmq jobs", b.Mdl_models.Tandem.rewards_msmq_jobs);
          ];
        initial = b.Mdl_models.Tandem.initial;
      }
  | P.Polling ->
      let b =
        Mdl_models.Polling.build (Mdl_models.Polling.default ~customers:(p "customers"))
      in
      {
        md = b.Mdl_models.Polling.md;
        statespace = b.Mdl_models.Polling.exploration.Model.statespace;
        rewards =
          [
            ("busy servers", b.Mdl_models.Polling.rewards_busy_servers);
            ("queued jobs", b.Mdl_models.Polling.rewards_queued_jobs);
          ];
        initial = b.Mdl_models.Polling.initial;
      }
  | P.Workstations ->
      let b =
        Mdl_models.Workstations.build
          (Mdl_models.Workstations.default ~stations:(p "stations"))
      in
      {
        md = b.Mdl_models.Workstations.md;
        statespace = b.Mdl_models.Workstations.exploration.Model.statespace;
        rewards = [ ("operational", b.Mdl_models.Workstations.rewards_operational) ];
        initial = b.Mdl_models.Workstations.initial;
      }
  | P.Multitier ->
      let b =
        Mdl_models.Multitier.build (Mdl_models.Multitier.default ~clients:(p "clients"))
      in
      {
        md = b.Mdl_models.Multitier.md;
        statespace = b.Mdl_models.Multitier.exploration.Model.statespace;
        rewards =
          [
            ("thinking clients", b.Mdl_models.Multitier.rewards_thinking);
            ("db fast", b.Mdl_models.Multitier.rewards_db_fast);
          ];
        initial = b.Mdl_models.Multitier.initial;
      }
  | P.Kanban ->
      let b = Mdl_models.Kanban.build (Mdl_models.Kanban.default ~cards:(p "cards")) in
      {
        md = b.Mdl_models.Kanban.md;
        statespace = b.Mdl_models.Kanban.exploration.Model.statespace;
        rewards = [ ("parts in system", b.Mdl_models.Kanban.rewards_in_system) ];
        initial = b.Mdl_models.Kanban.initial;
      }

(* ---- server state ---- *)

type t = {
  config : config;
  mu : Mutex.t;
  models : (string, model) Hashtbl.t;
  mutable inflight : int;
  mutable waiting : int;
  mutable draining : bool;
  mutable requests : int;
  mutable next_req : int;  (* server-side request-id counter; guarded by [mu] *)
  verb_counts : (string, int * int) Hashtbl.t;
      (* verb -> (requests, errors), for the stats verb; guarded by [mu] *)
  mutable rejected_queue_full : int;
  mutable rejected_deadline : int;
  mutable protocol_errors : int;
  access_out : out_channel option;  (* structured access log, one JSON line per request *)
  access_mu : Mutex.t;
  started_wall : float;
  (* socket machinery; absent when driven purely in-process *)
  mutable listen_fd : Unix.file_descr option;
  mutable bound : address;
  mutable metrics_fd : Unix.file_descr option;
  mutable bound_metrics_port : int option;
  mutable threads : Thread.t list;  (* listeners; guarded by [mu] *)
  mutable conns : Thread.t list;  (* live connection threads; guarded by [mu] *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let draining t = t.draining

(* ---- slots and deadlines ---- *)

let now_s () = Int64.to_float (Timer.now_ns ()) /. 1e9

let deadline_of t received_ns ms =
  match (ms, t.config.default_deadline_ms) with
  | None, None -> None
  | Some ms, _ | None, Some ms ->
      Some (Int64.add received_ns (Int64.of_int (ms * 1_000_000)))

let expired = function
  | None -> false
  | Some d -> Int64.compare (Timer.now_ns ()) d > 0

(* Acquire one of the [max_inflight] execution slots, waiting in the
   bounded queue.  The stdlib has no [Condition.timedwait], so waiters
   poll under short sleeps — 2 ms, coarse enough to be free next to
   any lumping work and fine enough for protocol-level deadlines. *)
let acquire_slot t ~deadline =
  let outcome =
    locked t (fun () ->
        if t.inflight < t.config.max_inflight then begin
          t.inflight <- t.inflight + 1;
          Metrics.set m_inflight (float_of_int t.inflight);
          `Go
        end
        else if t.waiting >= t.config.queue_capacity then `Full
        else begin
          t.waiting <- t.waiting + 1;
          Metrics.set m_queue_depth (float_of_int t.waiting);
          `Queued
        end)
  in
  match outcome with
  | `Go -> Ok ()
  | `Full ->
      locked t (fun () -> t.rejected_queue_full <- t.rejected_queue_full + 1);
      Metrics.incr m_rejected_queue_full;
      Error
        ( P.Queue_full,
          Printf.sprintf "%d in flight and %d queued" t.config.max_inflight
            t.config.queue_capacity )
  | `Queued ->
      let rec wait () =
        if expired deadline then begin
          locked t (fun () ->
              t.waiting <- t.waiting - 1;
              Metrics.set m_queue_depth (float_of_int t.waiting);
              t.rejected_deadline <- t.rejected_deadline + 1);
          Metrics.incr m_rejected_deadline;
          Error (P.Deadline_exceeded, "deadline expired while queued")
        end
        else
          let got =
            locked t (fun () ->
                if t.inflight < t.config.max_inflight then begin
                  t.inflight <- t.inflight + 1;
                  t.waiting <- t.waiting - 1;
                  Metrics.set m_inflight (float_of_int t.inflight);
                  Metrics.set m_queue_depth (float_of_int t.waiting);
                  true
                end
                else false)
          in
          if got then Ok ()
          else begin
            Thread.delay 0.002;
            wait ()
          end
      in
      wait ()

let release_slot t =
  locked t (fun () ->
      t.inflight <- t.inflight - 1;
      Metrics.set m_inflight (float_of_int t.inflight))

(* ---- request execution ---- *)

let err code fmt = Printf.ksprintf (fun msg -> Error (code, msg)) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let find_model t name =
  match locked t (fun () -> Hashtbl.find_opt t.models name) with
  | Some m -> Ok m
  | None -> err P.Unknown_model "no model named %S (submit-model first)" name

let refresh_store_gauges t =
  let rows =
    locked t (fun () ->
        Metrics.set m_models (float_of_int (Hashtbl.length t.models));
        Hashtbl.fold
          (fun _ m acc ->
            match m.mo_sweep with
            | Some sw -> acc + Key_cache.store_size (Compositional.sweep_cache sw)
            | None -> acc)
          t.models 0)
  in
  Metrics.set m_store_rows (float_of_int rows)

let exec_submit t (s : P.submit) =
  match resolve_params s.sm_family s.sm_size s.sm_params with
  | Error msg -> Error (P.Bad_request, msg)
  | Ok resolved -> (
      let info m fresh =
        let sizes = Md.sizes m.mo_inst.md in
        Ok
          (P.Model_info
             {
               mi_model = m.mo_name;
               mi_family = m.mo_family;
               mi_states = Statespace.size m.mo_inst.statespace;
               mi_levels = Array.length sizes;
               mi_level_sizes = Array.to_list sizes;
               mi_fresh = fresh;
             })
      in
      match locked t (fun () -> Hashtbl.find_opt t.models s.sm_model) with
      | Some m when m.mo_params = resolved && m.mo_family = s.sm_family ->
          info m false
      | Some _ ->
          err P.Model_exists "model %S exists with a different configuration"
            s.sm_model
      | None -> (
          let inst = build_instance s.sm_family resolved in
          let m =
            {
              mo_name = s.sm_model;
              mo_family = s.sm_family;
              mo_params = resolved;
              mo_inst = inst;
              mo_lock = Mutex.create ();
              mo_sweep = None;
              mo_points = 0;
              mo_sizes = Hashtbl.create 16;
            }
          in
          (* Re-check under the lock: a concurrent submit may have won. *)
          let winner =
            locked t (fun () ->
                match Hashtbl.find_opt t.models s.sm_model with
                | Some existing -> `Existing existing
                | None ->
                    Hashtbl.add t.models s.sm_model m;
                    `Fresh)
          in
          refresh_store_gauges t;
          match winner with
          | `Fresh -> info m true
          | `Existing e when e.mo_params = resolved && e.mo_family = s.sm_family ->
              info e false
          | `Existing _ ->
              err P.Model_exists "model %S exists with a different configuration"
                s.sm_model))

let indicator_rewards inst (specs : P.reward_spec list) =
  let sizes = Md.sizes inst.md in
  let levels = Array.length sizes in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (r : P.reward_spec) :: rest ->
        if r.ind_level < 1 || r.ind_level > levels then
          err P.Bad_request "extra_rewards: level %d out of range (model has %d levels)"
            r.ind_level levels
        else
          let d =
            Decomposed.of_level ~sizes ~level:r.ind_level (fun s ->
                if (if r.ind_ge then s >= r.ind_k else s < r.ind_k) then 1.0 else 0.0)
          in
          build (d :: acc) rest
  in
  build [] specs

(* The model's sweep engine, created on first use and kept warm for the
   daemon's lifetime — this is the object whose persistent key-cache
   store makes a second client's request cheap. *)
let sweep_engine m =
  match m.mo_sweep with
  | Some sw -> sw
  | None ->
      let sw = Compositional.sweep_create State_lumping.Ordinary m.mo_inst.md in
      m.mo_sweep <- Some sw;
      sw

let classes_of result =
  Array.to_list (Array.map Partition.num_classes result.Compositional.partitions)

(* Per-level assignment lengths are fixed by the diagram, so the plain
   concatenation is an injective key for the partition tuple (the same
   argument as the sweep engine's rebuild memo). *)
let lumped_size m (r : Compositional.result) =
  let key =
    Array.concat
      (Array.to_list
         (Array.map Partition.to_class_assignment r.Compositional.partitions))
  in
  match Hashtbl.find_opt m.mo_sizes key with
  | Some n -> n
  | None ->
      let n = Statespace.size (Compositional.lump_statespace r m.mo_inst.statespace) in
      Hashtbl.add m.mo_sizes key n;
      n

let run_point m rewards =
  let sw = sweep_engine m in
  let r, s =
    Timer.time (fun () ->
        Compositional.sweep_point sw ~rewards ~initial:m.mo_inst.initial)
  in
  m.mo_points <- m.mo_points + 1;
  (r, s)

let exec_lump t (l : P.lump) =
  let* m = find_model t l.lp_model in
  let* extra = indicator_rewards m.mo_inst l.lp_extra in
  let rewards = extra @ List.map snd m.mo_inst.rewards in
  Mutex.lock m.mo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m.mo_lock)
    (fun () ->
      let r, wall =
        match l.lp_mode with
        | P.Ordinary -> run_point m rewards
        | P.Exact ->
            Timer.time (fun () ->
                Compositional.lump State_lumping.Exact m.mo_inst.md ~rewards
                  ~initial:m.mo_inst.initial)
      in
      refresh_store_gauges t;
      Ok
        (P.Lump_result
           {
             lr_lumped_states = lumped_size m r;
             lr_classes = classes_of r;
             lr_wall_s = wall;
           }))

let exec_sweep t (s : P.sweep) =
  let* m = find_model t s.sw_model in
  Mutex.lock m.mo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m.mo_lock)
    (fun () ->
      let t0 = now_s () in
      let rec run acc = function
        | [] -> Ok (List.rev acc)
        | (p : P.point) :: rest ->
            let* rewards = indicator_rewards m.mo_inst p.pt_extra in
            let rewards = rewards @ List.map snd m.mo_inst.rewards in
            let r, wall = run_point m rewards in
            let pr =
              {
                P.pr_lumped_states = lumped_size m r;
                pr_classes = classes_of r;
                pr_wall_s = wall;
              }
            in
            run (pr :: acc) rest
      in
      let* points = run [] s.sw_points in
      let sw = sweep_engine m in
      let st = Compositional.sweep_stats sw in
      refresh_store_gauges t;
      Ok
        (P.Sweep_result
           {
             sr_points = points;
             sr_cross_bind_hits = st.Compositional.cross_bind_hits;
             sr_level_reused = st.Compositional.level_reused;
             sr_rebuilds_reused = st.Compositional.rebuilds_reused;
             sr_store_rows = Key_cache.store_size (Compositional.sweep_cache sw);
             sr_wall_s = now_s () -. t0;
           }))

let exec_solve t (s : P.solve) =
  let* m = find_model t s.sv_model in
  Mutex.lock m.mo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m.mo_lock)
    (fun () ->
      let t0 = now_s () in
      let rewards = List.map snd m.mo_inst.rewards in
      let r, _ = run_point m rewards in
      let ss = m.mo_inst.statespace in
      if not (Compositional.is_closed r ss) then
        err P.Internal "reachable set of %S is not class-closed; cannot solve"
          s.sv_model
      else begin
        let lumped_ss = Compositional.lump_statespace r ss in
        let lumped = r.Compositional.lumped in
        let pi, stats =
          match s.sv_solver with
          | P.Power -> Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 lumped lumped_ss
          | P.Krylov -> Md_solve.steady_state_krylov ~tol:1e-12 lumped lumped_ss
          | P.Gauss_seidel ->
              Solver.steady_state_gauss_seidel ~tol:1e-12 ~max_iter:100_000
                ~ordering:Solver.Rcm ~relax:0.9
                (Md_solve.ctmc_of lumped lumped_ss)
        in
        let measures =
          List.map
            (fun (name, d) ->
              ( name,
                Solver.expected_reward pi
                  (Decomposed.to_vector (Compositional.lumped_rewards r d) lumped_ss) ))
            m.mo_inst.rewards
        in
        refresh_store_gauges t;
        Ok
          (P.Solve_result
             {
               so_solver = s.sv_solver;
               so_iterations = stats.Solver.iterations;
               so_converged = stats.Solver.converged;
               so_residual = stats.Solver.residual;
               so_measures = measures;
               so_wall_s = now_s () -. t0;
             })
      end)

let exec_stats t =
  let models =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ m acc ->
            let store_rows, gids, cross =
              match m.mo_sweep with
              | Some sw ->
                  let st = Compositional.sweep_stats sw in
                  let cache = Compositional.sweep_cache sw in
                  ( Key_cache.store_size cache,
                    Key_cache.gid_count cache,
                    st.Compositional.cross_bind_hits )
              | None -> (0, 0, 0)
            in
            {
              P.ms_model = m.mo_name;
              ms_family = m.mo_family;
              ms_states = Statespace.size m.mo_inst.statespace;
              ms_store_rows = store_rows;
              ms_gid_count = gids;
              ms_cross_bind_hits = cross;
              ms_points = m.mo_points;
            }
            :: acc)
          t.models [])
  in
  let models =
    List.sort (fun a b -> compare a.P.ms_model b.P.ms_model) models
  in
  (* One entry per verb, in registry order; quantiles estimated from the
     per-verb execution histogram (0. until the verb has been served). *)
  let verbs =
    List.map
      (fun v ->
        let requests, errors =
          match locked t (fun () -> Hashtbl.find_opt t.verb_counts v) with
          | Some (r, e) -> (r, e)
          | None -> (0, 0)
        in
        let q =
          match
            Metrics.histogram_snapshot (Printf.sprintf "serve.verb.%s.exec_seconds" v)
          with
          | Some s when s.Metrics.hs_count > 0 ->
              fun p -> Metrics.snapshot_quantile s p
          | _ -> fun _ -> 0.0
        in
        {
          P.vs_verb = v;
          vs_requests = requests;
          vs_errors = errors;
          vs_p50_s = q 0.50;
          vs_p95_s = q 0.95;
          vs_p99_s = q 0.99;
        })
      verb_names
  in
  let uptime = Unix.gettimeofday () -. t.started_wall in
  Metrics.set m_uptime uptime;
  locked t (fun () ->
      Ok
        (P.Stats_result
           {
             st_uptime_s = uptime;
             st_draining = t.draining;
             st_inflight = t.inflight;
             st_queue_depth = t.waiting;
             st_requests = t.requests;
             st_rejected_queue_full = t.rejected_queue_full;
             st_rejected_deadline = t.rejected_deadline;
             st_protocol_errors = t.protocol_errors;
             st_verbs = verbs;
             st_models = models;
           }))

(* Ping holds its execution slot for [sleep_ms], checking the deadline
   in 5 ms slices — the deterministic load fixture the deadline and
   backpressure tests lean on. *)
let exec_ping ~deadline (p : P.ping) =
  let until = now_s () +. (float_of_int p.pg_sleep_ms /. 1000.0) in
  let rec nap () =
    if expired deadline then Error (P.Deadline_exceeded, "deadline expired during ping")
    else
      let left = until -. now_s () in
      if left <= 0.0 then Ok P.Pong
      else begin
        Thread.delay (Float.min 0.005 left);
        nap ()
      end
  in
  nap ()

(* ---- graceful shutdown ---- *)

let request_drain t =
  let newly =
    locked t (fun () ->
        if t.draining then false
        else begin
          t.draining <- true;
          true
        end)
  in
  if newly then Log.info (fun m -> m "drain requested; finishing in-flight work")

(* ---- the handler ---- *)

let spanned name f =
  if Trace.enabled () then begin
    Trace.begin_span ~cat:"serve" name;
    Fun.protect ~finally:(fun () -> Trace.end_span name) f
  end
  else f ()

let verb_model = function
  | P.Submit_model s -> Some s.P.sm_model
  | P.Lump l -> Some l.P.lp_model
  | P.Sweep s -> Some s.P.sw_model
  | P.Solve s -> Some s.P.sv_model
  | P.Stats | P.Ping _ | P.Shutdown -> None

let ns_to_s ns = Int64.to_float ns /. 1e9

(* One JSON line per request: who, what, how long queued vs executing,
   outcome, and the size of the answer.  Written under its own lock so
   concurrent request threads never interleave lines. *)
let log_access t ~req_id ~verb ~model ~queue_ns ~exec_ns (resp : P.response) =
  match t.access_out with
  | None -> ()
  | Some oc ->
      let bytes = String.length (Json.to_string (P.response_to_json resp)) in
      let status =
        match resp.P.resp_body with
        | Ok _ -> "ok"
        | Error (code, _) -> P.error_code_string code
      in
      let members =
        [ ("ts", Json.Float (Unix.gettimeofday ())); ("request", Json.Str req_id) ]
        @ (match resp.P.resp_id with
          | Some id -> [ ("id", Json.Str id) ]
          | None -> [])
        @ [ ("verb", Json.Str verb) ]
        @ (match model with Some m -> [ ("model", Json.Str m) ] | None -> [])
        @ [
            ("queue_ns", Json.Int (Int64.to_int queue_ns));
            ("exec_ns", Json.Int (Int64.to_int exec_ns));
            ("status", Json.Str status);
            ("bytes", Json.Int bytes);
          ]
      in
      let line = Json.to_string (Json.Obj members) in
      Mutex.protect t.access_mu (fun () ->
          output_string oc line;
          output_char oc '\n';
          flush oc)

let handle t (rq : P.request) =
  let received = Timer.now_ns () in
  let req_num =
    locked t (fun () ->
        t.requests <- t.requests + 1;
        t.next_req <- t.next_req + 1;
        t.next_req)
  in
  let req_id = Printf.sprintf "r-%d" req_num in
  Metrics.incr m_requests;
  let vname = P.verb_name rq.rq_verb in
  let vm = verb_metrics vname in
  let deadline = deadline_of t received rq.rq_deadline_ms in
  let queue_ns = ref 0L in
  let exec_ns = ref 0L in
  let run_exec f =
    let t0 = Timer.now_ns () in
    let body = f () in
    exec_ns := Int64.sub (Timer.now_ns ()) t0;
    Metrics.observe vm.vm_exec (ns_to_s !exec_ns);
    body
  in
  let run_body () =
    match rq.rq_verb with
    (* Stats and shutdown answer even when the slots are saturated —
       an operator must be able to observe and stop a busy daemon.
       Their latency goes to [serve.control_seconds], not the global
       request histogram (they never queue or lump). *)
    | P.Stats -> run_exec (fun () -> exec_stats t)
    | P.Shutdown ->
        run_exec (fun () ->
            request_drain t;
            Ok (P.Shutdown_ack { draining = true }))
    | verb -> (
        if t.draining then Error (P.Shutting_down, "server is draining")
        else begin
          let q0 = Timer.now_ns () in
          let slot = acquire_slot t ~deadline in
          queue_ns := Int64.sub (Timer.now_ns ()) q0;
          Metrics.observe vm.vm_queue (ns_to_s !queue_ns);
          match slot with
          | Error _ as e -> e
          | Ok () ->
              Fun.protect
                ~finally:(fun () -> release_slot t)
                (fun () ->
                  if expired deadline then begin
                    locked t (fun () ->
                        t.rejected_deadline <- t.rejected_deadline + 1);
                    Metrics.incr m_rejected_deadline;
                    Error (P.Deadline_exceeded, "deadline expired before execution")
                  end
                  else
                    run_exec (fun () ->
                        try
                          spanned ("serve." ^ vname) (fun () ->
                              match verb with
                              | P.Submit_model s -> exec_submit t s
                              | P.Lump l -> exec_lump t l
                              | P.Sweep s -> exec_sweep t s
                              | P.Solve s -> exec_solve t s
                              | P.Ping p -> exec_ping ~deadline p
                              | P.Stats | P.Shutdown -> assert false)
                        with
                        | Invalid_argument msg | Failure msg ->
                            Error (P.Internal, msg)
                        | e -> Error (P.Internal, Printexc.to_string e)))
        end)
  in
  (* A traced request runs under its own context, so two concurrently
     traced requests can never interleave spans; the rollup travels
     back in the response's [trace] member tagged with the server-side
     request id. *)
  let body, trace =
    if not rq.rq_trace then (run_body (), None)
    else begin
      let ctx = Trace.Ctx.create () in
      Trace.Ctx.start ctx;
      let args =
        [ ("request", Trace.Str req_id); ("verb", Trace.Str vname) ]
        @
        match verb_model rq.rq_verb with
        | Some m -> [ ("model", Trace.Str m) ]
        | None -> []
      in
      let body =
        Trace.with_ctx ctx (fun () ->
            Trace.with_span ~cat:"serve" ~args "serve.request" run_body)
      in
      (try Trace.Ctx.stop ctx with Trace.Nesting_error _ -> ());
      let spans =
        List.map
          (fun (name, count, total) ->
            { P.sp_name = name; sp_count = count; sp_total_s = total })
          (Trace.Ctx.span_rollup ctx)
      in
      (body, Some { P.tr_request = req_id; tr_spans = spans })
    end
  in
  let error = Result.is_error body in
  Metrics.incr vm.vm_requests;
  if error then Metrics.incr vm.vm_errors;
  locked t (fun () ->
      let r, e =
        match Hashtbl.find_opt t.verb_counts vname with
        | Some p -> p
        | None -> (0, 0)
      in
      Hashtbl.replace t.verb_counts vname (r + 1, if error then e + 1 else e));
  (match rq.rq_verb with
  | P.Stats | P.Shutdown ->
      Metrics.observe m_control_latency
        (ns_to_s (Int64.sub (Timer.now_ns ()) received))
  | _ ->
      Metrics.observe m_latency
        (ns_to_s (Int64.sub (Timer.now_ns ()) received)));
  let resp = { P.resp_id = rq.rq_id; resp_trace = trace; resp_body = body } in
  log_access t ~req_id ~verb:vname ~model:(verb_model rq.rq_verb)
    ~queue_ns:!queue_ns ~exec_ns:!exec_ns resp;
  resp

(* ---- the socket shell ---- *)

let send_response fd resp =
  match P.write_frame fd (Json.to_string (P.response_to_json resp)) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let note_protocol_error t =
  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1);
  Metrics.incr m_protocol_errors

let conn_loop t fd =
  let reader = P.reader ~max_frame:t.config.max_frame fd in
  let stop () = t.draining in
  let rec loop () =
    match P.read_frame ~stop reader with
    | Error (P.Eof | P.Truncated | P.Stopped) -> ()
    | Error (P.Oversized n) ->
        note_protocol_error t;
        ignore
          (send_response fd
             {
               P.resp_id = None;
               resp_trace = None;
               resp_body =
                 Error
                   ( P.Frame_too_large,
                     Printf.sprintf "declared %d bytes, limit %d" n
                       t.config.max_frame );
             })
        (* framing is lost; the connection cannot continue *)
    | Error (P.Malformed msg) ->
        note_protocol_error t;
        ignore
          (send_response fd
             { P.resp_id = None; resp_trace = None; resp_body = Error (P.Parse_error, msg) })
    | Ok payload -> (
        if t.draining then
          ignore
            (send_response fd
               {
                 P.resp_id = None;
                 resp_trace = None;
                 resp_body = Error (P.Shutting_down, "server is draining");
               })
        else
          match P.request_of_string payload with
          | Error (code, msg) ->
              note_protocol_error t;
              if
                send_response fd
                  { P.resp_id = None; resp_trace = None; resp_body = Error (code, msg) }
              then loop ()
          | Ok rq -> if send_response fd (handle t rq) then loop ())
  in
  loop ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve_conn t fd =
  (match conn_loop t fd with () -> () | exception _ -> ());
  close_quietly fd;
  let self = Thread.self () in
  locked t (fun () ->
      t.conns <- List.filter (fun th -> Thread.id th <> Thread.id self) t.conns)

(* Accept loop over [fd], polling so drain is noticed within 0.2 s. *)
let accept_loop t fd handler =
  let rec loop () =
    if not t.draining then begin
      (match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | cfd, _ ->
              Metrics.incr m_connections;
              let th = Thread.create (fun () -> handler cfd) () in
              locked t (fun () -> t.conns <- th :: t.conns)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  close_quietly fd

(* ---- metrics endpoint: a deliberately tiny HTTP/1.0 responder ---- *)

let http_response status content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let scrape_body t =
  refresh_store_gauges t;
  Metrics.set m_uptime (Unix.gettimeofday () -. t.started_wall);
  Metrics.incr m_scrapes;
  let buf = Buffer.create 4096 in
  Metrics.to_prometheus buf;
  Buffer.contents buf

let serve_scrape t fd =
  (try
     (* Read the request head (bounded); we only care about the first line. *)
     let buf = Bytes.create 4096 in
     let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
     let head = Bytes.sub_string buf 0 n in
     let reply =
       match String.split_on_char ' ' (List.hd (String.split_on_char '\r' head)) with
       | "GET" :: path :: _ when path = "/metrics" || path = "/metrics/" ->
           http_response "200 OK"
             "text/plain; version=0.0.4; charset=utf-8" (scrape_body t)
       | "GET" :: _ -> http_response "404 Not Found" "text/plain" "only /metrics lives here\n"
       | _ -> http_response "405 Method Not Allowed" "text/plain" "GET only\n"
     in
     try
       let b = Bytes.unsafe_of_string reply in
       let len = Bytes.length b in
       let written = ref 0 in
       while !written < len do
         written := !written + Unix.write fd b !written (len - !written)
       done
     with Unix.Unix_error _ -> ()
   with _ -> ());
  close_quietly fd;
  let self = Thread.self () in
  locked t (fun () ->
      t.conns <- List.filter (fun th -> Thread.id th <> Thread.id self) t.conns)

(* ---- lifecycle ---- *)

let bind_listen t =
  match t.config.listen with
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      t.listen_fd <- Some fd;
      t.bound <- Unix_socket path
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> Unix.inet_addr_loopback)
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.listen_fd <- Some fd;
      t.bound <- Tcp (host, actual)

let bind_metrics t port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  t.metrics_fd <- Some fd;
  t.bound_metrics_port <- Some actual

let start config =
  if config.max_inflight < 1 then invalid_arg "Server.start: max_inflight < 1";
  if config.queue_capacity < 0 then invalid_arg "Server.start: queue_capacity < 0";
  if config.max_frame < 2 then invalid_arg "Server.start: max_frame too small";
  (* A peer closing mid-write must surface as EPIPE, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Metrics.set_enabled true;
  let t =
    {
      config;
      mu = Mutex.create ();
      models = Hashtbl.create 16;
      inflight = 0;
      waiting = 0;
      draining = false;
      requests = 0;
      next_req = 0;
      verb_counts = Hashtbl.create 8;
      rejected_queue_full = 0;
      rejected_deadline = 0;
      protocol_errors = 0;
      access_out =
        Option.map
          (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
          config.access_log;
      access_mu = Mutex.create ();
      started_wall = Unix.gettimeofday ();
      listen_fd = None;
      bound = config.listen;
      metrics_fd = None;
      bound_metrics_port = None;
      threads = [];
      conns = [];
    }
  in
  bind_listen t;
  Option.iter (fun port -> bind_metrics t port) config.metrics_port;
  let main_fd = Option.get t.listen_fd in
  let th = Thread.create (fun () -> accept_loop t main_fd (serve_conn t)) () in
  t.threads <- [ th ];
  Option.iter
    (fun mfd ->
      let th = Thread.create (fun () -> accept_loop t mfd (serve_scrape t)) () in
      t.threads <- th :: t.threads)
    t.metrics_fd;
  (match t.bound with
  | Unix_socket path -> Log.info (fun m -> m "listening on unix:%s" path)
  | Tcp (host, port) -> Log.info (fun m -> m "listening on %s:%d" host port));
  t

let address t = t.bound

let metrics_port t = t.bound_metrics_port

let wait t =
  List.iter Thread.join t.threads;
  let rec drain_conns () =
    match locked t (fun () -> t.conns) with
    | [] -> ()
    | ths ->
        List.iter Thread.join ths;
        drain_conns ()
  in
  drain_conns ();
  Option.iter (fun oc -> try close_out oc with Sys_error _ -> ()) t.access_out;
  (match t.config.listen with
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ())

let stop t =
  request_drain t;
  wait t

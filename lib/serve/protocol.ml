let version = 1

type family = Tandem | Polling | Workstations | Multitier | Kanban

type mode = Ordinary | Exact

type solver = Power | Gauss_seidel | Krylov

type reward_spec = { ind_level : int; ind_ge : bool; ind_k : int }

type point = { pt_extra : reward_spec list }

type submit = {
  sm_model : string;
  sm_family : family;
  sm_size : int option;
  sm_params : (string * int) list;
}

type lump = { lp_model : string; lp_mode : mode; lp_extra : reward_spec list }

type sweep = { sw_model : string; sw_points : point list }

type solve = { sv_model : string; sv_solver : solver }

type ping = { pg_sleep_ms : int }

type verb =
  | Submit_model of submit
  | Lump of lump
  | Sweep of sweep
  | Solve of solve
  | Stats
  | Ping of ping
  | Shutdown

type request = {
  rq_id : string option;
  rq_deadline_ms : int option;
  rq_trace : bool;
  rq_verb : verb;
}

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_verb
  | Unsupported_version
  | Frame_too_large
  | Unknown_model
  | Model_exists
  | Queue_full
  | Deadline_exceeded
  | Shutting_down
  | Internal

type model_info = {
  mi_model : string;
  mi_family : family;
  mi_states : int;
  mi_levels : int;
  mi_level_sizes : int list;
  mi_fresh : bool;
}

type lump_result = { lr_lumped_states : int; lr_classes : int list; lr_wall_s : float }

type point_result = { pr_lumped_states : int; pr_classes : int list; pr_wall_s : float }

type sweep_result = {
  sr_points : point_result list;
  sr_cross_bind_hits : int;
  sr_level_reused : int;
  sr_rebuilds_reused : int;
  sr_store_rows : int;
  sr_wall_s : float;
}

type solve_result = {
  so_solver : solver;
  so_iterations : int;
  so_converged : bool;
  so_residual : float;
  so_measures : (string * float) list;
  so_wall_s : float;
}

type span_stat = { sp_name : string; sp_count : int; sp_total_s : float }

type trace_rollup = { tr_request : string; tr_spans : span_stat list }

type verb_stat = {
  vs_verb : string;
  vs_requests : int;
  vs_errors : int;
  vs_p50_s : float;
  vs_p95_s : float;
  vs_p99_s : float;
}

type model_stat = {
  ms_model : string;
  ms_family : family;
  ms_states : int;
  ms_store_rows : int;
  ms_gid_count : int;
  ms_cross_bind_hits : int;
  ms_points : int;
}

type stats_result = {
  st_uptime_s : float;
  st_draining : bool;
  st_inflight : int;
  st_queue_depth : int;
  st_requests : int;
  st_rejected_queue_full : int;
  st_rejected_deadline : int;
  st_protocol_errors : int;
  st_verbs : verb_stat list;
  st_models : model_stat list;
}

type payload =
  | Model_info of model_info
  | Lump_result of lump_result
  | Sweep_result of sweep_result
  | Solve_result of solve_result
  | Stats_result of stats_result
  | Pong
  | Shutdown_ack of { draining : bool }

type response = {
  resp_id : string option;
  resp_trace : trace_rollup option;
  resp_body : (payload, error_code * string) result;
}

(* ---- enum tables ---- *)

let error_codes =
  [
    (Parse_error, "parse_error");
    (Bad_request, "bad_request");
    (Unknown_verb, "unknown_verb");
    (Unsupported_version, "unsupported_version");
    (Frame_too_large, "frame_too_large");
    (Unknown_model, "unknown_model");
    (Model_exists, "model_exists");
    (Queue_full, "queue_full");
    (Deadline_exceeded, "deadline_exceeded");
    (Shutting_down, "shutting_down");
    (Internal, "internal");
  ]

let error_code_string c = List.assoc c error_codes

let error_code_of_string s =
  List.find_map (fun (c, n) -> if n = s then Some c else None) error_codes

let families =
  [
    (Tandem, "tandem");
    (Polling, "polling");
    (Workstations, "workstations");
    (Multitier, "multitier");
    (Kanban, "kanban");
  ]

let family_string f = List.assoc f families

let family_of_string s =
  List.find_map (fun (f, n) -> if n = s then Some f else None) families

let solvers = [ (Power, "power"); (Gauss_seidel, "gauss-seidel"); (Krylov, "krylov") ]

let solver_string s = List.assoc s solvers

let solver_of_string s =
  List.find_map (fun (v, n) -> if n = s then Some v else None) solvers

let mode_string = function Ordinary -> "ordinary" | Exact -> "exact"

let mode_of_string = function
  | "ordinary" -> Some Ordinary
  | "exact" -> Some Exact
  | _ -> None

let verb_name = function
  | Submit_model _ -> "submit-model"
  | Lump _ -> "lump"
  | Sweep _ -> "sweep"
  | Solve _ -> "solve"
  | Stats -> "stats"
  | Ping _ -> "ping"
  | Shutdown -> "shutdown"

(* The response's payload tag; [Pong]/[Shutdown_ack] reuse their verb
   names so a response always names the verb it answers. *)
let payload_name = function
  | Model_info _ -> "submit-model"
  | Lump_result _ -> "lump"
  | Sweep_result _ -> "sweep"
  | Solve_result _ -> "solve"
  | Stats_result _ -> "stats"
  | Pong -> "ping"
  | Shutdown_ack _ -> "shutdown"

(* ---- encoding ---- *)

let opt_member k v rest = match v with None -> rest | Some x -> (k, x) :: rest

let reward_spec_to_json r =
  Json.Obj
    [
      ("level", Json.Int r.ind_level);
      ("op", Json.Str (if r.ind_ge then ">=" else "<"));
      ("k", Json.Int r.ind_k);
    ]

let point_to_json p =
  Json.Obj [ ("extra_rewards", Json.List (List.map reward_spec_to_json p.pt_extra)) ]

let request_to_json rq =
  let verb_members =
    match rq.rq_verb with
    | Submit_model s ->
        [
          ("model", Json.Str s.sm_model);
          ("family", Json.Str (family_string s.sm_family));
        ]
        @ (match s.sm_size with None -> [] | Some n -> [ ("size", Json.Int n) ])
        @
        if s.sm_params = [] then []
        else
          [ ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.sm_params)) ]
    | Lump l ->
        [
          ("model", Json.Str l.lp_model);
          ("mode", Json.Str (mode_string l.lp_mode));
          ("extra_rewards", Json.List (List.map reward_spec_to_json l.lp_extra));
        ]
    | Sweep s ->
        [
          ("model", Json.Str s.sw_model);
          ("points", Json.List (List.map point_to_json s.sw_points));
        ]
    | Solve s ->
        [ ("model", Json.Str s.sv_model); ("solver", Json.Str (solver_string s.sv_solver)) ]
    | Stats | Shutdown -> []
    | Ping p -> if p.pg_sleep_ms = 0 then [] else [ ("sleep_ms", Json.Int p.pg_sleep_ms) ]
  in
  Json.Obj
    (("v", Json.Int version)
    :: opt_member "id" (Option.map (fun s -> Json.Str s) rq.rq_id)
         (opt_member "deadline_ms"
            (Option.map (fun d -> Json.Int d) rq.rq_deadline_ms)
            (opt_member "trace"
               (if rq.rq_trace then Some (Json.Bool true) else None)
               (("verb", Json.Str (verb_name rq.rq_verb)) :: verb_members))))

let measures_to_json ms = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) ms)

let point_result_to_json p =
  Json.Obj
    [
      ("lumped_states", Json.Int p.pr_lumped_states);
      ("classes", Json.List (List.map (fun c -> Json.Int c) p.pr_classes));
      ("wall_s", Json.Float p.pr_wall_s);
    ]

let payload_to_json = function
  | Model_info m ->
      Json.Obj
        [
          ("model", Json.Str m.mi_model);
          ("family", Json.Str (family_string m.mi_family));
          ("states", Json.Int m.mi_states);
          ("levels", Json.Int m.mi_levels);
          ("level_sizes", Json.List (List.map (fun n -> Json.Int n) m.mi_level_sizes));
          ("fresh", Json.Bool m.mi_fresh);
        ]
  | Lump_result l ->
      Json.Obj
        [
          ("lumped_states", Json.Int l.lr_lumped_states);
          ("classes", Json.List (List.map (fun c -> Json.Int c) l.lr_classes));
          ("wall_s", Json.Float l.lr_wall_s);
        ]
  | Sweep_result s ->
      Json.Obj
        [
          ("points", Json.List (List.map point_result_to_json s.sr_points));
          ("cross_bind_hits", Json.Int s.sr_cross_bind_hits);
          ("level_reused", Json.Int s.sr_level_reused);
          ("rebuilds_reused", Json.Int s.sr_rebuilds_reused);
          ("store_rows", Json.Int s.sr_store_rows);
          ("wall_s", Json.Float s.sr_wall_s);
        ]
  | Solve_result s ->
      Json.Obj
        [
          ("solver", Json.Str (solver_string s.so_solver));
          ("iterations", Json.Int s.so_iterations);
          ("converged", Json.Bool s.so_converged);
          ("residual", Json.Float s.so_residual);
          ("measures", measures_to_json s.so_measures);
          ("wall_s", Json.Float s.so_wall_s);
        ]
  | Stats_result s ->
      Json.Obj
        [
          ("uptime_s", Json.Float s.st_uptime_s);
          ("draining", Json.Bool s.st_draining);
          ("inflight", Json.Int s.st_inflight);
          ("queue_depth", Json.Int s.st_queue_depth);
          ("requests", Json.Int s.st_requests);
          ("rejected_queue_full", Json.Int s.st_rejected_queue_full);
          ("rejected_deadline", Json.Int s.st_rejected_deadline);
          ("protocol_errors", Json.Int s.st_protocol_errors);
          ( "verbs",
            Json.List
              (List.map
                 (fun v ->
                   Json.Obj
                     [
                       ("verb", Json.Str v.vs_verb);
                       ("requests", Json.Int v.vs_requests);
                       ("errors", Json.Int v.vs_errors);
                       ("p50_s", Json.Float v.vs_p50_s);
                       ("p95_s", Json.Float v.vs_p95_s);
                       ("p99_s", Json.Float v.vs_p99_s);
                     ])
                 s.st_verbs) );
          ( "models",
            Json.List
              (List.map
                 (fun m ->
                   Json.Obj
                     [
                       ("model", Json.Str m.ms_model);
                       ("family", Json.Str (family_string m.ms_family));
                       ("states", Json.Int m.ms_states);
                       ("store_rows", Json.Int m.ms_store_rows);
                       ("gid_count", Json.Int m.ms_gid_count);
                       ("cross_bind_hits", Json.Int m.ms_cross_bind_hits);
                       ("points", Json.Int m.ms_points);
                     ])
                 s.st_models) );
        ]
  | Pong -> Json.Obj []
  | Shutdown_ack { draining } -> Json.Obj [ ("draining", Json.Bool draining) ]

let trace_rollup_to_json tr =
  Json.Obj
    [
      ("request", Json.Str tr.tr_request);
      ( "spans",
        Json.List
          (List.map
             (fun sp ->
               Json.Obj
                 [
                   ("name", Json.Str sp.sp_name);
                   ("count", Json.Int sp.sp_count);
                   ("total_s", Json.Float sp.sp_total_s);
                 ])
             tr.tr_spans) );
    ]

let response_to_json resp =
  let id = opt_member "id" (Option.map (fun s -> Json.Str s) resp.resp_id) in
  let trace rest =
    opt_member "trace" (Option.map trace_rollup_to_json resp.resp_trace) rest
  in
  match resp.resp_body with
  | Ok payload ->
      Json.Obj
        (("v", Json.Int version)
        :: id
             (trace
                [
                  ("ok", Json.Bool true);
                  ("verb", Json.Str (payload_name payload));
                  ("result", payload_to_json payload);
                ]))
  | Error (code, msg) ->
      Json.Obj
        (("v", Json.Int version)
        :: id
             (trace
                [
                  ("ok", Json.Bool false);
                  ( "error",
                    Json.Obj
                      [
                        ("code", Json.Str (error_code_string code));
                        ("message", Json.Str msg);
                      ] );
                ]))

(* ---- decoding ---- *)

let ( let* ) = Result.bind

let bad fmt = Printf.ksprintf (fun msg -> Error (Bad_request, msg)) fmt

let get_str j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> bad "field %S must be a string" k
  | None -> bad "missing field %S" k

let get_opt_str j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok (Some s)
  | Some Json.Null | None -> Ok None
  | Some _ -> bad "field %S must be a string" k

let get_int j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | Some _ -> bad "field %S must be an integer" k
  | None -> bad "missing field %S" k

let get_opt_int j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok (Some i)
  | Some Json.Null | None -> Ok None
  | Some _ -> bad "field %S must be an integer" k

let get_bool j k =
  match Json.member k j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> bad "field %S must be a boolean" k
  | None -> bad "missing field %S" k

(* Numeric fields that are semantically floats also accept integer
   literals ([1] for [1.0]) — hand-written clients get this wrong
   constantly, and there is no ambiguity reading a number as seconds. *)
let get_float j k =
  match Json.member k j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ -> bad "field %S must be a number" k
  | None -> bad "missing field %S" k

let get_list j k =
  match Json.member k j with
  | Some (Json.List l) -> Ok l
  | Some _ -> bad "field %S must be an array" k
  | None -> bad "missing field %S" k

let get_opt_list j k =
  match Json.member k j with
  | Some (Json.List l) -> Ok l
  | Some Json.Null | None -> Ok []
  | Some _ -> bad "field %S must be an array" k

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let get_int_list j k =
  let* l = get_list j k in
  map_result
    (function Json.Int i -> Ok i | _ -> bad "field %S must contain integers" k)
    l

let reward_spec_of_json j =
  let* level = get_int j "level" in
  if level < 1 then bad "extra_rewards: level must be >= 1"
  else
    let* op = get_str j "op" in
    let* ge =
      match op with
      | ">=" -> Ok true
      | "<" -> Ok false
      | other -> bad "extra_rewards: op must be \">=\" or \"<\", not %S" other
    in
    let* k = get_int j "k" in
    Ok { ind_level = level; ind_ge = ge; ind_k = k }

let point_of_json j =
  let* extra = get_opt_list j "extra_rewards" in
  let* specs = map_result reward_spec_of_json extra in
  Ok { pt_extra = specs }

let check_version j =
  match Json.member "v" j with
  | None | Some Json.Null -> Ok ()
  | Some (Json.Int v) ->
      if v >= 1 && v <= version then Ok ()
      else Error (Unsupported_version, Printf.sprintf "protocol version %d not supported (this server speaks %d)" v version)
  | Some _ -> bad "field \"v\" must be an integer"

let request_of_json j =
  match j with
  | Json.Obj _ ->
      let* () = check_version j in
      let* id = get_opt_str j "id" in
      let* deadline = get_opt_int j "deadline_ms" in
      let* () =
        match deadline with
        | Some d when d <= 0 -> bad "deadline_ms must be positive"
        | _ -> Ok ()
      in
      let* trace =
        match Json.member "trace" j with
        | None | Some Json.Null -> Ok false
        | Some (Json.Bool b) -> Ok b
        | Some _ -> bad "field \"trace\" must be a boolean"
      in
      let* verb_s = get_str j "verb" in
      let* verb =
        match verb_s with
        | "submit-model" ->
            let* model = get_str j "model" in
            let* family_s = get_str j "family" in
            let* family =
              match family_of_string family_s with
              | Some f -> Ok f
              | None -> bad "unknown model family %S" family_s
            in
            let* size = get_opt_int j "size" in
            let* () =
              match size with
              | Some n when n < 1 -> bad "size must be >= 1"
              | _ -> Ok ()
            in
            let* params =
              match Json.member "params" j with
              | None | Some Json.Null -> Ok []
              | Some (Json.Obj members) ->
                  map_result
                    (fun (k, v) ->
                      match v with
                      | Json.Int i -> Ok (k, i)
                      | _ -> bad "params.%s must be an integer" k)
                    members
              | Some _ -> bad "field \"params\" must be an object"
            in
            Ok (Submit_model { sm_model = model; sm_family = family; sm_size = size; sm_params = params })
        | "lump" ->
            let* model = get_str j "model" in
            let* mode_s =
              match Json.member "mode" j with
              | None | Some Json.Null -> Ok "ordinary"
              | Some (Json.Str s) -> Ok s
              | Some _ -> bad "field \"mode\" must be a string"
            in
            let* mode =
              match mode_of_string mode_s with
              | Some m -> Ok m
              | None -> bad "unknown mode %S" mode_s
            in
            let* extra = get_opt_list j "extra_rewards" in
            let* specs = map_result reward_spec_of_json extra in
            Ok (Lump { lp_model = model; lp_mode = mode; lp_extra = specs })
        | "sweep" ->
            let* model = get_str j "model" in
            let* pts = get_list j "points" in
            let* points = map_result point_of_json pts in
            if points = [] then bad "sweep needs at least one point"
            else Ok (Sweep { sw_model = model; sw_points = points })
        | "solve" ->
            let* model = get_str j "model" in
            let* solver_s =
              match Json.member "solver" j with
              | None | Some Json.Null -> Ok "power"
              | Some (Json.Str s) -> Ok s
              | Some _ -> bad "field \"solver\" must be a string"
            in
            let* solver =
              match solver_of_string solver_s with
              | Some s -> Ok s
              | None -> bad "unknown solver %S" solver_s
            in
            Ok (Solve { sv_model = model; sv_solver = solver })
        | "stats" -> Ok Stats
        | "ping" ->
            let* sleep = get_opt_int j "sleep_ms" in
            let sleep = Option.value sleep ~default:0 in
            if sleep < 0 then bad "sleep_ms must be non-negative"
            else Ok (Ping { pg_sleep_ms = sleep })
        | "shutdown" -> Ok Shutdown
        | other -> Error (Unknown_verb, Printf.sprintf "unknown verb %S" other)
      in
      Ok { rq_id = id; rq_deadline_ms = deadline; rq_trace = trace; rq_verb = verb }
  | _ -> bad "request must be a JSON object"

let request_of_string s =
  match Json.parse_result s with
  | Error msg -> Error (Parse_error, msg)
  | Ok j -> request_of_json j

let point_result_of_json j =
  let* lumped = get_int j "lumped_states" in
  let* classes = get_int_list j "classes" in
  let* wall = get_float j "wall_s" in
  Ok { pr_lumped_states = lumped; pr_classes = classes; pr_wall_s = wall }

let measures_of_json j k =
  match Json.member k j with
  | Some (Json.Obj members) ->
      map_result
        (fun (name, v) ->
          match v with
          | Json.Float f -> Ok (name, f)
          | Json.Int i -> Ok (name, float_of_int i)
          | _ -> bad "measure %S must be a number" name)
        members
  | Some _ -> bad "field %S must be an object" k
  | None -> bad "missing field %S" k

let payload_of_json verb j =
  match verb with
  | "submit-model" ->
      let* model = get_str j "model" in
      let* family_s = get_str j "family" in
      let* family =
        match family_of_string family_s with
        | Some f -> Ok f
        | None -> bad "unknown model family %S" family_s
      in
      let* states = get_int j "states" in
      let* levels = get_int j "levels" in
      let* level_sizes = get_int_list j "level_sizes" in
      let* fresh = get_bool j "fresh" in
      Ok
        (Model_info
           {
             mi_model = model;
             mi_family = family;
             mi_states = states;
             mi_levels = levels;
             mi_level_sizes = level_sizes;
             mi_fresh = fresh;
           })
  | "lump" ->
      let* lumped = get_int j "lumped_states" in
      let* classes = get_int_list j "classes" in
      let* wall = get_float j "wall_s" in
      Ok (Lump_result { lr_lumped_states = lumped; lr_classes = classes; lr_wall_s = wall })
  | "sweep" ->
      let* pts = get_list j "points" in
      let* points = map_result point_result_of_json pts in
      let* cross = get_int j "cross_bind_hits" in
      let* level_reused = get_int j "level_reused" in
      let* rebuilds_reused = get_int j "rebuilds_reused" in
      let* store_rows = get_int j "store_rows" in
      let* wall = get_float j "wall_s" in
      Ok
        (Sweep_result
           {
             sr_points = points;
             sr_cross_bind_hits = cross;
             sr_level_reused = level_reused;
             sr_rebuilds_reused = rebuilds_reused;
             sr_store_rows = store_rows;
             sr_wall_s = wall;
           })
  | "solve" ->
      let* solver_s = get_str j "solver" in
      let* solver =
        match solver_of_string solver_s with
        | Some s -> Ok s
        | None -> bad "unknown solver %S" solver_s
      in
      let* iterations = get_int j "iterations" in
      let* converged = get_bool j "converged" in
      let* residual = get_float j "residual" in
      let* measures = measures_of_json j "measures" in
      let* wall = get_float j "wall_s" in
      Ok
        (Solve_result
           {
             so_solver = solver;
             so_iterations = iterations;
             so_converged = converged;
             so_residual = residual;
             so_measures = measures;
             so_wall_s = wall;
           })
  | "stats" ->
      let* uptime = get_float j "uptime_s" in
      let* draining = get_bool j "draining" in
      let* inflight = get_int j "inflight" in
      let* queue_depth = get_int j "queue_depth" in
      let* requests = get_int j "requests" in
      let* rejected_queue_full = get_int j "rejected_queue_full" in
      let* rejected_deadline = get_int j "rejected_deadline" in
      let* protocol_errors = get_int j "protocol_errors" in
      let* verbs = get_opt_list j "verbs" in
      let* verbs =
        map_result
          (fun v ->
            let* name = get_str v "verb" in
            let* requests = get_int v "requests" in
            let* errors = get_int v "errors" in
            let* p50 = get_float v "p50_s" in
            let* p95 = get_float v "p95_s" in
            let* p99 = get_float v "p99_s" in
            Ok
              {
                vs_verb = name;
                vs_requests = requests;
                vs_errors = errors;
                vs_p50_s = p50;
                vs_p95_s = p95;
                vs_p99_s = p99;
              })
          verbs
      in
      let* models = get_list j "models" in
      let* models =
        map_result
          (fun m ->
            let* name = get_str m "model" in
            let* family_s = get_str m "family" in
            let* family =
              match family_of_string family_s with
              | Some f -> Ok f
              | None -> bad "unknown model family %S" family_s
            in
            let* states = get_int m "states" in
            let* store_rows = get_int m "store_rows" in
            let* gid_count = get_int m "gid_count" in
            let* cross = get_int m "cross_bind_hits" in
            let* points = get_int m "points" in
            Ok
              {
                ms_model = name;
                ms_family = family;
                ms_states = states;
                ms_store_rows = store_rows;
                ms_gid_count = gid_count;
                ms_cross_bind_hits = cross;
                ms_points = points;
              })
          models
      in
      Ok
        (Stats_result
           {
             st_uptime_s = uptime;
             st_draining = draining;
             st_inflight = inflight;
             st_queue_depth = queue_depth;
             st_requests = requests;
             st_rejected_queue_full = rejected_queue_full;
             st_rejected_deadline = rejected_deadline;
             st_protocol_errors = protocol_errors;
             st_verbs = verbs;
             st_models = models;
           })
  | "ping" -> Ok Pong
  | "shutdown" ->
      let* draining = get_bool j "draining" in
      Ok (Shutdown_ack { draining })
  | other -> bad "unknown response verb %S" other

let span_stat_of_json sp =
  let* name = get_str sp "name" in
  let* count = get_int sp "count" in
  let* total = get_float sp "total_s" in
  Ok { sp_name = name; sp_count = count; sp_total_s = total }

let trace_rollup_of_json tr =
  let* request = get_str tr "request" in
  let* spans = get_opt_list tr "spans" in
  let* spans = map_result span_stat_of_json spans in
  Ok { tr_request = request; tr_spans = spans }

let response_of_json j =
  let err_of = function Bad_request, msg -> msg | _, msg -> msg in
  match j with
  | Json.Obj _ -> (
      let id = match Json.member "id" j with Some (Json.Str s) -> Some s | _ -> None in
      let trace =
        match Json.member "trace" j with
        | None | Some Json.Null -> Ok None
        | Some tr -> (
            match trace_rollup_of_json tr with
            | Ok r -> Ok (Some r)
            | Error (_, msg) -> Error msg)
      in
      match trace with
      | Error msg -> Error msg
      | Ok trace -> (
          match Json.member "ok" j with
          | Some (Json.Bool true) -> (
              match (Json.member "verb" j, Json.member "result" j) with
              | Some (Json.Str verb), Some result -> (
                  match payload_of_json verb result with
                  | Ok payload ->
                      Ok { resp_id = id; resp_trace = trace; resp_body = Ok payload }
                  | Error e -> Error (err_of e))
              | _ -> Error "ok response needs \"verb\" and \"result\"")
          | Some (Json.Bool false) -> (
              match Json.member "error" j with
              | Some err -> (
                  match (Json.member "code" err, Json.member "message" err) with
                  | Some (Json.Str code_s), Some (Json.Str msg) -> (
                      match error_code_of_string code_s with
                      | Some code ->
                          Ok { resp_id = id; resp_trace = trace; resp_body = Error (code, msg) }
                      | None -> Error (Printf.sprintf "unknown error code %S" code_s))
                  | _ -> Error "error object needs string \"code\" and \"message\"")
              | None -> Error "error response lacks \"error\" object")
          | _ -> Error "response lacks boolean \"ok\""))
  | _ -> Error "response must be a JSON object"

let response_of_string s =
  match Json.parse_result s with
  | Error msg -> Error (Printf.sprintf "response is not valid JSON: %s" msg)
  | Ok j -> response_of_json j

(* ---- framing ---- *)

let max_frame_default = 16 * 1024 * 1024

let frame_string payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let write_frame fd payload = write_all fd (frame_string payload)

type frame_error =
  | Eof
  | Truncated
  | Oversized of int
  | Malformed of string
  | Stopped

type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  buf : Bytes.t;
  mutable start : int;  (* unconsumed bytes: buf.[start .. len-1] *)
  mutable len : int;
  mutable at_eof : bool;
}

let reader ?(max_frame = max_frame_default) fd =
  { fd; max_frame; buf = Bytes.create 65536; start = 0; len = 0; at_eof = false }

exception Stop_read of frame_error

(* Refill the buffer with at least one byte, waiting in 0.2 s [select]
   slices so [stop] (server drain) interrupts an idle read. *)
let refill r stop =
  if r.at_eof then raise (Stop_read Eof);
  if r.start = r.len then begin
    r.start <- 0;
    r.len <- 0
  end
  else if r.len = Bytes.length r.buf then begin
    Bytes.blit r.buf r.start r.buf 0 (r.len - r.start);
    r.len <- r.len - r.start;
    r.start <- 0
  end;
  let rec wait () =
    if stop () then raise (Stop_read Stopped);
    match Unix.select [ r.fd ] [] [] 0.2 with
    | [], _, _ -> wait ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
  | 0 ->
      r.at_eof <- true;
      raise (Stop_read Eof)
  | n -> r.len <- r.len + n
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      r.at_eof <- true;
      raise (Stop_read Eof)

let read_byte r stop =
  if r.start >= r.len then refill r stop;
  let c = Bytes.get r.buf r.start in
  r.start <- r.start + 1;
  c

(* The length prefix: ASCII digits then '\n' (a lone '\r' before the
   '\n' is tolerated).  Anything else is a framing fault — the stream
   cannot be resynchronised. *)
let read_length r stop =
  let rec go acc ndigits =
    let c = try read_byte r stop with Stop_read Eof when ndigits > 0 -> raise (Stop_read Truncated) in
    match c with
    | '0' .. '9' ->
        if ndigits >= 12 then raise (Stop_read (Malformed "length prefix too long"));
        go ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1)
    | '\r' ->
        let c2 = try read_byte r stop with Stop_read Eof -> raise (Stop_read Truncated) in
        if c2 = '\n' && ndigits > 0 then acc
        else raise (Stop_read (Malformed "length prefix must end in a newline"))
    | '\n' ->
        if ndigits > 0 then acc
        else raise (Stop_read (Malformed "empty length prefix"))
    | c ->
        raise
          (Stop_read
             (Malformed (Printf.sprintf "length prefix contains %C (decimal digits expected)" c)))
  in
  go 0 0

let read_frame ?(stop = fun () -> false) r =
  match
    let len = read_length r stop in
    if len > r.max_frame then raise (Stop_read (Oversized len));
    let out = Bytes.create len in
    let filled = ref 0 in
    while !filled < len do
      if r.start >= r.len then begin
        match refill r stop with
        | () -> ()
        | exception Stop_read Eof -> raise (Stop_read Truncated)
      end;
      let n = min (len - !filled) (r.len - r.start) in
      Bytes.blit r.buf r.start out !filled n;
      r.start <- r.start + n;
      filled := !filled + n
    done;
    (match try read_byte r stop with Stop_read Eof -> raise (Stop_read Truncated) with
    | '\n' -> ()
    | _ -> raise (Stop_read (Malformed "frame payload not terminated by a newline")));
    Bytes.unsafe_to_string out
  with
  | payload -> Ok payload
  | exception Stop_read e -> Error e

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- parser ---- *)

type state = { s : string; mutable pos : int }

let max_depth = 512

let error st msg = raise (Parse_error (Printf.sprintf "offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %C, found %C" c d)
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

(* UTF-8 encode one code point (for \uXXXX escapes; surrogate pairs are
   combined by the caller). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
    | Some ('a' .. 'f' as c) -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
    | Some ('A' .. 'F' as c) -> v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
    | _ -> error st "expected 4 hex digits after \\u");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            let cp =
              (* High surrogate: a low surrogate must follow. *)
              if cp >= 0xd800 && cp <= 0xdbff then begin
                if
                  st.pos + 1 < String.length st.s
                  && st.s.[st.pos] = '\\'
                  && st.s.[st.pos + 1] = 'u'
                then begin
                  advance st;
                  advance st;
                  let lo = hex4 st in
                  if lo < 0xdc00 || lo > 0xdfff then
                    error st "invalid low surrogate";
                  0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                end
                else error st "unpaired high surrogate"
              end
              else if cp >= 0xdc00 && cp <= 0xdfff then
                error st "unpaired low surrogate"
              else cp
            in
            add_utf8 buf cp
        | _ -> error st "invalid escape");
        loop ()
    | Some c when Char.code c < 0x20 -> error st "unescaped control character in string"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let n = ref 0 in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
          incr n;
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    if !n = 0 then error st "expected digit"
  in
  (* Integer part: 0, or nonzero leading digit. *)
  (match peek st with
  | Some '0' -> advance st
  | Some '1' .. '9' -> digits ()
  | _ -> error st "expected digit");
  (match peek st with
  | Some '.' ->
      is_float := true;
      advance st;
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of int range *)

let rec parse_value st depth =
  if depth > max_depth then error st "document nested too deep";
  skip_ws st;
  match peek st with
  | None -> error st "expected a JSON value, found end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec loop () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          members := (k, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; loop ()
          | Some '}' -> advance st
          | _ -> error st "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !members)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          let v = parse_value st (depth + 1) in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; loop ()
          | Some ']' -> advance st
          | _ -> error st "expected ',' or ']'"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st 0 in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing bytes after document";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg

(* ---- printer ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        (* Keep a ".0" so the value reparses as Float — field kinds
           (count vs seconds) survive a round trip. *)
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else
        (* JSON has no non-finite literals; the protocol never emits
           them, but a total printer must not produce invalid JSON. *)
        Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let member k = function
  | Obj members ->
      List.fold_left (fun acc (k', v) -> if k' = k then Some v else acc) None members
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
      List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false

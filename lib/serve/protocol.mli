(** The [lumpd] wire protocol: typed requests and responses, their JSON
    codec, and the length-prefixed framing — the normative prose lives
    in [docs/PROTOCOL.md]; this module is its executable counterpart.

    {b Framing.}  Each message is one frame: the payload's byte length
    in ASCII decimal, a ['\n'], the JSON payload, a ['\n'].  Frames are
    processed strictly in order per connection (no interleaving), and a
    framing-level fault (unparsable length, oversized declaration,
    truncated payload) is unrecoverable — the peer answers with a typed
    error where it still can and closes the connection.  Faults {e
    inside} a well-framed payload (bad JSON, missing fields) are
    recoverable: the server answers a typed error and keeps reading.

    {b Versioning.}  Every message carries ["v"] (omitted means [1]).
    Within a version, servers ignore unknown object members and clients
    must tolerate new members in responses — additive evolution needs
    no version bump; removing or re-typing a field does.  A server
    refuses [v] greater than {!version} with [`Unsupported_version].

    The codec is total in both directions over the types below, and
    the QCheck suite pins [decode (encode x) = x] for every request and
    response shape. *)

val version : int
(** The protocol version this build speaks ([1]). *)

(** {2 Vocabulary} *)

type family = Tandem | Polling | Workstations | Multitier | Kanban
(** The buildable model families — the same set [lumpmd] exposes. *)

type mode = Ordinary | Exact
(** Lumping mode (the wire-level mirror of
    {!Mdl_lumping.State_lumping.mode}; the codec is deliberately free
    of engine dependencies). *)

type solver = Power | Gauss_seidel | Krylov
(** Steady-state solver selection, as in [lumpmd --solver]. *)

type reward_spec = { ind_level : int; ind_ge : bool; ind_k : int }
(** A threshold-indicator reward on one level: state [s] of level
    [ind_level] (1-based) rewards [1.0] when [s >= ind_k] (or [s <
    ind_k] with [ind_ge = false]) — the sweep-family shape of
    [lumpmd sweep] and the bench fixture, now client-specifiable. *)

type point = { pt_extra : reward_spec list }
(** One sweep point: the model's base rewards extended with these
    indicators. *)

(** {2 Requests} *)

type submit = {
  sm_model : string;  (** the name later requests refer to *)
  sm_family : family;
  sm_size : int option;  (** the family's main size knob; default when [None] *)
  sm_params : (string * int) list;
      (** further family parameters by name ([hyper_dim], [msmq_servers],
          ...); unknown names are rejected as [`Bad_request] *)
}

type lump = { lp_model : string; lp_mode : mode; lp_extra : reward_spec list }

type sweep = { sw_model : string; sw_points : point list }

type solve = { sv_model : string; sv_solver : solver }

type ping = { pg_sleep_ms : int }
(** [pg_sleep_ms > 0] holds the execution slot for that long before
    answering — the deterministic fixture the deadline and backpressure
    tests (and operators probing queue behaviour) use. *)

type verb =
  | Submit_model of submit
  | Lump of lump
  | Sweep of sweep
  | Solve of solve
  | Stats
  | Ping of ping
  | Shutdown

type request = {
  rq_id : string option;  (** echoed verbatim in the response *)
  rq_deadline_ms : int option;
      (** per-request deadline, measured from the moment the server
          reads the frame; overrides the server default *)
  rq_trace : bool;
      (** when [true], the server traces this request's execution and
          returns a per-span rollup in the response's [trace] member.
          Encoded on the wire only when set; absent means [false]. *)
  rq_verb : verb;
}

(** {2 Responses} *)

type error_code =
  | Parse_error  (** payload is not valid JSON *)
  | Bad_request  (** well-formed JSON, bad or missing fields *)
  | Unknown_verb
  | Unsupported_version
  | Frame_too_large
  | Unknown_model
  | Model_exists  (** name already bound to a {e different} configuration *)
  | Queue_full  (** backpressure: the bounded wait queue is at capacity *)
  | Deadline_exceeded
  | Shutting_down
  | Internal

type model_info = {
  mi_model : string;
  mi_family : family;
  mi_states : int;  (** reachable states *)
  mi_levels : int;
  mi_level_sizes : int list;
  mi_fresh : bool;  (** [false] when an identical submission already existed *)
}

type lump_result = {
  lr_lumped_states : int;
  lr_classes : int list;  (** classes per level, level 1 first *)
  lr_wall_s : float;
}

type point_result = { pr_lumped_states : int; pr_classes : int list; pr_wall_s : float }

type sweep_result = {
  sr_points : point_result list;
  sr_cross_bind_hits : int;  (** model-engine cumulative, across requests *)
  sr_level_reused : int;
  sr_rebuilds_reused : int;
  sr_store_rows : int;
  sr_wall_s : float;
}

type solve_result = {
  so_solver : solver;
  so_iterations : int;
  so_converged : bool;
  so_residual : float;
  so_measures : (string * float) list;
      (** expected steady-state rewards by measure name; floats travel
          bit-exactly (see {!Json}) *)
  so_wall_s : float;
}

type span_stat = {
  sp_name : string;  (** span name, e.g. ["serve.lump"] *)
  sp_count : int;  (** completed spans with this name *)
  sp_total_s : float;  (** total {e inclusive} seconds across them *)
}
(** One line of a trace rollup — the per-name aggregate of the spans a
    traced request produced (see {!Mdl_obs.Trace.Ctx.span_rollup}). *)

type trace_rollup = {
  tr_request : string;  (** the server-assigned request id *)
  tr_spans : span_stat list;  (** sorted by span name *)
}

type verb_stat = {
  vs_verb : string;  (** wire verb name, e.g. ["lump"] *)
  vs_requests : int;  (** requests of this verb handled since start *)
  vs_errors : int;  (** of which answered with an error *)
  vs_p50_s : float;  (** execution-latency quantiles, estimated from *)
  vs_p95_s : float;  (** the per-verb histogram by linear interpolation *)
  vs_p99_s : float;  (** within the winning bucket; [0.] when unserved *)
}

type model_stat = {
  ms_model : string;
  ms_family : family;
  ms_states : int;
  ms_store_rows : int;
  ms_gid_count : int;
  ms_cross_bind_hits : int;
  ms_points : int;  (** sweep points served since submission *)
}

type stats_result = {
  st_uptime_s : float;
  st_draining : bool;
  st_inflight : int;
  st_queue_depth : int;
  st_requests : int;
  st_rejected_queue_full : int;
  st_rejected_deadline : int;
  st_protocol_errors : int;
  st_verbs : verb_stat list;  (** per-verb counters and latency quantiles *)
  st_models : model_stat list;
}

type payload =
  | Model_info of model_info
  | Lump_result of lump_result
  | Sweep_result of sweep_result
  | Solve_result of solve_result
  | Stats_result of stats_result
  | Pong
  | Shutdown_ack of { draining : bool }

type response = {
  resp_id : string option;
  resp_trace : trace_rollup option;
      (** present exactly when the request set [rq_trace]; carries the
          server-assigned request id and the span rollup *)
  resp_body : (payload, error_code * string) result;
      (** [Error (code, message)]: [message] is human-oriented detail,
          [code] is the contract *)
}

(** {2 Codec} *)

val error_code_string : error_code -> string
(** The wire name, e.g. ["queue_full"]. *)

val verb_name : verb -> string
(** The wire name of a verb, e.g. ["submit-model"] — also the [verb]
    key of the server's per-verb metric families and {!verb_stat}s. *)

val error_code_of_string : string -> error_code option

val family_string : family -> string

val family_of_string : string -> family option

val solver_string : solver -> string

val solver_of_string : string -> solver option

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, error_code * string) result
(** Unknown members are ignored; missing/ill-typed required members are
    [`Bad_request]; an unrecognised ["verb"] is [`Unknown_verb]; ["v"]
    above {!version} is [`Unsupported_version]. *)

val request_of_string : string -> (request, error_code * string) result
(** Parse then decode; JSON-level failure is [`Parse_error]. *)

val response_to_json : response -> Json.t

val response_of_json : Json.t -> (response, string) result
(** Client-side decoding (used by {!Client}, the tests and the bench). *)

val response_of_string : string -> (response, string) result

(** {2 Framing} *)

val max_frame_default : int
(** Default payload-size ceiling, 16 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes.
    @raise Unix.Unix_error as [Unix.write] (e.g. [EPIPE]). *)

val frame_string : string -> string
(** The exact bytes {!write_frame} sends — for tests and non-[Unix]
    transports. *)

type reader
(** Buffered frame reader over one socket; owns read-side state only
    (never closes the descriptor). *)

type frame_error =
  | Eof  (** peer closed cleanly between frames *)
  | Truncated  (** peer closed mid-frame *)
  | Oversized of int  (** declared length beyond the reader's ceiling *)
  | Malformed of string  (** unparsable length prefix or missing terminator *)
  | Stopped  (** the [stop] poll asked the read loop to give up (drain) *)

val reader : ?max_frame:int -> Unix.file_descr -> reader

val read_frame : ?stop:(unit -> bool) -> reader -> (string, frame_error) result
(** Read the next payload.  Blocks in [select]-bounded slices so a
    [stop] condition (server drain) is noticed within ~0.2 s even on an
    idle connection. *)

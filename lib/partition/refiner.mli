(** The generic partition-refinement engine of Figure 1 (procedure
    [CompLumping]), parameterised by the key function [K].

    The engine refines an initial partition until every class is
    key-constant with respect to every class used as a splitter.  The
    key abstraction is exactly the paper's [K(R, s, C)] — "by choosing K
    appropriately, we can customize the algorithm to compute partitions
    that satisfy a set of desired conditions": flat ordinary lumping
    uses [R(s, C)], flat exact lumping uses [R(C, s)], and the MD-local
    variants use formal sums of [(coefficient, node)] pairs.

    Rather than computing [K] for every state of [S] (Figure 1 line 5),
    the engine asks only for the states with a key different from the
    zero key — for row/column-sum keys those are the (predecessor /
    successor) states of the splitter — and groups the remaining states
    of each class implicitly.

    The implementation is the in-place core of the optimal state-level
    algorithm of Derisavi, Hermanns & Sanders [9]: classes are
    contiguous slices of one permutation array ({!Partition}), a split
    moves only the touched states, and the worklist holds class ids
    driven by the {e process-all-but-the-largest-sub-block} rule — when
    a class not pending as a splitter is split, all sub-blocks except
    the largest join the worklist; when a pending splitter is split, all
    its sub-blocks stay pending.

    {b Key additivity.}  The largest-sub-block skip is sound only when
    keys are additive over disjoint unions of splitters,
    [K(s, B1 union B2) = K(s, B1) + K(s, B2)] (with [key_compare]
    respecting sums): stability against a parent block and all but one
    sub-block then implies stability against the remaining one.  Every
    key in this repository — row/column rate sums, formal sums, expanded
    matrices — is a sum over splitter members, so this holds by
    construction; a hypothetical non-additive key (e.g. a max) would
    need the exhaustive engine of {!Refiner_reference}. *)

type 'k spec = {
  size : int;  (** number of states *)
  key_compare : 'k -> 'k -> int;
      (** total order on keys; [0] means equal.  Beware using tolerant
          float comparison here: {!Mdl_util.Floatx.compare_approx} is
          not transitive, so grouping with it depends on input order —
          quantize float keys ({!Mdl_util.Floatx.quantize}) and compare
          exactly instead.  States of a class are grouped by runs of
          equal keys. *)
  splitter_keys : int array -> (int * 'k) list;
      (** [splitter_keys c] lists [(s, K(s, C))] for every state [s]
          whose key w.r.t. splitter class [C] (given by its elements)
          is different from the zero key.  States not listed are treated
          as sharing the common zero key.  Must not list a state
          twice. *)
}

type stats = {
  mutable splitter_passes : int;  (** worklist pops (splitters processed) *)
  mutable key_evals : int;  (** (state, key) pairs returned by [splitter_keys] *)
  mutable splits : int;  (** classes actually split *)
  mutable blocks_created : int;  (** new class ids allocated by splits *)
  mutable largest_skips : int;
      (** splits whose largest sub-block was exempted from the worklist *)
  mutable wall_s : float;  (** monotonic wall time spent in [comp_lumping] *)
}
(** Observability counters for one or more [comp_lumping] runs. *)

val create_stats : unit -> stats
(** A fresh all-zero counter record. *)

val add_stats : stats -> stats -> unit
(** [add_stats dst src] accumulates [src] into [dst] (counters add,
    wall times add). *)

val pp_stats : Format.formatter -> stats -> unit

val comp_lumping : ?stats:stats -> 'k spec -> initial:Partition.t -> Partition.t
(** [comp_lumping spec ~initial] returns the coarsest refinement of
    [initial] that is stable under [spec.splitter_keys] splitting (the
    input partition is not mutated).  When [stats] is given, the run's
    counters and wall time are {e added} onto it (so one record can
    aggregate several calls).  Termination: a class re-enters the
    worklist only when freshly created by a split, and partitions only
    ever get finer. @raise Invalid_argument if [initial] is not over
    [spec.size] states. *)

val is_stable : 'k spec -> Partition.t -> bool
(** [is_stable spec p] checks directly that every class of [p] is
    key-constant w.r.t. every class of [p] as splitter — the
    post-condition of {!comp_lumping}, used by tests. *)

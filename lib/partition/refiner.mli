(** The generic partition-refinement engine of Figure 1 (procedure
    [CompLumping]), parameterised by the key function [K].

    The engine refines an initial partition until every class is
    key-constant with respect to every class used as a splitter.  The
    key abstraction is exactly the paper's [K(R, s, C)] — "by choosing K
    appropriately, we can customize the algorithm to compute partitions
    that satisfy a set of desired conditions": flat ordinary lumping
    uses [R(s, C)], flat exact lumping uses [R(C, s)], and the MD-local
    variants use formal sums of [(coefficient, node)] pairs.

    Rather than computing [K] for every state of [S] (Figure 1 line 5),
    the engine asks only for the states with a key different from the
    zero key — for row/column-sum keys those are the (predecessor /
    successor) states of the splitter — and groups the remaining states
    of each class implicitly.

    The implementation is the in-place core of the optimal state-level
    algorithm of Derisavi, Hermanns & Sanders [9]: classes are
    contiguous slices of one permutation array ({!Partition}), a split
    moves only the touched states, and the worklist holds class ids
    driven by the {e process-all-but-the-largest-sub-block} rule — when
    a class not pending as a splitter is split, all sub-blocks except
    the largest join the worklist; when a pending splitter is split, all
    its sub-blocks stay pending.

    {b Key pipelines.}  The same core runs behind three key pipelines:

    - the {b generic} pipeline ({!comp_lumping} over an ['k spec]) —
      polymorphic keys through a closure, an intermediate
      [(state, key) list] and a comparison sort.  The fallback, and the
      differential baseline for the other two;
    - the {b monomorphic float} pipeline ({!comp_lumping_float}) — flat
      row/column-sum keys written into reusable unboxed scratch buffers
      ({!float_buf}), quantized inline ({!Mdl_util.Floatx.quantize}) and
      sorted by a fused three-array merge: no list, no boxed float, no
      comparator closure;
    - the {b interned-key} pipeline ({!comp_lumping_interned}) — each
      distinct (pre-quantized) key is hash-consed to a dense integer
      rank per pass ({!type:intern_table}), so key comparison collapses to
      integer compare; when the rank alphabet is small relative to the
      pass ({!use_counting_sort}) the (class, rank) pairs are
      counting-sorted in O(m + alphabet) instead of comparison-sorted.

    All three compute the identical coarsest stable refinement (pinned
    by differential property tests); {!run} dispatches a {!packed} spec
    to its pipeline.

    {b Key additivity.}  The largest-sub-block skip is sound only when
    keys are additive over disjoint unions of splitters,
    [K(s, B1 union B2) = K(s, B1) + K(s, B2)] (with [key_compare]
    respecting sums): stability against a parent block and all but one
    sub-block then implies stability against the remaining one.  Every
    key in this repository — row/column rate sums, formal sums, expanded
    matrices — is a sum over splitter members, so this holds by
    construction; a hypothetical non-additive key (e.g. a max) would
    need the exhaustive engine of {!Refiner_reference}. *)

val log_src : Logs.src
(** The engine's [Logs] source, [mdl.refine] — one per-run stats
    summary at debug level per pipeline run.  Level setup is shared
    across binaries via [Mdl_obs.Logging.setup]. *)

type slice = int array * int * int
(** A zero-copy class view as returned by {!Partition.view}:
    [(perm, first, len)] — the members are
    [perm.(first) .. perm.(first + len - 1)].  Valid only for the
    duration of one [splitter_keys] call (the next split invalidates
    it); must not be mutated. *)

type 'k spec = {
  size : int;  (** number of states *)
  key_compare : 'k -> 'k -> int;
      (** total order on keys; [0] means equal.  Beware using tolerant
          float comparison here: {!Mdl_util.Floatx.compare_approx} is
          not transitive, so grouping with it depends on input order —
          quantize float keys ({!Mdl_util.Floatx.quantize}) and compare
          exactly instead.  States of a class are grouped by runs of
          equal keys. *)
  splitter_keys : slice -> (int * 'k) list;
      (** [splitter_keys c] lists [(s, K(s, C))] for every state [s]
          whose key w.r.t. splitter class [C] (given as a zero-copy
          {!slice} of its elements) is different from the zero key.
          States not listed are treated as sharing the common zero key.
          Must not list a state twice. *)
}

type stats = {
  mutable splitter_passes : int;  (** worklist pops (splitters processed) *)
  mutable key_evals : int;  (** (state, key) pairs returned by [splitter_keys] *)
  mutable splits : int;  (** classes actually split *)
  mutable blocks_created : int;  (** new class ids allocated by splits *)
  mutable largest_skips : int;
      (** splits whose largest sub-block was exempted from the worklist *)
  mutable float_passes : int;  (** passes through the monomorphic float pipeline *)
  mutable interned_passes : int;  (** passes through the interned-key pipeline *)
  mutable counting_sort_passes : int;
      (** interned passes that counting-sorted (vs the fused comparison
          sort); always [<= interned_passes] *)
  mutable fallback_passes : int;  (** passes through the generic fallback pipeline *)
  mutable intern_keys : int;
      (** largest interned-key alphabet (distinct keys) seen in any one
          pass; [add_stats] takes the max, not the sum *)
  mutable cache_hits : int;
      (** splitter passes answered from the key cache — filled in by
          {!Mdl_core.Key_cache} users (the engine itself never caches) *)
  mutable cache_misses : int;
      (** splitter passes whose keys were freshly evaluated under a key
          cache — filled in by {!Mdl_core.Key_cache} users *)
  mutable nodes_rebuilt : int;
      (** lumped-diagram nodes reconstructed entry-by-entry during the
          rebuild — filled in by {!Mdl_core.Compositional} *)
  mutable nodes_reused : int;
      (** lumped-diagram nodes reused structurally (verbatim import or
          whole-diagram aliasing on identity partitions) — filled in by
          {!Mdl_core.Compositional} *)
  mutable wall_s : float;  (** monotonic wall time spent refining *)
}
(** Observability counters for one or more refinement runs, including
    the per-pipeline breakdown ([splitter_passes = float_passes +
    interned_passes + fallback_passes] for runs through this module).
    The [cache_*] / [nodes_*] counters belong to the layers above the
    engine (splitter-key memoisation, incremental diagram rebuild); they
    live here so one record travels through
    [Mdl_core.Compositional.lump] and out of [lumpmd --stats].

    This record is the {e per-run compatibility view} of the registry
    metrics: every pipeline run also publishes the same counters
    cumulatively into [Mdl_obs.Metrics] under the [refiner.*] names
    (when the registry is enabled), plus per-pass latency histograms
    ([refiner.pass_seconds], [refiner.sort_seconds], [refiner.pass_keys])
    the record cannot express; with tracing on, each run emits a
    [refine.run] span containing one [refine.pass] span per worklist
    pop.  The differential suites pin the two views equal. *)

val create_stats : unit -> stats
(** A fresh all-zero counter record. *)

val add_stats : stats -> stats -> unit
(** [add_stats dst src] accumulates [src] into [dst] (counters add,
    wall times add, [intern_keys] takes the max). *)

val pp_stats : Format.formatter -> stats -> unit

type on_split = parent:int -> ids:int list -> unit
(** Split-trace callback: invoked once per actual split, {e after} the
    partition has been updated, with the id kept by the parent class and
    the full list of post-split sub-block ids ([parent] first, as
    returned by {!Partition.split_runs}).  The callback observes the
    refiner's working partition mid-run; it must not retain the slice
    views.  Used by {!Mdl_core.Key_cache} to account invalidations and
    by {!Mdl_core.Compositional} to know which classes the final
    partition owes to an actual split. *)

val comp_lumping :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?stats:stats ->
  ?on_split:on_split ->
  'k spec ->
  initial:Partition.t ->
  Partition.t
(** [comp_lumping spec ~initial] returns the coarsest refinement of
    [initial] that is stable under [spec.splitter_keys] splitting (the
    input partition is not mutated; the result is an id-preserving
    {!Partition.copy} refined in place, so when no split fires the
    output has the same class ids and member order as [initial]).  When
    [stats] is given, the run's counters and wall time are {e added}
    onto it (so one record can aggregate several calls); [on_split]
    exports the split trace.  Termination: a class re-enters the
    worklist only when freshly created by a split, and partitions only
    ever get finer.  [tctx] records the run's spans into that explicit
    {!Mdl_obs.Trace.Ctx.t} instead of the caller's current context.
    @raise Invalid_argument if [initial] is not over
    [spec.size] states. *)

(** {2 Monomorphic float pipeline} *)

type float_buf
(** Reusable scratch holding the [(state, key)] pairs of one float-keyed
    splitter pass in parallel unboxed arrays. *)

val emit : float_buf -> int -> float -> unit
(** [emit buf s k] appends the pair [(s, k)] — the float-pipeline
    equivalent of consing onto the generic [splitter_keys] result.  Keys
    are emitted {e raw}; the engine quantizes them inline. *)

type float_spec = {
  fsize : int;  (** number of states *)
  feps : float option;
      (** quantization tolerance applied inline to every emitted key
          ([None] = {!Mdl_util.Floatx.default_eps}) *)
  fsplitter_keys : slice -> float_buf -> unit;
      (** same contract as the generic [splitter_keys], emitting into
          the engine's scratch buffer instead of building a list *)
}

val comp_lumping_float :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?stats:stats ->
  ?on_split:on_split ->
  float_spec ->
  initial:Partition.t ->
  Partition.t
(** {!comp_lumping} through the allocation-free float pipeline: same
    fixed point as the generic engine over the spec
    [{ key_compare = Float.compare on quantized keys; ... }]. *)

(** {2 Interned-key pipeline} *)

type 'k intern_table
(** A hash-consing table mapping distinct keys to dense integer ranks
    [0, 1, 2, ..] in order of first appearance.  The table is cleared
    at the start of every splitter pass but its storage is reused, so
    one table can (and should) be shared across all the refinement runs
    of a fixed-point iteration — e.g. every per-node run of
    [CompLumpingLevel]. *)

val intern_table :
  hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> 'k intern_table
(** [hash]/[equal] must agree ([equal a b] implies [hash a = hash b])
    and [equal] must be the same equivalence [key_compare ... = 0] of
    the generic spec being specialised — for float-coefficient keys that
    means {e quantize before interning} (see {!Mdl_core.Local_key}). *)

val intern_table_size : 'k intern_table -> int
(** High-water number of distinct keys interned in any single pass so
    far — the alphabet size the counting-sort decision is based on. *)

val intern : 'k intern_table -> 'k -> int
(** The rank of a key: its existing rank if already present, else the
    next dense integer.  The engine calls this internally on [itable];
    it is exposed so a table {e not} used as an [itable] can serve as a
    persistent hash-cons with stable ids — {!Mdl_core.Key_cache} interns
    each key once globally this way and re-ranks the resulting ids per
    pass through a cheap identity-hash [int intern_table]. *)

type 'k interned_spec = {
  isize : int;  (** number of states *)
  itable : 'k intern_table;  (** shared, reusable interning table *)
  isplitter_keys : slice -> (int * 'k) list;
      (** same contract as the generic [splitter_keys]; keys must
          already be quantized/canonical so that the table's structural
          [equal] coincides with lumping-key equality *)
}

val comp_lumping_interned :
  ?stats:stats ->
  ?on_split:on_split ->
  'k interned_spec ->
  initial:Partition.t ->
  Partition.t
(** {!comp_lumping} through the interned-key pipeline: each pass interns
    the keys to ranks, then orders the (class, rank, state) triples by
    counting sort when {!use_counting_sort} says the alphabet is small
    enough, by fused integer comparison sort otherwise. *)

(** {2 Ranked pipeline} *)

type ranked_spec = {
  rsize : int;  (** number of states *)
  rsplitter_keys : slice -> int array * int array;
      (** parallel (states, key ids) arrays for one splitter pass: keys
          already hash-consed to integers whose equality coincides with
          lumping-key equality (e.g. the stable gids of
          {!Mdl_core.Key_cache}).  The arrays are read within the pass
          only — the caller may reuse or share them. *)
}

val comp_lumping_ranked :
  ?stats:stats ->
  ?on_split:on_split ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  ranked_spec ->
  initial:Partition.t ->
  Partition.t
(** The interned-key pipeline for producers whose keys are {e already}
    integers: per-pass dense ranks come from a stamped array lookup per
    pair instead of a hash-table probe, and the pair arrays are blitted
    into the sort scratch rather than traversed as a list.  This is the
    engine under the memoised splitter-key cache, where a cache hit
    replays a previously interned row list; counters are reported as
    interned passes ([interned_passes], [counting_sort_passes],
    [intern_keys]), so cached and uncached runs stay comparable.

    [pool] shards the per-pass class lookups ([Partition.class_of] into
    disjoint scratch slots — pure reads, placement-independent writes)
    across the pool's domains when a pass has at least [par_threshold]
    pairs (default [8192]).  Rank assignment, sorting and the split
    scan stay sequential — ranks are first-appearance-ordered, which is
    exactly what makes the result independent of gid numbering — so the
    computed partition, split order and every counter are identical
    with or without a pool. *)

val use_counting_sort : m:int -> alphabet:int -> bool
(** The counting-sort threshold: true when a pass of [m] pairs over
    [alphabet] distinct key ranks is cheaper to counting-sort
    (O(m + alphabet), two stable scatter passes plus bucket resets) than
    to comparison-sort (O(m log m)).  Requires keys to actually repeat
    ([2 * alphabet <= m]) and the pass not to be tiny ([m >= 16]).
    Exposed for the threshold-selection unit tests. *)

(** {2 Pipeline selection} *)

type packed =
  | Spec : 'k spec -> packed
  | Float_spec : float_spec -> packed
  | Interned_spec : 'k interned_spec -> packed
      (** A refinement spec packed with its pipeline choice; lets
          callers carry "which engine" as a value. *)

val run :
  ?stats:stats -> ?on_split:on_split -> packed -> initial:Partition.t -> Partition.t
(** Dispatch to {!comp_lumping} / {!comp_lumping_float} /
    {!comp_lumping_interned}. *)

val is_stable : 'k spec -> Partition.t -> bool
(** [is_stable spec p] checks directly that every class of [p] is
    key-constant w.r.t. every class of [p] as splitter — the
    post-condition of the [comp_lumping] family, used by tests. *)

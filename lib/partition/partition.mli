(** Refinable partitions of [{0, .., n-1}].

    The central data structure of all lumping algorithms in this
    repository: a partition of a state space into equivalence classes,
    supporting class lookup in O(1) and in-place splitting of a class
    into groups.  Class ids are dense integers [0 .. num_classes-1];
    splitting reuses the split class's id for one sub-block and
    allocates fresh ids for the rest, so existing ids never dangle
    (they may shrink).

    Representation: all elements live in a single permutation array in
    which every class is a contiguous slice ([first]/[len] per class),
    with the inverse permutation kept alongside.  Splitting therefore
    moves only the elements being split off (a swap each),
    {!representative} is one array read, and {!view}/{!iter_class}
    expose class members with zero copying — the layout the refinement
    engine's O(m log n) bound relies on. *)

type t

val trivial : int -> t
(** [trivial n] is the one-class partition of [{0..n-1}] ([n >= 0]);
    with [n = 0] the partition has no class. *)

val discrete : int -> t
(** [discrete n] is the all-singletons partition. *)

val copy : t -> t
(** [copy t] is an independent partition with exactly the same classes,
    class ids {e and} internal member order as [t]: splitting the copy
    never affects the original (and vice versa), and representatives /
    slice layouts coincide until the first divergent split.  Unlike
    rebuilding through {!of_class_assignment} — which renumbers classes
    by first appearance and re-sorts the permutation — [copy] preserves
    identities, which is what lets the splitter-key cache
    ({!Mdl_core.Key_cache}) recognise unchanged classes across
    successive refinement runs of a fixed point. *)

val of_class_assignment : int array -> t
(** [of_class_assignment a] builds the partition where element [i]
    belongs to class [a.(i)].  Class labels may be arbitrary ints; they
    are renumbered densely in order of first appearance.
    @raise Invalid_argument on negative labels. *)

val group_by : int -> (int -> 'k) -> ('k -> 'k -> int) -> t
(** [group_by n key cmp] partitions [{0..n-1}] into classes of equal
    [key] (equality judged by [cmp] returning 0), the coarsest partition
    for which [key] is class-constant.  Used to build the initial
    partitions [P_ini] of the lumping algorithms.  [cmp] must be a total
    order — for tolerant float keys pass them through
    {!Mdl_util.Floatx.quantize} and compare exactly, not through the
    non-transitive [compare_approx]. *)

val size : t -> int
(** Number of elements [n]. *)

val num_classes : t -> int

val class_of : t -> int -> int
(** [class_of t x] is the id of the class containing element [x]. *)

val elements : t -> int -> int array
(** [elements t c] is a fresh array of the members of class [c] (in no
    particular order). @raise Invalid_argument for an invalid id. *)

val view : t -> int -> int array * int * int
(** [view t c] is [(perm, first, len)]: the members of class [c] are
    [perm.(first) .. perm.(first + len - 1)] — a zero-copy slice view of
    the partition's internal permutation.  The returned array must not
    be mutated, and the view is invalidated by the next {!split} /
    {!split_runs} touching any class. *)

val iter_class : (int -> unit) -> t -> int -> unit
(** [iter_class f t c] applies [f] to each member of class [c], without
    allocating. *)

val class_size : t -> int -> int

val representative : t -> int -> int
(** An arbitrary (but stable between splits) member of class [c]; O(1). *)

val split : t -> int -> int array list -> int list
(** [split t c groups] splits class [c] into the given groups, which
    must be a disjoint cover of [elements t c] with no empty group.
    Returns the class ids of the groups, in order ([c] first when more
    than one group; if [groups] has a single group this is a no-op
    returning [\[c\]]).  The general, fully validating entry point; the
    refinement engine uses {!split_runs}.
    @raise Invalid_argument if the groups do not exactly cover [c]. *)

val split_runs :
  t -> int -> members:int array -> bounds:int array -> nruns:int -> int list
(** [split_runs t c ~members ~bounds ~nruns] is the refiner's fast
    split: [members.(bounds.(r)) .. members.(bounds.(r+1) - 1)] for
    [r < nruns] are [nruns] disjoint, non-empty key-groups of members of
    [c] ([bounds.(0) = 0]); members of [c] not listed form an implicit
    extra group (the refiner's zero-key states).  Cost is
    O(listed members), independent of [|c|].  Returns the sub-block ids
    in slice order with [c] first; [c] is kept by the implicit group
    when it is non-empty (so unlisted members are not even relabelled),
    otherwise by the first run.  A no-op returning [\[c\]] when one run
    covers the whole class.
    @raise Invalid_argument on malformed bounds, elements outside [c],
    or duplicate members. *)

val refine_class_by : t -> int -> (int -> 'k) -> ('k -> 'k -> int) -> int list
(** [refine_class_by t c key cmp] splits class [c] into maximal groups
    of [cmp]-equal keys; convenience wrapper over {!split}. *)

val is_refinement_of : t -> t -> bool
(** [is_refinement_of fine coarse] — every class of [fine] is contained
    in a class of [coarse]. *)

val equal : t -> t -> bool
(** Same classes (regardless of numbering). *)

val to_class_assignment : t -> int array

val canonical_assignment : t -> int array
(** {!to_class_assignment} with class labels renumbered densely by
    first appearance: {!equal} partitions yield equal arrays whatever
    their internal numbering, so the array is a canonical key for the
    partition's {e class set} — the form the sweep engine's memo tables
    ({!Mdl_core.Compositional.lump_sweep}) key on. *)

val classes : t -> int array array
(** All classes, indexed by class id (fresh arrays). *)

val pp : Format.formatter -> t -> unit

(* The seed's list-based refinement engine, kept verbatim as the
   differential baseline: the property tests pin the fast in-place
   engine ({!Refiner}) to this one's fixed point, and bench/refine
   measures the speedup against it.  Known inefficiencies are the point
   — do not optimise this file. *)

(* Group an association list [(state, key)] into lists of states with
   cmp-equal keys. *)
let group_by_key cmp keyed =
  let arr = Array.of_list keyed in
  let by_key (k1, x1) (k2, x2) =
    let c = cmp k1 k2 in
    if c <> 0 then c else compare x1 x2
  in
  Array.sort (fun (x1, k1) (x2, k2) -> by_key (k1, x1) (k2, x2)) arr;
  let groups = ref [] and current = ref [] in
  Array.iteri
    (fun idx (x, k) ->
      (if idx > 0 then
         let _, prev_k = arr.(idx - 1) in
         if cmp prev_k k <> 0 then begin
           groups := Array.of_list (List.rev !current) :: !groups;
           current := []
         end);
      current := x :: !current)
    arr;
  if !current <> [] then groups := Array.of_list (List.rev !current) :: !groups;
  List.rev !groups

let split_by_splitter (spec : _ Refiner.spec) p splitter worklist =
  let keyed = spec.Refiner.splitter_keys (splitter, 0, Array.length splitter) in
  (* Bucket touched states by their (current) class. *)
  let by_class = Hashtbl.create 16 in
  List.iter
    (fun (s, k) ->
      let c = Partition.class_of p s in
      match Hashtbl.find_opt by_class c with
      | Some b -> b := (s, k) :: !b
      | None -> Hashtbl.add by_class c (ref [ (s, k) ]))
    keyed;
  let affected = Hashtbl.fold (fun c b acc -> (c, !b) :: acc) by_class [] in
  List.iter
    (fun (c, touched) ->
      let touched_set = Hashtbl.create (List.length touched) in
      List.iter (fun (s, _) -> Hashtbl.replace touched_set s ()) touched;
      let untouched =
        Array.to_list (Partition.elements p c)
        |> List.filter (fun s -> not (Hashtbl.mem touched_set s))
      in
      let key_groups = group_by_key spec.Refiner.key_compare touched in
      let groups =
        match untouched with [] -> key_groups | _ -> Array.of_list untouched :: key_groups
      in
      if List.length groups > 1 then begin
        let ids = Partition.split p c groups in
        List.iter (fun id -> Queue.add (Partition.elements p id) worklist) ids
      end)
    affected

let comp_lumping (spec : _ Refiner.spec) ~initial =
  if Partition.size initial <> spec.Refiner.size then
    invalid_arg "Refiner_reference.comp_lumping: partition size mismatch";
  let p = Partition.of_class_assignment (Partition.to_class_assignment initial) in
  let worklist = Queue.create () in
  for c = 0 to Partition.num_classes p - 1 do
    Queue.add (Partition.elements p c) worklist
  done;
  while not (Queue.is_empty worklist) do
    let splitter = Queue.pop worklist in
    split_by_splitter spec p splitter worklist
  done;
  p

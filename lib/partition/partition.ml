module Dynarray = Mdl_util.Dynarray
module Sortx = Mdl_util.Sortx

(* In-place refinable partition: the elements live in one permutation
   array [perm] in which every class is a contiguous slice, described by
   the per-class [first]/[len] tables.  [pos] inverts [perm] so that any
   element can be located — and therefore moved — in O(1), which is what
   makes splitting pointer arithmetic instead of array rebuilding. *)
type t = {
  perm : int array; (* class members, each class a contiguous slice *)
  pos : int array; (* pos.(perm.(i)) = i *)
  class_of : int array; (* element -> class id *)
  first : int Dynarray.t; (* class id -> slice offset in perm *)
  len : int Dynarray.t; (* class id -> slice length *)
}

let size t = Array.length t.perm

let num_classes t = Dynarray.length t.first

let check_class t c fn =
  if c < 0 || c >= num_classes t then
    invalid_arg (Printf.sprintf "Partition.%s: invalid class id %d" fn c)

let class_of t x =
  if x < 0 || x >= size t then invalid_arg "Partition.class_of: element out of bounds";
  t.class_of.(x)

let view t c =
  check_class t c "view";
  (t.perm, Dynarray.get t.first c, Dynarray.get t.len c)

let elements t c =
  check_class t c "elements";
  Array.sub t.perm (Dynarray.get t.first c) (Dynarray.get t.len c)

let iter_class f t c =
  check_class t c "iter_class";
  let first = Dynarray.get t.first c in
  for i = first to first + Dynarray.get t.len c - 1 do
    f t.perm.(i)
  done

let class_size t c =
  check_class t c "class_size";
  Dynarray.get t.len c

let representative t c =
  check_class t c "representative";
  t.perm.(Dynarray.get t.first c)

let trivial n =
  if n < 0 then invalid_arg "Partition.trivial: negative size";
  let first = Dynarray.create () and len = Dynarray.create () in
  if n > 0 then begin
    Dynarray.push first 0;
    Dynarray.push len n
  end;
  {
    perm = Array.init n Fun.id;
    pos = Array.init n Fun.id;
    class_of = Array.make n 0;
    first;
    len;
  }

let discrete n =
  if n < 0 then invalid_arg "Partition.discrete: negative size";
  let first = Dynarray.create () and len = Dynarray.create () in
  for i = 0 to n - 1 do
    Dynarray.push first i;
    Dynarray.push len 1
  done;
  {
    perm = Array.init n Fun.id;
    pos = Array.init n Fun.id;
    class_of = Array.init n Fun.id;
    first;
    len;
  }

(* Build from a dense class assignment by counting sort: one pass to
   count, one to place — no per-class buffers. *)
let of_dense_assignment class_of k =
  let n = Array.length class_of in
  let counts = Array.make (max k 1) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) class_of;
  let first = Array.make (max k 1) 0 in
  let acc = ref 0 in
  for c = 0 to k - 1 do
    first.(c) <- !acc;
    acc := !acc + counts.(c)
  done;
  let cursor = Array.copy first in
  let perm = Array.make n 0 and pos = Array.make n 0 in
  Array.iteri
    (fun x c ->
      let p = cursor.(c) in
      cursor.(c) <- p + 1;
      perm.(p) <- x;
      pos.(x) <- p)
    class_of;
  {
    perm;
    pos;
    class_of;
    first = Dynarray.of_array (Array.sub first 0 k);
    len = Dynarray.of_array (Array.sub counts 0 k);
  }

let copy t =
  {
    perm = Array.copy t.perm;
    pos = Array.copy t.pos;
    class_of = Array.copy t.class_of;
    first = Dynarray.of_array (Dynarray.to_array t.first);
    len = Dynarray.of_array (Dynarray.to_array t.len);
  }

let of_class_assignment a =
  let n = Array.length a in
  let renumber = Hashtbl.create 16 in
  let class_of = Array.make n 0 in
  let k = ref 0 in
  Array.iteri
    (fun i label ->
      if label < 0 then invalid_arg "Partition.of_class_assignment: negative label";
      let c =
        match Hashtbl.find_opt renumber label with
        | Some c -> c
        | None ->
            let c = !k in
            incr k;
            Hashtbl.add renumber label c;
            c
      in
      class_of.(i) <- c)
    a;
  of_dense_assignment class_of !k

(* Group elements of [items] into runs of cmp-equal keys.  Returns the
   groups in key order; within a group the original order is kept (the
   sort is stable and ties broken by position). *)
let group_elements items key cmp =
  let m = Array.length items in
  let keys = Array.map key items in
  let ord = Array.init m Fun.id in
  Sortx.sort_by
    (fun i j ->
      let c = cmp keys.(i) keys.(j) in
      if c <> 0 then c else Int.compare items.(i) items.(j))
    ord;
  let groups = ref [] and current = ref [] in
  for r = m - 1 downto 0 do
    let i = ord.(r) in
    current := items.(i) :: !current;
    if r = 0 || cmp keys.(ord.(r - 1)) keys.(i) <> 0 then begin
      groups := Array.of_list !current :: !groups;
      current := []
    end
  done;
  !groups

let group_by n key cmp =
  if n < 0 then invalid_arg "Partition.group_by: negative size";
  let groups = group_elements (Array.init n Fun.id) key cmp in
  let class_of = Array.make n 0 in
  let k = ref 0 in
  List.iter
    (fun g ->
      let c = !k in
      incr k;
      Array.iter (fun x -> class_of.(x) <- c) g)
    groups;
  of_dense_assignment class_of !k

(* Move element [x] to slot [q] of [perm], swapping with the occupant. *)
let swap_into t x q =
  let p = t.pos.(x) in
  let y = t.perm.(q) in
  t.perm.(q) <- x;
  t.perm.(p) <- y;
  t.pos.(x) <- q;
  t.pos.(y) <- p

(* Register a fresh class over the slice [off, off+l) and relabel its
   members.  Returns the new id. *)
let push_class t off l =
  let id = Dynarray.length t.first in
  Dynarray.push t.first off;
  Dynarray.push t.len l;
  for p = off to off + l - 1 do
    t.class_of.(t.perm.(p)) <- id
  done;
  id

let split t c groups =
  check_class t c "split";
  let f = Dynarray.get t.first c and l = Dynarray.get t.len c in
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  if total <> l then invalid_arg "Partition.split: groups do not cover the class";
  List.iter
    (fun g ->
      if Array.length g = 0 then invalid_arg "Partition.split: empty group";
      Array.iter
        (fun x ->
          if x < 0 || x >= size t || t.class_of.(x) <> c then
            invalid_arg "Partition.split: element not in class")
        g)
    groups;
  match groups with
  | [] -> invalid_arg "Partition.split: no groups"
  | [ _ ] -> [ c ]
  | groups ->
      (* The count check plus membership makes the groups a cover as
         soon as they are duplicate-free; check that explicitly. *)
      let seen = Hashtbl.create l in
      List.iter
        (Array.iter (fun x ->
             if Hashtbl.mem seen x then invalid_arg "Partition.split: duplicate element";
             Hashtbl.add seen x ()))
        groups;
      (* Rearrange in place: lay the groups out in order from the start
         of the slice, then cut.  The first group keeps id [c]. *)
      let cursor = ref f in
      List.iter
        (Array.iter (fun x ->
             swap_into t x !cursor;
             incr cursor))
        groups;
      let ids = ref [] and off = ref f in
      List.iteri
        (fun gi g ->
          let glen = Array.length g in
          if gi = 0 then Dynarray.set t.len c glen
          else ids := push_class t !off glen :: !ids;
          off := !off + glen)
        groups;
      c :: List.rev !ids

let split_runs t c ~members ~bounds ~nruns =
  check_class t c "split_runs";
  if nruns < 1 || bounds.(0) <> 0 then invalid_arg "Partition.split_runs: bad bounds";
  let f = Dynarray.get t.first c and l = Dynarray.get t.len c in
  let m = bounds.(nruns) in
  if m > l then invalid_arg "Partition.split_runs: more members than the class holds";
  let u = l - m in
  if nruns = 1 && u = 0 then [ c ]
  else begin
    (* Sweep the runs to the back of the slice, last run first, so the
       slice becomes [untouched | run 0 | .. | run nruns-1].  Only the
       touched members move: cost O(m), independent of |c|. *)
    let tail = ref (f + l) in
    for r = nruns - 1 downto 0 do
      if bounds.(r + 1) <= bounds.(r) then invalid_arg "Partition.split_runs: empty run";
      for i = bounds.(r + 1) - 1 downto bounds.(r) do
        let x = members.(i) in
        if x < 0 || x >= size t || t.class_of.(x) <> c then
          invalid_arg "Partition.split_runs: element not in class";
        decr tail;
        if t.pos.(x) > !tail then invalid_arg "Partition.split_runs: duplicate element";
        swap_into t x !tail
      done
    done;
    (* Cut.  With untouched members present they keep id [c] (so only
       the moved members are relabelled); otherwise run 0 keeps it. *)
    let ids = ref [] in
    let base = f + u in
    if u > 0 then begin
      Dynarray.set t.len c u;
      for r = 0 to nruns - 1 do
        ids := push_class t (base + bounds.(r)) (bounds.(r + 1) - bounds.(r)) :: !ids
      done
    end
    else begin
      Dynarray.set t.len c (bounds.(1) - bounds.(0));
      for r = 1 to nruns - 1 do
        ids := push_class t (base + bounds.(r)) (bounds.(r + 1) - bounds.(r)) :: !ids
      done
    end;
    c :: List.rev !ids
  end

let refine_class_by t c key cmp =
  check_class t c "refine_class_by";
  let groups = group_elements (elements t c) key cmp in
  split t c groups

let to_class_assignment t = Array.copy t.class_of

let classes t = Array.init (num_classes t) (fun c -> elements t c)

let canonical_assignment t =
  (* Renumber classes by first appearance so equal partitions get equal
     assignments. *)
  let renumber = Hashtbl.create 16 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt renumber c with
      | Some c' -> c'
      | None ->
          let c' = Hashtbl.length renumber in
          Hashtbl.add renumber c c';
          c')
    t.class_of

let equal t1 t2 =
  size t1 = size t2 && canonical_assignment t1 = canonical_assignment t2

let is_refinement_of fine coarse =
  size fine = size coarse
  &&
  (* Each fine class must be contained in one coarse class. *)
  let ok = ref true in
  for c = 0 to num_classes fine - 1 do
    let target = coarse.class_of.(representative fine c) in
    iter_class (fun x -> if coarse.class_of.(x) <> target then ok := false) fine c
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "{@[";
  for c = 0 to num_classes t - 1 do
    if c > 0 then Format.fprintf ppf ",@ ";
    Format.fprintf ppf "{%s}"
      (String.concat " " (List.map string_of_int (Array.to_list (elements t c))))
  done;
  Format.fprintf ppf "@]}"

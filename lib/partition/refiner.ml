module Dynarray = Mdl_util.Dynarray
module Sortx = Mdl_util.Sortx
module Timer = Mdl_util.Timer

type 'k spec = {
  size : int;
  key_compare : 'k -> 'k -> int;
  splitter_keys : int array -> (int * 'k) list;
}

type stats = {
  mutable splitter_passes : int;
  mutable key_evals : int;
  mutable splits : int;
  mutable blocks_created : int;
  mutable largest_skips : int;
  mutable wall_s : float;
}

let create_stats () =
  {
    splitter_passes = 0;
    key_evals = 0;
    splits = 0;
    blocks_created = 0;
    largest_skips = 0;
    wall_s = 0.0;
  }

let add_stats dst src =
  dst.splitter_passes <- dst.splitter_passes + src.splitter_passes;
  dst.key_evals <- dst.key_evals + src.key_evals;
  dst.splits <- dst.splits + src.splits;
  dst.blocks_created <- dst.blocks_created + src.blocks_created;
  dst.largest_skips <- dst.largest_skips + src.largest_skips;
  dst.wall_s <- dst.wall_s +. src.wall_s

let pp_stats ppf s =
  Format.fprintf ppf
    "passes %d, key evals %d, splits %d, blocks created %d, largest skips %d, %.4fs"
    s.splitter_passes s.key_evals s.splits s.blocks_created s.largest_skips s.wall_s

(* The worklist holds class ids; [in_wl] tracks membership so the
   Derisavi/Hermanns/Sanders bookkeeping can distinguish pending
   splitters (whose sub-blocks must all stay pending) from settled ones
   (whose largest sub-block may be skipped).  An id popped from the
   queue denotes the class's members at pop time, which is exactly the
   replace-parent-by-sub-blocks semantics of the original algorithm. *)
let comp_lumping ?stats spec ~initial =
  if Partition.size initial <> spec.size then
    invalid_arg "Refiner.comp_lumping: partition size mismatch";
  let timer = Timer.start () in
  let st = create_stats () in
  let p = Partition.of_class_assignment (Partition.to_class_assignment initial) in
  let worklist = Queue.create () in
  let in_wl = Dynarray.create () in
  for c = 0 to Partition.num_classes p - 1 do
    Queue.add c worklist;
    Dynarray.push in_wl true
  done;
  (* Scratch reused across splits of one pass. *)
  let bounds = ref (Array.make 8 0) in
  while not (Queue.is_empty worklist) do
    let splitter = Queue.pop worklist in
    Dynarray.set in_wl splitter false;
    st.splitter_passes <- st.splitter_passes + 1;
    let keyed = spec.splitter_keys (Partition.elements p splitter) in
    let m = List.length keyed in
    st.key_evals <- st.key_evals + m;
    if m > 0 then begin
      (* Decorate into parallel arrays and sort indices once by
         (current class, key, state): one sort both buckets the touched
         states by class and groups them by key within each class. *)
      let ts = Array.make m 0 in
      let tk = Array.make m (snd (List.hd keyed)) in
      List.iteri
        (fun i (s, k) ->
          ts.(i) <- s;
          tk.(i) <- k)
        keyed;
      let ord = Array.init m Fun.id in
      Sortx.sort_by
        (fun i j ->
          let c = Int.compare (Partition.class_of p ts.(i)) (Partition.class_of p ts.(j)) in
          if c <> 0 then c
          else
            let c = spec.key_compare tk.(i) tk.(j) in
            if c <> 0 then c else Int.compare ts.(i) ts.(j))
        ord;
      (* Record the class of every touched state before any split
         relabels it. *)
      let tc = Array.map (fun i -> Partition.class_of p ts.(i)) ord in
      let members = Array.map (fun i -> ts.(i)) ord in
      let a = ref 0 in
      while !a < m do
        (* [a, b) = touched states of one class [cc]. *)
        let cc = tc.(!a) in
        let b = ref (!a + 1) in
        while !b < m && tc.(!b) = cc do incr b done;
        let b = !b in
        (* Cut [a, b) into runs of equal keys. *)
        let nruns = ref 1 in
        for i = !a + 1 to b - 1 do
          if spec.key_compare tk.(ord.(i - 1)) tk.(ord.(i)) <> 0 then incr nruns
        done;
        let nruns = !nruns in
        if Array.length !bounds < nruns + 1 then bounds := Array.make (nruns + 1) 0;
        let bnd = !bounds in
        bnd.(0) <- 0;
        let r = ref 0 in
        for i = !a + 1 to b - 1 do
          if spec.key_compare tk.(ord.(i - 1)) tk.(ord.(i)) <> 0 then begin
            incr r;
            bnd.(!r) <- i - !a
          end
        done;
        bnd.(nruns) <- b - !a;
        let touched = b - !a in
        if nruns > 1 || touched < Partition.class_size p cc then begin
          let members = Array.sub members !a touched in
          let ids = Partition.split_runs p cc ~members ~bounds:bnd ~nruns in
          match ids with
          | [ _ ] -> () (* whole class in one run: no split *)
          | ids ->
              st.splits <- st.splits + 1;
              st.blocks_created <- st.blocks_created + List.length ids - 1;
              (* Grow the membership table for the fresh ids. *)
              while Dynarray.length in_wl < Partition.num_classes p do
                Dynarray.push in_wl false
              done;
              if Dynarray.get in_wl cc then
                (* Pending splitter split: its sub-blocks must all stay
                   pending ([cc] already queued; queue the rest). *)
                List.iter
                  (fun id ->
                    if not (Dynarray.get in_wl id) then begin
                      Dynarray.set in_wl id true;
                      Queue.add id worklist
                    end)
                  ids
              else begin
                (* Settled splitter: all sub-blocks but the largest
                   become splitters.  Keys are additive over disjoint
                   splitter unions, so stability against the parent and
                   the small sub-blocks implies it for the largest. *)
                let largest = ref cc and largest_size = ref (-1) in
                List.iter
                  (fun id ->
                    let s = Partition.class_size p id in
                    if s > !largest_size then begin
                      largest := id;
                      largest_size := s
                    end)
                  ids;
                st.largest_skips <- st.largest_skips + 1;
                List.iter
                  (fun id ->
                    if id <> !largest && not (Dynarray.get in_wl id) then begin
                      Dynarray.set in_wl id true;
                      Queue.add id worklist
                    end)
                  ids
              end
        end;
        a := b
      done
    end
  done;
  st.wall_s <- Timer.elapsed_s timer;
  (match stats with Some dst -> add_stats dst st | None -> ());
  p

let is_stable spec p =
  let stable = ref true in
  for splitter = 0 to Partition.num_classes p - 1 do
    let keyed = spec.splitter_keys (Partition.elements p splitter) in
    let key_of = Hashtbl.create 16 in
    List.iter (fun (s, k) -> Hashtbl.replace key_of s k) keyed;
    for c = 0 to Partition.num_classes p - 1 do
      let first = Hashtbl.find_opt key_of (Partition.representative p c) in
      Partition.iter_class
        (fun s ->
          let k = Hashtbl.find_opt key_of s in
          let same =
            match (first, k) with
            | None, None -> true
            | Some k1, Some k2 -> spec.key_compare k1 k2 = 0
            | None, Some _ | Some _, None -> false
          in
          if not same then stable := false)
        p c
    done
  done;
  !stable

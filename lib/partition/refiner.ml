module Dynarray = Mdl_util.Dynarray
module Domain_pool = Mdl_util.Domain_pool
module Sortx = Mdl_util.Sortx
module Timer = Mdl_util.Timer
module Floatx = Mdl_util.Floatx
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics

let log_src = Logs.Src.create "mdl.refine" ~doc:"partition-refinement engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Registry metrics: the cumulative view of the per-run [stats] records
   below.  The int counters are published once per refinement run
   ([publish_stats]); the latency histograms are fed per pass, guarded
   by [Metrics.enabled] so the disabled cost is one branch. *)
let m_pass_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-7 ~hi:1.0 ~per_decade:3)
    "refiner.pass_seconds"

let m_sort_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-7 ~hi:1.0 ~per_decade:3)
    "refiner.sort_seconds"

let m_run_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-6 ~hi:10.0 ~per_decade:3)
    "refiner.run_seconds"

let m_pass_keys =
  Metrics.histogram
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]
    "refiner.pass_keys"

type slice = int array * int * int

type 'k spec = {
  size : int;
  key_compare : 'k -> 'k -> int;
  splitter_keys : slice -> (int * 'k) list;
}

type stats = {
  mutable splitter_passes : int;
  mutable key_evals : int;
  mutable splits : int;
  mutable blocks_created : int;
  mutable largest_skips : int;
  mutable float_passes : int;
  mutable interned_passes : int;
  mutable counting_sort_passes : int;
  mutable fallback_passes : int;
  mutable intern_keys : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable nodes_rebuilt : int;
  mutable nodes_reused : int;
  mutable wall_s : float;
}

let create_stats () =
  {
    splitter_passes = 0;
    key_evals = 0;
    splits = 0;
    blocks_created = 0;
    largest_skips = 0;
    float_passes = 0;
    interned_passes = 0;
    counting_sort_passes = 0;
    fallback_passes = 0;
    intern_keys = 0;
    cache_hits = 0;
    cache_misses = 0;
    nodes_rebuilt = 0;
    nodes_reused = 0;
    wall_s = 0.0;
  }

let add_stats dst src =
  dst.splitter_passes <- dst.splitter_passes + src.splitter_passes;
  dst.key_evals <- dst.key_evals + src.key_evals;
  dst.splits <- dst.splits + src.splits;
  dst.blocks_created <- dst.blocks_created + src.blocks_created;
  dst.largest_skips <- dst.largest_skips + src.largest_skips;
  dst.float_passes <- dst.float_passes + src.float_passes;
  dst.interned_passes <- dst.interned_passes + src.interned_passes;
  dst.counting_sort_passes <- dst.counting_sort_passes + src.counting_sort_passes;
  dst.fallback_passes <- dst.fallback_passes + src.fallback_passes;
  dst.intern_keys <- max dst.intern_keys src.intern_keys;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.cache_misses <- dst.cache_misses + src.cache_misses;
  dst.nodes_rebuilt <- dst.nodes_rebuilt + src.nodes_rebuilt;
  dst.nodes_reused <- dst.nodes_reused + src.nodes_reused;
  dst.wall_s <- dst.wall_s +. src.wall_s

let pp_stats ppf s =
  Format.fprintf ppf
    "passes %d (float %d, interned %d [counting %d], generic %d), key evals %d, splits \
     %d, blocks created %d, largest skips %d, intern alphabet %d, key cache %d/%d \
     hit/miss, nodes %d rebuilt %d reused, %.4fs"
    s.splitter_passes s.float_passes s.interned_passes s.counting_sort_passes
    s.fallback_passes s.key_evals s.splits s.blocks_created s.largest_skips
    s.intern_keys s.cache_hits s.cache_misses s.nodes_rebuilt s.nodes_reused s.wall_s

(* One splitter pass's keyed states after sorting, shared by all three
   pipelines: [pd_states]/[pd_classes] hold the touched states and their
   classes (recorded before any split of this pass relabels them),
   sorted by (class, key, state); [pd_newkey.(i)] marks positions whose
   key differs from position [i-1] (consulted only within one class's
   span, [pd_newkey.(0)] is never read across class boundaries).  The
   arrays are pipeline-owned scratch, valid in positions [0 .. m-1]. *)
type pass_data = {
  mutable pd_states : int array;
  mutable pd_classes : int array;
  mutable pd_newkey : bool array;
}

(* The worklist holds class ids; [in_wl] tracks membership so the
   Derisavi/Hermanns/Sanders bookkeeping can distinguish pending
   splitters (whose sub-blocks must all stay pending) from settled ones
   (whose largest sub-block may be skipped).  An id popped from the
   queue denotes the class's members at pop time, which is exactly the
   replace-parent-by-sub-blocks semantics of the original algorithm.
   [prepare pd p slice] is the pipeline-specific part: evaluate the
   splitter's keys and leave them sorted in [pd], returning the pair
   count.  [on_split] is the split-trace export: called once per actual
   split with the surviving parent id and the full post-split id list.

   The working partition is an id-preserving [Partition.copy] of the
   input, not a renumbering round-trip: class ids and slice layouts are
   stable from one refinement run to the next (until a class itself
   splits), which is the identity the splitter-key cache keys on. *)
let core_body st ~prepare ~on_split ~initial =
  let timer = Timer.start () in
  let p = Partition.copy initial in
  let worklist = Queue.create () in
  let in_wl = Dynarray.create () in
  for c = 0 to Partition.num_classes p - 1 do
    Queue.add c worklist;
    Dynarray.push in_wl true
  done;
  (* Scratch reused across splits of one pass. *)
  let bounds = ref (Array.make 8 0) in
  let pd = { pd_states = [||]; pd_classes = [||]; pd_newkey = [||] } in
  (* Captured once per run: the observability switches are toggled
     between runs, not during one, and a single load per pass keeps the
     disabled path at a branch. *)
  let traced = Trace.enabled () in
  let metered = Metrics.enabled () in
  while not (Queue.is_empty worklist) do
    let splitter = Queue.pop worklist in
    Dynarray.set in_wl splitter false;
    st.splitter_passes <- st.splitter_passes + 1;
    if traced then Trace.begin_span ~cat:"refine" "refine.pass";
    let t0 = if metered then Timer.now_ns () else 0L in
    let m = prepare pd p (Partition.view p splitter) in
    st.key_evals <- st.key_evals + m;
    if m > 0 then begin
      let tc = pd.pd_classes in
      let all_members = pd.pd_states in
      let nk = pd.pd_newkey in
      let a = ref 0 in
      while !a < m do
        (* [a, b) = touched states of one class [cc]. *)
        let cc = tc.(!a) in
        let b = ref (!a + 1) in
        while !b < m && tc.(!b) = cc do incr b done;
        let b = !b in
        (* Cut [a, b) into runs of equal keys. *)
        let nruns = ref 1 in
        for i = !a + 1 to b - 1 do
          if nk.(i) then incr nruns
        done;
        let nruns = !nruns in
        if Array.length !bounds < nruns + 1 then bounds := Array.make (nruns + 1) 0;
        let bnd = !bounds in
        bnd.(0) <- 0;
        let r = ref 0 in
        for i = !a + 1 to b - 1 do
          if nk.(i) then begin
            incr r;
            bnd.(!r) <- i - !a
          end
        done;
        bnd.(nruns) <- b - !a;
        let touched = b - !a in
        if nruns > 1 || touched < Partition.class_size p cc then begin
          let members = Array.sub all_members !a touched in
          let ids = Partition.split_runs p cc ~members ~bounds:bnd ~nruns in
          match ids with
          | [ _ ] -> () (* whole class in one run: no split *)
          | ids ->
              st.splits <- st.splits + 1;
              st.blocks_created <- st.blocks_created + List.length ids - 1;
              (match on_split with
              | Some f -> f ~parent:cc ~ids
              | None -> ());
              (* Grow the membership table for the fresh ids. *)
              while Dynarray.length in_wl < Partition.num_classes p do
                Dynarray.push in_wl false
              done;
              if Dynarray.get in_wl cc then
                (* Pending splitter split: its sub-blocks must all stay
                   pending ([cc] already queued; queue the rest). *)
                List.iter
                  (fun id ->
                    if not (Dynarray.get in_wl id) then begin
                      Dynarray.set in_wl id true;
                      Queue.add id worklist
                    end)
                  ids
              else begin
                (* Settled splitter: all sub-blocks but the largest
                   become splitters.  Keys are additive over disjoint
                   splitter unions, so stability against the parent and
                   the small sub-blocks implies it for the largest. *)
                let largest = ref cc and largest_size = ref (-1) in
                List.iter
                  (fun id ->
                    let s = Partition.class_size p id in
                    if s > !largest_size then begin
                      largest := id;
                      largest_size := s
                    end)
                  ids;
                st.largest_skips <- st.largest_skips + 1;
                List.iter
                  (fun id ->
                    if id <> !largest && not (Dynarray.get in_wl id) then begin
                      Dynarray.set in_wl id true;
                      Queue.add id worklist
                    end)
                  ids
              end
        end;
        a := b
      done
    end;
    if metered then begin
      Metrics.observe m_pass_seconds
        (Int64.to_float (Int64.sub (Timer.now_ns ()) t0) *. 1e-9);
      Metrics.observe m_pass_keys (float_of_int m)
    end;
    if traced then begin
      Trace.add_args [ ("splitter", Trace.Int splitter); ("keys", Trace.Int m) ];
      Trace.end_span "refine.pass"
    end
  done;
  st.wall_s <- st.wall_s +. Timer.elapsed_s timer;
  p

let core st ~fn ~size ~prepare ~on_split ~initial =
  if Partition.size initial <> size then
    invalid_arg (Printf.sprintf "Refiner.%s: partition size mismatch" fn);
  if not (Trace.enabled ()) then core_body st ~prepare ~on_split ~initial
  else
    Trace.with_span ~cat:"refine" ~args:[ ("pipeline", Trace.Str fn) ] "refine.run"
      (fun () ->
        let p = core_body st ~prepare ~on_split ~initial in
        Trace.add_args
          [
            ("passes", Trace.Int st.splitter_passes);
            ("splits", Trace.Int st.splits);
            ("classes", Trace.Int (Partition.num_classes p));
          ];
        p)

let merge_stats stats st =
  match stats with Some dst -> add_stats dst st | None -> ()

(* The registry cells the per-run counters are published into — the
   cumulative face of the same numbers [stats] carries per run. *)
let c_splitter_passes = Metrics.counter "refiner.splitter_passes"

let c_key_evals = Metrics.counter "refiner.key_evals"

let c_splits = Metrics.counter "refiner.splits"

let c_blocks_created = Metrics.counter "refiner.blocks_created"

let c_largest_skips = Metrics.counter "refiner.largest_skips"

let c_float_passes = Metrics.counter "refiner.float_passes"

let c_interned_passes = Metrics.counter "refiner.interned_passes"

let c_counting_sort_passes = Metrics.counter "refiner.counting_sort_passes"

let c_fallback_passes = Metrics.counter "refiner.fallback_passes"

let c_runs = Metrics.counter "refiner.runs"

let g_intern_alphabet = Metrics.gauge "refiner.intern_alphabet"

let publish_stats st =
  if Metrics.enabled () then begin
    Metrics.incr c_runs;
    Metrics.add c_splitter_passes st.splitter_passes;
    Metrics.add c_key_evals st.key_evals;
    Metrics.add c_splits st.splits;
    Metrics.add c_blocks_created st.blocks_created;
    Metrics.add c_largest_skips st.largest_skips;
    Metrics.add c_float_passes st.float_passes;
    Metrics.add c_interned_passes st.interned_passes;
    Metrics.add c_counting_sort_passes st.counting_sort_passes;
    Metrics.add c_fallback_passes st.fallback_passes;
    Metrics.set_max g_intern_alphabet (float_of_int st.intern_keys);
    Metrics.observe m_run_seconds st.wall_s
  end

(* Per-run epilogue shared by the four pipelines: cumulative registry
   publication, debug log, legacy per-run record accumulation. *)
let finish ~fn st stats =
  publish_stats st;
  Log.debug (fun m -> m "%s: %a" fn pp_stats st);
  merge_stats stats st

type on_split = parent:int -> ids:int list -> unit

(* ---- generic (fallback) pipeline ---- *)

let comp_lumping ?tctx ?stats ?on_split spec ~initial =
  Trace.with_ctx_opt tctx @@ fun () ->
  let st = create_stats () in
  let prepare pd p slice =
    st.fallback_passes <- st.fallback_passes + 1;
    let keyed = spec.splitter_keys slice in
    match keyed with
    | [] -> 0
    | (_, k0) :: _ ->
        let m = List.length keyed in
        (* Decorate into parallel arrays and sort indices once by
           (current class, key, state): one sort both buckets the
           touched states by class and groups them by key within each
           class. *)
        let ts = Array.make m 0 in
        let tk = Array.make m k0 in
        List.iteri
          (fun i (s, k) ->
            ts.(i) <- s;
            tk.(i) <- k)
          keyed;
        let ord = Array.init m Fun.id in
        Sortx.sort_by
          (fun i j ->
            let c =
              Int.compare (Partition.class_of p ts.(i)) (Partition.class_of p ts.(j))
            in
            if c <> 0 then c
            else
              let c = spec.key_compare tk.(i) tk.(j) in
              if c <> 0 then c else Int.compare ts.(i) ts.(j))
          ord;
        if Array.length pd.pd_states < m then begin
          let cap = max m (2 * Array.length pd.pd_states) in
          pd.pd_states <- Array.make cap 0;
          pd.pd_classes <- Array.make cap 0;
          pd.pd_newkey <- Array.make cap true
        end;
        for i = 0 to m - 1 do
          let s = ts.(ord.(i)) in
          pd.pd_states.(i) <- s;
          pd.pd_classes.(i) <- Partition.class_of p s
        done;
        pd.pd_newkey.(0) <- true;
        for i = 1 to m - 1 do
          pd.pd_newkey.(i) <- spec.key_compare tk.(ord.(i - 1)) tk.(ord.(i)) <> 0
        done;
        m
  in
  let p = core st ~fn:"comp_lumping" ~size:spec.size ~prepare ~on_split ~initial in
  finish ~fn:"comp_lumping" st stats;
  p

(* ---- monomorphic float pipeline ---- *)

type float_buf = {
  mutable fb_states : int array;
  mutable fb_keys : float array;
  mutable fb_len : int;
}

let[@inline] emit buf s k =
  let i = buf.fb_len in
  if i = Array.length buf.fb_states then begin
    let cap = max 64 (2 * i) in
    let states = Array.make cap 0 in
    let keys = Array.make cap 0.0 in
    Array.blit buf.fb_states 0 states 0 i;
    Array.blit buf.fb_keys 0 keys 0 i;
    buf.fb_states <- states;
    buf.fb_keys <- keys
  end;
  buf.fb_states.(i) <- s;
  buf.fb_keys.(i) <- k;
  buf.fb_len <- i + 1

type float_spec = {
  fsize : int;
  feps : float option;
  fsplitter_keys : slice -> float_buf -> unit;
}

let comp_lumping_float ?tctx ?stats ?on_split fspec ~initial =
  Trace.with_ctx_opt tctx @@ fun () ->
  let st = create_stats () in
  let buf = { fb_states = [||]; fb_keys = [||]; fb_len = 0 } in
  let cls = ref [||] in
  let nk = ref [||] in
  let eps = fspec.feps in
  let prepare pd p slice =
    st.float_passes <- st.float_passes + 1;
    buf.fb_len <- 0;
    fspec.fsplitter_keys slice buf;
    let m = buf.fb_len in
    if m > 0 then begin
      let states = buf.fb_states in
      let keys = buf.fb_keys in
      (* Quantize inline: grouping happens on the deterministic grid
         representative, never on a non-transitive tolerant compare. *)
      for i = 0 to m - 1 do
        keys.(i) <- Floatx.quantize ?eps keys.(i)
      done;
      if Array.length !cls < Array.length states then begin
        cls := Array.make (Array.length states) 0;
        nk := Array.make (Array.length states) true
      end;
      let cls = !cls in
      for i = 0 to m - 1 do
        cls.(i) <- Partition.class_of p states.(i)
      done;
      (* Fused sort over the scratch buffers themselves. *)
      Sortx.sort_runs_float ~cls ~keys ~states m;
      let nk = !nk in
      nk.(0) <- true;
      for i = 1 to m - 1 do
        nk.(i) <- keys.(i - 1) <> keys.(i)
      done;
      pd.pd_states <- states;
      pd.pd_classes <- cls;
      pd.pd_newkey <- nk
    end;
    m
  in
  let p = core st ~fn:"comp_lumping_float" ~size:fspec.fsize ~prepare ~on_split ~initial in
  finish ~fn:"comp_lumping_float" st stats;
  p

(* ---- interned-key pipeline ---- *)

type 'k intern_table = {
  it_hash : 'k -> int;
  it_equal : 'k -> 'k -> bool;
  mutable it_buckets : (int * 'k * int) list array; (* (hash, key, rank) *)
  mutable it_used : int list; (* non-empty bucket indices, for O(distinct) clears *)
  mutable it_count : int;
  mutable it_hwm : int;
}

let intern_table ~hash ~equal () =
  {
    it_hash = hash;
    it_equal = equal;
    it_buckets = Array.make 256 [];
    it_used = [];
    it_count = 0;
    it_hwm = 0;
  }

let intern_table_size t = max t.it_hwm t.it_count

let intern_clear t =
  if t.it_count > t.it_hwm then t.it_hwm <- t.it_count;
  List.iter (fun b -> t.it_buckets.(b) <- []) t.it_used;
  t.it_used <- [];
  t.it_count <- 0

let intern_grow t =
  let cap = 2 * Array.length t.it_buckets in
  let buckets = Array.make cap [] in
  let used = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun ((h, _, _) as entry) ->
          let b' = h land (cap - 1) in
          if buckets.(b') = [] then used := b' :: !used;
          buckets.(b') <- entry :: buckets.(b'))
        t.it_buckets.(b))
    t.it_used;
  t.it_buckets <- buckets;
  t.it_used <- !used

(* Rank of [k]: existing rank if interned this pass, else the next
   dense integer. *)
let intern t k =
  if t.it_count >= Array.length t.it_buckets then intern_grow t;
  let h = t.it_hash k land max_int in
  let b = h land (Array.length t.it_buckets - 1) in
  let rec find = function
    | [] ->
        let r = t.it_count in
        if t.it_buckets.(b) = [] then t.it_used <- b :: t.it_used;
        t.it_buckets.(b) <- (h, k, r) :: t.it_buckets.(b);
        t.it_count <- r + 1;
        r
    | (h', k', r) :: rest -> if h' = h && t.it_equal k k' then r else find rest
  in
  find t.it_buckets.(b)

type 'k interned_spec = {
  isize : int;
  itable : 'k intern_table;
  isplitter_keys : slice -> (int * 'k) list;
}

(* Counting sort costs two stable scatter passes plus O(alphabet)
   bucket resets; it wins when keys actually repeat and the pass is not
   tiny.  With no repetition (alphabet ~ m) the fused comparison sort's
   cache behaviour wins despite the log factor. *)
let use_counting_sort ~m ~alphabet = m >= 16 && 2 * alphabet <= m

let ensure_int r n =
  if Array.length !r < n then r := Array.make (max n (2 * Array.length !r)) 0

(* Scratch shared by the interned and ranked pipelines: parallel
   (state, rank, class) triples plus a ping buffer for the two
   counting-sort scatter passes. *)
type indexed_scratch = {
  a_states : int array ref;
  a_ranks : int array ref;
  a_cls : int array ref;
  b_states : int array ref;
  b_ranks : int array ref;
  b_cls : int array ref;
  nk : bool array ref;
  rank_counts : int array ref;
  dense_counts : int array ref;
  class_remap : int array;
      (* class id -> dense first-seen id during one counting pass;
         entries are reset to -1 for exactly the touched classes
         afterwards *)
}

let indexed_scratch ~size =
  {
    a_states = ref [||];
    a_ranks = ref [||];
    a_cls = ref [||];
    b_states = ref [||];
    b_ranks = ref [||];
    b_cls = ref [||];
    nk = ref [||];
    rank_counts = ref [||];
    dense_counts = ref [||];
    class_remap = Array.make (max size 1) (-1);
  }

let ensure_indexed sc m =
  ensure_int sc.a_states m;
  ensure_int sc.a_ranks m;
  ensure_int sc.a_cls m;
  if Array.length !(sc.nk) < m then
    sc.nk := Array.make (max m (2 * Array.length !(sc.nk))) true

(* Order this pass's m filled triples by (class, rank) — counting sort
   when the rank alphabet is small enough, fused comparison sort
   otherwise — and publish the runs to the core's pass data. *)
let sort_indexed st sc pd ~m ~alphabet =
  if alphabet > st.intern_keys then st.intern_keys <- alphabet;
  let metered = Metrics.enabled () in
  let t0 = if metered then Timer.now_ns () else 0L in
  let sa = !(sc.a_states) and ra = !(sc.a_ranks) and ca = !(sc.a_cls) in
  let class_remap = sc.class_remap in
  (if use_counting_sort ~m ~alphabet then begin
        st.counting_sort_passes <- st.counting_sort_passes + 1;
        ensure_int sc.b_states m;
        ensure_int sc.b_ranks m;
        ensure_int sc.b_cls m;
        let sb = !(sc.b_states) and rb = !(sc.b_ranks) and cb = !(sc.b_cls) in
        (* Scatter 1: stable counting sort by rank, a -> b. *)
        ensure_int sc.rank_counts alphabet;
        let rc = !(sc.rank_counts) in
        Array.fill rc 0 alphabet 0;
        for i = 0 to m - 1 do
          rc.(ra.(i)) <- rc.(ra.(i)) + 1
        done;
        let acc = ref 0 in
        for r = 0 to alphabet - 1 do
          let c = rc.(r) in
          rc.(r) <- !acc;
          acc := !acc + c
        done;
        for i = 0 to m - 1 do
          let r = ra.(i) in
          let dst = rc.(r) in
          rc.(r) <- dst + 1;
          sb.(dst) <- sa.(i);
          rb.(dst) <- r;
          cb.(dst) <- ca.(i)
        done;
        (* Scatter 2: stable counting sort by class, b -> a.  Classes
           are remapped to dense first-seen ids so the buckets stay
           O(touched classes), not O(num_classes); any class order is
           fine — the core only needs each class's span contiguous. *)
        let dclasses = ref 0 in
        for i = 0 to m - 1 do
          let c = cb.(i) in
          if class_remap.(c) < 0 then begin
            class_remap.(c) <- !dclasses;
            incr dclasses
          end
        done;
        ensure_int sc.dense_counts !dclasses;
        let dc = !(sc.dense_counts) in
        Array.fill dc 0 !dclasses 0;
        for i = 0 to m - 1 do
          let d = class_remap.(cb.(i)) in
          dc.(d) <- dc.(d) + 1
        done;
        let acc = ref 0 in
        for d = 0 to !dclasses - 1 do
          let c = dc.(d) in
          dc.(d) <- !acc;
          acc := !acc + c
        done;
        for i = 0 to m - 1 do
          let c = cb.(i) in
          let d = class_remap.(c) in
          let dst = dc.(d) in
          dc.(d) <- dst + 1;
          sa.(dst) <- sb.(i);
          ra.(dst) <- rb.(i);
          ca.(dst) <- c
        done;
        for i = 0 to m - 1 do
          class_remap.(ca.(i)) <- -1
        done
  end
  else Sortx.sort_runs_int ~cls:ca ~keys:ra ~states:sa m);
  if metered then
    Metrics.observe m_sort_seconds
      (Int64.to_float (Int64.sub (Timer.now_ns ()) t0) *. 1e-9);
  let nk = !(sc.nk) in
  nk.(0) <- true;
  for i = 1 to m - 1 do
    nk.(i) <- ra.(i - 1) <> ra.(i)
  done;
  pd.pd_states <- sa;
  pd.pd_classes <- ca;
  pd.pd_newkey <- nk

let comp_lumping_interned ?stats ?on_split ispec ~initial =
  let st = create_stats () in
  let table = ispec.itable in
  let sc = indexed_scratch ~size:ispec.isize in
  let prepare pd p slice =
    st.interned_passes <- st.interned_passes + 1;
    intern_clear table;
    let keyed = ispec.isplitter_keys slice in
    let m = List.length keyed in
    if m > 0 then begin
      ensure_indexed sc m;
      let sa = !(sc.a_states) and ra = !(sc.a_ranks) and ca = !(sc.a_cls) in
      List.iteri
        (fun i (s, k) ->
          sa.(i) <- s;
          ra.(i) <- intern table k;
          ca.(i) <- Partition.class_of p s)
        keyed;
      sort_indexed st sc pd ~m ~alphabet:table.it_count
    end;
    m
  in
  let p =
    core st ~fn:"comp_lumping_interned" ~size:ispec.isize ~prepare ~on_split ~initial
  in
  finish ~fn:"comp_lumping_interned" st stats;
  p

(* ---- ranked pipeline (pre-interned integer keys) ---- *)

type ranked_spec = {
  rsize : int;
  rsplitter_keys : slice -> int array * int array;
}

(* Grow [r] to at least [n] entries, zero-filling the new tail but
   keeping the existing contents (unlike [ensure_int], whose arrays are
   pure per-pass scratch). *)
let ensure_int_keep r n =
  let len = Array.length !r in
  if len < n then begin
    let a = Array.make (max n (2 * len)) 0 in
    Array.blit !r 0 a 0 len;
    r := a
  end

let comp_lumping_ranked ?stats ?on_split ?pool ?(par_threshold = 8192) rspec
    ~initial =
  let st = create_stats () in
  let sc = indexed_scratch ~size:rspec.rsize in
  (* gid -> per-pass dense rank, via a stamp instead of clearing:
     [rank_of.(g)] is valid only when [stamp.(g)] equals the current
     pass number (fresh zero-filled entries can never match — the
     counter starts at 1). *)
  let stamp = ref [||] and rank_of = ref [||] in
  let pass_no = ref 0 in
  let prepare pd p slice =
    st.interned_passes <- st.interned_passes + 1;
    incr pass_no;
    let states, gids = rspec.rsplitter_keys slice in
    let m = Array.length states in
    if m > 0 then begin
      ensure_indexed sc m;
      let sa = !(sc.a_states) and ra = !(sc.a_ranks) and ca = !(sc.a_cls) in
      Array.blit states 0 sa 0 m;
      (* Rank assignment is inherently sequential — ranks are dense ids
         in order of first appearance over the pair array, which is
         what makes them independent of the gid numbering. *)
      let alphabet = ref 0 in
      for i = 0 to m - 1 do
        let g = gids.(i) in
        if g >= Array.length !stamp then begin
          ensure_int_keep stamp (g + 1);
          ensure_int_keep rank_of (g + 1)
        end;
        let sta = !stamp and rko = !rank_of in
        if sta.(g) <> !pass_no then begin
          sta.(g) <- !pass_no;
          rko.(g) <- !alphabet;
          incr alphabet
        end;
        ra.(i) <- rko.(g)
      done;
      (* The class lookups are pure reads of [p] into disjoint slots of
         [ca] — shard them when the pass is large enough to amortise the
         pool round-trip.  Slot [i] gets the same value whichever domain
         writes it, so the fill is placement-independent. *)
      (match pool with
      | Some pool when Domain_pool.size pool > 1 && m >= par_threshold ->
          let tasks = min m (4 * Domain_pool.size pool) in
          Domain_pool.run pool ~n:tasks (fun t ->
              let lo, hi = Domain_pool.split ~n:m ~tasks t in
              for i = lo to hi - 1 do
                ca.(i) <- Partition.class_of p states.(i)
              done)
      | _ ->
          for i = 0 to m - 1 do
            ca.(i) <- Partition.class_of p states.(i)
          done);
      sort_indexed st sc pd ~m ~alphabet:!alphabet
    end;
    m
  in
  let p =
    core st ~fn:"comp_lumping_ranked" ~size:rspec.rsize ~prepare ~on_split ~initial
  in
  finish ~fn:"comp_lumping_ranked" st stats;
  p

(* ---- pipeline selection ---- *)

type packed =
  | Spec : 'k spec -> packed
  | Float_spec : float_spec -> packed
  | Interned_spec : 'k interned_spec -> packed

let run ?stats ?on_split packed ~initial =
  match packed with
  | Spec spec -> comp_lumping ?stats ?on_split spec ~initial
  | Float_spec spec -> comp_lumping_float ?stats ?on_split spec ~initial
  | Interned_spec spec -> comp_lumping_interned ?stats ?on_split spec ~initial

let is_stable spec p =
  let stable = ref true in
  for splitter = 0 to Partition.num_classes p - 1 do
    let keyed = spec.splitter_keys (Partition.view p splitter) in
    let key_of = Hashtbl.create 16 in
    List.iter (fun (s, k) -> Hashtbl.replace key_of s k) keyed;
    for c = 0 to Partition.num_classes p - 1 do
      let first = Hashtbl.find_opt key_of (Partition.representative p c) in
      Partition.iter_class
        (fun s ->
          let k = Hashtbl.find_opt key_of s in
          let same =
            match (first, k) with
            | None, None -> true
            | Some k1, Some k2 -> spec.key_compare k1 k2 = 0
            | None, Some _ | Some _, None -> false
          in
          if not same then stable := false)
        p c
    done
  done;
  !stable

(** The seed repository's list-based refinement engine, preserved as a
    correctness and performance baseline for {!Refiner}.

    It computes the same coarsest stable refinement, but re-enqueues
    {e every} sub-block after a split and shuttles states through lists,
    fresh arrays and throwaway hash tables — the behaviour the property
    tests pin the fast engine against, and the "seed" column of
    [BENCH_refine.json]. *)

val comp_lumping : 'k Refiner.spec -> initial:Partition.t -> Partition.t
(** Same contract as {!Refiner.comp_lumping} (without stats). *)

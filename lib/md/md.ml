module Dynarray = Mdl_util.Dynarray
module Hashx = Mdl_util.Hashx

type node_id = int

type node = {
  level : int;
  rows : (int * Formal_sum.t) array array; (* row -> entries sorted by col *)
}

(* Structural identity of node contents, used for hash-consing
   (quasi-reduction): equal level and equal rows with bit-exact
   coefficient equality. *)
module Node_key = struct
  type t = node

  let equal a b =
    a.level = b.level
    && Array.length a.rows = Array.length b.rows
    && Array.for_all2
         (fun ra rb ->
           Array.length ra = Array.length rb
           && Array.for_all2
                (fun (c1, s1) (c2, s2) -> c1 = c2 && Formal_sum.equal s1 s2)
                ra rb)
         a.rows b.rows

  let hash n =
    Array.fold_left
      (fun h row ->
        Array.fold_left
          (fun h (c, s) -> Hashx.combine (Hashx.combine h c) (Formal_sum.hash s))
          (Hashx.combine h (Array.length row))
          row)
      n.level n.rows
end

module Cons_table = Hashtbl.Make (Node_key)

type t = {
  nlevels : int;
  level_sizes : int array;
  nodes : node Dynarray.t; (* id -> node; id 0 is the terminal *)
  cons : node_id Cons_table.t;
  col_cache : (node_id, (int * Formal_sum.t) array array) Hashtbl.t;
  mutable root_id : node_id option;
}

let create ~sizes =
  if Array.length sizes = 0 then invalid_arg "Md.create: no levels";
  Array.iter (fun s -> if s <= 0 then invalid_arg "Md.create: non-positive level size") sizes;
  let nodes = Dynarray.create () in
  (* Terminal node: the 1x1 identity scalar at conceptual level L+1. *)
  Dynarray.push nodes { level = Array.length sizes + 1; rows = [||] };
  {
    nlevels = Array.length sizes;
    level_sizes = Array.copy sizes;
    nodes;
    cons = Cons_table.create 256;
    col_cache = Hashtbl.create 64;
    root_id = None;
  }

let levels t = t.nlevels

let size t l =
  if l < 1 || l > t.nlevels then invalid_arg "Md.size: level out of range";
  t.level_sizes.(l - 1)

let sizes t = Array.copy t.level_sizes

let terminal _t = 0

let node t id =
  if id < 0 || id >= Dynarray.length t.nodes then invalid_arg "Md: invalid node id";
  Dynarray.get t.nodes id

let node_level t id = (node t id).level

let add_node t ~level entries =
  if level < 1 || level > t.nlevels then invalid_arg "Md.add_node: level out of range";
  let n = t.level_sizes.(level - 1) in
  (* Combine duplicate positions and validate. *)
  let by_pos = Hashtbl.create (List.length entries) in
  List.iter
    (fun (r, c, s) ->
      if r < 0 || r >= n || c < 0 || c >= n then
        invalid_arg
          (Printf.sprintf "Md.add_node: entry (%d,%d) out of range for level %d (size %d)"
             r c level n);
      List.iter
        (fun child ->
          let cl = node_level t child in
          if cl <> level + 1 then
            invalid_arg
              (Printf.sprintf
                 "Md.add_node: child %d has level %d, expected %d" child cl (level + 1)))
        (Formal_sum.children s);
      let prev = Option.value ~default:Formal_sum.empty (Hashtbl.find_opt by_pos (r, c)) in
      Hashtbl.replace by_pos (r, c) (Formal_sum.add prev s))
    entries;
  let rows = Array.make n [] in
  Hashtbl.iter
    (fun (r, c) s -> if not (Formal_sum.is_empty s) then rows.(r) <- (c, s) :: rows.(r))
    by_pos;
  let rows =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort (fun (c1, _) (c2, _) -> compare c1 c2) a;
        a)
      rows
  in
  let candidate = { level; rows } in
  match Cons_table.find_opt t.cons candidate with
  | Some id -> id
  | None ->
      let id = Dynarray.length t.nodes in
      Dynarray.push t.nodes candidate;
      Cons_table.add t.cons candidate id;
      id

(* Import a node of [src] into [t] verbatim, remapping child references.
   The fast path of the incremental lumped rebuild: the source node's
   rows are already combined, validated and column-sorted, and remapping
   preserves column order, so the Hashtbl/validation/sort work of
   [add_node] is skipped.  Children may merge under [remap]
   (Formal_sum.map_children combines them); entries whose sum cancels
   away are dropped.  The result is still hash-consed, so importing a
   node twice (or importing a node equal to an [add_node] product)
   yields one id. *)
let import_node t ~level src src_id remap =
  if level < 1 || level > t.nlevels then
    invalid_arg "Md.import_node: level out of range";
  let nd = node src src_id in
  if Array.length nd.rows <> t.level_sizes.(level - 1) then
    invalid_arg "Md.import_node: node size does not match the target level";
  let rows =
    Array.map
      (fun row ->
        Array.of_list
          (List.filter_map
             (fun (c, s) ->
               let s = Formal_sum.map_children remap s in
               if Formal_sum.is_empty s then None else Some (c, s))
             (Array.to_list row)))
      nd.rows
  in
  let candidate = { level; rows } in
  (match Cons_table.find_opt t.cons candidate with
  | Some id -> id
  | None ->
      let id = Dynarray.length t.nodes in
      Dynarray.push t.nodes candidate;
      Cons_table.add t.cons candidate id;
      id)

(* Raw constructor used by the incremental rebuild: the caller has
   already combined duplicate positions, dropped empty sums and sorted
   each row by column, so only the level/dimension checks and the
   hash-consing lookup remain. *)
let add_node_sorted_rows t ~level rows =
  if level < 1 || level > t.nlevels then
    invalid_arg "Md.add_node_sorted_rows: level out of range";
  if Array.length rows <> t.level_sizes.(level - 1) then
    invalid_arg "Md.add_node_sorted_rows: row count does not match the level size";
  let candidate = { level; rows } in
  match Cons_table.find_opt t.cons candidate with
  | Some id -> id
  | None ->
      let id = Dynarray.length t.nodes in
      Dynarray.push t.nodes candidate;
      Cons_table.add t.cons candidate id;
      id

(* Structural equality of rooted diagrams.  Node ids are store-local and
   the canonical term order of a formal sum follows the local ids, so
   terms are matched by recursive child equality, not positionally.
   Quasi-reduction makes the matching unique: two distinct ids of one
   store cannot both be structurally equal to the same node of the other
   (they would be structurally equal to each other and hence hash-consed
   to one id), so [for_all exists] over equal-length term lists is a
   bijection check. *)
let equal a b =
  a.nlevels = b.nlevels
  && a.level_sizes = b.level_sizes
  &&
  match (a.root_id, b.root_id) with
  | None, None -> true
  | None, Some _ | Some _, None -> false
  | Some ra, Some rb ->
      let memo : (node_id * node_id, bool) Hashtbl.t = Hashtbl.create 64 in
      let rec eq ia ib =
        if ia = 0 || ib = 0 then ia = ib
        else
          match Hashtbl.find_opt memo (ia, ib) with
          | Some r -> r
          | None ->
              let na = node a ia and nb = node b ib in
              let r =
                na.level = nb.level
                && Array.length na.rows = Array.length nb.rows
                && Array.for_all2
                     (fun rowa rowb ->
                       Array.length rowa = Array.length rowb
                       && Array.for_all2
                            (fun (c1, s1) (c2, s2) -> c1 = c2 && sum_eq s1 s2)
                            rowa rowb)
                     na.rows nb.rows
              in
              Hashtbl.add memo (ia, ib) r;
              r
      and sum_eq sa sb =
        let ta = Formal_sum.terms sa and tb = Formal_sum.terms sb in
        List.length ta = List.length tb
        && List.for_all
             (fun (ca, wa) ->
               List.exists (fun (cb, wb) -> Float.equal wa wb && eq ca cb) tb)
             ta
      in
      eq ra rb

let scalar_sum t v = Formal_sum.singleton (terminal t) v

let set_root t id =
  if node_level t id <> 1 then invalid_arg "Md.set_root: node is not at level 1";
  t.root_id <- Some id

let root t =
  match t.root_id with
  | Some id -> id
  | None -> invalid_arg "Md.root: no root set"

let node_row t id r =
  let nd = node t id in
  if r < 0 || r >= Array.length nd.rows then invalid_arg "Md.node_row: row out of range";
  Array.to_list nd.rows.(r)

let iter_node_entries t id f =
  let nd = node t id in
  Array.iteri (fun r row -> Array.iter (fun (c, s) -> f r c s) row) nd.rows

let rev_iter_node_row t id r f =
  let nd = node t id in
  if r < 0 || r >= Array.length nd.rows then
    invalid_arg "Md.rev_iter_node_row: row out of range";
  let row = nd.rows.(r) in
  for i = Array.length row - 1 downto 0 do
    let c, s = row.(i) in
    f c s
  done

let rev_iter_node_entries t id f =
  let nd = node t id in
  for r = Array.length nd.rows - 1 downto 0 do
    let row = nd.rows.(r) in
    for i = Array.length row - 1 downto 0 do
      let c, s = row.(i) in
      f r c s
    done
  done

let node_nnz t id =
  let nd = node t id in
  Array.fold_left (fun acc row -> acc + Array.length row) 0 nd.rows

let node_cols t id =
  match Hashtbl.find_opt t.col_cache id with
  | Some cols -> cols
  | None ->
      let nd = node t id in
      let n = Array.length nd.rows in
      let acc = Array.make n [] in
      (* Walk rows in reverse so each column list ends up ascending. *)
      for r = n - 1 downto 0 do
        Array.iter (fun (col, s) -> acc.(col) <- (r, s) :: acc.(col)) nd.rows.(r)
      done;
      let cols = Array.map Array.of_list acc in
      Hashtbl.add t.col_cache id cols;
      cols

let node_col t id c =
  let cols = node_cols t id in
  if c < 0 || c >= Array.length cols then invalid_arg "Md.node_col: column out of range";
  Array.to_list cols.(c)

let live_nodes t =
  let r = root t in
  let per_level = Array.make t.nlevels [] in
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let nd = node t id in
      if nd.level <= t.nlevels then begin
        per_level.(nd.level - 1) <- id :: per_level.(nd.level - 1);
        Array.iter
          (fun row ->
            Array.iter (fun (_, s) -> List.iter visit (Formal_sum.children s)) row)
          nd.rows
      end
    end
  in
  visit r;
  Array.map List.rev per_level

let num_live_nodes t = Array.fold_left (fun acc l -> acc + List.length l) 0 (live_nodes t)

let warm_col_cache t =
  Array.iter (fun ids -> List.iter (fun id -> ignore (node_cols t id)) ids) (live_nodes t)

let iter_entries t f =
  let l = t.nlevels in
  let row_buf = Array.make l 0 and col_buf = Array.make l 0 in
  let rec walk id coeff =
    let nd = node t id in
    if nd.level > l then f ~row:row_buf ~col:col_buf coeff
    else
      Array.iteri
        (fun r row ->
          row_buf.(nd.level - 1) <- r;
          Array.iter
            (fun (c, s) ->
              col_buf.(nd.level - 1) <- c;
              List.iter
                (fun (child, w) -> walk child (coeff *. w))
                (Formal_sum.terms s))
            row)
        nd.rows
  in
  walk (root t) 1.0

let potential_space_size t = Array.fold_left ( * ) 1 t.level_sizes

let to_csr t =
  let n = potential_space_size t in
  if n > 1 lsl 22 then invalid_arg "Md.to_csr: product space too large to flatten";
  let coo = Mdl_sparse.Coo.create ~rows:n ~cols:n in
  let index tuple =
    let acc = ref 0 in
    for l = 0 to t.nlevels - 1 do
      acc := (!acc * t.level_sizes.(l)) + tuple.(l)
    done;
    !acc
  in
  iter_entries t (fun ~row ~col v -> Mdl_sparse.Coo.add coo (index row) (index col) v);
  Mdl_sparse.Csr.of_coo coo

let memory_bytes t =
  let live = live_nodes t in
  let bytes = ref 0 in
  Array.iter
    (List.iter (fun id ->
         let nd = node t id in
         bytes := !bytes + (8 * Array.length nd.rows) + 16;
         Array.iter
           (fun row ->
             Array.iter
               (fun (_, s) -> bytes := !bytes + 8 + (16 * Formal_sum.num_terms s))
               row)
           nd.rows))
    live;
  !bytes

let stats t =
  let live = live_nodes t in
  let counts = Array.map List.length live in
  let entries =
    Array.map (fun ids -> List.fold_left (fun acc id -> acc + node_nnz t id) 0 ids) live
  in
  (counts, entries)

let pp ppf t =
  let live = live_nodes t in
  Format.fprintf ppf "@[<v>MD with %d levels, %d live nodes" t.nlevels (num_live_nodes t);
  Array.iteri
    (fun i ids ->
      Format.fprintf ppf "@,level %d (|S|=%d): %d nodes" (i + 1) t.level_sizes.(i)
        (List.length ids);
      List.iter
        (fun id ->
          Format.fprintf ppf "@,  R%d:" id;
          iter_node_entries t id (fun r c s ->
              Format.fprintf ppf "@,    (%d,%d) = %a" r c Formal_sum.pp s))
        ids)
    live;
  Format.fprintf ppf "@]"

(** Formal sums [sum_k r_k * R_{n_k}] — the entries of matrix-diagram
    nodes (Section 3 of the paper).

    A formal sum is a linear combination of references to nodes of the
    next level, kept in a canonical form: terms sorted by node id, no
    duplicate ids, no zero coefficients.  Canonical form makes equality
    of formal sums a structural comparison, which is what the paper's
    local lumping keys rely on ("two formal sums are equal if their
    corresponding sets are equal"). *)

type t

val empty : t

val is_empty : t -> bool

val singleton : int -> float -> t
(** [singleton node coeff]; the empty sum if [coeff = 0.]. *)

val of_list : (int * float) list -> t
(** Terms in any order, duplicates combined, zeros dropped. *)

val terms : t -> (int * float) list
(** Canonical term list (ascending node id). *)

val add : t -> t -> t

val scale : float -> t -> t

val sum : t list -> t

val num_terms : t -> int

val coeff : t -> int -> float
(** [coeff s node] is the coefficient of [node] ([0.] when absent). *)

val children : t -> int list
(** Node ids referenced (ascending). *)

val map_children : (int -> int) -> t -> t
(** Remap node ids; terms mapped to one id are combined.  Used when
    replacing nodes by their lumped versions (two distinct children may
    merge after lumping). *)

val equal : t -> t -> bool
(** Exact structural equality (bit-level on coefficients) — the
    hash-consing equality. *)

val hash : t -> int

val quantize : ?eps:float -> t -> t
(** Snap every coefficient to its {!Mdl_util.Floatx.quantize} grid
    representative (re-canonicalised: coefficients that quantize to [0.]
    drop out).  Quantize-then-{!compare} is the transitive replacement
    for {!compare_approx} wherever sums are grouped, sorted or interned. *)

val compare : t -> t -> int
(** Exact total order (term-lexicographic, [Float.compare] on
    coefficients).  On {!quantize}d operands this agrees with {!equal}
    as an equivalence: canonical form stores no zeros, so numerically
    equal nonzero coefficients on the same grid are bit-identical. *)

val compare_approx : ?eps:float -> t -> t -> int
(** Total-order comparison with tolerant coefficient comparison; [0]
    means the sums are equal as lumping keys.  Sums with different
    children sets never compare equal.  {b Not transitive} — never use
    it to order a sort or group a partition; use
    [compare (quantize a) (quantize b)] there (see
    {!Mdl_util.Floatx.compare_approx}). *)

val pp : Format.formatter -> t -> unit

let check_size ss x fn =
  if Array.length x <> Statespace.size ss then
    invalid_arg (Printf.sprintf "Md_vector.%s: vector size mismatch" fn)

let vec_mul md ss x =
  check_size ss x "vec_mul";
  let y = Array.make (Statespace.size ss) 0.0 in
  Md.iter_entries md (fun ~row ~col v ->
      match Statespace.index ss row with
      | None -> ()
      | Some i -> (
          if x.(i) <> 0.0 then
            match Statespace.index ss col with
            | None -> ()
            | Some j -> y.(j) <- y.(j) +. (x.(i) *. v)));
  y

let mul_vec md ss x =
  check_size ss x "mul_vec";
  let y = Array.make (Statespace.size ss) 0.0 in
  Md.iter_entries md (fun ~row ~col v ->
      match Statespace.index ss row with
      | None -> ()
      | Some i -> (
          match Statespace.index ss col with
          | None -> ()
          | Some j -> if x.(j) <> 0.0 then y.(i) <- y.(i) +. (v *. x.(j))));
  y

let row_sums md ss =
  let sums = Array.make (Statespace.size ss) 0.0 in
  Md.iter_entries md (fun ~row ~col:_ v ->
      match Statespace.index ss row with
      | None -> ()
      | Some i -> sums.(i) <- sums.(i) +. v);
  sums

let check_mdd_size mdd x fn =
  if Array.length x <> Mdd.count mdd then
    invalid_arg (Printf.sprintf "Md_vector.%s: vector size mismatch" fn)

(* Co-walk the diagram with row/column MDD cursors, accumulating path
   offsets; [emit] is called once per terminal path with the final
   (row index, column index, rate). *)
let co_walk md mdd emit =
  let nlevels = Md.levels md in
  let rec walk id row_node col_node row_off col_off coeff =
    if Md.node_level md id > nlevels then emit row_off col_off coeff
    else
      Md.iter_node_entries md id (fun r c sum ->
          match Mdd.arc mdd row_node r with
          | None -> ()
          | Some (ro, row_child) -> (
              match Mdd.arc mdd col_node c with
              | None -> ()
              | Some (co, col_child) ->
                  List.iter
                    (fun (child, w) ->
                      walk child row_child col_child (row_off + ro) (col_off + co)
                        (coeff *. w))
                    (Formal_sum.terms sum)))
  in
  walk (Md.root md) (Mdd.root mdd) (Mdd.root mdd) 0 0 1.0

let vec_mul_mdd md mdd x =
  check_mdd_size mdd x "vec_mul_mdd";
  let y = Array.make (Mdd.count mdd) 0.0 in
  co_walk md mdd (fun i j v -> if x.(i) <> 0.0 then y.(j) <- y.(j) +. (x.(i) *. v));
  y

let mul_vec_mdd md mdd x =
  check_mdd_size mdd x "mul_vec_mdd";
  let y = Array.make (Mdd.count mdd) 0.0 in
  co_walk md mdd (fun i j v -> if x.(j) <> 0.0 then y.(i) <- y.(i) +. (v *. x.(j)));
  y

let row_sums_mdd md mdd =
  let sums = Array.make (Mdd.count mdd) 0.0 in
  co_walk md mdd (fun i _ v -> sums.(i) <- sums.(i) +. v);
  sums

let to_csr md ss =
  let n = Statespace.size ss in
  (* CSR-native: entries stream into the two-pass count-then-fill
     constructor straight off the diagram walk, no triplet buffer. *)
  Mdl_sparse.Csr.of_entry_iter ~rows:n ~cols:n (fun f ->
      Md.iter_entries md (fun ~row ~col v ->
          match (Statespace.index ss row, Statespace.index ss col) with
          | Some i, Some j -> f i j v
          | None, _ | _, None -> ()))

let diag_mdd md mdd =
  let d = Array.make (Mdd.count mdd) 0.0 in
  co_walk md mdd (fun i j v -> if i = j then d.(i) <- d.(i) +. v);
  d

type t = (int * float) array
(* Invariant: sorted by node id, ids unique, coefficients nonzero. *)

let empty = [||]

let is_empty t = Array.length t = 0

let singleton node coeff = if coeff = 0.0 then empty else [| (node, coeff) |]

let of_list l =
  let a = Array.of_list l in
  Array.sort (fun (n1, _) (n2, _) -> compare n1 n2) a;
  let out = Mdl_util.Dynarray.create () in
  let flush node acc =
    if acc <> 0.0 then Mdl_util.Dynarray.push out (node, acc)
  in
  let n = Array.length a in
  let rec fold k node acc =
    if k >= n then flush node acc
    else
      let node', c = a.(k) in
      if node' = node then fold (k + 1) node (acc +. c)
      else begin
        flush node acc;
        fold (k + 1) node' c
      end
  in
  if n > 0 then begin
    let node0, c0 = a.(0) in
    fold 1 node0 c0
  end;
  Mdl_util.Dynarray.to_array out

let terms t = Array.to_list t

let add a b = of_list (terms a @ terms b)

let scale alpha t =
  if alpha = 0.0 then empty else Array.map (fun (n, c) -> (n, alpha *. c)) t

let sum l = of_list (List.concat_map terms l)

let num_terms t = Array.length t

let coeff t node =
  (* Binary search over the sorted term array. *)
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let n, c = t.(mid) in
    if n = node then begin
      result := c;
      lo := !hi + 1
    end
    else if n < node then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let children t = Array.to_list (Array.map fst t)

let map_children f t = of_list (List.map (fun (n, c) -> (f n, c)) (terms t))

let equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i =
    i >= Array.length a
    ||
    let n1, c1 = a.(i) and n2, c2 = b.(i) in
    n1 = n2 && Int64.bits_of_float c1 = Int64.bits_of_float c2 && loop (i + 1)
  in
  loop 0

let hash t =
  Array.fold_left
    (fun h (n, c) -> Mdl_util.Hashx.combine (Mdl_util.Hashx.combine h n) (Mdl_util.Hashx.float c))
    (Array.length t) t

let quantize ?eps t =
  of_list (List.map (fun (n, c) -> (n, Mdl_util.Floatx.quantize ?eps c)) (terms t))

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let n1, c1 = a.(i) and n2, c2 = b.(i) in
      if n1 <> n2 then Stdlib.compare n1 n2
      else
        let c = Float.compare c1 c2 in
        if c <> 0 then c else loop (i + 1)
  in
  loop 0

let compare_approx ?eps a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let n1, c1 = a.(i) and n2, c2 = b.(i) in
      if n1 <> n2 then Stdlib.compare n1 n2
      else
        let c = Mdl_util.Floatx.compare_approx ?eps c1 c2 in
        if c <> 0 then c else loop (i + 1)
  in
  loop 0

let pp ppf t =
  if is_empty t then Format.fprintf ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
      (fun ppf (n, c) -> Format.fprintf ppf "%g*R%d" c n)
      ppf (terms t)

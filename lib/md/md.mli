(** Matrix diagrams (MDs) — Section 3 of the paper.

    An ordered MD with [L] levels represents a real matrix over the
    product space [S_1 x .. x S_L].  A node at level [l] is a sparse
    [|S_l| x |S_l|] matrix whose entries are {!Formal_sum.t}s referencing
    nodes of level [l+1]; level-[L] entries reference the unique 1x1
    {e terminal} node (the paper's artificial level [L+1] containing the
    scalar 1), so every level is treated uniformly.

    Nodes are hash-consed per level: building an already-existing node
    returns the existing id, so the diagram is quasi-reduced by
    construction — "at any level, no two nodes are equal" — which is the
    basis of both MD space-efficiency and the locality of the lumping
    keys.

    A diagram value is a mutable {e store} of nodes plus a distinguished
    root.  Nodes are immutable once created; lumping builds new nodes
    (possibly in the same store) rather than mutating existing ones. *)

type t

type node_id = int

val create : sizes:int array -> t
(** [create ~sizes] is an empty diagram with [L = Array.length sizes]
    levels, level [l] having index set [{0 .. sizes.(l-1) - 1}].
    @raise Invalid_argument if [sizes] is empty or has a non-positive
    entry. *)

val levels : t -> int

val size : t -> int -> int
(** [size t l] is [|S_l|], for [l] in [1..L]. *)

val sizes : t -> int array

val terminal : t -> node_id
(** The terminal node (conceptual level [L+1]). *)

val add_node : t -> level:int -> (int * int * Formal_sum.t) list -> node_id
(** [add_node t ~level entries] creates (or finds) the node at [level]
    whose entry at [(row, col)] is the given formal sum; entries listed
    twice for the same position are summed, empty sums dropped.
    Children referenced by the sums must already exist and live at
    [level + 1] (the terminal for [level = L]).
    @raise Invalid_argument on bad level, out-of-range row/col, or
    wrong-level children. *)

val add_node_sorted_rows : t -> level:int -> (int * Formal_sum.t) array array -> node_id
(** Raw hash-consing constructor: [rows] becomes the node's row table
    {e as is}.  {b Unchecked preconditions}: each row strictly sorted by
    column with in-range columns, duplicate positions already combined,
    no empty sums, every child an existing node at [level + 1] — and the
    caller must not retain or mutate [rows] afterwards (the node owns
    it).  This skips the per-entry hashing, validation and sorting of
    {!add_node}; the incremental rebuild uses it for freshly accumulated
    quotient rows.  @raise Invalid_argument on a bad level or row
    count. *)

val import_node : t -> level:int -> t -> node_id -> (node_id -> node_id) -> node_id
(** [import_node t ~level src id remap] copies node [id] of the diagram
    [src] into [t] at [level], applying [remap] to every child
    reference.  The incremental-rebuild fast path: the source node's
    rows are already combined, validated and column-sorted, so unlike
    {!add_node} no per-entry hashing, validation or sorting is done —
    only the child remap (which may merge terms) and the hash-consing
    lookup.  {b Precondition}: [remap] must send every child of the
    source node to an existing node of [t] at [level + 1] (the terminal
    for [level = L]); this is {e not} checked.  Entries whose remapped
    sum cancels to zero are dropped.
    @raise Invalid_argument on a bad level or when the source node's
    dimension differs from [size t level]. *)

val equal : t -> t -> bool
(** Structural equality of the {e rooted} diagrams: same level sizes and
    isomorphic node structure from the roots down (coefficients compared
    exactly, children matched by recursive structural equality — node
    ids need not coincide, so a diagram equals its rebuilt copy).
    Unreachable store garbage is ignored; two rootless diagrams with
    equal sizes are equal.  Used to pin that the cached/incremental
    lumping path emits the same lumped diagram as the from-scratch
    path. *)

val scalar_sum : t -> float -> Formal_sum.t
(** [scalar_sum t v] is the formal sum [v * terminal] — the way real
    values appear at level [L]. *)

val set_root : t -> node_id -> unit
(** @raise Invalid_argument if the node is not at level 1. *)

val root : t -> node_id
(** @raise Invalid_argument if no root has been set. *)

val node_level : t -> node_id -> int

val node_row : t -> node_id -> int -> (int * Formal_sum.t) list
(** Entries of one row, ascending column order. *)

val node_col : t -> node_id -> int -> (int * Formal_sum.t) list
(** Entries of one column, ascending row order (transposed access,
    computed lazily per node and cached).  The cache fill mutates the
    diagram's internal column table, so concurrent first touches of the
    same node race — parallel readers must call {!warm_col_cache}
    first. *)

val warm_col_cache : t -> unit
(** Precompute the column cache for every live node, so subsequent
    {!node_col} calls are pure reads and safe from any domain.
    @raise Invalid_argument if no root is set. *)

val iter_node_entries : t -> node_id -> (int -> int -> Formal_sum.t -> unit) -> unit

val rev_iter_node_row : t -> node_id -> int -> (int -> Formal_sum.t -> unit) -> unit
(** One row's entries in {e descending} column order, without building a
    list.  Mirrors the floating-point summation order {!add_node}
    exhibits on a consed entry list, which is what lets the incremental
    quotient rebuild produce bit-identical coefficients to the
    from-scratch path.  @raise Invalid_argument on a bad row. *)

val rev_iter_node_entries : t -> node_id -> (int -> int -> Formal_sum.t -> unit) -> unit
(** All entries, rows descending and columns descending within each row
    — the reverse of {!iter_node_entries}; see {!rev_iter_node_row} for
    why the order matters. *)

val node_nnz : t -> node_id -> int

val live_nodes : t -> node_id list array
(** [live_nodes t].(l-1) is the list of nodes at level [l] reachable from
    the root — the paper's [N_l].  (The store may also hold unreachable
    nodes left over from construction; they are not part of the
    diagram.) @raise Invalid_argument if no root is set. *)

val num_live_nodes : t -> int

val iter_entries :
  t -> (row:int array -> col:int array -> float -> unit) -> unit
(** Enumerate the nonzero entries of the represented matrix by walking
    all root-to-terminal paths and multiplying coefficients.  [row] and
    [col] are length-[L] substate tuples, {e reused} between calls —
    copy them if retained.  Entries are visited once per path, so a
    position reachable by several paths is reported several times with
    partial values (summing them gives the matrix entry). *)

val to_csr : t -> Mdl_sparse.Csr.t
(** Flatten to a sparse matrix over the full (mixed-radix, row-major)
    product space — intended for tests and small diagrams.
    @raise Invalid_argument if the product space exceeds 2^22 states. *)

val potential_space_size : t -> int

val memory_bytes : t -> int
(** Rough heap footprint of the live nodes: per node its row table, per
    entry its column index and formal-sum terms.  Used for the Table 1
    "MD space" column. *)

val stats : t -> int array * int array
(** Per-level (node count, total entry count) of live nodes. *)

val pp : Format.formatter -> t -> unit

(** Vector products against matrix-diagram-represented matrices,
    restricted to a reachable state space.

    These are the kernels of MD-based numerical solution: the matrix is
    never materialised — each product walks the diagram's paths and
    translates substate tuples to vector indices through the state
    space.  Entries whose row or column tuple is unreachable are
    skipped (they cannot carry probability mass in a well-formed
    model). *)

val vec_mul :
  Md.t -> Statespace.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [vec_mul md ss x] is the row-vector product [x * R] where [R] is the
    matrix the diagram represents. @raise Invalid_argument if the vector
    size differs from [Statespace.size ss]. *)

val mul_vec :
  Md.t -> Statespace.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [mul_vec md ss x] is [R * x]. *)

val row_sums : Md.t -> Statespace.t -> Mdl_sparse.Vec.t
(** Exit rates [R(s, S)] of each reachable state (column tuples falling
    outside the state space still contribute — a rate out of a reachable
    state counts toward its exit rate regardless). *)

val to_csr : Md.t -> Statespace.t -> Mdl_sparse.Csr.t
(** Flatten the diagram to a sparse matrix over state-space indices —
    the "generate the whole matrix" baseline used for comparison and for
    feeding the flat state-level lumping algorithm. *)

(** {1 MDD-indexed products}

    The same products driven by an {!Mdd.t} instead of a hash-indexed
    {!Statespace.t}: the diagram and two MDD cursors are walked
    together, so unreachable sub-spaces are pruned wholesale and row and
    column indices accumulate as path offsets — no hashing per entry.
    This is how MD-based solvers actually index the reachable space; the
    bench harness compares the two. *)

val vec_mul_mdd : Md.t -> Mdd.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [vec_mul_mdd md mdd x] is [x * R] over MDD (lexicographic) indices —
    the same indexing as {!Statespace.index}. *)

val mul_vec_mdd : Md.t -> Mdd.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t

val row_sums_mdd : Md.t -> Mdd.t -> Mdl_sparse.Vec.t
(** Unlike {!row_sums}, entries whose column tuple is unreachable are
    pruned by the co-walk; for well-formed (reachability-closed) models
    the two agree. *)

val diag_mdd : Md.t -> Mdd.t -> Mdl_sparse.Vec.t
(** [diag_mdd md mdd] is the main diagonal [R(s, s)] of the represented
    matrix over MDD indices — what a Jacobi preconditioner needs, one
    co-walk, no matrix materialisation. *)

(** Hierarchical spans over the lump pipeline, exported as Chrome
    [trace_event] JSON.

    A span is a named interval on the monotonic clock
    ({!Mdl_util.Timer.now_ns}); spans opened while another is open nest
    inside it, giving the per-level / per-fixpoint / per-pass flame
    structure of one [Compositional.lump] run.  Completed spans are
    buffered in memory and exported with {!write_file} /
    {!export_json} in the Chrome {e trace event format} (duration
    events, [ph = "X"]), which loads directly in [chrome://tracing],
    Perfetto and [speedscope].

    {b Contexts.}  All recording state lives in a {!Ctx.t} — span
    stack, event buffer or streaming sink, Gc-sampling flag, epoch.
    The module-level functions below operate on the thread's {e
    current} context: a process-wide default, unless the calling thread
    has installed its own with {!with_ctx} (as [lumpd] does per traced
    request, so two requests tracing concurrently can never interleave
    spans).  A context is {b single-owner}: exactly one thread records
    into it at a time; there is no internal locking.  Two threads (or
    domains) recording into two {e different} contexts are fully
    independent.

    {b Overhead.}  Tracing is {e off} by default.  Every instrumentation
    site checks {!enabled} first — one atomic load plus one context
    field load while no ambient context is installed anywhere — so the
    disabled cost is a predictable branch per candidate span; no
    timestamps are read, nothing allocates, and pipeline outputs are
    bit-identical with tracing on or off (pinned by the test suite).

    {b Gc sampling.}  While enabled (and unless switched off at
    {!start}), every span also records the [Gc.quick_stat] deltas across
    its extent — minor/major/promoted words and minor/major collection
    counts — as span arguments ([gc.minor_words], ...), so cache-miss
    allocation is visible phase by phase in the trace viewer. *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Span-argument values, mapped to the corresponding JSON types. *)

exception Nesting_error of string
(** Raised by {!end_span} when closing does not match the innermost
    open span (or none is open) — spans must close strictly LIFO.  The
    check is per-context: a mismatch in one context cannot be caused by
    (or observed from) spans open in another. *)

(** {1 Trace contexts}

    An explicit recording context.  Every operation of the module-level
    API exists here with the context as an explicit argument and
    identical semantics (including the exact {!Nesting_error}
    messages); the module-level functions are thin wrappers applying
    the thread's current context. *)

module Ctx : sig
  type t
  (** One recording context: enabled flag, Gc-sampling flag, epoch,
      event buffer, span stack, optional streaming sink.  Single-owner;
      see the module preamble. *)

  val create : unit -> t
  (** A fresh disabled context with an empty buffer and no epoch (the
      epoch is fixed by its first {!start}/{!start_streaming}). *)

  val enabled : t -> bool

  val start : ?gc:bool -> t -> unit

  val start_streaming : ?gc:bool -> ?close:(unit -> unit) -> t -> (string -> unit) -> unit

  val stream_to_file : ?gc:bool -> t -> string -> unit

  val streaming : t -> bool

  val streamed_count : t -> int

  val stop : t -> unit

  val resume : t -> unit

  val with_span :
    ?cat:string -> ?args:(string * value) list -> t -> string -> (unit -> 'a) -> 'a

  val begin_span : ?cat:string -> ?args:(string * value) list -> t -> string -> unit

  val end_span : t -> string -> unit

  val add_args : t -> (string * value) list -> unit

  val open_spans : t -> int

  val span_count : t -> int

  val iter_events :
    ?from:int ->
    t ->
    (name:string ->
    cat:string ->
    start_ns:int64 ->
    dur_ns:int64 ->
    depth:int ->
    args:(string * value) list ->
    unit) ->
    unit

  val phase_totals : ?from:int -> t -> (string * float) list

  val span_rollup : ?from:int -> t -> (string * int * float) list
  (** Per-span-name [(name, count, inclusive seconds)] over the
      buffered events, sorted by name — the rollup [lumpd] returns for
      [trace: true] requests.  Like {!phase_totals}, nested spans each
      count their own full extent. *)

  val export_json : t -> Buffer.t -> unit

  val write_file : t -> string -> unit

  val clear : t -> unit
end

val with_ctx : Ctx.t -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f ()] with [ctx] installed as the calling
    thread's current context: every module-level call made by this
    thread during [f] (including from the instrumented libraries)
    records into [ctx] instead of the default context.  Installs nest
    — the previous installation (if any) is restored when [f] returns
    or raises.  The installation is {e per-thread}: threads spawned by
    [f] see the default context (the engine's domain-parallel paths are
    disabled while tracing, so a traced run's spans all occur on the
    installing thread). *)

val with_ctx_opt : Ctx.t option -> (unit -> 'a) -> 'a
(** [with_ctx_opt (Some ctx) f] is [with_ctx ctx f]; [with_ctx_opt None
    f] is [f ()] — the shape instrumented entry points use for their
    optional [?tctx] argument (thread a context when given one, record
    into the caller's current context otherwise). *)

val enabled : unit -> bool
(** Whether spans are currently being recorded in the thread's current
    context. *)

val start : ?gc:bool -> unit -> unit
(** [start ()] clears the buffer and enables recording in {e buffered}
    mode; [gc:false] switches the per-span allocation sampling off
    (default on).  An active streaming sink (see {!start_streaming}) is
    terminated and closed first. *)

(** {2 Streaming sink mode}

    Buffered mode holds every completed span until export — fine for
    one lump run, unbounded for a long-running sweep or a daemon.  In
    {e streaming} mode each span is rendered as one Chrome trace-event
    JSON object the moment it closes and handed to a sink, so memory
    stays bounded by the deepest open nest regardless of how many spans
    the run produces ({!span_count} stays [0]; {!streamed_count} counts
    the emitted events).  The sink receives the chunks of a valid JSON
    array document ([[evt, evt, ...]] — the Chrome {e JSON array
    format}, which every trace viewer accepts), terminated when {!stop}
    (or a later {!start}/{!start_streaming}) closes the sink.  Streamed
    spans do not appear in {!iter_events}/{!phase_totals}/
    {!export_json}. *)

val start_streaming :
  ?gc:bool -> ?close:(unit -> unit) -> (string -> unit) -> unit
(** [start_streaming emit] clears the buffer and enables recording in
    streaming mode: every completed span is passed to [emit] as one
    JSON chunk.  [close] (default a no-op) runs after the array
    terminator is emitted — use it to release the sink's resource.
    [gc] as in {!start}. *)

val stream_to_file : ?gc:bool -> string -> unit
(** [stream_to_file path] is {!start_streaming} into [path]: spans are
    appended to the file as they close and the file is completed and
    closed at {!stop} — constant memory at any span count
    ([lumpd --trace], [lumpmd --stream-trace]). *)

val streaming : unit -> bool
(** Whether a streaming sink is currently installed. *)

val streamed_count : unit -> int
(** Events emitted through the streaming sink since it was installed. *)

val stop : unit -> unit
(** Disable recording, {e keeping} buffered events for export.  In
    streaming mode, additionally emit the array terminator and close
    the sink.
    @raise Nesting_error if a span is still open. *)

val resume : unit -> unit
(** Re-enable recording without clearing the buffer — lets a driver
    trace selected regions (e.g. one instrumented run per bench
    scenario) into one combined export. *)

val with_span :
  ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span named [name] (category
    [cat], default ["mdl"]).  When disabled, exactly [f ()].  The span
    is closed even when [f] raises.  [args] seed the span's arguments;
    {!add_args} appends more from inside [f]. *)

val begin_span : ?cat:string -> ?args:(string * value) list -> string -> unit
(** Lower-level interface for spans that cannot wrap a closure (e.g.
    around one iteration of an imperative worklist loop).  No-op when
    disabled.  Must be balanced by {!end_span} with the same name. *)

val end_span : string -> unit
(** Close the innermost open span.  No-op when disabled.
    @raise Nesting_error if the innermost open span is not [name]. *)

val add_args : (string * value) list -> unit
(** Append arguments to the innermost open span; ignored when disabled
    or when no span is open (so instrumentation sites need no guard). *)

val open_spans : unit -> int
(** Number of currently open (unclosed) spans. *)

val span_count : unit -> int
(** Number of completed spans in the buffer. *)

val iter_events :
  ?from:int ->
  (name:string ->
  cat:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  depth:int ->
  args:(string * value) list ->
  unit) ->
  unit
(** Iterate completed spans in completion order; [from] skips the first
    [from] events (pair with {!span_count} to visit only the spans a
    region of interest produced).  [depth] is the nesting depth at which
    the span ran (0 = top level). *)

val phase_totals : ?from:int -> unit -> (string * float) list
(** Total {e inclusive} seconds per span name over the buffered events
    (from index [from]), sorted by name — the per-phase rollup embedded
    in [BENCH_refine.json].  Nested spans each count their own full
    extent, so parent phases are not the sum of their children. *)

val export_json : Buffer.t -> unit
(** Append the Chrome trace JSON document ([{"traceEvents": [...]}],
    timestamps in microseconds relative to the first {!start}) to the
    buffer. *)

val write_file : string -> unit
(** {!export_json} to a file. *)

val clear : unit -> unit
(** Drop all buffered events and open spans; recording state is
    unchanged. *)

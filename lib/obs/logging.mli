(** One logging setup shared by every binary.

    Each library owns a [Logs.Src] ([mdl.refine], [mdl.lump],
    [mdl.solve], [mdl.san], [mdl.oracle]); the drivers ([lumpmd],
    [fuzz], the bench executables, [table1]) call {!setup} once instead
    of wiring their own reporters.  The level comes from the
    [--verbose] flag when given, else from the [MDL_LOG] environment
    variable ([debug] / [info] / [warning] / [error] / [quiet]), else
    defaults to warnings only. *)

val level_of_string : string -> Logs.level option option
(** [Some level] for a recognised name ([Some None] meaning logging
    off, for ["quiet"]/["off"]); [None] for an unrecognised one.
    Case-insensitive. *)

val setup : ?verbose:bool -> unit -> unit
(** Install the shared [Fmt]-based reporter and set the global level:
    [Debug] when [verbose], else the [MDL_LOG] level, else [Warning].
    An unrecognised [MDL_LOG] value falls back to [Warning] with a
    notice on stderr. *)

val sources : unit -> string list
(** Names of all registered [Logs] sources, sorted — exercised by the
    tests to pin that every library registered its source. *)

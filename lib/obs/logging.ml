let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some (Some Logs.Debug)
  | "info" -> Some (Some Logs.Info)
  | "warning" | "warn" -> Some (Some Logs.Warning)
  | "error" -> Some (Some Logs.Error)
  | "app" -> Some (Some Logs.App)
  | "quiet" | "off" | "none" -> Some None
  | _ -> None

let setup ?(verbose = false) () =
  Logs.set_reporter (Logs.format_reporter ());
  let level =
    if verbose then Some Logs.Debug
    else
      match Sys.getenv_opt "MDL_LOG" with
      | None -> Some Logs.Warning
      | Some s -> (
          match level_of_string s with
          | Some l -> l
          | None ->
              Printf.eprintf "MDL_LOG=%s not recognised (debug/info/warning/error/quiet); using warning\n%!" s;
              Some Logs.Warning)
  in
  Logs.set_level level

let sources () =
  List.sort String.compare (List.map Logs.Src.name (Logs.Src.list ()))

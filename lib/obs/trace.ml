module Timer = Mdl_util.Timer
module Dynarray = Mdl_util.Dynarray

type value = Int of int | Float of float | Str of string | Bool of bool

exception Nesting_error of string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_args : (string * value) list;
}

(* An open span.  Gc words are sampled with [Gc.quick_stat] (no heap
   walk); the floats are cumulative word counters, so deltas across the
   span are exact even through collections. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_start_ns : int64;
  mutable f_args : (string * value) list; (* reverse order *)
  f_minor_w : float;
  f_promoted_w : float;
  f_major_w : float;
  f_minor_c : int;
  f_major_c : int;
}

let enabled_flag = ref false

let gc_flag = ref true

let epoch = ref None (* ns of the first [start], the trace time origin *)

let events : event Dynarray.t = Dynarray.create ()

let stack : frame list ref = ref []

(* Streaming sink: when set, completed spans are rendered immediately
   and handed to the sink instead of being buffered, so a long run
   traces with memory bounded by the deepest open nest, not the span
   count.  [sink_first] tracks whether the JSON array separator is
   needed; [sink_close] releases the sink's resource (file handle) at
   {!stop}. *)
let sink : (string -> unit) option ref = ref None

let sink_close : (unit -> unit) ref = ref (fun () -> ())

let sink_first = ref true

let streamed = ref 0

let enabled () = !enabled_flag

let streaming () = !sink <> None

let streamed_count () = !streamed

let clear () =
  Dynarray.clear events;
  stack := []

let close_sink () =
  match !sink with
  | None -> ()
  | Some emit ->
      emit "\n]\n";
      sink := None;
      let close = !sink_close in
      sink_close := (fun () -> ());
      close ()

let start ?(gc = true) () =
  close_sink ();
  clear ();
  gc_flag := gc;
  if !epoch = None then epoch := Some (Timer.now_ns ());
  enabled_flag := true

let start_streaming ?(gc = true) ?(close = fun () -> ()) emit =
  close_sink ();
  clear ();
  gc_flag := gc;
  if !epoch = None then epoch := Some (Timer.now_ns ());
  sink := Some emit;
  sink_close := close;
  sink_first := true;
  streamed := 0;
  emit "[";
  enabled_flag := true

let stream_to_file ?gc path =
  let oc = open_out path in
  start_streaming ?gc ~close:(fun () -> close_out oc) (output_string oc)

let stop () =
  (match !stack with
  | [] -> ()
  | f :: _ -> raise (Nesting_error (Printf.sprintf "Trace.stop: span %S still open" f.f_name)));
  close_sink ();
  enabled_flag := false

let resume () =
  if !epoch = None then epoch := Some (Timer.now_ns ());
  enabled_flag := true

let begin_span ?(cat = "mdl") ?(args = []) name =
  if !enabled_flag then begin
    let mw, pw, jw, mc, jc =
      if !gc_flag then
        let g = Gc.quick_stat () in
        ( g.Gc.minor_words,
          g.Gc.promoted_words,
          g.Gc.major_words,
          g.Gc.minor_collections,
          g.Gc.major_collections )
      else (0.0, 0.0, 0.0, 0, 0)
    in
    stack :=
      {
        f_name = name;
        f_cat = cat;
        f_start_ns = Timer.now_ns ();
        f_args = List.rev args;
        f_minor_w = mw;
        f_promoted_w = pw;
        f_major_w = jw;
        f_minor_c = mc;
        f_major_c = jc;
      }
      :: !stack
  end

(* ---- Chrome trace_event rendering ---- *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/infinity literals; clamp to strings. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else begin
        Buffer.add_char buf '"';
        Buffer.add_string buf (string_of_float f);
        Buffer.add_char buf '"'
      end
  | Str s ->
      Buffer.add_char buf '"';
      escape_json buf s;
      Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (string_of_bool b)

(* One duration event ([ph = "X"]) as a JSON object, timestamps in
   microseconds relative to the trace epoch — shared by the buffered
   export and the streaming sink. *)
let render_event buf ~t0 ~name ~cat ~start_ns ~dur_ns ~depth ~args =
  Buffer.add_string buf "{\"name\": \"";
  escape_json buf name;
  Buffer.add_string buf "\", \"cat\": \"";
  escape_json buf cat;
  Buffer.add_string buf
    (Printf.sprintf
       "\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": %.3f, \"dur\": %.3f"
       (Int64.to_float (Int64.sub start_ns t0) /. 1e3)
       (Int64.to_float dur_ns /. 1e3));
  Buffer.add_string buf ", \"args\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf '"';
      escape_json buf k;
      Buffer.add_string buf "\": ";
      add_value buf v)
    (("depth", Int depth) :: args);
  Buffer.add_string buf "}}"

let stream_event ev =
  match !sink with
  | None -> false
  | Some emit ->
      let t0 = match !epoch with Some t -> t | None -> 0L in
      let buf = Buffer.create 256 in
      if !sink_first then sink_first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      render_event buf ~t0 ~name:ev.ev_name ~cat:ev.ev_cat ~start_ns:ev.ev_start_ns
        ~dur_ns:ev.ev_dur_ns ~depth:ev.ev_depth ~args:ev.ev_args;
      emit (Buffer.contents buf);
      incr streamed;
      true

let end_span name =
  if !enabled_flag then begin
    match !stack with
    | [] -> raise (Nesting_error (Printf.sprintf "Trace.end_span: %S closed with no span open" name))
    | f :: rest ->
        if f.f_name <> name then
          raise
            (Nesting_error
               (Printf.sprintf "Trace.end_span: %S closed while %S is innermost" name
                  f.f_name));
        let now = Timer.now_ns () in
        let args = List.rev f.f_args in
        let args =
          if !gc_flag then begin
            let g = Gc.quick_stat () in
            args
            @ [
                ("gc.minor_words", Float (g.Gc.minor_words -. f.f_minor_w));
                ("gc.promoted_words", Float (g.Gc.promoted_words -. f.f_promoted_w));
                ("gc.major_words", Float (g.Gc.major_words -. f.f_major_w));
                ("gc.minor_collections", Int (g.Gc.minor_collections - f.f_minor_c));
                ("gc.major_collections", Int (g.Gc.major_collections - f.f_major_c));
              ]
          end
          else args
        in
        stack := rest;
        let ev =
          {
            ev_name = f.f_name;
            ev_cat = f.f_cat;
            ev_start_ns = f.f_start_ns;
            ev_dur_ns = Int64.sub now f.f_start_ns;
            ev_depth = List.length rest;
            ev_args = args;
          }
        in
        if not (stream_event ev) then Dynarray.push events ev
  end

let with_span ?cat ?args name f =
  if not !enabled_flag then f ()
  else begin
    begin_span ?cat ?args name;
    Fun.protect
      ~finally:(fun () ->
        (* Unwind to this span even when [f] leaked opens (it cannot via
           [with_span] itself, but [begin_span] users might): closing an
           outer span with inner ones open is the caller's bug and
           [end_span] reports it. *)
        end_span name)
      f
  end

let add_args args =
  if !enabled_flag then
    match !stack with
    | [] -> ()
    | f :: _ -> f.f_args <- List.rev_append args f.f_args

let open_spans () = List.length !stack

let span_count () = Dynarray.length events

let iter_events ?(from = 0) f =
  Dynarray.iteri
    (fun i ev ->
      if i >= from then
        f ~name:ev.ev_name ~cat:ev.ev_cat ~start_ns:ev.ev_start_ns ~dur_ns:ev.ev_dur_ns
          ~depth:ev.ev_depth ~args:ev.ev_args)
    events

let phase_totals ?from () =
  let totals = Hashtbl.create 16 in
  iter_events ?from (fun ~name ~cat:_ ~start_ns:_ ~dur_ns ~depth:_ ~args:_ ->
      let s = Int64.to_float dur_ns *. 1e-9 in
      Hashtbl.replace totals name (s +. Option.value ~default:0.0 (Hashtbl.find_opt totals name)));
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- Chrome trace_event export (buffered mode) ---- *)

let export_json buf =
  let t0 = match !epoch with Some t -> t | None -> 0L in
  Buffer.add_string buf "{\n  \"traceEvents\": [";
  let first = ref true in
  iter_events (fun ~name ~cat ~start_ns ~dur_ns ~depth ~args ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      (* Duration events with microsecond timestamps relative to the
         trace epoch; one process, one thread — the nesting carries the
         hierarchy. *)
      render_event buf ~t0 ~name ~cat ~start_ns ~dur_ns ~depth ~args);
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n"

let write_file path =
  let buf = Buffer.create 65536 in
  export_json buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

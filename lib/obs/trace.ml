module Timer = Mdl_util.Timer
module Dynarray = Mdl_util.Dynarray

type value = Int of int | Float of float | Str of string | Bool of bool

exception Nesting_error of string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_args : (string * value) list;
}

(* An open span.  Gc words are sampled with [Gc.quick_stat] (no heap
   walk); the floats are cumulative word counters, so deltas across the
   span are exact even through collections. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_start_ns : int64;
  mutable f_args : (string * value) list; (* reverse order *)
  f_minor_w : float;
  f_promoted_w : float;
  f_major_w : float;
  f_minor_c : int;
  f_major_c : int;
}

(* ---- Chrome trace_event rendering (context-independent) ---- *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/infinity literals; clamp to strings. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else begin
        Buffer.add_char buf '"';
        Buffer.add_string buf (string_of_float f);
        Buffer.add_char buf '"'
      end
  | Str s ->
      Buffer.add_char buf '"';
      escape_json buf s;
      Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (string_of_bool b)

(* One duration event ([ph = "X"]) as a JSON object, timestamps in
   microseconds relative to the trace epoch — shared by the buffered
   export and the streaming sink. *)
let render_event buf ~t0 ~name ~cat ~start_ns ~dur_ns ~depth ~args =
  Buffer.add_string buf "{\"name\": \"";
  escape_json buf name;
  Buffer.add_string buf "\", \"cat\": \"";
  escape_json buf cat;
  Buffer.add_string buf
    (Printf.sprintf
       "\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": %.3f, \"dur\": %.3f"
       (Int64.to_float (Int64.sub start_ns t0) /. 1e3)
       (Int64.to_float dur_ns /. 1e3));
  Buffer.add_string buf ", \"args\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf '"';
      escape_json buf k;
      Buffer.add_string buf "\": ";
      add_value buf v)
    (("depth", Int depth) :: args);
  Buffer.add_string buf "}}"

(* ---- Trace contexts ---- *)

module Ctx = struct
  (* Everything that used to be module-global mutable state, one record
     per context.  A context is single-owner: exactly one thread records
     into it at a time (the server hands each request its own context;
     the CLI tools use the shared default).  No internal locking — the
     ownership discipline is the synchronisation. *)
  type t = {
    mutable enabled : bool;
    mutable gc : bool;
    mutable epoch : int64 option; (* ns of the first [start], the trace time origin *)
    events : event Dynarray.t;
    mutable stack : frame list;
    (* Streaming sink: when set, completed spans are rendered immediately
       and handed to the sink instead of being buffered, so a long run
       traces with memory bounded by the deepest open nest, not the span
       count.  [sink_first] tracks whether the JSON array separator is
       needed; [sink_close] releases the sink's resource (file handle) at
       {!stop}. *)
    mutable sink : (string -> unit) option;
    mutable sink_close : unit -> unit;
    mutable sink_first : bool;
    mutable streamed : int;
  }

  let create () =
    {
      enabled = false;
      gc = true;
      epoch = None;
      events = Dynarray.create ();
      stack = [];
      sink = None;
      sink_close = (fun () -> ());
      sink_first = true;
      streamed = 0;
    }

  let enabled t = t.enabled

  let streaming t = t.sink <> None

  let streamed_count t = t.streamed

  let clear t =
    Dynarray.clear t.events;
    t.stack <- []

  let close_sink t =
    match t.sink with
    | None -> ()
    | Some emit ->
        emit "\n]\n";
        t.sink <- None;
        let close = t.sink_close in
        t.sink_close <- (fun () -> ());
        close ()

  let start ?(gc = true) t =
    close_sink t;
    clear t;
    t.gc <- gc;
    if t.epoch = None then t.epoch <- Some (Timer.now_ns ());
    t.enabled <- true

  let start_streaming ?(gc = true) ?(close = fun () -> ()) t emit =
    close_sink t;
    clear t;
    t.gc <- gc;
    if t.epoch = None then t.epoch <- Some (Timer.now_ns ());
    t.sink <- Some emit;
    t.sink_close <- close;
    t.sink_first <- true;
    t.streamed <- 0;
    emit "[";
    t.enabled <- true

  let stream_to_file ?gc t path =
    let oc = open_out path in
    start_streaming ?gc ~close:(fun () -> close_out oc) t (output_string oc)

  let stop t =
    (match t.stack with
    | [] -> ()
    | f :: _ -> raise (Nesting_error (Printf.sprintf "Trace.stop: span %S still open" f.f_name)));
    close_sink t;
    t.enabled <- false

  let resume t =
    if t.epoch = None then t.epoch <- Some (Timer.now_ns ());
    t.enabled <- true

  let begin_span ?(cat = "mdl") ?(args = []) t name =
    if t.enabled then begin
      let mw, pw, jw, mc, jc =
        if t.gc then
          let g = Gc.quick_stat () in
          ( g.Gc.minor_words,
            g.Gc.promoted_words,
            g.Gc.major_words,
            g.Gc.minor_collections,
            g.Gc.major_collections )
        else (0.0, 0.0, 0.0, 0, 0)
      in
      t.stack <-
        {
          f_name = name;
          f_cat = cat;
          f_start_ns = Timer.now_ns ();
          f_args = List.rev args;
          f_minor_w = mw;
          f_promoted_w = pw;
          f_major_w = jw;
          f_minor_c = mc;
          f_major_c = jc;
        }
        :: t.stack
    end

  let stream_event t ev =
    match t.sink with
    | None -> false
    | Some emit ->
        let t0 = match t.epoch with Some t -> t | None -> 0L in
        let buf = Buffer.create 256 in
        if t.sink_first then t.sink_first <- false else Buffer.add_char buf ',';
        Buffer.add_string buf "\n  ";
        render_event buf ~t0 ~name:ev.ev_name ~cat:ev.ev_cat ~start_ns:ev.ev_start_ns
          ~dur_ns:ev.ev_dur_ns ~depth:ev.ev_depth ~args:ev.ev_args;
        emit (Buffer.contents buf);
        t.streamed <- t.streamed + 1;
        true

  let end_span t name =
    if t.enabled then begin
      match t.stack with
      | [] ->
          raise
            (Nesting_error (Printf.sprintf "Trace.end_span: %S closed with no span open" name))
      | f :: rest ->
          if f.f_name <> name then
            raise
              (Nesting_error
                 (Printf.sprintf "Trace.end_span: %S closed while %S is innermost" name
                    f.f_name));
          let now = Timer.now_ns () in
          let args = List.rev f.f_args in
          let args =
            if t.gc then begin
              let g = Gc.quick_stat () in
              args
              @ [
                  ("gc.minor_words", Float (g.Gc.minor_words -. f.f_minor_w));
                  ("gc.promoted_words", Float (g.Gc.promoted_words -. f.f_promoted_w));
                  ("gc.major_words", Float (g.Gc.major_words -. f.f_major_w));
                  ("gc.minor_collections", Int (g.Gc.minor_collections - f.f_minor_c));
                  ("gc.major_collections", Int (g.Gc.major_collections - f.f_major_c));
                ]
            end
            else args
          in
          t.stack <- rest;
          let ev =
            {
              ev_name = f.f_name;
              ev_cat = f.f_cat;
              ev_start_ns = f.f_start_ns;
              ev_dur_ns = Int64.sub now f.f_start_ns;
              ev_depth = List.length rest;
              ev_args = args;
            }
          in
          if not (stream_event t ev) then Dynarray.push t.events ev
    end

  let with_span ?cat ?args t name f =
    if not t.enabled then f ()
    else begin
      begin_span ?cat ?args t name;
      Fun.protect
        ~finally:(fun () ->
          (* Unwind to this span even when [f] leaked opens (it cannot via
             [with_span] itself, but [begin_span] users might): closing an
             outer span with inner ones open is the caller's bug and
             [end_span] reports it. *)
          end_span t name)
        f
    end

  let add_args t args =
    if t.enabled then
      match t.stack with
      | [] -> ()
      | f :: _ -> f.f_args <- List.rev_append args f.f_args

  let open_spans t = List.length t.stack

  let span_count t = Dynarray.length t.events

  let iter_events ?(from = 0) t f =
    Dynarray.iteri
      (fun i ev ->
        if i >= from then
          f ~name:ev.ev_name ~cat:ev.ev_cat ~start_ns:ev.ev_start_ns ~dur_ns:ev.ev_dur_ns
            ~depth:ev.ev_depth ~args:ev.ev_args)
      t.events

  let phase_totals ?from t =
    let totals = Hashtbl.create 16 in
    iter_events ?from t (fun ~name ~cat:_ ~start_ns:_ ~dur_ns ~depth:_ ~args:_ ->
        let s = Int64.to_float dur_ns *. 1e-9 in
        Hashtbl.replace totals name
          (s +. Option.value ~default:0.0 (Hashtbl.find_opt totals name)));
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) totals []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Per-span inclusive (count, seconds) rollup, sorted by name — the
     shape the server returns for [trace: true] requests. *)
  let span_rollup ?from t =
    let totals = Hashtbl.create 16 in
    iter_events ?from t (fun ~name ~cat:_ ~start_ns:_ ~dur_ns ~depth:_ ~args:_ ->
        let s = Int64.to_float dur_ns *. 1e-9 in
        let n, acc =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals name)
        in
        Hashtbl.replace totals name (n + 1, acc +. s));
    Hashtbl.fold (fun name (n, s) acc -> (name, n, s) :: acc) totals []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  (* ---- Chrome trace_event export (buffered mode) ---- *)

  let export_json t buf =
    let t0 = match t.epoch with Some t -> t | None -> 0L in
    Buffer.add_string buf "{\n  \"traceEvents\": [";
    let first = ref true in
    iter_events t (fun ~name ~cat ~start_ns ~dur_ns ~depth ~args ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        (* Duration events with microsecond timestamps relative to the
           trace epoch; one process, one thread — the nesting carries the
           hierarchy. *)
        render_event buf ~t0 ~name ~cat ~start_ns ~dur_ns ~depth ~args);
    Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n"

  let write_file t path =
    let buf = Buffer.create 65536 in
    export_json t buf;
    let oc = open_out path in
    Buffer.output_buffer oc buf;
    close_out oc
end

(* ---- The default context and the per-thread ambient table ----

   The module-level API below resolves a {e current} context: the
   default one, unless the calling thread has installed its own with
   [with_ctx] (the server does, per traced request).  The common case —
   no ambient context anywhere, tracing off — must stay as close to the
   old one-bool-load fast path as possible, so installs are counted in
   an atomic and [current] short-circuits to [default] while the count
   is zero.  The table itself is only consulted on traced-request
   threads, which are slow paths by definition. *)

let default = Ctx.create ()

let ambient_count = Atomic.make 0

let ambient_lock = Mutex.create ()

(* Thread.id -> installed context.  Keyed per-thread, not per-domain:
   lumpd's request handlers are sibling threads of one domain, so
   [Domain.DLS] could not tell them apart. *)
let ambient : (int, Ctx.t) Hashtbl.t = Hashtbl.create 8

let current () =
  if Atomic.get ambient_count = 0 then default
  else
    let id = Thread.id (Thread.self ()) in
    Mutex.protect ambient_lock (fun () ->
        match Hashtbl.find_opt ambient id with Some c -> c | None -> default)

let with_ctx ctx f =
  let id = Thread.id (Thread.self ()) in
  let prev =
    Mutex.protect ambient_lock (fun () ->
        let prev = Hashtbl.find_opt ambient id in
        Hashtbl.replace ambient id ctx;
        prev)
  in
  Atomic.incr ambient_count;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect ambient_lock (fun () ->
          match prev with
          | Some p -> Hashtbl.replace ambient id p
          | None -> Hashtbl.remove ambient id);
      Atomic.decr ambient_count)
    f

let with_ctx_opt ctx f = match ctx with None -> f () | Some c -> with_ctx c f

(* ---- Module-level API: thin wrappers over the current context ---- *)

let enabled () = Ctx.enabled (current ())

let streaming () = Ctx.streaming (current ())

let streamed_count () = Ctx.streamed_count (current ())

let clear () = Ctx.clear (current ())

let start ?gc () = Ctx.start ?gc (current ())

let start_streaming ?gc ?close emit = Ctx.start_streaming ?gc ?close (current ()) emit

let stream_to_file ?gc path = Ctx.stream_to_file ?gc (current ()) path

let stop () = Ctx.stop (current ())

let resume () = Ctx.resume (current ())

let begin_span ?cat ?args name = Ctx.begin_span ?cat ?args (current ()) name

let end_span name = Ctx.end_span (current ()) name

let with_span ?cat ?args name f = Ctx.with_span ?cat ?args (current ()) name f

let add_args args = Ctx.add_args (current ()) args

let open_spans () = Ctx.open_spans (current ())

let span_count () = Ctx.span_count (current ())

let iter_events ?from f = Ctx.iter_events ?from (current ()) f

let phase_totals ?from () = Ctx.phase_totals ?from (current ())

let export_json buf = Ctx.export_json (current ()) buf

let write_file path = Ctx.write_file (current ()) path

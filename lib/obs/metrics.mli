(** A process-wide registry of named counters, gauges and histograms.

    Instrumented modules register their metrics statically at module
    initialisation ([let m = Metrics.counter "refiner.splits"]) and bump
    them at runtime; registration is idempotent by name, so two modules
    naming the same metric share one cell.  All update operations are
    no-ops while the registry is {e disabled} (the default) — the cost
    of an instrumentation site is then one bool load and branch — and
    reads ({!counter_value}, {!pp}, {!to_json}) work regardless.

    The registry absorbs and supersedes the ad-hoc
    [Mdl_partition.Refiner.stats] / [Mdl_core.Key_cache] counters: the
    engine publishes every legacy counter into the registry under the
    [refiner.*] / [key_cache.*] / [rebuild.*] names, and the record
    types remain as a per-run compatibility view (one record can travel
    through a call tree; the registry is cumulative).  The test suite
    pins the two views equal over fresh runs.

    Domain-safe: counters and gauges are [Atomic.t] cells ({!set_max}
    is a CAS loop), histograms shard their buckets by domain id and
    merge the shards on read, and the registry itself is mutex-guarded
    — so [--stats]/[--metrics] stay exact when refinement runs on a
    {!Mdl_util.Domain_pool}.  Disabled-mode updates remain one atomic
    load and a branch. *)

type counter

type gauge

type histogram

val set_enabled : bool -> unit
(** Turn metric updates on or off (off by default). *)

val enabled : unit -> bool

(** {2 Counters — monotone integers} *)

val counter : string -> counter
(** The registered counter of that name (created zero on first use).
    @raise Invalid_argument if the name is registered as another kind. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : string -> int
(** Current value, [0] when the name is unregistered. *)

(** {2 Gauges — last/extremal float values} *)

val gauge : string -> gauge
(** @raise Invalid_argument if the name is registered as another kind. *)

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of the current and given value — for high-water
    marks like the interned-key alphabet. *)

val gauge_value : string -> float
(** Current value, [0.] when the name is unregistered or never set. *)

(** {2 Histograms — bucketed distributions} *)

val log_buckets : lo:float -> hi:float -> per_decade:int -> float array
(** Logarithmically spaced upper bounds from [lo] to at least [hi] with
    [per_decade] buckets per decade — the bucket layout used for
    key-evaluation and sort latencies (seconds span many orders of
    magnitude; linear buckets would waste all resolution on one end).
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade >= 1]. *)

val histogram : ?buckets:float array -> string -> histogram
(** The registered histogram of that name.  [buckets] are strictly
    increasing upper bounds; observations above the last bound land in
    an implicit overflow bucket.  Defaults to
    [log_buckets ~lo:1e-7 ~hi:10.0 ~per_decade:3] (100ns .. 10s).
    @raise Invalid_argument if the name is registered as another kind,
    or re-registered with different bounds. *)

val observe : histogram -> float -> unit

val histogram_stats : string -> int * float
(** [(count, sum)] of the named histogram; [(0, 0.)] when
    unregistered. *)

val histogram_buckets : string -> (float * int) array
(** [(upper_bound, count)] per bucket, the overflow bucket last with
    bound [infinity]; [[||]] when unregistered. *)

type hist_snapshot = {
  hs_bounds : float array;  (** strictly increasing finite upper bounds *)
  hs_counts : int array;  (** per-bucket counts, overflow bucket last *)
  hs_count : int;  (** total observations, [= sum of hs_counts] *)
  hs_sum : float;  (** sum of observed values *)
}
(** One consistent read of a histogram: bounds, non-cumulative bucket
    counts (one more than bounds — the overflow bucket is last), total
    count and sum.  All shards are merged under their locks in a single
    pass, so [hs_count] always equals the sum of [hs_counts] even while
    other domains keep observing. *)

val histogram_snapshot : string -> hist_snapshot option
(** Snapshot of the named histogram; [None] when unregistered.  The
    arrays are fresh copies — callers may mutate them. *)

val snapshot_quantile : hist_snapshot -> float -> float
(** [snapshot_quantile s q] estimates the [q]-quantile ([0 <= q <= 1],
    clamped) from the bucket counts by linear interpolation within the
    winning bucket — the same estimate as Prometheus'
    [histogram_quantile].  Ranks landing in the overflow bucket degrade
    to the largest finite bound; [0.] on an empty snapshot. *)

(** {2 Registry} *)

val reset : unit -> unit
(** Zero every registered metric, keeping the registrations (module
    initialisers only run once). *)

val names : unit -> string list
(** Registered metric names in registration order. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of every registered metric with a non-zero
    value, in registration order ([lumpmd --metrics]).  Histograms print
    count/sum/mean plus their non-empty buckets. *)

val to_json : Buffer.t -> unit
(** Append a JSON object [{"counters": {...}, "gauges": {...},
    "histograms": {...}}] with every registered metric. *)

val to_prometheus : Buffer.t -> unit
(** Append every registered metric in the Prometheus {e text exposition
    format} (version 0.0.4) — the body served by [lumpd]'s
    [GET /metrics] endpoint.  Registry names are sanitised to the
    Prometheus grammar (dots and dashes become underscores, so
    [serve.request_seconds] scrapes as [serve_request_seconds]);
    counters and gauges emit one sample each, histograms emit the
    cumulative [_bucket{le="..."}] series (the implicit overflow bucket
    as [le="+Inf"]) plus [_sum] and [_count].  Zero-valued metrics are
    included — a scraper sees every registered series from the first
    scrape. *)

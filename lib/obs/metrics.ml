type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_value : float Atomic.t }

(* Histograms shard their mutable state by domain so concurrent
   [observe]s contend only when domain ids collide modulo the shard
   count; readers merge shards under the per-shard locks. *)
let hist_shards = 8

type hist_shard = {
  s_lock : Mutex.t;
  s_counts : int array; (* length: bounds + 1 (overflow) *)
  mutable s_sum : float;
  mutable s_count : int;
}

type histogram = {
  h_name : string;
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_shard : hist_shard array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* The registry itself (creation, name lookup, dump) is guarded by one
   mutex — registration happens at module initialisation and reads are
   report-time only, so the lock is never on a hot path.  Metric
   {e updates} never touch it. *)
let registry_lock = Mutex.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let order : string list ref = ref [] (* reverse registration order *)

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name m =
  Hashtbl.add registry name m;
  order := name :: !order

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics.%s: %S is registered as another metric kind" want name)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some _ -> kind_error name "counter"
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          register name (Counter c);
          c)

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value 1)

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Atomic.get c.c_value
      | _ -> 0)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g
      | Some _ -> kind_error name "gauge"
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0.0 } in
          register name (Gauge g);
          g)

let set g v = if Atomic.get enabled_flag then Atomic.set g.g_value v

let set_max g v =
  if Atomic.get enabled_flag then begin
    let rec cas () =
      let cur = Atomic.get g.g_value in
      if v > cur && not (Atomic.compare_and_set g.g_value cur v) then cas ()
    in
    cas ()
  end

let gauge_value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> Atomic.get g.g_value
      | _ -> 0.0)

let log_buckets ~lo ~hi ~per_decade =
  if not (lo > 0.0 && hi > lo) || per_decade < 1 then
    invalid_arg "Metrics.log_buckets: need 0 < lo < hi and per_decade >= 1";
  let step = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec build acc b = if b >= hi then List.rev (b :: acc) else build (b :: acc) (b *. step) in
  Array.of_list (build [] lo)

let default_latency_buckets = lazy (log_buckets ~lo:1e-7 ~hi:10.0 ~per_decade:3)

let histogram ?buckets name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) ->
          (match buckets with
          | Some b when b <> h.h_bounds ->
              invalid_arg
                (Printf.sprintf "Metrics.histogram: %S re-registered with different buckets"
                   name)
          | _ -> ());
          h
      | Some _ -> kind_error name "histogram"
      | None ->
          let bounds =
            match buckets with Some b -> b | None -> Lazy.force default_latency_buckets
          in
          if Array.length bounds = 0 then
            invalid_arg "Metrics.histogram: empty bucket bounds";
          for i = 1 to Array.length bounds - 1 do
            if not (bounds.(i) > bounds.(i - 1)) then
              invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
          done;
          let h =
            {
              h_name = name;
              h_bounds = bounds;
              h_shard =
                Array.init hist_shards (fun _ ->
                    {
                      s_lock = Mutex.create ();
                      s_counts = Array.make (Array.length bounds + 1) 0;
                      s_sum = 0.0;
                      s_count = 0;
                    });
            }
          in
          register name (Histogram h);
          h)

let observe h v =
  if Atomic.get enabled_flag then begin
    (* Binary search for the first bound >= v; the overflow bucket is
       index [length bounds]. *)
    let n = Array.length h.h_bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if h.h_bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    let s = h.h_shard.((Domain.self () :> int) land (hist_shards - 1)) in
    Mutex.lock s.s_lock;
    s.s_counts.(!lo) <- s.s_counts.(!lo) + 1;
    s.s_sum <- s.s_sum +. v;
    s.s_count <- s.s_count + 1;
    Mutex.unlock s.s_lock
  end

(* Merge the shards of [h] under their locks: (count, sum, counts). *)
let merge_hist h =
  let counts = Array.make (Array.length h.h_bounds + 1) 0 in
  let sum = ref 0.0 and count = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.s_counts;
      sum := !sum +. s.s_sum;
      count := !count + s.s_count;
      Mutex.unlock s.s_lock)
    h.h_shard;
  (!count, !sum, counts)

let histogram_stats name =
  let h =
    locked (fun () ->
        match Hashtbl.find_opt registry name with Some (Histogram h) -> Some h | _ -> None)
  in
  match h with
  | Some h ->
      let count, sum, _ = merge_hist h in
      (count, sum)
  | None -> (0, 0.0)

type hist_snapshot = {
  hs_bounds : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

let histogram_snapshot name =
  let h =
    locked (fun () ->
        match Hashtbl.find_opt registry name with Some (Histogram h) -> Some h | _ -> None)
  in
  match h with
  | Some h ->
      let count, sum, counts = merge_hist h in
      Some { hs_bounds = Array.copy h.h_bounds; hs_counts = counts; hs_count = count; hs_sum = sum }
  | None -> None

(* Linear interpolation inside the winning bucket, the standard
   Prometheus [histogram_quantile] estimate; the overflow bucket
   degrades to its lower bound (the largest finite bound). *)
let snapshot_quantile s q =
  if s.hs_count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int s.hs_count in
    let nb = Array.length s.hs_bounds in
    let cum = ref 0 and i = ref 0 in
    while !i < Array.length s.hs_counts && float_of_int (!cum + s.hs_counts.(!i)) < rank do
      cum := !cum + s.hs_counts.(!i);
      i := !i + 1
    done;
    if !i >= nb then (if nb = 0 then 0.0 else s.hs_bounds.(nb - 1))
    else begin
      let lo = if !i = 0 then 0.0 else s.hs_bounds.(!i - 1) in
      let hi = s.hs_bounds.(!i) in
      let in_bucket = s.hs_counts.(!i) in
      if in_bucket = 0 then hi
      else lo +. ((hi -. lo) *. (rank -. float_of_int !cum) /. float_of_int in_bucket)
    end
  end

let histogram_buckets name =
  let h =
    locked (fun () ->
        match Hashtbl.find_opt registry name with Some (Histogram h) -> Some h | _ -> None)
  in
  match h with
  | Some h ->
      let _, _, counts = merge_hist h in
      Array.init
        (Array.length counts)
        (fun i ->
          ((if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity), counts.(i)))
  | None -> [||]

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Array.iter
                (fun s ->
                  Mutex.lock s.s_lock;
                  Array.fill s.s_counts 0 (Array.length s.s_counts) 0;
                  s.s_sum <- 0.0;
                  s.s_count <- 0;
                  Mutex.unlock s.s_lock)
                h.h_shard)
        registry)

let names () = locked (fun () -> List.rev !order)

(* Metrics in registration order, resolved under the lock so dumps
   never race a registration. *)
let metrics_snapshot () =
  locked (fun () -> List.rev_map (fun name -> Hashtbl.find registry name) !order)

let pp ppf () =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          let v = Atomic.get c.c_value in
          if v <> 0 then Format.fprintf ppf "%-34s %d@," c.c_name v
      | Gauge g ->
          let v = Atomic.get g.g_value in
          if v <> 0.0 then Format.fprintf ppf "%-34s %g@," g.g_name v
      | Histogram h ->
          let count, sum, counts = merge_hist h in
          if count > 0 then begin
            Format.fprintf ppf "%-34s n=%d sum=%g mean=%g@," h.h_name count sum
              (sum /. float_of_int count);
            Array.iteri
              (fun i c ->
                if c > 0 then
                  if i < Array.length h.h_bounds then
                    Format.fprintf ppf "  %-32s le=%.3g: %d@," "" h.h_bounds.(i) c
                  else Format.fprintf ppf "  %-32s le=inf: %d@," "" c)
              counts
          end)
    (metrics_snapshot ());
  Format.pp_close_box ppf ()

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* ---- Prometheus text exposition format (version 0.0.4) ---- *)

(* Registry names are dotted ([serve.request_seconds]); Prometheus
   metric names are [[a-zA-Z_:][a-zA-Z0-9_:]*].  Dots and dashes map to
   underscores, anything else unexpected maps to '_' too. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let to_prometheus buf =
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          let n = prom_name c.c_name in
          Buffer.add_string buf (Printf.sprintf "# HELP %s mdlump counter %s\n" n c.c_name);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Atomic.get c.c_value))
      | Gauge g ->
          let n = prom_name g.g_name in
          Buffer.add_string buf (Printf.sprintf "# HELP %s mdlump gauge %s\n" n g.g_name);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" n (prom_float (Atomic.get g.g_value)))
      | Histogram h ->
          let n = prom_name h.h_name in
          let count, sum, counts = merge_hist h in
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s mdlump histogram %s\n" n h.h_name);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          (* Prometheus buckets are cumulative, the per-shard counts are
             not; the running total converts, and the +Inf bucket equals
             the count series by construction. *)
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.h_bounds then prom_float h.h_bounds.(i) else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cum))
            counts;
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prom_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    (metrics_snapshot ())

let to_json buf =
  let snapshot = metrics_snapshot () in
  let items kind f =
    let first = ref true in
    List.iter
      (fun m ->
        let emit name =
          if !first then first := false else Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          escape_json buf name;
          Buffer.add_string buf "\": ";
          f m
        in
        match (m, kind) with
        | Counter c, `C -> emit c.c_name
        | Gauge g, `G -> emit g.g_name
        | Histogram h, `H -> emit h.h_name
        | _ -> ())
      snapshot
  in
  Buffer.add_string buf "{\"counters\": {";
  items `C (function
    | Counter c -> Buffer.add_string buf (string_of_int (Atomic.get c.c_value))
    | _ -> ());
  Buffer.add_string buf "}, \"gauges\": {";
  items `G (function
    | Gauge g -> Buffer.add_string buf (Printf.sprintf "%.17g" (Atomic.get g.g_value))
    | _ -> ());
  Buffer.add_string buf "}, \"histograms\": {";
  items `H (function
    | Histogram h ->
        let count, sum, counts = merge_hist h in
        Buffer.add_string buf
          (Printf.sprintf "{\"count\": %d, \"sum\": %.17g, \"buckets\": [" count sum);
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string buf ", ";
            let le =
              if i < Array.length h.h_bounds then Printf.sprintf "%.17g" h.h_bounds.(i)
              else "\"inf\""
            in
            Buffer.add_string buf (Printf.sprintf "{\"le\": %s, \"count\": %d}" le c))
          counts;
        Buffer.add_string buf "]}"
    | _ -> ());
  Buffer.add_string buf "}}"

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_counts : int array; (* length: bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let enabled_flag = ref false

let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let order : string list ref = ref [] (* reverse registration order *)

let register name m =
  Hashtbl.add registry name m;
  order := name :: !order

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics.%s: %S is registered as another metric kind" want name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name "counter"
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register name (Counter c);
      c

let incr c = if !enabled_flag then c.c_value <- c.c_value + 1

let add c n = if !enabled_flag then c.c_value <- c.c_value + n

let counter_value name =
  match Hashtbl.find_opt registry name with Some (Counter c) -> c.c_value | _ -> 0

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name "gauge"
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      register name (Gauge g);
      g

let set g v = if !enabled_flag then g.g_value <- v

let set_max g v = if !enabled_flag && v > g.g_value then g.g_value <- v

let gauge_value name =
  match Hashtbl.find_opt registry name with Some (Gauge g) -> g.g_value | _ -> 0.0

let log_buckets ~lo ~hi ~per_decade =
  if not (lo > 0.0 && hi > lo) || per_decade < 1 then
    invalid_arg "Metrics.log_buckets: need 0 < lo < hi and per_decade >= 1";
  let step = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec build acc b = if b >= hi then List.rev (b :: acc) else build (b :: acc) (b *. step) in
  Array.of_list (build [] lo)

let default_latency_buckets = lazy (log_buckets ~lo:1e-7 ~hi:10.0 ~per_decade:3)

let histogram ?buckets name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) ->
      (match buckets with
      | Some b when b <> h.h_bounds ->
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %S re-registered with different buckets"
               name)
      | _ -> ());
      h
  | Some _ -> kind_error name "histogram"
  | None ->
      let bounds =
        match buckets with Some b -> b | None -> Lazy.force default_latency_buckets
      in
      if Array.length bounds = 0 then
        invalid_arg "Metrics.histogram: empty bucket bounds";
      for i = 1 to Array.length bounds - 1 do
        if not (bounds.(i) > bounds.(i - 1)) then
          invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
      done;
      let h =
        {
          h_name = name;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      register name (Histogram h);
      h

let observe h v =
  if !enabled_flag then begin
    (* Binary search for the first bound >= v; the overflow bucket is
       index [length bounds]. *)
    let n = Array.length h.h_bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if h.h_bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    h.h_counts.(!lo) <- h.h_counts.(!lo) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

let histogram_stats name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> (h.h_count, h.h_sum)
  | _ -> (0, 0.0)

let histogram_buckets name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) ->
      Array.init
        (Array.length h.h_counts)
        (fun i ->
          ((if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity), h.h_counts.(i)))
  | _ -> [||]

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
    registry

let names () = List.rev !order

let pp ppf () =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c -> if c.c_value <> 0 then Format.fprintf ppf "%-34s %d@," c.c_name c.c_value
      | Gauge g -> if g.g_value <> 0.0 then Format.fprintf ppf "%-34s %g@," g.g_name g.g_value
      | Histogram h ->
          if h.h_count > 0 then begin
            Format.fprintf ppf "%-34s n=%d sum=%g mean=%g@," h.h_name h.h_count h.h_sum
              (h.h_sum /. float_of_int h.h_count);
            Array.iteri
              (fun i c ->
                if c > 0 then
                  if i < Array.length h.h_bounds then
                    Format.fprintf ppf "  %-32s le=%.3g: %d@," "" h.h_bounds.(i) c
                  else Format.fprintf ppf "  %-32s le=inf: %d@," "" c)
              h.h_counts
          end)
    (names ());
  Format.pp_close_box ppf ()

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json buf =
  let items kind f =
    let first = ref true in
    List.iter
      (fun name ->
        match (Hashtbl.find registry name, kind) with
        | Counter c, `C ->
            if !first then first := false else Buffer.add_string buf ", ";
            Buffer.add_char buf '"';
            escape_json buf c.c_name;
            Buffer.add_string buf "\": ";
            f (Counter c)
        | Gauge g, `G ->
            if !first then first := false else Buffer.add_string buf ", ";
            Buffer.add_char buf '"';
            escape_json buf g.g_name;
            Buffer.add_string buf "\": ";
            f (Gauge g)
        | Histogram h, `H ->
            if !first then first := false else Buffer.add_string buf ", ";
            Buffer.add_char buf '"';
            escape_json buf h.h_name;
            Buffer.add_string buf "\": ";
            f (Histogram h)
        | _ -> ())
      (names ())
  in
  Buffer.add_string buf "{\"counters\": {";
  items `C (function Counter c -> Buffer.add_string buf (string_of_int c.c_value) | _ -> ());
  Buffer.add_string buf "}, \"gauges\": {";
  items `G (function Gauge g -> Buffer.add_string buf (Printf.sprintf "%.17g" g.g_value) | _ -> ());
  Buffer.add_string buf "}, \"histograms\": {";
  items `H (function
    | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf "{\"count\": %d, \"sum\": %.17g, \"buckets\": [" h.h_count h.h_sum);
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string buf ", ";
            let le =
              if i < Array.length h.h_bounds then Printf.sprintf "%.17g" h.h_bounds.(i)
              else "\"inf\""
            in
            Buffer.add_string buf (Printf.sprintf "{\"le\": %s, \"count\": %d}" le c))
          h.h_counts;
        Buffer.add_string buf "]}"
    | _ -> ());
  Buffer.add_string buf "}}"

module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Csr = Mdl_sparse.Csr
module Coo = Mdl_sparse.Coo
module Floatx = Mdl_util.Floatx
module Hashx = Mdl_util.Hashx

type choice = Formal_sums | Expanded_matrices

type t = Sum of Formal_sum.t | Matrix of Csr.t

let quantize ?eps = function
  | Sum s -> Sum (Formal_sum.quantize ?eps s)
  | Matrix m -> Matrix (Csr.map (Floatx.quantize ?eps) m)

let compare_matrices_exact a b =
  let c = Int.compare (Csr.rows a) (Csr.rows b) in
  if c <> 0 then c
  else
    let c = Int.compare (Csr.cols a) (Csr.cols b) in
    if c <> 0 then c
    else begin
      (* Both matrices are in canonical (row-major sorted) form; compare
         entry streams. *)
      let entries m =
        let acc = ref [] in
        Csr.iter (fun i j v -> acc := (i, j, v) :: !acc) m;
        List.rev !acc
      in
      let rec loop ea eb =
        match (ea, eb) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | (i1, j1, v1) :: ra, (i2, j2, v2) :: rb ->
            let c = compare (i1, j1) (i2, j2) in
            if c <> 0 then c
            else
              let c = Float.compare v1 v2 in
              if c <> 0 then c else loop ra rb
      in
      loop (entries a) (entries b)
    end

let compare_exact a b =
  match (a, b) with
  | Sum sa, Sum sb -> Formal_sum.compare sa sb
  | Matrix ma, Matrix mb -> compare_matrices_exact ma mb
  | Sum _, Matrix _ -> -1
  | Matrix _, Sum _ -> 1

let compare ?eps a b = compare_exact (quantize ?eps a) (quantize ?eps b)

let equal a b =
  match (a, b) with
  | Sum sa, Sum sb -> Formal_sum.equal sa sb
  | Matrix ma, Matrix mb -> Csr.equal ma mb
  | Sum _, Matrix _ | Matrix _, Sum _ -> false

let hash = function
  | Sum s -> Hashx.combine 1 (Formal_sum.hash s)
  | Matrix m -> Hashx.combine 2 (Csr.hash m)

type context = {
  md : Md.t;
  flattened : (Md.node_id, Csr.t) Hashtbl.t;
}

let make_context md = { md; flattened = Hashtbl.create 64 }

(* Flatten a node to the real matrix it represents over the suffix
   product space (memoised).  The terminal flattens to the 1x1 [1]. *)
let rec flatten ctx id =
  match Hashtbl.find_opt ctx.flattened id with
  | Some m -> m
  | None ->
      let level = Md.node_level ctx.md id in
      let m =
        if level > Md.levels ctx.md then Csr.identity 1
        else begin
          let n = Md.size ctx.md level in
          let suffix =
            let acc = ref 1 in
            for l = level + 1 to Md.levels ctx.md do
              acc := !acc * Md.size ctx.md l
            done;
            !acc
          in
          let dim = n * suffix in
          let coo = Coo.create ~rows:dim ~cols:dim in
          Md.iter_node_entries ctx.md id (fun r c s ->
              List.iter
                (fun (child, w) ->
                  let block = flatten ctx child in
                  Csr.iter
                    (fun br bc v ->
                      Coo.add coo ((r * suffix) + br) ((c * suffix) + bc) (w *. v))
                    block)
                (Formal_sum.terms s));
          Csr.of_coo coo
        end
      in
      Hashtbl.add ctx.flattened id m;
      m

let expand ctx sum =
  (* sum_{n3} r * R_{n3} as an actual matrix. *)
  match Formal_sum.terms sum with
  | [] -> Csr.of_coo (Coo.create ~rows:0 ~cols:0)
  | (child0, w0) :: rest ->
      List.fold_left
        (fun acc (child, w) -> Csr.add acc (Csr.scale w (flatten ctx child)))
        (Csr.scale w0 (flatten ctx child0))
        rest

let eval_keys ?eps ?skip ?pool ?(par_threshold = 1024) ctx choice mode node
    (perm, first, len) =
  (* Accumulate formal sums per touched state: over columns of the
     splitter for ordinary lumping (row sums R_n(s, C)), over rows for
     exact lumping (column sums R_n(C, s)).  States for which [skip]
     holds are not accumulated at all: a state alone in its class can
     never be split off, so its key — however expensive — can only ever
     be compared against itself. *)
  let acc : (int, Formal_sum.t) Hashtbl.t = Hashtbl.create 32 in
  let skip = match skip with Some f -> f | None -> fun _ -> false in
  let touch s sum =
    let prev = Option.value ~default:Formal_sum.empty (Hashtbl.find_opt acc s) in
    Hashtbl.replace acc s (Formal_sum.add prev sum)
  in
  let entries i =
    match mode with
    | Mdl_lumping.State_lumping.Ordinary -> Md.node_col ctx.md node perm.(i)
    | Mdl_lumping.State_lumping.Exact -> Md.node_row ctx.md node perm.(i)
  in
  (match pool with
  | Some pool when Mdl_util.Domain_pool.size pool > 1 && len >= par_threshold ->
      (* Collect raw (state, contribution) pairs per contiguous member
         chunk in walk order on the pool, then replay [touch] chunk by
         chunk on this domain.  [Formal_sum.add] is float addition —
         not associative — so merging per-domain *accumulated* sums
         would perturb the result; only replaying the contributions in
         member order reproduces the sequential sums bit for bit.
         Chunk boundaries cannot matter: the concatenation of chunks in
         index order is exactly the member walk 0..len-1, whatever the
         chunk count or which domain collected each chunk. *)
      let tasks = min len (4 * Mdl_util.Domain_pool.size pool) in
      let chunks = Array.make tasks [] in
      Mdl_util.Domain_pool.run pool ~n:tasks (fun ci ->
          let lo, hi = Mdl_util.Domain_pool.split ~n:len ~tasks ci in
          let out = ref [] in
          for i = first + lo to first + hi - 1 do
            List.iter (fun (s, sum) -> if not (skip s) then out := (s, sum) :: !out) (entries i)
          done;
          chunks.(ci) <- List.rev !out);
      Array.iter (fun chunk -> List.iter (fun (s, sum) -> touch s sum) chunk) chunks
  | _ ->
      for i = first to first + len - 1 do
        List.iter (fun (s, sum) -> if not (skip s) then touch s sum) (entries i)
      done);
  (* Quantize at emission: every pipeline downstream (generic compare,
     interning, reference engine) then sees the same canonical key, and
     a sum whose coefficients all quantize away is dropped here exactly
     like the implicit zero key of an untouched state.  Emission order
     is pinned to what the historical list-building fold produced — the
     reverse of [Hashtbl] iteration order — so the interned gid ranks
     (first appearance over these arrays) are unchanged. *)
  let cap = Hashtbl.length acc in
  let tmp_s = Array.make (max cap 1) 0 in
  let tmp_k = Array.make (max cap 1) (Sum Formal_sum.empty) in
  let m = ref 0 in
  Hashtbl.iter
    (fun s sum ->
      let sum = Formal_sum.quantize ?eps sum in
      if not (Formal_sum.is_empty sum) then begin
        let key =
          match choice with
          | Formal_sums -> Sum sum
          | Expanded_matrices -> Matrix (Csr.map (Floatx.quantize ?eps) (expand ctx sum))
        in
        tmp_s.(!m) <- s;
        tmp_k.(!m) <- key;
        incr m
      end)
    acc;
  let m = !m in
  ( Array.init m (fun i -> tmp_s.(m - 1 - i)),
    Array.init m (fun i -> tmp_k.(m - 1 - i)) )

let splitter_keys ?eps ?skip ctx choice mode node slice =
  let states, keys = eval_keys ?eps ?skip ctx choice mode node slice in
  List.init (Array.length states) (fun i -> (states.(i), keys.(i)))

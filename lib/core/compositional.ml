let log_src = Logs.Src.create "mdl.lump" ~doc:"compositional MD lumping"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition

type result = {
  lumped : Md.t;
  partitions : Partition.t array;
}

let rebuild mode md partitions =
  let nlevels = Md.levels md in
  let new_sizes = Array.map Partition.num_classes partitions in
  let out = Md.create ~sizes:new_sizes in
  let node_map = Hashtbl.create 64 in
  Hashtbl.add node_map (Md.terminal md) (Md.terminal out);
  let remap child =
    match Hashtbl.find_opt node_map child with
    | Some id -> id
    | None -> invalid_arg "Compositional.rebuild: dangling child reference"
  in
  let live = Md.live_nodes md in
  for level = nlevels downto 1 do
    let p = partitions.(level - 1) in
    List.iter
      (fun node ->
        let entries = ref [] in
        (match mode with
        | Mdl_lumping.State_lumping.Ordinary ->
            (* Representative rows, class-summed columns. *)
            for ci = 0 to Partition.num_classes p - 1 do
              let rep = Partition.representative p ci in
              List.iter
                (fun (c, sum) ->
                  entries :=
                    (ci, Partition.class_of p c, Formal_sum.map_children remap sum)
                    :: !entries)
                (Md.node_row md node rep)
            done
        | Mdl_lumping.State_lumping.Exact ->
            (* Aggregated form: all entries, scaled by 1/|C_row|. *)
            Md.iter_node_entries md node (fun r c sum ->
                let ci = Partition.class_of p r in
                let w = 1.0 /. float_of_int (Partition.class_size p ci) in
                entries :=
                  ( ci,
                    Partition.class_of p c,
                    Formal_sum.scale w (Formal_sum.map_children remap sum) )
                  :: !entries));
        let new_id = Md.add_node out ~level !entries in
        Hashtbl.replace node_map node new_id)
      live.(level - 1)
  done;
  Md.set_root out (remap (Md.root md));
  out

let lump_with_partitions mode md partitions =
  if Array.length partitions <> Md.levels md then
    invalid_arg "Compositional.lump_with_partitions: level count mismatch";
  Array.iteri
    (fun i p ->
      if Partition.size p <> Md.size md (i + 1) then
        invalid_arg "Compositional.lump_with_partitions: partition size mismatch")
    partitions;
  { lumped = rebuild mode md partitions; partitions }

let lump ?eps ?key ?stats ?specialised mode md ~rewards ~initial =
  let partitions =
    Array.init (Md.levels md) (fun i ->
        let level = i + 1 in
        let p_ini =
          Level_lumping.initial_partition ?eps mode md ~level ~rewards ~initial
        in
        let level_stats = Mdl_partition.Refiner.create_stats () in
        let p, dt =
          Mdl_util.Timer.time (fun () ->
              Level_lumping.comp_lumping_level ?eps ?key ~stats:level_stats ?specialised
                mode md ~level ~initial:p_ini)
        in
        Log.debug (fun m ->
            m "level %d: %d -> %d classes (P_ini %d) in %.3fs [refiner: %a]" level
              (Partition.size p)
              (Partition.num_classes p)
              (Partition.num_classes p_ini)
              dt Mdl_partition.Refiner.pp_stats level_stats);
        (match stats with
        | Some dst -> Mdl_partition.Refiner.add_stats dst level_stats
        | None -> ());
        p)
  in
  lump_with_partitions mode md partitions

let class_tuple r s =
  if Array.length s <> Array.length r.partitions then
    invalid_arg "Compositional.class_tuple: tuple length mismatch";
  Array.mapi (fun i si -> Partition.class_of r.partitions.(i) si) s

let class_volume r ct =
  if Array.length ct <> Array.length r.partitions then
    invalid_arg "Compositional.class_volume: tuple length mismatch";
  let vol = ref 1 in
  Array.iteri (fun i ci -> vol := !vol * Partition.class_size r.partitions.(i) ci) ct;
  !vol

let lump_statespace r ss = Statespace.map ss (class_tuple r)

let is_closed r ss =
  (* The reachable states of each global class must number exactly the
     class volume (product of local class sizes). *)
  let counts = Hashtbl.create (Statespace.size ss) in
  Statespace.iter
    (fun _ s ->
      let ct = class_tuple r s in
      let n = Option.value ~default:0 (Hashtbl.find_opt counts ct) in
      Hashtbl.replace counts ct (n + 1))
    ss;
  Hashtbl.fold (fun ct n ok -> ok && n = class_volume r ct) counts true

let check_sizes r ss lumped_ss v fn =
  if Array.length v <> Statespace.size ss then
    invalid_arg (Printf.sprintf "Compositional.%s: vector size mismatch" fn);
  (* The lumped side must actually be a lumped image under [r]: same
     number of levels, every substate a valid class id.  Without this, a
     statespace belonging to a different model slips through and the
     per-class sums land in the wrong slots (or divide by zero in
     [average_vector]). *)
  let levels = Array.length r.partitions in
  if Statespace.levels ss <> levels then
    invalid_arg (Printf.sprintf "Compositional.%s: statespace level count mismatch" fn);
  if Statespace.levels lumped_ss <> levels then
    invalid_arg
      (Printf.sprintf "Compositional.%s: lumped statespace level count mismatch" fn);
  Statespace.iter
    (fun _ ct ->
      Array.iteri
        (fun i ci ->
          if ci < 0 || ci >= Partition.num_classes r.partitions.(i) then
            invalid_arg
              (Printf.sprintf "Compositional.%s: lumped statespace class id out of range"
                 fn))
        ct)
    lumped_ss

let aggregate_vector r ss lumped_ss v =
  check_sizes r ss lumped_ss v "aggregate_vector";
  let out = Array.make (Statespace.size lumped_ss) 0.0 in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (class_tuple r s) with
      | Some j -> out.(j) <- out.(j) +. v.(i)
      | None -> invalid_arg "Compositional.aggregate_vector: class tuple not in lumped space")
    ss;
  out

let average_vector r ss lumped_ss v =
  check_sizes r ss lumped_ss v "average_vector";
  let out = Array.make (Statespace.size lumped_ss) 0.0 in
  let counts = Array.make (Statespace.size lumped_ss) 0 in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (class_tuple r s) with
      | Some j ->
          out.(j) <- out.(j) +. v.(i);
          counts.(j) <- counts.(j) + 1
      | None -> invalid_arg "Compositional.average_vector: class tuple not in lumped space")
    ss;
  Array.mapi
    (fun j total ->
      (* A lumped state no flat state maps to has no average; dividing
         would silently poison the vector with a nan. *)
      if counts.(j) = 0 then
        invalid_arg
          "Compositional.average_vector: lumped state receives no flat states (is \
           lumped_ss the image of ss?)"
      else total /. float_of_int counts.(j))
    out

let representative_pick r l c = Partition.representative r.partitions.(l - 1) c

let lumped_sizes r = Array.map Partition.num_classes r.partitions

let lumped_rewards r d =
  Decomposed.relabel d ~new_sizes:(lumped_sizes r) ~pick:(representative_pick r)

let lumped_initial r d =
  Decomposed.relabel d ~new_sizes:(lumped_sizes r) ~pick:(representative_pick r)

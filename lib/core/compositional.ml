let log_src = Logs.Src.create "mdl.lump" ~doc:"compositional MD lumping"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics
module Domain_pool = Mdl_util.Domain_pool

let c_nodes_rebuilt = Metrics.counter "rebuild.nodes_rebuilt"

let c_nodes_reused = Metrics.counter "rebuild.nodes_reused"

let c_lumps = Metrics.counter "lump.runs"

let c_sweep_points = Metrics.counter "sweep.points"

let c_sweep_level_fixpoints = Metrics.counter "sweep.level_fixpoints"

let c_sweep_level_reused = Metrics.counter "sweep.level_reused"

let c_sweep_rebuilds = Metrics.counter "sweep.rebuilds"

let c_sweep_rebuild_reused = Metrics.counter "sweep.rebuild_reused"

let m_sweep_point_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-6 ~hi:10.0 ~per_decade:3)
    "sweep.point_seconds"

type result = {
  lumped : Md.t;
  partitions : Partition.t array;
}

(* A level partition is the identity when every state is its own class
   id.  Only then may class ids be used interchangeably with state ids,
   which is what the verbatim-reuse paths below rely on; a discrete but
   renumbered partition (possible through [lump_with_partitions]) does
   not qualify.  [Level_lumping.comp_lumping_level] canonicalises its
   discrete results to the identity, so lump runs always hit the fast
   path when a level does not lump. *)
let is_identity p =
  let n = Partition.size p in
  Partition.num_classes p = n
  &&
  let ok = ref true in
  for s = 0 to n - 1 do
    if Partition.class_of p s <> s then ok := false
  done;
  !ok

let bump_rebuilt stats n =
  Metrics.add c_nodes_rebuilt n;
  match stats with
  | Some st -> st.Refiner.nodes_rebuilt <- st.Refiner.nodes_rebuilt + n
  | None -> ()

let bump_reused stats n =
  Metrics.add c_nodes_reused n;
  match stats with
  | Some st -> st.Refiner.nodes_reused <- st.Refiner.nodes_reused + n
  | None -> ()

(* How many pool tasks to cut [n] work items into: enough for dynamic
   load balancing, bounded so per-task overhead stays negligible. *)
let task_count pool n = min n (4 * Domain_pool.size pool)

let rebuild_body ?stats ?(incremental = true) ?pool ?(par_threshold = 1024) mode md
    partitions =
  let nlevels = Md.levels md in
  (* [incremental:false] restores the from-scratch rebuild (every node
     reconstructed entry by entry) — the faithful uncached baseline the
     bench races the memoised path against. *)
  let identity =
    if incremental then Array.map is_identity partitions
    else Array.map (fun _ -> false) partitions
  in
  if Array.for_all Fun.id identity then begin
    (* Nothing lumps at any level: the lumped diagram is the input
       diagram itself.  Alias it (the result shares the node store)
       instead of copying node by node. *)
    bump_reused stats (Md.num_live_nodes md);
    md
  end
  else begin
    let new_sizes = Array.map Partition.num_classes partitions in
    let out = Md.create ~sizes:new_sizes in
    let node_map = Hashtbl.create 64 in
    Hashtbl.add node_map (Md.terminal md) (Md.terminal out);
    let remap child =
      match Hashtbl.find_opt node_map child with
      | Some id -> id
      | None -> invalid_arg "Compositional.rebuild: dangling child reference"
    in
    let live = Md.live_nodes md in
    for level = nlevels downto 1 do
      let p = partitions.(level - 1) in
      if identity.(level - 1) then
        (* Identity level: every quotient node is the original node with
           children remapped — import verbatim, skipping the quotient
           entry construction and [add_node]'s validation/sort. *)
        List.iter
          (fun node ->
            Hashtbl.replace node_map node (Md.import_node out ~level md node remap);
            bump_reused stats 1)
          live.(level - 1)
      else if incremental then begin
        (* Fast quotient build: flat class-indexed accumulation emitted
           through the raw sorted-rows constructor, skipping
           [add_node]'s per-entry hashing/validation/sort.  Entries are
           folded in {e descending} (row, col) order — the order
           [add_node] combines a consed entry list in — so the
           floating-point coefficients come out bit-identical to the
           from-scratch path and both paths hash-cons to equal
           diagrams. *)
        let nc = Partition.num_classes p in
        (* Per-node quotient rows are computed independently (per-task
           scratch, untouched per-node fold order), so they can be
           produced on any domain; the [add_node_sorted_rows] commits —
           hash-consing into the shared store — run on this domain in
           node order, which keeps node ids, cons-table state and the
           [node_map] exactly as the sequential build makes them. *)
        let build =
          match mode with
          | Mdl_lumping.State_lumping.Ordinary ->
              (* Representative rows, class-summed columns. *)
              fun () ->
                let acc = Array.make nc Formal_sum.empty in
                let seen = Array.make nc false in
                fun node ->
                  let rows = Array.make nc [||] in
                  for ci = 0 to nc - 1 do
                    let rep = Partition.representative p ci in
                    let cols = ref [] in
                    Md.rev_iter_node_row md node rep (fun c sum ->
                        let cj = Partition.class_of p c in
                        if not seen.(cj) then begin
                          seen.(cj) <- true;
                          cols := cj :: !cols
                        end;
                        acc.(cj) <-
                          Formal_sum.add acc.(cj) (Formal_sum.map_children remap sum));
                    let row =
                      List.filter_map
                        (fun cj ->
                          let s = acc.(cj) in
                          acc.(cj) <- Formal_sum.empty;
                          seen.(cj) <- false;
                          if Formal_sum.is_empty s then None else Some (cj, s))
                        (List.sort compare !cols)
                    in
                    rows.(ci) <- Array.of_list row
                  done;
                  rows
          | Mdl_lumping.State_lumping.Exact ->
              (* Aggregated form: all entries, scaled by 1/|C_row|. *)
              fun () ->
                let acc = Array.make (nc * nc) Formal_sum.empty in
                let seen = Array.make (nc * nc) false in
                fun node ->
                  let touched = ref [] in
                  Md.rev_iter_node_entries md node (fun r c sum ->
                      let ci = Partition.class_of p r in
                      let w = 1.0 /. float_of_int (Partition.class_size p ci) in
                      let idx = (ci * nc) + Partition.class_of p c in
                      if not seen.(idx) then begin
                        seen.(idx) <- true;
                        touched := idx :: !touched
                      end;
                      acc.(idx) <-
                        Formal_sum.add acc.(idx)
                          (Formal_sum.scale w (Formal_sum.map_children remap sum)));
                  let per_row = Array.make nc [] in
                  (* Descending index order, so each row list conses up
                     ascending. *)
                  List.iter
                    (fun idx ->
                      let s = acc.(idx) in
                      acc.(idx) <- Formal_sum.empty;
                      seen.(idx) <- false;
                      if not (Formal_sum.is_empty s) then
                        per_row.(idx / nc) <- ((idx mod nc), s) :: per_row.(idx / nc))
                    (List.sort (fun a b -> compare (b : int) a) !touched);
                  Array.map Array.of_list per_row
        in
        let nodes = Array.of_list live.(level - 1) in
        let nnodes = Array.length nodes in
        let commit rows_of =
          Array.iteri
            (fun i node ->
              Hashtbl.replace node_map node (Md.add_node_sorted_rows out ~level (rows_of i));
              bump_rebuilt stats 1)
            nodes
        in
        match pool with
        | Some pool
          when Domain_pool.size pool > 1 && nnodes > 1 && nnodes * nc >= par_threshold ->
            let results = Array.make nnodes [||] in
            let tasks = task_count pool nnodes in
            Domain_pool.run pool ~n:tasks (fun t ->
                let lo, hi = Domain_pool.split ~n:nnodes ~tasks t in
                let build_node = build () in
                for i = lo to hi - 1 do
                  results.(i) <- build_node nodes.(i)
                done);
            commit (fun i -> results.(i))
        | _ ->
            let build_node = build () in
            commit (fun i -> build_node nodes.(i))
      end
      else
        List.iter
          (fun node ->
            let entries = ref [] in
            (match mode with
            | Mdl_lumping.State_lumping.Ordinary ->
                (* Representative rows, class-summed columns. *)
                for ci = 0 to Partition.num_classes p - 1 do
                  let rep = Partition.representative p ci in
                  List.iter
                    (fun (c, sum) ->
                      entries :=
                        (ci, Partition.class_of p c, Formal_sum.map_children remap sum)
                        :: !entries)
                    (Md.node_row md node rep)
                done
            | Mdl_lumping.State_lumping.Exact ->
                (* Aggregated form: all entries, scaled by 1/|C_row|. *)
                Md.iter_node_entries md node (fun r c sum ->
                    let ci = Partition.class_of p r in
                    let w = 1.0 /. float_of_int (Partition.class_size p ci) in
                    entries :=
                      ( ci,
                        Partition.class_of p c,
                        Formal_sum.scale w (Formal_sum.map_children remap sum) )
                      :: !entries));
            let new_id = Md.add_node out ~level !entries in
            Hashtbl.replace node_map node new_id;
            bump_rebuilt stats 1)
          live.(level - 1)
    done;
    Md.set_root out (remap (Md.root md));
    out
  end

let rebuild ?stats ?incremental ?pool ?par_threshold mode md partitions =
  if not (Trace.enabled ()) then
    rebuild_body ?stats ?incremental ?pool ?par_threshold mode md partitions
  else
    Trace.with_span ~cat:"lump" "lump.rebuild" (fun () ->
        let out = rebuild_body ?stats ?incremental ?pool ?par_threshold mode md partitions in
        Trace.add_args
          [
            ("nodes_in", Trace.Int (Md.num_live_nodes md));
            ("nodes_out", Trace.Int (Md.num_live_nodes out));
            ("aliased", Trace.Bool (out == md));
          ];
        out)

let lump_with_partitions ?stats ?incremental ?pool ?par_threshold mode md partitions =
  if Array.length partitions <> Md.levels md then
    invalid_arg "Compositional.lump_with_partitions: level count mismatch";
  Array.iteri
    (fun i p ->
      if Partition.size p <> Md.size md (i + 1) then
        invalid_arg "Compositional.lump_with_partitions: partition size mismatch")
    partitions;
  { lumped = rebuild ?stats ?incremental ?pool ?par_threshold mode md partitions; partitions }

let lump_body ?eps ?key ?stats ~specialised ~memoise ?cache ?pool ?par_threshold mode
    md ~rewards ~initial =
  (* The key cache rides on the interned pipeline; under the generic
     baseline (or with memoisation off) no cache is used at all. *)
  let cache =
    if not (memoise && specialised) then None
    else Some (match cache with Some c -> c | None -> Key_cache.create ())
  in
  (* Rebinding retires the memoised rows (an epoch bump on a persistent
     cache, a wipe otherwise): per-bind entries are only sound within
     one monotone refinement run per level.  The intern tables and
     (same-md) flatten context survive the rebind.  Binding with the
     run's configuration makes a mismatched shared cache fail loudly
     here instead of deep inside a splitter pass. *)
  let choice = Option.value key ~default:Local_key.Formal_sums in
  (match cache with Some c -> Key_cache.bind ?eps ~choice ~mode c md | None -> ());
  (* Arm (or disarm, so a cache reused across runs never keeps a stale
     pool) intra-node splitter-key sharding on the cache; per-level
     forks below inherit the setting. *)
  (match cache with Some c -> Key_cache.set_pool ?par_threshold c pool | None -> ());
  let nlevels = Md.levels md in
  (* Levels are algorithmically independent — each computes its own
     initial partition and fixed point from [md] alone — so they can
     refine concurrently, each level running the untouched sequential
     code on its own domain with its own cache fork and stats record.
     The global trace buffer is the one piece of observability that is
     not domain-safe, so tracing runs fall back to sequential levels
     (intra-level sharding below never emits spans and stays on). *)
  let level_parallel =
    match pool with
    | Some pl -> Domain_pool.size pl > 1 && nlevels > 1 && not (Trace.enabled ())
    | None -> false
  in
  let partitions =
    if level_parallel then begin
      let pl = Option.get pool in
      (* The column cache fills lazily under splitter-key walks; fill it
         from this domain first so every later [node_col] is a pure
         read, from any domain. *)
      Md.warm_col_cache md;
      let results = Array.make nlevels None in
      Domain_pool.run pl ~n:nlevels (fun i ->
          let level = i + 1 in
          let p_ini =
            Level_lumping.initial_partition ?eps mode md ~level ~rewards ~initial
          in
          let level_stats = Refiner.create_stats () in
          let fork = Option.map Key_cache.fork cache in
          let p =
            Level_lumping.comp_lumping_level ?eps ?key ~stats:level_stats ~specialised
              ?cache:fork ?pool mode md ~level ~initial:p_ini
          in
          results.(i) <- Some (p, level_stats));
      Array.mapi
        (fun i r ->
          match r with
          | None -> assert false
          | Some (p, level_stats) ->
              (* Merge in level order: the accumulated totals then equal
                 a sequential run's, whatever order the levels actually
                 finished in. *)
              Log.debug (fun m ->
                  m "level %d: %d -> %d classes [refiner: %a]" (i + 1)
                    (Partition.size p)
                    (Partition.num_classes p)
                    Refiner.pp_stats level_stats);
              (match stats with
              | Some dst -> Refiner.add_stats dst level_stats
              | None -> ());
              p)
        results
    end
    else
      Array.init nlevels (fun i ->
          let level = i + 1 in
          Trace.with_span ~cat:"lump"
            ~args:[ ("level", Trace.Int level) ]
            "lump.level"
            (fun () ->
              let p_ini =
                Trace.with_span ~cat:"lump" "lump.initial_partition" (fun () ->
                    Level_lumping.initial_partition ?eps mode md ~level ~rewards ~initial)
              in
              let level_stats = Refiner.create_stats () in
              let p, dt =
                Mdl_util.Timer.time (fun () ->
                    Level_lumping.comp_lumping_level ?eps ?key ~stats:level_stats
                      ~specialised ?cache ?pool mode md ~level ~initial:p_ini)
              in
              Log.debug (fun m ->
                  m "level %d: %d -> %d classes (P_ini %d) in %.3fs [refiner: %a]" level
                    (Partition.size p)
                    (Partition.num_classes p)
                    (Partition.num_classes p_ini)
                    dt Refiner.pp_stats level_stats);
              (match stats with
              | Some dst -> Refiner.add_stats dst level_stats
              | None -> ());
              Trace.add_args
                [
                  ("classes_initial", Trace.Int (Partition.num_classes p_ini));
                  ("classes", Trace.Int (Partition.num_classes p));
                ];
              p))
  in
  let r, dt =
    Mdl_util.Timer.time (fun () ->
        lump_with_partitions ?stats ~incremental:memoise ?pool ?par_threshold mode md
          partitions)
  in
  Log.debug (fun m ->
      m "rebuild: %d nodes -> %d nodes in %.3fs%s" (Md.num_live_nodes md)
        (Md.num_live_nodes r.lumped) dt
        (if r.lumped == md then " (aliased: nothing lumped)" else ""));
  r

let lump ?tctx ?eps ?key ?stats ?(specialised = true) ?(memoise = true) ?cache ?pool
    ?par_threshold mode md ~rewards ~initial =
  Trace.with_ctx_opt tctx (fun () ->
      Metrics.incr c_lumps;
      if not (Trace.enabled ()) then
        lump_body ?eps ?key ?stats ~specialised ~memoise ?cache ?pool ?par_threshold
          mode md ~rewards ~initial
      else
        Trace.with_span ~cat:"lump"
          ~args:
            [
              ("levels", Trace.Int (Md.levels md));
              ("specialised", Trace.Bool specialised);
              ("memoise", Trace.Bool memoise);
            ]
          "lump"
          (fun () ->
            lump_body ?eps ?key ?stats ~specialised ~memoise ?cache ?pool
              ?par_threshold mode md ~rewards ~initial))

(* ------------------------------------------------------------------ *)
(* Batched sweeps: one diagram, many reward/initial specifications.    *)

type sweep_spec = {
  sweep_rewards : Decomposed.t list;
  sweep_initial : Decomposed.t;
}

type sweep_stats = {
  points : int;
  level_fixpoints : int;
  level_reused : int;
  rebuilds : int;
  rebuilds_reused : int;
  cross_bind_hits : int;
}

type sweep = {
  sw_mode : Mdl_lumping.State_lumping.mode;
  sw_md : Md.t;
  sw_eps : float option;
  sw_key : Local_key.choice;
  sw_cache : Key_cache.t;
  sw_pool : Domain_pool.t option;
  sw_par_threshold : int option;
  sw_level_memo : (int * int array, int array) Hashtbl.t;
      (* (level, initial layout) -> final canonical assignment *)
  sw_rebuild_memo : (int array, Md.t) Hashtbl.t;
      (* concatenated final assignments -> lumped diagram *)
  mutable sw_points : int;
  mutable sw_level_fixpoints : int;
  mutable sw_level_reused : int;
  mutable sw_rebuilds : int;
  mutable sw_rebuilds_reused : int;
  sw_cross0 : int; (* cache cross-bind counter at engine creation *)
}

(* One flat int array capturing a partition completely — class order,
   member order, class contents: [len c0; members of c0 in slice order;
   len c1; ...].  Refinement is deterministic given this layout (the
   engine works on a layout-preserving copy of the initial partition),
   so it is the sound memo key for a level's fixed point.  A coarser
   key — the class *set*, i.e. {!Partition.canonical_assignment} alone —
   would be value-correct but could let a memo hit diverge bitwise from
   a fresh run at a quantization-grid boundary, because splitter-key
   float sums accumulate in member order. *)
let layout_key p =
  let n = Partition.size p in
  let nc = Partition.num_classes p in
  let out = Array.make (n + nc) 0 in
  let w = ref 0 in
  for c = 0 to nc - 1 do
    let perm, first, len = Partition.view p c in
    out.(!w) <- len;
    incr w;
    Array.blit perm first out !w len;
    w := !w + len
  done;
  out

let is_identity_assignment a =
  let ok = ref true in
  Array.iteri (fun i c -> if c <> i then ok := false) a;
  !ok

let sweep_create ?eps ?(key = Local_key.Formal_sums) ?cache ?pool ?par_threshold mode
    md =
  let cache = match cache with Some c -> c | None -> Key_cache.create () in
  Key_cache.set_persistent cache true;
  Key_cache.bind ?eps ~choice:key ~mode cache md;
  Key_cache.set_pool ?par_threshold cache pool;
  {
    sw_mode = mode;
    sw_md = md;
    sw_eps = eps;
    sw_key = key;
    sw_cache = cache;
    sw_pool = pool;
    sw_par_threshold = par_threshold;
    sw_level_memo = Hashtbl.create 64;
    sw_rebuild_memo = Hashtbl.create 16;
    sw_points = 0;
    sw_level_fixpoints = 0;
    sw_level_reused = 0;
    sw_rebuilds = 0;
    sw_rebuilds_reused = 0;
    sw_cross0 = Key_cache.cross_bind_hits cache;
  }

let sweep_point_body ?stats sw ~rewards ~initial =
  let md = sw.sw_md and mode = sw.sw_mode in
  let nlevels = Md.levels md in
  (* Epoch bump: tier-1 rows of earlier points retire, the shared
     content-keyed store keeps answering across points. *)
  Key_cache.bind ?eps:sw.sw_eps ~choice:sw.sw_key ~mode sw.sw_cache md;
  Key_cache.set_pool ?par_threshold:sw.sw_par_threshold sw.sw_cache sw.sw_pool;
  let inis =
    Array.init nlevels (fun i ->
        Trace.with_span ~cat:"lump" "lump.initial_partition" (fun () ->
            Level_lumping.initial_partition ?eps:sw.sw_eps mode md ~level:(i + 1)
              ~rewards ~initial))
  in
  let finals = Array.make nlevels None in
  let level_stats_arr = Array.make nlevels None in
  let misses = ref [] in
  Array.iteri
    (fun i p_ini ->
      let memo_key = (i + 1, layout_key p_ini) in
      match Hashtbl.find_opt sw.sw_level_memo memo_key with
      | Some assignment ->
          (* The memoised fixed point is replayed from its canonical
             assignment; [comp_lumping_level] canonicalises exactly the
             same way (discrete -> identity, otherwise renumber by first
             appearance), so this partition equals the one a fresh run
             would return — layout included. *)
          sw.sw_level_reused <- sw.sw_level_reused + 1;
          Metrics.incr c_sweep_level_reused;
          let p =
            if is_identity_assignment assignment then
              Partition.discrete (Array.length assignment)
            else Partition.of_class_assignment assignment
          in
          finals.(i) <- Some p
      | None -> misses := (i, memo_key) :: !misses)
    inis;
  let misses = Array.of_list (List.rev !misses) in
  let nmisses = Array.length misses in
  sw.sw_level_fixpoints <- sw.sw_level_fixpoints + nmisses;
  Metrics.add c_sweep_level_fixpoints nmisses;
  let run_level cache (i, _) =
    let level = i + 1 in
    let level_stats = Refiner.create_stats () in
    let p =
      Level_lumping.comp_lumping_level ?eps:sw.sw_eps ~key:sw.sw_key ~stats:level_stats
        ~specialised:true ?cache ?pool:sw.sw_pool mode md ~level ~initial:inis.(i)
    in
    (p, level_stats)
  in
  let level_parallel =
    match sw.sw_pool with
    | Some pl -> Domain_pool.size pl > 1 && nmisses > 1 && not (Trace.enabled ())
    | None -> false
  in
  let results = Array.make nmisses None in
  if level_parallel then begin
    let pl = Option.get sw.sw_pool in
    (* As in [lump_body]: fill the lazy column cache from this domain
       first so every later [node_col] is a pure read, from any
       domain.  Each miss level refines on its own cache fork; the
       forks publish their rows to the shared persistent store, so the
       work survives them. *)
    Md.warm_col_cache md;
    Domain_pool.run pl ~n:nmisses (fun t ->
        results.(t) <- Some (run_level (Some (Key_cache.fork sw.sw_cache)) misses.(t)))
  end
  else
    Array.iteri
      (fun t miss -> results.(t) <- Some (run_level (Some sw.sw_cache) miss))
      misses;
  Array.iteri
    (fun t (i, memo_key) ->
      match results.(t) with
      | None -> assert false
      | Some (p, level_stats) ->
          (* [p] is canonical, so [to_class_assignment] already is the
             canonical assignment. *)
          Hashtbl.replace sw.sw_level_memo memo_key (Partition.to_class_assignment p);
          finals.(i) <- Some p;
          level_stats_arr.(i) <- Some level_stats)
    misses;
  (* Merge per-level stats in level order, whatever order the levels
     refined in, so the totals match a sequential run's. *)
  (match stats with
  | Some dst ->
      Array.iter
        (function Some ls -> Refiner.add_stats dst ls | None -> ())
        level_stats_arr
  | None -> ());
  let partitions = Array.map Option.get finals in
  (* Per-level assignment lengths are fixed by the diagram, so the plain
     concatenation is an injective key for the partition tuple. *)
  let rebuild_key =
    Array.concat (Array.to_list (Array.map Partition.to_class_assignment partitions))
  in
  match Hashtbl.find_opt sw.sw_rebuild_memo rebuild_key with
  | Some lumped ->
      (* The quotient is a pure function of (diagram, partitions, mode):
         equal canonical assignments rebuild to an [Md.equal] diagram,
         so the previously built one is aliased.  [nodes_rebuilt] /
         [nodes_reused] stats are not re-counted for a replay. *)
      sw.sw_rebuilds_reused <- sw.sw_rebuilds_reused + 1;
      Metrics.incr c_sweep_rebuild_reused;
      { lumped; partitions }
  | None ->
      sw.sw_rebuilds <- sw.sw_rebuilds + 1;
      Metrics.incr c_sweep_rebuilds;
      let r =
        lump_with_partitions ?stats ~incremental:true ?pool:sw.sw_pool
          ?par_threshold:sw.sw_par_threshold mode md partitions
      in
      Hashtbl.add sw.sw_rebuild_memo rebuild_key r.lumped;
      r

let sweep_point ?tctx ?stats sw ~rewards ~initial =
  Trace.with_ctx_opt tctx @@ fun () ->
  sw.sw_points <- sw.sw_points + 1;
  Metrics.incr c_sweep_points;
  let traced () =
    if not (Trace.enabled ()) then sweep_point_body ?stats sw ~rewards ~initial
    else begin
      let reused0 = sw.sw_level_reused and rebuilt0 = sw.sw_rebuilds in
      Trace.with_span ~cat:"lump"
        ~args:[ ("point", Trace.Int sw.sw_points) ]
        "sweep.point"
        (fun () ->
          let r = sweep_point_body ?stats sw ~rewards ~initial in
          Trace.add_args
            [
              ("levels_reused", Trace.Int (sw.sw_level_reused - reused0));
              ("rebuilt", Trace.Bool (sw.sw_rebuilds > rebuilt0));
              ("nodes_out", Trace.Int (Md.num_live_nodes r.lumped));
            ];
          r)
    end
  in
  if not (Metrics.enabled ()) then traced ()
  else begin
    let r, dt = Mdl_util.Timer.time traced in
    Metrics.observe m_sweep_point_seconds dt;
    r
  end

let sweep_stats sw =
  {
    points = sw.sw_points;
    level_fixpoints = sw.sw_level_fixpoints;
    level_reused = sw.sw_level_reused;
    rebuilds = sw.sw_rebuilds;
    rebuilds_reused = sw.sw_rebuilds_reused;
    cross_bind_hits = Key_cache.cross_bind_hits sw.sw_cache - sw.sw_cross0;
  }

let sweep_cache sw = sw.sw_cache

let lump_sweep ?tctx ?eps ?key ?stats ?cache ?pool ?par_threshold mode md ~points =
  Trace.with_ctx_opt tctx @@ fun () ->
  let sw = sweep_create ?eps ?key ?cache ?pool ?par_threshold mode md in
  List.map
    (fun { sweep_rewards; sweep_initial } ->
      sweep_point ?stats sw ~rewards:sweep_rewards ~initial:sweep_initial)
    points

let class_tuple r s =
  if Array.length s <> Array.length r.partitions then
    invalid_arg "Compositional.class_tuple: tuple length mismatch";
  Array.mapi (fun i si -> Partition.class_of r.partitions.(i) si) s

let class_volume r ct =
  if Array.length ct <> Array.length r.partitions then
    invalid_arg "Compositional.class_volume: tuple length mismatch";
  let vol = ref 1 in
  Array.iteri (fun i ci -> vol := !vol * Partition.class_size r.partitions.(i) ci) ct;
  !vol

let lump_statespace r ss = Statespace.map ss (class_tuple r)

let is_closed r ss =
  (* The reachable states of each global class must number exactly the
     class volume (product of local class sizes). *)
  let counts = Hashtbl.create (Statespace.size ss) in
  Statespace.iter
    (fun _ s ->
      let ct = class_tuple r s in
      let n = Option.value ~default:0 (Hashtbl.find_opt counts ct) in
      Hashtbl.replace counts ct (n + 1))
    ss;
  Hashtbl.fold (fun ct n ok -> ok && n = class_volume r ct) counts true

let check_sizes r ss lumped_ss v fn =
  if Array.length v <> Statespace.size ss then
    invalid_arg (Printf.sprintf "Compositional.%s: vector size mismatch" fn);
  (* The lumped side must actually be a lumped image under [r]: same
     number of levels, every substate a valid class id.  Without this, a
     statespace belonging to a different model slips through and the
     per-class sums land in the wrong slots (or divide by zero in
     [average_vector]). *)
  let levels = Array.length r.partitions in
  if Statespace.levels ss <> levels then
    invalid_arg (Printf.sprintf "Compositional.%s: statespace level count mismatch" fn);
  if Statespace.levels lumped_ss <> levels then
    invalid_arg
      (Printf.sprintf "Compositional.%s: lumped statespace level count mismatch" fn);
  Statespace.iter
    (fun _ ct ->
      Array.iteri
        (fun i ci ->
          if ci < 0 || ci >= Partition.num_classes r.partitions.(i) then
            invalid_arg
              (Printf.sprintf "Compositional.%s: lumped statespace class id out of range"
                 fn))
        ct)
    lumped_ss

let aggregate_vector r ss lumped_ss v =
  check_sizes r ss lumped_ss v "aggregate_vector";
  let out = Array.make (Statespace.size lumped_ss) 0.0 in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (class_tuple r s) with
      | Some j -> out.(j) <- out.(j) +. v.(i)
      | None -> invalid_arg "Compositional.aggregate_vector: class tuple not in lumped space")
    ss;
  out

let average_vector r ss lumped_ss v =
  check_sizes r ss lumped_ss v "average_vector";
  let out = Array.make (Statespace.size lumped_ss) 0.0 in
  let counts = Array.make (Statespace.size lumped_ss) 0 in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (class_tuple r s) with
      | Some j ->
          out.(j) <- out.(j) +. v.(i);
          counts.(j) <- counts.(j) + 1
      | None -> invalid_arg "Compositional.average_vector: class tuple not in lumped space")
    ss;
  Array.mapi
    (fun j total ->
      (* A lumped state no flat state maps to has no average; dividing
         would silently poison the vector with a nan. *)
      if counts.(j) = 0 then
        invalid_arg
          "Compositional.average_vector: lumped state receives no flat states (is \
           lumped_ss the image of ss?)"
      else total /. float_of_int counts.(j))
    out

let representative_pick r l c = Partition.representative r.partitions.(l - 1) c

let lumped_sizes r = Array.map Partition.num_classes r.partitions

let lumped_rewards r d =
  Decomposed.relabel d ~new_sizes:(lumped_sizes r) ~pick:(representative_pick r)

let lumped_initial r d =
  Decomposed.relabel d ~new_sizes:(lumped_sizes r) ~pick:(representative_pick r)

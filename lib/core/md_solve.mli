(** Numerical solution driven directly by a matrix diagram.

    The point of MD-based analysis (and of lumping the MD first) is that
    the transition matrix is never materialised: each iteration walks
    the diagram.  This module wires {!Mdl_md.Md_vector} products into
    the generic iterative solvers of {!Mdl_ctmc.Solver}. *)

val uniformized_operator :
  ?lambda:float -> Mdl_md.Md.t -> Mdl_md.Statespace.t -> Mdl_ctmc.Solver.operator * float
(** The row-vector operator [x -> x * P] for [P = I + Q/lambda],
    [Q = R - rs(R)], computed on the fly from the diagram:
    [x P = x + (x R - x . exit) / lambda].  Returns the operator and the
    uniformisation rate used (default [1.02 *] max exit rate).
    @raise Invalid_argument if [lambda] is below the max exit rate. *)

val steady_state :
  ?tol:float ->
  ?max_iter:int ->
  Mdl_md.Md.t ->
  Mdl_md.Statespace.t ->
  Mdl_sparse.Vec.t * Mdl_ctmc.Solver.stats
(** Stationary distribution by power iteration on the uniformised
    operator — the MD-based counterpart of
    {!Mdl_ctmc.Solver.steady_state}. *)

val steady_state_krylov :
  ?tol:float ->
  ?max_iter:int ->
  Mdl_md.Md.t ->
  Mdl_md.Statespace.t ->
  Mdl_sparse.Vec.t * Mdl_ctmc.Solver.stats
(** Stationary distribution by {!Mdl_ctmc.Solver.krylov} (BiCGStab) on
    the uniformised operator, Jacobi-preconditioned with the diagonal
    extracted from the diagram by {!Mdl_md.Md_vector.diag_mdd} — still
    matrix-free. *)

val transient :
  ?epsilon:float ->
  t:float ->
  Mdl_md.Md.t ->
  Mdl_md.Statespace.t ->
  Mdl_sparse.Vec.t ->
  Mdl_sparse.Vec.t
(** Transient distribution at time [t] by uniformisation driven by the
    diagram (the matrix is never materialised) — the MD counterpart of
    {!Mdl_ctmc.Solver.transient}. *)

val ctmc_of : Mdl_md.Md.t -> Mdl_md.Statespace.t -> Mdl_ctmc.Ctmc.t
(** Flatten the diagram over the reachable space into an explicit CTMC —
    the baseline representation, and the input to flat state-level
    lumping for optimality checks. *)

(** The key functions [K] of Section 4, computed on a single MD node.

    The paper discusses two choices for [K(R_n2, s2, C2)]:

    - {b Formal sums} — [{(r_{n2,n3}(s2, C2), n3) | n3 in N3}]: a set of
      (coefficient, child) pairs, compared structurally.  Cheap (local
      to the node), but only a {e sufficient} condition: two formal sums
      can denote equal matrices without being structurally equal.  This
      is the choice the paper's algorithm uses.

    - {b Expanded matrices} — the actual matrix
      [sum_{n3} r_{n2,n3}(s2, C2) * R_{n3}] of size up to
      [|S_3| x |S_3|]: sufficient {e and} necessary per level, but
      "prohibitively time-consuming" in general.  Implemented here for
      the coarseness/time ablation (experiment P3 of DESIGN.md).

    Keys are row sums over a splitter class for ordinary lumping and
    column sums for exact lumping (Definition 3 / Proposition 1).

    {b Quantization invariant.}  Tolerant float comparison
    ({!Mdl_util.Floatx.compare_approx}) is not transitive, so it must
    never decide how keys are grouped, sorted or interned — the classes
    would depend on state order.  Instead, {!splitter_keys} quantizes
    every coefficient (matrix entry) {e at emission} onto the
    [Floatx.quantize] grid and re-canonicalises (coefficients that
    quantize to zero drop out, a key that quantizes to the empty sum is
    not emitted at all, matching the implicit zero key of untouched
    states).  On such canonical keys the exact structural relations
    {!compare_exact} / {!equal} / {!hash} agree with lumping-key
    equality, which is what makes hash-consing keys to integer ranks
    ({!type:Mdl_partition.Refiner.intern_table}) sound: two keys intern to
    the same rank iff the generic pipeline's comparator calls them
    equal. *)

type choice = Formal_sums | Expanded_matrices

type t
(** A key value: either a formal sum or an expanded matrix. *)

val quantize : ?eps:float -> t -> t
(** Quantize all float content onto the tolerance grid and
    re-canonicalise.  Keys returned by {!splitter_keys} are already
    quantized; the function is idempotent. *)

val compare_exact : t -> t -> int
(** Exact structural total order ([Float.compare] on coefficients).  On
    {!quantize}d keys, [compare_exact a b = 0] iff [a] and [b] are equal
    as lumping keys — the comparator to use in refinement specs fed by
    {!splitter_keys}. *)

val compare : ?eps:float -> t -> t -> int
(** [compare_exact] of the {!quantize}d operands — a transitive total
    order; [0] = equal as lumping keys.  (Kept for callers holding raw,
    un-quantized keys; on {!splitter_keys} output it coincides with
    {!compare_exact}.) *)

val equal : t -> t -> bool
(** Exact structural equality (bit-level floats); the interning equality.
    Agrees with [compare_exact _ _ = 0] on canonical keys: zero
    coefficients are never stored, and equal nonzero grid values are
    bit-identical. *)

val hash : t -> int
(** Consistent with {!equal}. *)

type context
(** Per-diagram memoisation (expanded-matrix flattening cache). *)

val make_context : Mdl_md.Md.t -> context

val eval_keys :
  ?eps:float ->
  ?skip:(int -> bool) ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  context ->
  choice ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.node_id ->
  Mdl_partition.Refiner.slice ->
  int array * t array
(** List-free core of {!splitter_keys}: the same [(s, key)] pairs as
    parallel [(states, keys)] arrays, in exactly the order the list
    version produces, with no intermediate list allocation.

    When [pool] is given (and the splitter class has at least
    [par_threshold] members, default [1024]), the member walk is
    sharded across the pool's domains: workers collect raw
    [(state, contribution)] pairs per contiguous member chunk, and the
    calling domain replays the accumulation chunk-by-chunk in member
    order.  Because the replay order equals the sequential walk order,
    the accumulated sums — float additions, which are not associative —
    and therefore the emitted keys are bit-identical to the sequential
    walk at any domain count.  Requires {!Mdl_md.Md.warm_col_cache} on
    the context's diagram first (ordinary mode reads columns from any
    domain). *)

val splitter_keys :
  ?eps:float ->
  ?skip:(int -> bool) ->
  context ->
  choice ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.node_id ->
  Mdl_partition.Refiner.slice ->
  (int * t) list
(** [splitter_keys ctx choice mode node c] lists [(s, K(node, s, C))]
    for every level-local state [s] whose key w.r.t. splitter class [C]
    (a zero-copy {!Mdl_partition.Refiner.slice} of its members) is
    nonzero after quantization, with all float content quantized by
    [eps] (default {!Mdl_util.Floatx.default_eps}).  Ordinary mode sums
    the entries of columns [C] per row; exact mode sums the entries of
    rows [C] per column.

    [skip] (default: skip nothing) suppresses key accumulation for
    states it holds on, before any formal-sum work is done for them.
    Intended for states alone in their class: a singleton class can
    never split again, and the refinement engine treats an unlisted
    state exactly like a listed one whose key group covers its whole
    class — so skipping singletons changes no split decision, no
    splitter-pass count, only the per-pass key evaluation work (it does
    reduce the [key_evals] counter, which counts emitted pairs). *)

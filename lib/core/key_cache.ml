module Md = Mdl_md.Md
module Metrics = Mdl_obs.Metrics
module Timer = Mdl_util.Timer
module Gid_table = Mdl_util.Gid_table
module Domain_pool = Mdl_util.Domain_pool

(* Cumulative registry mirrors of the per-cache counters below, plus
   what the counters cannot say: how long uncached column walks take and
   how many rows they emit (the allocation the miss path pays). *)
let c_hits = Metrics.counter "key_cache.hits"

let c_misses = Metrics.counter "key_cache.misses"

let c_invalidations = Metrics.counter "key_cache.invalidations"

let m_miss_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-7 ~hi:1.0 ~per_decade:3)
    "key_cache.miss_seconds"

let m_miss_rows =
  Metrics.histogram
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]
    "key_cache.miss_rows"

(* A cached splitter-key row list is indexed by the *identity* of the
   splitter class at evaluation time: the node whose matrix is being
   walked, one member of the class, and the class size.  Under monotone
   refinement (classes only ever shrink within one bound run) this
   triple pins the member set exactly: the classes containing a given
   element form a descending chain, every actual split strictly shrinks
   each sub-block, so two classes of the chain with equal size are the
   same set.  A split therefore invalidates structurally — the
   (member, size) identity of every affected class changes and the stale
   entries can never be looked up again within the run. *)
(* Packed as one int, [(node * (dim + 1) + member) * (dim + 1) + len]
   with [dim] the largest level size of the bound diagram: member < dim
   and len <= dim, so the encoding is injective, and lookups avoid a
   tuple allocation and its polymorphic hash. *)
type rows_key = int (* node, member, class size *)

(* [table] is the *global* intern table: Local_key -> stable small int
   (gid), never cleared, so a key pays for structural hashing once per
   miss and cached rows are pure int pairs.  The per-pass dense ranks
   the counting sort needs are recovered from gids by the engine through
   a separate identity-hash int table (see Level_lumping) — that one is
   cleared every pass, this one must not be. *)
type t = {
  table : Local_key.t Gid_table.t; (* shared by every fork of this cache *)
  mutable md : Md.t option;
  mutable ctx : Local_key.context option;
  mutable dim : int; (* 1 + max level size of the bound diagram *)
  rows : (rows_key, int array * int array) Hashtbl.t; (* states, gids *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable pool : Domain_pool.t option;
  mutable par_threshold : int;
}

let default_par_threshold = 1024

let create () =
  {
    table = Gid_table.create ~hash:Local_key.hash ~equal:Local_key.equal ();
    md = None;
    ctx = None;
    dim = 1;
    rows = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
    invalidations = 0;
    pool = None;
    par_threshold = default_par_threshold;
  }

(* A fork is this cache's single-domain scratch state — rows memo,
   flattening context, counters — rebuilt fresh over the *same* gid
   table.  Per-level forks behave exactly like one shared cache would:
   rows keys embed the node id and nodes belong to one level, so
   entries of different levels never collide anyway, and gids stay
   global so cached rows from any fork rank consistently. *)
let fork t =
  {
    table = t.table;
    md = t.md;
    ctx = (match t.md with Some md -> Some (Local_key.make_context md) | None -> None);
    dim = t.dim;
    rows = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
    invalidations = 0;
    pool = t.pool;
    par_threshold = t.par_threshold;
  }

let set_pool ?par_threshold t pool =
  t.pool <- pool;
  match par_threshold with Some th -> t.par_threshold <- max 1 th | None -> ()

let bind t md =
  Hashtbl.reset t.rows;
  match t.md with
  | Some prev when prev == md -> ()
  | _ ->
      t.md <- Some md;
      t.dim <- 1 + Array.fold_left max 0 (Md.sizes md);
      t.ctx <- Some (Local_key.make_context md)

let bound_md t = t.md

let context t =
  match t.ctx with
  | Some ctx -> ctx
  | None -> invalid_arg "Key_cache.context: cache not bound to a diagram (use bind)"

let gid_count t = Gid_table.size t.table

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let splitter_keys ?eps ?skip t choice mode ~node ((perm, first, len) as slice) =
  let key = (((node * t.dim) + perm.(first)) * t.dim) + len in
  match Hashtbl.find_opt t.rows key with
  | Some rows ->
      t.hits <- t.hits + 1;
      Metrics.incr c_hits;
      rows
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr c_misses;
      let metered = Metrics.enabled () in
      let t0 = if metered then Timer.now_ns () else 0L in
      let states, keys =
        Local_key.eval_keys ?eps ?skip ?pool:t.pool ~par_threshold:t.par_threshold
          (context t) choice mode node slice
      in
      let m = Array.length states in
      let gids = Array.map (fun k -> Gid_table.intern t.table k) keys in
      let rows = (states, gids) in
      Hashtbl.add t.rows key rows;
      if metered then begin
        Metrics.observe m_miss_seconds
          (Int64.to_float (Int64.sub (Timer.now_ns ()) t0) *. 1e-9);
        Metrics.observe m_miss_rows (float_of_int m)
      end;
      rows

let note_split t ~parent:_ ~ids =
  t.invalidations <- t.invalidations + List.length ids;
  Metrics.add c_invalidations (List.length ids)

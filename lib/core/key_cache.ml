module Md = Mdl_md.Md
module Refiner = Mdl_partition.Refiner
module Metrics = Mdl_obs.Metrics
module Timer = Mdl_util.Timer

(* Cumulative registry mirrors of the per-cache counters below, plus
   what the counters cannot say: how long uncached column walks take and
   how many rows they emit (the allocation the miss path pays). *)
let c_hits = Metrics.counter "key_cache.hits"

let c_misses = Metrics.counter "key_cache.misses"

let c_invalidations = Metrics.counter "key_cache.invalidations"

let m_miss_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-7 ~hi:1.0 ~per_decade:3)
    "key_cache.miss_seconds"

let m_miss_rows =
  Metrics.histogram
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]
    "key_cache.miss_rows"

(* A cached splitter-key row list is indexed by the *identity* of the
   splitter class at evaluation time: the node whose matrix is being
   walked, one member of the class, and the class size.  Under monotone
   refinement (classes only ever shrink within one bound run) this
   triple pins the member set exactly: the classes containing a given
   element form a descending chain, every actual split strictly shrinks
   each sub-block, so two classes of the chain with equal size are the
   same set.  A split therefore invalidates structurally — the
   (member, size) identity of every affected class changes and the stale
   entries can never be looked up again within the run. *)
(* Packed as one int, [(node * (dim + 1) + member) * (dim + 1) + len]
   with [dim] the largest level size of the bound diagram: member < dim
   and len <= dim, so the encoding is injective, and lookups avoid a
   tuple allocation and its polymorphic hash. *)
type rows_key = int (* node, member, class size *)

(* [table] is the *global* intern table: Local_key -> stable small int
   (gid), never cleared, so a key pays for structural hashing once per
   miss and cached rows are pure int pairs.  The per-pass dense ranks
   the counting sort needs are recovered from gids by the engine through
   a separate identity-hash int table (see Level_lumping) — that one is
   cleared every pass, this one must not be. *)
type t = {
  table : Local_key.t Refiner.intern_table;
  mutable md : Md.t option;
  mutable ctx : Local_key.context option;
  mutable dim : int; (* 1 + max level size of the bound diagram *)
  rows : (rows_key, int array * int array) Hashtbl.t; (* states, gids *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create () =
  {
    table = Refiner.intern_table ~hash:Local_key.hash ~equal:Local_key.equal ();
    md = None;
    ctx = None;
    dim = 1;
    rows = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let bind t md =
  Hashtbl.reset t.rows;
  match t.md with
  | Some prev when prev == md -> ()
  | _ ->
      t.md <- Some md;
      t.dim <- 1 + Array.fold_left max 0 (Md.sizes md);
      t.ctx <- Some (Local_key.make_context md)

let bound_md t = t.md

let context t =
  match t.ctx with
  | Some ctx -> ctx
  | None -> invalid_arg "Key_cache.context: cache not bound to a diagram (use bind)"

let intern_table t = t.table

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let splitter_keys ?eps ?skip t choice mode ~node ((perm, first, len) as slice) =
  let key = (((node * t.dim) + perm.(first)) * t.dim) + len in
  match Hashtbl.find_opt t.rows key with
  | Some rows ->
      t.hits <- t.hits + 1;
      Metrics.incr c_hits;
      rows
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr c_misses;
      let metered = Metrics.enabled () in
      let t0 = if metered then Timer.now_ns () else 0L in
      let keyed = Local_key.splitter_keys ?eps ?skip (context t) choice mode node slice in
      let m = List.length keyed in
      let states = Array.make m 0 and gids = Array.make m 0 in
      List.iteri
        (fun i (s, k) ->
          states.(i) <- s;
          gids.(i) <- Refiner.intern t.table k)
        keyed;
      let rows = (states, gids) in
      Hashtbl.add t.rows key rows;
      if metered then begin
        Metrics.observe m_miss_seconds
          (Int64.to_float (Int64.sub (Timer.now_ns ()) t0) *. 1e-9);
        Metrics.observe m_miss_rows (float_of_int m)
      end;
      rows

let note_split t ~parent:_ ~ids =
  t.invalidations <- t.invalidations + List.length ids;
  Metrics.add c_invalidations (List.length ids)

module Md = Mdl_md.Md
module Floatx = Mdl_util.Floatx
module Hashx = Mdl_util.Hashx
module Metrics = Mdl_obs.Metrics
module Timer = Mdl_util.Timer
module Gid_table = Mdl_util.Gid_table
module Shard_map = Mdl_util.Shard_map
module Domain_pool = Mdl_util.Domain_pool

(* Cumulative registry mirrors of the per-cache counters below, plus
   what the counters cannot say: how long uncached column walks take and
   how many rows they emit (the allocation the miss path pays). *)
let c_hits = Metrics.counter "key_cache.hits"

let c_misses = Metrics.counter "key_cache.misses"

let c_invalidations = Metrics.counter "key_cache.invalidations"

let c_cross_bind_hits = Metrics.counter "key_cache.cross_bind_hits"

let m_miss_seconds =
  Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1e-7 ~hi:1.0 ~per_decade:3)
    "key_cache.miss_seconds"

let m_miss_rows =
  Metrics.histogram
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]
    "key_cache.miss_rows"

(* A cached splitter-key row list is indexed by the *identity* of the
   splitter class at evaluation time: the node whose matrix is being
   walked, one member of the class, and the class size.  Under monotone
   refinement (classes only ever shrink within one bound run) this
   triple pins the member set exactly: the classes containing a given
   element form a descending chain, every actual split strictly shrinks
   each sub-block, so two classes of the chain with equal size are the
   same set.  A split therefore invalidates structurally — the
   (member, size) identity of every affected class changes and the stale
   entries can never be looked up again within the run. *)
(* Packed as one int, [(node * (dim + 1) + member) * (dim + 1) + len]
   with [dim] the largest level size of the bound diagram: member < dim
   and len <= dim, so the encoding is injective, and lookups avoid a
   tuple allocation and its polymorphic hash. *)
type rows_key = int (* node, member, class size *)

(* The lumping configuration a cache's rows were computed under.  Rows
   are a pure function of (diagram, node, members, eps, choice, mode);
   the diagram is pinned by [bind] and the members by the row identity,
   so recording the remaining three at first use turns the documented
   "keep them fixed" contract into a checked one. *)
type config = {
  cfg_eps : float;
  cfg_choice : Local_key.choice;
  cfg_mode : Mdl_lumping.State_lumping.mode;
}

let config_mismatch =
  "Key_cache: eps / key choice / lumping mode differ from the configuration recorded \
   at this cache's first use (use a fresh cache per configuration)"

(* State shared by reference between a cache and every [fork] of it —
   all of it domain-safe.  [table] is the *global* intern table:
   Local_key -> stable small int (gid), never cleared, so a key pays for
   structural hashing once per miss and cached rows are pure int pairs.
   The per-pass dense ranks the counting sort needs are recovered from
   gids by the engine through a separate identity-hash int table (see
   Level_lumping) — that one is cleared every pass, this one must not
   be.  [sig_table] and [store] are the persistent (sweep-mode) tier:
   member sequences interned to content signatures, and full splitter
   rows keyed by (node, signature) so they survive same-diagram rebinds
   (see [splitter_keys]). *)
type shared = {
  table : Local_key.t Gid_table.t;
  sig_table : int array Gid_table.t; (* splitter-class member sequence -> csig *)
  store : (int * int, int * (int array * int array)) Shard_map.t;
      (* (node, csig) -> birth epoch, (states, gids) *)
  config : config option Atomic.t; (* recorded at first bind/lookup *)
  cross_bind_hits : int Atomic.t;
}

type t = {
  shared : shared;
  mutable md : Md.t option;
  mutable ctx : Local_key.context option;
  mutable dim : int; (* 1 + max level size of the bound diagram *)
  rows : (rows_key, int * (int array * int array)) Hashtbl.t;
      (* epoch, (states, gids) *)
  mutable epoch : int; (* persistent mode: bumped per same-diagram bind *)
  mutable persistent : bool;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable pool : Domain_pool.t option;
  mutable par_threshold : int;
}

let default_par_threshold = 1024

let int_pair_hash (a, b) = Hashx.combine a b

let int_pair_equal ((a, b) : int * int) (c, d) = a = c && b = d

let int_array_equal (a : int array) b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let create () =
  {
    shared =
      {
        table = Gid_table.create ~hash:Local_key.hash ~equal:Local_key.equal ();
        sig_table = Gid_table.create ~hash:Hashx.int_array ~equal:int_array_equal ();
        store = Shard_map.create ~hash:int_pair_hash ~equal:int_pair_equal ();
        config = Atomic.make None;
        cross_bind_hits = Atomic.make 0;
      };
    md = None;
    ctx = None;
    dim = 1;
    rows = Hashtbl.create 1024;
    epoch = 0;
    persistent = false;
    hits = 0;
    misses = 0;
    invalidations = 0;
    pool = None;
    par_threshold = default_par_threshold;
  }

(* A fork is this cache's single-domain scratch state — rows memo,
   flattening context, counters — rebuilt fresh over the *same* shared
   state (gid table, signature table, persistent row store, recorded
   configuration).  Per-level forks behave exactly like one shared cache
   would: rows keys embed the node id and nodes belong to one level, so
   entries of different levels never collide anyway, and gids stay
   global so cached rows from any fork rank consistently.  The epoch and
   persistence flag are inherited, so rows a fork publishes to the
   persistent store carry the right birth epoch and remain visible to
   the parent (and to later points of a sweep) after the fork dies. *)
let fork t =
  {
    shared = t.shared;
    md = t.md;
    ctx = (match t.md with Some md -> Some (Local_key.make_context md) | None -> None);
    dim = t.dim;
    rows = Hashtbl.create 1024;
    epoch = t.epoch;
    persistent = t.persistent;
    hits = 0;
    misses = 0;
    invalidations = 0;
    pool = t.pool;
    par_threshold = t.par_threshold;
  }

let set_pool ?par_threshold t pool =
  t.pool <- pool;
  match par_threshold with Some th -> t.par_threshold <- max 1 th | None -> ()

let set_persistent t on =
  if t.persistent <> on then begin
    (* Entering persistence: tier-1 rows may have been computed with the
       singleton skip (sound per bind, not across binds) — drop them so
       everything reachable from now on is a full row list.  Leaving:
       drop the store so a later re-enable cannot see rows of another
       regime, and free the memory. *)
    Hashtbl.reset t.rows;
    Shard_map.clear t.shared.store;
    t.persistent <- on
  end

let persistent t = t.persistent

let cross_bind_hits t = Atomic.get t.shared.cross_bind_hits

let epoch t = t.epoch

(* Record-or-check the lumping configuration.  The CAS publishes the
   first configuration exactly once; racing recorders of an equal
   configuration both succeed (one CAS wins, the other falls through to
   the check and passes). *)
let check_config t eps choice mode =
  let eff_eps = match eps with Some e -> e | None -> Floatx.default_eps in
  match Atomic.get t.shared.config with
  | Some c ->
      if
        not
          (Float.equal c.cfg_eps eff_eps && c.cfg_choice = choice && c.cfg_mode = mode)
      then invalid_arg config_mismatch
  | None ->
      let cfg = Some { cfg_eps = eff_eps; cfg_choice = choice; cfg_mode = mode } in
      if not (Atomic.compare_and_set t.shared.config None cfg) then begin
        match Atomic.get t.shared.config with
        | Some c ->
            if
              not
                (Float.equal c.cfg_eps eff_eps && c.cfg_choice = choice
               && c.cfg_mode = mode)
            then invalid_arg config_mismatch
        | None -> assert false
      end

let bind ?eps ?choice ?mode t md =
  (match (choice, mode) with
  | Some ch, Some mo -> check_config t eps ch mo
  | _ -> ());
  match t.md with
  | Some prev when prev == md ->
      (* Same diagram: in persistent mode the rebind is a cheap epoch
         bump — tier-1 entries of earlier epochs stop matching (their
         (member, size) identity may denote a different member set under
         the new run's partitions) and lookups fall through to the
         content-keyed store.  Without persistence this is the classic
         wipe: rows are only sound within one monotone run. *)
      if t.persistent then t.epoch <- t.epoch + 1 else Hashtbl.reset t.rows
  | _ ->
      (* New diagram: node ids restart per diagram, so the persistent
         store's (node, csig) keys from the previous diagram could
         collide with this one's — drop it.  Signatures are plain state
         index sequences (diagram-independent) and keys intern globally,
         so both tables survive. *)
      Hashtbl.reset t.rows;
      if t.persistent then Shard_map.clear t.shared.store;
      t.epoch <- t.epoch + 1;
      t.md <- Some md;
      t.dim <- 1 + Array.fold_left max 0 (Md.sizes md);
      t.ctx <- Some (Local_key.make_context md)

let bound_md t = t.md

let context t =
  match t.ctx with
  | Some ctx -> ctx
  | None -> invalid_arg "Key_cache.context: cache not bound to a diagram (use bind)"

let gid_count t = Gid_table.size t.shared.table

let store_size t = Shard_map.size t.shared.store

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let eval_rows ?eps ?skip t choice mode node slice =
  let metered = Metrics.enabled () in
  let t0 = if metered then Timer.now_ns () else 0L in
  let states, keys =
    Local_key.eval_keys ?eps ?skip ?pool:t.pool ~par_threshold:t.par_threshold
      (context t) choice mode node slice
  in
  let gids = Array.map (fun k -> Gid_table.intern t.shared.table k) keys in
  if metered then begin
    Metrics.observe m_miss_seconds
      (Int64.to_float (Int64.sub (Timer.now_ns ()) t0) *. 1e-9);
    Metrics.observe m_miss_rows (float_of_int (Array.length states))
  end;
  (states, gids)

let splitter_keys ?eps ?skip t choice mode ~node ((perm, first, len) as slice) =
  check_config t eps choice mode;
  let key = (((node * t.dim) + perm.(first)) * t.dim) + len in
  match Hashtbl.find_opt t.rows key with
  | Some (ep, rows) when ep = t.epoch ->
      (* Without persistence every entry carries the current epoch (the
         table is wiped on rebind), so this arm is the plain hit path. *)
      t.hits <- t.hits + 1;
      Metrics.incr c_hits;
      rows
  | _ when not t.persistent ->
      t.misses <- t.misses + 1;
      Metrics.incr c_misses;
      let rows = eval_rows ?eps ?skip t choice mode node slice in
      Hashtbl.replace t.rows key (t.epoch, rows);
      rows
  | _ ->
      (* Persistent tier: the class's *content* — its member sequence in
         slice order — is interned to a signature, and full rows keyed
         by (node, csig) survive epoch bumps.  Keying by the sequence
         (not the member set) makes a store hit trivially bit-identical
         to re-evaluation: [eval_keys] accumulates float sums in member
         order, so only an identical walk order may reuse the result
         verbatim.  [skip] is never applied here — a row list must be
         complete to be reusable under a different partition's singleton
         pattern (extra rows for states that are singletons *now* are
         harmless: a class of one can never be split). *)
      let csig = Gid_table.intern t.shared.sig_table (Array.sub perm first len) in
      (match Shard_map.find t.shared.store (node, csig) with
      | Some (born, rows) ->
          t.hits <- t.hits + 1;
          Metrics.incr c_hits;
          if born < t.epoch then begin
            Atomic.incr t.shared.cross_bind_hits;
            Metrics.incr c_cross_bind_hits
          end;
          Hashtbl.replace t.rows key (t.epoch, rows);
          rows
      | None ->
          t.misses <- t.misses + 1;
          Metrics.incr c_misses;
          let rows = eval_rows ?eps ?skip:None t choice mode node slice in
          (* First-writer-wins keeps concurrent domains agreeing on one
             published row list (they compute equal ones — the store key
             pins the full evaluation). *)
          let _, rows = Shard_map.add t.shared.store (node, csig) (t.epoch, rows) in
          Hashtbl.replace t.rows key (t.epoch, rows);
          rows)

let note_split t ~parent:_ ~ids =
  t.invalidations <- t.invalidations + List.length ids;
  Metrics.add c_invalidations (List.length ids)

module Md = Mdl_md.Md
module Md_vector = Mdl_md.Md_vector
module Statespace = Mdl_md.Statespace
module Vec = Mdl_sparse.Vec
module Solver = Mdl_ctmc.Solver

let uniformized_parts ?lambda md ss =
  (* The reachable space is converted to an MDD once so every iteration
     uses offset-based co-walk products instead of per-entry hashing. *)
  let mdd = Mdl_md.Mdd.of_statespace ss in
  let exit = Md_vector.row_sums_mdd md mdd in
  let max_rate = Array.fold_left Float.max 0.0 exit in
  let lambda =
    match lambda with
    | None -> if max_rate = 0.0 then 1.0 else 1.02 *. max_rate
    | Some l ->
        if l < max_rate then
          invalid_arg "Md_solve.uniformized_operator: lambda below max exit rate";
        l
  in
  let apply x =
    let y = Md_vector.vec_mul_mdd md mdd x in
    (* y := x + (x R - x .* exit) / lambda, elementwise. *)
    Array.mapi (fun i yi -> x.(i) +. ((yi -. (x.(i) *. exit.(i))) /. lambda)) y
  in
  (mdd, exit, { Solver.dim = Statespace.size ss; apply }, lambda)

let uniformized_operator ?lambda md ss =
  let _mdd, _exit, op, lambda = uniformized_parts ?lambda md ss in
  (op, lambda)

let steady_state ?tol ?max_iter md ss =
  let op, _lambda = uniformized_operator md ss in
  Solver.power ?tol ?max_iter op

let steady_state_krylov ?tol ?max_iter md ss =
  let mdd, exit, op, lambda = uniformized_parts md ss in
  (* Diagonal of the uniformised P = I + Q/lambda over MDD indices:
     P(i,i) = 1 + (R(i,i) - exit(i)) / lambda — one extra co-walk buys
     the Jacobi preconditioner without materialising the matrix. *)
  let rdiag = Md_vector.diag_mdd md mdd in
  let diag =
    Array.init op.Solver.dim (fun i -> 1.0 +. ((rdiag.(i) -. exit.(i)) /. lambda))
  in
  Solver.krylov ?tol ?max_iter ~diag op

let transient ?epsilon ~t md ss pi0 =
  let op, lambda = uniformized_operator md ss in
  Solver.transient_operator ?epsilon ~t ~lambda op pi0

let ctmc_of md ss = Mdl_ctmc.Ctmc.of_rates (Md_vector.to_csr md ss)

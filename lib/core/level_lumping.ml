module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Floatx = Mdl_util.Floatx

let check_level md level fn =
  if level < 1 || level > Md.levels md then
    invalid_arg (Printf.sprintf "Level_lumping.%s: level out of range" fn)

let full_row_sum md node s =
  Formal_sum.sum (List.map snd (Md.node_row md node s))

let initial_partition ?eps mode md ~level ~rewards ~initial =
  check_level md level "initial_partition";
  let n = Md.size md level in
  (* Float factors are grouped by their quantized representative:
     [compare_approx] is not transitive, so using it as a group_by
     comparator makes the classes depend on the state order (see
     {!Mdl_util.Floatx.quantize}).  Same for the formal-sum factors of
     the exact branch: quantize the sums, compare exactly. *)
  let q = Floatx.quantize ?eps in
  match mode with
  | Mdl_lumping.State_lumping.Ordinary ->
      Partition.group_by n
        (fun s -> List.map (fun r -> q (Decomposed.factor r level s)) rewards)
        (List.compare Float.compare)
  | Mdl_lumping.State_lumping.Exact ->
      let nodes = (Md.live_nodes md).(level - 1) in
      let key s =
        ( q (Decomposed.factor initial level s),
          List.map (fun node -> Formal_sum.quantize ?eps (full_row_sum md node s)) nodes )
      in
      let cmp (f1, sums1) (f2, sums2) =
        let c = Float.compare f1 f2 in
        if c <> 0 then c else List.compare Formal_sum.compare sums1 sums2
      in
      Partition.group_by n key cmp

(* [splitter_keys] emits quantized canonical keys, so the generic spec
   can compare exactly — and the interned spec below can hash-cons with
   the structural equality, grouping exactly the same keys together. *)
let node_spec ?eps ctx choice mode md node =
  {
    Refiner.size = Md.size md (Md.node_level md node);
    key_compare = Local_key.compare_exact;
    splitter_keys = (fun c -> Local_key.splitter_keys ?eps ctx choice mode node c);
  }

let node_interned_spec ?eps ctx choice mode md node ~table =
  {
    Refiner.isize = Md.size md (Md.node_level md node);
    itable = table;
    isplitter_keys = (fun c -> Local_key.splitter_keys ?eps ctx choice mode node c);
  }

let key_intern_table () =
  Refiner.intern_table ~hash:Local_key.hash ~equal:Local_key.equal ()

let comp_lumping_level ?eps ?(key = Local_key.Formal_sums) ?stats
    ?(specialised = true) mode md ~level ~initial =
  check_level md level "comp_lumping_level";
  if Partition.size initial <> Md.size md level then
    invalid_arg "Level_lumping.comp_lumping_level: partition size mismatch";
  let nodes = (Md.live_nodes md).(level - 1) in
  let ctx = Local_key.make_context md in
  (* One interning table for the whole fixed point: cleared per splitter
     pass but its storage persists across every per-node run, so steady
     state allocates nothing for the table. *)
  let table = if specialised then Some (key_intern_table ()) else None in
  let refine node p =
    match table with
    | Some table ->
        Refiner.comp_lumping_interned ?stats
          (node_interned_spec ?eps ctx key mode md node ~table)
          ~initial:p
    | None -> Refiner.comp_lumping ?stats (node_spec ?eps ctx key mode md node) ~initial:p
  in
  let pass p = List.fold_left (fun p node -> refine node p) p nodes in
  let rec fix p =
    let p' = pass p in
    if Partition.equal p p' then p' else fix p'
  in
  fix initial

let is_locally_lumpable ?eps mode md ~level p =
  check_level md level "is_locally_lumpable";
  let nodes = (Md.live_nodes md).(level - 1) in
  let ctx = Local_key.make_context md in
  List.for_all
    (fun node ->
      Refiner.is_stable (node_spec ?eps ctx Local_key.Formal_sums mode md node) p
      &&
      (* Exact lumping additionally requires constant full-row sums
         (Eq. 4 of Definition 3). *)
      match mode with
      | Mdl_lumping.State_lumping.Ordinary -> true
      | Mdl_lumping.State_lumping.Exact ->
          Array.for_all
            (fun members ->
              let reference = full_row_sum md node members.(0) in
              Array.for_all
                (fun s ->
                  Formal_sum.compare_approx ?eps reference (full_row_sum md node s) = 0)
                members)
            (Partition.classes p))
    nodes

module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Floatx = Mdl_util.Floatx
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics

let c_fixpoint_iterations = Metrics.counter "level.fixpoint_iterations"

let c_levels = Metrics.counter "level.fixpoints"

let check_level md level fn =
  if level < 1 || level > Md.levels md then
    invalid_arg (Printf.sprintf "Level_lumping.%s: level out of range" fn)

let full_row_sum md node s =
  Formal_sum.sum (List.map snd (Md.node_row md node s))

let initial_partition ?eps mode md ~level ~rewards ~initial =
  check_level md level "initial_partition";
  let n = Md.size md level in
  (* Float factors are grouped by their quantized representative:
     [compare_approx] is not transitive, so using it as a group_by
     comparator makes the classes depend on the state order (see
     {!Mdl_util.Floatx.quantize}).  Same for the formal-sum factors of
     the exact branch: quantize the sums, compare exactly. *)
  let q = Floatx.quantize ?eps in
  match mode with
  | Mdl_lumping.State_lumping.Ordinary ->
      Partition.group_by n
        (fun s -> List.map (fun r -> q (Decomposed.factor r level s)) rewards)
        (List.compare Float.compare)
  | Mdl_lumping.State_lumping.Exact ->
      let nodes = (Md.live_nodes md).(level - 1) in
      let key s =
        ( q (Decomposed.factor initial level s),
          List.map (fun node -> Formal_sum.quantize ?eps (full_row_sum md node s)) nodes )
      in
      let cmp (f1, sums1) (f2, sums2) =
        let c = Float.compare f1 f2 in
        if c <> 0 then c else List.compare Formal_sum.compare sums1 sums2
      in
      Partition.group_by n key cmp

(* [splitter_keys] emits quantized canonical keys, so the generic spec
   can compare exactly — and the interned spec below can hash-cons with
   the structural equality, grouping exactly the same keys together. *)
let node_spec ?eps ctx choice mode md node =
  {
    Refiner.size = Md.size md (Md.node_level md node);
    key_compare = Local_key.compare_exact;
    splitter_keys = (fun c -> Local_key.splitter_keys ?eps ctx choice mode node c);
  }

let node_interned_spec ?eps ctx choice mode md node ~table =
  {
    Refiner.isize = Md.size md (Md.node_level md node);
    itable = table;
    isplitter_keys = (fun c -> Local_key.splitter_keys ?eps ctx choice mode node c);
  }

let key_intern_table () =
  Refiner.intern_table ~hash:Local_key.hash ~equal:Local_key.equal ()

let comp_lumping_level ?eps ?(key = Local_key.Formal_sums) ?stats
    ?(specialised = true) ?cache ?pool mode md ~level ~initial =
  check_level md level "comp_lumping_level";
  if Partition.size initial <> Md.size md level then
    invalid_arg "Level_lumping.comp_lumping_level: partition size mismatch";
  let nodes = (Md.live_nodes md).(level - 1) in
  (* The memoised path is a variant of the interned pipeline; under
     [~specialised:false] (the generic-closure baseline) the cache is
     ignored rather than half-applied. *)
  let cache = if specialised then cache else None in
  (match cache with
  | Some kc -> (
      (* Defensive auto-bind: a cache bound to a different diagram must
         not serve rows for this one.  A cache already bound to [md] is
         left as is — per-level calls of one lump run share the bind
         (node ids disambiguate the levels), and rebinding here would
         throw the previous levels' rows away. *)
      match Key_cache.bound_md kc with
      | Some prev when prev == md -> ()
      | _ -> Key_cache.bind ?eps ~choice:key ~mode kc md)
  | None -> ());
  let ctx =
    match cache with
    | Some kc -> Key_cache.context kc
    | None -> Local_key.make_context md
  in
  let hits0, misses0 =
    match cache with
    | Some kc -> (Key_cache.hits kc, Key_cache.misses kc)
    | None -> (0, 0)
  in
  let refine =
    match cache with
    | Some kc ->
        (* The cache hands out parallel (states, gids) arrays — gids are
           the stable ids of its global intern table, so a hit involves
           no structural key hashing at all; the ranked pipeline turns
           gids into per-pass dense ranks by stamped array lookups. *)
        let has_singleton p =
          let nc = Partition.num_classes p in
          let rec go c = c < nc && (Partition.class_size p c = 1 || go (c + 1)) in
          go 0
        in
        fun node p ->
          (* Singletons at run start stay singletons for the whole run
             (splits only shrink classes), so their keys need never be
             accumulated — the dominant saving on near-discrete levels.
             When the run starts with none, the per-touch test is pure
             overhead; singletons created mid-run are then merely
             accumulated like any other state, which is harmless (a
             class of one can never be split). *)
          let skip =
            if has_singleton p then
              Some (fun s -> Partition.class_size p (Partition.class_of p s) = 1)
            else None
          in
          let rspec =
            {
              Refiner.rsize = Md.size md level;
              rsplitter_keys =
                (fun c -> Key_cache.splitter_keys ?eps ?skip kc key mode ~node c);
            }
          in
          Refiner.comp_lumping_ranked ?stats ?pool
            ~on_split:(fun ~parent ~ids -> Key_cache.note_split kc ~parent ~ids)
            rspec ~initial:p
    | None when specialised ->
        (* One interning table for the whole fixed point: cleared per
           splitter pass but its storage persists across every per-node
           run, so steady state allocates nothing for the table. *)
        let table = key_intern_table () in
        fun node p ->
          Refiner.comp_lumping_interned ?stats
            (node_interned_spec ?eps ctx key mode md node ~table)
            ~initial:p
    | None ->
        fun node p ->
          Refiner.comp_lumping ?stats (node_spec ?eps ctx key mode md node) ~initial:p
  in
  let pass p = List.fold_left (fun p node -> refine node p) p nodes in
  (* [CompLumpingLevel] iterates passes over all live nodes of the level
     until no pass refines further; the iteration count is the
     fixed-point depth the observability layer reports per level. *)
  let iterations = ref 0 in
  let rec fix p =
    incr iterations;
    let p' = pass p in
    if Partition.equal p p' then p' else fix p'
  in
  let p =
    Trace.with_span ~cat:"lump" ~args:[ ("level", Trace.Int level) ] "lump.fixpoint"
      (fun () ->
        let p = fix initial in
        Trace.add_args [ ("iterations", Trace.Int !iterations) ];
        p)
  in
  Metrics.incr c_levels;
  Metrics.add c_fixpoint_iterations !iterations;
  (match (stats, cache) with
  | Some st, Some kc ->
      st.Refiner.cache_hits <- st.Refiner.cache_hits + (Key_cache.hits kc - hits0);
      st.Refiner.cache_misses <- st.Refiner.cache_misses + (Key_cache.misses kc - misses0)
  | _ -> ());
  (* Canonicalise the class numbering.  The refinement engine preserves
     input class ids, so the result's ids depend on split order — which
     differs between the generic/interned/ranked pipelines even when the
     classes themselves agree.  Renumbering by first appearance (and a
     fully-discrete result to the identity partition, which is what lets
     the rebuild reuse nodes or the whole diagram verbatim) makes every
     pipeline emit the same partition object — and hence structurally
     equal lumped diagrams, in both ordinary and exact mode. *)
  if Partition.num_classes p = Partition.size p then Partition.discrete (Partition.size p)
  else Partition.of_class_assignment (Partition.to_class_assignment p)

let is_locally_lumpable ?eps mode md ~level p =
  check_level md level "is_locally_lumpable";
  let nodes = (Md.live_nodes md).(level - 1) in
  let ctx = Local_key.make_context md in
  List.for_all
    (fun node ->
      Refiner.is_stable (node_spec ?eps ctx Local_key.Formal_sums mode md node) p
      &&
      (* Exact lumping additionally requires constant full-row sums
         (Eq. 4 of Definition 3). *)
      match mode with
      | Mdl_lumping.State_lumping.Ordinary -> true
      | Mdl_lumping.State_lumping.Exact ->
          Array.for_all
            (fun members ->
              let reference = full_row_sum md node members.(0) in
              Array.for_all
                (fun s ->
                  Formal_sum.compare_approx ?eps reference (full_row_sum md node s) = 0)
                members)
            (Partition.classes p))
    nodes

(** Memoisation of splitter-key evaluation across the refinement passes
    of {!Compositional.lump}.

    The fixed-point iteration of [CompLumpingLevel] (Figure 3(a))
    re-walks every live node's rows once per splitter class {e per
    pass}; after the first pass most classes are unchanged, so most of
    those column walks recompute the very rows the previous pass
    already produced.  A [Key_cache.t] memoises each
    {!Local_key.splitter_keys} result — the [(state, K(node, s, C))]
    list of one node/splitter-class pair — and carries two shared
    resources with it:

    - a {e global} {!Mdl_util.Gid_table} hash-consing key values to
      stable small integers (gids), shared across {e all} levels of a
      lump run (including levels refining concurrently on a domain
      pool — the table's read path is lock-free) and across models of a
      bench sweep (it is never cleared, so its contents persist across
      {!bind}s).  Cached
      rows store [(state, gid)] pairs, so a cache hit involves no
      structural key hashing or equality at all — each distinct key pays
      for hashing once, at miss time.  The per-pass dense ranks of the
      interned refinement pipeline are recovered from gids through an
      identity-hash [int] table on the engine side
      ({!Level_lumping.comp_lumping_level});
    - the {!Local_key.context} (expanded-matrix flattening memo), kept
      for as long as the cache stays bound to the same diagram.

    {b Cache identity and invalidation.}  An entry is keyed by
    [(node, member, |C|)] — the node being walked, one member of the
    splitter class and the class size at evaluation time.  Soundness
    rests on monotonicity: within one {!bind}, every refinement run on a
    node's level must start from a partition at least as coarse as it
    ends (which the [comp_lumping_level] fixed point guarantees — the
    per-level partition only ever gets finer, and
    {!Mdl_partition.Refiner} preserves class identities between runs by
    working on a {!Mdl_partition.Partition.copy}).  The classes
    containing a given member then form a descending chain, every actual
    split strictly shrinks each sub-block, so equal size means equal
    member set.  Invalidation is therefore {e structural}: a split
    changes the (member, size) identity of every affected class, and
    stale entries become unreachable rather than wrong.  The engine's
    split trace ({!Mdl_partition.Refiner.on_split}, wired to
    {!note_split}) is surfaced as the {!invalidations} counter so the
    churn is observable.

    {b Contract.}  Callers must {!bind} before lookup, re-{!bind}
    whenever a new (or restarted) refinement over a diagram begins, and
    keep [eps] / key [choice] / lumping mode fixed between binds —
    entries do not record them.  {!Compositional.lump} binds
    automatically at the start of every run; sharing one cache across a
    sweep of models is then safe and keeps the intern table hot. *)

type t

val create : unit -> t
(** A fresh, unbound cache with an empty intern table. *)

val bind : t -> Mdl_md.Md.t -> unit
(** [bind t md] prepares [t] for one lumping run over [md]: always
    discards all memoised rows (they are only sound within one monotone
    run), keeps the intern table's storage, and keeps the flattening
    context when [md] is physically the diagram already bound. *)

val bound_md : t -> Mdl_md.Md.t option
(** The diagram the cache is currently bound to, if any. *)

val context : t -> Local_key.context
(** The bound diagram's {!Local_key.context}.
    @raise Invalid_argument when the cache is unbound. *)

val fork : t -> t
(** A fresh single-domain view of this cache for one parallel level
    task: its own rows memo, flattening context and counters, over the
    {e same} global gid table.  Forks are what make level-parallel
    lumping safe — every mutable part of a cache except the (domain-
    safe) gid table is then owned by exactly one domain — and they are
    observationally equivalent to sharing one cache, because row keys
    embed the node id (nodes belong to one level, so cross-level
    entries never collide) and hit/miss counts per level are
    unaffected. *)

val set_pool : ?par_threshold:int -> t -> Mdl_util.Domain_pool.t option -> unit
(** Arm (or disarm, with [None]) intra-node miss sharding: subsequent
    cache misses evaluate their keys through {!Local_key.eval_keys}
    with this pool whenever the splitter class has at least
    [par_threshold] members (default 1024; clamped to >= 1).  Inherited
    by {!fork}s made afterwards.  Never changes results — see the
    determinism contract on {!Local_key.eval_keys}. *)

val gid_count : t -> int
(** Distinct keys interned into the global gid table so far; the
    table survives {!bind} and is never cleared, so gids are stable
    across levels, runs and models. *)

val splitter_keys :
  ?eps:float ->
  ?skip:(int -> bool) ->
  t ->
  Local_key.choice ->
  Mdl_lumping.State_lumping.mode ->
  node:Mdl_md.Md.node_id ->
  Mdl_partition.Refiner.slice ->
  int array * int array
(** Memoising front-end to {!Local_key.splitter_keys}, with keys
    replaced by their gids in the global {!intern_table}: returns the
    cached parallel (states, gids) arrays — the shape
    {!Mdl_partition.Refiner.comp_lumping_ranked} consumes — when the
    splitter class's [(node, member, size)] identity has been evaluated
    before in this bind, otherwise computes, interns, stores and returns
    them.  The arrays are owned by the cache: callers must not mutate
    them.  Gid equality coincides with {!Local_key.equal} (keys are
    quantized before interning), so ranking gids groups exactly the same
    states as ranking the keys themselves.
    A hit may return a list computed under an
    earlier (coarser) partition of the same class — by monotonicity it
    is the same member set, and any states that have since become
    singletons are harmless extra rows (they can no longer split
    anything).  [skip] is applied only on misses; see
    {!Local_key.splitter_keys}.
    @raise Invalid_argument when the cache is unbound. *)

val note_split : t -> parent:int -> ids:int list -> unit
(** Split-trace sink (wire as the engine's
    {!Mdl_partition.Refiner.on_split}): records that the classes [ids]
    now have fresh cache identities, incrementing {!invalidations} by
    the number of affected classes.  No entry needs to be removed — see
    the structural-invalidation note above. *)

val hits : t -> int
(** Lookups answered from the cache since {!create} (never reset). *)

val misses : t -> int
(** Lookups that fell through to {!Local_key.splitter_keys}. *)

val invalidations : t -> int
(** Classes whose cache identity was retired by a split, as reported
    through {!note_split}. *)

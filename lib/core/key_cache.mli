(** Memoisation of splitter-key evaluation across the refinement passes
    of {!Compositional.lump} — and, in {e persistent} mode, across the
    points of a whole parameter sweep ({!Compositional.lump_sweep}).

    The fixed-point iteration of [CompLumpingLevel] (Figure 3(a))
    re-walks every live node's rows once per splitter class {e per
    pass}; after the first pass most classes are unchanged, so most of
    those column walks recompute the very rows the previous pass
    already produced.  A [Key_cache.t] memoises each
    {!Local_key.splitter_keys} result — the [(state, K(node, s, C))]
    list of one node/splitter-class pair — and carries shared resources
    with it:

    - a {e global} {!Mdl_util.Gid_table} hash-consing key values to
      stable small integers (gids), shared across {e all} levels of a
      lump run (including levels refining concurrently on a domain
      pool — the table's read path is lock-free) and across models of a
      bench sweep (it is never cleared, so its contents persist across
      {!bind}s).  Cached rows store [(state, gid)] pairs, so a cache hit
      involves no structural key hashing or equality at all — each
      distinct key pays for hashing once, at miss time.  The per-pass
      dense ranks of the interned refinement pipeline are recovered from
      gids through an identity-hash [int] table on the engine side
      ({!Level_lumping.comp_lumping_level});
    - the {!Local_key.context} (expanded-matrix flattening memo), kept
      for as long as the cache stays bound to the same diagram;
    - in persistent mode, a second intern table (splitter-class member
      sequences to {e content signatures}) and a domain-safe
      {!Mdl_util.Shard_map} of full row lists keyed by
      [(node, signature)] — the cross-bind tier described below.

    {b Cache identity and invalidation (per bind).}  A tier-1 entry is
    keyed by [(node, member, |C|)] — the node being walked, one member
    of the splitter class and the class size at evaluation time.
    Soundness rests on monotonicity: within one {!bind}, every
    refinement run on a node's level must start from a partition at
    least as coarse as it ends (which the [comp_lumping_level] fixed
    point guarantees — the per-level partition only ever gets finer, and
    {!Mdl_partition.Refiner} preserves class identities between runs by
    working on a {!Mdl_partition.Partition.copy}).  The classes
    containing a given member then form a descending chain, every actual
    split strictly shrinks each sub-block, so equal size means equal
    member set.  Invalidation is therefore {e structural}: a split
    changes the (member, size) identity of every affected class, and
    stale entries become unreachable rather than wrong.  The engine's
    split trace ({!Mdl_partition.Refiner.on_split}, wired to
    {!note_split}) is surfaced as the {!invalidations} counter so the
    churn is observable.

    {b Cross-bind persistence (sweep mode).}  The (member, size)
    identity says nothing across binds — a later run's partitions may
    give the same pair a different member set — which is why a plain
    cache wipes its rows at every {!bind}.  With {!set_persistent} the
    cache instead keeps a second, content-keyed tier: every tier-1 entry
    is stamped with the bind {e epoch}, a same-diagram rebind is a
    cheap epoch bump (stale stamps stop matching), and a lookup that
    misses tier 1 interns the splitter class's {e member sequence} (the
    slice in walk order) to a signature and consults the shared
    [(node, signature)] store.  Keying by the sequence rather than the
    member set is what keeps reuse {e bit-identical} to re-evaluation:
    {!Local_key.eval_keys} accumulates non-associative float sums in
    member order, so a row list is reused only where a fresh walk would
    traverse exactly the same order.  Store entries are full row lists —
    the singleton skip is disabled on persistent misses, because a row
    list must be complete to serve under a different partition's
    singleton pattern (extra rows are harmless: a class of one can never
    split).  Hits answered by the store against an entry born in an
    earlier epoch are counted as {!cross_bind_hits}
    ([key_cache.cross_bind_hits] in the metrics registry) — the number
    the sweep engine's amortisation comes from.  Binding a {e different}
    diagram clears the store (node ids restart per diagram, so keys
    could collide); the two intern tables survive everything.

    {b Checked contract.}  Callers must {!bind} before lookup and
    re-{!bind} whenever a new (or restarted) refinement over a diagram
    begins.  The remaining free parameters of a row — [eps], key
    [choice], lumping [mode] — are recorded on first use and every later
    {!bind} or {!splitter_keys} with different values raises
    [Invalid_argument] instead of silently serving rows computed under
    another configuration.  {!Compositional.lump} binds automatically
    (with its configuration) at the start of every run; sharing one
    cache across a sweep of models is then safe and keeps the intern
    table hot. *)

type t

val create : unit -> t
(** A fresh, unbound, non-persistent cache with empty intern tables and
    no recorded configuration. *)

val bind :
  ?eps:float ->
  ?choice:Local_key.choice ->
  ?mode:Mdl_lumping.State_lumping.mode ->
  t ->
  Mdl_md.Md.t ->
  unit
(** [bind t md] prepares [t] for one lumping run over [md].  Without
    persistence it discards all memoised rows (they are only sound
    within one monotone run); in persistent mode a same-diagram rebind
    just bumps the epoch and keeps the content-keyed store warm, while
    binding a different diagram additionally clears the store.  The
    intern tables' storage and the flattening context (when [md] is
    physically the diagram already bound) always survive.

    When both [choice] and [mode] are given, the configuration
    [(eps, choice, mode)] — [eps] defaulting to
    {!Mdl_util.Floatx.default_eps} — is recorded on first use and
    checked on every later one.
    @raise Invalid_argument on a configuration mismatch. *)

val bound_md : t -> Mdl_md.Md.t option
(** The diagram the cache is currently bound to, if any. *)

val context : t -> Local_key.context
(** The bound diagram's {!Local_key.context}.
    @raise Invalid_argument when the cache is unbound. *)

val fork : t -> t
(** A fresh single-domain view of this cache for one parallel level
    task: its own rows memo, flattening context and counters, over the
    {e same} shared state — gid table, signature table, persistent row
    store, recorded configuration, cross-bind counter.  Forks are what
    make level-parallel lumping safe — every mutable part of a cache
    except the (domain-safe) shared tables is then owned by exactly one
    domain — and they are observationally equivalent to sharing one
    cache, because row keys embed the node id (nodes belong to one
    level, so cross-level entries never collide) and hit/miss counts per
    level are unaffected.  A fork inherits the epoch and persistence
    flag, so rows it publishes to the store remain visible to the parent
    and to later sweep points after the fork is gone. *)

val set_pool : ?par_threshold:int -> t -> Mdl_util.Domain_pool.t option -> unit
(** Arm (or disarm, with [None]) intra-node miss sharding: subsequent
    cache misses evaluate their keys through {!Local_key.eval_keys}
    with this pool whenever the splitter class has at least
    [par_threshold] members (default 1024; clamped to >= 1).  Inherited
    by {!fork}s made afterwards.  Never changes results — see the
    determinism contract on {!Local_key.eval_keys}. *)

val set_persistent : t -> bool -> unit
(** Switch cross-bind persistence on or off.  Toggling (either way)
    discards the memoised rows and the content-keyed store: rows cached
    without persistence may have been computed with the singleton skip
    and must not become reachable across binds, and a stale store must
    not survive a disable/re-enable cycle.  A no-op when the flag
    already has the requested value.  Set it before the first run
    sharing the cache (the sweep engine does this at creation); forks
    inherit the current value. *)

val persistent : t -> bool
(** Whether cross-bind persistence is on. *)

val gid_count : t -> int
(** Distinct keys interned into the global gid table so far; the
    table survives {!bind} and is never cleared, so gids are stable
    across levels, runs and models. *)

val store_size : t -> int
(** Bindings currently in the persistent row store (0 unless
    {!set_persistent} is on and a sweep has run). *)

val epoch : t -> int
(** The current bind epoch (bumped by every {!bind}; tier-1 entries
    stamped with an older epoch are stale).  Exposed for tests and
    debugging. *)

val splitter_keys :
  ?eps:float ->
  ?skip:(int -> bool) ->
  t ->
  Local_key.choice ->
  Mdl_lumping.State_lumping.mode ->
  node:Mdl_md.Md.node_id ->
  Mdl_partition.Refiner.slice ->
  int array * int array
(** Memoising front-end to {!Local_key.splitter_keys}, with keys
    replaced by their gids in the global intern table: returns the
    cached parallel (states, gids) arrays — the shape
    {!Mdl_partition.Refiner.comp_lumping_ranked} consumes — when the
    splitter class's [(node, member, size)] identity has been evaluated
    in this bind epoch, or (persistent mode) when its [(node, member
    sequence)] content is in the cross-bind store, otherwise computes,
    interns, stores and returns them.  The arrays are owned by the
    cache: callers must not mutate them.  Gid equality coincides with
    {!Local_key.equal} (keys are quantized before interning), so ranking
    gids groups exactly the same states as ranking the keys themselves.
    A tier-1 hit may return a list computed under an earlier (coarser)
    partition of the same class — by monotonicity it is the same member
    set, and any states that have since become singletons are harmless
    extra rows (they can no longer split anything).  [skip] is applied
    only on non-persistent misses; persistent misses always evaluate
    full row lists (see the module header).
    @raise Invalid_argument when the cache is unbound, or on a
    configuration mismatch with the recorded [(eps, choice, mode)]. *)

val note_split : t -> parent:int -> ids:int list -> unit
(** Split-trace sink (wire as the engine's
    {!Mdl_partition.Refiner.on_split}): records that the classes [ids]
    now have fresh cache identities, incrementing {!invalidations} by
    the number of affected classes.  No entry needs to be removed — see
    the structural-invalidation note above. *)

val hits : t -> int
(** Lookups answered from the cache since {!create} (never reset);
    includes cross-bind store hits. *)

val misses : t -> int
(** Lookups that fell through to {!Local_key.splitter_keys}. *)

val cross_bind_hits : t -> int
(** Lookups answered by the persistent store against a row list born in
    an {e earlier} bind epoch — reuse across sweep points.  Shared with
    every {!fork} of this cache (one atomic counter), never reset. *)

val invalidations : t -> int
(** Classes whose cache identity was retired by a split, as reported
    through {!note_split}. *)

(** Per-level lumping: the [CompLumpingLevel] procedure of Figure 3(a),
    plus the level-local initial partitions [P_l^ini] of the paper's
    "Overall Algorithm" paragraph.

    [comp_lumping_level] computes, by fixed-point iteration over all
    live nodes of a level, a partition of the level's index set that
    satisfies the local lumpability conditions of Definition 3
    ([~_lo] for ordinary, [~_le] for exact) at {e every} node
    simultaneously. *)

val initial_partition :
  ?eps:float ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  level:int ->
  rewards:Decomposed.t list ->
  initial:Decomposed.t ->
  Mdl_partition.Partition.t
(** The coarsest partition of [S_level] such that, within each class:
    ordinary — the level factor of {e every} protected reward function
    is constant (pass all the measures you intend to compute on the
    lumped chain);
    exact — the initial-probability factor [f_pi,level] is constant and,
    for every live node [n] of the level, the full-row formal sum
    [r_{n, n'}(s, S_level)] (per child [n']) is constant. *)

val comp_lumping_level :
  ?eps:float ->
  ?key:Local_key.choice ->
  ?stats:Mdl_partition.Refiner.stats ->
  ?specialised:bool ->
  ?cache:Key_cache.t ->
  ?pool:Mdl_util.Domain_pool.t ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  level:int ->
  initial:Mdl_partition.Partition.t ->
  Mdl_partition.Partition.t
(** Fixed-point refinement over all live nodes of the level, starting
    from [initial].  [key] defaults to {!Local_key.Formal_sums} (the
    paper's choice); {!Local_key.Expanded_matrices} trades time for a
    possibly coarser partition.  [stats] accumulates the refinement
    engine's counters over every per-node run of the fixed point
    ({!Mdl_partition.Refiner.stats}).

    [specialised] (default [true]) runs every per-node refinement
    through the interned-key pipeline
    ({!Mdl_partition.Refiner.comp_lumping_interned}), sharing one
    {!type:Mdl_partition.Refiner.intern_table} across the whole fixed point;
    [~specialised:false] forces the generic closure-based pipeline.
    Both compute the same partition ({!Local_key.splitter_keys} emits
    quantized canonical keys, on which structural equality {e is}
    lumping-key equality — pinned by the differential tests).

    [cache] (specialised path only; ignored with
    [~specialised:false]) memoises splitter-key evaluation through a
    {!Key_cache.t}, skips key accumulation for classes already singleton
    at the start of each per-node run, and reports the engine's split
    trace to the cache.  The cache is auto-bound to [md] if bound
    elsewhere (or unbound); when already bound to [md] its rows are
    {e kept}, so the levels of one {!Compositional.lump} run share one
    bind — callers invoking this function directly with a reused cache
    must {!Key_cache.bind} between independent runs (the memo is only
    sound while refinement of each level is monotone; see
    {!Key_cache}).  Partitions, lumped diagrams and splitter-pass counts
    are unchanged by the cache (pinned by the differential tests); only
    key-evaluation work and the [key_evals] / [cache_*] counters differ.

    [pool] (cached path only) shards the ranked pipeline's per-pass
    class lookups across a domain pool
    ({!Mdl_partition.Refiner.comp_lumping_ranked}); intra-node
    splitter-key sharding is armed separately on the cache via
    {!Key_cache.set_pool}.  Neither changes the computed partition,
    the pass counts or any counter.

    The returned partition is canonicalised when fully discrete: if no
    two states lump, the result is {!Mdl_partition.Partition.discrete}
    (class ids = state ids), whatever ids refinement history would have
    assigned.  @raise Invalid_argument on a bad level or partition size
    mismatch. *)

val key_intern_table : unit -> Local_key.t Mdl_partition.Refiner.intern_table
(** A fresh interning table over {!Local_key.equal}/{!Local_key.hash} —
    what [comp_lumping_level] shares across its fixed point.  Exposed
    for the intern-table reuse tests. *)

val is_locally_lumpable :
  ?eps:float ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  level:int ->
  Mdl_partition.Partition.t ->
  bool
(** Direct check of Definition 3's matrix conditions (with formal-sum
    equality) for a given partition — the post-condition of
    [comp_lumping_level], used by tests.  Does not check the reward /
    initial-probability factor conditions. *)

(** The compositional MD lumping algorithm — Figure 3(b),
    [CompositionalLump] — and the helpers needed to use its result for
    numerical solution.

    For each level of the diagram a locally lumpable partition is
    computed ({!Level_lumping}); then every node is replaced by its
    lumped quotient, rebuilding the diagram bottom-up so that nodes
    which become equal after lumping merge by hash-consing (their
    parents' formal-sum terms combine).  By Theorems 3 and 4 the
    resulting diagram represents an (ordinarily / exactly) lumped
    version of the original CTMC.

    Quotient convention: as in flat lumping ({!Mdl_lumping.Quotient}),
    ordinary mode takes representative rows and class-summed columns;
    exact mode builds the aggregated form [R(C_i, C_j) / |C_i|], whose
    per-level factorisation is [sum over class-pair entries / |local
    class|] — a genuine rate matrix under exact lumpability. *)

type result = {
  lumped : Mdl_md.Md.t;  (** the lumped diagram *)
  partitions : Mdl_partition.Partition.t array;
      (** [partitions.(l-1)] partitions the original [S_l]; its class
          ids are the index set of level [l] of [lumped] *)
}
(** When no level lumps anything (every partition is the identity),
    [lumped] {e aliases} the input diagram — same store, same root —
    rather than holding a node-by-node copy.  Nodes are immutable, so
    this is observable only through physical equality and shared
    [add_node] effects on the store. *)

val lump :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?eps:float ->
  ?key:Local_key.choice ->
  ?stats:Mdl_partition.Refiner.stats ->
  ?specialised:bool ->
  ?memoise:bool ->
  ?cache:Key_cache.t ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  rewards:Decomposed.t list ->
  initial:Decomposed.t ->
  result
(** Run the full algorithm: per-level initial partitions from the
    decomposed [rewards] (ordinary — every listed reward function is
    protected and remains computable on the lumped chain) or [initial]
    (exact), per-level fixed-point refinement, then rebuild.
    [specialised] (default [true]) selects the interned-key refinement
    pipeline per level — see {!Level_lumping.comp_lumping_level}.

    [memoise] (default [true]) runs the specialised path through a
    splitter-key cache ({!Key_cache}): per-node column walks are
    memoised across fixed-point passes, key accumulation skips
    singleton classes, the intern table is shared across all levels,
    and the rebuild reuses nodes of identity levels verbatim (aliasing
    the whole diagram when nothing lumps).  [~memoise:false] restores
    the uncached pipeline — same partitions, same lumped diagram, same
    splitter-pass count (pinned by the differential property tests),
    more key-evaluation work.  Pass [cache] to share one cache (and its
    hot intern table) across several lump calls — e.g. a bench sweep;
    the cache is (re)bound to [md] at the start of the run, which
    discards its memoised rows but keeps the interned-key storage.
    [cache] is ignored when [memoise] or [specialised] is false.

    [pool] runs the pipeline data-parallel on a {!Mdl_util.Domain_pool}:
    levels refine concurrently (each level runs the untouched sequential
    fixed point on its own domain, over its own {!Key_cache.fork});
    within a level, large splitter-key misses shard their member walk
    ({!Local_key.eval_keys}) and large ranked passes shard their class
    lookups; and the incremental rebuild computes quotient node rows in
    parallel, committing them to the store in node order.
    [par_threshold] (default [1024]) is the minimum work-item count
    (splitter-class members, quotient rows per level) below which a loop
    stays inline.  {b Determinism:} every sharded loop either merges its
    results in index order or writes placement-independent slots, so the
    partitions, the lumped diagram (bit-identical, [Md.equal]), the
    splitter-pass counts and all counters are the same at {e any} domain
    count, pool or no pool — pinned by the differential concurrency
    suite.  When tracing is enabled ({!Mdl_obs.Trace}), levels fall back
    to sequential (the trace buffer is not domain-safe); intra-level
    sharding stays on.

    Observability: each level's refinement counters and wall time are
    logged on the [mdl.lump] source at debug level; pass [stats] to
    additionally accumulate the {!Mdl_partition.Refiner.stats} of every
    level into one record (the [--stats] flag of [bin/lumpmd] does
    this), including the cache hit/miss and node reuse counters.
    [tctx] records the run's spans into that explicit
    {!Mdl_obs.Trace.Ctx.t} instead of the caller's current context
    (default) — how [lumpd] isolates concurrently traced requests;
    {!sweep_point} and {!lump_sweep} take the same argument. *)

val lump_with_partitions :
  ?stats:Mdl_partition.Refiner.stats ->
  ?incremental:bool ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  Mdl_partition.Partition.t array ->
  result
(** Rebuild only, with externally supplied per-level partitions (assumed
    locally lumpable — used by tests and by callers that compute
    partitions separately).  With [incremental] (default [true]), levels
    whose partition is the identity ([class_of s = s] for all [s]) are
    imported node-for-node ({!Mdl_md.Md.import_node}); when {e every}
    level is the identity the input diagram is aliased.
    [~incremental:false] forces the from-scratch rebuild of every node —
    the uncached baseline ([Compositional.lump ~memoise:false] uses it,
    so the bench race measures cache plus incremental rebuild together).
    [stats] receives the [nodes_rebuilt]/[nodes_reused] counters.
    [pool] parallelises the incremental path's per-node quotient row
    builds when a level has at least [par_threshold] class-indexed rows
    to produce (default [1024], counted as nodes x classes); commits to
    the store stay sequential in node order, so the result is
    bit-identical at any domain count.
    @raise Invalid_argument on partition count/size mismatch. *)

(** {1 Batched sweeps}

    The paper's headline use case (§6) lumps {e one} structural model
    repeatedly under varying measures; almost all splitter-key column
    walks recur between nearby points.  A {!sweep} is a stateful engine
    over one diagram that keeps three warm stores across points: the
    cache's cross-bind row store ({!Key_cache.set_persistent} — rows
    keyed by class {e content}, reused wherever a later point produces
    the same member sequence), a per-level fixed-point memo (identical
    initial-partition layouts skip refinement entirely), and a rebuild
    memo (identical partition tuples alias the previously built lumped
    diagram).  Results are bit-identical ([Md.equal], equal partitions)
    to an independent {!lump} per point — every reuse path replays only
    work whose inputs match exactly — pinned by the differential
    property suite. *)

type sweep
(** A sweep engine bound to one diagram, mode and configuration. *)

type sweep_spec = {
  sweep_rewards : Decomposed.t list;  (** rewards of this point (ordinary mode) *)
  sweep_initial : Decomposed.t;  (** initial distribution (exact mode) *)
}
(** One sweep point: the [rewards]/[initial] pair {!lump} takes. *)

type sweep_stats = {
  points : int;  (** points run so far *)
  level_fixpoints : int;  (** per-level fixed points actually refined *)
  level_reused : int;  (** level results served from the fixed-point memo *)
  rebuilds : int;  (** quotient rebuilds actually performed *)
  rebuilds_reused : int;  (** lumped diagrams aliased from the rebuild memo *)
  cross_bind_hits : int;
      (** splitter-row lookups answered across points by the cache's
          persistent store (see {!Key_cache.cross_bind_hits}) *)
}

val sweep_create :
  ?eps:float ->
  ?key:Local_key.choice ->
  ?cache:Key_cache.t ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  sweep
(** An engine over [md].  [cache] (default: a fresh one) is switched to
    persistent mode and bound to [md] with the engine's configuration —
    which records [(eps, key, mode)] in the cache, so sharing it with a
    differently-configured run raises [Invalid_argument].  [pool] and
    [par_threshold] parallelise each point exactly as in {!lump}
    (memo-missing levels refine concurrently on cache forks; forks
    publish to the shared store, so their work persists). *)

val sweep_point :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?stats:Mdl_partition.Refiner.stats ->
  sweep ->
  rewards:Decomposed.t list ->
  initial:Decomposed.t ->
  result
(** Lump the engine's diagram for one point.  Equals
    [lump mode md ~rewards ~initial] (same partitions, [Md.equal]
    lumped diagram — the memo paths only replay exact-input matches),
    but amortises: the cache rebind is an epoch bump, level fixed
    points and the rebuild are memoised, and splitter rows recur via
    the content-keyed store.  [stats] accumulates refiner counters of
    the levels that actually ran (memo hits contribute nothing).
    Observability: a [sweep.point] span when tracing (levels then
    refine sequentially, as in {!lump}), a [sweep.point_seconds]
    histogram and [sweep.*] counters when metrics are on. *)

val sweep_stats : sweep -> sweep_stats
(** Cumulative reuse counters of this engine ([cross_bind_hits] as a
    delta since engine creation, so a pre-warmed shared cache does not
    inflate it). *)

val sweep_cache : sweep -> Key_cache.t
(** The engine's cache — e.g. to inspect {!Key_cache.store_size}. *)

val lump_sweep :
  ?tctx:Mdl_obs.Trace.Ctx.t ->
  ?eps:float ->
  ?key:Local_key.choice ->
  ?stats:Mdl_partition.Refiner.stats ->
  ?cache:Key_cache.t ->
  ?pool:Mdl_util.Domain_pool.t ->
  ?par_threshold:int ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.t ->
  points:sweep_spec list ->
  result list
(** [lump_sweep mode md ~points] runs every point through one fresh
    engine, in order — the batched equivalent of mapping {!lump} over
    [points], bit-identical to it and typically several times faster
    per point once warm (see the [sweeps] section of BENCH_refine.json
    and [lumpmd sweep]). *)

val class_tuple : result -> int array -> int array
(** Map a global state to its class tuple (the corresponding state of
    the lumped diagram). *)

val class_volume : result -> int array -> int
(** [class_volume r ct] is [prod_l |C_l|] — the number of original
    states in the global class with class tuple [ct]. *)

val lump_statespace : result -> Mdl_md.Statespace.t -> Mdl_md.Statespace.t
(** Image of a reachable state space under {!class_tuple}. *)

val is_closed : result -> Mdl_md.Statespace.t -> bool
(** Whether the reachable state space is a union of global equivalence
    classes (every class is fully reachable or fully unreachable).
    Closure is what makes the quotient of the {e reachable} chain
    well-defined; symmetric models satisfy it by construction. *)

val aggregate_vector :
  result -> Mdl_md.Statespace.t -> Mdl_md.Statespace.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [aggregate_vector r ss lumped_ss v] sums [v] over each class —
    probability aggregation.  @raise Invalid_argument on size or level
    mismatches, or when [lumped_ss] contains out-of-range class ids. *)

val average_vector :
  result -> Mdl_md.Statespace.t -> Mdl_md.Statespace.t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** Class-averaged vector — Theorem 2's lumped rewards
    [r~(i) = r(C_i)/|C_i|].
    @raise Invalid_argument as {!aggregate_vector}, and additionally
    when some state of [lumped_ss] receives {e no} state of [ss] (its
    average is undefined; silently returning [nan] would poison
    downstream measures). *)

val lumped_rewards : result -> Decomposed.t -> Decomposed.t
(** Carry a decomposed reward function to the lumped diagram by class
    representatives (valid in ordinary mode, where factors are
    class-constant by construction of [P_l^ini]). *)

val lumped_initial : result -> Decomposed.t -> Decomposed.t
(** Same for a decomposed initial distribution (exact mode). *)

/* Monotonic clock for Mdl_util.Timer.

   Benchmark and per-level lumping timings must never go backwards; the
   wall clock (gettimeofday) can, whenever NTP steps the system time.
   CLOCK_MONOTONIC is immune to clock steps; fall back to the wall clock
   only on platforms without it. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value mdl_timer_monotonic_ns(value unit)
{
  CAMLparam1(unit);
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                               + (int64_t)ts.tv_nsec));
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    CAMLreturn(caml_copy_int64((int64_t)tv.tv_sec * 1000000000LL
                               + (int64_t)tv.tv_usec * 1000LL));
  }
}

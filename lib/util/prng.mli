(** Deterministic splittable pseudo-random number generator
    (SplitMix64).

    Workload generators and property-based tests need reproducible
    randomness that is independent of the global [Random] state; every
    generator receives its own [t]. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val of_seed : int -> t
(** [of_seed s] is [create] on a mixed version of [s] — small integer
    seeds (CLI [--seed] values, loop counters) land on well-separated
    states. *)

val fork : t -> int -> t
(** [fork t k] derives the [k]-th generator of an indexed family,
    deterministically from [t]'s {e current} state, {e without}
    advancing [t].  [fork t k] called twice yields identical streams;
    different [k] yield independent streams.  This is how one master
    seed reproducibly drives a numbered sequence of test cases. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

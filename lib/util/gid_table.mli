(** A sharded, domain-safe intern table: values to dense global ids.

    The concurrent counterpart of a single-domain intern table for the
    one shared-write hot spot of parallel refinement — the global
    key-to-gid table every domain interns splitter keys into.  The
    table is sharded by hash so writers contend only within a shard,
    and the {e read} path (the overwhelmingly common case once the
    table is warm: a cache hit never re-interns, and repeated keys hit
    the table) is lock-free — a lookup walks immutable bucket lists
    published through [Atomic.t] cells and takes no lock.  Only a miss
    takes its shard's mutex, re-checks, and inserts.

    Gids are allocated from one atomic counter: unique, dense, and
    stable for the table's lifetime — but {e not} deterministic across
    runs or domain counts, because allocation order depends on domain
    interleaving.  Consumers must therefore never let gid {e values}
    reach results: the refinement pipelines reduce gids to per-pass
    dense ranks by first appearance in (deterministically merged) node
    order, which is invariant under any gid numbering.  The test suite
    pins this: concurrent interning of overlapping key sets yields no
    duplicate gids and identical rank assignments run-to-run.

    Besides splitter keys, {!Mdl_core.Key_cache} interns splitter-class
    {e member sequences} through a second table of its own to form the
    content signatures of its persistent cross-bind row store (the
    sweep engine's warm tier) — same rules: signature values never
    reach results, only equality of signatures is consumed. *)

type 'k t

val create : ?shards:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> 'k t
(** [shards] is rounded up to a power of two; default 16. *)

val intern : 'k t -> 'k -> int
(** The value's gid, allocating the next dense id on first sight.
    Safe to call from any number of domains concurrently; two
    concurrent calls with equal values return the same gid. *)

val find : 'k t -> 'k -> int option
(** Lock-free lookup without insertion. *)

val size : 'k t -> int
(** Number of distinct values interned so far. *)

(** Monotonic timing used by the benchmark harness and the CLI
    reporters.

    Readings come from the OS monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)]), not the wall clock: NTP steps
    adjust the wall clock and can make [gettimeofday]-based durations
    negative or wildly wrong, which would corrupt benchmark output.
    Elapsed times from this module are always [>= 0]. *)

type t

val start : unit -> t
(** [start ()] is a timer started now. *)

val now_ns : unit -> int64
(** Raw monotonic nanosecond reading — the clock value itself, with no
    float round-trip.  Only differences between two readings are
    meaningful (the epoch is unspecified, typically boot time).
    Consecutive reads never decrease; span timestamps
    ([Mdl_obs.Trace]) are built from these. *)

val elapsed_ns : t -> int64
(** Nanoseconds elapsed since [start]; never negative. *)

val elapsed_s : t -> float
(** Seconds elapsed since [start]; nanosecond resolution, never
    negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic seconds. *)

(** Monotonic timing used by the benchmark harness and the CLI
    reporters.

    Readings come from the OS monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)]), not the wall clock: NTP steps
    adjust the wall clock and can make [gettimeofday]-based durations
    negative or wildly wrong, which would corrupt benchmark output.
    Elapsed times from this module are always [>= 0]. *)

type t

val start : unit -> t
(** [start ()] is a timer started now. *)

val elapsed_s : t -> float
(** Seconds elapsed since [start]; nanosecond resolution, never
    negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic seconds. *)

(* Work distribution: jobs carry an atomic claim counter and an atomic
   completion counter.  Claiming is [fetch_and_add] on [next]; the
   claimer that observes the counter past [n] retires the job from the
   shared queue.  Workers sleep on [cond] and are woken both when a job
   is submitted and when one completes (submitters block on the same
   condition while waiting for stragglers). *)

type job = {
  fn : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed index *)
  unfinished : int Atomic.t; (* tasks not yet completed *)
  mutable dequeued : bool; (* protected by the pool lock *)
  mutable failure : (exn * Printexc.raw_backtrace) option; (* pool lock *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  jobs : job Queue.t; (* jobs that may still have unclaimed indices *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  pool_size : int;
  chaos_enabled : bool;
}

let size t = t.pool_size

let chaos t = t.chaos_enabled

(* Deterministic per-claim spin under MDL_CHAOS: a cheap LCG stream per
   domain, seeded by the worker index, whose draws only decide how many
   cpu_relax spins precede a task — timing noise, never data. *)
let chaos_spin state =
  state := (!state * 1103515245) + 12345;
  let spins = (!state lsr 16) land 15 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* Run claimed task [i] of [j]; record the first failure. *)
let run_task t j i =
  (try j.fn i
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.lock;
     if j.failure = None then j.failure <- Some (e, bt);
     Mutex.unlock t.lock);
  if Atomic.fetch_and_add j.unfinished (-1) = 1 then begin
    (* Last task of the job: wake its submitter (and idle workers). *)
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end

let retire t j =
  Mutex.lock t.lock;
  if not j.dequeued then begin
    j.dequeued <- true;
    (* [j] is in the queue exactly once; drop it wherever it sits. *)
    let keep = Queue.create () in
    Queue.iter (fun j' -> if j' != j then Queue.add j' keep) t.jobs;
    Queue.clear t.jobs;
    Queue.transfer keep t.jobs
  end;
  Mutex.unlock t.lock

(* Claim and run indices of [j] until none are left. *)
let drain t j chaos_state =
  let rec go () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.n then begin
      if t.chaos_enabled then chaos_spin chaos_state;
      run_task t j i;
      go ()
    end
    else if not j.dequeued then retire t j
  in
  go ()

let worker t idx () =
  let chaos_state = ref ((idx * 2654435761) lor 1) in
  let rec loop () =
    Mutex.lock t.lock;
    let rec next_job () =
      if t.closing then None
      else
        match Queue.peek_opt t.jobs with
        | Some j when not j.dequeued -> Some j
        | Some _ ->
            ignore (Queue.pop t.jobs);
            next_job ()
        | None ->
            Condition.wait t.cond t.lock;
            next_job ()
    in
    let j = next_job () in
    Mutex.unlock t.lock;
    match j with
    | None -> ()
    | Some j ->
        drain t j chaos_state;
        loop ()
  in
  loop ()

let create ~domains =
  let pool_size = max 1 domains in
  let chaos_enabled =
    match Sys.getenv_opt "MDL_CHAOS" with Some "" | None -> false | Some _ -> true
  in
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      closing = false;
      workers = [];
      pool_size;
      chaos_enabled;
    }
  in
  t.workers <- List.init (pool_size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let run t ~n fn =
  if n <= 0 then ()
  else if t.pool_size = 1 || n = 1 || t.closing then
    for i = 0 to n - 1 do
      fn i
    done
  else begin
    let j =
      {
        fn;
        n;
        next = Atomic.make 0;
        unfinished = Atomic.make n;
        dequeued = false;
        failure = None;
      }
    in
    Mutex.lock t.lock;
    Queue.add j t.jobs;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    (* The submitter participates: drain our own job first (nested
       submissions from worker tasks bottom out here), then wait for
       indices claimed by other domains to finish. *)
    let chaos_state = ref 1 in
    drain t j chaos_state;
    Mutex.lock t.lock;
    while Atomic.get j.unfinished > 0 do
      Condition.wait t.cond t.lock
    done;
    let failure = j.failure in
    Mutex.unlock t.lock;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let split ~n ~tasks i =
  if tasks <= 0 || i < 0 || i >= tasks then invalid_arg "Domain_pool.split";
  let base = n / tasks and rem = n mod tasks in
  let lo = (i * base) + min i rem in
  let hi = lo + base + if i < rem then 1 else 0 in
  (lo, hi)

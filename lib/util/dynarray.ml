type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x =
  if n < 0 then invalid_arg "Dynarray.make: negative length";
  { data = Array.make (max n 1) x; len = n }

let length t = t.len

let check_bounds t i fn =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dynarray.%s: index %d out of bounds [0,%d)" fn i t.len)

let get t i =
  check_bounds t i "get";
  Array.unsafe_get t.data i

let set t i x =
  check_bounds t i "set";
  Array.unsafe_set t.data i x

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dynarray.pop: empty";
  t.len <- t.len - 1;
  let x = Array.unsafe_get t.data t.len in
  (* Junk-fill the freed slot so the popped element is collectable: a
     reference left in the backing store keeps it alive for as long as
     the dynarray exists (space leak).  A still-live element is the only
     type-correct filler (a [Obj.magic] dummy would crash on unboxed
     float arrays); when the array empties, drop the store entirely. *)
  if t.len > 0 then Array.unsafe_set t.data t.len (Array.unsafe_get t.data 0)
  else t.data <- [||];
  x

let clear t =
  t.len <- 0;
  (* Release the backing store: every slot holds a now-dead reference
     and there is no live element left to junk-fill with. *)
  t.data <- [||]

let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p (Array.unsafe_get t.data i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len

let sort_by cmp a =
  let n = Array.length a in
  if n > 1 then begin
    let buf = Array.make n 0 in
    (* Bottom-up stable merge sort, ping-ponging between [a] and [buf].
       All reads/writes are on int arrays and the only calls are to the
       caller's comparator — no polymorphic compare, no boxing. *)
    let merge src dst lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp (Array.unsafe_get src !i) (Array.unsafe_get src !j) <= 0)
        then begin
          Array.unsafe_set dst k (Array.unsafe_get src !i);
          incr i
        end
        else begin
          Array.unsafe_set dst k (Array.unsafe_get src !j);
          incr j
        end
      done
    in
    let src = ref a and dst = ref buf in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(* The two fused pipeline sorts below move the parallel (class, key,
   state) triples themselves instead of sorting an index permutation:
   no comparator closure at all, every comparison is a machine compare
   on an int or an unboxed float loaded straight from its array.  Both
   are bottom-up stable merges sorting only the first [n] entries. *)

let sort_runs_float ~cls ~keys ~states n =
  if n > 1 then begin
    let bc = Array.make n 0 and bk = Array.make n 0.0 and bs = Array.make n 0 in
    let merge sc sk ss dc dk ds lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        let take_left =
          !i < mid
          && (!j >= hi
             ||
             let ci = Array.unsafe_get sc !i and cj = Array.unsafe_get sc !j in
             if ci <> cj then ci < cj
             else
               let ki = Array.unsafe_get sk !i and kj = Array.unsafe_get sk !j in
               if ki < kj then true
               else if ki > kj then false
               else Array.unsafe_get ss !i <= Array.unsafe_get ss !j)
        in
        let src = if take_left then i else j in
        Array.unsafe_set dc k (Array.unsafe_get sc !src);
        Array.unsafe_set dk k (Array.unsafe_get sk !src);
        Array.unsafe_set ds k (Array.unsafe_get ss !src);
        incr src
      done
    in
    let flip = ref false in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        if !flip then merge bc bk bs cls keys states !lo mid hi
        else merge cls keys states bc bk bs !lo mid hi;
        lo := hi
      done;
      flip := not !flip;
      width := !width * 2
    done;
    if !flip then begin
      Array.blit bc 0 cls 0 n;
      Array.blit bk 0 keys 0 n;
      Array.blit bs 0 states 0 n
    end
  end

let sort_runs_int ~cls ~keys ~states n =
  if n > 1 then begin
    let bc = Array.make n 0 and bk = Array.make n 0 and bs = Array.make n 0 in
    let merge sc sk ss dc dk ds lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        let take_left =
          !i < mid
          && (!j >= hi
             ||
             let ci = Array.unsafe_get sc !i and cj = Array.unsafe_get sc !j in
             if ci <> cj then ci < cj
             else
               let ki = Array.unsafe_get sk !i and kj = Array.unsafe_get sk !j in
               if ki <> kj then ki < kj
               else Array.unsafe_get ss !i <= Array.unsafe_get ss !j)
        in
        let src = if take_left then i else j in
        Array.unsafe_set dc k (Array.unsafe_get sc !src);
        Array.unsafe_set dk k (Array.unsafe_get sk !src);
        Array.unsafe_set ds k (Array.unsafe_get ss !src);
        incr src
      done
    in
    let flip = ref false in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        if !flip then merge bc bk bs cls keys states !lo mid hi
        else merge cls keys states bc bk bs !lo mid hi;
        lo := hi
      done;
      flip := not !flip;
      width := !width * 2
    done;
    if !flip then begin
      Array.blit bc 0 cls 0 n;
      Array.blit bk 0 keys 0 n;
      Array.blit bs 0 states 0 n
    end
  end

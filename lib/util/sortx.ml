let sort_by cmp a =
  let n = Array.length a in
  if n > 1 then begin
    let buf = Array.make n 0 in
    (* Bottom-up stable merge sort, ping-ponging between [a] and [buf].
       All reads/writes are on int arrays and the only calls are to the
       caller's comparator — no polymorphic compare, no boxing. *)
    let merge src dst lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp (Array.unsafe_get src !i) (Array.unsafe_get src !j) <= 0)
        then begin
          Array.unsafe_set dst k (Array.unsafe_get src !i);
          incr i
        end
        else begin
          Array.unsafe_set dst k (Array.unsafe_get src !j);
          incr j
        end
      done
    in
    let src = ref a and dst = ref buf in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(** Growable arrays.

    OCaml 5.1's standard library does not yet ship [Dynarray]; this is a
    small, self-contained replacement used throughout the code base for
    collecting elements whose count is unknown in advance. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty dynamic array. *)

val make : int -> 'a -> 'a t
(** [make n x] is a dynamic array holding [n] copies of [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get t i] is element [i]. @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set t i x] replaces element [i]. @raise Invalid_argument if out of
    bounds. *)

val push : 'a t -> 'a -> unit
(** [push t x] appends [x] at the end, growing the backing store as
    needed. *)

val pop : 'a t -> 'a
(** [pop t] removes and returns the last element.  The freed slot is
    junk-filled (overwritten with a still-live element) so the popped
    value does not leak by staying reachable from the backing store.
    @raise Invalid_argument on an empty array. *)

val clear : 'a t -> unit
(** [clear t] removes all elements and releases the backing store, so
    the cleared elements become collectable immediately. *)

val is_empty : 'a t -> bool

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array
(** [to_array t] is a fresh array with the elements of [t] in order. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp t] sorts [t] in place. *)

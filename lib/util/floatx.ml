let default_eps = 1e-9

let approx_eq ?(eps = default_eps) a b =
  if a = b then true
  else
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= eps *. scale

let compare_approx ?(eps = default_eps) a b =
  if approx_eq ~eps a b then 0 else compare a b

let quantize ?(eps = default_eps) x =
  if x = 0.0 then 0.0 (* merge -0.0 with 0.0 *)
  else
    let q = Float.round (x /. eps) in
    if Float.is_finite q then q *. eps else x

let sum_kahan a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

(** Tolerant floating-point comparison helpers.

    Partition refinement and lumpability checks compare sums of rates
    computed along different association orders; all such comparisons go
    through this module so the tolerance policy lives in one place. *)

val default_eps : float
(** Absolute/relative tolerance used when none is supplied ([1e-9]). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is true when [|a - b| <= eps * max 1 (|a|, |b|)],
    i.e. absolute tolerance near zero, relative away from it. *)

val compare_approx : ?eps:float -> float -> float -> int
(** Three-way comparison compatible with {!approx_eq}: returns [0] when
    the two floats are approximately equal, and the sign of [a -. b]
    otherwise.

    {b Pitfall: this is not a total order.}  Approximate equality is not
    transitive ([a ~ b] and [b ~ c] do not imply [a ~ c]), so using
    [compare_approx] as a {e sort or grouping comparator} — e.g. in
    {!Mdl_partition.Partition.group_by} or as a refinement key
    comparator — can produce groups that depend on the input order, or
    sorts that never settle.  It is safe for comparing two values whose
    computation paths are identical (both sides accumulate the same
    terms), which is how the lumpability {e checks} use it.  For
    grouping and refinement keys, map each float through {!quantize}
    first and compare the quantized representatives with the exact
    [Float.compare]. *)

val quantize : ?eps:float -> float -> float
(** [quantize ~eps x] snaps [x] to the nearest multiple of [eps] — a
    deterministic representative of [x]'s tolerance bucket.  Equality of
    quantized values {e is} transitive, which makes
    [fun a b -> Float.compare (quantize a) (quantize b)] a total order
    suitable for sorting and grouping.  The trade-off: two values within
    [eps] of each other but straddling a bucket boundary quantize apart
    (grouping by a non-transitive relation exactly is impossible; the
    grid is the deterministic approximation).  [0.0] and [-0.0] quantize
    to [0.0]; values so large that [x /. eps] overflows are returned
    unchanged. *)

val sum_kahan : float array -> float
(** Compensated (Kahan) summation, used where many small rates are
    accumulated. *)

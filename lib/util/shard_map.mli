(** A sharded, domain-safe key/value map with a lock-free read path.

    The generic sibling of {!Gid_table} for shared caches whose values
    are not dense ids: the same immutable-bucket-list representation
    published through [Atomic.t] cells, sharded by hash so writers
    contend only within a shard, with lock-free {!find} and a
    double-checked locked insert.  Built for read-mostly workloads —
    e.g. the cross-bind splitter-row store of {!Mdl_core.Key_cache},
    where every sweep point after the first answers almost every lookup
    from the map.

    Bindings are {e first-writer-wins}: {!add} never replaces an
    existing binding, it returns the one already present.  This is the
    right semantics for a memo table of a pure function — two domains
    racing to insert results for the same key insert {e equal} values,
    and keeping the first published one means every reader that already
    saw a value keeps seeing that same value.  Publication through the
    atomic bucket cells gives the usual happens-before edge: a reader
    that finds a value sees it (and everything reachable from it) fully
    initialised, even when it was built on another domain. *)

type ('k, 'v) t

val create : ?shards:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** [shards] is rounded up to a power of two; default 16. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lock-free lookup. *)

val add : ('k, 'v) t -> 'k -> 'v -> 'v
(** [add t k v] binds [k] to [v] unless [k] is already bound, and
    returns the winning binding ([v] itself when the insert happened,
    the existing value otherwise).  Safe from any number of domains;
    concurrent adds of the same key agree on one winner. *)

val size : ('k, 'v) t -> int
(** Number of bindings.  Exact when no writer is concurrently active;
    during concurrent insertion the count may lag by in-flight adds. *)

val clear : ('k, 'v) t -> unit
(** Drop every binding (shard by shard, under the shard locks).  The
    caller must ensure no concurrent reader relies on the old bindings
    staying complete — clearing while other domains read is memory-safe
    (readers see either the old or the fresh empty buckets) but not
    atomic across shards. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  create (mix64 (Int64.logxor seed 0x5851f42d4c957f2dL))

let of_seed seed = create (mix64 (Int64.of_int seed))

let fork t key =
  let keyed =
    Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (key + 1)))
  in
  create (mix64 (Int64.logxor keyed 0x5851f42d4c957f2dL))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Shift by 2 so the value fits OCaml's 63-bit int without wrapping
     negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let bits53 = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (bits53 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

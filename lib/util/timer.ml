type t = int64 (* monotonic nanoseconds *)

external monotonic_ns : unit -> int64 = "mdl_timer_monotonic_ns"

let start () = monotonic_ns ()

let now_ns () = monotonic_ns ()

let elapsed_ns t = Int64.sub (monotonic_ns ()) t

let elapsed_s t = Int64.to_float (Int64.sub (monotonic_ns ()) t) *. 1e-9

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)

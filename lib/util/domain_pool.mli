(** A reusable pool of OCaml 5 domains for deterministic data-parallel
    loops.

    A pool of size [k] owns [k - 1] spawned worker domains; the caller
    of {!run} is the [k]-th participant, so a pool of size 1 spawns
    nothing and {!run} degenerates to a plain sequential loop — the
    parallel entry points stay bit-identical to the sequential code
    path at every size.

    {b Scheduling.}  {!run} submits [n] indexed tasks; idle workers and
    the caller claim indices from a shared atomic counter (dynamic
    load balancing), so {e which} domain runs a task is
    non-deterministic — callers must make the {e results} independent
    of placement by writing task [i]'s output to slot [i] of a
    pre-sized array and merging slots in index order after {!run}
    returns.  Everything written by a task happens-before {!run}'s
    return (the completion count is an [Atomic.t]).

    {b Nesting.}  A task may itself call {!run} on the same pool: the
    submitting domain drains its own sub-tasks before blocking, and
    idle workers steal them from the shared queue, so nested loops
    cannot deadlock and still use the whole pool.

    {b Exceptions.}  If tasks raise, every task still runs to a
    claim/finish state and the first exception (by completion order) is
    re-raised from {!run} with its backtrace.

    {b Chaos mode.}  When the environment variable [MDL_CHAOS] is set
    to a non-empty value at {!create} time, every task claim spins a
    pseudo-random number of {!Domain.cpu_relax} calls first.  This
    perturbs interleavings without changing any result — the
    concurrency test suites run under it to shake out ordering
    assumptions.  Never enabled outside tests. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains.
    Values below 1 are clamped to 1.  Workers park on a condition
    variable while idle. *)

val size : t -> int
(** Number of participating domains, caller included; at least 1. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes [f 0 .. f (n - 1)], each exactly once, across
    the pool's domains (caller included) and returns when all [n] have
    finished.  With [size t = 1] or [n <= 1] the tasks run inline in
    index order with no synchronisation at all.  If tasks raise, the
    first exception (by completion order) is re-raised here after all
    tasks have settled. *)

val split : n:int -> tasks:int -> int -> int * int
(** [split ~n ~tasks i] is the [(lo, hi)] half-open bounds of the
    [i]-th of [tasks] contiguous, balanced chunks of [0 .. n-1]
    ([0 <= i < tasks]).  Chunk bounds depend only on [(n, tasks)], so
    per-chunk results merged in chunk order reconstruct index order
    regardless of which domain ran which chunk. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent; {!run} after [shutdown]
    falls back to running every task on the calling domain. *)

val chaos : t -> bool
(** Whether chaos perturbation is armed (the [MDL_CHAOS] environment
    variable was set when the pool was created). *)

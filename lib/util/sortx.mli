(** Non-polymorphic sorting for the refinement hot path.

    The partition refiner sorts (index arrays into) key arrays on every
    splitter pass; going through [Stdlib.compare] or tuple-allocating
    comparators there costs more than the key evaluation itself.  Three
    routines live here: a stable merge sort of an [int array] under an
    explicit three-way comparator, and two {e fused} sorts that order
    the refiner's parallel (class, key, state) buffers directly —
    monomorphic float or int keys, no comparator closure, no boxing. *)

val sort_by : (int -> int -> int) -> int array -> unit
(** [sort_by cmp a] sorts [a] in place, stably, by [cmp].  [cmp] is
    typically an index comparator closing over parallel key arrays.
    O(n log n) comparisons, one O(n) scratch allocation, no polymorphic
    compare. *)

val sort_runs_float :
  cls:int array -> keys:float array -> states:int array -> int -> unit
(** [sort_runs_float ~cls ~keys ~states n] sorts the first [n] entries
    of the three parallel arrays {e together}, in place and stably, by
    [(cls, key, state)] ascending — the order the refiner's splitter
    pass needs to cut classes into key runs.  Float comparisons read
    unboxed values straight from [keys]; the arrays may be longer than
    [n] (reusable scratch), entries at [n..] are untouched.  Keys must
    not be NaN (quantized rates never are). *)

val sort_runs_int :
  cls:int array -> keys:int array -> states:int array -> int -> unit
(** Same as {!sort_runs_float} for dense integer key ranks (the
    interned-key pipeline's comparison-sort fallback). *)

(** Non-polymorphic sorting for the refinement hot path.

    The partition refiner sorts (index arrays into) key arrays on every
    splitter pass; going through [Stdlib.compare] or tuple-allocating
    comparators there costs more than the key evaluation itself.  This
    module provides one specialised routine: a stable merge sort of an
    [int array] under an explicit three-way comparator. *)

val sort_by : (int -> int -> int) -> int array -> unit
(** [sort_by cmp a] sorts [a] in place, stably, by [cmp].  [cmp] is
    typically an index comparator closing over parallel key arrays.
    O(n log n) comparisons, one O(n) scratch allocation, no polymorphic
    compare. *)

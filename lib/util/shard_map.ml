(* Same synchronisation discipline as [Gid_table]: entries are immutable
   (hash, key, value) triples in immutable lists, every mutable step on
   the read path goes through an [Atomic.t] (the bucket cells; the
   bucket-array pointer is a racy-but-well-formed mutable read), so a
   reader is properly synchronised with the writer that published the
   entry it finds, and a stale view only sends [add] to the locked slow
   path, never to a wrong answer. *)

type ('k, 'v) shard = {
  lock : Mutex.t;
  mutable buckets : ('k, 'v) bucket_array; (* publish via [Atomic.t] cells inside *)
  mutable population : int; (* bindings in this shard; protected by [lock] *)
}

and ('k, 'v) bucket_array = (int * 'k * 'v) list Atomic.t array

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  shard_mask : int;
  shards : ('k, 'v) shard array;
}

let fresh_buckets n = Array.init n (fun _ -> Atomic.make [])

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 16) ~hash ~equal () =
  let nshards = round_pow2 (max 1 shards) in
  {
    hash;
    equal;
    shard_mask = nshards - 1;
    shards =
      Array.init nshards (fun _ ->
          { lock = Mutex.create (); buckets = fresh_buckets 16; population = 0 });
  }

(* The low hash bits pick the shard; bucket indexing uses higher bits so
   the per-shard tables spread even when shards see hash-correlated
   keys. *)
let[@inline] shard_of t h = t.shards.(h land t.shard_mask)

let[@inline] bucket_index buckets h = (h lsr 4) land (Array.length buckets - 1)

let rec find_entry equal h k = function
  | [] -> None
  | (h', k', v) :: rest -> if h' = h && equal k k' then Some v else find_entry equal h k rest

let find t k =
  let h = t.hash k land max_int in
  let s = shard_of t h in
  let buckets = s.buckets in
  find_entry t.equal h k (Atomic.get buckets.(bucket_index buckets h))

(* Growth runs under the shard lock: rebuild into fresh atomic cells,
   then publish the new array.  Readers on the old array miss entries
   inserted after the swap and fall through to the locked path. *)
let grow s =
  let old = s.buckets in
  let cap = 2 * Array.length old in
  let buckets = fresh_buckets cap in
  Array.iter
    (fun cell ->
      List.iter
        (fun ((h, _, _) as entry) ->
          let b = buckets.(bucket_index buckets h) in
          Atomic.set b (entry :: Atomic.get b))
        (Atomic.get cell))
    old;
  s.buckets <- buckets

let add t k v =
  let h = t.hash k land max_int in
  let s = shard_of t h in
  let buckets = s.buckets in
  match find_entry t.equal h k (Atomic.get buckets.(bucket_index buckets h)) with
  | Some v' -> v'
  | None ->
      Mutex.lock s.lock;
      (* Re-read under the lock: the fast path may have raced an insert
         of this very key, or a growth that moved its bucket. *)
      let buckets = s.buckets in
      let cell = buckets.(bucket_index buckets h) in
      let winner =
        match find_entry t.equal h k (Atomic.get cell) with
        | Some v' -> v'
        | None ->
            Atomic.set cell ((h, k, v) :: Atomic.get cell);
            s.population <- s.population + 1;
            if s.population > 2 * Array.length buckets then grow s;
            v
      in
      Mutex.unlock s.lock;
      winner

let size t = Array.fold_left (fun acc s -> acc + s.population) 0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      s.buckets <- fresh_buckets 16;
      s.population <- 0;
      Mutex.unlock s.lock)
    t.shards

(* Entries are immutable (hash, key, gid) triples in immutable lists;
   every mutable step on the read path goes through an [Atomic.t] (the
   bucket cells and the bucket-array pointer), so readers are properly
   synchronised with writers without taking the shard lock — a racing
   reader sees either the list before or after an insert, and a stale
   view only sends it to the locked slow path, never to a wrong
   answer. *)

type 'k shard = {
  lock : Mutex.t;
  mutable buckets : 'k bucket_array; (* publish via [Atomic.t] cells inside *)
  mutable population : int; (* entries in this shard; protected by [lock] *)
}

and 'k bucket_array = (int * 'k * int) list Atomic.t array

type 'k t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  shard_mask : int;
  shards : 'k shard array;
  next_gid : int Atomic.t;
}

(* [buckets] is a mutable field read without the lock; in the OCaml 5
   memory model a racy read of a mutable pointer field yields some
   previously written (well-formed) array — at worst one missing the
   newest entries, which the double-checked slow path below absorbs. *)

let fresh_buckets n = Array.init n (fun _ -> Atomic.make [])

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 16) ~hash ~equal () =
  let nshards = round_pow2 (max 1 shards) in
  {
    hash;
    equal;
    shard_mask = nshards - 1;
    shards =
      Array.init nshards (fun _ ->
          { lock = Mutex.create (); buckets = fresh_buckets 16; population = 0 });
    next_gid = Atomic.make 0;
  }

let size t = Atomic.get t.next_gid

(* The low hash bits pick the shard; bucket indexing uses higher bits
   so the per-shard tables spread even when shards see hash-correlated
   keys. *)
let[@inline] shard_of t h = t.shards.(h land t.shard_mask)

let[@inline] bucket_index buckets h = (h lsr 4) land (Array.length buckets - 1)

let rec find_entry equal h k = function
  | [] -> -1
  | (h', k', gid) :: rest ->
      if h' = h && equal k k' then gid else find_entry equal h k rest

let find t k =
  let h = t.hash k land max_int in
  let s = shard_of t h in
  let buckets = s.buckets in
  let gid = find_entry t.equal h k (Atomic.get buckets.(bucket_index buckets h)) in
  if gid >= 0 then Some gid else None

(* Growth runs under the shard lock: rebuild into fresh atomic cells,
   then publish the new array.  Readers on the old array miss entries
   inserted after the swap and fall through to the locked path. *)
let grow s =
  let old = s.buckets in
  let cap = 2 * Array.length old in
  let buckets = fresh_buckets cap in
  Array.iter
    (fun cell ->
      List.iter
        (fun ((h, _, _) as entry) ->
          let b = buckets.(bucket_index buckets h) in
          Atomic.set b (entry :: Atomic.get b))
        (Atomic.get cell))
    old;
  s.buckets <- buckets

let intern t k =
  let h = t.hash k land max_int in
  let s = shard_of t h in
  let buckets = s.buckets in
  let gid = find_entry t.equal h k (Atomic.get buckets.(bucket_index buckets h)) in
  if gid >= 0 then gid
  else begin
    Mutex.lock s.lock;
    (* Re-read under the lock: the fast path may have raced an insert
       of this very key, or a growth that moved its bucket. *)
    let buckets = s.buckets in
    let cell = buckets.(bucket_index buckets h) in
    let gid =
      match find_entry t.equal h k (Atomic.get cell) with
      | gid when gid >= 0 -> gid
      | _ ->
          let gid = Atomic.fetch_and_add t.next_gid 1 in
          Atomic.set cell ((h, k, gid) :: Atomic.get cell);
          s.population <- s.population + 1;
          if s.population > 2 * Array.length buckets then grow s;
          gid
    in
    Mutex.unlock s.lock;
    gid
  end

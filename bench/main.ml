(* Benchmark harness: regenerates the paper's evaluation artifacts and
   measures the kernels behind them.

   Sections (ids from DESIGN.md's experiment index):
     T1a/T1b/T1c - Table 1: sizes, node counts, reductions, times,
                   MD memory, for the tandem system (report + kernels).
     P1          - solution cost, lumped vs unlumped (vector size and
                   per-iteration time).
     P2          - optimality: state-level lumping of the lumped chain.
     P3          - ablation: formal-sum keys vs expanded-matrix keys.
     P4          - exact lumping on the replicated-workstation model.
     P5          - representation baseline: Kronecker shuffle product vs
                   MD path product vs flat sparse matrix.

   Environment: BENCH_JOBS="1 2"   J values for the Table 1 report
                (default "1 2"; add 3 for the full paper range - the
                explicit state-space exploration then takes minutes). *)

open Bechamel
open Toolkit
module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Md_vector = Mdl_md.Md_vector
module Partition = Mdl_partition.Partition
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Level_lumping = Mdl_core.Level_lumping
module Local_key = Mdl_core.Local_key
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module State_lumping = Mdl_lumping.State_lumping
module Kronecker = Mdl_kron.Kronecker
module Tandem = Mdl_models.Tandem
module Workstations = Mdl_models.Workstations

(* ------------------------------------------------------------------ *)
(* bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let run_group group_name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:group_name tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "\n== bench group: %s ==\n%!" group_name;
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.3f  s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.3f us" (est /. 1e3)
            else Printf.sprintf "%8.1f ns" est
          in
          Printf.printf "  %-48s %s/run\n" name pretty
      | Some [] | None -> Printf.printf "  %-48s (no estimate)\n" name)
    rows

(* ------------------------------------------------------------------ *)
(* shared model instances                                              *)
(* ------------------------------------------------------------------ *)

let jobs_list () =
  match Sys.getenv_opt "BENCH_JOBS" with
  | None -> [ 1; 2 ]
  | Some s ->
      let l = String.split_on_char ' ' s |> List.filter_map int_of_string_opt in
      if l = [] then [ 1; 2 ] else l

(* Small tandem instance for kernel benchmarks (full topology is used
   for the Table 1 report). *)
let small_tandem_params =
  { (Tandem.default ~jobs:1) with Tandem.hyper_dim = 2; msmq_servers = 2; msmq_queues = 2 }

(* ------------------------------------------------------------------ *)
(* T1: Table 1 report                                                  *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  jobs : int;
  states : int;
  level_sizes : int array;
  nodes : int array;
  lumped_states : int;
  lumped_sizes : int array;
  gen_s : float;
  lump_s : float;
  md_kb : float;
  lumped_md_kb : float;
  built : Tandem.built;
  result : Compositional.result;
}

let t1_run jobs =
  let b, gen_s = Mdl_util.Timer.time (fun () -> Tandem.build (Tandem.default ~jobs)) in
  let ss = b.Tandem.exploration.Model.statespace in
  let nodes, _ = Md.stats b.Tandem.md in
  let result, lump_s =
    Mdl_util.Timer.time (fun () ->
        Compositional.lump Ordinary b.Tandem.md
          ~rewards:[ b.Tandem.rewards_availability ]
          ~initial:b.Tandem.initial)
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  assert (Compositional.is_closed result ss);
  {
    jobs;
    states = Statespace.size ss;
    level_sizes = Md.sizes b.Tandem.md;
    nodes;
    lumped_states = Statespace.size lumped_ss;
    lumped_sizes = Array.map Partition.num_classes result.Compositional.partitions;
    gen_s;
    lump_s;
    md_kb = float_of_int (Md.memory_bytes b.Tandem.md) /. 1024.0;
    lumped_md_kb = float_of_int (Md.memory_bytes result.Compositional.lumped) /. 1024.0;
    built = b;
    result;
  }

let t1_report rows =
  print_endline "== T1a: unlumped state-space sizes and MD node counts ==";
  print_endline "  J  overall      S1     S2     S3        N1  N2  N3";
  List.iter
    (fun r ->
      Printf.printf "  %d  %-10d %-6d %-6d %-6d    %3d %3d %3d\n" r.jobs r.states
        r.level_sizes.(0) r.level_sizes.(1) r.level_sizes.(2) r.nodes.(0) r.nodes.(1)
        r.nodes.(2))
    rows;
  print_endline "";
  print_endline "== T1b: lumped state-space sizes and reductions ==";
  print_endline "  J  overall     S1     S2     S3        overall    l2    l3";
  List.iter
    (fun r ->
      let red a b = float_of_int a /. float_of_int b in
      Printf.printf "  %d  %-10d %-6d %-6d %-6d   %7.1f %5.1f %5.1f\n" r.jobs
        r.lumped_states r.lumped_sizes.(0) r.lumped_sizes.(1) r.lumped_sizes.(2)
        (red r.states r.lumped_states)
        (red r.level_sizes.(1) r.lumped_sizes.(1))
        (red r.level_sizes.(2) r.lumped_sizes.(2)))
    rows;
  print_endline "";
  print_endline "== T1c: generation / lumping times and MD memory ==";
  print_endline "  J  gen time    MD space     lump time   lumped MD";
  List.iter
    (fun r ->
      Printf.printf "  %d  %7.2f s  %8.1f KB  %8.3f s  %8.1f KB\n" r.jobs r.gen_s
        r.md_kb r.lump_s r.lumped_md_kb)
    rows;
  print_endline ""

(* ------------------------------------------------------------------ *)
(* P1: solution cost, lumped vs unlumped                               *)
(* ------------------------------------------------------------------ *)

let p1_report (r : t1_row) =
  Printf.printf "== P1: solution cost at J=%d (vector size and per-iteration time) ==\n"
    r.jobs;
  let b = r.built in
  let ss = b.Tandem.exploration.Model.statespace in
  let lumped_ss = Compositional.lump_statespace r.result ss in
  let time_iterations md space n =
    let op, _ = Md_solve.uniformized_operator md space in
    let x = ref (Array.make op.Solver.dim (1.0 /. float_of_int op.Solver.dim)) in
    let _, elapsed =
      Mdl_util.Timer.time (fun () ->
          for _ = 1 to n do
            x := op.Solver.apply !x
          done)
    in
    elapsed /. float_of_int n
  in
  let unlumped_iter = time_iterations b.Tandem.md ss 5 in
  let lumped_iter = time_iterations r.result.Compositional.lumped lumped_ss 5 in
  Printf.printf "  unlumped: vector size %-8d  %.4f s/iteration\n" (Statespace.size ss)
    unlumped_iter;
  Printf.printf "  lumped:   vector size %-8d  %.4f s/iteration (%.1fx faster)\n"
    (Statespace.size lumped_ss) lumped_iter (unlumped_iter /. lumped_iter);
  let (_, stats), solve_s =
    Mdl_util.Timer.time (fun () ->
        Md_solve.steady_state ~tol:1e-10 ~max_iter:200_000 r.result.Compositional.lumped
          lumped_ss)
  in
  Printf.printf "  lumped steady state: %d iterations in %.2f s (converged %b)\n\n"
    stats.Solver.iterations solve_s stats.Solver.converged

(* ------------------------------------------------------------------ *)
(* P2: optimality check                                                *)
(* ------------------------------------------------------------------ *)

let p2_report (r : t1_row) =
  Printf.printf "== P2: optimality of the compositional result (J=%d) ==\n" r.jobs;
  let b = r.built in
  let ss = b.Tandem.exploration.Model.statespace in
  let lumped_ss = Compositional.lump_statespace r.result ss in
  let n = Statespace.size lumped_ss in
  if n > 60_000 then Printf.printf "  skipped (%d states)\n\n" n
  else begin
    let flat = Md_vector.to_csr r.result.Compositional.lumped lumped_ss in
    let rewards_vec =
      Decomposed.to_vector
        (Compositional.lumped_rewards r.result b.Tandem.rewards_availability)
        lumped_ss
    in
    let initial_p =
      Partition.group_by n
        (fun s -> Mdl_util.Floatx.quantize rewards_vec.(s))
        Float.compare
    in
    let further, t =
      Mdl_util.Timer.time (fun () ->
          State_lumping.coarsest Ordinary flat ~initial:initial_p)
    in
    Printf.printf
      "  state-level lumping [9] of the lumped chain: %d -> %d classes in %.3f s%s\n\n" n
      (Partition.num_classes further) t
      (if Partition.num_classes further = n then "  (optimal)" else "")
  end

(* ------------------------------------------------------------------ *)
(* P3: key-choice ablation                                             *)
(* ------------------------------------------------------------------ *)

let p3_report () =
  print_endline "== P3: local key ablation (formal sums vs expanded matrices) ==";
  let b = Tandem.build small_tandem_params in
  let run key =
    let partitions, t =
      Mdl_util.Timer.time (fun () ->
          Array.init (Md.levels b.Tandem.md) (fun i ->
              let level = i + 1 in
              let p_ini =
                Level_lumping.initial_partition Ordinary b.Tandem.md ~level
                  ~rewards:[ b.Tandem.rewards_availability ]
                  ~initial:b.Tandem.initial
              in
              Level_lumping.comp_lumping_level ~key Ordinary b.Tandem.md ~level
                ~initial:p_ini))
    in
    (Array.map Partition.num_classes partitions, t)
  in
  let formal_classes, formal_t = run Local_key.Formal_sums in
  let expanded_classes, expanded_t = run Local_key.Expanded_matrices in
  let show a = String.concat "/" (Array.to_list (Array.map string_of_int a)) in
  Printf.printf "  formal sums:       classes %-12s %.4f s\n" (show formal_classes)
    formal_t;
  Printf.printf "  expanded matrices: classes %-12s %.4f s (%.0fx slower)\n\n"
    (show expanded_classes) expanded_t (expanded_t /. formal_t)

(* ------------------------------------------------------------------ *)
(* P4: exact lumping                                                   *)
(* ------------------------------------------------------------------ *)

let p4_report () =
  print_endline "== P4: exact lumping (replicated workstations) ==";
  List.iter
    (fun stations ->
      let b = Workstations.build (Workstations.default ~stations) in
      let ss = b.Workstations.exploration.Model.statespace in
      let result, t =
        Mdl_util.Timer.time (fun () ->
            Compositional.lump Exact b.Workstations.md
              ~rewards:[ b.Workstations.rewards_operational ]
              ~initial:b.Workstations.initial)
      in
      let lumped_ss = Compositional.lump_statespace result ss in
      Printf.printf "  %d stations: %6d -> %5d states (%.1fx) in %.4f s, closed %b\n"
        stations (Statespace.size ss) (Statespace.size lumped_ss)
        (float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss))
        t
        (Compositional.is_closed result ss))
    [ 3; 5; 7 ];
  print_endline ""

(* ------------------------------------------------------------------ *)
(* sweep: how the reduction scales with the degree of replication      *)
(* ------------------------------------------------------------------ *)

let sweep_report () =
  print_endline "== sweep: reduction factor vs degree of replication ==";
  print_endline "  (workstations: n identical 3-state machines in one level)";
  List.iter
    (fun stations ->
      let b = Workstations.build (Workstations.default ~stations) in
      let ss = b.Workstations.exploration.Model.statespace in
      let result =
        Compositional.lump Ordinary b.Workstations.md
          ~rewards:[ b.Workstations.rewards_operational ]
          ~initial:b.Workstations.initial
      in
      let lumped = Statespace.size (Compositional.lump_statespace result ss) in
      Printf.printf "  n=%d: %7d -> %5d states (%.1fx; level-2 %d -> %d)
" stations
        (Statespace.size ss) lumped
        (float_of_int (Statespace.size ss) /. float_of_int lumped)
        (Partition.size result.Compositional.partitions.(1))
        (Partition.num_classes result.Compositional.partitions.(1)))
    [ 2; 3; 4; 5; 6; 7 ];
  print_endline "  (tandem, small topology: m MSMQ servers over 2 queues)";
  List.iter
    (fun m ->
      let p = { small_tandem_params with Tandem.msmq_servers = m } in
      let b = Tandem.build p in
      let ss = b.Tandem.exploration.Model.statespace in
      let result =
        Compositional.lump Ordinary b.Tandem.md
          ~rewards:[ b.Tandem.rewards_availability ]
          ~initial:b.Tandem.initial
      in
      let lumped = Statespace.size (Compositional.lump_statespace result ss) in
      Printf.printf "  m=%d: %7d -> %5d states (%.1fx)
" m (Statespace.size ss) lumped
        (float_of_int (Statespace.size ss) /. float_of_int lumped))
    [ 1; 2; 3; 4 ];
  print_endline ""

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmark groups                                     *)
(* ------------------------------------------------------------------ *)

let kernel_tests () =
  let b = Tandem.build small_tandem_params in
  let ss = b.Tandem.exploration.Model.statespace in
  let raw_md = Kronecker.to_md b.Tandem.exploration.Model.descriptor in
  let result =
    Compositional.lump Ordinary b.Tandem.md
      ~rewards:[ b.Tandem.rewards_availability ]
      ~initial:b.Tandem.initial
  in
  [
    Test.make ~name:"T1a explore+compile tandem (small)"
      (Staged.stage (fun () -> ignore (Tandem.build small_tandem_params)));
    Test.make ~name:"T1a kronecker->md"
      (Staged.stage (fun () ->
           ignore (Kronecker.to_md b.Tandem.exploration.Model.descriptor)));
    Test.make ~name:"T1a merge_terms compaction"
      (Staged.stage (fun () -> ignore (Mdl_md.Compact.merge_terms raw_md)));
    Test.make ~name:"T1c compositional lump (small tandem)"
      (Staged.stage (fun () ->
           ignore
             (Compositional.lump Ordinary b.Tandem.md
                ~rewards:[ b.Tandem.rewards_availability ]
                ~initial:b.Tandem.initial)));
    Test.make ~name:"T1b lumped statespace projection"
      (Staged.stage (fun () -> ignore (Compositional.lump_statespace result ss)));
  ]

let p5_tests () =
  (* Workstations n=4: the reachable space is the full product space, so
     the Kronecker shuffle product, the MD path product and the flat CSR
     product all compute the same vector. *)
  let b = Workstations.build (Workstations.default ~stations:4) in
  let exp = b.Workstations.exploration in
  let ss = exp.Model.statespace in
  let k = exp.Model.descriptor in
  let n = Statespace.size ss in
  assert (n = Kronecker.potential_size k);
  let flat = Md_vector.to_csr b.Workstations.md ss in
  let mdd = Mdl_md.Mdd.of_statespace ss in
  let x = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  [
    Test.make ~name:"P5 x*R kronecker shuffle"
      (Staged.stage (fun () -> ignore (Kronecker.vec_mul k x)));
    Test.make ~name:"P5 x*R md walk, hash indexing"
      (Staged.stage (fun () -> ignore (Md_vector.vec_mul b.Workstations.md ss x)));
    Test.make ~name:"P5 x*R md walk, mdd offsets"
      (Staged.stage (fun () -> ignore (Md_vector.vec_mul_mdd b.Workstations.md mdd x)));
    Test.make ~name:"P5 x*R flat csr"
      (Staged.stage (fun () -> ignore (Mdl_sparse.Csr.vec_mul x flat)));
  ]

let ssg_tests () =
  (* explicit BFS vs symbolic saturation reachability, same model *)
  let m = Tandem.model small_tandem_params in
  [
    Test.make ~name:"SSG explicit BFS (small tandem)"
      (Staged.stage (fun () -> ignore (Model.explore m)));
    Test.make ~name:"SSG symbolic saturation (small tandem)"
      (Staged.stage (fun () -> ignore (Model.explore_symbolic m)));
  ]

let baseline_tests () =
  (* State-level lumping [9] on the flat matrix vs compositional lumping
     on the MD, same model. *)
  let b = Workstations.build (Workstations.default ~stations:5) in
  let ss = b.Workstations.exploration.Model.statespace in
  let flat = Md_vector.to_csr b.Workstations.md ss in
  let rewards_vec = Decomposed.to_vector b.Workstations.rewards_operational ss in
  [
    Test.make ~name:"baseline state-level lumping [9] (flat)"
      (Staged.stage (fun () ->
           let initial =
             Partition.group_by (Statespace.size ss)
               (fun s -> Mdl_util.Floatx.quantize rewards_vec.(s))
               Float.compare
           in
           ignore (State_lumping.coarsest Ordinary flat ~initial)));
    Test.make ~name:"baseline compositional lumping (MD)"
      (Staged.stage (fun () ->
           ignore
             (Compositional.lump Ordinary b.Workstations.md
                ~rewards:[ b.Workstations.rewards_operational ]
                ~initial:b.Workstations.initial)));
  ]

(* ------------------------------------------------------------------ *)

let () =
  print_endline "matrix-diagram lumping benchmark harness";
  print_endline "(experiment ids refer to DESIGN.md section 5)";
  print_endline "";
  let rows = List.map t1_run (jobs_list ()) in
  t1_report rows;
  p1_report (List.hd rows);
  List.iter p2_report rows;
  p3_report ();
  p4_report ();
  sweep_report ();
  run_group "kernels" (kernel_tests ());
  run_group "P5-representations" (p5_tests ());
  run_group "SSG-generation" (ssg_tests ());
  run_group "baseline-lumping" (baseline_tests ());
  print_endline "\nbench done."

(* Head-to-head benchmark of the partition-refinement engines: the
   seed's list-based [Refiner_reference] against the in-place
   [Refiner] core, on the tandem model (flattened to CSR) and on
   oracle-generated flat chains.

   Each scenario runs both engines, checks that they compute the same
   fixed point (Partition.equal), takes the min wall time over a few
   repeats, and records the new engine's instrumentation counters.
   Results go to BENCH_refine.json.

   Usage: dune exec bench/refine.exe [-- --smoke] [-- --out FILE] *)

module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Refiner_reference = Mdl_partition.Refiner_reference
module State_lumping = Mdl_lumping.State_lumping
module Spec = Mdl_oracle.Spec
module Gen_chain = Mdl_oracle.Gen_chain

type scenario = {
  name : string;
  states : int;
  nnz : int;
  spec : float Refiner.spec;
  initial : Partition.t;
}

type outcome = {
  scenario : scenario;
  classes : int;
  ref_s : float;
  new_s : float;
  stats : Refiner.stats;
}

let min_time ~repeats f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to repeats do
    let r, s = Mdl_util.Timer.time f in
    if s < !best then best := s;
    out := Some r
  done;
  (Option.get !out, !best)

let chain_scenario ~name (c : Spec.chain) =
  let r = Gen_chain.rate_matrix (Mdl_util.Prng.of_seed c.Spec.seed) c in
  let n = Mdl_sparse.Csr.rows r in
  {
    name;
    states = n;
    nnz = Mdl_sparse.Csr.nnz r;
    spec = State_lumping.refiner_spec Ordinary r;
    initial = Partition.trivial n;
  }

let tandem_scenario ~name ~jobs ~hyper_dim =
  let p = { (Mdl_models.Tandem.default ~jobs) with hyper_dim } in
  let b = Mdl_models.Tandem.build p in
  let ss = b.Mdl_models.Tandem.exploration.Mdl_san.Model.statespace in
  let r = Mdl_md.Md_vector.to_csr b.Mdl_models.Tandem.md ss in
  let n = Mdl_sparse.Csr.rows r in
  let rewards =
    Mdl_core.Decomposed.to_vector b.Mdl_models.Tandem.rewards_availability ss
  in
  let initial =
    Partition.group_by n
      (fun s -> Mdl_util.Floatx.quantize rewards.(s))
      Float.compare
  in
  {
    name;
    states = n;
    nnz = Mdl_sparse.Csr.nnz r;
    spec = State_lumping.refiner_spec Ordinary r;
    initial;
  }

let run_scenario ~repeats sc =
  Printf.printf "%-24s %7d states %8d nnz ... %!" sc.name sc.states sc.nnz;
  let p_ref, ref_s =
    min_time ~repeats (fun () ->
        Refiner_reference.comp_lumping sc.spec ~initial:sc.initial)
  in
  let stats = Refiner.create_stats () in
  let p_new, new_s =
    min_time ~repeats (fun () ->
        let s = Refiner.create_stats () in
        let p = Refiner.comp_lumping ~stats:s sc.spec ~initial:sc.initial in
        Refiner.add_stats stats s;
        p)
  in
  if not (Partition.equal p_ref p_new) then (
    Printf.printf "ENGINES DISAGREE\n";
    Printf.eprintf "FATAL: %s: reference and in-place engines disagree\n" sc.name;
    exit 1);
  (* add_stats ran once per repeat; report a single run's counters *)
  let d v = v / repeats in
  stats.Refiner.splitter_passes <- d stats.Refiner.splitter_passes;
  stats.Refiner.key_evals <- d stats.Refiner.key_evals;
  stats.Refiner.splits <- d stats.Refiner.splits;
  stats.Refiner.blocks_created <- d stats.Refiner.blocks_created;
  stats.Refiner.largest_skips <- d stats.Refiner.largest_skips;
  stats.Refiner.wall_s <- stats.Refiner.wall_s /. float_of_int repeats;
  Printf.printf "%d classes  seed %.4fs  new %.4fs  (%.2fx)\n" (Partition.num_classes p_new)
    ref_s new_s (ref_s /. new_s);
  { scenario = sc; classes = Partition.num_classes p_new; ref_s; new_s; stats }

let json_of_outcome o =
  Printf.sprintf
    {|    {
      "name": "%s",
      "states": %d,
      "nnz": %d,
      "classes": %d,
      "ref_s": %.6f,
      "new_s": %.6f,
      "speedup": %.3f,
      "stats": {
        "splitter_passes": %d,
        "key_evals": %d,
        "splits": %d,
        "blocks_created": %d,
        "largest_skips": %d,
        "wall_s": %.6f
      }
    }|}
    o.scenario.name o.scenario.states o.scenario.nnz o.classes o.ref_s o.new_s
    (o.ref_s /. o.new_s) o.stats.Refiner.splitter_passes o.stats.Refiner.key_evals
    o.stats.Refiner.splits o.stats.Refiner.blocks_created
    o.stats.Refiner.largest_skips o.stats.Refiner.wall_s

let () =
  let smoke = ref false in
  let out = ref "BENCH_refine.json" in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " small instances only (CI)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_refine.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "refine [--smoke] [--out FILE]";
  let chain ~name states extra planted seed =
    chain_scenario ~name { Spec.states; extra; planted; seed }
  in
  let scenarios =
    if !smoke then
      [
        tandem_scenario ~name:"tandem-j1-d2" ~jobs:1 ~hyper_dim:2;
        chain ~name:"chain-300-planted" 300 1_200 true 7;
        chain ~name:"chain-600-planted" 600 2_400 true 11;
      ]
    else
      [
        tandem_scenario ~name:"tandem-j1-d2" ~jobs:1 ~hyper_dim:2;
        tandem_scenario ~name:"tandem-j1-d3" ~jobs:1 ~hyper_dim:3;
        chain ~name:"chain-500-planted" 500 2_000 true 7;
        chain ~name:"chain-1500-plain" 1_500 6_000 false 13;
        chain ~name:"chain-3000-planted" 3_000 12_000 true 42;
      ]
  in
  let repeats = if !smoke then 2 else 3 in
  let outcomes = List.map (run_scenario ~repeats) scenarios in
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"bench\": \"refine\",\n  \"repeats\": %d,\n  \"scenarios\": [\n%s\n  ]\n}\n"
    repeats
    (String.concat ",\n" (List.map json_of_outcome outcomes));
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  let regressed = List.filter (fun o -> o.new_s > o.ref_s *. 1.05) outcomes in
  List.iter
    (fun o ->
      Printf.eprintf "WARNING: %s: new core slower (%.4fs vs %.4fs)\n" o.scenario.name
        o.new_s o.ref_s)
    regressed;
  if regressed <> [] then exit 1

(* Benchmark of the partition-refinement key pipelines.

   Flat scenarios race three engines on the same spec — the seed's
   list-based [Refiner_reference], the in-place core through the generic
   closure pipeline, and the monomorphic float pipeline — check that all
   three compute the same fixed point, and fail if the float pipeline
   does not beat the generic one (or the in-place core regresses against
   the seed).

   Multi-level scenarios time [Compositional.lump] end to end (per-level
   initial partitions, fixed-point refinement, diagram rebuild) in three
   configurations: the generic closure pipeline, the interned-key
   pipeline without memoisation (the pre-cache baseline, from-scratch
   rebuild), and the memoised pipeline (key cache + singleton skip +
   incremental rebuild) sharing one [Key_cache] — and hence one hot
   intern table — across every multi-level scenario.  All three must
   produce identical partitions, and the cached run's lumped diagram
   must be structurally equal to the uncached one; the cached run
   slower than the interned baseline is a regression.

   Every scenario records the refiner's per-pipeline counters.  Results
   go to BENCH_refine.json (schema checked by
   scripts/check_bench_schema.py in CI).

   Usage: dune exec bench/refine.exe [-- --smoke] [-- --out FILE] *)

module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Refiner_reference = Mdl_partition.Refiner_reference
module State_lumping = Mdl_lumping.State_lumping
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Decomposed = Mdl_core.Decomposed
module Solver = Mdl_ctmc.Solver
module Spec = Mdl_oracle.Spec
module Gen_chain = Mdl_oracle.Gen_chain
module Trace = Mdl_obs.Trace
module Serve = Mdl_serve.Server
module Serve_client = Mdl_serve.Client
module Proto = Mdl_serve.Protocol

type flat_scenario = {
  name : string;
  states : int;
  nnz : int;
  spec : float Refiner.spec;
  fspec : Refiner.float_spec;
  initial : Partition.t;
}

type multilevel_scenario = {
  ml_name : string;
  md : Mdl_md.Md.t;
  statespace : Mdl_md.Statespace.t;
  rewards : Mdl_core.Decomposed.t list;
  ml_initial : Mdl_core.Decomposed.t;
  (* How a lumpd client would name this model: the serve race re-submits
     it through the wire protocol, so the daemon builds its own copy. *)
  serve_family : Proto.family;
  serve_params : (string * int) list;
}

type outcome = {
  json : string;
  o_name : string;
  regression : string option;
}

let min_time ~repeats f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to repeats do
    (* Start each repeat from a settled heap: later configs of a race
       otherwise inherit the earlier configs' garbage and eat their
       major collections mid-measurement. *)
    Gc.full_major ();
    let r, s = Mdl_util.Timer.time f in
    if s < !best then best := s;
    out := Some r
  done;
  (Option.get !out, !best)

let stats_json s =
  Printf.sprintf
    {|"stats": {
        "splitter_passes": %d,
        "key_evals": %d,
        "splits": %d,
        "blocks_created": %d,
        "largest_skips": %d,
        "float_passes": %d,
        "interned_passes": %d,
        "counting_sort_passes": %d,
        "fallback_passes": %d,
        "intern_keys": %d,
        "cache_hits": %d,
        "cache_misses": %d,
        "nodes_rebuilt": %d,
        "nodes_reused": %d,
        "wall_s": %.6f
      }|}
    s.Refiner.splitter_passes s.Refiner.key_evals s.Refiner.splits
    s.Refiner.blocks_created s.Refiner.largest_skips s.Refiner.float_passes
    s.Refiner.interned_passes s.Refiner.counting_sort_passes s.Refiner.fallback_passes
    s.Refiner.intern_keys s.Refiner.cache_hits s.Refiner.cache_misses
    s.Refiner.nodes_rebuilt s.Refiner.nodes_reused s.Refiner.wall_s

(* Per-phase rollup of the spans one instrumented lump produced
   ([from] = span count before it ran).  Inclusive seconds, so [total_s]
   is not the sum of the others; a phase that never ran reports 0. *)
let phases_json ~from () =
  let totals = Trace.phase_totals ~from () in
  let get n = match List.assoc_opt n totals with Some s -> s | None -> 0.0 in
  Printf.sprintf
    {|"phases": {
        "total_s": %.6f,
        "level_s": %.6f,
        "initial_s": %.6f,
        "fixpoint_s": %.6f,
        "pass_s": %.6f,
        "rebuild_s": %.6f
      }|}
    (get "lump") (get "lump.level") (get "lump.initial_partition")
    (get "lump.fixpoint") (get "refine.pass") (get "lump.rebuild")

(* ---- flat scenarios ---- *)

let chain_scenario ~name (c : Spec.chain) =
  let r = Gen_chain.rate_matrix (Mdl_util.Prng.of_seed c.Spec.seed) c in
  let n = Mdl_sparse.Csr.rows r in
  {
    name;
    states = n;
    nnz = Mdl_sparse.Csr.nnz r;
    spec = State_lumping.refiner_spec Ordinary r;
    fspec = State_lumping.float_spec Ordinary r;
    initial = Partition.trivial n;
  }

let tandem_flat_scenario ~name ~jobs ~hyper_dim =
  let p = { (Mdl_models.Tandem.default ~jobs) with hyper_dim } in
  let b = Mdl_models.Tandem.build p in
  let ss = b.Mdl_models.Tandem.exploration.Mdl_san.Model.statespace in
  let r = Mdl_md.Md_vector.to_csr b.Mdl_models.Tandem.md ss in
  let n = Mdl_sparse.Csr.rows r in
  let rewards =
    Mdl_core.Decomposed.to_vector b.Mdl_models.Tandem.rewards_availability ss
  in
  let initial =
    Partition.group_by n
      (fun s -> Mdl_util.Floatx.quantize rewards.(s))
      Float.compare
  in
  {
    name;
    states = n;
    nnz = Mdl_sparse.Csr.nnz r;
    spec = State_lumping.refiner_spec Ordinary r;
    fspec = State_lumping.float_spec Ordinary r;
    initial;
  }

let run_flat ~repeats sc =
  Printf.printf "%-24s %7d states %8d nnz ... %!" sc.name sc.states sc.nnz;
  let p_ref, ref_s =
    min_time ~repeats (fun () ->
        Refiner_reference.comp_lumping sc.spec ~initial:sc.initial)
  in
  let p_gen, generic_s =
    min_time ~repeats (fun () -> Refiner.comp_lumping sc.spec ~initial:sc.initial)
  in
  let p_flt, float_s =
    min_time ~repeats (fun () ->
        Refiner.comp_lumping_float sc.fspec ~initial:sc.initial)
  in
  if not (Partition.equal p_ref p_gen && Partition.equal p_gen p_flt) then begin
    Printf.printf "PIPELINES DISAGREE\n";
    Printf.eprintf "FATAL: %s: pipelines compute different fixed points\n" sc.name;
    exit 1
  end;
  (* One instrumented run (outside the timing loop) for the counters. *)
  let stats = Refiner.create_stats () in
  ignore (Refiner.comp_lumping_float ~stats sc.fspec ~initial:sc.initial);
  Printf.printf "%d classes  seed %.4fs  generic %.4fs  float %.4fs  (%.2fx vs generic)\n"
    (Partition.num_classes p_flt) ref_s generic_s float_s (generic_s /. float_s);
  let json =
    Printf.sprintf
      {|    {
      "kind": "flat",
      "name": "%s",
      "states": %d,
      "nnz": %d,
      "classes": %d,
      "ref_s": %.6f,
      "generic_s": %.6f,
      "float_s": %.6f,
      "speedup_vs_ref": %.3f,
      "speedup_vs_generic": %.3f,
      %s
    }|}
      sc.name sc.states sc.nnz (Partition.num_classes p_flt) ref_s generic_s float_s
      (ref_s /. float_s) (generic_s /. float_s) (stats_json stats)
  in
  let regression =
    if generic_s > ref_s *. 1.05 then
      Some
        (Printf.sprintf "%s: in-place generic core slower than seed (%.4fs vs %.4fs)"
           sc.name generic_s ref_s)
    else if float_s > generic_s then
      Some
        (Printf.sprintf "%s: float pipeline slower than generic (%.4fs vs %.4fs)" sc.name
           float_s generic_s)
    else None
  in
  { json; o_name = sc.name; regression }

(* ---- multi-level end-to-end scenarios ---- *)

let tandem_ml_scenario ~name ~jobs ~hyper_dim =
  let p = { (Mdl_models.Tandem.default ~jobs) with hyper_dim } in
  let b = Mdl_models.Tandem.build p in
  {
    ml_name = name;
    md = b.Mdl_models.Tandem.md;
    statespace = b.Mdl_models.Tandem.exploration.Mdl_san.Model.statespace;
    rewards =
      [ b.Mdl_models.Tandem.rewards_availability; b.Mdl_models.Tandem.rewards_msmq_jobs ];
    ml_initial = b.Mdl_models.Tandem.initial;
    serve_family = Proto.Tandem;
    serve_params = [ ("jobs", jobs); ("hyper_dim", hyper_dim) ];
  }

let kanban_ml_scenario ~name ~cards =
  let b = Mdl_models.Kanban.build (Mdl_models.Kanban.default ~cards) in
  {
    ml_name = name;
    md = b.Mdl_models.Kanban.md;
    statespace = b.Mdl_models.Kanban.exploration.Mdl_san.Model.statespace;
    rewards = [ b.Mdl_models.Kanban.rewards_in_system ];
    ml_initial = b.Mdl_models.Kanban.initial;
    serve_family = Proto.Kanban;
    serve_params = [ ("cards", cards) ];
  }

(* Race the memoised pipeline on domain pools against its own sequential
   time.  The timed lumps run with tracing disabled, so level-parallel
   stays armed; every parallel result must be bit-identical
   ([Md.equal], equal partitions) to the sequential one.  [host_cores]
   is recorded so the CI gate can require speedups only on machines
   that can actually exhibit them. *)
let run_domains ~repeats ~cache ~pools sc ~lump ~r_mem ~cached_s =
  let race (d, pool) =
    let r_par, par_s =
      min_time ~repeats (lump ~specialised:true ~memoise:true ?pool:(Some pool))
    in
    let identical =
      Array.length r_par.Compositional.partitions
        = Array.length r_mem.Compositional.partitions
      && Array.for_all2 Partition.equal r_par.Compositional.partitions
           r_mem.Compositional.partitions
      && Mdl_md.Md.equal r_par.Compositional.lumped r_mem.Compositional.lumped
    in
    if not identical then begin
      Printf.printf "PARALLEL DIAGRAM DISAGREES\n";
      Printf.eprintf
        "FATAL: %s: %d-domain lump differs from the sequential one\n" sc.ml_name d;
      exit 1
    end;
    (d, par_s)
  in
  let timed = List.map race pools in
  let host_cores = Domain.recommended_domain_count () in
  let fields =
    (Printf.sprintf {|"host_cores": %d|} host_cores
    :: List.concat_map
         (fun (d, s) ->
           [
             Printf.sprintf {|"par%d_s": %.6f|} d s;
             Printf.sprintf {|"speedup_par%d": %.3f|} d (cached_s /. s);
           ])
         timed)
    @ [ {|"identical": true|} ]
  in
  let json =
    Printf.sprintf {|"domains": {
        %s
      }|}
      (String.concat ",\n        " fields)
  in
  ignore cache;
  let regression =
    if host_cores < 2 then None
    else
      List.find_map
        (fun (d, s) ->
          if s > cached_s then
            Some
              (Printf.sprintf
                 "%s: %d-domain lump slower than sequential on a %d-core host (%.4fs vs %.4fs)"
                 sc.ml_name d host_cores s cached_s)
          else None)
        timed
  in
  (json, timed, regression)

(* Race the three steady-state solvers on the lumped chain: matrix-free
   power iteration, Gauss–Seidel on the flattened generator in reverse
   Cuthill–McKee order, and matrix-free Jacobi-preconditioned BiCGStab.
   All three must reproduce the same reward measures to 1e-9; per-solver
   time, iteration count and residual go into the scenario's "solvers"
   JSON object (gated by scripts/check_bench_schema.py). *)
let run_solvers ~repeats sc ~r_mem ~lumped_ss =
  let reward_vecs =
    List.map
      (fun r -> Decomposed.to_vector (Compositional.lumped_rewards r_mem r) lumped_ss)
      sc.rewards
  in
  let measures pi = List.map (Solver.expected_reward pi) reward_vecs in
  let lumped = r_mem.Compositional.lumped in
  let race name f =
    let (pi, st), s = min_time ~repeats f in
    (name, pi, st, s)
  in
  let raced =
    [
      race "power" (fun () ->
          Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 lumped lumped_ss);
      race "gauss_seidel" (fun () ->
          Solver.steady_state_gauss_seidel ~tol:1e-13 ~max_iter:100_000
            ~ordering:Solver.Rcm ~relax:0.9
            (Md_solve.ctmc_of lumped lumped_ss));
      race "krylov" (fun () -> Md_solve.steady_state_krylov ~tol:1e-13 lumped lumped_ss);
    ]
  in
  let _, pi_ref, _, _ = List.hd raced in
  let ref_measures = measures pi_ref in
  let max_measure_delta =
    List.fold_left
      (fun acc (_, pi, _, _) ->
        List.fold_left2
          (fun acc a b -> Float.max acc (Float.abs (a -. b)))
          acc ref_measures (measures pi))
      0.0 raced
  in
  if max_measure_delta > 1e-9 then begin
    Printf.printf "SOLVERS DISAGREE\n";
    Printf.eprintf "FATAL: %s: steady-state solvers disagree on measures (max delta %.3e)\n"
      sc.ml_name max_measure_delta;
    exit 1
  end;
  let non_converged =
    List.filter_map (fun (m, _, st, _) -> if st.Solver.converged then None else Some m) raced
  in
  if non_converged <> [] then begin
    Printf.printf "SOLVER DID NOT CONVERGE\n";
    Printf.eprintf "FATAL: %s: solver(s) did not converge: %s\n" sc.ml_name
      (String.concat ", " non_converged);
    exit 1
  end;
  let json =
    Printf.sprintf {|"solvers": {
        %s,
        "max_measure_delta": %.3e,
        "agree": true
      }|}
      (String.concat ",\n        "
         (List.map
            (fun (m, _, st, s) ->
              Printf.sprintf
                {|"%s": { "s": %.6f, "iterations": %d, "residual": %.3e, "converged": %b }|}
                m s st.Solver.iterations st.Solver.residual st.Solver.converged)
            raced))
      max_measure_delta
  in
  (json, List.map (fun (m, _, st, s) -> (m, st.Solver.iterations, s)) raced)

(* ---- batched sweep race ---- *)

(* A reward-sweep family over one scenario, shaped like a sensitivity
   study: the scenario's base rewards, plus threshold indicators on the
   largest level at varying cut points, then the whole cycle repeated
   (a 10-point sweep revisits each distinct spec, as parameter studies
   do around interesting regions).  The complement-indicator variant
   ([s < k] right after [s >= k]) is the deterministic cross-bind
   fixture: both points induce the same class sets with the same
   member order on the threshold level but opposite class order, so the
   level-fixpoint memo misses while every splitter class the refinement
   walks has a member sequence the previous point already published —
   the store must answer, and [cross_bind_hits > 0] is a sound CI
   gate. *)
let sweep_specs sc ~points =
  let sizes = Mdl_md.Md.sizes sc.md in
  let level =
    let li = ref 0 in
    Array.iteri (fun i n -> if n > sizes.(!li) then li := i) sizes;
    !li + 1
  in
  let size = sizes.(level - 1) in
  let indicator k up =
    Decomposed.of_level ~sizes ~level (fun s ->
        if (if up then s >= k else s < k) then 1.0 else 0.0)
  in
  let k1 = max 1 (size / 3) in
  let k2 = max 1 (2 * size / 3) in
  let variants =
    [
      sc.rewards;
      indicator k1 true :: sc.rewards;
      indicator k1 false :: sc.rewards;
      indicator k2 true :: sc.rewards;
      indicator k1 true :: indicator k2 true :: sc.rewards;
    ]
  in
  let nv = List.length variants in
  List.init points (fun i ->
      {
        Compositional.sweep_rewards = List.nth variants (i mod nv);
        sweep_initial = sc.ml_initial;
      })

let run_sweep ~repeats sc =
  let npoints = 10 in
  let specs = sweep_specs sc ~points:npoints in
  (* Independent per-point baseline: what a caller pays today — one
     [Compositional.lump] per point over a shared plain cache (rebound
     per run, rows wiped, intern table warm). *)
  let oneshot_cache = Mdl_core.Key_cache.create () in
  let oneshot spec () =
    Compositional.lump ~specialised:true ~memoise:true ~cache:oneshot_cache
      Mdl_lumping.State_lumping.Ordinary sc.md
      ~rewards:spec.Compositional.sweep_rewards ~initial:spec.Compositional.sweep_initial
  in
  let oneshot_raced = List.map (fun spec -> min_time ~repeats (oneshot spec)) specs in
  let oneshot_results = List.map fst oneshot_raced in
  let oneshot_times = List.map snd oneshot_raced in
  (* The sweep engine is stateful (warm stores carry the amortisation),
     so repeats re-run whole sweeps on fresh engines and each point
     keeps its best time across repeats. *)
  let times = Array.make npoints infinity in
  let last = ref None in
  for _ = 1 to repeats do
    Gc.full_major ();
    let sw = Compositional.sweep_create Mdl_lumping.State_lumping.Ordinary sc.md in
    let results =
      List.mapi
        (fun i spec ->
          let r, s =
            Mdl_util.Timer.time (fun () ->
                Compositional.sweep_point sw
                  ~rewards:spec.Compositional.sweep_rewards
                  ~initial:spec.Compositional.sweep_initial)
          in
          times.(i) <- Float.min times.(i) s;
          r)
        specs
    in
    last := Some (results, Compositional.sweep_stats sw, Compositional.sweep_cache sw)
  done;
  let results, stats, sweep_cache = Option.get !last in
  (* Bit-identity per point against the independent runs. *)
  List.iter2
    (fun r_sweep r_one ->
      let same =
        Array.length r_sweep.Compositional.partitions
          = Array.length r_one.Compositional.partitions
        && Array.for_all2 Partition.equal r_sweep.Compositional.partitions
             r_one.Compositional.partitions
        && Mdl_md.Md.equal r_sweep.Compositional.lumped r_one.Compositional.lumped
      in
      if not same then begin
        Printf.printf "SWEEP DIAGRAM DISAGREES\n";
        Printf.eprintf "FATAL: %s: sweep point differs from its one-shot lump\n"
          sc.ml_name;
        exit 1
      end)
    results oneshot_results;
  (* Measure agreement: steady-state reward measures of each point's
     lumped chain, sweep result vs one-shot result. *)
  let measures r spec =
    let lumped_ss = Compositional.lump_statespace r sc.statespace in
    let pi, _ = Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 r.Compositional.lumped lumped_ss in
    List.map
      (fun d ->
        Solver.expected_reward pi
          (Decomposed.to_vector (Compositional.lumped_rewards r d) lumped_ss))
      spec.Compositional.sweep_rewards
  in
  let max_measure_delta =
    List.fold_left2
      (fun acc (r_sweep, r_one) spec ->
        List.fold_left2
          (fun acc a b -> Float.max acc (Float.abs (a -. b)))
          acc (measures r_sweep spec) (measures r_one spec))
      0.0
      (List.combine results oneshot_results)
      specs
  in
  if max_measure_delta > 1e-9 then begin
    Printf.printf "SWEEP MEASURES DISAGREE\n";
    Printf.eprintf "FATAL: %s: sweep measures differ from one-shot (max delta %.3e)\n"
      sc.ml_name max_measure_delta;
    exit 1
  end;
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let warm = List.filteri (fun i _ -> i > 0) (Array.to_list times) in
  let warm_oneshot = List.filteri (fun i _ -> i > 0) oneshot_times in
  let cold_first_point_s = times.(0) in
  let amortised_point_s = mean warm in
  let oneshot_point_s = mean warm_oneshot in
  let amortised_speedup = oneshot_point_s /. amortised_point_s in
  Printf.printf "        sweep %d pts: cold %.4fs  amortised %.4fs  oneshot %.4fs  (%.2fx)  cross-bind %d\n"
    npoints cold_first_point_s amortised_point_s oneshot_point_s amortised_speedup
    stats.Compositional.cross_bind_hits;
  let json =
    Printf.sprintf
      {|"sweeps": {
        "points": %d,
        "distinct_points": %d,
        "cold_first_point_s": %.6f,
        "amortised_point_s": %.6f,
        "oneshot_point_s": %.6f,
        "amortised_speedup": %.3f,
        "cross_bind_hits": %d,
        "level_fixpoints": %d,
        "level_fixpoints_reused": %d,
        "rebuilds": %d,
        "rebuilds_reused": %d,
        "store_rows": %d,
        "max_measure_delta": %.3e,
        "identical": true
      }|}
      npoints
      (min npoints 5)
      cold_first_point_s amortised_point_s oneshot_point_s amortised_speedup
      stats.Compositional.cross_bind_hits stats.Compositional.level_fixpoints
      stats.Compositional.level_reused stats.Compositional.rebuilds
      stats.Compositional.rebuilds_reused
      (Mdl_core.Key_cache.store_size sweep_cache)
      max_measure_delta
  in
  let regression =
    if stats.Compositional.cross_bind_hits <= 0 then
      Some
        (Printf.sprintf "%s: sweep recorded no cross-bind cache hits" sc.ml_name)
    else if amortised_speedup < 1.0 then
      Some
        (Printf.sprintf
           "%s: amortised sweep point slower than one-shot lumping (%.4fs vs %.4fs)"
           sc.ml_name amortised_point_s oneshot_point_s)
    else None
  in
  (json, regression)

(* ---- serve race: the sweep amortisation through lumpd's wire path ---- *)

(* Boot an in-process lumpd on a private Unix socket, submit the
   scenario's model through the protocol, then send the same 10-point
   sweep request twice over two successive connections.  The first
   request pays statespace interning and every level fixpoint; the
   second rides the model's warm sweep engine and persistent key-cache
   store — the service-level restatement of [run_sweep], measured
   through the full framed JSON path (codec + socket included).  Gates
   (scripts/check_bench_schema.py): the warm request must not be slower
   than the cold one, the engine must report cross-bind store hits, and
   both responses' per-point lumped shapes must agree exactly. *)
let run_serve sc =
  let npoints = 10 in
  let sizes = Mdl_md.Md.sizes sc.md in
  let level =
    let li = ref 0 in
    Array.iteri (fun i n -> if n > sizes.(!li) then li := i) sizes;
    !li + 1
  in
  let size = sizes.(level - 1) in
  let k1 = max 1 (size / 3) in
  let k2 = max 1 (2 * size / 3) in
  let ind k up = { Proto.ind_level = level; ind_ge = up; ind_k = k } in
  (* Mirror [sweep_specs]' five-variant family, including the
     complement-indicator pair that forces cross-bind store lookups. *)
  let variants =
    [ []; [ ind k1 true ]; [ ind k1 false ]; [ ind k2 true ];
      [ ind k1 true; ind k2 true ] ]
  in
  let nv = List.length variants in
  let points =
    List.init npoints (fun i -> { Proto.pt_extra = List.nth variants (i mod nv) })
  in
  let metrics_were_enabled = Mdl_obs.Metrics.enabled () in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lumpd-bench-%d-%s.sock" (Unix.getpid ()) sc.ml_name)
  in
  let server = Serve.start (Serve.default_config ~listen:(Serve.Unix_socket sock)) in
  let fatal fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "SERVE RACE FAILED\n";
        Printf.eprintf "FATAL: %s: %s\n" sc.ml_name msg;
        exit 1)
      fmt
  in
  let call c verb =
    let request =
      { Proto.rq_id = None; rq_deadline_ms = None; rq_trace = false; rq_verb = verb }
    in
    match Serve_client.request c request with
    | Ok { Proto.resp_body = Ok p; _ } -> p
    | Ok { Proto.resp_body = Error (code, msg); _ } ->
        fatal "serve request rejected: %s: %s" (Proto.error_code_string code) msg
    | Error msg -> fatal "serve transport error: %s" msg
  in
  let model = sc.ml_name ^ "-serve" in
  let sweep_rq = Proto.Sweep { sw_model = model; sw_points = points } in
  let timed_sweep c =
    match Mdl_util.Timer.time (fun () -> call c sweep_rq) with
    | Proto.Sweep_result r, s -> (r, s)
    | _ -> fatal "sweep answered with a non-sweep payload"
  in
  (* Cold connection: build the model, then pay the first full sweep. *)
  let c1 = Serve_client.connect (Serve.address server) in
  let _, submit_s =
    Mdl_util.Timer.time (fun () ->
        call c1
          (Proto.Submit_model
             {
               sm_model = model;
               sm_family = sc.serve_family;
               sm_size = None;
               sm_params = sc.serve_params;
             }))
  in
  let cold, cold_s = timed_sweep c1 in
  Serve_client.close c1;
  (* Fresh connection: same request, warm engine and store. *)
  let c2 = Serve_client.connect (Serve.address server) in
  let warm, warm_s = timed_sweep c2 in
  Serve_client.close c2;
  Serve.stop server;
  (try Sys.remove sock with Sys_error _ -> ());
  Mdl_obs.Metrics.set_enabled metrics_were_enabled;
  let shape (p : Proto.point_result) = (p.pr_lumped_states, p.pr_classes) in
  let identical =
    List.length cold.Proto.sr_points = List.length warm.Proto.sr_points
    && List.for_all2
         (fun a b -> shape a = shape b)
         cold.Proto.sr_points warm.Proto.sr_points
  in
  if not identical then
    fatal "warm sweep response differs from the cold one";
  Printf.printf
    "        serve %d pts: submit %.4fs  cold %.4fs  warm %.4fs  (%.2fx)  cross-bind %d\n"
    npoints submit_s cold_s warm_s (cold_s /. warm_s)
    warm.Proto.sr_cross_bind_hits;
  let json =
    Printf.sprintf
      {|"serve": {
        "points": %d,
        "submit_s": %.6f,
        "cold_request_s": %.6f,
        "warm_request_s": %.6f,
        "warm_speedup": %.3f,
        "cross_bind_hits": %d,
        "level_fixpoints_reused": %d,
        "store_rows": %d,
        "identical": true
      }|}
      npoints submit_s cold_s warm_s (cold_s /. warm_s)
      warm.Proto.sr_cross_bind_hits warm.Proto.sr_level_reused
      warm.Proto.sr_store_rows
  in
  let regression =
    if warm.Proto.sr_cross_bind_hits <= 0 then
      Some
        (Printf.sprintf "%s: warm serve sweep reported no cross-bind cache hits"
           sc.ml_name)
    else if warm_s > cold_s then
      Some
        (Printf.sprintf
           "%s: warm serve request slower than the cold one (%.4fs vs %.4fs)"
           sc.ml_name warm_s cold_s)
    else None
  in
  (json, regression)

let run_multilevel ~repeats ~cache ~pools sc =
  (* One end-to-end lump is milliseconds, not seconds: triple the repeat
     count so the min is robust against scheduler/GC noise (the
     cached-vs-interned ratio is a CI gate).  The solver race keeps the
     untripled count — a solve is orders of magnitude more work than a
     lump. *)
  let solver_repeats = repeats in
  let repeats = 3 * repeats in
  let states = Mdl_md.Statespace.size sc.statespace in
  Printf.printf "%-24s %7d states %8d levels .. %!" sc.ml_name states
    (Mdl_md.Md.levels sc.md);
  let lump ~specialised ~memoise ?pool () =
    Compositional.lump ~specialised ~memoise ~cache ?pool
      Mdl_lumping.State_lumping.Ordinary sc.md ~rewards:sc.rewards
      ~initial:sc.ml_initial
  in
  (* End-to-end: initial partitions + refinement + diagram rebuild.
     [cache] is shared across scenarios (and ignored by the first two
     configurations), so the cached run sees a hot intern table. *)
  let r_gen, generic_s = min_time ~repeats (lump ~specialised:false ~memoise:false) in
  let r_int, interned_s = min_time ~repeats (lump ~specialised:true ~memoise:false) in
  let r_mem, cached_s = min_time ~repeats (lump ~specialised:true ~memoise:true) in
  let same_partitions a b =
    Array.length a.Compositional.partitions = Array.length b.Compositional.partitions
    && Array.for_all2 Partition.equal a.Compositional.partitions
         b.Compositional.partitions
  in
  if not (same_partitions r_gen r_int && same_partitions r_int r_mem) then begin
    Printf.printf "PIPELINES DISAGREE\n";
    Printf.eprintf "FATAL: %s: lump configurations compute different partitions\n"
      sc.ml_name;
    exit 1
  end;
  if not (Mdl_md.Md.equal r_mem.Compositional.lumped r_int.Compositional.lumped) then begin
    Printf.printf "DIAGRAMS DISAGREE\n";
    Printf.eprintf
      "FATAL: %s: cached/incremental lumped diagram differs from the uncached one\n"
      sc.ml_name;
    exit 1
  end;
  (* One instrumented run outside the timing loops: counters into
     [stats], spans into the shared trace buffer.  The timed races above
     run with tracing disabled — the cached-vs-interned CI gate measures
     the zero-overhead path. *)
  let stats = Refiner.create_stats () in
  let span_from = Trace.span_count () in
  Trace.resume ();
  ignore (Compositional.lump ~specialised:true ~memoise:true ~cache ~stats
            Mdl_lumping.State_lumping.Ordinary sc.md ~rewards:sc.rewards
            ~initial:sc.ml_initial);
  Trace.stop ();
  let domains_json, domains_timed, domains_regression =
    run_domains ~repeats ~cache ~pools sc ~lump ~r_mem ~cached_s
  in
  let lumped_ss = Compositional.lump_statespace r_mem sc.statespace in
  let lumped_states = Mdl_md.Statespace.size lumped_ss in
  let solvers_json, solver_iters =
    run_solvers ~repeats:solver_repeats sc ~r_mem ~lumped_ss
  in
  Printf.printf
    "%d lumped  generic %.4fs  interned %.4fs  cached %.4fs  (%.2fx vs interned)%s%s\n"
    lumped_states generic_s interned_s cached_s
    (interned_s /. cached_s)
    (String.concat ""
       (List.map (fun (d, s) -> Printf.sprintf "  par%d %.4fs" d s) domains_timed))
    (String.concat ""
       (List.map
          (fun (m, it, s) -> Printf.sprintf "  %s %d it %.4fs" m it s)
          solver_iters));
  let sweeps_json, sweep_regression = run_sweep ~repeats:solver_repeats sc in
  let serve_json, serve_regression = run_serve sc in
  let json =
    Printf.sprintf
      {|    {
      "kind": "multilevel",
      "name": "%s",
      "states": %d,
      "levels": %d,
      "lumped_states": %d,
      "generic_s": %.6f,
      "specialised_s": %.6f,
      "cached_s": %.6f,
      "speedup_vs_generic": %.3f,
      "speedup_cached_vs_interned": %.3f,
      %s,
      %s,
      %s,
      %s,
      %s,
      %s
    }|}
      sc.ml_name states (Mdl_md.Md.levels sc.md) lumped_states generic_s interned_s
      cached_s
      (generic_s /. interned_s)
      (interned_s /. cached_s)
      solvers_json
      sweeps_json
      serve_json
      domains_json
      (stats_json stats)
      (phases_json ~from:span_from ())
  in
  let regression =
    if cached_s > interned_s then
      Some
        (Printf.sprintf "%s: memoised lump slower than uncached interned (%.4fs vs %.4fs)"
           sc.ml_name cached_s interned_s)
    else if domains_regression <> None then domains_regression
    else if sweep_regression <> None then sweep_regression
    else serve_regression
  in
  { json; o_name = sc.ml_name; regression }

let () =
  let smoke = ref false in
  let out = ref "BENCH_refine.json" in
  let trace_out = ref "" in
  let domains = ref 4 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " small instances only (CI)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_refine.json)");
      ( "--domains",
        Arg.Set_int domains,
        "N race pools of up to N domains against the sequential lump (default 4; \
         <2 disables the parallel race)" );
      ( "--trace",
        Arg.Set_string trace_out,
        "FILE write the instrumented runs' spans as Chrome trace-event JSON" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "refine [--smoke] [--out FILE] [--domains N] [--trace FILE]";
  Mdl_obs.Logging.setup ();
  (* Arm the trace buffer, then disable recording: the per-scenario
     instrumented runs resume into it, so the timed races stay on the
     tracing-disabled path while every scenario's spans land in one
     combined export. *)
  Trace.start ();
  Trace.stop ();
  let chain ~name states extra planted seed =
    chain_scenario ~name { Spec.states; extra; planted; seed }
  in
  let flat, multilevel =
    if !smoke then
      ( [
          tandem_flat_scenario ~name:"tandem-j1-d2" ~jobs:1 ~hyper_dim:2;
          chain ~name:"chain-300-planted" 300 1_200 true 7;
          chain ~name:"chain-600-planted" 600 2_400 true 11;
        ],
        [ tandem_ml_scenario ~name:"lump-tandem-j1-d2" ~jobs:1 ~hyper_dim:2 ] )
    else
      ( [
          tandem_flat_scenario ~name:"tandem-j1-d2" ~jobs:1 ~hyper_dim:2;
          tandem_flat_scenario ~name:"tandem-j1-d3" ~jobs:1 ~hyper_dim:3;
          chain ~name:"chain-500-planted" 500 2_000 true 7;
          chain ~name:"chain-1500-plain" 1_500 6_000 false 13;
          chain ~name:"chain-3000-planted" 3_000 12_000 true 42;
        ],
        [
          tandem_ml_scenario ~name:"lump-tandem-j1-d3" ~jobs:1 ~hyper_dim:3;
          kanban_ml_scenario ~name:"lump-kanban-n2" ~cards:2;
        ] )
  in
  let repeats = if !smoke then 2 else 3 in
  (* One cache for the whole sweep: each scenario rebinds it (dropping
     the memoised rows) but keeps accumulating the shared intern table. *)
  let cache = Mdl_core.Key_cache.create () in
  (* One pool per raced domain count, shared across scenarios (spawning
     domains per scenario would bill their startup to the first timed
     repeat's warmup). *)
  let pools =
    List.filter_map
      (fun d ->
        if d <= !domains then Some (d, Mdl_util.Domain_pool.create ~domains:d)
        else None)
      [ 2; 4 ]
  in
  let outcomes =
    List.map (run_flat ~repeats) flat
    @ List.map (run_multilevel ~repeats ~cache ~pools) multilevel
  in
  List.iter (fun (_, p) -> Mdl_util.Domain_pool.shutdown p) pools;
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n  \"bench\": \"refine\",\n  \"repeats\": %d,\n  \"scenarios\": [\n%s\n  ]\n}\n"
    repeats
    (String.concat ",\n" (List.map (fun o -> o.json) outcomes));
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  if !trace_out <> "" then begin
    Trace.write_file !trace_out;
    Printf.printf "wrote %s (%d spans)\n" !trace_out (Trace.span_count ())
  end;
  let regressed = List.filter_map (fun o -> o.regression) outcomes in
  List.iter (fun msg -> Printf.eprintf "WARNING: %s\n" msg) regressed;
  if regressed <> [] then exit 1

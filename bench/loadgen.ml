(* loadgen: a concurrent-client load bench for lumpd.

   Boots a real daemon (socket listener, connection threads, execution
   slots) on a temporary Unix socket, submits one small tandem model,
   and then drives it from N concurrent client threads with a
   deterministic mixed-verb workload — ping, stats, lump, sweep, solve
   — each client on its own connection, measuring client-side request
   latency through the full framed JSON path.

   The result is a "load" object (per-verb p50/p95/p99 latency and
   counts, overall throughput, protocol error count) merged into
   BENCH_refine.json next to the scenario results, where
   scripts/check_bench_schema.py gates it: quantiles must be ordered,
   every verb of the mix must have been served, throughput must be
   positive and the error count zero.

     dune exec bench/loadgen.exe --                  # 4 clients x 24 requests
     dune exec bench/loadgen.exe -- --clients 8 --requests 50 --no-merge *)

module Serve = Mdl_serve.Server
module Serve_client = Mdl_serve.Client
module Proto = Mdl_serve.Protocol
module Json = Mdl_serve.Json
module Timer = Mdl_util.Timer

let fatal fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "FATAL: loadgen: %s\n" msg;
      exit 1)
    fmt

(* ---- workload ---- *)

let model_name = "loadgen-tandem"

let submit_verb =
  Proto.Submit_model
    {
      sm_model = model_name;
      sm_family = Proto.Tandem;
      sm_size = None;
      sm_params = [ ("jobs", 1); ("hyper_dim", 2) ];
    }

(* The per-client request mix, cycled deterministically: light
   control-plane verbs interleaved with real lumping work. *)
let mix =
  [|
    Proto.Ping { pg_sleep_ms = 0 };
    Proto.Lump { lp_model = model_name; lp_mode = Proto.Ordinary; lp_extra = [] };
    Proto.Stats;
    Proto.Sweep
      {
        sw_model = model_name;
        sw_points = [ { Proto.pt_extra = [] }; { Proto.pt_extra = [] } ];
      };
    Proto.Ping { pg_sleep_ms = 1 };
    Proto.Solve { sv_model = model_name; sv_solver = Proto.Power };
  |]

type sample = { s_verb : string; s_latency : float; s_error : bool }

let run_client addr ~client ~requests =
  let c = Serve_client.connect addr in
  let samples =
    List.init requests (fun i ->
        let verb = mix.((client + i) mod Array.length mix) in
        let rq =
          {
            Proto.rq_id = Some (Printf.sprintf "c%d-%d" client i);
            rq_deadline_ms = None;
            rq_trace = false;
            rq_verb = verb;
          }
        in
        let reply, latency = Timer.time (fun () -> Serve_client.request c rq) in
        let error =
          match reply with
          | Ok { Proto.resp_body = Ok _; _ } -> false
          | Ok { Proto.resp_body = Error _; _ } | Error _ -> true
        in
        { s_verb = Proto.verb_name verb; s_latency = latency; s_error = error })
  in
  Serve_client.close c;
  samples

(* ---- aggregation ---- *)

(* Nearest-rank percentile over a sorted latency array — monotone in
   [q] by construction, which the schema gate relies on. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

type verb_load = {
  vl_verb : string;
  vl_count : int;
  vl_errors : int;
  vl_p50 : float;
  vl_p95 : float;
  vl_p99 : float;
}

let aggregate samples =
  let by_verb = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = try Hashtbl.find by_verb s.s_verb with Not_found -> [] in
      Hashtbl.replace by_verb s.s_verb (s :: l))
    samples;
  Hashtbl.fold
    (fun verb ss acc ->
      let lat = Array.of_list (List.map (fun s -> s.s_latency) ss) in
      Array.sort compare lat;
      {
        vl_verb = verb;
        vl_count = List.length ss;
        vl_errors = List.length (List.filter (fun s -> s.s_error) ss);
        vl_p50 = percentile lat 0.50;
        vl_p95 = percentile lat 0.95;
        vl_p99 = percentile lat 0.99;
      }
      :: acc)
    by_verb []
  |> List.sort (fun a b -> compare a.vl_verb b.vl_verb)

let load_json ~clients ~requests ~wall_s ~errors verbs =
  let total = clients * requests in
  let per_verb =
    String.concat ",\n"
      (List.map
         (fun v ->
           Printf.sprintf
             {|      "%s": {
        "count": %d,
        "errors": %d,
        "p50_s": %.6f,
        "p95_s": %.6f,
        "p99_s": %.6f
      }|}
             v.vl_verb v.vl_count v.vl_errors v.vl_p50 v.vl_p95 v.vl_p99)
         verbs)
  in
  Printf.sprintf
    {|"load": {
    "clients": %d,
    "requests_per_client": %d,
    "requests": %d,
    "wall_s": %.6f,
    "throughput_rps": %.3f,
    "errors": %d,
    "verbs": {
%s
    }
  }|}
    clients requests total wall_s
    (float_of_int total /. wall_s)
    errors per_verb

(* Splice the "load" object into BENCH_refine.json, before the closing
   brace.  The file is validated as JSON first; a stale "load" member
   (refine.exe was not re-run) is an error rather than a silent
   double-merge. *)
let merge_into path load =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> fatal "cannot read %s: %s (run bench/refine.exe first)" path msg
  in
  (match Json.parse_result contents with
  | Error msg -> fatal "%s is not valid JSON: %s" path msg
  | Ok j ->
      if Json.member "load" j <> None then
        fatal "%s already has a \"load\" object; regenerate it with bench/refine.exe"
          path);
  let tail = "  ]\n}\n" in
  let tn = String.length tail in
  let cn = String.length contents in
  if cn < tn || String.sub contents (cn - tn) tn <> tail then
    fatal "%s does not end with the expected refine layout" path;
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 (cn - tn));
  output_string oc (Printf.sprintf "  ],\n  %s\n}\n" load);
  close_out oc;
  (* The spliced document must still parse. *)
  let ic = open_in_bin path in
  let merged = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse_result merged with
  | Ok _ -> ()
  | Error msg -> fatal "merge produced invalid JSON: %s" msg

(* ---- driver ---- *)

let () =
  let clients = ref 4 in
  let requests = ref 24 in
  let out = ref "BENCH_refine.json" in
  let merge = ref true in
  let rec parse = function
    | [] -> ()
    | "--clients" :: v :: rest ->
        clients := int_of_string v;
        parse rest
    | "--requests" :: v :: rest ->
        requests := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--no-merge" :: rest ->
        merge := false;
        parse rest
    | a :: _ -> fatal "unknown argument %s" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !clients < 1 || !requests < 1 then fatal "--clients and --requests must be >= 1";
  let metrics_were_enabled = Mdl_obs.Metrics.enabled () in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lumpd-loadgen-%d.sock" (Unix.getpid ()))
  in
  let server =
    Serve.start
      {
        (Serve.default_config ~listen:(Serve.Unix_socket sock)) with
        Serve.max_inflight = 4;
        queue_capacity = 256;
      }
  in
  let addr = Serve.address server in
  (* Build the model once before the clock starts; the load phase then
     measures the warm daemon, not model construction. *)
  let c = Serve_client.connect addr in
  (match
     Serve_client.request c
       {
         Proto.rq_id = Some "loadgen-submit";
         rq_deadline_ms = None;
         rq_trace = false;
         rq_verb = submit_verb;
       }
   with
  | Ok { Proto.resp_body = Ok _; _ } -> ()
  | Ok { Proto.resp_body = Error (code, msg); _ } ->
      fatal "submit rejected: %s: %s" (Proto.error_code_string code) msg
  | Error msg -> fatal "submit transport error: %s" msg);
  Serve_client.close c;
  let results = Array.make !clients [] in
  let all, wall_s =
    Timer.time (fun () ->
        let threads =
          List.init !clients (fun i ->
              Thread.create
                (fun () -> results.(i) <- run_client addr ~client:i ~requests:!requests)
                ())
        in
        List.iter Thread.join threads;
        List.concat (Array.to_list results))
  in
  Serve.stop server;
  (try Sys.remove sock with Sys_error _ -> ());
  Mdl_obs.Metrics.set_enabled metrics_were_enabled;
  let errors = List.length (List.filter (fun s -> s.s_error) all) in
  let verbs = aggregate all in
  let total = !clients * !requests in
  Printf.printf "loadgen: %d clients x %d requests in %.3fs (%.1f req/s, %d errors)\n"
    !clients !requests wall_s
    (float_of_int total /. wall_s)
    errors;
  List.iter
    (fun v ->
      Printf.printf "  %-12s %4d reqs  p50 %.4fs  p95 %.4fs  p99 %.4fs\n" v.vl_verb
        v.vl_count v.vl_p50 v.vl_p95 v.vl_p99)
    verbs;
  let load = load_json ~clients:!clients ~requests:!requests ~wall_s ~errors verbs in
  if !merge then begin
    merge_into !out load;
    Printf.printf "merged \"load\" into %s\n" !out
  end
  else print_endline ("{" ^ load ^ "}")

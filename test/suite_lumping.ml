(* Tests for state-level lumping: the partition-refinement algorithm [9],
   direct condition checkers, and Theorem 2 quotient construction. *)

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Ctmc = Mdl_ctmc.Ctmc
module Mrp = Mdl_ctmc.Mrp
module Solver = Mdl_ctmc.Solver
module Check = Mdl_lumping.Check
module State_lumping = Mdl_lumping.State_lumping
module Quotient = Mdl_lumping.Quotient

let partition_testable = Alcotest.testable Partition.pp Partition.equal

(* Enumerate all partitions of {0..n-1} as class assignments in
   restricted-growth-string form. *)
let all_partitions n =
  let results = ref [] in
  let a = Array.make n 0 in
  let rec go i max_label =
    if i = n then results := Partition.of_class_assignment (Array.copy a) :: !results
    else
      for label = 0 to max_label do
        a.(i) <- label;
        go (i + 1) (max max_label (label + 1))
      done
  in
  if n > 0 then go 0 0;
  !results

(* Brute-force coarsest lumpable partition: among all partitions refining
   [initial] and satisfying the checker, the one with fewest classes.
   Unique coarsest exists for both ordinary and exact lumping. *)
let brute_force_coarsest check initial n =
  let candidates =
    List.filter
      (fun p -> Partition.is_refinement_of p initial && check p)
      (all_partitions n)
  in
  List.fold_left
    (fun best p ->
      match best with
      | None -> Some p
      | Some b -> if Partition.num_classes p < Partition.num_classes b then Some p else best)
    None candidates

(* A chain with an obvious symmetry: states 1 and 2 are interchangeable
   (same rates in and out). *)
let symmetric_three_state () =
  Csr.of_triplets ~rows:3 ~cols:3
    [ (0, 1, 1.0); (0, 2, 1.0); (1, 0, 2.0); (2, 0, 2.0) ]

let test_ordinary_symmetric () =
  let r = symmetric_three_state () in
  (* With a trivial initial partition the whole chain collapses: every
     state has the same total exit rate, so the one-class partition is
     itself ordinarily lumpable. *)
  let p0 = State_lumping.coarsest Ordinary r ~initial:(Partition.trivial 3) in
  Alcotest.(check int) "uniform exit rates collapse" 1 (Partition.num_classes p0);
  (* Distinguishing state 0 (e.g. by reward) leaves the 1/2 symmetry. *)
  let initial = Partition.of_class_assignment [| 0; 1; 1 |] in
  let p = State_lumping.coarsest Ordinary r ~initial in
  Alcotest.check partition_testable "{0}{1,2}" initial p;
  Alcotest.(check bool) "checker agrees" true (Check.ordinary r p)

let test_exact_symmetric () =
  let r = symmetric_three_state () in
  let initial =
    Partition.group_by 3
      (fun s -> Csr.row_sum r s)
      (fun a b -> Mdl_util.Floatx.compare_approx a b)
  in
  let p = State_lumping.coarsest Exact r ~initial in
  Alcotest.check partition_testable "{0}{1,2}"
    (Partition.of_class_assignment [| 0; 1; 1 |])
    p;
  Alcotest.(check bool) "checker agrees" true (Check.exact r p)

let test_asymmetric_not_lumpable () =
  (* Distinct exit rates everywhere: no non-trivial ordinary lump
     survives. *)
  let r =
    Csr.of_triplets ~rows:3 ~cols:3
      [ (0, 1, 1.0); (0, 2, 1.5); (1, 0, 2.0); (2, 0, 3.0) ]
  in
  let p = State_lumping.coarsest Ordinary r ~initial:(Partition.trivial 3) in
  Alcotest.(check int) "all singletons" 3 (Partition.num_classes p)

let test_checker_rejects_bad_partition () =
  let r = symmetric_three_state () in
  (* {0,1}{2}: R(0, {2}) = 1 but R(1, {2}) = 0 — not ordinarily
     lumpable. *)
  let bad_ord = Partition.of_class_assignment [| 0; 0; 1 |] in
  Alcotest.(check bool) "ordinary rejects" false (Check.ordinary r bad_ord);
  (* Asymmetric incoming rates break exact lumpability of {1,2}. *)
  let r' =
    Csr.of_triplets ~rows:3 ~cols:3
      [ (0, 1, 1.0); (0, 2, 1.5); (1, 0, 2.0); (2, 0, 1.5) ]
  in
  let bad_exact = Partition.of_class_assignment [| 0; 1; 1 |] in
  Alcotest.(check bool) "exact rejects" false (Check.exact r' bad_exact)

let test_rewards_split_initial_partition () =
  let r = symmetric_three_state () in
  let ctmc = Ctmc.of_rates r in
  (* Different rewards on states 1 and 2 must prevent their lumping. *)
  let m = Mrp.make ~ctmc ~rewards:[| 0.0; 1.0; 2.0 |] ~initial:(Mrp.point_initial 3 0) in
  let p = State_lumping.coarsest_mrp Ordinary m in
  Alcotest.(check int) "no lumping" 3 (Partition.num_classes p);
  let m' = Mrp.make ~ctmc ~rewards:[| 0.0; 1.0; 1.0 |] ~initial:(Mrp.point_initial 3 0) in
  let p' = State_lumping.coarsest_mrp Ordinary m' in
  Alcotest.(check int) "lumps with equal rewards" 2 (Partition.num_classes p')

(* Random CTMC with small integer rates to create lumpable structure. *)
let gen_chain =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* triplets =
      list_size (int_range 1 14)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
           (map (fun k -> float_of_int (k + 1)) (int_range 0 1)))
    in
    return (n, triplets))

let arb_chain =
  QCheck.make
    ~print:(fun (n, t) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";"
           (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
    gen_chain

let chain_of (n, triplets) = Csr.of_triplets ~rows:n ~cols:n triplets

let test_brute_force_ordinary =
  QCheck.Test.make ~count:150 ~name:"refinement computes coarsest ordinary lumping"
    arb_chain (fun (n, t) ->
      let r = chain_of (n, t) in
      let initial = Partition.trivial n in
      let computed = State_lumping.coarsest Ordinary r ~initial in
      match brute_force_coarsest (fun p -> Check.ordinary r p) initial n with
      | None -> false
      | Some best ->
          Check.ordinary r computed
          && Partition.num_classes computed = Partition.num_classes best
          && Partition.equal computed best)

let test_brute_force_exact =
  QCheck.Test.make ~count:150 ~name:"refinement computes coarsest exact lumping"
    arb_chain (fun (n, t) ->
      let r = chain_of (n, t) in
      let initial =
        Partition.group_by n
          (fun s -> Csr.row_sum r s)
          (fun a b -> Mdl_util.Floatx.compare_approx a b)
      in
      let computed = State_lumping.coarsest Exact r ~initial in
      match brute_force_coarsest (fun p -> Check.exact r p) (Partition.trivial n) n with
      | None -> false
      | Some best ->
          Check.exact r computed
          && Partition.num_classes computed = Partition.num_classes best)

let test_every_lumpable_refines_computed =
  QCheck.Test.make ~count:80 ~name:"every ordinarily lumpable partition refines coarsest"
    arb_chain (fun (n, t) ->
      let r = chain_of (n, t) in
      let computed = State_lumping.coarsest Ordinary r ~initial:(Partition.trivial n) in
      List.for_all
        (fun p -> (not (Check.ordinary r p)) || Partition.is_refinement_of p computed)
        (all_partitions n))

let test_float_pipeline_matches_generic =
  QCheck.Test.make ~count:150
    ~name:"coarsest: monomorphic float pipeline matches generic pipeline" arb_chain
    (fun (n, t) ->
      let r = chain_of (n, t) in
      List.for_all
        (fun mode ->
          let initial = Partition.group_by n (fun i -> i mod 2) compare in
          let stats = Mdl_partition.Refiner.create_stats () in
          let p_float = State_lumping.coarsest ~stats mode r ~initial in
          let p_generic = State_lumping.coarsest ~generic:true mode r ~initial in
          Partition.equal p_float p_generic
          (* Default path is fully monomorphic: no generic fallback. *)
          && stats.Mdl_partition.Refiner.float_passes
             = stats.Mdl_partition.Refiner.splitter_passes
          && stats.Mdl_partition.Refiner.fallback_passes = 0)
        [ State_lumping.Ordinary; State_lumping.Exact ])

(* Theorem 2 validation: measures computed on the lumped chain equal
   measures on the original. *)
let cyclic_symmetric_chain () =
  (* Three identical machines in a failure/repair model, modelled
     individually: state = bitmask of up machines.  Massive symmetry. *)
  let n = 8 in
  let fail = 1.0 and repair = 4.0 in
  let triplets = ref [] in
  for s = 0 to n - 1 do
    for m = 0 to 2 do
      let bit = 1 lsl m in
      if s land bit <> 0 then triplets := (s, s lxor bit, fail) :: !triplets
      else triplets := (s, s lxor bit, repair) :: !triplets
    done
  done;
  Ctmc.of_triplets n !triplets

let popcount s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let test_quotient_preserves_steady_state_reward () =
  let ctmc = cyclic_symmetric_chain () in
  (* Reward = number of machines up. *)
  let rewards = Array.init 8 (fun s -> float_of_int (popcount s)) in
  let m = Mrp.make ~ctmc ~rewards ~initial:(Mrp.point_initial 8 7) in
  let p = State_lumping.coarsest_mrp Ordinary m in
  Alcotest.(check int) "4 classes (0..3 machines up)" 4 (Partition.num_classes p);
  let lumped = Quotient.mrp Ordinary m p in
  let original_reward = Mdl_ctmc.Measures.steady_state_reward ~tol:1e-14 m in
  let lumped_reward = Mdl_ctmc.Measures.steady_state_reward ~tol:1e-14 lumped in
  Alcotest.(check (float 1e-8)) "steady-state reward preserved" original_reward
    lumped_reward

let test_quotient_preserves_transient_reward () =
  let ctmc = cyclic_symmetric_chain () in
  let rewards = Array.init 8 (fun s -> if popcount s >= 2 then 1.0 else 0.0) in
  let m = Mrp.make ~ctmc ~rewards ~initial:(Mrp.point_initial 8 7) in
  let p = State_lumping.coarsest_mrp Ordinary m in
  let lumped = Quotient.mrp Ordinary m p in
  List.iter
    (fun t ->
      let a = Mdl_ctmc.Measures.transient_reward ~t m in
      let b = Mdl_ctmc.Measures.transient_reward ~t lumped in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "transient t=%g" t) a b)
    [ 0.1; 0.5; 1.0; 5.0 ]

let test_ordinary_aggregation_commutes () =
  (* aggregate(pi(t)) = pi~(t): lumping commutes with transient analysis. *)
  let ctmc = cyclic_symmetric_chain () in
  let rewards = Array.init 8 (fun s -> float_of_int (popcount s)) in
  let m = Mrp.make ~ctmc ~rewards ~initial:(Mrp.point_initial 8 0) in
  let p = State_lumping.coarsest_mrp Ordinary m in
  let lumped = Quotient.mrp Ordinary m p in
  let t = 0.8 in
  let pi_t = Solver.transient ~t ctmc (Mrp.initial m) in
  let pi_lumped_t = Solver.transient ~t (Mrp.ctmc lumped) (Mrp.initial lumped) in
  Alcotest.(check bool) "aggregation commutes" true
    (Vec.diff_inf (Quotient.aggregate pi_t p) pi_lumped_t < 1e-9)

let test_exact_stationary_class_uniform () =
  (* For an exactly lumpable irreducible chain the stationary distribution
     is class-uniform; lifting the lumped stationary recovers it. *)
  let ctmc = cyclic_symmetric_chain () in
  let r = Ctmc.rates ctmc in
  let initial =
    Partition.group_by 8
      (fun s -> Csr.row_sum r s)
      (fun a b -> Mdl_util.Floatx.compare_approx a b)
  in
  let p = State_lumping.coarsest Exact r ~initial in
  Alcotest.(check bool) "non-trivial exact lump" true (Partition.num_classes p < 8);
  Alcotest.(check bool) "is exactly lumpable" true (Check.exact r p);
  let pi, _ = Solver.steady_state ~tol:1e-14 ctmc in
  let lumped_rates = Quotient.rates Exact r p in
  let pi_lumped, _ = Solver.steady_state ~tol:1e-14 (Ctmc.of_rates lumped_rates) in
  Alcotest.(check bool) "lumped stationary = aggregated stationary" true
    (Vec.diff_inf (Quotient.aggregate pi p) pi_lumped < 1e-8);
  Alcotest.(check bool) "lift recovers stationary" true
    (Vec.diff_inf (Quotient.lift pi_lumped p) pi < 1e-8)

let test_exact_quotient_preserves_measures () =
  let ctmc = cyclic_symmetric_chain () in
  let r = Ctmc.rates ctmc in
  let rewards = Array.init 8 (fun s -> float_of_int (popcount s)) in
  (* Initial distribution concentrated on the all-up state, which forms a
     singleton class — hence class-uniform, as exact lumping requires. *)
  let m = Mrp.make ~ctmc ~rewards ~initial:(Mrp.point_initial 8 7) in
  let p = State_lumping.coarsest_mrp Exact m in
  Alcotest.(check bool) "non-trivial" true (Partition.num_classes p < 8);
  Alcotest.(check bool) "exactly lumpable" true
    (Check.exact ~initial:(Mrp.initial m) r p);
  let lumped = Quotient.mrp Exact m p in
  List.iter
    (fun t ->
      let a = Mdl_ctmc.Measures.transient_reward ~t m in
      let b = Mdl_ctmc.Measures.transient_reward ~t lumped in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "exact transient t=%g" t) a b)
    [ 0.1; 0.5; 2.0 ];
  let a = Mdl_ctmc.Measures.steady_state_reward ~tol:1e-14 m in
  let b = Mdl_ctmc.Measures.steady_state_reward ~tol:1e-14 lumped in
  Alcotest.(check (float 1e-8)) "exact steady state" a b

let test_quotient_rates_ordinary_shape () =
  let r = symmetric_three_state () in
  let p = Partition.of_class_assignment [| 0; 1; 1 |] in
  let rq = Quotient.rates Ordinary r p in
  Alcotest.(check int) "2x2" 2 (Csr.rows rq);
  Alcotest.(check (float 1e-12)) "R~(0,1) = R(0, {1,2})" 2.0 (Csr.get rq 0 1);
  Alcotest.(check (float 1e-12)) "R~(1,0) = R(1, {0})" 2.0 (Csr.get rq 1 0)

let test_lift_aggregate_roundtrip () =
  let p = Partition.of_class_assignment [| 0; 0; 1; 2; 2; 2 |] in
  let v = [| 0.3; 0.3; 0.1; 0.1; 0.1; 0.1 |] in
  let agg = Quotient.aggregate v p in
  Alcotest.(check bool) "aggregate" true (Vec.approx_equal agg [| 0.6; 0.1; 0.3 |]);
  Alcotest.(check bool) "lift of aggregate (uniform v)" true
    (Vec.approx_equal (Quotient.lift agg p) v)

let test_dtmc_lumping () =
  (* The flat lumping machinery applies to stochastic matrices verbatim:
     lump the uniformised DTMC of the symmetric-machines chain and check
     the quotient is stochastic with the aggregated stationary. *)
  let ctmc = cyclic_symmetric_chain () in
  let dtmc, _ = Mdl_ctmc.Dtmc.uniformized_of_ctmc ctmc in
  let p_matrix = Mdl_ctmc.Dtmc.matrix dtmc in
  (* Stochastic matrices always admit the one-class lump (all row sums
     are 1), so protect a reward first: the number of machines up. *)
  let initial = Partition.group_by 8 popcount compare in
  let partition = State_lumping.coarsest Ordinary p_matrix ~initial in
  Alcotest.(check int) "popcount classes stable" 4 (Partition.num_classes partition);
  let lumped = Mdl_ctmc.Dtmc.of_matrix (Quotient.rates Ordinary p_matrix partition) in
  let pi, _ = Mdl_ctmc.Dtmc.stationary ~tol:1e-14 dtmc in
  let pi_l, _ = Mdl_ctmc.Dtmc.stationary ~tol:1e-14 lumped in
  Alcotest.(check bool) "aggregated stationary" true
    (Vec.diff_inf (Quotient.aggregate pi partition) pi_l < 1e-9)

let qcheck_tests =
  [
    test_brute_force_ordinary;
    test_brute_force_exact;
    test_every_lumpable_refines_computed;
    test_float_pipeline_matches_generic;
  ]

let tests =
  [
    Alcotest.test_case "ordinary symmetric" `Quick test_ordinary_symmetric;
    Alcotest.test_case "exact symmetric" `Quick test_exact_symmetric;
    Alcotest.test_case "asymmetric not lumpable" `Quick test_asymmetric_not_lumpable;
    Alcotest.test_case "checker rejects bad partition" `Quick test_checker_rejects_bad_partition;
    Alcotest.test_case "rewards split P_ini" `Quick test_rewards_split_initial_partition;
    Alcotest.test_case "quotient preserves steady-state reward" `Quick
      test_quotient_preserves_steady_state_reward;
    Alcotest.test_case "quotient preserves transient reward" `Quick
      test_quotient_preserves_transient_reward;
    Alcotest.test_case "ordinary aggregation commutes" `Quick test_ordinary_aggregation_commutes;
    Alcotest.test_case "exact stationary class-uniform" `Quick
      test_exact_stationary_class_uniform;
    Alcotest.test_case "exact quotient preserves measures" `Quick
      test_exact_quotient_preserves_measures;
    Alcotest.test_case "quotient rates shape" `Quick test_quotient_rates_ordinary_shape;
    Alcotest.test_case "lift/aggregate roundtrip" `Quick test_lift_aggregate_roundtrip;
    Alcotest.test_case "dtmc lumping" `Quick test_dtmc_lumping;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

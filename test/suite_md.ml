(* Tests for matrix diagrams: formal sums, hash-consing, flattening,
   state spaces, vector products, and the Kronecker substrate. *)

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Formal_sum = Mdl_md.Formal_sum
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Md_vector = Mdl_md.Md_vector
module Kronecker = Mdl_kron.Kronecker

let matrix_testable = Alcotest.testable Csr.pp (fun a b -> Csr.approx_equal a b)

(* --- formal sums --- *)

let test_fsum_canonical () =
  let s = Formal_sum.of_list [ (3, 1.0); (1, 2.0); (3, -1.0); (2, 0.0) ] in
  Alcotest.(check (list (pair int (float 0.0)))) "canonical" [ (1, 2.0) ] (Formal_sum.terms s);
  Alcotest.(check bool) "empty" true (Formal_sum.is_empty (Formal_sum.of_list [ (1, 0.0) ]))

let test_fsum_algebra () =
  let a = Formal_sum.of_list [ (1, 1.0); (2, 2.0) ] in
  let b = Formal_sum.of_list [ (2, 3.0); (3, 1.0) ] in
  let s = Formal_sum.add a b in
  Alcotest.(check (float 0.0)) "coeff 2" 5.0 (Formal_sum.coeff s 2);
  Alcotest.(check (float 0.0)) "coeff absent" 0.0 (Formal_sum.coeff s 9);
  let d = Formal_sum.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scaled" 4.0 (Formal_sum.coeff d 2);
  Alcotest.(check bool) "scale 0 empties" true (Formal_sum.is_empty (Formal_sum.scale 0.0 a));
  Alcotest.(check (list int)) "children" [ 1; 2; 3 ] (Formal_sum.children s)

let test_fsum_map_children_merge () =
  let a = Formal_sum.of_list [ (1, 1.0); (2, 2.0); (3, 3.0) ] in
  let mapped = Formal_sum.map_children (fun n -> if n <= 2 then 10 else 20) a in
  Alcotest.(check (list (pair int (float 0.0)))) "merged" [ (10, 3.0); (20, 3.0) ]
    (Formal_sum.terms mapped)

let test_fsum_equality_hash () =
  let a = Formal_sum.of_list [ (1, 1.0); (2, 2.0) ] in
  let b = Formal_sum.of_list [ (2, 2.0); (1, 1.0) ] in
  Alcotest.(check bool) "order-independent equal" true (Formal_sum.equal a b);
  Alcotest.(check int) "hash agrees" (Formal_sum.hash a) (Formal_sum.hash b);
  let c = Formal_sum.of_list [ (1, 1.0); (2, 2.0000001) ] in
  Alcotest.(check bool) "bit-exact inequality" false (Formal_sum.equal a c);
  Alcotest.(check bool) "approx compare tolerant" true
    (Formal_sum.compare_approx ~eps:1e-3 a c = 0)

(* --- a hand-built 2-level MD ---

   Level 1 (size 2), level 2 (size 2):
     root = [ . e10 ; e01 . ] where e10 = 1.0*A, e01 = 2.0*B
     A = [ . 3 ; . . ]   B = [ 4 . ; . 5 ]  (values via terminal)
   Flat matrix over {0,1}x{0,1} (row-major: s = 2*s1 + s2):
     (0,s2) -> (1,s2') with A-block * 1.0 ; (1,s2) -> (0,s2') with B*2.0 *)
let hand_md () =
  let md = Md.create ~sizes:[| 2; 2 |] in
  let a =
    Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.0) ]
  in
  let b =
    Md.add_node md ~level:2
      [ (0, 0, Md.scalar_sum md 4.0); (1, 1, Md.scalar_sum md 5.0) ]
  in
  let root =
    Md.add_node md ~level:1
      [ (0, 1, Formal_sum.singleton a 1.0); (1, 0, Formal_sum.singleton b 2.0) ]
  in
  Md.set_root md root;
  md

let hand_md_expected () =
  Csr.of_dense
    [|
      [| 0.0; 0.0; 0.0; 3.0 |];
      [| 0.0; 0.0; 0.0; 0.0 |];
      [| 8.0; 0.0; 0.0; 0.0 |];
      [| 0.0; 10.0; 0.0; 0.0 |];
    |]

let test_md_flatten () =
  Alcotest.check matrix_testable "hand MD flattens" (hand_md_expected ())
    (Md.to_csr (hand_md ()))

let test_md_hash_consing () =
  let md = Md.create ~sizes:[| 2; 2 |] in
  let a1 = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.0) ] in
  let a2 = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.0) ] in
  Alcotest.(check int) "same node" a1 a2;
  let a3 = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.5) ] in
  Alcotest.(check bool) "different node" true (a1 <> a3);
  (* duplicate positions combine *)
  let a4 =
    Md.add_node md ~level:2
      [ (0, 1, Md.scalar_sum md 1.0); (0, 1, Md.scalar_sum md 2.0) ]
  in
  Alcotest.(check int) "entries combined -> same as 3.0 node" a1 a4

let test_md_validation () =
  let md = Md.create ~sizes:[| 2; 3 |] in
  Alcotest.check_raises "bad level"
    (Invalid_argument "Md.add_node: level out of range") (fun () ->
      ignore (Md.add_node md ~level:3 []));
  Alcotest.check_raises "bad entry"
    (Invalid_argument "Md.add_node: entry (0,2) out of range for level 1 (size 2)")
    (fun () -> ignore (Md.add_node md ~level:1 [ (0, 2, Md.scalar_sum md 1.0) ]));
  (* terminal is at level 3 here, so using it from level 1 must fail *)
  Alcotest.check_raises "wrong child level"
    (Invalid_argument "Md.add_node: child 0 has level 3, expected 2") (fun () ->
      ignore (Md.add_node md ~level:1 [ (0, 0, Md.scalar_sum md 1.0) ]));
  Alcotest.check_raises "root level" (Invalid_argument "Md.set_root: node is not at level 1")
    (fun () ->
      let n = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 1.0) ] in
      Md.set_root md n);
  Alcotest.check_raises "no root" (Invalid_argument "Md.root: no root set") (fun () ->
      ignore (Md.root md))

let test_md_live_nodes () =
  let md = hand_md () in
  (* one extra unreachable node *)
  let _garbage = Md.add_node md ~level:2 [ (1, 0, Md.scalar_sum md 9.0) ] in
  let live = Md.live_nodes md in
  Alcotest.(check int) "level1 count" 1 (List.length live.(0));
  Alcotest.(check int) "level2 count" 2 (List.length live.(1));
  Alcotest.(check int) "total" 3 (Md.num_live_nodes md);
  let counts, entries = Md.stats md in
  Alcotest.(check (array int)) "counts" [| 1; 2 |] counts;
  Alcotest.(check (array int)) "entries" [| 2; 3 |] entries;
  Alcotest.(check bool) "memory positive" true (Md.memory_bytes md > 0)

let test_md_row_col_access () =
  let md = hand_md () in
  let live = Md.live_nodes md in
  let b = List.nth live.(1) 1 in
  (* node_col of b: column 0 must contain row 0 entry 4.0 *)
  let col0 = Md.node_col md b 0 in
  Alcotest.(check int) "col entries" 1 (List.length col0);
  (match col0 with
  | [ (r, s) ] ->
      Alcotest.(check int) "row" 0 r;
      Alcotest.(check (float 0.0)) "value" 4.0 (Formal_sum.coeff s (Md.terminal md))
  | _ -> Alcotest.fail "unexpected column structure");
  let row1 = Md.node_row md b 1 in
  Alcotest.(check int) "row entries" 1 (List.length row1)

let test_md_iter_entries_sums () =
  let md = hand_md () in
  let total = ref 0.0 in
  Md.iter_entries md (fun ~row:_ ~col:_ v -> total := !total +. v);
  Alcotest.(check (float 1e-12)) "total rate mass" 21.0 !total

(* --- state spaces --- *)

let test_statespace_basics () =
  let ss =
    Statespace.of_tuples ~levels:2 [ [| 0; 1 |]; [| 1; 0 |]; [| 0; 1 |]; [| 0; 0 |] ]
  in
  Alcotest.(check int) "dedup size" 3 (Statespace.size ss);
  Alcotest.(check (option int)) "index present" (Some 1) (Statespace.index ss [| 0; 1 |]);
  Alcotest.(check (option int)) "index absent" None (Statespace.index ss [| 1; 1 |]);
  Alcotest.(check (list int)) "projection level 2" [ 0; 1 ] (Statespace.local_states ss 2);
  let mapped = Statespace.map ss (fun s -> [| s.(0); 0 |]) in
  Alcotest.(check int) "map collapses" 2 (Statespace.size mapped)

let test_statespace_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Statespace.of_tuples: empty state space")
    (fun () -> ignore (Statespace.of_tuples ~levels:2 []));
  Alcotest.check_raises "bad tuple"
    (Invalid_argument "Statespace.of_tuples: tuple of wrong length") (fun () ->
      ignore (Statespace.of_tuples ~levels:2 [ [| 1 |] ]))

let full_space sizes =
  let rec go = function
    | [] -> [ [] ]
    | n :: rest ->
        let tails = go rest in
        List.concat_map (fun d -> List.map (fun t -> d :: t) tails)
          (List.init n Fun.id)
  in
  Statespace.of_tuples ~levels:(List.length sizes)
    (List.map Array.of_list (go sizes))

let test_md_vector_products () =
  let md = hand_md () in
  let ss = full_space [ 2; 2 ] in
  let flat = Md.to_csr md in
  let x = [| 0.1; 0.2; 0.3; 0.4 |] in
  Alcotest.(check bool) "vec_mul matches flat" true
    (Vec.approx_equal (Md_vector.vec_mul md ss x) (Csr.vec_mul x flat));
  Alcotest.(check bool) "mul_vec matches flat" true
    (Vec.approx_equal (Md_vector.mul_vec md ss x) (Csr.mul_vec flat x));
  Alcotest.(check bool) "row_sums match" true
    (Vec.approx_equal (Md_vector.row_sums md ss) (Csr.row_sums flat));
  Alcotest.check matrix_testable "to_csr over full space" flat (Md_vector.to_csr md ss)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_md_dot_export () =
  let dot = Mdl_md.Dot.to_dot (hand_md ()) in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 20 && String.sub dot 0 10 = "digraph md");
  Alcotest.(check bool) "mentions terminal" true (contains ~needle:"terminal" dot)

(* --- level restructuring --- *)

let test_merge_adjacent_preserves_matrix () =
  let md = hand_md () in
  let merged = Mdl_md.Restructure.merge_adjacent md 1 in
  Alcotest.(check int) "one level left" 1 (Md.levels merged);
  Alcotest.(check int) "merged size" 4 (Md.size merged 1);
  (* Adjacent row-major merging preserves the mixed-radix flattening
     exactly. *)
  Alcotest.check matrix_testable "same matrix" (Md.to_csr md) (Md.to_csr merged)

let test_merge_tuple () =
  let md = hand_md () in
  Alcotest.(check (array int)) "merge tuple" [| 3 |]
    (Mdl_md.Restructure.merge_tuple md 1 [| 1; 1 |]);
  Alcotest.check_raises "bad level"
    (Invalid_argument "Restructure.merge_tuple: bad level") (fun () ->
      ignore (Mdl_md.Restructure.merge_tuple md 2 [| 0; 0 |]))

let test_merge_statespace_consistent () =
  let md = hand_md () in
  let ss = full_space [ 2; 2 ] in
  let merged = Mdl_md.Restructure.merge_adjacent md 1 in
  let merged_ss = Statespace.map ss (Mdl_md.Restructure.merge_tuple md 1) in
  let x = [| 0.4; 0.3; 0.2; 0.1 |] in
  Alcotest.(check bool) "vector products agree across merge" true
    (Vec.approx_equal (Md_vector.vec_mul md ss x) (Md_vector.vec_mul merged merged_ss x))

(* --- MDDs --- *)

let test_mdd_matches_statespace () =
  let ss =
    Statespace.of_tuples ~levels:3
      [
        [| 0; 1; 2 |]; [| 0; 1; 0 |]; [| 1; 0; 0 |]; [| 1; 0; 1 |]; [| 0; 0; 0 |];
        [| 1; 1; 1 |];
      ]
  in
  let mdd = Mdl_md.Mdd.of_statespace ss in
  Alcotest.(check int) "count" (Statespace.size ss) (Mdl_md.Mdd.count mdd);
  Statespace.iter
    (fun i s ->
      Alcotest.(check (option int)) "index agrees" (Some i) (Mdl_md.Mdd.index mdd s))
    ss;
  Alcotest.(check (option int)) "absent tuple" None (Mdl_md.Mdd.index mdd [| 1; 1; 0 |]);
  (* iteration visits members in index order *)
  let seen = ref [] in
  Mdl_md.Mdd.iter mdd (fun i s -> seen := (i, Array.copy s) :: !seen);
  let seen = List.rev !seen in
  List.iteri
    (fun k (i, s) ->
      Alcotest.(check int) "iter index" k i;
      Alcotest.(check (option int)) "iter tuple" (Some k) (Statespace.index ss s))
    seen

let test_mdd_sharing () =
  (* All suffix sets equal -> maximal sharing: one node per level. *)
  let tuples = ref [] in
  for a = 0 to 2 do
    for b = 0 to 2 do
      tuples := [| a; b |] :: !tuples
    done
  done;
  let ss = Statespace.of_tuples ~levels:2 !tuples in
  let mdd = Mdl_md.Mdd.of_statespace ss in
  Alcotest.(check int) "two shared nodes" 2 (Mdl_md.Mdd.num_nodes mdd)

let test_mdd_products_match_hash_indexing () =
  let b = Mdl_models.Workstations.build (Mdl_models.Workstations.default ~stations:3) in
  let md = b.Mdl_models.Workstations.md in
  let ss = b.Mdl_models.Workstations.exploration.Mdl_san.Model.statespace in
  let mdd = Mdl_md.Mdd.of_statespace ss in
  let n = Statespace.size ss in
  let x = Array.init n (fun i -> float_of_int (i mod 7) +. 0.5) in
  Alcotest.(check bool) "vec_mul agrees" true
    (Vec.approx_equal (Md_vector.vec_mul md ss x) (Md_vector.vec_mul_mdd md mdd x));
  Alcotest.(check bool) "mul_vec agrees" true
    (Vec.approx_equal (Md_vector.mul_vec md ss x) (Md_vector.mul_vec_mdd md mdd x));
  Alcotest.(check bool) "row_sums agree" true
    (Vec.approx_equal (Md_vector.row_sums md ss) (Md_vector.row_sums_mdd md mdd))

(* --- set MDDs --- *)

let test_dot_write_file () =
  let path = Filename.temp_file "mdlump" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mdl_md.Dot.write_file (hand_md ()) path;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) "dot file written" true
        (String.length line >= 7 && String.sub line 0 7 = "digraph"))

let test_local_states_match_exploration () =
  let b = Mdl_models.Polling.build (Mdl_models.Polling.default ~customers:2) in
  let exp = b.Mdl_models.Polling.exploration in
  let ss = exp.Mdl_san.Model.statespace in
  (* every level index set is fully used by the canonical exploration *)
  Array.iteri
    (fun k space ->
      Alcotest.(check (list int))
        (Printf.sprintf "level %d local states" (k + 1))
        (List.init (Array.length space) Fun.id)
        (Statespace.local_states ss (k + 1)))
    exp.Mdl_san.Model.local_spaces

let test_printers_smoke () =
  (* The pretty-printers must render without raising. *)
  let md = hand_md () in
  let s = Format.asprintf "%a" Md.pp md in
  Alcotest.(check bool) "md pp" true (String.length s > 0);
  let ss = full_space [ 2; 2 ] in
  let s = Format.asprintf "%a" Statespace.pp ss in
  Alcotest.(check bool) "statespace pp" true (String.length s > 0);
  let s = Format.asprintf "%a" Formal_sum.pp Formal_sum.empty in
  Alcotest.(check string) "empty fsum pp" "0" s

let test_set_mdd_basics () =
  let module S = Mdl_md.Set_mdd in
  let m = S.manager ~levels:2 in
  let a = S.singleton m [| 0; 1 |] in
  let b = S.singleton m [| 1; 0 |] in
  let u = S.union m a b in
  Alcotest.(check int) "count" 2 (S.count m u);
  Alcotest.(check bool) "mem" true (S.mem m u [| 0; 1 |]);
  Alcotest.(check bool) "not mem" false (S.mem m u [| 0; 0 |]);
  Alcotest.(check bool) "union idempotent" true (S.equal u (S.union m u a));
  Alcotest.(check bool) "union with empty" true (S.equal u (S.union m u (S.empty m)));
  Alcotest.(check bool) "empty is empty" true (S.is_empty (S.empty m));
  let ss = S.to_statespace m u in
  Alcotest.(check int) "statespace size" 2 (Statespace.size ss)

let test_set_mdd_image () =
  let module S = Mdl_md.Set_mdd in
  let m = S.manager ~levels:2 in
  let s = S.singleton m [| 0; 0 |] in
  (* relation: level 1 increments (mod 2), level 2 identity *)
  let rel level u = if level = 1 then [ (u + 1) mod 2 ] else [ u ] in
  let img = S.image m rel s in
  Alcotest.(check bool) "image" true (S.mem m img [| 1; 0 |]);
  Alcotest.(check int) "image count" 1 (S.count m img);
  (* a level-disabled relation empties the image *)
  let rel_blocked level u = if level = 2 then [] else [ u ] in
  Alcotest.(check bool) "blocked image empty" true
    (S.is_empty (S.image m rel_blocked s));
  (* cached image agrees *)
  Alcotest.(check bool) "cached image agrees" true
    (S.equal img (S.image_cached m ~key:42 rel s))

let test_set_mdd_validation () =
  let module S = Mdl_md.Set_mdd in
  let m = S.manager ~levels:2 in
  Alcotest.check_raises "bad tuple"
    (Invalid_argument "Set_mdd.singleton: tuple length mismatch") (fun () ->
      ignore (S.singleton m [| 1 |]));
  Alcotest.check_raises "empty statespace"
    (Invalid_argument "Set_mdd.to_statespace: empty set") (fun () ->
      ignore (S.to_statespace m (S.empty m)))

(* --- Kronecker --- *)

let simple_kron () =
  (* Two levels of size 2; event a acts on level 1 only, event b on both. *)
  let w_a1 = Csr.of_dense [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let w_b1 = Csr.of_dense [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let w_b2 = Csr.of_dense [| [| 0.0; 2.0 |]; [| 1.0; 0.0 |] |] in
  Kronecker.make ~sizes:[| 2; 2 |]
    [
      { Kronecker.label = "a"; rate = 3.0; locals = [| w_a1; Kronecker.identity_local 2 |] };
      { Kronecker.label = "b"; rate = 0.5; locals = [| w_b1; w_b2 |] };
    ]

let test_kron_to_csr () =
  let k = simple_kron () in
  let m = Kronecker.to_csr k in
  (* event a: (s1,s2) -> (1-s1,s2) at rate 3; event b: (0,s2)->(1,s2') *)
  Alcotest.(check (float 1e-12)) "a entry" 3.0 (Csr.get m 0 2);
  Alcotest.(check (float 1e-12)) "b entry (0,0)->(1,1)" 1.0 (Csr.get m 0 3);
  Alcotest.(check (float 1e-12)) "b entry (0,1)->(1,0)" 0.5 (Csr.get m 1 2)

let test_kron_md_equivalence () =
  let k = simple_kron () in
  Alcotest.check matrix_testable "kron = md" (Kronecker.to_csr k)
    (Md.to_csr (Kronecker.to_md k))

let test_kron_vec_mul () =
  let k = simple_kron () in
  let flat = Kronecker.to_csr k in
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "shuffle product" true
    (Vec.approx_equal (Kronecker.vec_mul k x) (Csr.vec_mul x flat))

let test_kron_misc () =
  let k = simple_kron () in
  Alcotest.(check int) "num_events" 2 (Kronecker.num_events k);
  Alcotest.(check int) "potential size" 4 (Kronecker.potential_size k);
  Alcotest.(check int) "events list" 2 (List.length (Kronecker.events k));
  Alcotest.check_raises "vec_mul dim"
    (Invalid_argument "Kronecker.vec_mul: vector size mismatch") (fun () ->
      ignore (Kronecker.vec_mul k [| 1.0 |]))

let test_kron_validation () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Kronecker.make: event e has non-positive rate") (fun () ->
      ignore
        (Kronecker.make ~sizes:[| 2 |]
           [ { Kronecker.label = "e"; rate = 0.0; locals = [| Csr.identity 2 |] } ]));
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Kronecker.make: event e level 1 matrix has wrong size") (fun () ->
      ignore
        (Kronecker.make ~sizes:[| 2 |]
           [ { Kronecker.label = "e"; rate = 1.0; locals = [| Csr.identity 3 |] } ]))

(* --- random Kronecker descriptors: MD/Kron/flat agreement --- *)

let gen_local n rng_state =
  (* A sparse local matrix with small-integer rates. *)
  let open QCheck.Gen in
  let entry = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 3) in
  let l = generate1 ~rand:rng_state (list_size (int_range 0 (n * 2)) entry) in
  Csr.of_triplets ~rows:n ~cols:n (List.map (fun (i, j, v) -> (i, j, float_of_int v)) l)

let gen_descriptor =
  QCheck.Gen.(
    let* nlevels = int_range 1 3 in
    let* sizes = array_size (return nlevels) (int_range 1 3) in
    let* nevents = int_range 1 4 in
    let* seed = int_range 0 1_000_000 in
    return (sizes, nevents, seed))

let build_descriptor (sizes, nevents, seed) =
  let rng_state = Random.State.make [| seed |] in
  let events =
    List.init nevents (fun i ->
        {
          Kronecker.label = Printf.sprintf "e%d" i;
          rate = float_of_int (1 + (i mod 3));
          locals = Array.map (fun n -> gen_local n rng_state) sizes;
        })
  in
  Kronecker.make ~sizes events

let arb_descriptor =
  QCheck.make
    ~print:(fun (sizes, nevents, seed) ->
      Printf.sprintf "sizes=[%s] events=%d seed=%d"
        (String.concat ";" (List.map string_of_int (Array.to_list sizes)))
        nevents seed)
    gen_descriptor

let test_normalize_merges_proportional_nodes () =
  (* Nodes [2] and [1] are proportional; normalisation makes them the
     same node and pushes the factors up into the root's coefficients. *)
  let md = Md.create ~sizes:[| 2; 1 |] in
  let a = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 2.0) ] in
  let b = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 1.0) ] in
  let root =
    Md.add_node md ~level:1
      [ (0, 0, Formal_sum.singleton a 1.0); (1, 1, Formal_sum.singleton b 2.0) ]
  in
  Md.set_root md root;
  let normalized = Mdl_md.Compact.normalize md in
  Alcotest.check matrix_testable "matrix preserved" (Md.to_csr md) (Md.to_csr normalized);
  let live = Md.live_nodes normalized in
  Alcotest.(check int) "proportional nodes merged" 1 (List.length live.(1))

let test_normalize_stable () =
  let md = hand_md () in
  let n1 = Mdl_md.Compact.normalize md in
  let n2 = Mdl_md.Compact.normalize n1 in
  Alcotest.(check int) "node count stable" (Md.num_live_nodes n1) (Md.num_live_nodes n2);
  Alcotest.check matrix_testable "matrix stable" (Md.to_csr n1) (Md.to_csr n2)

(* --- structural diagram equality, raw constructors, reverse iteration ---

   These pin the contracts the incremental lumped rebuild relies on:
   [Md.equal] must identify isomorphic rooted diagrams regardless of
   store-local node ids, [add_node_sorted_rows] must hash-cons to the
   node [add_node] would have built, and the [rev_iter_*] walks must
   visit entries in exactly the reverse of the ascending storage
   order. *)

let diag_of_entries ?(prewarm = 0) entries =
  (* A 2-level diagram; [prewarm] junk nodes shift the store's ids. *)
  let md = Md.create ~sizes:[| 2; 2 |] in
  for i = 1 to prewarm do
    ignore (Md.add_node md ~level:2 [ (1, 1, Md.scalar_sum md (9.0 +. float_of_int i)) ])
  done;
  let a = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.0) ] in
  let b = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 4.0) ] in
  let root = Md.add_node md ~level:1 (entries a b) in
  Md.set_root md root;
  md

let test_md_equal () =
  let entries a b =
    [ (0, 1, Formal_sum.singleton a 1.0); (1, 0, Formal_sum.singleton b 2.0) ]
  in
  let m1 = diag_of_entries entries in
  (* Same diagram built into a pre-warmed store: the shared children get
     different node ids, and the extra node is unreachable garbage. *)
  let m2 = diag_of_entries ~prewarm:2 entries in
  Alcotest.(check bool) "isomorphic stores equal" true (Md.equal m1 m2);
  Alcotest.(check bool) "equality is symmetric" true (Md.equal m2 m1);
  (* coefficient difference at a leaf *)
  let m3 =
    diag_of_entries (fun a b ->
        ignore b;
        [ (0, 1, Formal_sum.singleton a 1.0); (1, 0, Formal_sum.singleton a 2.0) ])
  in
  Alcotest.(check bool) "different child structure" false (Md.equal m1 m3);
  let m4 =
    diag_of_entries (fun a b ->
        [ (0, 1, Formal_sum.singleton a 1.0); (1, 0, Formal_sum.singleton b 2.5) ])
  in
  Alcotest.(check bool) "different coefficient" false (Md.equal m1 m4);
  (* level-size mismatch *)
  let m5 = Md.create ~sizes:[| 2; 3 |] in
  Alcotest.(check bool) "different sizes" false (Md.equal m1 m5)

let test_add_node_sorted_rows () =
  let md = Md.create ~sizes:[| 3; 2 |] in
  let a = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 3.0) ] in
  let via_add =
    Md.add_node md ~level:1
      [
        (0, 0, Formal_sum.singleton a 1.0);
        (0, 1, Formal_sum.singleton a 2.0);
        (2, 1, Formal_sum.singleton a 4.0);
      ]
  in
  let rows =
    [|
      [| (0, Formal_sum.singleton a 1.0); (1, Formal_sum.singleton a 2.0) |];
      [||];
      [| (1, Formal_sum.singleton a 4.0) |];
    |]
  in
  let via_raw = Md.add_node_sorted_rows md ~level:1 rows in
  Alcotest.(check int) "hash-conses to the add_node node" via_add via_raw;
  Alcotest.check_raises "bad level"
    (Invalid_argument "Md.add_node_sorted_rows: level out of range") (fun () ->
      ignore (Md.add_node_sorted_rows md ~level:0 [||]));
  Alcotest.check_raises "bad row count"
    (Invalid_argument "Md.add_node_sorted_rows: row count does not match the level size")
    (fun () -> ignore (Md.add_node_sorted_rows md ~level:1 [| [||] |]))

let test_md_rev_iter () =
  let md = Md.create ~sizes:[| 3; 3 |] in
  let a = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 1.0) ] in
  let node =
    Md.add_node md ~level:1
      [
        (0, 0, Formal_sum.singleton a 1.0);
        (0, 2, Formal_sum.singleton a 2.0);
        (2, 1, Formal_sum.singleton a 3.0);
      ]
  in
  let row_cols = ref [] in
  Md.rev_iter_node_row md node 0 (fun c _ -> row_cols := c :: !row_cols);
  (* descending visit, so consing restores the ascending storage order *)
  Alcotest.(check (list int)) "row walked descending" [ 0; 2 ] !row_cols;
  let empty = ref [] in
  Md.rev_iter_node_row md node 1 (fun c _ -> empty := c :: !empty);
  Alcotest.(check (list int)) "empty row" [] !empty;
  let entries = ref [] in
  Md.rev_iter_node_entries md node (fun r c _ -> entries := (r, c) :: !entries);
  Alcotest.(check (list (pair int int))) "entries walked rows/cols descending"
    [ (0, 0); (0, 2); (2, 1) ]
    !entries;
  (* agreement with the forward walk: consing during the descending
     visit yields exactly the forward visit order *)
  let fwd = ref [] in
  Md.iter_node_entries md node (fun r c _ -> fwd := (r, c) :: !fwd);
  Alcotest.(check (list (pair int int))) "reverse of iter_node_entries" (List.rev !fwd)
    !entries;
  Alcotest.check_raises "bad row"
    (Invalid_argument "Md.rev_iter_node_row: row out of range") (fun () ->
      Md.rev_iter_node_row md node 3 (fun _ _ -> ()))

let qcheck_tests =
  let open QCheck in
  [
    QCheck.Test.make ~count:150 ~name:"node_col is the transpose of node_row" arb_descriptor
    (fun spec ->
      let k = build_descriptor spec in
      let md = Kronecker.to_md k in
      let live = Md.live_nodes md in
      Array.for_all
        (fun ids ->
          List.for_all
            (fun id ->
              let level = Md.node_level md id in
              let n = Md.size md level in
              let ok = ref true in
              for c = 0 to n - 1 do
                List.iter
                  (fun (r, sum) ->
                    let found =
                      List.exists
                        (fun (c', sum') -> c' = c && Formal_sum.equal sum sum')
                        (Md.node_row md id r)
                    in
                    if not found then ok := false)
                  (Md.node_col md id c)
              done;
              !ok)
            ids)
        live);
    Test.make ~count:200 ~name:"normalize preserves the represented matrix"
      arb_descriptor (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        Csr.approx_equal (Md.to_csr md) (Md.to_csr (Mdl_md.Compact.normalize md)));
    Test.make ~count:200 ~name:"merge_terms idempotent on node counts" arb_descriptor
      (fun spec ->
        let k = build_descriptor spec in
        let once = Mdl_md.Compact.merge_terms (Kronecker.to_md k) in
        let twice = Mdl_md.Compact.merge_terms once in
        Md.num_live_nodes once = Md.num_live_nodes twice
        && Csr.approx_equal (Md.to_csr once) (Md.to_csr twice));
    Test.make ~count:200 ~name:"normalize never increases node count" arb_descriptor
      (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        Md.num_live_nodes (Mdl_md.Compact.normalize md) <= Md.num_live_nodes md);
    Test.make ~count:150 ~name:"merge_adjacent preserves matrix (random)"
      arb_descriptor (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        Md.levels md < 2
        ||
        let merged = Mdl_md.Restructure.merge_adjacent md 1 in
        Csr.approx_equal (Md.to_csr md) (Md.to_csr merged));
    Test.make ~count:150 ~name:"merging all levels down to one preserves matrix"
      arb_descriptor (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        let rec collapse m =
          if Md.levels m = 1 then m else collapse (Mdl_md.Restructure.merge_adjacent m 1)
        in
        Csr.approx_equal (Md.to_csr md) (Md.to_csr (collapse md)));
    Test.make ~count:200 ~name:"md of kron flattens to kron matrix" arb_descriptor
      (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        Csr.approx_equal (Kronecker.to_csr k) (Md.to_csr md));
    (* The same transformation round-trips, but over the oracle's
       free-form diagrams (shared nodes, multi-term sums) rather than
       only Kronecker compilations. *)
    Test.make ~count:150 ~name:"compact round-trips on free-form diagrams"
      (Mdl_oracle.Qcheck_gen.md_model ()) (fun spec ->
        let md = Mdl_oracle.Gen_md.of_spec spec in
        let flat = Md.to_csr md in
        Csr.approx_equal flat (Md.to_csr (Mdl_md.Compact.merge_terms md))
        && Csr.approx_equal flat (Md.to_csr (Mdl_md.Compact.normalize md)));
    Test.make ~count:150 ~name:"restructure round-trips on free-form diagrams"
      (Mdl_oracle.Qcheck_gen.md_model ()) (fun spec ->
        let md = Mdl_oracle.Gen_md.of_spec spec in
        Md.levels md < 2
        ||
        let flat = Md.to_csr md in
        let level = 1 + (Array.length (Md.sizes md) mod (Md.levels md - 1)) in
        let merged = Mdl_md.Restructure.merge_adjacent md level in
        Csr.approx_equal flat (Md.to_csr merged)
        && Mdl_oracle.Invariants.md merged = []);
    Test.make ~count:200 ~name:"shuffle vec_mul matches flat" arb_descriptor (fun spec ->
        let k = build_descriptor spec in
        let n = Kronecker.potential_size k in
        let x = Array.init n (fun i -> float_of_int ((i mod 5) + 1)) in
        Vec.approx_equal (Kronecker.vec_mul k x) (Csr.vec_mul x (Kronecker.to_csr k)));
    Test.make ~count:100 ~name:"md vector products match flat over full space"
      arb_descriptor (fun spec ->
        let k = build_descriptor spec in
        let md = Kronecker.to_md k in
        let sizes = Kronecker.sizes k in
        let ss = full_space (Array.to_list sizes) in
        let flat = Md.to_csr md in
        let n = Kronecker.potential_size k in
        let x = Array.init n (fun i -> float_of_int (i + 1)) in
        Vec.approx_equal (Mdl_md.Md_vector.vec_mul md ss x) (Csr.vec_mul x flat)
        && Vec.approx_equal (Mdl_md.Md_vector.row_sums md ss) (Csr.row_sums flat));
    Test.make ~count:200 ~name:"formal sum scale distributes over add"
      (pair (small_list (pair (int_bound 5) (int_bound 4))) (int_bound 6))
      (fun (l, k) ->
        let alpha = float_of_int k /. 2.0 in
        let terms = List.map (fun (n, c) -> (n, float_of_int c)) l in
        let a = Formal_sum.of_list terms in
        let b = Formal_sum.of_list (List.map (fun (n, c) -> (n + 1, c)) terms) in
        Formal_sum.compare_approx
          (Formal_sum.scale alpha (Formal_sum.add a b))
          (Formal_sum.add (Formal_sum.scale alpha a) (Formal_sum.scale alpha b))
        = 0);
    Test.make ~count:200 ~name:"formal sum coeff of sum adds" 
      (small_list (pair (int_bound 5) (int_bound 4)))
      (fun l ->
        let terms = List.map (fun (n, c) -> (n, float_of_int c)) l in
        let a = Formal_sum.of_list terms in
        let b = Formal_sum.of_list (List.rev terms) in
        List.for_all
          (fun n ->
            Mdl_util.Floatx.approx_eq
              (Formal_sum.coeff (Formal_sum.add a b) n)
              (Formal_sum.coeff a n +. Formal_sum.coeff b n))
          (List.init 7 Fun.id));
    Test.make ~count:200 ~name:"formal sum add associative-commutative"
      (small_list (pair (int_bound 5) (int_bound 4)))
      (fun l ->
        let terms = List.map (fun (n, c) -> (n, float_of_int c)) l in
        let a = Formal_sum.of_list terms in
        let b = Formal_sum.of_list (List.rev terms) in
        Formal_sum.equal a b);
  ]

let tests =
  [
    Alcotest.test_case "fsum canonical" `Quick test_fsum_canonical;
    Alcotest.test_case "fsum algebra" `Quick test_fsum_algebra;
    Alcotest.test_case "fsum map_children merge" `Quick test_fsum_map_children_merge;
    Alcotest.test_case "fsum equality/hash" `Quick test_fsum_equality_hash;
    Alcotest.test_case "md flatten" `Quick test_md_flatten;
    Alcotest.test_case "md hash-consing" `Quick test_md_hash_consing;
    Alcotest.test_case "md validation" `Quick test_md_validation;
    Alcotest.test_case "md live nodes" `Quick test_md_live_nodes;
    Alcotest.test_case "md row/col access" `Quick test_md_row_col_access;
    Alcotest.test_case "md iter entries" `Quick test_md_iter_entries_sums;
    Alcotest.test_case "md structural equality" `Quick test_md_equal;
    Alcotest.test_case "md add_node_sorted_rows" `Quick test_add_node_sorted_rows;
    Alcotest.test_case "md reverse iteration" `Quick test_md_rev_iter;
    Alcotest.test_case "statespace basics" `Quick test_statespace_basics;
    Alcotest.test_case "statespace validation" `Quick test_statespace_validation;
    Alcotest.test_case "md vector products" `Quick test_md_vector_products;
    Alcotest.test_case "md dot export" `Quick test_md_dot_export;
    Alcotest.test_case "normalize merges proportional nodes" `Quick
      test_normalize_merges_proportional_nodes;
    Alcotest.test_case "normalize stable" `Quick test_normalize_stable;
    Alcotest.test_case "merge_adjacent preserves matrix" `Quick
      test_merge_adjacent_preserves_matrix;
    Alcotest.test_case "merge_tuple" `Quick test_merge_tuple;
    Alcotest.test_case "merge statespace consistent" `Quick
      test_merge_statespace_consistent;
    Alcotest.test_case "mdd matches statespace" `Quick test_mdd_matches_statespace;
    Alcotest.test_case "mdd sharing" `Quick test_mdd_sharing;
    Alcotest.test_case "mdd products match hash indexing" `Quick
      test_mdd_products_match_hash_indexing;
    Alcotest.test_case "printers smoke" `Quick test_printers_smoke;
    Alcotest.test_case "dot write_file" `Quick test_dot_write_file;
    Alcotest.test_case "local_states match exploration" `Quick
      test_local_states_match_exploration;
    Alcotest.test_case "set mdd basics" `Quick test_set_mdd_basics;
    Alcotest.test_case "set mdd image" `Quick test_set_mdd_image;
    Alcotest.test_case "set mdd validation" `Quick test_set_mdd_validation;
    Alcotest.test_case "kron to_csr" `Quick test_kron_to_csr;
    Alcotest.test_case "kron/md equivalence" `Quick test_kron_md_equivalence;
    Alcotest.test_case "kron vec_mul" `Quick test_kron_vec_mul;
    Alcotest.test_case "kron misc" `Quick test_kron_misc;
    Alcotest.test_case "kron validation" `Quick test_kron_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

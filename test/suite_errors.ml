(* Failure-injection tests: every documented error path raises the
   documented exception and nothing else. *)

module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Formal_sum = Mdl_md.Formal_sum
module Partition = Mdl_partition.Partition
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Level_lumping = Mdl_core.Level_lumping
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Ctmc = Mdl_ctmc.Ctmc
module Kronecker = Mdl_kron.Kronecker

let tiny_md () =
  let md = Md.create ~sizes:[| 2; 2 |] in
  let a = Md.add_node md ~level:2 [ (0, 1, Md.scalar_sum md 1.0) ] in
  let root = Md.add_node md ~level:1 [ (0, 1, Formal_sum.singleton a 1.0) ] in
  Md.set_root md root;
  md

let tiny_result () =
  let md = tiny_md () in
  let sizes = Md.sizes md in
  Compositional.lump Ordinary md
    ~rewards:[ Decomposed.constant ~sizes 1.0 ]
    ~initial:(Decomposed.constant ~sizes 1.0)

let test_compositional_errors () =
  let md = tiny_md () in
  Alcotest.check_raises "partition count"
    (Invalid_argument "Compositional.lump_with_partitions: level count mismatch")
    (fun () ->
      ignore (Compositional.lump_with_partitions Ordinary md [| Partition.trivial 2 |]));
  Alcotest.check_raises "partition size"
    (Invalid_argument "Compositional.lump_with_partitions: partition size mismatch")
    (fun () ->
      ignore
        (Compositional.lump_with_partitions Ordinary md
           [| Partition.trivial 3; Partition.trivial 2 |]));
  let r = tiny_result () in
  Alcotest.check_raises "class_tuple length"
    (Invalid_argument "Compositional.class_tuple: tuple length mismatch") (fun () ->
      ignore (Compositional.class_tuple r [| 0 |]));
  Alcotest.check_raises "class_volume length"
    (Invalid_argument "Compositional.class_volume: tuple length mismatch") (fun () ->
      ignore (Compositional.class_volume r [| 0 |]));
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 0; 1 |] ] in
  let lumped_ss = Compositional.lump_statespace r ss in
  Alcotest.check_raises "aggregate size"
    (Invalid_argument "Compositional.aggregate_vector: vector size mismatch") (fun () ->
      ignore (Compositional.aggregate_vector r ss lumped_ss [| 1.0 |]))

let test_compositional_lumped_validation () =
  (* Regression: check_sizes used to ignore the lumped side entirely, so
     a statespace from a different model silently produced garbage. *)
  let md = tiny_md () in
  let r =
    Compositional.lump_with_partitions Ordinary md
      [| Partition.discrete 2; Partition.discrete 2 |]
  in
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 0; 1 |] ] in
  let v = [| 0.25; 0.75 |] in
  let bad_levels = Statespace.of_tuples ~levels:3 [ [| 0; 0; 0 |] ] in
  Alcotest.check_raises "lumped level count"
    (Invalid_argument "Compositional.aggregate_vector: lumped statespace level count mismatch")
    (fun () -> ignore (Compositional.aggregate_vector r ss bad_levels v));
  let bad_class = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 0; 5 |] ] in
  Alcotest.check_raises "lumped class id range"
    (Invalid_argument "Compositional.aggregate_vector: lumped statespace class id out of range")
    (fun () -> ignore (Compositional.aggregate_vector r ss bad_class v))

let test_average_vector_empty_class () =
  (* Regression: a lumped state receiving no flat state used to yield
     [0.0 /. 0 = nan] and poison every downstream measure silently. *)
  let md = tiny_md () in
  let r =
    Compositional.lump_with_partitions Ordinary md
      [| Partition.discrete 2; Partition.discrete 2 |]
  in
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 0; 1 |] ] in
  let v = [| 1.0; 3.0 |] in
  (* the honest image: averages are just the values back *)
  let ok = Compositional.average_vector r ss (Compositional.lump_statespace r ss) v in
  Alcotest.(check (array (float 1e-12))) "identity partitions average" [| 1.0; 3.0 |] ok;
  (* (1,0) is a valid class tuple but no state of [ss] maps to it *)
  let holey = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |] ] in
  Alcotest.check_raises "empty lumped state"
    (Invalid_argument
       "Compositional.average_vector: lumped state receives no flat states (is \
        lumped_ss the image of ss?)")
    (fun () -> ignore (Compositional.average_vector r ss holey v))

let test_level_lumping_errors () =
  let md = tiny_md () in
  Alcotest.check_raises "bad level"
    (Invalid_argument "Level_lumping.comp_lumping_level: level out of range") (fun () ->
      ignore
        (Level_lumping.comp_lumping_level Ordinary md ~level:3
           ~initial:(Partition.trivial 2)));
  Alcotest.check_raises "partition mismatch"
    (Invalid_argument "Level_lumping.comp_lumping_level: partition size mismatch")
    (fun () ->
      ignore
        (Level_lumping.comp_lumping_level Ordinary md ~level:1
           ~initial:(Partition.trivial 5)))

let test_md_solve_errors () =
  let md = tiny_md () in
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 1; 1 |] ] in
  Alcotest.check_raises "lambda too small"
    (Invalid_argument "Md_solve.uniformized_operator: lambda below max exit rate")
    (fun () -> ignore (Md_solve.uniformized_operator ~lambda:1e-9 md ss))

let test_decomposed_errors () =
  let sizes = [| 2; 2 |] in
  Alcotest.check_raises "of_level range"
    (Invalid_argument "Decomposed.of_level: level out of range") (fun () ->
      ignore (Decomposed.of_level ~sizes ~level:3 (fun _ -> 0.0)));
  let d = Decomposed.constant ~sizes 1.0 in
  Alcotest.check_raises "factor level"
    (Invalid_argument "Decomposed.factor: level out of range") (fun () ->
      ignore (Decomposed.factor d 0 0));
  Alcotest.check_raises "factor substate"
    (Invalid_argument "Decomposed.factor: substate out of range") (fun () ->
      ignore (Decomposed.factor d 1 7));
  Alcotest.check_raises "eval length"
    (Invalid_argument "Decomposed.eval: tuple length mismatch") (fun () ->
      ignore (Decomposed.eval d [| 0 |]));
  Alcotest.check_raises "point mismatch"
    (Invalid_argument "Decomposed.point: tuple length mismatch") (fun () ->
      ignore (Decomposed.point ~sizes [| 0 |]));
  Alcotest.check_raises "relabel mismatch"
    (Invalid_argument "Decomposed.relabel: level count mismatch") (fun () ->
      ignore (Decomposed.relabel d ~new_sizes:[| 2 |] ~pick:(fun _ c -> c)))

let test_solver_errors () =
  let c = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Solver.transient: negative time") (fun () ->
      ignore (Solver.transient ~t:(-1.0) c [| 1.0; 0.0 |]));
  Alcotest.check_raises "transient size"
    (Invalid_argument "Solver.transient: initial size mismatch") (fun () ->
      ignore (Solver.transient ~t:1.0 c [| 1.0 |]));
  let op = Solver.operator_of_csr (Mdl_sparse.Csr.identity 2) in
  Alcotest.check_raises "operator transient size"
    (Invalid_argument "Solver.transient_operator: initial size mismatch") (fun () ->
      ignore (Solver.transient_operator ~t:1.0 ~lambda:1.0 op [| 1.0 |]));
  Alcotest.check_raises "power initial size"
    (Invalid_argument "Solver.power: initial size mismatch") (fun () ->
      ignore (Solver.power ~initial:[| 1.0 |] op));
  Alcotest.check_raises "not square"
    (Invalid_argument "Solver.operator_of_csr: not square") (fun () ->
      ignore (Solver.operator_of_csr (Mdl_sparse.Csr.of_triplets ~rows:1 ~cols:2 [])))

let test_measures_errors () =
  let c = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  let m =
    Mdl_ctmc.Mrp.make ~ctmc:c ~rewards:[| 1.0; 0.0 |]
      ~initial:(Mdl_ctmc.Mrp.point_initial 2 0)
  in
  Alcotest.check_raises "bad steps"
    (Invalid_argument "Measures.accumulated_reward: steps must be positive") (fun () ->
      ignore (Mdl_ctmc.Measures.accumulated_reward ~t:1.0 ~steps:0 m));
  Alcotest.check_raises "negative horizon"
    (Invalid_argument "Measures.accumulated_reward: negative horizon") (fun () ->
      ignore (Mdl_ctmc.Measures.accumulated_reward ~t:(-1.0) m))

let test_mdd_errors () =
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |] ] in
  let mdd = Mdl_md.Mdd.of_statespace ss in
  Alcotest.check_raises "index length"
    (Invalid_argument "Mdd.index: tuple length mismatch") (fun () ->
      ignore (Mdl_md.Mdd.index mdd [| 0 |]))

let test_restructure_errors () =
  let md = tiny_md () in
  Alcotest.check_raises "merge bad level"
    (Invalid_argument "Restructure.merge_adjacent: bad level") (fun () ->
      ignore (Mdl_md.Restructure.merge_adjacent md 2))

let test_matrix_market_errors () =
  Alcotest.check_raises "unsupported header"
    (Failure
       "Matrix_market: unsupported header \"%%MatrixMarket matrix coordinate complex general\"")
    (fun () ->
      ignore
        (Mdl_sparse.Matrix_market.of_string
           "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"));
  Alcotest.check_raises "empty input" (Failure "Matrix_market: empty input") (fun () ->
      ignore (Mdl_sparse.Matrix_market.of_string ""))

let test_kron_guard () =
  (* potential space above the flattening guard *)
  let n = 2049 in
  let k =
    Kronecker.make ~sizes:[| n; n |]
      [
        {
          Kronecker.label = "e";
          rate = 1.0;
          locals = [| Kronecker.identity_local n; Kronecker.identity_local n |];
        };
      ]
  in
  Alcotest.check_raises "to_csr guard"
    (Invalid_argument "Kronecker.to_csr: potential space too large") (fun () ->
      ignore (Kronecker.to_csr k))

let tests =
  [
    Alcotest.test_case "compositional errors" `Quick test_compositional_errors;
    Alcotest.test_case "compositional lumped-side validation" `Quick
      test_compositional_lumped_validation;
    Alcotest.test_case "average_vector empty class" `Quick test_average_vector_empty_class;
    Alcotest.test_case "level lumping errors" `Quick test_level_lumping_errors;
    Alcotest.test_case "md_solve errors" `Quick test_md_solve_errors;
    Alcotest.test_case "decomposed errors" `Quick test_decomposed_errors;
    Alcotest.test_case "solver errors" `Quick test_solver_errors;
    Alcotest.test_case "measures errors" `Quick test_measures_errors;
    Alcotest.test_case "mdd errors" `Quick test_mdd_errors;
    Alcotest.test_case "restructure errors" `Quick test_restructure_errors;
    Alcotest.test_case "matrix market errors" `Quick test_matrix_market_errors;
    Alcotest.test_case "kronecker flatten guard" `Quick test_kron_guard;
  ]

(* Tests for the refinable-partition data structure and the generic
   refinement engine. *)

module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner

let partition_testable = Alcotest.testable Partition.pp Partition.equal

let test_trivial_discrete () =
  let t = Partition.trivial 5 in
  Alcotest.(check int) "one class" 1 (Partition.num_classes t);
  Alcotest.(check int) "class size" 5 (Partition.class_size t 0);
  let d = Partition.discrete 5 in
  Alcotest.(check int) "five classes" 5 (Partition.num_classes d);
  Alcotest.(check bool) "discrete refines trivial" true (Partition.is_refinement_of d t);
  Alcotest.(check bool) "trivial does not refine discrete" false
    (Partition.is_refinement_of t d);
  let empty = Partition.trivial 0 in
  Alcotest.(check int) "empty has no class" 0 (Partition.num_classes empty)

let test_of_class_assignment () =
  let p = Partition.of_class_assignment [| 7; 3; 7; 3; 9 |] in
  Alcotest.(check int) "three classes" 3 (Partition.num_classes p);
  Alcotest.(check int) "same class" (Partition.class_of p 0) (Partition.class_of p 2);
  Alcotest.(check bool) "diff class" true (Partition.class_of p 0 <> Partition.class_of p 4);
  Alcotest.check_raises "negative label"
    (Invalid_argument "Partition.of_class_assignment: negative label") (fun () ->
      ignore (Partition.of_class_assignment [| -1 |]))

let test_group_by () =
  let p = Partition.group_by 6 (fun i -> i mod 3) compare in
  Alcotest.(check int) "three classes" 3 (Partition.num_classes p);
  Alcotest.(check int) "0 and 3 together" (Partition.class_of p 0) (Partition.class_of p 3)

let test_split () =
  let p = Partition.trivial 6 in
  let ids = Partition.split p 0 [ [| 0; 1; 2 |]; [| 3; 4 |]; [| 5 |] ] in
  Alcotest.(check int) "three ids" 3 (List.length ids);
  Alcotest.(check int) "three classes" 3 (Partition.num_classes p);
  Alcotest.(check int) "first group keeps id" 0 (List.hd ids);
  Alcotest.(check int) "element moved" (Partition.class_of p 5) (List.nth ids 2)

let test_split_validation () =
  let p = Partition.trivial 4 in
  Alcotest.check_raises "bad cover"
    (Invalid_argument "Partition.split: groups do not cover the class") (fun () ->
      ignore (Partition.split p 0 [ [| 0; 1 |] ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Partition.split: duplicate element") (fun () ->
      ignore (Partition.split p 0 [ [| 0; 1; 2 |]; [| 2 |] ]));
  let q = Partition.of_class_assignment [| 0; 0; 1; 1 |] in
  Alcotest.check_raises "element of other class"
    (Invalid_argument "Partition.split: element not in class") (fun () ->
      ignore (Partition.split q 0 [ [| 0 |]; [| 2 |] ]))

let test_split_noop () =
  let p = Partition.trivial 3 in
  let ids = Partition.split p 0 [ [| 0; 1; 2 |] ] in
  Alcotest.(check (list int)) "no-op" [ 0 ] ids;
  Alcotest.(check int) "still one class" 1 (Partition.num_classes p)

let test_refine_class_by () =
  let p = Partition.trivial 6 in
  let ids = Partition.refine_class_by p 0 (fun i -> i mod 2) compare in
  Alcotest.(check int) "two groups" 2 (List.length ids);
  Alcotest.(check int) "0 with 2" (Partition.class_of p 0) (Partition.class_of p 2)

let test_equal () =
  let p1 = Partition.of_class_assignment [| 0; 0; 1 |] in
  let p2 = Partition.of_class_assignment [| 5; 5; 2 |] in
  let p3 = Partition.of_class_assignment [| 0; 1; 1 |] in
  Alcotest.check partition_testable "label-independent equal" p1 p2;
  Alcotest.(check bool) "different" false (Partition.equal p1 p3)

(* A tiny refinement spec: split by reachability keys of a fixed
   functional graph; classes end up grouping states with equal behaviour
   with respect to successor membership counts. *)
let graph_spec edges n =
  {
    Refiner.size = n;
    key_compare = compare;
    splitter_keys =
      (fun (perm, first, len) ->
        (* key(s) = number of edges from s into the splitter class *)
        let in_c = Array.make n false in
        for i = first to first + len - 1 do
          in_c.(perm.(i)) <- true
        done;
        let counts = Hashtbl.create 16 in
        List.iter
          (fun (u, v) ->
            if in_c.(v) then
              Hashtbl.replace counts u (1 + Option.value ~default:0 (Hashtbl.find_opt counts u)))
          edges;
        Hashtbl.fold (fun s k acc -> (s, k) :: acc) counts []);
  }

let test_refiner_bisimulation_like () =
  (* 0 -> 1 -> 2 (sink), 3 -> 4 -> 2: states 0/3 and 1/4 should pair up. *)
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let spec = graph_spec edges 5 in
  let result = Refiner.comp_lumping spec ~initial:(Partition.trivial 5) in
  Alcotest.check partition_testable "classic bisimulation classes"
    (Partition.of_class_assignment [| 0; 1; 2; 0; 1 |])
    result;
  Alcotest.(check bool) "stable" true (Refiner.is_stable spec result)

let test_refiner_respects_initial () =
  let edges = [] in
  let spec = graph_spec edges 4 in
  let initial = Partition.of_class_assignment [| 0; 0; 1; 1 |] in
  let result = Refiner.comp_lumping spec ~initial in
  Alcotest.check partition_testable "no edges: initial unchanged" initial result;
  Alcotest.(check bool) "input not mutated" true
    (Partition.num_classes initial = 2)

let test_refiner_size_mismatch () =
  let spec = graph_spec [] 4 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Refiner.comp_lumping: partition size mismatch") (fun () ->
      ignore (Refiner.comp_lumping spec ~initial:(Partition.trivial 3)))

let test_view_iter_class () =
  let p = Partition.of_class_assignment [| 0; 1; 0; 1; 0 |] in
  let c0 = Partition.class_of p 0 in
  let perm, first, len = Partition.view p c0 in
  Alcotest.(check int) "slice length" 3 len;
  let slice = Array.sub perm first len in
  Array.sort compare slice;
  Alcotest.(check (array int)) "slice members" [| 0; 2; 4 |] slice;
  let seen = ref [] in
  Partition.iter_class (fun x -> seen := x :: !seen) p c0;
  Alcotest.(check (array int)) "iter_class agrees" slice
    (let a = Array.of_list !seen in
     Array.sort compare a;
     a);
  Alcotest.(check bool) "representative in class" true
    (Partition.class_of p (Partition.representative p c0) = c0)

let test_split_runs () =
  (* split {0..5} into runs [0;1], [2;3], [4;5] laid out as sorted members *)
  let p = Partition.trivial 6 in
  let members = [| 0; 1; 2; 3; 4; 5 |] in
  let bounds = [| 0; 2; 4; 6; 0; 0 |] in
  let ids = Partition.split_runs p 0 ~members ~bounds ~nruns:3 in
  Alcotest.(check int) "three ids" 3 (List.length ids);
  Alcotest.(check int) "three classes" 3 (Partition.num_classes p);
  Alcotest.(check int) "run 0 keeps id" 0 (List.hd ids);
  Alcotest.(check int) "0 with 1" (Partition.class_of p 0) (Partition.class_of p 1);
  Alcotest.(check int) "2 with 3" (Partition.class_of p 2) (Partition.class_of p 3);
  Alcotest.(check bool) "0 apart from 2" true
    (Partition.class_of p 0 <> Partition.class_of p 2);
  (* single-run split is a no-op returning the original id *)
  let q = Partition.trivial 3 in
  let ids = Partition.split_runs q 0 ~members:[| 2; 0; 1 |] ~bounds:[| 0; 3 |] ~nruns:1 in
  Alcotest.(check (list int)) "no-op" [ 0 ] ids;
  Alcotest.(check int) "still one class" 1 (Partition.num_classes q)

let test_split_runs_partial () =
  (* runs covering only part of the class: untouched members keep id *)
  let p = Partition.trivial 5 in
  let ids = Partition.split_runs p 0 ~members:[| 3; 4 |] ~bounds:[| 0; 2 |] ~nruns:1 in
  Alcotest.(check int) "two classes" 2 (Partition.num_classes p);
  Alcotest.(check int) "untouched keep id 0" 0 (Partition.class_of p 0);
  Alcotest.(check int) "0 with 1" (Partition.class_of p 0) (Partition.class_of p 1);
  (match ids with
  | [ old_id; fresh ] ->
      Alcotest.(check int) "parent id first" 0 old_id;
      Alcotest.(check int) "moved members in fresh class" fresh (Partition.class_of p 3);
      Alcotest.(check int) "3 with 4" (Partition.class_of p 3) (Partition.class_of p 4)
  | _ -> Alcotest.fail "expected [parent; fresh]")

let test_copy () =
  (* [copy] preserves class ids and member order, and the halves are
     independent afterwards — the contract the splitter-key cache's
     structural invalidation rests on. *)
  let p = Partition.of_class_assignment [| 0; 0; 1; 1; 1 |] in
  let q = Partition.copy p in
  Alcotest.check partition_testable "same classes" p q;
  for s = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "class id of %d preserved" s)
      (Partition.class_of p s) (Partition.class_of q s)
  done;
  let c0 = Partition.class_of p 0 in
  Alcotest.(check int) "representative preserved" (Partition.representative p c0)
    (Partition.representative q c0);
  let c2 = Partition.class_of q 2 in
  ignore (Partition.split q c2 [ [| 2 |]; [| 3; 4 |] ]);
  Alcotest.(check int) "original untouched by split of copy" 2 (Partition.num_classes p);
  Alcotest.(check int) "copy refined" 3 (Partition.num_classes q);
  ignore (Partition.split p c0 [ [| 0 |]; [| 1 |] ]);
  Alcotest.(check int) "copy untouched by split of original" 3 (Partition.num_classes q);
  Alcotest.(check int) "original refined" 3 (Partition.num_classes p)

let test_on_split_trace () =
  (* The split trace must report every actual split, parent id first,
     and account exactly for the blocks the run created. *)
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let spec = graph_spec edges 5 in
  let stats = Refiner.create_stats () in
  let trace = ref [] in
  let result =
    Refiner.comp_lumping ~stats
      ~on_split:(fun ~parent ~ids -> trace := (parent, ids) :: !trace)
      spec ~initial:(Partition.trivial 5)
  in
  Alcotest.(check bool) "some splits traced" true (!trace <> []);
  Alcotest.(check int) "one callback per split" stats.Refiner.splits
    (List.length !trace);
  List.iter
    (fun (parent, ids) ->
      Alcotest.(check bool) "at least two sub-blocks" true (List.length ids >= 2);
      Alcotest.(check int) "parent id listed first" parent (List.hd ids))
    !trace;
  Alcotest.(check int) "traced fresh ids = blocks_created"
    stats.Refiner.blocks_created
    (List.fold_left (fun acc (_, ids) -> acc + List.length ids - 1) 0 !trace);
  (* every traced id is a class id of the final partition (ids are
     stable once allocated) *)
  List.iter
    (fun (_, ids) ->
      List.iter
        (fun id ->
          Alcotest.(check bool) "traced id valid" true
            (id >= 0 && id < Partition.num_classes result))
        ids)
    !trace

(* ---- worklist bookkeeping / stats instrumentation ---- *)

let test_stats_all_discrete () =
  (* Discrete initial partition: nothing to split; every class is passed
     over as a splitter exactly once and no blocks are created. *)
  let n = 7 in
  let spec = graph_spec [ (0, 1); (1, 2); (2, 3) ] n in
  let stats = Refiner.create_stats () in
  let result = Refiner.comp_lumping ~stats spec ~initial:(Partition.discrete n) in
  Alcotest.(check int) "still discrete" n (Partition.num_classes result);
  Alcotest.(check int) "no splits" 0 stats.Refiner.splits;
  Alcotest.(check int) "no blocks created" 0 stats.Refiner.blocks_created;
  Alcotest.(check int) "one pass per initial class" n stats.Refiner.splitter_passes

let test_stats_giant_class () =
  (* One giant class refined to the bisimulation fixed point; block
     accounting must balance: final = initial + blocks_created. *)
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let spec = graph_spec edges 5 in
  let stats = Refiner.create_stats () in
  let result = Refiner.comp_lumping ~stats spec ~initial:(Partition.trivial 5) in
  Alcotest.(check int) "blocks_created = final - initial"
    (Partition.num_classes result - 1)
    stats.Refiner.blocks_created;
  Alcotest.(check bool) "some splits happened" true (stats.Refiner.splits > 0);
  Alcotest.(check bool) "splits <= blocks created" true
    (stats.Refiner.splits <= stats.Refiner.blocks_created);
  Alcotest.(check bool) "wall time recorded" true (stats.Refiner.wall_s >= 0.0)

let test_stats_singleton_mixed () =
  (* Singletons mixed with a large class; largest-block skips only make
     sense once a settled class splits. *)
  let n = 8 in
  let edges = [ (2, 0); (3, 0); (4, 1); (5, 1); (6, 0); (6, 1); (7, 0); (7, 1) ] in
  let spec = graph_spec edges n in
  let initial = Partition.of_class_assignment [| 1; 2; 0; 0; 0; 0; 0; 0 |] in
  let stats = Refiner.create_stats () in
  let result = Refiner.comp_lumping ~stats spec ~initial in
  Alcotest.(check bool) "stable" true (Refiner.is_stable spec result);
  Alcotest.(check int) "blocks_created = final - initial"
    (Partition.num_classes result - Partition.num_classes initial)
    stats.Refiner.blocks_created;
  (* classes: {0} {1} {2,3} {4,5} {6,7} *)
  Alcotest.(check int) "fixed point" 5 (Partition.num_classes result);
  Alcotest.(check bool) "key evaluations counted" true (stats.Refiner.key_evals > 0)

let test_add_stats () =
  let a = Refiner.create_stats () in
  let b = Refiner.create_stats () in
  a.Refiner.splits <- 2;
  a.Refiner.wall_s <- 0.5;
  a.Refiner.intern_keys <- 5;
  b.Refiner.splits <- 3;
  b.Refiner.key_evals <- 7;
  b.Refiner.wall_s <- 0.25;
  b.Refiner.intern_keys <- 3;
  Refiner.add_stats a b;
  Alcotest.(check int) "splits summed" 5 a.Refiner.splits;
  Alcotest.(check int) "key_evals summed" 7 a.Refiner.key_evals;
  Alcotest.(check (float 1e-9)) "wall summed" 0.75 a.Refiner.wall_s;
  Alcotest.(check int) "intern_keys takes max" 5 a.Refiner.intern_keys;
  b.Refiner.intern_keys <- 9;
  Refiner.add_stats a b;
  Alcotest.(check int) "intern_keys max updates" 9 a.Refiner.intern_keys

(* ---- specialised pipelines: interned keys, counting sort, float ---- *)

(* The same graph keys as [graph_spec], fed through the interned-key
   pipeline: ranks come from hash-consing the int counts. *)
let interned_graph_spec edges n =
  let spec = graph_spec edges n in
  {
    Refiner.isize = n;
    itable = Refiner.intern_table ~hash:Hashtbl.hash ~equal:Int.equal ();
    isplitter_keys = spec.Refiner.splitter_keys;
  }

let test_use_counting_sort_threshold () =
  (* Pin the decision boundary: keys must repeat (2 * alphabet <= m) and
     the pass must not be tiny (m >= 16). *)
  Alcotest.(check bool) "small alphabet, big pass" true
    (Refiner.use_counting_sort ~m:100 ~alphabet:10);
  Alcotest.(check bool) "boundary 2a = m" true
    (Refiner.use_counting_sort ~m:16 ~alphabet:8);
  Alcotest.(check bool) "alphabet too large" false
    (Refiner.use_counting_sort ~m:100 ~alphabet:80);
  Alcotest.(check bool) "tiny pass" false (Refiner.use_counting_sort ~m:8 ~alphabet:2);
  Alcotest.(check bool) "just below m floor" false
    (Refiner.use_counting_sort ~m:15 ~alphabet:1)

let test_counting_sort_pipeline () =
  (* 100 states, every state has edges into {0, 1}: big splitter passes
     with a tiny key alphabet, so the counting sort must fire — and the
     result must match the generic pipeline exactly. *)
  let n = 100 in
  let edges =
    List.concat_map
      (fun s -> if s mod 3 = 0 then [ (s, 0); (s, 1) ] else [ (s, 0) ])
      (List.init n Fun.id)
  in
  let spec = graph_spec edges n in
  let stats = Refiner.create_stats () in
  let p_int =
    Refiner.comp_lumping_interned ~stats (interned_graph_spec edges n)
      ~initial:(Partition.trivial n)
  in
  let p_gen = Refiner.comp_lumping spec ~initial:(Partition.trivial n) in
  Alcotest.check partition_testable "counting-sorted = generic" p_gen p_int;
  Alcotest.(check bool) "counting sort fired" true (stats.Refiner.counting_sort_passes > 0);
  Alcotest.(check int) "all passes interned" stats.Refiner.splitter_passes
    stats.Refiner.interned_passes;
  Alcotest.(check int) "no fallback passes" 0 stats.Refiner.fallback_passes;
  Alcotest.(check bool) "alphabet recorded" true (stats.Refiner.intern_keys > 0)

let test_pipeline_counters () =
  (* Each entry point attributes every splitter pass to its own
     pipeline counter. *)
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let n = 5 in
  let spec = graph_spec edges n in
  let gen_stats = Refiner.create_stats () in
  let p_gen = Refiner.comp_lumping ~stats:gen_stats spec ~initial:(Partition.trivial n) in
  Alcotest.(check int) "generic: all passes fallback" gen_stats.Refiner.splitter_passes
    gen_stats.Refiner.fallback_passes;
  Alcotest.(check int) "generic: no float passes" 0 gen_stats.Refiner.float_passes;
  Alcotest.(check int) "generic: no interned passes" 0 gen_stats.Refiner.interned_passes;
  let int_stats = Refiner.create_stats () in
  let p_int =
    Refiner.comp_lumping_interned ~stats:int_stats (interned_graph_spec edges n)
      ~initial:(Partition.trivial n)
  in
  Alcotest.check partition_testable "interned = generic" p_gen p_int;
  Alcotest.(check int) "interned: all passes interned" int_stats.Refiner.splitter_passes
    int_stats.Refiner.interned_passes;
  Alcotest.(check int) "interned: no fallback" 0 int_stats.Refiner.fallback_passes;
  let r =
    Mdl_sparse.Csr.of_triplets ~rows:4 ~cols:4
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 0, 1.0) ]
  in
  let flt_stats = Refiner.create_stats () in
  ignore
    (Refiner.comp_lumping_float ~stats:flt_stats
       (Mdl_lumping.State_lumping.float_spec Ordinary r)
       ~initial:(Partition.trivial 4));
  Alcotest.(check int) "float: all passes float" flt_stats.Refiner.splitter_passes
    flt_stats.Refiner.float_passes;
  Alcotest.(check int) "float: no fallback" 0 flt_stats.Refiner.fallback_passes

let test_intern_table_reuse () =
  (* One table across several runs: cleared per pass, storage retained,
     high-water mark preserved. *)
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2); (2, 0) ] in
  let n = 5 in
  let ispec = interned_graph_spec edges n in
  let p1 = Refiner.comp_lumping_interned ispec ~initial:(Partition.trivial n) in
  let hw1 = Refiner.intern_table_size ispec.Refiner.itable in
  Alcotest.(check bool) "alphabet seen" true (hw1 > 0);
  let p2 = Refiner.comp_lumping_interned ispec ~initial:(Partition.trivial n) in
  Alcotest.check partition_testable "reused table, same fixed point" p1 p2;
  Alcotest.(check int) "high-water stable across reuse" hw1
    (Refiner.intern_table_size ispec.Refiner.itable)

(* The same graph keys again, fed through the ranked pipeline: keys are
   pre-interned to stable gids through a persistent table (the
   Key_cache arrangement) and handed over as parallel arrays. *)
let ranked_graph_spec edges n =
  let spec = graph_spec edges n in
  let table = Refiner.intern_table ~hash:Hashtbl.hash ~equal:Int.equal () in
  {
    Refiner.rsize = n;
    rsplitter_keys =
      (fun c ->
        let keyed = spec.Refiner.splitter_keys c in
        let m = List.length keyed in
        let states = Array.make m 0 and gids = Array.make m 0 in
        List.iteri
          (fun i (s, k) ->
            states.(i) <- s;
            gids.(i) <- Refiner.intern table k)
          keyed;
        (states, gids));
  }

let test_ranked_pipeline () =
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let n = 5 in
  let initial = Partition.trivial n in
  let p_gen = Refiner.comp_lumping (graph_spec edges n) ~initial in
  let stats = Refiner.create_stats () in
  let p_rnk = Refiner.comp_lumping_ranked ~stats (ranked_graph_spec edges n) ~initial in
  Alcotest.check partition_testable "ranked = generic" p_gen p_rnk;
  (* ranked passes are reported as interned passes so cached and
     uncached runs stay comparable in the stats record *)
  Alcotest.(check int) "all passes interned" stats.Refiner.splitter_passes
    stats.Refiner.interned_passes;
  Alcotest.(check int) "no fallback passes" 0 stats.Refiner.fallback_passes;
  Alcotest.(check bool) "alphabet recorded" true (stats.Refiner.intern_keys > 0);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Refiner.comp_lumping_ranked: partition size mismatch") (fun () ->
      ignore
        (Refiner.comp_lumping_ranked (ranked_graph_spec edges n)
           ~initial:(Partition.trivial 3)))

let test_ranked_counting_sort () =
  (* Big passes over a tiny gid alphabet: the ranked pipeline must reach
     the counting sort and still agree with the generic engine. *)
  let n = 100 in
  let edges =
    List.concat_map
      (fun s -> if s mod 3 = 0 then [ (s, 0); (s, 1) ] else [ (s, 0) ])
      (List.init n Fun.id)
  in
  let stats = Refiner.create_stats () in
  let p_rnk =
    Refiner.comp_lumping_ranked ~stats (ranked_graph_spec edges n)
      ~initial:(Partition.trivial n)
  in
  let p_gen = Refiner.comp_lumping (graph_spec edges n) ~initial:(Partition.trivial n) in
  Alcotest.check partition_testable "ranked counting sort = generic" p_gen p_rnk;
  Alcotest.(check bool) "counting sort fired" true (stats.Refiner.counting_sort_passes > 0)

let test_run_dispatch () =
  let edges = [ (0, 1); (1, 2); (3, 4); (4, 2) ] in
  let n = 5 in
  let initial = Partition.trivial n in
  let p_gen = Refiner.run (Refiner.Spec (graph_spec edges n)) ~initial in
  let p_int = Refiner.run (Refiner.Interned_spec (interned_graph_spec edges n)) ~initial in
  Alcotest.check partition_testable "packed dispatch agrees" p_gen p_int;
  let r = Mdl_sparse.Csr.of_triplets ~rows:3 ~cols:3 [ (0, 1, 2.0); (1, 2, 2.0) ] in
  let p_f1 =
    Refiner.run
      (Refiner.Float_spec (Mdl_lumping.State_lumping.float_spec Ordinary r))
      ~initial:(Partition.trivial 3)
  in
  let p_f2 =
    Refiner.comp_lumping
      (Mdl_lumping.State_lumping.refiner_spec Ordinary r)
      ~initial:(Partition.trivial 3)
  in
  Alcotest.check partition_testable "float dispatch agrees" p_f2 p_f1

(* ---- differential: in-place engine vs the preserved seed engine ---- *)

module Refiner_reference = Mdl_partition.Refiner_reference

let test_differential_oracle_chains () =
  (* Oracle-generated flat chains through the real float-keyed spec. *)
  List.iter
    (fun (states, extra, planted, seed) ->
      let c = { Mdl_oracle.Spec.states; extra; planted; seed } in
      let r = Mdl_oracle.Gen_chain.rate_matrix (Mdl_util.Prng.of_seed seed) c in
      List.iter
        (fun mode ->
          let spec = Mdl_lumping.State_lumping.refiner_spec mode r in
          let initial =
            match mode with
            | Mdl_lumping.State_lumping.Ordinary -> Partition.trivial states
            | Mdl_lumping.State_lumping.Exact ->
                Partition.group_by states
                  (fun s -> Mdl_util.Floatx.quantize (Mdl_sparse.Csr.row_sum r s))
                  Float.compare
          in
          let p_ref = Refiner_reference.comp_lumping spec ~initial in
          let p_new = Refiner.comp_lumping spec ~initial in
          let p_flt =
            Refiner.comp_lumping_float
              (Mdl_lumping.State_lumping.float_spec mode r)
              ~initial
          in
          Alcotest.check partition_testable
            (Printf.sprintf "chain n=%d seed=%d same fixed point" states seed)
            p_ref p_new;
          Alcotest.check partition_testable
            (Printf.sprintf "chain n=%d seed=%d float pipeline agrees" states seed)
            p_ref p_flt;
          Alcotest.(check bool) "stable" true (Refiner.is_stable spec p_new))
        [ Mdl_lumping.State_lumping.Ordinary; Mdl_lumping.State_lumping.Exact ])
    [ (20, 40, true, 3); (40, 120, true, 17); (60, 200, false, 23); (80, 0, true, 5) ]

let qcheck_differential =
  let open QCheck in
  let gen_graph =
    Gen.(
      let* n = int_range 2 14 in
      let+ edges =
        list_size (int_range 0 30) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      (n, edges))
  in
  let arb_graph =
    make
      ~print:(fun (n, e) ->
        Printf.sprintf "n=%d %s" n
          (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) e)))
      gen_graph
  in
  let gen_weighted =
    Gen.(
      let* n = int_range 2 14 in
      let+ triplets =
        list_size (int_range 0 40)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
             (map (fun k -> float_of_int (k + 1) /. 2.0) (int_range 0 3)))
      in
      (n, triplets))
  in
  let arb_weighted =
    make
      ~print:(fun (n, t) ->
        Printf.sprintf "n=%d [%s]" n
          (String.concat ";"
             (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
      gen_weighted
  in
  [
    Test.make ~count:300 ~name:"in-place engine matches seed engine on random graphs"
      arb_graph (fun (n, edges) ->
        let spec = graph_spec edges n in
        let initial = Partition.group_by n (fun i -> i mod 3) compare in
        let p_ref = Refiner_reference.comp_lumping spec ~initial in
        let p_new = Refiner.comp_lumping spec ~initial in
        Partition.equal p_ref p_new
        && Refiner.is_stable spec p_new
        && Partition.is_refinement_of p_new initial);
    Test.make ~count:300 ~name:"interned pipeline matches generic on random graphs"
      arb_graph (fun (n, edges) ->
        let initial = Partition.group_by n (fun i -> i mod 3) compare in
        let p_gen = Refiner.comp_lumping (graph_spec edges n) ~initial in
        let p_int = Refiner.comp_lumping_interned (interned_graph_spec edges n) ~initial in
        Partition.equal p_gen p_int);
    Test.make ~count:300 ~name:"ranked pipeline matches generic on random graphs"
      arb_graph (fun (n, edges) ->
        let initial = Partition.group_by n (fun i -> i mod 3) compare in
        let p_gen = Refiner.comp_lumping (graph_spec edges n) ~initial in
        let p_rnk = Refiner.comp_lumping_ranked (ranked_graph_spec edges n) ~initial in
        Partition.equal p_gen p_rnk);
    Test.make ~count:300
      ~name:"float pipeline matches generic and seed engines on random flat specs"
      arb_weighted (fun (n, triplets) ->
        let r = Mdl_sparse.Csr.of_triplets ~rows:n ~cols:n triplets in
        let initial = Partition.group_by n (fun i -> i mod 3) compare in
        List.for_all
          (fun mode ->
            let spec = Mdl_lumping.State_lumping.refiner_spec mode r in
            let p_ref = Refiner_reference.comp_lumping spec ~initial in
            let p_gen =
              Mdl_lumping.State_lumping.coarsest ~generic:true mode r ~initial
            in
            let p_flt = Mdl_lumping.State_lumping.coarsest mode r ~initial in
            Partition.equal p_ref p_gen && Partition.equal p_gen p_flt)
          [ Mdl_lumping.State_lumping.Ordinary; Mdl_lumping.State_lumping.Exact ]);
  ]

let qcheck_tests =
  let open QCheck in
  let gen_assignment =
    Gen.(
      let* n = int_range 1 12 in
      let+ a = array_size (return n) (int_range 0 3) in
      a)
  in
  let arb_assignment =
    make
      ~print:(fun a ->
        String.concat "," (List.map string_of_int (Array.to_list a)))
      gen_assignment
  in
  let gen_graph =
    Gen.(
      let* n = int_range 2 10 in
      let+ edges =
        list_size (int_range 0 20) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      (n, edges))
  in
  let arb_graph =
    make
      ~print:(fun (n, e) ->
        Printf.sprintf "n=%d %s" n
          (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) e)))
      gen_graph
  in
  [
    Test.make ~count:300 ~name:"of_class_assignment roundtrip" arb_assignment (fun a ->
        let p = Partition.of_class_assignment a in
        Partition.equal p (Partition.of_class_assignment (Partition.to_class_assignment p)));
    Test.make ~count:300 ~name:"group_by classes have constant key" arb_assignment
      (fun a ->
        let n = Array.length a in
        let p = Partition.group_by n (fun i -> a.(i)) compare in
        Array.for_all
          (fun members ->
            Array.for_all (fun x -> a.(x) = a.(members.(0))) members)
          (Partition.classes p));
    Test.make ~count:200 ~name:"refiner output refines initial and is stable" arb_graph
      (fun (n, edges) ->
        let spec = graph_spec edges n in
        let initial = Partition.group_by n (fun i -> i mod 2) compare in
        let result = Refiner.comp_lumping spec ~initial in
        Partition.is_refinement_of result initial && Refiner.is_stable spec result);
  ]

let tests =
  [
    Alcotest.test_case "trivial/discrete" `Quick test_trivial_discrete;
    Alcotest.test_case "of_class_assignment" `Quick test_of_class_assignment;
    Alcotest.test_case "group_by" `Quick test_group_by;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "split validation" `Quick test_split_validation;
    Alcotest.test_case "split no-op" `Quick test_split_noop;
    Alcotest.test_case "refine_class_by" `Quick test_refine_class_by;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "on_split trace" `Quick test_on_split_trace;
    Alcotest.test_case "refiner bisimulation-like" `Quick test_refiner_bisimulation_like;
    Alcotest.test_case "refiner respects initial" `Quick test_refiner_respects_initial;
    Alcotest.test_case "refiner size mismatch" `Quick test_refiner_size_mismatch;
    Alcotest.test_case "view/iter_class" `Quick test_view_iter_class;
    Alcotest.test_case "split_runs" `Quick test_split_runs;
    Alcotest.test_case "split_runs partial cover" `Quick test_split_runs_partial;
    Alcotest.test_case "stats: all-discrete initial" `Quick test_stats_all_discrete;
    Alcotest.test_case "stats: one giant class" `Quick test_stats_giant_class;
    Alcotest.test_case "stats: singletons + large class" `Quick test_stats_singleton_mixed;
    Alcotest.test_case "stats: add_stats" `Quick test_add_stats;
    Alcotest.test_case "counting-sort threshold" `Quick test_use_counting_sort_threshold;
    Alcotest.test_case "counting-sort pipeline" `Quick test_counting_sort_pipeline;
    Alcotest.test_case "per-pipeline counters" `Quick test_pipeline_counters;
    Alcotest.test_case "intern table reuse" `Quick test_intern_table_reuse;
    Alcotest.test_case "ranked pipeline" `Quick test_ranked_pipeline;
    Alcotest.test_case "ranked counting sort" `Quick test_ranked_counting_sort;
    Alcotest.test_case "run dispatch" `Quick test_run_dispatch;
    Alcotest.test_case "differential: oracle chains" `Quick test_differential_oracle_chains;
  ]
  @ List.map QCheck_alcotest.to_alcotest (qcheck_tests @ qcheck_differential)

(* Unit and property tests for Mdl_util. *)

module Dynarray = Mdl_util.Dynarray
module Floatx = Mdl_util.Floatx
module Prng = Mdl_util.Prng
module Hashx = Mdl_util.Hashx
module Shard_map = Mdl_util.Shard_map

let test_dynarray_push_get () =
  let t = Dynarray.create () in
  for i = 0 to 99 do
    Dynarray.push t (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dynarray.length t);
  Alcotest.(check int) "get 7" 49 (Dynarray.get t 7);
  Alcotest.(check int) "get 99" 9801 (Dynarray.get t 99)

let test_dynarray_pop () =
  let t = Dynarray.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Dynarray.pop t);
  Alcotest.(check int) "len after pop" 2 (Dynarray.length t);
  Alcotest.(check int) "pop" 2 (Dynarray.pop t);
  Alcotest.(check int) "pop" 1 (Dynarray.pop t);
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarray.pop: empty") (fun () ->
      ignore (Dynarray.pop t))

let test_dynarray_bounds () =
  let t = Dynarray.of_list [ 10 ] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Dynarray.get: index 1 out of bounds [0,1)") (fun () ->
      ignore (Dynarray.get t 1));
  Alcotest.check_raises "set oob"
    (Invalid_argument "Dynarray.set: index -1 out of bounds [0,1)") (fun () ->
      Dynarray.set t (-1) 0)

let test_dynarray_sort () =
  let t = Dynarray.of_list [ 3; 1; 2 ] in
  Dynarray.sort compare t;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Dynarray.to_list t)

let test_dynarray_iterators () =
  let t = Dynarray.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Dynarray.fold_left ( + ) 0 t);
  Alcotest.(check bool) "exists" true (Dynarray.exists (fun x -> x = 3) t);
  Alcotest.(check bool) "not exists" false (Dynarray.exists (fun x -> x = 9) t);
  let sum = ref 0 in
  Dynarray.iteri (fun i x -> sum := !sum + (i * x)) t;
  Alcotest.(check int) "iteri" 20 !sum

let test_floatx_approx () =
  Alcotest.(check bool) "eq exact" true (Floatx.approx_eq 1.0 1.0);
  Alcotest.(check bool) "eq close" true (Floatx.approx_eq 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "neq" false (Floatx.approx_eq 1.0 1.001);
  Alcotest.(check bool) "near zero" true (Floatx.approx_eq 0.0 1e-12);
  Alcotest.(check bool) "relative large" true (Floatx.approx_eq 1e12 (1e12 +. 1.0));
  Alcotest.(check int) "compare eq" 0 (Floatx.compare_approx 2.0 (2.0 +. 1e-13));
  Alcotest.(check bool) "compare lt" true (Floatx.compare_approx 1.0 2.0 < 0)

let test_floatx_quantize () =
  (* same bucket -> identical representative (bucket equality is
     transitive, unlike compare_approx) *)
  Alcotest.(check (float 0.0)) "close values identical" (Floatx.quantize 1.0)
    (Floatx.quantize (1.0 +. 1e-12));
  Alcotest.(check bool) "distant values differ" true
    (Floatx.quantize 1.0 <> Floatx.quantize 1.001);
  Alcotest.(check (float 0.0)) "negative zero merged" (Floatx.quantize 0.0)
    (Floatx.quantize (-0.0));
  Alcotest.(check bool) "plus zero positive sign" true
    (1.0 /. Floatx.quantize (-0.0) > 0.0);
  Alcotest.(check (float 0.0)) "idempotent" (Floatx.quantize 2.5)
    (Floatx.quantize (Floatx.quantize 2.5));
  (* overflow-of-the-grid passthrough *)
  Alcotest.(check (float 0.0)) "huge value passes through" Float.max_float
    (Floatx.quantize Float.max_float);
  Alcotest.(check bool) "infinity passes through" true
    (Floatx.quantize Float.infinity = Float.infinity);
  (* explicit eps *)
  Alcotest.(check (float 0.0)) "eps grid" 1.5 (Floatx.quantize ~eps:0.5 1.4)

let test_timer_monotonic () =
  let t = Mdl_util.Timer.start () in
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  let e1 = Mdl_util.Timer.elapsed_s t in
  Alcotest.(check bool) "elapsed non-negative" true (e1 >= 0.0);
  let e2 = Mdl_util.Timer.elapsed_s t in
  Alcotest.(check bool) "elapsed non-decreasing" true (e2 >= e1);
  let r, s = Mdl_util.Timer.time (fun () -> !x) in
  Alcotest.(check bool) "time returns result" true (r > 0);
  Alcotest.(check bool) "time non-negative" true (s >= 0.0)

let test_timer_now_ns_monotonic () =
  (* The raw monotonic clock behind the observability spans: 1e5
     consecutive reads must never decrease, and the whole sweep must
     advance the clock by a representable (positive) amount. *)
  let n = 100_000 in
  let prev = ref (Mdl_util.Timer.now_ns ()) in
  let first = !prev in
  for _ = 1 to n do
    let t = Mdl_util.Timer.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "now_ns went backwards: %Ld after %Ld" t !prev;
    prev := t
  done;
  Alcotest.(check bool) "clock advanced" true (Int64.compare !prev first > 0);
  let t0 = Mdl_util.Timer.start () in
  let e = Mdl_util.Timer.elapsed_ns t0 in
  Alcotest.(check bool) "elapsed_ns non-negative" true (Int64.compare e 0L >= 0)

let test_dynarray_no_leak () =
  (* pop and clear must drop references to the stored elements so the GC
     can collect them (the slots are junk-filled / released) *)
  let t = Dynarray.create () in
  let w = Weak.create 2 in
  Dynarray.push t (Bytes.create 16);
  Dynarray.push t (Bytes.create 16);
  Weak.set w 0 (Some (Dynarray.get t 0));
  Weak.set w 1 (Some (Dynarray.get t 1));
  ignore (Sys.opaque_identity (Dynarray.pop t));
  Gc.full_major ();
  Alcotest.(check bool) "popped element collectable" true (Weak.get w 1 = None);
  Alcotest.(check bool) "remaining element alive" true (Weak.get w 0 <> None);
  Dynarray.clear t;
  Gc.full_major ();
  Alcotest.(check bool) "cleared elements collectable" true (Weak.get w 0 = None);
  Alcotest.(check int) "cleared length" 0 (Dynarray.length t);
  (* still usable after clear *)
  Dynarray.push t (Bytes.create 16);
  Alcotest.(check int) "push after clear" 1 (Dynarray.length t)

let test_sortx () =
  let n = 200 in
  let g = Prng.of_seed 99 in
  let keys = Array.init n (fun _ -> Prng.int g 20) in
  let idx = Array.init n (fun i -> i) in
  Mdl_util.Sortx.sort_by (fun a b -> compare keys.(a) keys.(b)) idx;
  for i = 1 to n - 1 do
    let a = idx.(i - 1) and b = idx.(i) in
    if keys.(a) > keys.(b) then Alcotest.fail "not sorted";
    (* stability: equal keys keep original order *)
    if keys.(a) = keys.(b) && a > b then Alcotest.fail "not stable"
  done;
  let empty = [||] in
  Mdl_util.Sortx.sort_by compare empty;
  Alcotest.(check (array int)) "empty ok" [||] empty

(* Naive model of the fused run sorts: stable sort of (cls, key, state)
   triples, only the first n entries, trailing scratch untouched. *)
let check_sort_runs ~sort ~pp_key cls keys states n =
  let expect =
    Array.init n (fun i -> (cls.(i), keys.(i), states.(i)))
  in
  Array.stable_sort compare expect;
  let tail_c = Array.sub cls n (Array.length cls - n) in
  let tail_k = Array.sub keys n (Array.length keys - n) in
  let tail_s = Array.sub states n (Array.length states - n) in
  sort ~cls ~keys ~states n;
  for i = 0 to n - 1 do
    let c, k, s = expect.(i) in
    if cls.(i) <> c || keys.(i) <> k || states.(i) <> s then
      Alcotest.fail
        (Printf.sprintf "entry %d: got (%d,%s,%d) want (%d,%s,%d)" i cls.(i)
           (pp_key keys.(i)) states.(i) c (pp_key k) s)
  done;
  Alcotest.(check (array int)) "cls tail untouched" tail_c
    (Array.sub cls n (Array.length cls - n));
  Alcotest.(check (array int)) "state tail untouched" tail_s
    (Array.sub states n (Array.length states - n));
  if tail_k <> Array.sub keys n (Array.length keys - n) then
    Alcotest.fail "key tail touched"

let test_sort_runs_fused () =
  let g = Prng.of_seed 1234 in
  for trial = 0 to 49 do
    let n = Prng.int g 64 in
    let cap = n + Prng.int g 8 in
    ignore trial;
    let cls = Array.init cap (fun _ -> Prng.int g 5) in
    let states = Array.init cap (fun i -> i) in
    let fkeys = Array.init cap (fun _ -> float_of_int (Prng.int g 6) /. 2.0) in
    check_sort_runs ~sort:Mdl_util.Sortx.sort_runs_float ~pp_key:string_of_float
      (Array.copy cls) fkeys (Array.copy states) n;
    let ikeys = Array.init cap (fun _ -> Prng.int g 6) in
    check_sort_runs ~sort:Mdl_util.Sortx.sort_runs_int ~pp_key:string_of_int
      (Array.copy cls) ikeys (Array.copy states) n
  done

let test_kahan () =
  let a = Array.make 10_000 0.1 in
  Alcotest.(check bool) "kahan sum" true
    (Float.abs (Floatx.sum_kahan a -. 1000.0) < 1e-10)

let test_prng_deterministic () =
  let g1 = Prng.create 42L and g2 = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 g1) (Prng.int64 g2)
  done

let test_prng_split_independent () =
  let g = Prng.create 7L in
  let g' = Prng.split g in
  let a = Prng.int64 g and b = Prng.int64 g' in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_prng_bounds () =
  let g = Prng.create 1L in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Prng.float g 2.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_of_seed_fork () =
  (* of_seed is deterministic in the int seed *)
  let a = Prng.of_seed 42 and b = Prng.of_seed 42 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "of_seed same stream" (Prng.int64 a) (Prng.int64 b)
  done;
  Alcotest.(check bool) "different seeds differ" true
    (Prng.int64 (Prng.of_seed 1) <> Prng.int64 (Prng.of_seed 2));
  (* fork is deterministic, keyed, and does not advance the parent *)
  let master = Prng.of_seed 7 in
  let before = Prng.int64 (Prng.fork master 0) in
  let f1 = Prng.int64 (Prng.fork master 1) in
  let f1' = Prng.int64 (Prng.fork master 1) in
  Alcotest.(check int64) "fork keyed deterministically" f1 f1';
  Alcotest.(check int64) "fork does not advance parent" before
    (Prng.int64 (Prng.fork master 0));
  Alcotest.(check bool) "distinct keys give distinct streams" true (before <> f1);
  (* streams from distinct keys look independent: no pairwise
     collisions across a modest family *)
  let firsts = Array.init 64 (fun k -> Prng.int64 (Prng.fork master k)) in
  let tbl = Hashtbl.create 64 in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) firsts;
  Alcotest.(check int) "64 forks, 64 distinct first draws" 64 (Hashtbl.length tbl)

let test_hashx () =
  Alcotest.(check bool) "combine order-sensitive" true
    (Hashx.combine 1 2 <> Hashx.combine 2 1);
  Alcotest.(check bool) "float hash distinguishes" true
    (Hashx.float 1.0 <> Hashx.float 2.0);
  Alcotest.(check int) "int_array stable" (Hashx.int_array [| 1; 2; 3 |])
    (Hashx.int_array [| 1; 2; 3 |])

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:200 ~name:"dynarray to_array of_array roundtrip"
      (small_list int) (fun l ->
        Dynarray.to_list (Dynarray.of_list l) = l);
    Test.make ~count:200 ~name:"prng int bound respected"
      (pair (int_bound 1000) small_int) (fun (bound, seed) ->
        let bound = bound + 1 in
        let g = Prng.create (Int64.of_int seed) in
        let x = Prng.int g bound in
        x >= 0 && x < bound);
    Test.make ~count:200 ~name:"approx_eq reflexive" float (fun f ->
        (Float.is_nan f) || Floatx.approx_eq f f);
  ]

let shard_map () =
  Shard_map.create ~hash:Hashtbl.hash ~equal:Int.equal ()

let test_shard_map_basic () =
  let m = shard_map () in
  Alcotest.(check (option string)) "empty find" None (Shard_map.find m 7);
  Alcotest.(check string) "add returns the value" "a" (Shard_map.add m 7 "a");
  Alcotest.(check (option string)) "find after add" (Some "a") (Shard_map.find m 7);
  (* First writer wins: a second add under the same key is discarded and
     the existing binding returned. *)
  Alcotest.(check string) "first writer wins" "a" (Shard_map.add m 7 "b");
  Alcotest.(check (option string)) "binding unchanged" (Some "a") (Shard_map.find m 7);
  Alcotest.(check int) "size counts distinct keys" 1 (Shard_map.size m);
  for i = 0 to 999 do
    ignore (Shard_map.add m i (string_of_int i))
  done;
  Alcotest.(check int) "size after growth" 1000 (Shard_map.size m);
  for i = 0 to 999 do
    let expect = if i = 7 then "a" (* first writer still wins *) else string_of_int i in
    if Shard_map.find m i <> Some expect then
      Alcotest.failf "lost binding %d across growth" i
  done;
  Shard_map.clear m;
  Alcotest.(check int) "clear empties" 0 (Shard_map.size m);
  Alcotest.(check (option string)) "cleared binding gone" None (Shard_map.find m 7)

let test_shard_map_concurrent () =
  (* Racing adds over overlapping keys from several domains: every key
     ends with exactly one binding, and concurrent finds never observe a
     torn bucket.  All writers use value = key so the winner is not
     observable — only presence and size are. *)
  let m = shard_map () in
  let domains = 4 and keys = 2000 in
  let workers =
    List.init domains (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to keys - 1 do
              let k = (i + (w * 17)) mod keys in
              let v = Shard_map.add m k k in
              if v <> k then raise Exit;
              match Shard_map.find m (Prng.int (Prng.create (Int64.of_int i)) keys) with
              | Some x when x < 0 -> raise Exit
              | _ -> ()
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "every key bound once" keys (Shard_map.size m);
  for k = 0 to keys - 1 do
    if Shard_map.find m k <> Some k then Alcotest.failf "key %d lost in the race" k
  done

let tests =
  [
    Alcotest.test_case "dynarray push/get" `Quick test_dynarray_push_get;
    Alcotest.test_case "shard map basics" `Quick test_shard_map_basic;
    Alcotest.test_case "shard map concurrent adds" `Quick test_shard_map_concurrent;
    Alcotest.test_case "dynarray pop" `Quick test_dynarray_pop;
    Alcotest.test_case "dynarray bounds" `Quick test_dynarray_bounds;
    Alcotest.test_case "dynarray sort" `Quick test_dynarray_sort;
    Alcotest.test_case "dynarray iterators" `Quick test_dynarray_iterators;
    Alcotest.test_case "floatx approx" `Quick test_floatx_approx;
    Alcotest.test_case "floatx quantize" `Quick test_floatx_quantize;
    Alcotest.test_case "timer monotonic" `Quick test_timer_monotonic;
    Alcotest.test_case "timer now_ns monotonic 1e5" `Quick test_timer_now_ns_monotonic;
    Alcotest.test_case "dynarray no space leak" `Quick test_dynarray_no_leak;
    Alcotest.test_case "sortx stable sort" `Quick test_sortx;
    Alcotest.test_case "sortx fused run sorts" `Quick test_sort_runs_fused;
    Alcotest.test_case "kahan summation" `Quick test_kahan;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng of_seed/fork" `Quick test_prng_of_seed_fork;
    Alcotest.test_case "hashx" `Quick test_hashx;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

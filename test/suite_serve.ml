(* Tests for the lumpd service layer (Mdl_serve): the JSON codec, the
   typed protocol and its framing, and the daemon's robustness shell —
   deadlines, backpressure, graceful drain — plus the end-to-end pin
   that results over the socket are bit-identical to in-process
   [Compositional.lump_sweep].

   The server enables the process-global metrics registry; every test
   that boots one restores the disabled state it found. *)

module Json = Mdl_serve.Json
module P = Mdl_serve.Protocol
module Server = Mdl_serve.Server
module Client = Mdl_serve.Client
module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics
module Prng = Mdl_util.Prng
module Compositional = Mdl_core.Compositional
module Decomposed = Mdl_core.Decomposed
module State_lumping = Mdl_lumping.State_lumping
module Partition = Mdl_partition.Partition
module Statespace = Mdl_md.Statespace
module Md = Mdl_md.Md
module Model = Mdl_san.Model

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- JSON codec ---- *)

let test_json_basics () =
  let doc = {| {"a": 1, "b": [true, null, -2.5, "x\ny"], "c": {"d": 1e3}} |} in
  let j = Json.parse doc in
  checkb "int member" true (Json.member "a" j = Some (Json.Int 1));
  (match Json.member "b" j with
  | Some (Json.List [ Json.Bool true; Json.Null; Json.Float f; Json.Str s ]) ->
      checkb "-2.5" true (f = -2.5);
      checks "escapes" "x\ny" s
  | _ -> Alcotest.fail "array shape");
  (match Json.member "c" j with
  | Some inner -> checkb "1e3 is a float" true (Json.member "d" inner = Some (Json.Float 1000.0))
  | None -> Alcotest.fail "missing c");
  (* reprint/reparse is the identity *)
  checkb "round trip" true (Json.equal j (Json.parse (Json.to_string j)))

let test_json_unicode () =
  let j = Json.parse {| "a\u00e9b\ud83d\ude00c" |} in
  match j with
  | Json.Str s ->
      checks "utf8 encoding" "a\xc3\xa9b\xf0\x9f\x98\x80c" s;
      (* the printer passes raw UTF-8 through; reparse preserves it *)
      checkb "round trip" true (Json.equal j (Json.parse (Json.to_string j)))
  | _ -> Alcotest.fail "expected a string"

let test_json_duplicate_keys () =
  let j = Json.parse {| {"k": 1, "k": 2} |} in
  checkb "last wins" true (Json.member "k" j = Some (Json.Int 2))

let test_json_int_float_distinction () =
  checkb "1 is Int" true (Json.parse "1" = Json.Int 1);
  checkb "1.0 is Float" true (Json.parse "1.0" = Json.Float 1.0);
  checkb "printer keeps .0" true (Json.to_string (Json.Float 1.0) = "1.0");
  checkb "reparse keeps Float" true (Json.parse (Json.to_string (Json.Float 1.0)) = Json.Float 1.0)

let test_json_errors () =
  let bad s =
    match Json.parse_result s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "1 2";
      "\"unterminated";
      "\"\\u12";
      "\"\\ud800x\"";
      "01";
      "nul";
      "\"ctrl \x01\"";
      String.concat "" (List.init 600 (fun _ -> "[") @ [ "1" ]
                        @ List.init 600 (fun _ -> "]"));
    ]

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun f -> Json.Float f) (oneofl [ 0.0; 1.0; -1.0; 0.5; 1e-300; 1.2345678901234567 ]);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (depth - 1))));
            ( 1,
              map
                (fun ms ->
                  (* unique keys so equal-after-reparse holds *)
                  let seen = Hashtbl.create 8 in
                  Json.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else (Hashtbl.add seen k (); true))
                       ms))
                (list_size (int_range 0 4) (pair key (self (depth - 1)))) );
          ])
    3

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse round trip" ~count:500
    (QCheck.make json_gen) (fun j ->
      Json.equal j (Json.parse (Json.to_string j)))

(* ---- protocol codec ---- *)

let reward_gen =
  let open QCheck.Gen in
  map3
    (fun l ge k -> { P.ind_level = l; ind_ge = ge; ind_k = k })
    (int_range 1 5) bool (int_range 0 20)

let ident_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let request_gen =
  let open QCheck.Gen in
  let family = oneofl [ P.Tandem; P.Polling; P.Workstations; P.Multitier; P.Kanban ] in
  let solver = oneofl [ P.Power; P.Gauss_seidel; P.Krylov ] in
  let verb =
    oneof
      [
        ( family >>= fun f ->
          ident_gen >>= fun m ->
          opt (int_range 1 9) >>= fun size ->
          (* distinct parameter names, else decode order-sensitivity *)
          oneofl
            [ []; [ ("hyper_dim", 2) ]; [ ("msmq_servers", 2); ("msmq_queues", 3) ] ]
          >>= fun params ->
          return
            (P.Submit_model { sm_model = m; sm_family = f; sm_size = size; sm_params = params }) );
        ( ident_gen >>= fun m ->
          oneofl [ P.Ordinary; P.Exact ] >>= fun mode ->
          list_size (int_range 0 3) reward_gen >>= fun extra ->
          return (P.Lump { lp_model = m; lp_mode = mode; lp_extra = extra }) );
        ( ident_gen >>= fun m ->
          list_size (int_range 1 4)
            (map (fun e -> { P.pt_extra = e }) (list_size (int_range 0 2) reward_gen))
          >>= fun pts -> return (P.Sweep { sw_model = m; sw_points = pts }) );
        ( ident_gen >>= fun m ->
          solver >>= fun s -> return (P.Solve { sv_model = m; sv_solver = s }) );
        return P.Stats;
        map (fun ms -> P.Ping { pg_sleep_ms = ms }) (int_range 0 50);
        return P.Shutdown;
      ]
  in
  map2
    (fun (id, deadline, trace) verb ->
      { P.rq_id = id; rq_deadline_ms = deadline; rq_trace = trace; rq_verb = verb })
    (triple (opt ident_gen) (opt (int_range 1 60000)) bool)
    verb

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round trip" ~count:500
    (QCheck.make request_gen) (fun rq ->
      match P.request_of_string (Json.to_string (P.request_to_json rq)) with
      | Ok rq' -> rq = rq'
      | Error (_, msg) -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let float_gen =
  QCheck.Gen.(
    oneof
      [
        float_range 0.0 1e6;
        oneofl [ 0.0; 1.0; 0.1; 1e-12; 0.9756097561038778 ];
      ])

let response_gen =
  let open QCheck.Gen in
  let family = oneofl [ P.Tandem; P.Polling; P.Workstations; P.Multitier; P.Kanban ] in
  let point_result =
    map3
      (fun l c w -> { P.pr_lumped_states = l; pr_classes = c; pr_wall_s = w })
      (int_range 0 1000)
      (list_size (int_range 1 4) (int_range 1 100))
      float_gen
  in
  let payload =
    oneof
      [
        ( family >>= fun f ->
          ident_gen >>= fun m ->
          int_range 1 10000 >>= fun states ->
          list_size (int_range 1 4) (int_range 1 100) >>= fun sizes ->
          bool >>= fun fresh ->
          return
            (P.Model_info
               {
                 mi_model = m;
                 mi_family = f;
                 mi_states = states;
                 mi_levels = List.length sizes;
                 mi_level_sizes = sizes;
                 mi_fresh = fresh;
               }) );
        map3
          (fun l c w ->
            P.Lump_result { lr_lumped_states = l; lr_classes = c; lr_wall_s = w })
          (int_range 0 1000)
          (list_size (int_range 1 4) (int_range 1 100))
          float_gen;
        ( list_size (int_range 1 3) point_result >>= fun pts ->
          int_range 0 100 >>= fun cross ->
          int_range 0 100 >>= fun reused ->
          float_gen >>= fun w ->
          return
            (P.Sweep_result
               {
                 sr_points = pts;
                 sr_cross_bind_hits = cross;
                 sr_level_reused = reused;
                 sr_rebuilds_reused = reused / 2;
                 sr_store_rows = cross * 3;
                 sr_wall_s = w;
               }) );
        ( oneofl [ P.Power; P.Gauss_seidel; P.Krylov ] >>= fun s ->
          int_range 0 100000 >>= fun iters ->
          bool >>= fun conv ->
          float_gen >>= fun resid ->
          list_size (int_range 0 3) (pair ident_gen float_gen) >>= fun ms ->
          let seen = Hashtbl.create 8 in
          let ms =
            List.filter
              (fun (k, _) ->
                if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
              ms
          in
          float_gen >>= fun w ->
          return
            (P.Solve_result
               {
                 so_solver = s;
                 so_iterations = iters;
                 so_converged = conv;
                 so_residual = resid;
                 so_measures = ms;
                 so_wall_s = w;
               }) );
        ( float_gen >>= fun up ->
          bool >>= fun dr ->
          int_range 0 8 >>= fun infl ->
          int_range 0 100 >>= fun n ->
          list_size (int_range 0 2)
            ( ident_gen >>= fun m ->
              family >>= fun f ->
              int_range 1 1000 >>= fun states ->
              return
                {
                  P.ms_model = m;
                  ms_family = f;
                  ms_states = states;
                  ms_store_rows = states / 2;
                  ms_gid_count = states / 3;
                  ms_cross_bind_hits = states / 4;
                  ms_points = states / 5;
                } )
          >>= fun models ->
          list_size (int_range 0 3)
            ( ident_gen >>= fun v ->
              int_range 0 100 >>= fun reqs ->
              float_gen >>= fun p50 ->
              return
                {
                  P.vs_verb = v;
                  vs_requests = reqs;
                  vs_errors = reqs / 3;
                  vs_p50_s = p50;
                  vs_p95_s = p50 *. 2.0;
                  vs_p99_s = p50 *. 3.0;
                } )
          >>= fun verbs ->
          return
            (P.Stats_result
               {
                 st_uptime_s = up;
                 st_draining = dr;
                 st_inflight = infl;
                 st_queue_depth = n;
                 st_requests = n * 2;
                 st_rejected_queue_full = n / 2;
                 st_rejected_deadline = n / 3;
                 st_protocol_errors = n / 4;
                 st_verbs = verbs;
                 st_models = models;
               }) );
        return P.Pong;
        map (fun d -> P.Shutdown_ack { draining = d }) bool;
      ]
  in
  let error =
    pair
      (oneofl
         [
           P.Parse_error; P.Bad_request; P.Unknown_verb; P.Unsupported_version;
           P.Frame_too_large; P.Unknown_model; P.Model_exists; P.Queue_full;
           P.Deadline_exceeded; P.Shutting_down; P.Internal;
         ])
      (string_size ~gen:printable (int_range 0 30))
  in
  let trace_rollup =
    ident_gen >>= fun req ->
    list_size (int_range 0 3)
      ( ident_gen >>= fun n ->
        int_range 1 50 >>= fun c ->
        float_gen >>= fun s ->
        return { P.sp_name = n; sp_count = c; sp_total_s = s } )
    >>= fun spans -> return { P.tr_request = "r-" ^ req; tr_spans = spans }
  in
  map3
    (fun id trace body -> { P.resp_id = id; resp_trace = trace; resp_body = body })
    (opt ident_gen) (opt trace_rollup)
    (oneof [ map Result.ok payload; map Result.error error ])

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode round trip" ~count:500
    (QCheck.make response_gen) (fun resp ->
      match P.response_of_string (Json.to_string (P.response_to_json resp)) with
      | Ok resp' -> resp = resp'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let test_unknown_fields_ignored () =
  let doc =
    {| {"v":1,"verb":"ping","sleep_ms":2,"future_extension":{"deep":[1,2]},"another":null} |}
  in
  match P.request_of_string doc with
  | Ok { P.rq_verb = P.Ping { pg_sleep_ms = 2 }; _ } -> ()
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error (_, msg) -> Alcotest.failf "rejected: %s" msg

let test_version_gate () =
  (match P.request_of_string {| {"v":1,"verb":"stats"} |} with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "v:1 must be accepted");
  (match P.request_of_string {| {"verb":"stats"} |} with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "missing v defaults to 1");
  match P.request_of_string {| {"v":2,"verb":"stats"} |} with
  | Error (P.Unsupported_version, _) -> ()
  | _ -> Alcotest.fail "v:2 must be unsupported_version"

let test_decode_errors () =
  let code s =
    match P.request_of_string s with Error (c, _) -> Some c | Ok _ -> None
  in
  checkb "not json" true (code "{nope" = Some P.Parse_error);
  checkb "not an object" true (code "[1]" = Some P.Bad_request);
  checkb "no verb" true (code "{}" = Some P.Bad_request);
  checkb "unknown verb" true (code {| {"verb":"frobnicate"} |} = Some P.Unknown_verb);
  checkb "missing model" true (code {| {"verb":"lump"} |} = Some P.Bad_request);
  checkb "bad reward op" true
    (code {| {"verb":"lump","model":"m","extra_rewards":[{"level":1,"op":"<=","k":2}]} |}
     = Some P.Bad_request);
  checkb "empty sweep" true
    (code {| {"verb":"sweep","model":"m","points":[]} |} = Some P.Bad_request);
  checkb "bad deadline" true
    (code {| {"verb":"stats","deadline_ms":0} |} = Some P.Bad_request)

let test_decoder_fuzz () =
  let rng = Prng.of_seed 7 in
  for i = 0 to 999 do
    let r = Prng.fork rng i in
    let len = Prng.int r 64 in
    let s = String.init len (fun _ -> Char.chr (Prng.int r 256)) in
    (* must classify, never raise *)
    match P.request_of_string s with Ok _ | Error _ -> ()
  done;
  (* structured fuzz: near-valid requests with random mutations *)
  let base = {| {"v":1,"id":"x","verb":"sweep","model":"m","points":[{"extra_rewards":[{"level":1,"op":">=","k":2}]}]} |} in
  for i = 0 to 999 do
    let r = Prng.fork rng (10_000 + i) in
    let b = Bytes.of_string base in
    let n = 1 + Prng.int r 4 in
    for _ = 1 to n do
      Bytes.set b (Prng.int r (Bytes.length b)) (Char.chr (Prng.int r 256))
    done;
    match P.request_of_string (Bytes.to_string b) with Ok _ | Error _ -> ()
  done

(* ---- framing ---- *)

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let w = ref 0 in
  while !w < n do
    w := !w + Unix.write fd b !w (n - !w)
  done

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let r = P.reader b in
      P.write_frame a "hello";
      P.write_frame a "";
      (* two frames in one write, and a payload containing newlines *)
      write_all a (P.frame_string "line1\nline2" ^ P.frame_string "x");
      checkb "f1" true (P.read_frame r = Ok "hello");
      checkb "f2" true (P.read_frame r = Ok "");
      checkb "f3" true (P.read_frame r = Ok "line1\nline2");
      checkb "f4" true (P.read_frame r = Ok "x");
      Unix.close a;
      checkb "eof" true (P.read_frame r = Error P.Eof))

let test_frame_split_writes () =
  with_socketpair (fun a b ->
      let r = P.reader b in
      let s = P.frame_string "abcdefgh" in
      let result = ref (Error P.Eof) in
      let th =
        Thread.create
          (fun () ->
            String.iter
              (fun c ->
                write_all a (String.make 1 c);
                Thread.delay 0.001)
              s)
          ()
      in
      result := P.read_frame r;
      Thread.join th;
      checkb "reassembled" true (!result = Ok "abcdefgh"))

let test_frame_truncated () =
  with_socketpair (fun a b ->
      let r = P.reader b in
      write_all a "10\nabc";
      Unix.close a;
      checkb "truncated" true (P.read_frame r = Error P.Truncated))

let test_frame_oversized () =
  with_socketpair (fun a b ->
      let r = P.reader ~max_frame:16 b in
      write_all a "17\n";
      checkb "oversized" true (P.read_frame r = Error (P.Oversized 17)))

let test_frame_malformed () =
  with_socketpair (fun a b ->
      let r = P.reader b in
      write_all a "12x\n";
      match P.read_frame r with
      | Error (P.Malformed _) -> ()
      | _ -> Alcotest.fail "expected Malformed");
  with_socketpair (fun a b ->
      let r = P.reader b in
      write_all a (string_of_int 5 ^ "\nabcdeX");
      match P.read_frame r with
      | Error (P.Malformed _) -> ()
      | _ -> Alcotest.fail "expected Malformed terminator")

let test_frame_stop () =
  with_socketpair (fun _a b ->
      let r = P.reader b in
      let stop = ref false in
      let th =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            stop := true)
          ()
      in
      let got = P.read_frame ~stop:(fun () -> !stop) r in
      Thread.join th;
      checkb "stopped" true (got = Error P.Stopped))

let test_reader_fuzz () =
  let rng = Prng.of_seed 23 in
  for i = 0 to 199 do
    let r = Prng.fork rng i in
    with_socketpair (fun a b ->
        let reader = P.reader ~max_frame:4096 b in
        let len = Prng.int r 200 in
        write_all a (String.init len (fun _ -> Char.chr (Prng.int r 256)));
        Unix.close a;
        (* drain: every outcome is fine, raising or hanging is not *)
        let rec go n =
          if n > 0 then
            match P.read_frame reader with
            | Ok _ -> go (n - 1)
            | Error _ -> ()
        in
        go 64)
  done

(* ---- server fixtures ---- *)

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lumpd-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?metrics_port ?(max_inflight = 1) ?(queue_capacity = 32)
    ?default_deadline_ms ?access_log f =
  let was_enabled = Metrics.enabled () in
  let config =
    {
      (Server.default_config ~listen:(Server.Unix_socket (fresh_path ()))) with
      Server.metrics_port;
      max_inflight;
      queue_capacity;
      default_deadline_ms;
      access_log;
    }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Metrics.set_enabled was_enabled)
    (fun () -> f server)

let ok_result what = function
  | Ok { P.resp_body = Ok payload; _ } -> payload
  | Ok { P.resp_body = Error (c, msg); _ } ->
      Alcotest.failf "%s: protocol error %s: %s" what (P.error_code_string c) msg
  | Error msg -> Alcotest.failf "%s: transport error: %s" what msg

let err_code what = function
  | Ok { P.resp_body = Error (c, _); _ } -> c
  | Ok { P.resp_body = Ok _; _ } -> Alcotest.failf "%s: unexpectedly succeeded" what
  | Error msg -> Alcotest.failf "%s: transport error: %s" what msg

let rq ?id ?deadline_ms ?(trace = false) verb =
  { P.rq_id = id; rq_deadline_ms = deadline_ms; rq_trace = trace; rq_verb = verb }

let submit_polling ?(name = "p") client =
  ok_result "submit"
    (Client.request client
       (rq (P.Submit_model
              { sm_model = name; sm_family = P.Polling; sm_size = Some 3; sm_params = [] })))

(* ---- end-to-end: socket results vs in-process lump_sweep ---- *)

let test_e2e_bit_identical () =
  with_server ~metrics_port:0 (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match submit_polling c with
      | P.Model_info mi ->
          checkb "fresh" true mi.P.mi_fresh;
          checki "levels" (List.length mi.P.mi_level_sizes) mi.P.mi_levels
      | _ -> Alcotest.fail "expected model_info");
      (* resubmitting identically is idempotent; a different config conflicts *)
      (match submit_polling c with
      | P.Model_info mi -> checkb "not fresh" false mi.P.mi_fresh
      | _ -> Alcotest.fail "expected model_info");
      checkb "conflict" true
        (err_code "conflicting submit"
           (Client.request c
              (rq (P.Submit_model
                     { sm_model = "p"; sm_family = P.Polling; sm_size = Some 4; sm_params = [] })))
         = P.Model_exists);
      let specs =
        [
          [];
          [ { P.ind_level = 1; ind_ge = true; ind_k = 2 } ];
          [ { P.ind_level = 1; ind_ge = false; ind_k = 2 } ];
        ]
      in
      let sweep_result =
        match
          ok_result "sweep"
            (Client.request c
               (rq (P.Sweep
                      {
                        sw_model = "p";
                        sw_points = List.map (fun e -> { P.pt_extra = e }) specs;
                      })))
        with
        | P.Sweep_result r -> r
        | _ -> Alcotest.fail "expected sweep_result"
      in
      (* the same computation in-process, through the library *)
      let b = Mdl_models.Polling.build (Mdl_models.Polling.default ~customers:3) in
      let md = b.Mdl_models.Polling.md in
      let ss = b.Mdl_models.Polling.exploration.Model.statespace in
      let base =
        [
          b.Mdl_models.Polling.rewards_busy_servers;
          b.Mdl_models.Polling.rewards_queued_jobs;
        ]
      in
      let sizes = Md.sizes md in
      let indicator (s : P.reward_spec) =
        Decomposed.of_level ~sizes ~level:s.P.ind_level (fun v ->
            if (if s.P.ind_ge then v >= s.P.ind_k else v < s.P.ind_k) then 1.0 else 0.0)
      in
      let points =
        List.map
          (fun extra ->
            {
              Compositional.sweep_rewards = List.map indicator extra @ base;
              sweep_initial = b.Mdl_models.Polling.initial;
            })
          specs
      in
      let local = Compositional.lump_sweep State_lumping.Ordinary md ~points in
      checki "same number of points" (List.length local) (List.length sweep_result.P.sr_points);
      List.iter2
        (fun (r : Compositional.result) (pr : P.point_result) ->
          checki "lumped states" (Statespace.size (Compositional.lump_statespace r ss))
            pr.P.pr_lumped_states;
          check (Alcotest.list Alcotest.int) "classes per level"
            (Array.to_list (Array.map Partition.num_classes r.Compositional.partitions))
            pr.P.pr_classes)
        local sweep_result.P.sr_points;
      (* warm second request: served from the same engine, with reuse *)
      let warm =
        match
          ok_result "warm sweep"
            (Client.request c
               (rq (P.Sweep
                      {
                        sw_model = "p";
                        sw_points = List.map (fun e -> { P.pt_extra = e }) specs;
                      })))
        with
        | P.Sweep_result r -> r
        | _ -> Alcotest.fail "expected sweep_result"
      in
      checkb "cross-bind hits accumulated" true (warm.P.sr_cross_bind_hits > 0);
      checkb "levels reused on the warm pass" true
        (warm.P.sr_level_reused > sweep_result.P.sr_level_reused);
      List.iter2
        (fun (cold : P.point_result) (w : P.point_result) ->
          checki "warm lumped states equal" cold.P.pr_lumped_states w.P.pr_lumped_states;
          check (Alcotest.list Alcotest.int) "warm classes equal" cold.P.pr_classes
            w.P.pr_classes)
        sweep_result.P.sr_points warm.P.sr_points;
      (* solve: measures equal the in-process solver's, bit-exactly *)
      let solve =
        match
          ok_result "solve"
            (Client.request c (rq (P.Solve { sv_model = "p"; sv_solver = P.Power })))
        with
        | P.Solve_result r -> r
        | _ -> Alcotest.fail "expected solve_result"
      in
      let r0 =
        List.hd
          (Compositional.lump_sweep State_lumping.Ordinary md
             ~points:
               [ { Compositional.sweep_rewards = base; sweep_initial = b.Mdl_models.Polling.initial } ])
      in
      let lumped_ss = Compositional.lump_statespace r0 ss in
      let pi, _ =
        Mdl_core.Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000
          r0.Compositional.lumped lumped_ss
      in
      let expect name d =
        Mdl_ctmc.Solver.expected_reward pi
          (Decomposed.to_vector (Compositional.lumped_rewards r0 d) lumped_ss)
        |> fun v -> (name, v)
      in
      let local_measures =
        [
          expect "busy servers" b.Mdl_models.Polling.rewards_busy_servers;
          expect "queued jobs" b.Mdl_models.Polling.rewards_queued_jobs;
        ]
      in
      checkb "solver converged" true solve.P.so_converged;
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          checks "measure name" n1 n2;
          checkb (Printf.sprintf "measure %s bit-identical" n1) true (Float.equal v1 v2))
        local_measures solve.P.so_measures;
      (* stats reflect the work *)
      (match ok_result "stats" (Client.request c (rq P.Stats)) with
      | P.Stats_result st ->
          checkb "requests counted" true (st.P.st_requests >= 6);
          (match st.P.st_models with
          | [ m ] ->
              checks "model name" "p" m.P.ms_model;
              checkb "store rows persisted" true (m.P.ms_store_rows > 0);
              checki "points served" 7 m.P.ms_points
          | ms -> Alcotest.failf "expected one model, got %d" (List.length ms))
      | _ -> Alcotest.fail "expected stats_result");
      (* unknown model is a typed error *)
      checkb "unknown model" true
        (err_code "lump of unknown model"
           (Client.request c
              (rq (P.Lump { lp_model = "nope"; lp_mode = P.Ordinary; lp_extra = [] })))
         = P.Unknown_model);
      (* the Prometheus endpoint serves every family of series *)
      let port = Option.get (Server.metrics_port server) in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all fd "GET /metrics HTTP/1.0\r\n\r\n";
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            slurp ()
      in
      slurp ();
      Unix.close fd;
      let body = Buffer.contents buf in
      checkb "http 200" true
        (String.length body > 15 && String.sub body 0 15 = "HTTP/1.0 200 OK");
      let contains needle =
        let nl = String.length needle and bl = String.length body in
        let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          checkb (Printf.sprintf "scrape contains %s" needle) true (contains needle))
        [
          "# TYPE serve_requests counter";
          "# TYPE serve_request_seconds histogram";
          "serve_request_seconds_bucket{le=\"+Inf\"}";
          "serve_request_seconds_count";
          "serve_inflight";
          "serve_uptime_seconds";
          "# TYPE serve_control_seconds histogram";
          (* per-verb families, with the dots (and the dash of
             submit-model) mangled to underscores *)
          "# TYPE serve_verb_lump_exec_seconds histogram";
          "serve_verb_lump_queue_seconds_count";
          "serve_verb_sweep_requests";
          "serve_verb_submit_model_requests";
          "serve_verb_ping_errors";
          "# TYPE lump_runs counter";
          "key_cache_hits";
        ])

(* ---- robustness: deadlines, backpressure, drain ---- *)

let test_deadline_expiry_frees_slot () =
  with_server ~max_inflight:1 (fun server ->
      let a = Client.connect (Server.address server) in
      let b = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close a; Client.close b)
        (fun () ->
          (* A holds the only slot; B's deadline expires while queued *)
          let slow = Thread.create (fun () ->
              Client.request a (rq (P.Ping { pg_sleep_ms = 400 }))) ()
          in
          Thread.delay 0.05;
          let t0 = Unix.gettimeofday () in
          let code =
            err_code "queued past deadline"
              (Client.request b (rq ~deadline_ms:80 (P.Ping { pg_sleep_ms = 0 })))
          in
          let waited = Unix.gettimeofday () -. t0 in
          checkb "deadline_exceeded" true (code = P.Deadline_exceeded);
          checkb "rejected promptly, not after the slot opened" true (waited < 0.35);
          (match Thread.join slow with () -> ());
          (* the slot is free again: an undeadlined request succeeds *)
          match ok_result "after drain" (Client.request b (rq (P.Ping { pg_sleep_ms = 0 }))) with
          | P.Pong -> ()
          | _ -> Alcotest.fail "expected pong"))

let test_deadline_during_execution () =
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let code =
        err_code "ping outliving its deadline"
          (Client.request c (rq ~deadline_ms:50 (P.Ping { pg_sleep_ms = 400 })))
      in
      checkb "deadline_exceeded" true (code = P.Deadline_exceeded))

let test_queue_full () =
  with_server ~max_inflight:1 ~queue_capacity:0 (fun server ->
      let a = Client.connect (Server.address server) in
      let b = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close a; Client.close b)
        (fun () ->
          let slow = Thread.create (fun () ->
              Client.request a (rq (P.Ping { pg_sleep_ms = 300 }))) ()
          in
          Thread.delay 0.05;
          let code = err_code "flooded" (Client.request b (rq (P.Ping { pg_sleep_ms = 0 }))) in
          checkb "queue_full" true (code = P.Queue_full);
          (* stats still answers while the slot is held *)
          (match ok_result "stats under load" (Client.request b (rq P.Stats)) with
          | P.Stats_result st ->
              checkb "rejection counted" true (st.P.st_rejected_queue_full >= 1)
          | _ -> Alcotest.fail "expected stats_result");
          Thread.join slow))

let test_shutdown_drains () =
  with_server (fun server ->
      let a = Client.connect (Server.address server) in
      let b = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close a; Client.close b)
        (fun () ->
          (* A's request is in flight when B asks for shutdown *)
          let slow = ref (Error "unset") in
          let th =
            Thread.create
              (fun () -> slow := Client.request a (rq (P.Ping { pg_sleep_ms = 250 })))
              ()
          in
          Thread.delay 0.05;
          (match ok_result "shutdown" (Client.request b (rq P.Shutdown)) with
          | P.Shutdown_ack { draining = true } -> ()
          | _ -> Alcotest.fail "expected a draining ack");
          checkb "draining" true (Server.draining server);
          Thread.join th;
          (* the in-flight request finished normally *)
          (match !slow with
          | Ok { P.resp_body = Ok P.Pong; _ } -> ()
          | _ -> Alcotest.fail "in-flight request must complete during drain");
          Server.wait server))

let test_handle_in_process () =
  (* the socketless path the bench uses: same handler, no transport *)
  with_server (fun server ->
      (match (Server.handle server (rq ~id:"i" P.Stats)).P.resp_body with
      | Ok (P.Stats_result _) -> ()
      | _ -> Alcotest.fail "stats via handle");
      let resp = Server.handle server (rq (P.Lump { lp_model = "m"; lp_mode = P.Ordinary; lp_extra = [] })) in
      checkb "unknown model via handle" true
        (match resp.P.resp_body with Error (P.Unknown_model, _) -> true | _ -> false);
      let resp = Server.handle server (rq P.Shutdown) in
      checkb "shutdown via handle" true
        (match resp.P.resp_body with Ok (P.Shutdown_ack _) -> true | _ -> false);
      checkb "drain triggered" true (Server.draining server))

let test_malformed_frames_over_socket () =
  with_server (fun server ->
      let path =
        match Server.address server with
        | Server.Unix_socket p -> p
        | _ -> Alcotest.fail "expected a unix socket"
      in
      (* bad JSON inside a good frame: typed error, connection survives *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let reader = P.reader fd in
      write_all fd (P.frame_string "{nope");
      (match P.read_frame reader with
      | Ok payload -> (
          match P.response_of_string payload with
          | Ok { P.resp_body = Error (P.Parse_error, _); _ } -> ()
          | _ -> Alcotest.fail "expected parse_error response")
      | Error _ -> Alcotest.fail "connection must survive bad JSON");
      write_all fd (P.frame_string {| {"verb":"stats"} |});
      (match P.read_frame reader with
      | Ok payload -> (
          match P.response_of_string payload with
          | Ok { P.resp_body = Ok (P.Stats_result _); _ } -> ()
          | _ -> Alcotest.fail "expected stats after recovery")
      | Error _ -> Alcotest.fail "connection must stay usable");
      (* a broken length prefix is fatal for the connection *)
      write_all fd "notanumber\n";
      (match P.read_frame reader with
      | Ok payload -> (
          match P.response_of_string payload with
          | Ok { P.resp_body = Error (P.Parse_error, _); _ } -> ()
          | _ -> Alcotest.fail "expected framing error response")
      | Error P.Eof -> ()
      | Error e ->
          Alcotest.failf "unexpected frame error: %s"
            (match e with
             | P.Truncated -> "truncated" | P.Oversized _ -> "oversized"
             | P.Malformed m -> m | P.Stopped -> "stopped" | P.Eof -> "eof"));
      (* ... after which the server closes *)
      (match P.read_frame reader with
      | Error (P.Eof | P.Truncated) -> ()
      | _ -> Alcotest.fail "server must close after a framing fault");
      Unix.close fd;
      (* an oversized declaration also answers before closing *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let reader = P.reader fd in
      write_all fd (string_of_int (64 * 1024 * 1024) ^ "\n");
      (match P.read_frame reader with
      | Ok payload -> (
          match P.response_of_string payload with
          | Ok { P.resp_body = Error (P.Frame_too_large, _); _ } -> ()
          | _ -> Alcotest.fail "expected frame_too_large")
      | Error _ -> Alcotest.fail "expected a frame_too_large response first");
      Unix.close fd)

(* ---- streaming traces ---- *)

let test_streaming_trace_bounded () =
  let path = Filename.temp_file "mdl-stream" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.stream_to_file ~gc:false path;
  let n = 5000 in
  for i = 1 to n do
    Trace.begin_span "tick";
    if i mod 2 = 0 then Trace.begin_span "nested";
    if i mod 2 = 0 then Trace.end_span "nested";
    Trace.end_span "tick"
  done;
  (* bounded memory: nothing buffers, everything streams *)
  checki "no buffered events" 0 (Trace.span_count ());
  checki "all events streamed" (n + (n / 2)) (Trace.streamed_count ());
  Trace.stop ();
  checkb "stopped" false (Trace.enabled ());
  (* the streamed file is valid JSON with one object per event *)
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match Json.parse body with
  | Json.List events ->
      checki "event count" (n + (n / 2)) (List.length events);
      List.iteri
        (fun i ev ->
          if i < 10 then begin
            checkb "ph is X" true (Json.member "ph" ev = Some (Json.Str "X"));
            checkb "has ts" true (Option.is_some (Json.member "ts" ev));
            checkb "has dur" true (Option.is_some (Json.member "dur" ev))
          end)
        events
  | _ -> Alcotest.fail "streamed trace is not a JSON array"

let test_streaming_vs_buffered_identical_shape () =
  (* the same span program through both sinks yields the same events *)
  let run_spans () =
    Trace.begin_span "outer";
    Trace.begin_span ~args:[ ("k", Trace.Int 7) ] "inner";
    Trace.end_span "inner";
    Trace.end_span "outer"
  in
  let path = Filename.temp_file "mdl-stream" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.stream_to_file ~gc:false path;
  run_spans ();
  Trace.stop ();
  let ic = open_in path in
  let streamed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Trace.start ~gc:false ();
  run_spans ();
  Trace.stop ();
  let buf = Buffer.create 256 in
  Trace.export_json buf;
  Trace.clear ();
  (* two separate executions: wall-clock fields necessarily differ *)
  let strip ev = match ev with
    | Json.Obj ms -> Json.Obj (List.filter (fun (k, _) -> k <> "ts" && k <> "dur") ms)
    | j -> j
  in
  match (Json.parse streamed, Json.parse (Buffer.contents buf)) with
  | Json.List s, Json.Obj members -> (
      match List.assoc_opt "traceEvents" members with
      | Some (Json.List b) ->
          checki "same event count" (List.length b) (List.length s);
          List.iter2
            (fun a b' ->
              checkb "same event (modulo absolute ts)" true
                (Json.equal (strip a) (strip b')))
            s b
      | _ -> Alcotest.fail "buffered export has no traceEvents")
  | _ -> Alcotest.fail "unexpected export shapes"

(* ---- request-scoped tracing over the socket ---- *)

let trace_of what = function
  | Ok { P.resp_trace = Some tr; resp_body = Ok _; _ } -> tr
  | Ok { P.resp_trace = None; _ } -> Alcotest.failf "%s: no trace rollup" what
  | Ok { P.resp_body = Error (c, msg); _ } ->
      Alcotest.failf "%s: protocol error %s: %s" what (P.error_code_string c) msg
  | Error msg -> Alcotest.failf "%s: transport error: %s" what msg

let has_span tr name = List.exists (fun s -> s.P.sp_name = name) tr.P.tr_spans

(* Two traced requests executing concurrently (max_inflight 2) come
   back with distinct server request ids and disjoint span rollups —
   each sees exactly its own spans, nothing interleaves. *)
let test_traced_concurrent_requests () =
  with_server ~max_inflight:2 (fun server ->
      let a = Client.connect (Server.address server) in
      let b = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close a; Client.close b)
        (fun () ->
          let results = Array.make 2 (Error "unset") in
          let fire i c =
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.request c (rq ~trace:true (P.Ping { pg_sleep_ms = 150 })))
              ()
          in
          let t1 = fire 0 a in
          Thread.delay 0.02;
          let t2 = fire 1 b in
          Thread.join t1;
          Thread.join t2;
          let tr1 = trace_of "first traced ping" results.(0) in
          let tr2 = trace_of "second traced ping" results.(1) in
          checkb "distinct request ids" true (tr1.P.tr_request <> tr2.P.tr_request);
          List.iter
            (fun tr ->
              (* exactly one root and one verb span each: nothing from
                 the concurrent request leaked into this context *)
              List.iter
                (fun (s : P.span_stat) ->
                  checki (Printf.sprintf "span %s count" s.P.sp_name) 1 s.P.sp_count;
                  checkb "span total positive" true (s.P.sp_total_s >= 0.0))
                tr.P.tr_spans;
              checkb "has serve.request root" true (has_span tr "serve.request");
              checkb "has serve.ping" true (has_span tr "serve.ping");
              checki "no foreign spans" 2 (List.length tr.P.tr_spans))
            [ tr1; tr2 ];
          (* an untraced request carries no rollup *)
          match Client.request a (rq (P.Ping { pg_sleep_ms = 0 })) with
          | Ok { P.resp_trace = None; resp_body = Ok P.Pong; _ } -> ()
          | _ -> Alcotest.fail "untraced ping must not carry a trace"))

(* A traced lump's rollup reaches through the service layer into the
   engine: the pipeline's own spans ride along, tagged per request. *)
let test_traced_lump_rollup () =
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      ignore (submit_polling c);
      let tr =
        trace_of "traced lump"
          (Client.request c
             (rq ~trace:true
                (P.Lump { lp_model = "p"; lp_mode = P.Ordinary; lp_extra = [] })))
      in
      checkb "has serve.request root" true (has_span tr "serve.request");
      checkb "has serve.lump" true (has_span tr "serve.lump");
      checkb "engine spans present" true (List.length tr.P.tr_spans > 2);
      (* spans nest inside the root, so no span outlasts it *)
      let root =
        List.find (fun s -> s.P.sp_name = "serve.request") tr.P.tr_spans
      in
      List.iter
        (fun (s : P.span_stat) ->
          checkb
            (Printf.sprintf "span %s within the root" s.P.sp_name)
            true
            (s.P.sp_total_s <= root.P.sp_total_s +. 1e-9))
        tr.P.tr_spans)

(* ---- per-verb stats and the access log ---- *)

let test_stats_verbs () =
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match ok_result "ping" (Client.request c (rq (P.Ping { pg_sleep_ms = 0 }))) with
      | P.Pong -> ()
      | _ -> Alcotest.fail "expected pong");
      checkb "lump of unknown model errors" true
        (err_code "lump"
           (Client.request c
              (rq (P.Lump { lp_model = "ghost"; lp_mode = P.Ordinary; lp_extra = [] })))
         = P.Unknown_model);
      match ok_result "stats" (Client.request c (rq P.Stats)) with
      | P.Stats_result st ->
          checki "one entry per verb" 7 (List.length st.P.st_verbs);
          let find v = List.find (fun s -> s.P.vs_verb = v) st.P.st_verbs in
          let ping = find "ping" in
          checkb "ping served" true (ping.P.vs_requests >= 1);
          checki "ping errors" 0 ping.P.vs_errors;
          checkb "ping quantiles monotone" true
            (ping.P.vs_p50_s <= ping.P.vs_p95_s && ping.P.vs_p95_s <= ping.P.vs_p99_s);
          let lump = find "lump" in
          checkb "lump error counted" true (lump.P.vs_errors >= 1);
          checkb "lump errors <= requests" true (lump.P.vs_errors <= lump.P.vs_requests);
          let solve = find "solve" in
          checki "unserved verb at zero" 0 solve.P.vs_requests;
          checkb "uptime positive" true (st.P.st_uptime_s >= 0.0)
      | _ -> Alcotest.fail "expected stats_result")

let test_access_log () =
  let path = Filename.temp_file "lumpd-access" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  with_server ~access_log:path (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      ignore (submit_polling c);
      (match ok_result "ping" (Client.request c (rq ~id:"al-1" (P.Ping { pg_sleep_ms = 0 }))) with
      | P.Pong -> ()
      | _ -> Alcotest.fail "expected pong");
      ignore
        (err_code "bad lump"
           (Client.request c
              (rq ~id:"al-2" (P.Lump { lp_model = "nope"; lp_mode = P.Ordinary; lp_extra = [] })))));
  (* the server is stopped: the log is flushed and closed *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  checki "one line per request" 3 (List.length lines);
  let parsed = List.map Json.parse lines in
  let str j k =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  let int_of j k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  List.iter
    (fun j ->
      checkb "has ts" true (Option.is_some (Json.member "ts" j));
      (match str j "request" with
      | Some r -> checkb "server id shape" true (String.length r > 2 && String.sub r 0 2 = "r-")
      | None -> Alcotest.fail "line lacks request id");
      checkb "has verb" true (Option.is_some (str j "verb"));
      checkb "queue_ns non-negative" true
        (match int_of j "queue_ns" with Some n -> n >= 0 | None -> false);
      checkb "exec_ns non-negative" true
        (match int_of j "exec_ns" with Some n -> n >= 0 | None -> false);
      checkb "bytes positive" true
        (match int_of j "bytes" with Some n -> n > 0 | None -> false))
    parsed;
  (* distinct, monotonically assigned server ids *)
  let ids = List.filter_map (fun j -> str j "request") parsed in
  checki "distinct server ids" 3 (List.length (List.sort_uniq compare ids));
  (* client ids and statuses travel verbatim *)
  let by_id id = List.find (fun j -> str j "id" = Some id) parsed in
  checkb "ping logged ok" true (str (by_id "al-1") "status" = Some "ok");
  checkb "error status is the code" true
    (str (by_id "al-2") "status" = Some "unknown_model");
  checkb "verb recorded" true (str (by_id "al-2") "verb" = Some "lump")

let qcheck_tests =
  [ qcheck_json_roundtrip; qcheck_request_roundtrip; qcheck_response_roundtrip ]

let tests =
  [
    Alcotest.test_case "json: basics" `Quick test_json_basics;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode;
    Alcotest.test_case "json: duplicate keys last-wins" `Quick test_json_duplicate_keys;
    Alcotest.test_case "json: int/float distinction survives" `Quick
      test_json_int_float_distinction;
    Alcotest.test_case "json: malformed documents rejected" `Quick test_json_errors;
    Alcotest.test_case "protocol: unknown fields ignored" `Quick test_unknown_fields_ignored;
    Alcotest.test_case "protocol: version gate" `Quick test_version_gate;
    Alcotest.test_case "protocol: decode error taxonomy" `Quick test_decode_errors;
    Alcotest.test_case "protocol: decoder never raises (fuzz)" `Quick test_decoder_fuzz;
    Alcotest.test_case "framing: round trip and batching" `Quick test_frame_roundtrip;
    Alcotest.test_case "framing: byte-at-a-time writes" `Quick test_frame_split_writes;
    Alcotest.test_case "framing: truncated frame" `Quick test_frame_truncated;
    Alcotest.test_case "framing: oversized declaration" `Quick test_frame_oversized;
    Alcotest.test_case "framing: malformed prefix/terminator" `Quick test_frame_malformed;
    Alcotest.test_case "framing: stop interrupts an idle read" `Quick test_frame_stop;
    Alcotest.test_case "framing: reader survives random bytes (fuzz)" `Quick
      test_reader_fuzz;
    Alcotest.test_case "e2e: socket results bit-identical to lump_sweep" `Slow
      test_e2e_bit_identical;
    Alcotest.test_case "robustness: deadline expiry frees the slot" `Slow
      test_deadline_expiry_frees_slot;
    Alcotest.test_case "robustness: deadline enforced during execution" `Slow
      test_deadline_during_execution;
    Alcotest.test_case "robustness: bounded queue rejects the flood" `Slow
      test_queue_full;
    Alcotest.test_case "robustness: shutdown drains in-flight work" `Slow
      test_shutdown_drains;
    Alcotest.test_case "robustness: in-process handle path" `Quick test_handle_in_process;
    Alcotest.test_case "robustness: malformed frames answered then closed" `Slow
      test_malformed_frames_over_socket;
    Alcotest.test_case "trace: streaming sink is bounded and valid" `Quick
      test_streaming_trace_bounded;
    Alcotest.test_case "trace: streamed events equal buffered events" `Quick
      test_streaming_vs_buffered_identical_shape;
    Alcotest.test_case "trace: concurrent traced requests stay disjoint" `Slow
      test_traced_concurrent_requests;
    Alcotest.test_case "trace: lump rollup reaches the engine" `Slow
      test_traced_lump_rollup;
    Alcotest.test_case "stats: per-verb counters and quantiles" `Slow test_stats_verbs;
    Alcotest.test_case "access log: one JSON line per request" `Slow test_access_log;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

(* Differential concurrency suite: the parallel refinement pipeline is
   pinned bit-identical to the sequential one at every domain count.

   The lump properties quantify over random model specs (shrinking
   through {!Mdl_oracle.Qcheck_gen}) and race the sequential pipeline
   against pools of 1/2/4/7 domains with every sharding threshold
   forced to 1, so even tiny models take the parallel paths: the
   lumped diagrams must be structurally equal ([Md.equal]), the
   per-level partitions must agree, and the refinement counters
   (splitter passes, splits, key evaluations, cache hits/misses) must
   match exactly.

   The unit tests below cover the concurrent building blocks directly:
   {!Mdl_util.Domain_pool} scheduling (exactly-once, nesting,
   exception rethrow, split chunking), the sharded {!Mdl_util.Gid_table}
   under concurrent interning of overlapping key sets, and
   {!Mdl_obs.Metrics} counter exactness under domains. *)

module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Md = Mdl_md.Md
module State_lumping = Mdl_lumping.State_lumping
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Domain_pool = Mdl_util.Domain_pool
module Gid_table = Mdl_util.Gid_table
module Metrics = Mdl_obs.Metrics
module Local_key = Mdl_core.Local_key
module Key_cache = Mdl_core.Key_cache
module Trace = Mdl_obs.Trace
module Spec = Mdl_oracle.Spec
module Gen_md = Mdl_oracle.Gen_md
module Qcheck_gen = Mdl_oracle.Qcheck_gen

(* One pool per raced size, shared by every test case (spawning domains
   per case would dominate the suite's runtime); joined at exit. *)
let pool_sizes = [ 1; 2; 4; 7 ]

let pools =
  lazy
    (let ps = List.map (fun d -> (d, Domain_pool.create ~domains:d)) pool_sizes in
     at_exit (fun () -> List.iter (fun (_, p) -> Domain_pool.shutdown p) ps);
     ps)

let pool d = List.assoc d (Lazy.force pools)

(* ----- differential lump properties ----- *)

(* The oracle's model setup (protected last-level reward for ordinary
   mode) — richer initial partitions than a constant reward. *)
let lump_inputs mode md =
  let sizes = Md.sizes md in
  let levels = Array.length sizes in
  let reward =
    Decomposed.of_level ~sizes ~level:levels (fun s -> if s = 0 then 1.0 else 0.0)
  in
  let rewards =
    match mode with
    | State_lumping.Ordinary -> [ reward ]
    | State_lumping.Exact -> [ Decomposed.constant ~sizes 0.0 ]
  in
  (rewards, Decomposed.constant ~sizes 1.0)

let lump_with ?pool ?par_threshold mode md =
  let rewards, initial = lump_inputs mode md in
  let stats = Refiner.create_stats () in
  let r = Compositional.lump ~stats ?pool ?par_threshold mode md ~rewards ~initial in
  (r, stats)

let counters s =
  [
    ("splitter_passes", s.Refiner.splitter_passes);
    ("key_evals", s.Refiner.key_evals);
    ("splits", s.Refiner.splits);
    ("blocks_created", s.Refiner.blocks_created);
    ("cache_hits", s.Refiner.cache_hits);
    ("cache_misses", s.Refiner.cache_misses);
    ("nodes_rebuilt", s.Refiner.nodes_rebuilt);
    ("nodes_reused", s.Refiner.nodes_reused);
  ]

let differential_lump mode spec =
  let md = Gen_md.of_spec spec in
  let r_seq, s_seq = lump_with mode md in
  List.iter
    (fun d ->
      (* par_threshold 1 forces every sharded loop on, however small the
         model — the whole point is exercising the parallel paths. *)
      let r_par, s_par = lump_with ~pool:(pool d) ~par_threshold:1 mode md in
      let np = Array.length r_seq.Compositional.partitions in
      if Array.length r_par.Compositional.partitions <> np then
        QCheck.Test.fail_reportf "%d domains: partition count differs" d;
      Array.iteri
        (fun l p ->
          if not (Partition.equal p r_par.Compositional.partitions.(l)) then
            QCheck.Test.fail_reportf "%d domains: level %d partition differs" d (l + 1))
        r_seq.Compositional.partitions;
      if not (Md.equal r_seq.Compositional.lumped r_par.Compositional.lumped) then
        QCheck.Test.fail_reportf "%d domains: lumped diagram not bit-identical" d;
      List.iter2
        (fun (name, seq) (_, par) ->
          if seq <> par then
            QCheck.Test.fail_reportf "%d domains: %s %d, sequential %d" d name par seq)
        (counters s_seq) (counters s_par))
    pool_sizes;
  true

let test_differential_ordinary =
  QCheck.Test.make ~count:40
    ~name:"parallel lump bit-identical to sequential (ordinary, 1/2/4/7 domains)"
    (Qcheck_gen.md_model ()) (differential_lump State_lumping.Ordinary)

let test_differential_exact =
  QCheck.Test.make ~count:25
    ~name:"parallel lump bit-identical to sequential (exact, 1/2/4/7 domains)"
    (Qcheck_gen.md_model ()) (differential_lump State_lumping.Exact)

let test_differential_chain =
  QCheck.Test.make ~count:25
    ~name:"parallel lump bit-identical to sequential (flat chains)"
    Qcheck_gen.chain (fun c -> differential_lump State_lumping.Ordinary (Spec.Chain c))

(* ----- batched sweeps under domains ----- *)

(* The sweep engine refines memo-missing levels concurrently on cache
   forks; the result must stay bit-identical to the sequential engine
   and to an independent per-point lump at every domain count.  The
   family mirrors the bench's: a threshold indicator on the last level,
   its complement (same class contents, flipped class order — forces a
   level-memo miss that the persistent row store answers), a combined
   point, and a repeat. *)
let sweep_points md =
  let sizes = Md.sizes md in
  let level = Array.length sizes in
  let size = sizes.(level - 1) in
  let k = max 1 (size / 2) in
  let ind up =
    Decomposed.of_level ~sizes ~level (fun s ->
        if (if up then s >= k else s < k) then 1.0 else 0.0)
  in
  let reward =
    Decomposed.of_level ~sizes ~level (fun s -> if s = 0 then 1.0 else 0.0)
  in
  let initial = Decomposed.constant ~sizes 1.0 in
  List.map
    (fun rewards -> { Compositional.sweep_rewards = rewards; sweep_initial = initial })
    [ [ reward ]; [ ind true; reward ]; [ ind false; reward ]; [ reward ] ]

let test_differential_sweep =
  QCheck.Test.make ~count:25
    ~name:"parallel lump_sweep bit-identical to sequential and per-point (2/4 domains)"
    (Qcheck_gen.md_model ()) (fun spec ->
      let md = Gen_md.of_spec spec in
      let points = sweep_points md in
      let seq = Compositional.lump_sweep State_lumping.Ordinary md ~points in
      let independent =
        List.map
          (fun p ->
            Compositional.lump State_lumping.Ordinary md
              ~rewards:p.Compositional.sweep_rewards
              ~initial:p.Compositional.sweep_initial)
          points
      in
      List.iter2
        (fun s i ->
          if not (Md.equal s.Compositional.lumped i.Compositional.lumped) then
            QCheck.Test.fail_reportf "sweep point differs from independent lump";
          if
            not
              (Array.for_all2 Partition.equal s.Compositional.partitions
                 i.Compositional.partitions)
          then QCheck.Test.fail_reportf "sweep point partitions differ")
        seq independent;
      List.iter
        (fun d ->
          let par =
            Compositional.lump_sweep ~pool:(pool d) ~par_threshold:1
              State_lumping.Ordinary md ~points
          in
          List.iter2
            (fun s p ->
              if not (Md.equal s.Compositional.lumped p.Compositional.lumped) then
                QCheck.Test.fail_reportf "%d domains: sweep diagram not bit-identical" d;
              if
                not
                  (Array.for_all2 Partition.equal s.Compositional.partitions
                     p.Compositional.partitions)
              then QCheck.Test.fail_reportf "%d domains: sweep partitions differ" d)
            seq par)
        [ 2; 4 ];
      true)

(* Fixed multi-level specs for the unit-level differentials below —
   small but non-trivial (something actually lumps in both). *)
let kron_spec =
  Spec.Kron
    { sizes = [| 3; 3 |]; events = 2; symmetric = true; ring = true; merged = false;
      seed = 42 }

let direct_spec = Spec.Direct { sizes = [| 3; 2; 3 |]; width = 2; symmetric = true; seed = 7 }

let test_rebuild_parallel_identical () =
  List.iter
    (fun spec ->
      let md = Gen_md.of_spec spec in
      let r_seq, _ = lump_with State_lumping.Ordinary md in
      let r_par =
        Compositional.lump_with_partitions ~pool:(pool 4) ~par_threshold:1
          State_lumping.Ordinary md r_seq.Compositional.partitions
      in
      Alcotest.(check bool)
        (Printf.sprintf "parallel rebuild of %s bit-identical" (Spec.to_string spec))
        true
        (Md.equal r_seq.Compositional.lumped r_par.Compositional.lumped))
    [ kron_spec; direct_spec ]

let test_trace_fallback_identical () =
  (* Tracing forces the level loop sequential; the result must not
     change — only the schedule does. *)
  let md = Gen_md.of_spec kron_spec in
  let r_seq, s_seq = lump_with State_lumping.Ordinary md in
  Trace.start ();
  Fun.protect ~finally:Trace.stop @@ fun () ->
  let r_tr, s_tr = lump_with ~pool:(pool 4) ~par_threshold:1 State_lumping.Ordinary md in
  Alcotest.(check bool) "lumped diagram identical under tracing" true
    (Md.equal r_seq.Compositional.lumped r_tr.Compositional.lumped);
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) name a b)
    (counters s_seq) (counters s_tr)

(* ----- Domain_pool ----- *)

let test_pool_exactly_once () =
  let p = pool 4 in
  let n = 103 in
  let runs = Array.init n (fun _ -> Atomic.make 0) in
  Domain_pool.run p ~n (fun i -> Atomic.incr runs.(i));
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "task %d runs once" i) 1 (Atomic.get r))
    runs

let test_pool_trivial_runs () =
  let p = pool 4 in
  let hits = Atomic.make 0 in
  Domain_pool.run p ~n:0 (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "n=0 runs nothing" 0 (Atomic.get hits);
  Domain_pool.run p ~n:1 (fun i ->
      Alcotest.(check int) "n=1 runs index 0" 0 i;
      Atomic.incr hits);
  Alcotest.(check int) "n=1 runs once" 1 (Atomic.get hits)

let test_pool_clamped_size () =
  let p = Domain_pool.create ~domains:0 in
  Alcotest.(check int) "size clamped to 1" 1 (Domain_pool.size p);
  let sum = ref 0 in
  Domain_pool.run p ~n:5 (fun i -> sum := !sum + i);
  Alcotest.(check int) "inline run complete" 10 !sum;
  Domain_pool.shutdown p

let test_pool_run_after_shutdown () =
  let p = Domain_pool.create ~domains:3 in
  let count = Atomic.make 0 in
  Domain_pool.run p ~n:9 (fun _ -> Atomic.incr count);
  Domain_pool.shutdown p;
  Domain_pool.shutdown p;
  Domain_pool.run p ~n:9 (fun _ -> Atomic.incr count);
  Alcotest.(check int) "all tasks ran before and after shutdown" 18 (Atomic.get count)

let test_pool_nesting () =
  let p = pool 4 in
  let total = Atomic.make 0 in
  Domain_pool.run p ~n:4 (fun _ ->
      Domain_pool.run p ~n:8 (fun _ -> ignore (Atomic.fetch_and_add total 1)));
  Alcotest.(check int) "nested tasks all ran" 32 (Atomic.get total)

let test_pool_exception () =
  let p = pool 4 in
  let ran = Atomic.make 0 in
  let raised =
    try
      Domain_pool.run p ~n:16 (fun i ->
          ignore (Atomic.fetch_and_add ran 1);
          if i = 5 then failwith "boom");
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception rethrown" true raised;
  Alcotest.(check int) "all tasks settled" 16 (Atomic.get ran)

let test_pool_nested_exception () =
  let p = pool 4 in
  let caught =
    try
      Domain_pool.run p ~n:2 (fun _ ->
          Domain_pool.run p ~n:4 (fun j -> if j = 3 then failwith "inner"));
      false
    with Failure m -> m = "inner"
  in
  Alcotest.(check bool) "exception crosses the nesting boundary" true caught

let test_pool_split () =
  List.iter
    (fun (n, tasks) ->
      let chunks = List.init tasks (Domain_pool.split ~n ~tasks) in
      (* Contiguous cover of [0, n) in chunk order... *)
      let expected = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !expected lo;
          Alcotest.(check bool) "ordered" true (lo <= hi);
          expected := hi)
        chunks;
      Alcotest.(check int) "covers n" n !expected;
      (* ...balanced to within one element... *)
      let sizes = List.map (fun (lo, hi) -> hi - lo) chunks in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1);
      (* ...and a pure function of (n, tasks). *)
      Alcotest.(check bool) "deterministic" true
        (List.init tasks (Domain_pool.split ~n ~tasks) = chunks))
    [ (10, 3); (3, 10); (0, 4); (1, 1); (1024, 7); (97, 16) ]

let test_pool_chaos_flag () =
  (* The CI chaos job runs this very suite under MDL_CHAOS=1, so assert
     the flag tracks the environment rather than a fixed value. *)
  let expected =
    match Sys.getenv_opt "MDL_CHAOS" with Some s when s <> "" -> true | _ -> false
  in
  Alcotest.(check bool) "chaos tracks MDL_CHAOS" expected (Domain_pool.chaos (pool 2))

(* ----- Gid_table under concurrent interning ----- *)

(* Four domains intern overlapping slices of one key universe; record
   which gid each interning returned.  A deterministic walk of the
   records then reduces gids to first-appearance ranks — the same
   reduction the refinement pipelines use — which must be identical
   run-to-run even though the gid values themselves are racy. *)
let stress_gid_table () =
  let nkeys = 1_000 in
  let per_task = 750 in
  let table = Gid_table.create ~hash:Hashtbl.hash ~equal:String.equal () in
  let key j = Printf.sprintf "key-%d" (j mod nkeys) in
  let gids = Array.make (4 * per_task) (-1) in
  Domain_pool.run (pool 4) ~n:4 (fun i ->
      for k = 0 to per_task - 1 do
        gids.((i * per_task) + k) <- Gid_table.intern table (key ((i * 250) + k))
      done);
  (table, key, gids)

let ranks_of gids =
  let rank = Hashtbl.create 1_024 in
  Array.map
    (fun g ->
      match Hashtbl.find_opt rank g with
      | Some r -> r
      | None ->
          let r = Hashtbl.length rank in
          Hashtbl.add rank g r;
          r)
    gids

let test_gid_table_stress () =
  let nkeys = 1_000 in
  let table, key, gids = stress_gid_table () in
  Alcotest.(check int) "every distinct key interned once" nkeys (Gid_table.size table);
  (* Gids are dense, and every record agrees with a post-hoc lookup —
     no key ever received two ids. *)
  let seen = Array.make nkeys false in
  Array.iter
    (fun g ->
      Alcotest.(check bool) "gid in range" true (g >= 0 && g < nkeys);
      seen.(g) <- true)
    gids;
  Alcotest.(check bool) "gids dense" true (Array.for_all Fun.id seen);
  Array.iteri
    (fun idx g ->
      let j = ((idx / 750) * 250) + (idx mod 750) in
      Alcotest.(check (option int)) "find agrees with intern" (Some g)
        (Gid_table.find table (key j)))
    gids;
  (* Rank reduction is run-to-run deterministic; raw gids need not be. *)
  let _, _, gids2 = stress_gid_table () in
  Alcotest.(check bool) "rank assignments identical run-to-run" true
    (ranks_of gids = ranks_of gids2)

let test_gid_table_growth () =
  (* 10k keys through 16 shards of 16 initial buckets: every shard grows
     several times; lookups must survive the republished bucket arrays. *)
  let table = Gid_table.create ~hash:Hashtbl.hash ~equal:Int.equal () in
  let n = 10_000 in
  for j = 0 to n - 1 do
    Alcotest.(check int) "sequential gids are first-appearance order" j
      (Gid_table.intern table (j * 7))
  done;
  Alcotest.(check int) "size after growth" n (Gid_table.size table);
  for j = 0 to n - 1 do
    Alcotest.(check (option int)) "find after growth" (Some j)
      (Gid_table.find table (j * 7))
  done;
  Alcotest.(check (option int)) "miss is None" None (Gid_table.find table (-1))

let test_gid_rank_determinism =
  QCheck.Test.make ~count:20 ~name:"gid rank reduction deterministic (random overlap)"
    QCheck.(pair (int_range 1 500) (int_range 0 1_000))
    (fun (nkeys, seed) ->
      (* Four domains intern pseudo-random overlapping draws from a
         [nkeys]-key universe; the first-appearance ranks of the merged
         record must be identical run-to-run. *)
      let draws = 3 * nkeys in
      let run () =
        let table = Gid_table.create ~hash:Hashtbl.hash ~equal:Int.equal () in
        let gids = Array.make (4 * draws) (-1) in
        Domain_pool.run (pool 4) ~n:4 (fun i ->
            let prng = Mdl_util.Prng.of_seed ((seed * 4) + i) in
            for k = 0 to draws - 1 do
              gids.((i * draws) + k) <-
                Gid_table.intern table (Mdl_util.Prng.int prng nkeys)
            done);
        gids
      in
      ranks_of (run ()) = ranks_of (run ()))

(* ----- Key_cache forks ----- *)

let identity_slice n : Refiner.slice = (Array.init n Fun.id, 0, n)

let test_key_cache_fork () =
  let md = Gen_md.of_spec direct_spec in
  let kc = Key_cache.create () in
  Key_cache.bind kc md;
  let node = List.hd (Md.live_nodes md).(0) in
  let slice = identity_slice (Md.size md 1) in
  let eval c = Key_cache.splitter_keys c Local_key.Formal_sums State_lumping.Ordinary ~node slice in
  let states, gids = eval kc in
  let gid_count = Key_cache.gid_count kc in
  let fork = Key_cache.fork kc in
  Alcotest.(check int) "fork starts with zero hits" 0 (Key_cache.hits fork);
  Alcotest.(check int) "fork starts with zero misses" 0 (Key_cache.misses fork);
  (* The fork's rows memo is fresh (first call misses), but it interns
     into the SAME gid table — equal keys get the parent's gids and no
     new ids are allocated. *)
  let fstates, fgids = eval fork in
  Alcotest.(check int) "fork first call is a miss" 1 (Key_cache.misses fork);
  Alcotest.(check bool) "fork returns the parent's states" true (states = fstates);
  Alcotest.(check bool) "fork returns the parent's gids" true (gids = fgids);
  Alcotest.(check int) "no new gids allocated" gid_count (Key_cache.gid_count fork);
  Alcotest.(check int) "parent counters untouched by the fork" 1 (Key_cache.misses kc)

let test_eval_keys_matches_splitter_keys () =
  let md = Gen_md.of_spec kron_spec in
  let ctx = Local_key.make_context md in
  let p = pool 4 in
  List.iteri
    (fun l nodes ->
      let slice = identity_slice (Md.size md (l + 1)) in
      List.iter
        (fun node ->
          let listed =
            Local_key.splitter_keys ctx Local_key.Formal_sums State_lumping.Ordinary
              node slice
          in
          let states, keys =
            Local_key.eval_keys ~pool:p ~par_threshold:1 ctx Local_key.Formal_sums
              State_lumping.Ordinary node slice
          in
          let zipped =
            List.init (Array.length states) (fun i -> (states.(i), keys.(i)))
          in
          Alcotest.(check bool) "sharded eval_keys = sequential splitter_keys" true
            (List.for_all2
               (fun (s1, k1) (s2, k2) -> s1 = s2 && Local_key.equal k1 k2)
               listed zipped))
        nodes)
    (Array.to_list (Md.live_nodes md))

let test_warm_col_cache () =
  let md = Gen_md.of_spec direct_spec in
  let lazy_md = Gen_md.of_spec direct_spec in
  Md.warm_col_cache md;
  Array.iteri
    (fun l nodes ->
      List.iter
        (fun node ->
          for s = 0 to Md.size md (l + 1) - 1 do
            Alcotest.(check bool) "warmed column = lazily filled column" true
              (Md.node_col md node s = Md.node_col lazy_md node s)
          done)
        nodes)
    (Md.live_nodes md)

(* ----- Metrics exactness under domains ----- *)

let test_metrics_counters_exact () =
  let c = Metrics.counter "test.parallel.incrs" in
  let before = Metrics.counter_value "test.parallel.incrs" in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let per_domain = 25_000 in
  Domain_pool.run (pool 4) ~n:4 (fun _ ->
      for _ = 1 to per_domain do
        Metrics.incr c
      done);
  (* Exactly 4 x per_domain: a non-atomic counter loses increments here. *)
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Metrics.counter_value "test.parallel.incrs" - before)

let test_metrics_gauge_histogram_exact () =
  let g = Metrics.gauge "test.parallel.hwm" in
  let h = Metrics.histogram "test.parallel.obs" in
  let count0, sum0 = Metrics.histogram_stats "test.parallel.obs" in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let per_domain = 500 in
  Domain_pool.run (pool 4) ~n:4 (fun i ->
      for k = 1 to per_domain do
        Metrics.set_max g (float_of_int ((i * per_domain) + k));
        (* Power-of-two observations: float addition is exact whatever
           order the shards accumulate and merge in. *)
        Metrics.observe h 0.25
      done);
  let count, sum = Metrics.histogram_stats "test.parallel.obs" in
  Alcotest.(check int) "histogram count exact" (4 * per_domain) (count - count0);
  Alcotest.(check (float 0.0)) "histogram sum exact"
    (0.25 *. float_of_int (4 * per_domain))
    (sum -. sum0);
  Alcotest.(check (float 0.0)) "gauge high-water mark" (float_of_int (4 * per_domain))
    (Metrics.gauge_value "test.parallel.hwm")

let test_metrics_disabled_noop () =
  let c = Metrics.counter "test.parallel.disabled" in
  let before = Metrics.counter_value "test.parallel.disabled" in
  Alcotest.(check bool) "registry disabled" false (Metrics.enabled ());
  Domain_pool.run (pool 4) ~n:4 (fun _ ->
      for _ = 1 to 1_000 do
        Metrics.incr c
      done);
  Alcotest.(check int) "disabled updates are no-ops" before
    (Metrics.counter_value "test.parallel.disabled")

let test_differential_chain_exact =
  QCheck.Test.make ~count:15
    ~name:"parallel lump bit-identical to sequential (flat chains, exact)"
    Qcheck_gen.chain (fun c -> differential_lump State_lumping.Exact (Spec.Chain c))

let qcheck_tests =
  [
    test_differential_ordinary;
    test_differential_exact;
    test_differential_chain;
    test_differential_chain_exact;
    test_differential_sweep;
    test_gid_rank_determinism;
  ]

let tests =
  [
    Alcotest.test_case "pool runs every task exactly once" `Quick test_pool_exactly_once;
    Alcotest.test_case "pool n=0 and n=1 run inline" `Quick test_pool_trivial_runs;
    Alcotest.test_case "pool size clamps to 1" `Quick test_pool_clamped_size;
    Alcotest.test_case "pool usable after shutdown" `Quick test_pool_run_after_shutdown;
    Alcotest.test_case "pool nesting uses the whole pool" `Quick test_pool_nesting;
    Alcotest.test_case "pool rethrows after settling" `Quick test_pool_exception;
    Alcotest.test_case "pool rethrows from nested runs" `Quick test_pool_nested_exception;
    Alcotest.test_case "split chunks: contiguous, balanced, pure" `Quick test_pool_split;
    Alcotest.test_case "chaos flag tracks MDL_CHAOS" `Quick test_pool_chaos_flag;
    Alcotest.test_case "parallel rebuild bit-identical" `Quick
      test_rebuild_parallel_identical;
    Alcotest.test_case "tracing falls back to sequential levels, same result" `Quick
      test_trace_fallback_identical;
    Alcotest.test_case "gid table: concurrent overlapping interning" `Quick
      test_gid_table_stress;
    Alcotest.test_case "gid table: growth and lookup" `Quick test_gid_table_growth;
    Alcotest.test_case "key cache forks share the gid table" `Quick test_key_cache_fork;
    Alcotest.test_case "sharded eval_keys matches splitter_keys" `Quick
      test_eval_keys_matches_splitter_keys;
    Alcotest.test_case "warm_col_cache fills what node_col would" `Quick
      test_warm_col_cache;
    Alcotest.test_case "metrics counters exact under 4 domains" `Quick
      test_metrics_counters_exact;
    Alcotest.test_case "metrics gauge/histogram exact under 4 domains" `Quick
      test_metrics_gauge_histogram_exact;
    Alcotest.test_case "metrics disabled: updates are no-ops" `Quick
      test_metrics_disabled_noop;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

(* Integration tests over the example models: compositional lumping
   preserves measures, is optimal for the symmetric models (checked with
   the flat state-level algorithm as in Section 5), and the tandem
   system reproduces the qualitative Table-1 behaviour. *)

module Vec = Mdl_sparse.Vec
module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Partition = Mdl_partition.Partition
module Ctmc = Mdl_ctmc.Ctmc
module Solver = Mdl_ctmc.Solver
module State_lumping = Mdl_lumping.State_lumping
module Check = Mdl_lumping.Check
module Quotient = Mdl_lumping.Quotient
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Workstations = Mdl_models.Workstations
module Multitier = Mdl_models.Multitier
module Kanban = Mdl_models.Kanban
module Polling = Mdl_models.Polling
module Tandem = Mdl_models.Tandem

(* Steady-state reward computed (a) flat on the original chain and
   (b) on the compositionally lumped MD; they must agree. *)
let check_reward_preservation ~name md ss rewards initial result =
  ignore initial;
  let lumped_ss = Compositional.lump_statespace result ss in
  Alcotest.(check bool) (name ^ ": closed") true (Compositional.is_closed result ss);
  let pi, st = Md_solve.steady_state ~tol:1e-13 ~max_iter:200_000 md ss in
  Alcotest.(check bool) (name ^ ": original converged") true st.Solver.converged;
  let pi_l, st_l =
    Md_solve.steady_state ~tol:1e-13 ~max_iter:200_000 result.Compositional.lumped
      lumped_ss
  in
  Alcotest.(check bool) (name ^ ": lumped converged") true st_l.Solver.converged;
  let r_flat = Solver.expected_reward pi (Decomposed.to_vector rewards ss) in
  let r_lumped =
    Solver.expected_reward pi_l
      (Decomposed.to_vector (Compositional.lumped_rewards result rewards) lumped_ss)
  in
  Alcotest.(check (float 1e-7)) (name ^ ": steady-state reward preserved") r_flat r_lumped;
  (* distribution aggregation must also match *)
  Alcotest.(check bool) (name ^ ": aggregation matches") true
    (Vec.diff_inf (Compositional.aggregate_vector result ss lumped_ss pi) pi_l < 1e-7)

let test_workstations_lump_and_measures () =
  let b = Workstations.build (Workstations.default ~stations:4) in
  let ss = b.Workstations.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Workstations.md ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  (* 4 interchangeable 3-state stations: 81 local states -> at most the
     C(6,2)=15 multisets; the reward (number Up) is class-constant. *)
  let p2 = result.Compositional.partitions.(1) in
  Alcotest.(check int) "stations level lumps to multisets" 15 (Partition.num_classes p2);
  check_reward_preservation ~name:"workstations" b.Workstations.md ss
    b.Workstations.rewards_operational b.Workstations.initial result

let test_workstations_optimality () =
  (* Section 5's check: feed the compositionally lumped chain to the
     flat state-level algorithm; no further lumping should be possible
     (for this fully symmetric model). *)
  let b = Workstations.build (Workstations.default ~stations:3) in
  let ss = b.Workstations.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Workstations.md ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  let lumped_flat = Mdl_md.Md_vector.to_csr result.Compositional.lumped lumped_ss in
  let rewards_vec =
    Decomposed.to_vector (Compositional.lumped_rewards result b.Workstations.rewards_operational)
      lumped_ss
  in
  let initial_p =
    Partition.group_by (Statespace.size lumped_ss)
      (fun s -> rewards_vec.(s))
      (fun a b -> Mdl_util.Floatx.compare_approx a b)
  in
  let further = State_lumping.coarsest Ordinary lumped_flat ~initial:initial_p in
  Alcotest.(check int) "no further state-level lumping"
    (Statespace.size lumped_ss)
    (Partition.num_classes further)

let test_workstations_exact_mode () =
  let b = Workstations.build (Workstations.default ~stations:3) in
  let ss = b.Workstations.exploration.Model.statespace in
  let result =
    Compositional.lump Exact b.Workstations.md ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  Alcotest.(check bool) "exact lump non-trivial" true
    (Statespace.size (Compositional.lump_statespace result ss) < Statespace.size ss);
  Alcotest.(check bool) "closed" true (Compositional.is_closed result ss);
  (* Global exact lumpability of the flat chain w.r.t. the induced
     partition on reachable states. *)
  let flat = Mdl_md.Md_vector.to_csr b.Workstations.md ss in
  let lumped_ss = Compositional.lump_statespace result ss in
  let assignment =
    Array.init (Statespace.size ss) (fun i ->
        match
          Statespace.index lumped_ss (Compositional.class_tuple result (Statespace.tuple ss i))
        with
        | Some c -> c
        | None -> Alcotest.fail "missing class")
  in
  let gp = Partition.of_class_assignment assignment in
  Alcotest.(check bool) "globally exactly lumpable" true (Check.exact flat gp)

let test_polling_lump_and_measures () =
  let b = Polling.build (Polling.default ~customers:2) in
  let ss = b.Polling.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Polling.md ~rewards:[ b.Polling.rewards_busy_servers ]
      ~initial:b.Polling.initial
  in
  Alcotest.(check bool) "polling lumps" true
    (Statespace.size (Compositional.lump_statespace result ss) < Statespace.size ss);
  check_reward_preservation ~name:"polling" b.Polling.md ss b.Polling.rewards_busy_servers
    b.Polling.initial result

(* A reduced-topology tandem instance (4 hypercube servers, 2 MSMQ
   servers over 2 queues) keeps the flat reference solutions cheap while
   exercising every event type. *)
let small_tandem jobs =
  { (Tandem.default ~jobs) with Tandem.hyper_dim = 2; msmq_servers = 2; msmq_queues = 2 }

let test_tandem_lump_and_measures () =
  let b = Tandem.build (small_tandem 1) in
  let ss = b.Tandem.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Tandem.md ~rewards:[ b.Tandem.rewards_availability ]
      ~initial:b.Tandem.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  let reduction =
    float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss)
  in
  Alcotest.(check bool) "tandem reduction > 2x" true (reduction > 2.0);
  Alcotest.(check bool) "closed" true (Compositional.is_closed result ss);
  check_reward_preservation ~name:"tandem" b.Tandem.md ss b.Tandem.rewards_availability
    b.Tandem.initial result

let test_tandem_msmq_jobs_measure () =
  (* A different (non-constant) reward: expected jobs in the MSMQ
     queues; the initial partition must respect it and the measure must
     be preserved. *)
  let b = Tandem.build (small_tandem 2) in
  let ss = b.Tandem.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Tandem.md ~rewards:[ b.Tandem.rewards_msmq_jobs ]
      ~initial:b.Tandem.initial
  in
  check_reward_preservation ~name:"tandem msmq-jobs" b.Tandem.md ss
    b.Tandem.rewards_msmq_jobs b.Tandem.initial result

(* The three steady-state kernels must agree on the lumped quotients of
   the example models — the in-tree version of the bench solver race,
   gated at the same 1e-9 on the reported measure. *)
let check_solver_race ~name ss rewards result =
  let lumped = result.Compositional.lumped in
  let lumped_ss = Compositional.lump_statespace result ss in
  let r =
    Decomposed.to_vector (Compositional.lumped_rewards result rewards) lumped_ss
  in
  let reward which (pi, st) =
    Alcotest.(check bool) (name ^ ": " ^ which ^ " converged") true st.Solver.converged;
    Solver.expected_reward pi r
  in
  let via_power =
    reward "power" (Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 lumped lumped_ss)
  in
  let via_gs =
    reward "gauss-seidel"
      (Solver.steady_state_gauss_seidel ~tol:1e-13 ~max_iter:100_000
         ~ordering:Solver.Rcm ~relax:0.9
         (Md_solve.ctmc_of lumped lumped_ss))
  in
  let via_krylov =
    reward "krylov"
      (Md_solve.steady_state_krylov ~tol:1e-13 ~max_iter:100_000 lumped lumped_ss)
  in
  Alcotest.(check bool) (name ^ ": gauss-seidel within 1e-9") true
    (Float.abs (via_gs -. via_power) < 1e-9);
  Alcotest.(check bool) (name ^ ": krylov within 1e-9") true
    (Float.abs (via_krylov -. via_power) < 1e-9)

let test_tandem_solver_race () =
  let b = Tandem.build (small_tandem 1) in
  let ss = b.Tandem.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Tandem.md ~rewards:[ b.Tandem.rewards_availability ]
      ~initial:b.Tandem.initial
  in
  check_solver_race ~name:"tandem" ss b.Tandem.rewards_availability result

let test_kanban_solver_race () =
  let b = Kanban.build (Kanban.default ~cards:2) in
  let ss = b.Kanban.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Kanban.md ~rewards:[ b.Kanban.rewards_in_system ]
      ~initial:b.Kanban.initial
  in
  check_solver_race ~name:"kanban" ss b.Kanban.rewards_in_system result

let test_md_transient_matches_flat () =
  let b = Workstations.build (Workstations.default ~stations:3) in
  let ss = b.Workstations.exploration.Model.statespace in
  let pi0 = Decomposed.to_vector b.Workstations.initial ss in
  let via_md = Md_solve.transient ~t:0.6 b.Workstations.md ss pi0 in
  let via_flat = Solver.transient ~t:0.6 (Md_solve.ctmc_of b.Workstations.md ss) pi0 in
  Alcotest.(check bool) "MD-driven transient = flat transient" true
    (Vec.diff_inf via_md via_flat < 1e-9)

let test_transient_aggregation_commutes_on_lumped_md () =
  (* Ordinary lumping: aggregating the transient distribution of the
     original MD equals the transient of the lumped MD from the
     aggregated initial. *)
  let b = Polling.build (Polling.default ~customers:2) in
  let ss = b.Polling.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Polling.md ~rewards:[ b.Polling.rewards_busy_servers ]
      ~initial:b.Polling.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  let pi0 = Decomposed.to_vector b.Polling.initial ss in
  let pi0_l = Compositional.aggregate_vector result ss lumped_ss pi0 in
  let t = 0.9 in
  let pi_t = Md_solve.transient ~t b.Polling.md ss pi0 in
  let pi_t_l = Md_solve.transient ~t result.Compositional.lumped lumped_ss pi0_l in
  Alcotest.(check bool) "transient aggregation commutes" true
    (Vec.diff_inf (Compositional.aggregate_vector result ss lumped_ss pi_t) pi_t_l < 1e-9)

let test_multitier_four_levels () =
  let b = Multitier.build (Multitier.default ~clients:3) in
  let ss = b.Multitier.exploration.Model.statespace in
  Alcotest.(check int) "four levels" 4 (Md.levels b.Multitier.md);
  let result =
    Compositional.lump Ordinary b.Multitier.md
      ~rewards:[ b.Multitier.rewards_thinking; b.Multitier.rewards_db_fast ]
      ~initial:b.Multitier.initial
  in
  (* Both replicated tiers lump to queue-length multisets. *)
  let p2 = result.Compositional.partitions.(1) in
  let p3 = result.Compositional.partitions.(2) in
  Alcotest.(check bool) "front tier lumps" true
    (Partition.num_classes p2 < Partition.size p2);
  Alcotest.(check bool) "app tier lumps" true
    (Partition.num_classes p3 < Partition.size p3);
  check_reward_preservation ~name:"multitier thinking" b.Multitier.md ss
    b.Multitier.rewards_thinking b.Multitier.initial result;
  check_reward_preservation ~name:"multitier db-fast" b.Multitier.md ss
    b.Multitier.rewards_db_fast b.Multitier.initial result

let test_multitier_md_matches_semantics () =
  (* Cross-check the 4-level MD against direct enumeration, as done for
     the other models in suite_san (inlined here to reuse the builder). *)
  let b = Multitier.build (Multitier.default ~clients:2) in
  let exp = b.Multitier.exploration in
  let via_md = Mdl_md.Md_vector.to_csr b.Multitier.md exp.Model.statespace in
  (* row sums of R must equal the summed exit rates of the direct
     semantics; spot-check through the CTMC wrapper *)
  let ctmc = Md_solve.ctmc_of b.Multitier.md exp.Model.statespace in
  Alcotest.(check bool) "irreducible" true (Ctmc.is_irreducible ctmc);
  Alcotest.(check int) "square" (Statespace.size exp.Model.statespace)
    (Mdl_sparse.Csr.rows via_md)

let test_kanban_build_and_measures () =
  let b = Kanban.build (Kanban.default ~cards:2) in
  let ss = b.Kanban.exploration.Model.statespace in
  Alcotest.(check int) "four levels" 4 (Md.levels b.Kanban.md);
  let result =
    Compositional.lump Ordinary b.Kanban.md ~rewards:[ b.Kanban.rewards_in_system ]
      ~initial:b.Kanban.initial
  in
  check_reward_preservation ~name:"kanban" b.Kanban.md ss b.Kanban.rewards_in_system
    b.Kanban.initial result

let test_kanban_merge_unlocks_cell_symmetry () =
  (* Cells 2 and 3 are identical but occupy different levels: per-level
     lumping sees nothing there; merging levels 2 and 3 exposes the swap
     symmetry.  This is the model-level-complementarity experiment (P6
     in EXPERIMENTS.md). *)
  let b = Kanban.build (Kanban.default ~cards:2) in
  let ss = b.Kanban.exploration.Model.statespace in
  let md = b.Kanban.md in
  let sizes = Md.sizes md in
  let per_level_result =
    Compositional.lump Ordinary md
      ~rewards:[ Decomposed.constant ~sizes 1.0 ]
      ~initial:(Decomposed.constant ~sizes 1.0)
  in
  let per_level_lumped =
    Statespace.size
      (Compositional.lump_statespace per_level_result ss)
  in
  (* now merge cells 2 and 3 into one level and lump again *)
  let merged = Mdl_md.Restructure.merge_adjacent md 2 in
  let merged_ss = Statespace.map ss (Mdl_md.Restructure.merge_tuple md 2) in
  let msizes = Md.sizes merged in
  let merged_result =
    Compositional.lump Ordinary merged
      ~rewards:[ Decomposed.constant ~sizes:msizes 1.0 ]
      ~initial:(Decomposed.constant ~sizes:msizes 1.0)
  in
  let merged_lumped =
    Statespace.size (Compositional.lump_statespace merged_result merged_ss)
  in
  Alcotest.(check bool) "merging unlocks more lumping" true
    (merged_lumped < per_level_lumped);
  Alcotest.(check bool) "merged closed" true
    (Compositional.is_closed merged_result merged_ss);
  (* and the lumped merged chain has the same stationary measure *)
  let pi, _ = Md_solve.steady_state ~tol:1e-12 md ss in
  let r_orig =
    Solver.expected_reward pi (Decomposed.to_vector b.Kanban.rewards_in_system ss)
  in
  let lumped_ss2 = Compositional.lump_statespace merged_result merged_ss in
  let pi_l, _ =
    Md_solve.steady_state ~tol:1e-12 merged_result.Compositional.lumped lumped_ss2
  in
  (* The reward was not protected by the (constant) initial partition,
     so the lumped classes mix reward values; class-averaging is valid
     here because the classes are orbits of a chain automorphism (the
     cell-2/3 swap), under which the stationary distribution is uniform
     within each class. *)
  let reward_merged_ss =
    let v = Decomposed.to_vector b.Kanban.rewards_in_system ss in
    let out = Array.make (Statespace.size merged_ss) 0.0 in
    Statespace.iter
      (fun i s ->
        match Statespace.index merged_ss (Mdl_md.Restructure.merge_tuple md 2 s) with
        | Some j -> out.(j) <- v.(i)
        | None -> assert false)
      ss;
    out
  in
  let r_lumped =
    Solver.expected_reward pi_l
      (Compositional.average_vector merged_result merged_ss lumped_ss2 reward_merged_ss)
  in
  Alcotest.(check (float 1e-6)) "measure preserved across merge+lump" r_orig r_lumped

let test_mttf_preserved_by_lumping () =
  (* Hitting times of a class-closed (here: structural, exit-rate-zero)
     target are class-constant under ordinary lumping: MTTF computed on
     the lumped chain equals MTTF on the full chain. *)
  let p = { (Workstations.default ~stations:4) with Workstations.restock = 0.0 } in
  let b = Workstations.build p in
  let ss = b.Workstations.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Workstations.md
      ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  let mttf md space =
    let ctmc = Md_solve.ctmc_of md space in
    fst
      (Mdl_ctmc.Absorption.mean_time_to_absorption ~tol:1e-12 ctmc
         ~absorbing:(fun i -> Ctmc.exit_rate ctmc i = 0.0))
  in
  let t_full = mttf b.Workstations.md ss in
  let t_lumped = mttf result.Compositional.lumped lumped_ss in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (Compositional.class_tuple result s) with
      | Some c ->
          Alcotest.(check (float 1e-7))
            (Printf.sprintf "hitting time state %d" i)
            t_lumped.(c) t_full.(i)
      | None -> Alcotest.fail "missing class")
    ss

let test_tandem_table1_shape () =
  (* The qualitative content of Table 1 at J=1: few nodes per level, a
     large overall reduction, and node counts unchanged by lumping. *)
  let b = Tandem.build (Tandem.default ~jobs:1) in
  let ss = b.Tandem.exploration.Model.statespace in
  let counts, _ = Md.stats b.Tandem.md in
  Alcotest.(check int) "one root" 1 counts.(0);
  Alcotest.(check bool) "few level-2 nodes" true (counts.(1) <= 10);
  Alcotest.(check bool) "few level-3 nodes" true (counts.(2) <= 10);
  let result =
    Compositional.lump Ordinary b.Tandem.md ~rewards:[ b.Tandem.rewards_availability ]
      ~initial:b.Tandem.initial
  in
  let lcounts, _ = Md.stats result.Compositional.lumped in
  Alcotest.(check (array int)) "node counts preserved by lumping" counts lcounts;
  let lumped_ss = Compositional.lump_statespace result ss in
  let reduction =
    float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss)
  in
  Alcotest.(check bool) "reduction in the tens" true (reduction > 20.0 && reduction < 100.0);
  Alcotest.(check bool) "lumped MD uses less memory" true
    (Md.memory_bytes result.Compositional.lumped < Md.memory_bytes b.Tandem.md)

let tests =
  [
    Alcotest.test_case "workstations lump+measures" `Quick test_workstations_lump_and_measures;
    Alcotest.test_case "workstations optimality" `Quick test_workstations_optimality;
    Alcotest.test_case "workstations exact mode" `Quick test_workstations_exact_mode;
    Alcotest.test_case "polling lump+measures" `Quick test_polling_lump_and_measures;
    Alcotest.test_case "tandem lump+measures (J=1)" `Slow test_tandem_lump_and_measures;
    Alcotest.test_case "tandem msmq-jobs measure (J=1)" `Slow test_tandem_msmq_jobs_measure;
    Alcotest.test_case "MD transient matches flat" `Quick test_md_transient_matches_flat;
    Alcotest.test_case "transient aggregation commutes (lumped MD)" `Quick
      test_transient_aggregation_commutes_on_lumped_md;
    Alcotest.test_case "multitier four levels" `Quick test_multitier_four_levels;
    Alcotest.test_case "multitier MD sanity" `Quick test_multitier_md_matches_semantics;
    Alcotest.test_case "kanban build+measures" `Quick test_kanban_build_and_measures;
    Alcotest.test_case "MTTF preserved by lumping" `Quick test_mttf_preserved_by_lumping;
    Alcotest.test_case "kanban merge unlocks cell symmetry" `Quick
      test_kanban_merge_unlocks_cell_symmetry;
    Alcotest.test_case "tandem Table-1 shape (J=1)" `Slow test_tandem_table1_shape;
    Alcotest.test_case "tandem solver race (J=1)" `Slow test_tandem_solver_race;
    Alcotest.test_case "kanban solver race" `Quick test_kanban_solver_race;
  ]

(* Tests for the paper's core contribution: compositional lumping of
   matrix diagrams (Definitions 3/4, Theorems 3/4, Figures 1-3). *)

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Ctmc = Mdl_ctmc.Ctmc
module Solver = Mdl_ctmc.Solver
module Check = Mdl_lumping.Check
module State_lumping = Mdl_lumping.State_lumping
module Quotient = Mdl_lumping.Quotient
module Formal_sum = Mdl_md.Formal_sum
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Kronecker = Mdl_kron.Kronecker
module Decomposed = Mdl_core.Decomposed
module Local_key = Mdl_core.Local_key
module Level_lumping = Mdl_core.Level_lumping
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Key_cache = Mdl_core.Key_cache
module Refiner = Mdl_partition.Refiner
module Spec = Mdl_oracle.Spec
module Gen_md = Mdl_oracle.Gen_md

let partition_testable = Alcotest.testable Partition.pp Partition.equal

(* ----- Decomposed functions ----- *)

let test_decomposed_of_level () =
  let sizes = [| 2; 3 |] in
  let d = Decomposed.of_level ~sizes ~level:2 (fun s -> float_of_int (s * s)) in
  Alcotest.(check (float 0.0)) "eval" 4.0 (Decomposed.eval d [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "factor" 1.0 (Decomposed.factor d 2 1);
  Alcotest.(check (float 0.0)) "other level factor" 0.0 (Decomposed.factor d 1 1)

let test_decomposed_point () =
  let sizes = [| 2; 2 |] in
  let d = Decomposed.point ~sizes [| 1; 0 |] in
  Alcotest.(check (float 0.0)) "at point" 1.0 (Decomposed.eval d [| 1; 0 |]);
  Alcotest.(check (float 0.0)) "off point" 0.0 (Decomposed.eval d [| 1; 1 |]);
  Alcotest.(check (float 0.0)) "off point" 0.0 (Decomposed.eval d [| 0; 0 |])

let test_decomposed_constant_and_vector () =
  let sizes = [| 2; 2 |] in
  let d = Decomposed.constant ~sizes 7.0 in
  let ss = Statespace.of_tuples ~levels:2 [ [| 0; 0 |]; [| 1; 1 |] ] in
  Alcotest.(check bool) "vector" true
    (Vec.approx_equal (Decomposed.to_vector d ss) [| 7.0; 7.0 |])

(* ----- single-level MDs: MD lumping must equal flat state lumping ----- *)

let md_of_flat r =
  let n = Csr.rows r in
  let md = Md.create ~sizes:[| n |] in
  let entries = ref [] in
  Csr.iter (fun i j v -> entries := (i, j, Md.scalar_sum md v) :: !entries) r;
  let root = Md.add_node md ~level:1 !entries in
  Md.set_root md root;
  md

let gen_chain =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* triplets =
      list_size (int_range 1 14)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
           (map (fun k -> float_of_int (k + 1)) (int_range 0 1)))
    in
    return (n, triplets))

let arb_chain =
  QCheck.make
    ~print:(fun (n, t) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";" (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
    gen_chain

let test_single_level_ordinary =
  QCheck.Test.make ~count:150 ~name:"1-level MD lumping = flat ordinary lumping" arb_chain
    (fun (n, t) ->
      let r = Csr.of_triplets ~rows:n ~cols:n t in
      let md = md_of_flat r in
      let flat = State_lumping.coarsest Ordinary r ~initial:(Partition.trivial n) in
      let local =
        Level_lumping.comp_lumping_level Ordinary md ~level:1
          ~initial:(Partition.trivial n)
      in
      Partition.equal flat local)

let test_single_level_exact =
  QCheck.Test.make ~count:150 ~name:"1-level MD lumping = flat exact lumping" arb_chain
    (fun (n, t) ->
      let r = Csr.of_triplets ~rows:n ~cols:n t in
      let md = md_of_flat r in
      let initial =
        Partition.group_by n
          (fun s -> Csr.row_sum r s)
          (fun a b -> Mdl_util.Floatx.compare_approx a b)
      in
      let flat = State_lumping.coarsest Exact r ~initial in
      let local = Level_lumping.comp_lumping_level Exact md ~level:1 ~initial in
      Partition.equal flat local)

(* ----- multi-level: random Kronecker descriptors with symmetries ----- *)

(* Local matrices that commute with a state swap generate lumpable
   levels.  We build each local matrix and then symmetrise it under the
   transposition of the last two states (when the level has >= 2
   states), so that those two states behave identically. *)
let symmetrise n m =
  if n < 2 then m
  else begin
    let swap s = if s = n - 1 then n - 2 else if s = n - 2 then n - 1 else s in
    let coo = Mdl_sparse.Coo.create ~rows:n ~cols:n in
    Csr.iter
      (fun i j v ->
        Mdl_sparse.Coo.add coo i j (v /. 2.0);
        Mdl_sparse.Coo.add coo (swap i) (swap j) (v /. 2.0))
      m;
    Csr.of_coo coo
  end

let build_symmetric_descriptor (sizes, nevents, seed) =
  let rng_state = Random.State.make [| seed |] in
  let gen_local n =
    let entry =
      QCheck.Gen.(triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 2))
    in
    let l =
      QCheck.Gen.generate1 ~rand:rng_state
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 (n * 2)) entry)
    in
    symmetrise n
      (Csr.of_triplets ~rows:n ~cols:n (List.map (fun (i, j, v) -> (i, j, float_of_int v)) l))
  in
  let events =
    List.init nevents (fun i ->
        {
          Kronecker.label = Printf.sprintf "e%d" i;
          rate = float_of_int (1 + (i mod 2));
          locals = Array.map gen_local sizes;
        })
  in
  Kronecker.make ~sizes events

let gen_sym_descriptor =
  QCheck.Gen.(
    let* nlevels = int_range 1 3 in
    let* sizes = array_size (return nlevels) (int_range 2 3) in
    let* nevents = int_range 1 3 in
    let* seed = int_range 0 1_000_000 in
    return (sizes, nevents, seed))

let arb_sym_descriptor =
  QCheck.make
    ~print:(fun (sizes, nevents, seed) ->
      Printf.sprintf "sizes=[%s] events=%d seed=%d"
        (String.concat ";" (List.map string_of_int (Array.to_list sizes)))
        nevents seed)
    gen_sym_descriptor

(* Global partition over the potential product space induced by
   per-level partitions. *)
let global_partition md partitions =
  let nlevels = Md.levels md in
  let sizes = Md.sizes md in
  let n = Array.fold_left ( * ) 1 sizes in
  let assignment = Array.make n 0 in
  let tuple_of idx =
    let t = Array.make nlevels 0 in
    let rem = ref idx in
    for l = nlevels - 1 downto 0 do
      t.(l) <- !rem mod sizes.(l);
      rem := !rem / sizes.(l)
    done;
    t
  in
  (* class id = mixed-radix over class tuples *)
  let class_sizes = Array.map Partition.num_classes partitions in
  for idx = 0 to n - 1 do
    let t = tuple_of idx in
    let acc = ref 0 in
    for l = 0 to nlevels - 1 do
      acc := (!acc * class_sizes.(l)) + Partition.class_of partitions.(l) t.(l)
    done;
    assignment.(idx) <- !acc
  done;
  Partition.of_class_assignment assignment

let test_theorem3_global_ordinary =
  QCheck.Test.make ~count:100
    ~name:"Theorem 3: locally lumped partitions are globally ordinarily lumpable"
    arb_sym_descriptor (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let sizes = Kronecker.sizes k in
      let rewards = [ Decomposed.constant ~sizes 0.0 ] in
      let initial = Decomposed.constant ~sizes 1.0 in
      let result = Compositional.lump Ordinary md ~rewards ~initial in
      let flat = Md.to_csr md in
      let gp = global_partition md result.Compositional.partitions in
      Check.ordinary flat gp)

let test_theorem4_global_exact =
  QCheck.Test.make ~count:100
    ~name:"Theorem 4: locally lumped partitions are globally exactly lumpable"
    arb_sym_descriptor (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let sizes = Kronecker.sizes k in
      let rewards = [ Decomposed.constant ~sizes 0.0 ] in
      let initial = Decomposed.constant ~sizes 1.0 in
      let result = Compositional.lump Exact md ~rewards ~initial in
      let flat = Md.to_csr md in
      let gp = global_partition md result.Compositional.partitions in
      Check.exact flat gp)

let test_lumped_md_is_quotient_ordinary =
  QCheck.Test.make ~count:100
    ~name:"lumped MD represents the Theorem-2 quotient (ordinary)" arb_sym_descriptor
    (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let sizes = Kronecker.sizes k in
      let rewards = [ Decomposed.constant ~sizes 0.0 ] in
      let initial = Decomposed.constant ~sizes 1.0 in
      let result = Compositional.lump Ordinary md ~rewards ~initial in
      let flat = Md.to_csr md in
      let lumped_flat = Md.to_csr result.Compositional.lumped in
      (* Compare entrywise: lumped(ci_tuple, cj_tuple) must equal
         R(rep_i, C_j) where rep/classes come from the per-level
         partitions. *)
      let nlevels = Md.levels md in
      let msizes = Md.sizes md in
      let csizes = Array.map Partition.num_classes result.Compositional.partitions in
      let nc = Array.fold_left ( * ) 1 csizes in
      let tuple_of sizes idx =
        let t = Array.make nlevels 0 in
        let rem = ref idx in
        for l = nlevels - 1 downto 0 do
          t.(l) <- !rem mod sizes.(l);
          rem := !rem / sizes.(l)
        done;
        t
      in
      let index_of sizes t =
        let acc = ref 0 in
        for l = 0 to nlevels - 1 do
          acc := (!acc * sizes.(l)) + t.(l)
        done;
        !acc
      in
      let ok = ref true in
      for ci = 0 to nc - 1 do
        let ci_t = tuple_of csizes ci in
        let rep =
          Array.mapi
            (fun l c -> Partition.representative result.Compositional.partitions.(l) c)
            ci_t
        in
        let rep_idx = index_of msizes rep in
        for cj = 0 to nc - 1 do
          let cj_t = tuple_of csizes cj in
          (* R(rep, C_j): sum over all members of the global class cj *)
          let members_product =
            Array.to_list cj_t
            |> List.mapi (fun l c ->
                   Array.to_list (Partition.elements result.Compositional.partitions.(l) c))
          in
          let rec expand acc = function
            | [] -> [ List.rev acc ]
            | states :: rest -> List.concat_map (fun s -> expand (s :: acc) rest) states
          in
          let total =
            List.fold_left
              (fun acc member ->
                acc +. Csr.get flat rep_idx (index_of msizes (Array.of_list member)))
              0.0
              (expand [] members_product)
          in
          if not (Mdl_util.Floatx.approx_eq total (Csr.get lumped_flat ci cj)) then
            ok := false
        done
      done;
      !ok)

(* ----- a concrete 2-level example with known structure -----

   Level 1: a 2-state "controller"; level 2: 3 "workers" collapsed into
   one level of size 3 where workers 1 and 2 are symmetric.  *)
let concrete_md () =
  let sizes = [| 2; 3 |] in
  let move_01 = Csr.of_dense [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let move_10 = Csr.of_dense [| [| 0.; 0. |]; [| 1.; 0. |] |] in
  let work =
    (* worker state 0 -> 1 or 2 symmetrically, 1,2 -> 0 *)
    Csr.of_dense [| [| 0.; 1.; 1. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
  in
  let k =
    Kronecker.make ~sizes
      [
        { Kronecker.label = "up"; rate = 2.0; locals = [| move_01; Csr.identity 3 |] };
        { Kronecker.label = "down"; rate = 1.0; locals = [| move_10; Csr.identity 3 |] };
        { Kronecker.label = "work"; rate = 3.0; locals = [| Csr.identity 2; work |] };
      ]
  in
  (Kronecker.to_md k, sizes)

let test_concrete_lump () =
  let md, sizes = concrete_md () in
  let rewards = [ Decomposed.constant ~sizes 1.0 ] in
  let initial = Decomposed.constant ~sizes 1.0 in
  let result = Compositional.lump Ordinary md ~rewards ~initial in
  (* level 1 cannot lump (states 0,1 asymmetric: different rates) ;
     level 2 lumps workers 1,2 *)
  Alcotest.(check int) "level1 classes" 2
    (Partition.num_classes result.Compositional.partitions.(0));
  Alcotest.check partition_testable "level2 partition"
    (Partition.of_class_assignment [| 0; 1; 1 |])
    result.Compositional.partitions.(1);
  Alcotest.(check int) "lumped level2 size" 2 (Md.size result.Compositional.lumped 2);
  (* the lumped MD must be globally lumpable-consistent *)
  let flat = Md.to_csr md in
  let gp = global_partition md result.Compositional.partitions in
  Alcotest.(check bool) "global ordinary" true (Check.ordinary flat gp)

let test_local_lumpability_checker () =
  let md, _sizes = concrete_md () in
  Alcotest.(check bool) "good partition accepted" true
    (Level_lumping.is_locally_lumpable Ordinary md ~level:2
       (Partition.of_class_assignment [| 0; 1; 1 |]));
  Alcotest.(check bool) "bad partition rejected" false
    (Level_lumping.is_locally_lumpable Ordinary md ~level:2
       (Partition.of_class_assignment [| 0; 0; 1 |]))

let test_lumped_md_is_quotient_exact =
  QCheck.Test.make ~count:80
    ~name:"lumped MD represents the aggregated quotient (exact)" arb_sym_descriptor
    (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let sizes = Kronecker.sizes k in
      let rewards = [ Decomposed.constant ~sizes 0.0 ] in
      let initial = Decomposed.constant ~sizes 1.0 in
      let result = Compositional.lump Exact md ~rewards ~initial in
      let flat = Md.to_csr md in
      let gp = global_partition md result.Compositional.partitions in
      (* The flattened lumped MD must equal the flat aggregated exact
         quotient R(C_i, C_j)/|C_i| up to the class relabelling used by
         global_partition (classes numbered by first appearance vs
         mixed-radix class tuples).  Compare entrywise through the
         shared class map. *)
      let lumped_flat = Md.to_csr result.Compositional.lumped in
      let quotient = Quotient.rates Exact flat gp in
      (* map: mixed-radix class-tuple index -> global_partition class id *)
      let nlevels = Md.levels md in
      let msizes = Md.sizes md in
      let csizes = Array.map Partition.num_classes result.Compositional.partitions in
      let n = Array.fold_left ( * ) 1 msizes in
      let tuple_of idx =
        let t = Array.make nlevels 0 in
        let rem = ref idx in
        for l = nlevels - 1 downto 0 do
          t.(l) <- !rem mod msizes.(l);
          rem := !rem / msizes.(l)
        done;
        t
      in
      let class_index_of_state idx =
        let t = tuple_of idx in
        let acc = ref 0 in
        for l = 0 to nlevels - 1 do
          acc :=
            (!acc * csizes.(l)) + Partition.class_of result.Compositional.partitions.(l) t.(l)
        done;
        !acc
      in
      let ok = ref true in
      for s = 0 to n - 1 do
        let ct = class_index_of_state s in
        let gc = Partition.class_of gp s in
        (* check one full row of the two quotients agrees *)
        for s' = 0 to n - 1 do
          let ct' = class_index_of_state s' in
          let gc' = Partition.class_of gp s' in
          if
            not
              (Mdl_util.Floatx.approx_eq
                 (Csr.get lumped_flat ct ct')
                 (Csr.get quotient gc gc'))
          then ok := false
        done
      done;
      !ok)

let test_expanded_matrices_key_at_least_as_coarse =
  QCheck.Test.make ~count:60 ~name:"expanded-matrix key at least as coarse as formal sums"
    arb_sym_descriptor (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let ok = ref true in
      for level = 1 to Md.levels md do
        let n = Md.size md level in
        let p_formal =
          Level_lumping.comp_lumping_level ~key:Local_key.Formal_sums Ordinary md ~level
            ~initial:(Partition.trivial n)
        in
        let p_expanded =
          Level_lumping.comp_lumping_level ~key:Local_key.Expanded_matrices Ordinary md
            ~level ~initial:(Partition.trivial n)
        in
        if not (Partition.is_refinement_of p_formal p_expanded) then ok := false
      done;
      !ok)

let test_sufficiency_gap () =
  (* Section 4: formal-sum keys are only sufficient - "a weighted sum of
     matrices may be equal even if the individual terms differ".  Build
     an MD whose root rows denote equal matrices through different
     formal sums: row 0 references node A = [2] with coefficient 1, row
     1 references node B = [1] with coefficient 2.  The expanded-matrix
     key detects the lump; the formal-sum key cannot. *)
  let md = Md.create ~sizes:[| 2; 1 |] in
  let a = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 2.0) ] in
  let b = Md.add_node md ~level:2 [ (0, 0, Md.scalar_sum md 1.0) ] in
  let root =
    Md.add_node md ~level:1
      [ (0, 0, Formal_sum.singleton a 1.0); (1, 1, Formal_sum.singleton b 2.0) ]
  in
  Md.set_root md root;
  let initial = Partition.trivial 2 in
  let p_formal =
    Level_lumping.comp_lumping_level ~key:Local_key.Formal_sums Ordinary md ~level:1
      ~initial
  in
  let p_expanded =
    Level_lumping.comp_lumping_level ~key:Local_key.Expanded_matrices Ordinary md
      ~level:1 ~initial
  in
  Alcotest.(check int) "formal key over-splits" 2 (Partition.num_classes p_formal);
  Alcotest.(check int) "expanded key finds the lump" 1 (Partition.num_classes p_expanded);
  (* The expanded result is genuinely lumpable on the flat chain. *)
  let flat = Md.to_csr md in
  Alcotest.(check bool) "flat chain confirms" true
    (Check.ordinary flat (Partition.of_class_assignment [| 0; 0 |]));
  (* Canonical normalisation (Miner [15]) closes this particular gap:
     the proportional nodes merge, and the cheap formal-sum key then
     finds the lump too. *)
  let normalized = Mdl_md.Compact.normalize md in
  let p_norm =
    Level_lumping.comp_lumping_level ~key:Local_key.Formal_sums Ordinary normalized
      ~level:1 ~initial
  in
  Alcotest.(check int) "formal key succeeds after normalize" 1
    (Partition.num_classes p_norm)

(* ----- end-to-end: solve lumped vs unlumped over a reachable space ----- *)

let test_end_to_end_solution () =
  let md, sizes = concrete_md () in
  (* The full product space is reachable for this model. *)
  let tuples = ref [] in
  for a = 0 to sizes.(0) - 1 do
    for b = 0 to sizes.(1) - 1 do
      tuples := [| a; b |] :: !tuples
    done
  done;
  let ss = Statespace.of_tuples ~levels:2 !tuples in
  let rewards_d = Decomposed.of_level ~sizes ~level:2 (fun s -> if s = 0 then 1.0 else 0.0) in
  let initial_d = Decomposed.constant ~sizes 1.0 in
  let result = Compositional.lump Ordinary md ~rewards:[ rewards_d ] ~initial:initial_d in
  Alcotest.(check bool) "closure" true (Compositional.is_closed result ss);
  let lumped_ss = Compositional.lump_statespace result ss in
  Alcotest.(check bool) "lumped smaller" true
    (Statespace.size lumped_ss < Statespace.size ss);
  (* stationary of original vs lumped *)
  let pi, st1 = Md_solve.steady_state ~tol:1e-13 md ss in
  let pi_l, st2 =
    Md_solve.steady_state ~tol:1e-13 result.Compositional.lumped lumped_ss
  in
  Alcotest.(check bool) "solvers converged" true
    (st1.Solver.converged && st2.Solver.converged);
  Alcotest.(check bool) "aggregation matches" true
    (Vec.diff_inf (Compositional.aggregate_vector result ss lumped_ss pi) pi_l < 1e-7);
  (* reward preserved *)
  let r_orig = Solver.expected_reward pi (Decomposed.to_vector rewards_d ss) in
  let r_lumped =
    Solver.expected_reward pi_l
      (Decomposed.to_vector (Compositional.lumped_rewards result rewards_d) lumped_ss)
  in
  Alcotest.(check (float 1e-8)) "reward preserved" r_orig r_lumped

let test_level_merging_exposes_cross_level_symmetry () =
  (* Two identical 3-state machines assigned to different levels: the
     per-level conditions see no symmetry (each level is a single
     machine), but after merging the two levels into one, the machine
     swap becomes an intra-level symmetry and the compositional
     algorithm lumps it - the scenario the paper defers to model-level
     lumping [10], recovered here by restructuring. *)
  let machine =
    Csr.of_dense [| [| 0.; 1.; 0. |]; [| 0.; 0.; 2. |]; [| 3.; 0.; 0. |] |]
  in
  let i3 = Csr.identity 3 in
  let k =
    Kronecker.make ~sizes:[| 3; 3 |]
      [
        { Kronecker.label = "m1"; rate = 1.0; locals = [| machine; i3 |] };
        { Kronecker.label = "m2"; rate = 1.0; locals = [| i3; machine |] };
      ]
  in
  let md = Mdl_md.Compact.merge_terms (Kronecker.to_md k) in
  let lump_level_sizes m =
    let sizes = Md.sizes m in
    let rewards = [ Decomposed.constant ~sizes 1.0 ] in
    let initial = Decomposed.constant ~sizes 1.0 in
    let result = Compositional.lump Ordinary m ~rewards ~initial in
    Array.map Partition.num_classes result.Compositional.partitions
  in
  (* Separate levels: no lumping possible within either level. *)
  Alcotest.(check (array int)) "no per-level symmetry" [| 3; 3 |] (lump_level_sizes md);
  (* Merged: 9 pair-states lump to the 6 unordered multisets. *)
  let merged = Mdl_md.Restructure.merge_adjacent md 1 in
  Alcotest.(check (array int)) "merged level lumps" [| 6 |] (lump_level_sizes merged);
  (* And the lumped merged chain is a correct ordinary lumping of the
     flat chain. *)
  let sizes = Md.sizes merged in
  let rewards = [ Decomposed.constant ~sizes 1.0 ] in
  let initial = Decomposed.constant ~sizes 1.0 in
  let result = Compositional.lump Ordinary merged ~rewards ~initial in
  let gp = global_partition merged result.Compositional.partitions in
  Alcotest.(check bool) "globally lumpable" true (Check.ordinary (Md.to_csr merged) gp)

let test_md_solve_matches_flat () =
  let md, sizes = concrete_md () in
  ignore sizes;
  let tuples = ref [] in
  for a = 0 to 1 do
    for b = 0 to 2 do
      tuples := [| a; b |] :: !tuples
    done
  done;
  let ss = Statespace.of_tuples ~levels:2 !tuples in
  let pi_md, _ = Md_solve.steady_state ~tol:1e-13 md ss in
  let ctmc = Md_solve.ctmc_of md ss in
  let pi_flat, _ = Solver.steady_state ~tol:1e-13 ctmc in
  Alcotest.(check bool) "md solver = flat solver" true (Vec.diff_inf pi_md pi_flat < 1e-8)

(* ----- specialised interned-key pipeline vs generic at level scope ----- *)

let test_specialised_level_refinement_matches_generic =
  QCheck.Test.make ~count:60
    ~name:"interned level pipeline matches generic at every level (both modes)"
    arb_sym_descriptor (fun spec ->
      let k = build_symmetric_descriptor spec in
      let md = Kronecker.to_md k in
      let ok = ref true in
      List.iter
        (fun mode ->
          for level = 1 to Md.levels md do
            let initial = Partition.trivial (Md.size md level) in
            let st_s = Refiner.create_stats () in
            let st_g = Refiner.create_stats () in
            let p_spec =
              Level_lumping.comp_lumping_level ~stats:st_s mode md ~level ~initial
            in
            let p_gen =
              Level_lumping.comp_lumping_level ~stats:st_g ~specialised:false mode md
                ~level ~initial
            in
            if not (Partition.equal p_spec p_gen) then ok := false;
            (* Every specialised pass must go through the interned
               pipeline; every generic pass through the fallback. *)
            if
              st_s.Refiner.interned_passes <> st_s.Refiner.splitter_passes
              || st_s.Refiner.fallback_passes <> 0
            then ok := false;
            if st_g.Refiner.fallback_passes <> st_g.Refiner.splitter_passes then
              ok := false
          done)
        [ State_lumping.Ordinary; State_lumping.Exact ];
      !ok)

let test_level_intern_table_reuse () =
  (* One table shared across the whole fixed point (as
     [comp_lumping_level] does): re-running the same per-node
     refinements must reuse the interned storage — the high-water mark
     must not grow — and compute the same partition. *)
  let md, _sizes = concrete_md () in
  let ctx = Local_key.make_context md in
  let table = Level_lumping.key_intern_table () in
  let level = 2 in
  let nodes = (Md.live_nodes md).(level - 1) in
  let n = Md.size md level in
  let spec_of node =
    {
      Refiner.isize = n;
      itable = table;
      isplitter_keys =
        (fun c ->
          Local_key.splitter_keys ctx Local_key.Formal_sums State_lumping.Ordinary node
            c);
    }
  in
  let run () =
    List.fold_left
      (fun p node -> Refiner.comp_lumping_interned (spec_of node) ~initial:p)
      (Partition.trivial n) nodes
  in
  let p1 = run () in
  let size1 = Refiner.intern_table_size table in
  let p2 = run () in
  let size2 = Refiner.intern_table_size table in
  Alcotest.check partition_testable "same fixed point on reuse" p1 p2;
  Alcotest.(check int) "intern storage high-water stable across reuse" size1 size2;
  Alcotest.(check bool) "some keys interned" true (size1 > 0);
  Alcotest.check partition_testable "matches comp_lumping_level"
    (Level_lumping.comp_lumping_level State_lumping.Ordinary md ~level
       ~initial:(Partition.trivial n))
    p1

(* ----- splitter-key cache: memoised pipeline vs uncached pipeline ----- *)

let lump_inputs md =
  let sizes = Md.sizes md in
  ([ Decomposed.constant ~sizes 0.0 ], Decomposed.constant ~sizes 1.0)

(* The central parity property of the memoised path: same lumped
   diagram (structurally, coefficients bit-exact), same per-level
   partitions, and the very same number of splitter passes — the cache
   must change what is computed, never what comes out.  Exercised over
   all three oracle families: flat chains, Kronecker compilations and
   free-form direct diagrams. *)
let test_memoised_lump_matches_uncached =
  QCheck.Test.make ~count:40
    ~name:"memoised lump = uncached lump (diagram, partitions, passes)"
    (Mdl_oracle.Qcheck_gen.model ()) (fun spec ->
      let md = Gen_md.of_spec spec in
      let rewards, initial = lump_inputs md in
      let ok = ref true in
      List.iter
        (fun mode ->
          let st_c = Refiner.create_stats () in
          let st_u = Refiner.create_stats () in
          let r_c = Compositional.lump ~stats:st_c ~memoise:true mode md ~rewards ~initial in
          let r_u =
            Compositional.lump ~stats:st_u ~memoise:false mode md ~rewards ~initial
          in
          if not (Md.equal r_c.Compositional.lumped r_u.Compositional.lumped) then
            ok := false;
          if
            not
              (Array.for_all2 Partition.equal r_c.Compositional.partitions
                 r_u.Compositional.partitions)
          then ok := false;
          if st_c.Refiner.splitter_passes <> st_u.Refiner.splitter_passes then ok := false;
          (* the cached run actually went through the cache *)
          if st_c.Refiner.cache_hits + st_c.Refiner.cache_misses = 0 then ok := false;
          if st_u.Refiner.cache_hits + st_u.Refiner.cache_misses <> 0 then ok := false)
        [ State_lumping.Ordinary; State_lumping.Exact ];
      !ok)

let test_key_cache_invalidation () =
  (* Entries are keyed by (node, member, |C|); a split retires the
     identity of every affected class, so the next lookup after a forced
     downstream split must miss even though the member sets overlap. *)
  let md, _sizes = concrete_md () in
  let kc = Key_cache.create () in
  Key_cache.bind kc md;
  let level = 2 in
  let node = List.hd (Md.live_nodes md).(level - 1) in
  let p = Partition.trivial 3 in
  let slice = Partition.view p 0 in
  let r1 =
    Key_cache.splitter_keys kc Local_key.Formal_sums State_lumping.Ordinary ~node slice
  in
  Alcotest.(check int) "first lookup misses" 1 (Key_cache.misses kc);
  Alcotest.(check int) "no hit yet" 0 (Key_cache.hits kc);
  let r2 =
    Key_cache.splitter_keys kc Local_key.Formal_sums State_lumping.Ordinary ~node slice
  in
  Alcotest.(check int) "second lookup hits" 1 (Key_cache.hits kc);
  Alcotest.(check bool) "hit replays the cached arrays" true (r1 == r2);
  (* force a split: class 0 = {0} keeps id 0, {1,2} gets a fresh id *)
  let ids = Partition.split p 0 [ [| 0 |]; [| 1; 2 |] ] in
  Key_cache.note_split kc ~parent:0 ~ids;
  Alcotest.(check int) "invalidations counted per affected class" 2
    (Key_cache.invalidations kc);
  let fresh = List.nth ids 1 in
  ignore
    (Key_cache.splitter_keys kc Local_key.Formal_sums State_lumping.Ordinary ~node
       (Partition.view p fresh));
  Alcotest.(check int) "post-split lookup misses (fresh identity)" 2
    (Key_cache.misses kc);
  (* rebinding to the same diagram discards the rows but keeps the
     interned gids *)
  let interned = Key_cache.gid_count kc in
  Key_cache.bind kc md;
  ignore
    (Key_cache.splitter_keys kc Local_key.Formal_sums State_lumping.Ordinary ~node
       (Partition.view p fresh));
  Alcotest.(check int) "rebind discards memoised rows" 3 (Key_cache.misses kc);
  Alcotest.(check bool) "rebind keeps the gid table" true
    (Key_cache.gid_count kc >= interned);
  Alcotest.check_raises "unbound cache has no context"
    (Invalid_argument "Key_cache.context: cache not bound to a diagram (use bind)")
    (fun () -> ignore (Key_cache.context (Key_cache.create ())))

let test_singleton_skip () =
  (* Singleton classes of the run-start partition are skipped before key
     evaluation on the memoised path: same fixed point, same splitter
     pass count, strictly fewer key evaluations. *)
  let md, _sizes = concrete_md () in
  let level = 2 in
  let initial () = Partition.of_class_assignment [| 0; 0; 1 |] in
  let run cache =
    let st = Refiner.create_stats () in
    let p =
      Level_lumping.comp_lumping_level ?cache ~stats:st State_lumping.Ordinary md ~level
        ~initial:(initial ())
    in
    (p, st)
  in
  let p_u, st_u = run None in
  let p_c, st_c = run (Some (Key_cache.create ())) in
  Alcotest.check partition_testable "same fixed point" p_u p_c;
  Alcotest.(check int) "same splitter pass count" st_u.Refiner.splitter_passes
    st_c.Refiner.splitter_passes;
  Alcotest.(check bool) "singleton keys skipped" true
    (st_c.Refiner.key_evals < st_u.Refiner.key_evals);
  Alcotest.(check bool) "cache consulted" true
    (st_c.Refiner.cache_hits + st_c.Refiner.cache_misses > 0)

let test_shared_cache_across_models () =
  (* One cache across a sweep of different diagrams (the bench
     arrangement): every model must come out exactly as with a private
     fresh cache, and the gid table keeps growing monotonically. *)
  let cache = Key_cache.create () in
  let models =
    [
      Gen_md.of_spec (Spec.Direct { sizes = [| 3; 2; 2 |]; width = 2; symmetric = true; seed = 5 });
      (let md, _ = concrete_md () in
       md);
      Gen_md.of_spec (Spec.Direct { sizes = [| 2; 4 |]; width = 3; symmetric = false; seed = 11 });
    ]
  in
  let hw = ref 0 in
  List.iter
    (fun md ->
      let rewards, initial = lump_inputs md in
      let r_shared =
        Compositional.lump ~cache State_lumping.Ordinary md ~rewards ~initial
      in
      let r_fresh = Compositional.lump State_lumping.Ordinary md ~rewards ~initial in
      Alcotest.(check bool) "shared cache: same lumped diagram" true
        (Md.equal r_shared.Compositional.lumped r_fresh.Compositional.lumped);
      Array.iteri
        (fun i p ->
          Alcotest.check partition_testable
            (Printf.sprintf "shared cache: level %d partition" (i + 1))
            p
            r_shared.Compositional.partitions.(i))
        r_fresh.Compositional.partitions;
      (match Key_cache.bound_md cache with
      | Some bound -> Alcotest.(check bool) "cache rebound to the model" true (bound == md)
      | None -> Alcotest.fail "cache unbound after lump");
      let hw' = Key_cache.gid_count cache in
      Alcotest.(check bool) "gid table never shrinks" true (hw' >= !hw);
      hw := hw')
    models

let test_cache_config_contract () =
  (* The (eps, key choice, lumping mode) of a cache's rows are recorded
     at first bind; a later bind (or lookup) under a different
     configuration must be refused, not silently served rows computed
     under the old one. *)
  let config_mismatch =
    Invalid_argument
      "Key_cache: eps / key choice / lumping mode differ from the configuration \
       recorded at this cache's first use (use a fresh cache per configuration)"
  in
  let md, _sizes = concrete_md () in
  let rewards, initial = lump_inputs md in
  let cache = Key_cache.create () in
  ignore (Compositional.lump ~cache State_lumping.Ordinary md ~rewards ~initial);
  Alcotest.check_raises "mode change refused" config_mismatch (fun () ->
      ignore (Compositional.lump ~cache State_lumping.Exact md ~rewards ~initial));
  Alcotest.check_raises "key choice change refused" config_mismatch (fun () ->
      Key_cache.bind ~choice:Local_key.Expanded_matrices ~mode:State_lumping.Ordinary
        cache md);
  Alcotest.check_raises "eps change refused" config_mismatch (fun () ->
      Key_cache.bind ~eps:1e-3 ~choice:Local_key.Formal_sums
        ~mode:State_lumping.Ordinary cache md);
  (* The recorded configuration itself keeps working. *)
  ignore (Compositional.lump ~cache State_lumping.Ordinary md ~rewards ~initial);
  (* A fresh cache records whatever it sees first — including a
     non-default eps. *)
  let c2 = Key_cache.create () in
  Key_cache.bind ~eps:1e-3 ~choice:Local_key.Formal_sums ~mode:State_lumping.Ordinary
    c2 md;
  Alcotest.check_raises "default eps refused after explicit 1e-3" config_mismatch
    (fun () ->
      Key_cache.bind ~choice:Local_key.Formal_sums ~mode:State_lumping.Ordinary c2 md)

let test_persistent_cross_bind () =
  (* Persistent mode: a same-diagram rebind is an epoch bump, and a
     re-run of the very same lump is answered entirely by the
     content-keyed store — zero new misses, every answer counted as a
     cross-bind hit, bit-identical result. *)
  let md, _sizes = concrete_md () in
  let rewards, initial = lump_inputs md in
  let cache = Key_cache.create () in
  Key_cache.set_persistent cache true;
  Alcotest.(check bool) "persistence on" true (Key_cache.persistent cache);
  let r1 = Compositional.lump ~cache State_lumping.Ordinary md ~rewards ~initial in
  let misses1 = Key_cache.misses cache in
  let epoch1 = Key_cache.epoch cache in
  Alcotest.(check bool) "first run populated the store" true
    (Key_cache.store_size cache > 0);
  Alcotest.(check int) "no cross-bind hits within one bind" 0
    (Key_cache.cross_bind_hits cache);
  let r2 = Compositional.lump ~cache State_lumping.Ordinary md ~rewards ~initial in
  Alcotest.(check int) "second run: no new misses" misses1 (Key_cache.misses cache);
  Alcotest.(check bool) "second run: cross-bind hits" true
    (Key_cache.cross_bind_hits cache > 0);
  Alcotest.(check int) "rebind bumped the epoch" (epoch1 + 1) (Key_cache.epoch cache);
  Alcotest.(check bool) "second run bit-identical" true
    (Md.equal r1.Compositional.lumped r2.Compositional.lumped);
  (* Binding a different diagram clears the store — node ids restart per
     diagram, so content keys could collide across diagrams. *)
  let md2 =
    Gen_md.of_spec
      (Spec.Direct { sizes = [| 3; 2; 2 |]; width = 2; symmetric = true; seed = 5 })
  in
  Key_cache.bind ~choice:Local_key.Formal_sums ~mode:State_lumping.Ordinary cache md2;
  Alcotest.(check int) "different-diagram bind clears the store" 0
    (Key_cache.store_size cache);
  (* Toggling persistence off discards rows and store. *)
  Key_cache.set_persistent cache false;
  Alcotest.(check bool) "persistence off" false (Key_cache.persistent cache)

(* ----- batched sweeps ----- *)

(* A reward/initial family over one diagram: base spec, a threshold
   indicator on the last level, its complement (same class sets, flipped
   class order — the cross-bind fixture), a two-indicator point, then a
   repeat of the base point (level-memo and rebuild-memo hits). *)
let sweep_family mode md =
  let sizes = Md.sizes md in
  let level = Array.length sizes in
  let size = sizes.(level - 1) in
  let k = max 1 (size / 2) in
  let ind up =
    Decomposed.of_level ~sizes ~level (fun s ->
        if (if up then s >= k else s < k) then 1.0 else 0.0)
  in
  let scaled = Decomposed.of_level ~sizes ~level:1 (fun s -> float_of_int (s mod 3)) in
  let base_rewards = [ Decomposed.constant ~sizes 0.0 ] in
  let base_initial = Decomposed.constant ~sizes 1.0 in
  let specs rewards initial =
    { Compositional.sweep_rewards = rewards; sweep_initial = initial }
  in
  match mode with
  | State_lumping.Ordinary ->
      List.map
        (fun rewards -> specs rewards base_initial)
        [
          base_rewards;
          [ ind true ];
          [ ind false ];
          [ ind true; scaled ];
          base_rewards;
        ]
  | State_lumping.Exact ->
      (* Exact mode partitions by the initial distribution (and row
         sums); sweep the initial instead. *)
      List.map
        (fun initial -> specs base_rewards initial)
        [ base_initial; ind true; ind false; scaled; base_initial ]

let test_sweep_matches_per_point =
  QCheck.Test.make ~count:25
    ~name:"lump_sweep = independent lump per point (diagram, partitions)"
    (Mdl_oracle.Qcheck_gen.model ()) (fun spec ->
      let md = Gen_md.of_spec spec in
      let ok = ref true in
      List.iter
        (fun mode ->
          let points = sweep_family mode md in
          let swept = Compositional.lump_sweep mode md ~points in
          let independent =
            List.map
              (fun p ->
                Compositional.lump mode md ~rewards:p.Compositional.sweep_rewards
                  ~initial:p.Compositional.sweep_initial)
              points
          in
          List.iter2
            (fun s i ->
              if not (Md.equal s.Compositional.lumped i.Compositional.lumped) then
                ok := false;
              if
                not
                  (Array.for_all2 Partition.equal s.Compositional.partitions
                     i.Compositional.partitions)
              then ok := false)
            swept independent)
        [ State_lumping.Ordinary; State_lumping.Exact ];
      !ok)

let test_sweep_reuse_counters () =
  (* The engine's stats must show each reuse tier firing on the family
     designed to exercise them: the repeated base point serves its level
     fixed points and rebuild from the memos, and the complement
     indicator point reuses splitter rows across binds. *)
  let md, _sizes = concrete_md () in
  let points = sweep_family State_lumping.Ordinary md in
  let sw = Compositional.sweep_create State_lumping.Ordinary md in
  let results =
    List.map
      (fun p ->
        Compositional.sweep_point sw ~rewards:p.Compositional.sweep_rewards
          ~initial:p.Compositional.sweep_initial)
      points
  in
  let st = Compositional.sweep_stats sw in
  Alcotest.(check int) "every point counted" (List.length points)
    st.Compositional.points;
  Alcotest.(check bool) "level fixpoints reused" true (st.Compositional.level_reused > 0);
  Alcotest.(check bool) "rebuilds reused" true (st.Compositional.rebuilds_reused > 0);
  Alcotest.(check bool) "rows persisted" true
    (Mdl_core.Key_cache.store_size (Compositional.sweep_cache sw) > 0);
  (* The repeated base point aliases the first point's diagram. *)
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  Alcotest.(check bool) "repeated point aliases the memoised diagram" true
    (first.Compositional.lumped == last.Compositional.lumped)

let test_rebuild_counters () =
  let md, _sizes = concrete_md () in
  (* Identity partitions at every level: the rebuild aliases the input
     diagram and accounts every live node as reused. *)
  let idp = Array.init (Md.levels md) (fun l -> Partition.discrete (Md.size md (l + 1))) in
  let st = Refiner.create_stats () in
  let r = Compositional.lump_with_partitions ~stats:st State_lumping.Ordinary md idp in
  Alcotest.(check bool) "identity partitions alias the diagram" true
    (r.Compositional.lumped == md);
  Alcotest.(check int) "nothing rebuilt" 0 st.Refiner.nodes_rebuilt;
  Alcotest.(check int) "all live nodes reused" (Md.num_live_nodes md)
    st.Refiner.nodes_reused;
  (* A real lump of the same model: level 1 stays the identity (its
     nodes are imported verbatim), level 2 lumps (its nodes are
     rebuilt). *)
  let rewards, initial = lump_inputs md in
  let st2 = Refiner.create_stats () in
  let r2 = Compositional.lump ~stats:st2 State_lumping.Ordinary md ~rewards ~initial in
  Alcotest.(check bool) "mixed run rebuilds some nodes" true
    (st2.Refiner.nodes_rebuilt > 0);
  Alcotest.(check bool) "mixed run reuses some nodes" true (st2.Refiner.nodes_reused > 0);
  Alcotest.(check int) "every live node accounted once" (Md.num_live_nodes md)
    (st2.Refiner.nodes_rebuilt + st2.Refiner.nodes_reused);
  (* The from-scratch rebuild produces the same diagram while rebuilding
     every node. *)
  let st3 = Refiner.create_stats () in
  let r3 =
    Compositional.lump_with_partitions ~stats:st3 ~incremental:false
      State_lumping.Ordinary md r2.Compositional.partitions
  in
  Alcotest.(check bool) "from-scratch rebuild agrees" true
    (Md.equal r2.Compositional.lumped r3.Compositional.lumped);
  Alcotest.(check int) "from-scratch reuses nothing" 0 st3.Refiner.nodes_reused;
  Alcotest.(check int) "from-scratch rebuilds everything" (Md.num_live_nodes md)
    st3.Refiner.nodes_rebuilt

let qcheck_tests =
  [
    test_single_level_ordinary;
    test_single_level_exact;
    test_theorem3_global_ordinary;
    test_theorem4_global_exact;
    test_lumped_md_is_quotient_ordinary;
    test_lumped_md_is_quotient_exact;
    test_expanded_matrices_key_at_least_as_coarse;
    test_specialised_level_refinement_matches_generic;
    test_memoised_lump_matches_uncached;
    test_sweep_matches_per_point;
  ]

let tests =
  [
    Alcotest.test_case "decomposed of_level" `Quick test_decomposed_of_level;
    Alcotest.test_case "decomposed point" `Quick test_decomposed_point;
    Alcotest.test_case "decomposed constant/vector" `Quick test_decomposed_constant_and_vector;
    Alcotest.test_case "concrete 2-level lump" `Quick test_concrete_lump;
    Alcotest.test_case "local lumpability checker" `Quick test_local_lumpability_checker;
    Alcotest.test_case "intern table reuse across level fixed point" `Quick
      test_level_intern_table_reuse;
    Alcotest.test_case "key cache invalidation" `Quick test_key_cache_invalidation;
    Alcotest.test_case "singleton classes skipped under the cache" `Quick
      test_singleton_skip;
    Alcotest.test_case "one cache shared across models" `Quick
      test_shared_cache_across_models;
    Alcotest.test_case "cache configuration contract enforced" `Quick
      test_cache_config_contract;
    Alcotest.test_case "persistent cache serves rows across binds" `Quick
      test_persistent_cross_bind;
    Alcotest.test_case "sweep engine reuse counters" `Quick test_sweep_reuse_counters;
    Alcotest.test_case "rebuild reuse/rebuilt counters" `Quick test_rebuild_counters;
    Alcotest.test_case "sufficiency gap: expanded key coarser than formal key" `Quick
      test_sufficiency_gap;
    Alcotest.test_case "end-to-end lumped solution" `Quick test_end_to_end_solution;
    Alcotest.test_case "md solver matches flat" `Quick test_md_solve_matches_flat;
    Alcotest.test_case "level merging exposes cross-level symmetry" `Quick
      test_level_merging_exposes_cross_level_symmetry;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

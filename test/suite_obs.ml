(* Tests for the observability layer (Mdl_obs): hierarchical spans and
   their Chrome trace-event export, the metrics registry, and the
   contract that instrumentation never changes pipeline outputs.

   The trace buffer and the registry are process-global, so every test
   restores the disabled/empty state it found. *)

module Trace = Mdl_obs.Trace
module Metrics = Mdl_obs.Metrics
module Logging = Mdl_obs.Logging
module Csr = Mdl_sparse.Csr
module Ctmc = Mdl_ctmc.Ctmc
module Solver = Mdl_ctmc.Solver
module Partition = Mdl_partition.Partition
module Refiner = Mdl_partition.Refiner
module Md = Mdl_md.Md
module Kronecker = Mdl_kron.Kronecker
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional

let partition_testable = Alcotest.testable Partition.pp Partition.equal

(* ----- a tiny JSON parser, enough to validate the trace export -----

   The repo deliberately has no JSON dependency (the exporters emit by
   hand), so the well-formedness test parses by hand too. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_string b (Printf.sprintf "\\u%s" hex)
          | Some c ->
              advance ();
              Buffer.add_char b
                (match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c)
          | None -> fail "dangling escape");
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON member %S" name)
  | _ -> Alcotest.failf "not a JSON object (looking for %S)" name

(* ----- shared fixture: the 2-level Kronecker model of suite_core ----- *)

let concrete_md () =
  let sizes = [| 2; 3 |] in
  let move_01 = Csr.of_dense [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let move_10 = Csr.of_dense [| [| 0.; 0. |]; [| 1.; 0. |] |] in
  let work =
    Csr.of_dense [| [| 0.; 1.; 1. |]; [| 1.; 0.; 0. |]; [| 1.; 0.; 0. |] |]
  in
  let k =
    Kronecker.make ~sizes
      [
        { Kronecker.label = "up"; rate = 2.0; locals = [| move_01; Csr.identity 3 |] };
        { Kronecker.label = "down"; rate = 1.0; locals = [| move_10; Csr.identity 3 |] };
        { Kronecker.label = "work"; rate = 3.0; locals = [| Csr.identity 2; work |] };
      ]
  in
  (Kronecker.to_md k, sizes)

let lump_concrete () =
  let md, sizes = concrete_md () in
  let rewards = [ Decomposed.constant ~sizes 1.0 ] in
  let initial = Decomposed.constant ~sizes 1.0 in
  Compositional.lump Ordinary md ~rewards ~initial

(* ----- spans ----- *)

let test_span_nesting () =
  Trace.start ~gc:false ();
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () ->
            Alcotest.(check int) "two open spans" 2 (Trace.open_spans ());
            17))
  in
  Alcotest.(check int) "result through spans" 17 v;
  Alcotest.(check int) "all closed" 0 (Trace.open_spans ());
  Alcotest.(check int) "two completed" 2 (Trace.span_count ());
  (* completion order: inner closes first, at depth 1 *)
  let seen = ref [] in
  Trace.iter_events (fun ~name ~cat:_ ~start_ns:_ ~dur_ns ~depth ~args:_ ->
      Alcotest.(check bool) "duration non-negative" true (Int64.compare dur_ns 0L >= 0);
      seen := (name, depth) :: !seen);
  Alcotest.(check (list (pair string int)))
    "names and depths" [ ("inner", 1); ("outer", 0) ] (List.rev !seen);
  Trace.stop ();
  Trace.clear ()

let test_span_nesting_errors () =
  Trace.start ~gc:false ();
  Alcotest.check_raises "end with nothing open"
    (Trace.Nesting_error "Trace.end_span: \"ghost\" closed with no span open")
    (fun () -> Trace.end_span "ghost");
  Trace.begin_span "a";
  Alcotest.check_raises "mismatched close"
    (Trace.Nesting_error "Trace.end_span: \"b\" closed while \"a\" is innermost")
    (fun () -> Trace.end_span "b");
  Trace.end_span "a";
  Alcotest.check_raises "stop with open span"
    (Trace.Nesting_error "Trace.stop: span \"dangling\" still open")
    (fun () ->
      Trace.begin_span "dangling";
      Trace.stop ());
  (* recover the global state for the remaining tests *)
  Trace.end_span "dangling";
  Trace.stop ();
  Trace.clear ()

let test_span_exception_safety () =
  Trace.start ~gc:false ();
  (try Trace.with_span "boom" (fun () -> failwith "inside") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Trace.open_spans ());
  Alcotest.(check int) "span recorded" 1 (Trace.span_count ());
  Trace.stop ();
  Trace.clear ()

let test_disabled_is_noop () =
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let n0 = Trace.span_count () in
  let v = Trace.with_span "ignored" (fun () -> 3) in
  Trace.begin_span "ignored";
  Trace.end_span "mismatch is fine when disabled";
  Trace.add_args [ ("k", Trace.Int 1) ];
  Alcotest.(check int) "value still returned" 3 v;
  Alcotest.(check int) "nothing recorded" n0 (Trace.span_count ())

let test_chrome_trace_json () =
  Trace.start ~gc:true ();
  Trace.with_span ~cat:"test" ~args:[ ("n", Trace.Int 42) ] "alpha" (fun () ->
      Trace.with_span "beta \"quoted\"\n" (fun () -> Sys.opaque_identity ()));
  Trace.stop ();
  let b = Buffer.create 256 in
  Trace.export_json b;
  let doc = parse_json (Buffer.contents b) in
  let events =
    match member "traceEvents" doc with
    | Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      (match member "ph" ev with
      | Str "X" -> ()
      | _ -> Alcotest.fail "ph must be X (complete duration event)");
      (match member "ts" ev with
      | Num ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
      | _ -> Alcotest.fail "ts not a number");
      (match member "dur" ev with
      | Num dur -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.0)
      | _ -> Alcotest.fail "dur not a number");
      match (member "name" ev, member "cat" ev, member "args" ev) with
      | Str _, Str _, Obj _ -> ()
      | _ -> Alcotest.fail "name/cat/args of wrong type")
    events;
  (* span arguments and gc samples survive the round trip *)
  let alpha = List.find (fun ev -> member "name" ev = Str "alpha") events in
  (match member "n" (member "args" alpha) with
  | Num 42.0 -> ()
  | _ -> Alcotest.fail "span argument lost");
  (match member "gc.minor_words" (member "args" alpha) with
  | Num w -> Alcotest.(check bool) "gc words sampled" true (w >= 0.0)
  | _ -> Alcotest.fail "gc.minor_words missing");
  ignore (List.find (fun ev -> member "name" ev = Str "beta \"quoted\"\n") events);
  Trace.clear ()

let test_phase_totals () =
  Trace.start ~gc:false ();
  Trace.with_span "p" (fun () -> Trace.with_span "q" (fun () -> ()));
  Trace.with_span "q" (fun () -> ());
  Trace.stop ();
  let totals = Trace.phase_totals () in
  Alcotest.(check (list string)) "phase names sorted" [ "p"; "q" ]
    (List.map fst totals);
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "total non-negative" true (s >= 0.0))
    totals;
  (* [from] scopes the rollup to a suffix of the buffer *)
  let from = Trace.span_count () in
  Trace.resume ();
  Trace.with_span "r" (fun () -> ());
  Trace.stop ();
  Alcotest.(check (list string)) "scoped rollup" [ "r" ]
    (List.map fst (Trace.phase_totals ~from ()));
  Trace.clear ()

(* ----- trace contexts ----- *)

(* Two contexts recorded into from two parallel domains: fully
   independent span trees, correctly nested, nothing shared. *)
let test_ctx_parallel_domains () =
  let run tag =
    let ctx = Trace.Ctx.create () in
    Trace.Ctx.start ~gc:false ctx;
    for i = 1 to 50 do
      Trace.Ctx.with_span ctx (tag ^ ".outer") (fun () ->
          ignore
            (Trace.Ctx.with_span ctx (tag ^ ".inner") (fun () ->
                 Sys.opaque_identity i)))
    done;
    Trace.Ctx.stop ctx;
    ctx
  in
  let d1 = Domain.spawn (fun () -> run "a") in
  let d2 = Domain.spawn (fun () -> run "b") in
  let c1 = Domain.join d1 in
  let c2 = Domain.join d2 in
  List.iter
    (fun (tag, ctx) ->
      Alcotest.(check int) "100 spans" 100 (Trace.Ctx.span_count ctx);
      Trace.Ctx.iter_events ctx (fun ~name ~cat:_ ~start_ns:_ ~dur_ns:_ ~depth ~args:_ ->
          Alcotest.(check bool) "own tag only" true
            (String.length name > 2 && String.sub name 0 2 = tag ^ ".");
          Alcotest.(check int) "nesting depth" (if name = tag ^ ".inner" then 1 else 0) depth);
      Alcotest.(check (list (pair string int)))
        "rollup names and counts"
        [ (tag ^ ".inner", 50); (tag ^ ".outer", 50) ]
        (List.map (fun (n, c, _) -> (n, c)) (Trace.Ctx.span_rollup ctx));
      List.iter
        (fun (_, _, s) -> Alcotest.(check bool) "rollup seconds >= 0" true (s >= 0.0))
        (Trace.Ctx.span_rollup ctx))
    [ ("a", c1); ("b", c2) ];
  Alcotest.(check bool) "default context untouched" false (Trace.enabled ())

(* [with_ctx] reroutes the module-level API for the installing thread
   only, restores on exit, and nesting errors stay per-context. *)
let test_with_ctx_install () =
  let n0 = Trace.span_count () in
  let ctx = Trace.Ctx.create () in
  Trace.Ctx.start ~gc:false ctx;
  let v =
    Trace.with_ctx ctx (fun () ->
        Alcotest.(check bool) "enabled under install" true (Trace.enabled ());
        Trace.with_span "routed" (fun () -> 11))
  in
  Alcotest.(check int) "value through install" 11 v;
  Alcotest.(check bool) "default disabled again" false (Trace.enabled ());
  Alcotest.(check int) "default buffer untouched" n0 (Trace.span_count ());
  Trace.Ctx.stop ctx;
  Alcotest.(check int) "span landed in ctx" 1 (Trace.Ctx.span_count ctx);
  (* nested installs restore the previous binding *)
  let inner = Trace.Ctx.create () in
  Trace.Ctx.start ~gc:false inner;
  Trace.Ctx.resume ctx;
  Trace.with_ctx ctx (fun () ->
      Trace.with_ctx inner (fun () -> Trace.with_span "deep" (fun () -> ()));
      Trace.with_span "outer-again" (fun () -> ()));
  Trace.Ctx.stop ctx;
  Trace.Ctx.stop inner;
  Alcotest.(check int) "inner got its span" 1 (Trace.Ctx.span_count inner);
  Alcotest.(check int) "outer got the second" 2 (Trace.Ctx.span_count ctx);
  (* the Nesting_error fires against the context's own stack *)
  let c2 = Trace.Ctx.create () in
  Trace.Ctx.start ~gc:false c2;
  Trace.Ctx.begin_span c2 "open";
  Alcotest.check_raises "per-context mismatch"
    (Trace.Nesting_error "Trace.end_span: \"wrong\" closed while \"open\" is innermost")
    (fun () -> Trace.Ctx.end_span c2 "wrong");
  Trace.Ctx.end_span c2 "open";
  Trace.Ctx.stop c2

(* ----- metrics registry ----- *)

let test_metrics_counters () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Metrics.counter "test.counter" in
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c' 4;
  Alcotest.(check int) "shared cell" 5 (Metrics.counter_value "test.counter");
  Alcotest.(check int) "unregistered reads 0" 0 (Metrics.counter_value "test.absent");
  Metrics.set_enabled false;
  Metrics.incr c;
  Alcotest.(check int) "disabled updates dropped" 5
    (Metrics.counter_value "test.counter");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: \"test.counter\" is registered as another metric kind")
    (fun () -> ignore (Metrics.gauge "test.counter"));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value "test.counter")

let test_metrics_gauges () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Metrics.gauge_value "test.gauge");
  Metrics.set_max g 1.0;
  Alcotest.(check (float 0.0)) "set_max keeps max" 2.5
    (Metrics.gauge_value "test.gauge");
  Metrics.set_max g 7.0;
  Alcotest.(check (float 0.0)) "set_max raises" 7.0 (Metrics.gauge_value "test.gauge");
  Metrics.set_enabled false;
  Metrics.reset ()

let test_log_buckets () =
  let b = Metrics.log_buckets ~lo:1e-3 ~hi:1.0 ~per_decade:3 in
  Alcotest.(check bool) "strictly increasing" true
    (Array.for_all2 (fun x y -> x < y)
       (Array.sub b 0 (Array.length b - 1))
       (Array.sub b 1 (Array.length b - 1)));
  Alcotest.(check (float 1e-9)) "starts at lo" 1e-3 b.(0);
  Alcotest.(check bool) "covers hi" true (b.(Array.length b - 1) >= 1.0);
  (* 3 per decade over 3 decades: ratio between consecutive bounds is
     10^(1/3) *)
  Alcotest.(check (float 1e-6)) "log step" (Float.pow 10.0 (1.0 /. 3.0)) (b.(1) /. b.(0));
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Metrics.log_buckets: need 0 < lo < hi and per_decade >= 1")
    (fun () -> ignore (Metrics.log_buckets ~lo:1.0 ~hi:0.5 ~per_decade:3))

let test_metrics_histograms () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  let count, sum = Metrics.histogram_stats "test.hist" in
  Alcotest.(check int) "count" 4 count;
  Alcotest.(check (float 1e-9)) "sum" 555.5 sum;
  let buckets = Metrics.histogram_buckets "test.hist" in
  Alcotest.(check int) "bucket count incl. overflow" 4 (Array.length buckets);
  Alcotest.(check (float 0.0)) "first bound" 1.0 (fst buckets.(0));
  Array.iter (fun (_, c) -> Alcotest.(check int) "one per bucket" 1 c) buckets;
  Alcotest.(check (float 0.0)) "overflow is inf" Float.infinity
    (fst buckets.(Array.length buckets - 1));
  (* re-registration with the same bounds is idempotent, different
     bounds are a programming error *)
  ignore (Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.hist");
  Alcotest.check_raises "bucket clash"
    (Invalid_argument "Metrics.histogram: \"test.hist\" re-registered with different buckets")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 2.0 |] "test.hist"));
  Metrics.set_enabled false;
  Metrics.reset ()

(* The snapshot read API merges the domain shards exactly: observing
   from 4 domains concurrently loses nothing, and the quantile
   estimator is monotone and bounded by the bucket grid. *)
let test_histogram_snapshot () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let h = Metrics.histogram ~buckets:[| 0.5; 1.5; 2.5; 3.5 |] "test.snap" in
  let per_domain = 1000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              (* exactly representable, so the merged sum is exact in
                 any accumulation order *)
              Metrics.observe h (float_of_int d)
            done))
  in
  List.iter Domain.join ds;
  (match Metrics.histogram_snapshot "test.snap" with
  | None -> Alcotest.fail "snapshot missing"
  | Some s ->
      Alcotest.(check int) "count exact" (4 * per_domain) s.Metrics.hs_count;
      Alcotest.(check (float 0.0)) "sum exact"
        (float_of_int (per_domain * (0 + 1 + 2 + 3)))
        s.Metrics.hs_sum;
      Alcotest.(check int) "per-bucket counts exact" (4 * per_domain)
        (Array.fold_left ( + ) 0 s.Metrics.hs_counts);
      Array.iter
        (fun c -> Alcotest.(check int) "1000 per value bucket" per_domain c)
        (Array.sub s.Metrics.hs_counts 0 4);
      let p50 = Metrics.snapshot_quantile s 0.50 in
      let p95 = Metrics.snapshot_quantile s 0.95 in
      let p99 = Metrics.snapshot_quantile s 0.99 in
      Alcotest.(check bool) "quantiles monotone" true (p50 <= p95 && p95 <= p99);
      Alcotest.(check bool) "quantiles within the grid" true
        (p50 >= 0.0 && p99 <= 3.5));
  Alcotest.(check bool) "absent name" true
    (Metrics.histogram_snapshot "test.no_such" = None);
  (* empty histogram: snapshot exists, quantiles degrade to 0 *)
  ignore (Metrics.histogram ~buckets:[| 1.0 |] "test.snap_empty");
  (match Metrics.histogram_snapshot "test.snap_empty" with
  | Some s ->
      Alcotest.(check int) "empty count" 0 s.Metrics.hs_count;
      Alcotest.(check (float 0.0)) "empty quantile" 0.0
        (Metrics.snapshot_quantile s 0.5)
  | None -> Alcotest.fail "empty snapshot missing");
  Metrics.set_enabled false;
  Metrics.reset ()

let test_metrics_json () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Metrics.incr (Metrics.counter "test.json.counter");
  Metrics.set (Metrics.gauge "test.json.gauge") 1.5;
  Metrics.observe (Metrics.histogram ~buckets:[| 1.0 |] "test.json.hist") 0.5;
  Metrics.set_enabled false;
  let b = Buffer.create 256 in
  Metrics.to_json b;
  let doc = parse_json (Buffer.contents b) in
  (match member "test.json.counter" (member "counters" doc) with
  | Num 1.0 -> ()
  | _ -> Alcotest.fail "counter not in JSON");
  (match member "test.json.gauge" (member "gauges" doc) with
  | Num 1.5 -> ()
  | _ -> Alcotest.fail "gauge not in JSON");
  (match member "count" (member "test.json.hist" (member "histograms" doc)) with
  | Num 1.0 -> ()
  | _ -> Alcotest.fail "histogram not in JSON");
  Metrics.reset ()

(* ----- the registry agrees with the legacy Refiner.stats view ----- *)

let test_metrics_match_refiner_stats () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let stats = Refiner.create_stats () in
  let md, sizes = concrete_md () in
  let rewards = [ Decomposed.constant ~sizes 1.0 ] in
  let initial = Decomposed.constant ~sizes 1.0 in
  ignore (Compositional.lump ~stats Ordinary md ~rewards ~initial);
  Metrics.set_enabled false;
  let check name legacy =
    Alcotest.(check int) name legacy (Metrics.counter_value name)
  in
  check "refiner.splitter_passes" stats.Refiner.splitter_passes;
  check "refiner.key_evals" stats.Refiner.key_evals;
  check "refiner.splits" stats.Refiner.splits;
  check "refiner.blocks_created" stats.Refiner.blocks_created;
  check "refiner.largest_skips" stats.Refiner.largest_skips;
  check "refiner.float_passes" stats.Refiner.float_passes;
  check "refiner.interned_passes" stats.Refiner.interned_passes;
  check "refiner.counting_sort_passes" stats.Refiner.counting_sort_passes;
  check "refiner.fallback_passes" stats.Refiner.fallback_passes;
  check "key_cache.hits" stats.Refiner.cache_hits;
  check "key_cache.misses" stats.Refiner.cache_misses;
  check "rebuild.nodes_rebuilt" stats.Refiner.nodes_rebuilt;
  check "rebuild.nodes_reused" stats.Refiner.nodes_reused;
  Alcotest.(check bool) "some passes happened" true (stats.Refiner.splitter_passes > 0);
  Alcotest.(check bool) "cache exercised" true
    (stats.Refiner.cache_hits + stats.Refiner.cache_misses > 0);
  Alcotest.(check (float 0.0)) "alphabet high-water mark"
    (float_of_int stats.Refiner.intern_keys)
    (Metrics.gauge_value "refiner.intern_alphabet");
  Metrics.reset ()

(* ----- transient solves report through the same epilogue -----

   Regression: [transient_operator] used to bypass the [observe_run]
   epilogue, so uniformisation runs left [solver.runs] /
   [solver.iterations] untouched and the truncation deficit was
   invisible.  Pin the exact counter arithmetic of one run. *)

let test_transient_metrics_pin () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Ctmc.of_triplets 3 [ (0, 1, 2.0); (1, 2, 1.0); (2, 0, 0.5) ] in
  let _, lambda = Ctmc.uniformized c in
  let t = 0.7 and epsilon = 1e-12 in
  (* One iteration per operator application: the k=0 Poisson term reuses
     pi0, every later term costs one application. *)
  let terms = Array.length (Solver.poisson_weights ~epsilon ~qt:(lambda *. t)) in
  ignore (Solver.transient ~epsilon ~t c [| 1.0; 0.0; 0.0 |]);
  Alcotest.(check int) "one run recorded" 1 (Metrics.counter_value "solver.runs");
  Alcotest.(check int) "iterations = Poisson terms - 1" (terms - 1)
    (Metrics.counter_value "solver.iterations");
  let residual = Metrics.gauge_value "solver.residual" in
  Alcotest.(check bool) "residual is the truncation deficit" true
    (residual >= 0.0 && residual <= epsilon);
  Alcotest.(check int) "no non-convergence flagged" 0
    (Metrics.counter_value "solver.non_converged");
  (* The span taxonomy carries the same run. *)
  Trace.start ~gc:false ();
  ignore (Solver.transient ~epsilon ~t c [| 1.0; 0.0; 0.0 |]);
  Trace.stop ();
  let seen = ref false in
  Trace.iter_events (fun ~name ~cat:_ ~start_ns:_ ~dur_ns:_ ~depth:_ ~args:_ ->
      if name = "solver.transient" then seen := true);
  Alcotest.(check bool) "solver.transient span present" true !seen;
  Trace.clear ();
  Metrics.set_enabled false;
  Metrics.reset ()

(* ----- instrumentation must never change pipeline outputs ----- *)

let test_tracing_changes_nothing () =
  let run () = lump_concrete () in
  let plain = run () in
  Trace.start ~gc:true ();
  Metrics.set_enabled true;
  let traced = run () in
  Trace.stop ();
  Metrics.set_enabled false;
  Alcotest.(check int) "same level count"
    (Array.length plain.Compositional.partitions)
    (Array.length traced.Compositional.partitions);
  Array.iteri
    (fun i p ->
      Alcotest.check partition_testable
        (Printf.sprintf "level %d partition" (i + 1))
        p
        traced.Compositional.partitions.(i))
    plain.Compositional.partitions;
  Alcotest.(check bool) "same lumped diagram" true
    (Md.equal plain.Compositional.lumped traced.Compositional.lumped);
  (* the traced run actually produced the span taxonomy *)
  let names = Hashtbl.create 8 in
  Trace.iter_events (fun ~name ~cat:_ ~start_ns:_ ~dur_ns:_ ~depth:_ ~args:_ ->
      Hashtbl.replace names name ());
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (Hashtbl.mem names n))
    [ "lump"; "lump.level"; "lump.initial_partition"; "lump.fixpoint"; "refine.run";
      "refine.pass"; "lump.rebuild" ];
  Trace.clear ();
  Metrics.reset ()

(* ----- logging ----- *)

let test_logging_levels () =
  let lvl s = Logging.level_of_string s in
  Alcotest.(check bool) "debug" true (lvl "debug" = Some (Some Logs.Debug));
  Alcotest.(check bool) "warn alias" true (lvl "warn" = Some (Some Logs.Warning));
  Alcotest.(check bool) "case-insensitive" true (lvl "INFO" = Some (Some Logs.Info));
  Alcotest.(check bool) "quiet" true (lvl "quiet" = Some None);
  Alcotest.(check bool) "off alias" true (lvl "off" = Some None);
  Alcotest.(check bool) "unknown" true (lvl "shouting" = None);
  let srcs = Logging.sources () in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " registered") true (List.mem s srcs))
    [ "mdl.refine"; "mdl.solve"; "mdl.oracle" ]

let tests =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span nesting errors" `Quick test_span_nesting_errors;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled tracing is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "chrome trace JSON well-formed" `Quick test_chrome_trace_json;
    Alcotest.test_case "phase totals" `Quick test_phase_totals;
    Alcotest.test_case "contexts on parallel domains" `Quick test_ctx_parallel_domains;
    Alcotest.test_case "with_ctx install/restore" `Quick test_with_ctx_install;
    Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics gauges" `Quick test_metrics_gauges;
    Alcotest.test_case "log buckets" `Quick test_log_buckets;
    Alcotest.test_case "metrics histograms" `Quick test_metrics_histograms;
    Alcotest.test_case "metrics JSON" `Quick test_metrics_json;
    Alcotest.test_case "registry matches Refiner.stats" `Quick
      test_metrics_match_refiner_stats;
    Alcotest.test_case "transient metrics pin" `Quick test_transient_metrics_pin;
    Alcotest.test_case "tracing changes no output" `Quick test_tracing_changes_nothing;
    Alcotest.test_case "logging levels" `Quick test_logging_levels;
  ]
